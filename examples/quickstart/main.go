// Quickstart: run the combined logical + physical design advisor on
// the Movie dataset and inspect what it recommends.
package main

import (
	"fmt"
	"log"

	xmlshred "repro"
)

func main() {
	// 1. A schema (Fig. 1b of the paper) and some data.
	tree := xmlshred.MovieSchema()
	doc := xmlshred.GenerateMovie(tree, xmlshred.MovieOptions{Movies: 5000, Seed: 1})

	// 2. Statistics are collected once at the finest granularity and
	// reused for every candidate mapping the search costs.
	col := xmlshred.CollectStatistics(tree, doc)

	// 3. An XPath workload (the paper's supported subset: child and
	// descendant axes, one selection predicate, projection unions).
	w := xmlshred.MustWorkload("quickstart",
		`//movie[year >= 2000]/(title | box_office)`,
		`//movie[title = "Movie Title 000042"]/(aka_title | avg_rating)`,
		`//movie[genre = "genre-03"]/(title | actor)`,
		`//movie/year`,
	)

	// 4. Search the combined space of mappings and physical designs.
	adv := xmlshred.NewAdvisor(tree, col, w, xmlshred.Options{})
	res, err := adv.Greedy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated workload cost: %.2f\n", res.EstCost)
	fmt.Printf("search: %s, %d transformations, %d tool calls\n\n",
		res.Metrics.Duration, res.Metrics.Transformations, res.Metrics.PhysDesignCalls)
	fmt.Println("recommended logical design:")
	fmt.Println(" ", res.Tree)
	fmt.Println("\nrelational schema:")
	fmt.Print(res.Mapping.SQLSchema())
	fmt.Println("\nphysical design:")
	fmt.Print(res.Config)

	// 5. Load the data under the recommendation and run the workload
	// for real.
	ex, err := adv.MeasureExecution(res, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured workload execution: %s (%d rows)\n", ex.Elapsed, ex.Rows)

	// Compare with the untuned hybrid-inlining default.
	hy, err := adv.HybridBaseline()
	if err != nil {
		log.Fatal(err)
	}
	hex, err := adv.MeasureExecution(hy, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid-inlining baseline:    %s (%.2fx)\n",
		hex.Elapsed, float64(hex.Elapsed)/float64(ex.Elapsed))
}
