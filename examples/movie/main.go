// Movie example: union distribution in action. The movie schema has a
// (box_office | seasons) choice and optional avg_rating/language
// elements; distributing them partitions the movie relation so that
// queries touching one side read far fewer pages. This example shows
// the generated relational schemas, the translated SQL with partition
// pruning, and the measured execution times.
package main

import (
	"fmt"
	"log"

	xmlshred "repro"
)

func main() {
	base := xmlshred.MovieSchema()
	doc := xmlshred.GenerateMovie(base, xmlshred.MovieOptions{Movies: 8000, Seed: 3})
	col := xmlshred.CollectStatistics(base, doc)

	w := xmlshred.MustWorkload("movie",
		`//movie[year >= 1995]/(title | box_office)`, // touches only the box_office branch
		`//movie/avg_rating`,                         // touches only movies having a rating
	)

	// Hand-build the distributed design: distribute the choice and an
	// implicit union on avg_rating.
	dist := base.Clone()
	movie := dist.ElementsNamed("movie")[0]
	choice := dist.ElementsNamed("box_office")[0].UnderChoice()
	rating := dist.ElementsNamed("avg_rating")[0]
	movie.Distributions = []xmlshred.Distribution{
		{Choice: choice.ID},
		{Optionals: []int{rating.ID}},
	}

	for _, m := range []struct {
		name string
		tree *xmlshred.SchemaTree
	}{
		{"hybrid inlining (one movie table)", base},
		{"union-distributed (partitioned movie tables)", dist},
	} {
		mapping, err := xmlshred.CompileMapping(m.tree)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s\n", m.name, mapping.SQLSchema())
		sql, err := xmlshred.TranslateQuery(mapping, w.Queries[0].XPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SQL for %s:\n%s\n\n", w.Queries[0].XPath, sql.SQL())

		adv := xmlshred.NewAdvisor(m.tree, col, w, xmlshred.Options{})
		res, err := adv.HybridBaseline()
		if err != nil {
			log.Fatal(err)
		}
		ex, err := adv.MeasureExecution(res, doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tuned workload execution: %s (%d rows)\n\n", ex.Elapsed, ex.Rows)
	}
}
