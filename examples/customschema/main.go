// Custom schema example: bring your own XSD. This example parses an
// order-management schema from XSD text, generates synthetic documents
// against it, writes/parses real XML, and runs the advisor over a
// small workload — demonstrating that nothing in the library is
// specific to the built-in datasets.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	xmlshred "repro"
	"repro/internal/rel"
	"repro/internal/xmlgen"
)

const ordersXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
 <xs:element name="orders">
  <xs:complexType>
   <xs:sequence>
    <xs:element name="order" minOccurs="0" maxOccurs="unbounded">
     <xs:complexType>
      <xs:sequence>
       <xs:element name="customer" type="xs:string"/>
       <xs:element name="date" type="xs:string"/>
       <xs:element name="total" type="xs:decimal"/>
       <xs:element name="discount" type="xs:decimal" minOccurs="0"/>
       <xs:choice>
        <xs:element name="card" type="xs:string"/>
        <xs:element name="invoice" type="xs:string"/>
       </xs:choice>
       <xs:element name="item" minOccurs="0" maxOccurs="unbounded">
        <xs:complexType>
         <xs:sequence>
          <xs:element name="sku" type="xs:string"/>
          <xs:element name="qty" type="xs:integer"/>
         </xs:sequence>
        </xs:complexType>
       </xs:element>
       <xs:element name="note" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
     </xs:complexType>
    </xs:element>
   </xs:sequence>
  </xs:complexType>
 </xs:element>
</xs:schema>`

func main() {
	tree, err := xmlshred.ParseXSDString(ordersXSD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed schema:", tree)

	// Generate documents with the generic schema-driven generator.
	spec := xmlgen.NewGenSpec()
	for _, n := range tree.ElementsNamed("customer") {
		id := n.ID
		spec.Value[id] = func(r *rand.Rand, _ int64) rel.Value {
			return rel.Str(fmt.Sprintf("cust-%04d", r.Intn(500)))
		}
	}
	g := xmlgen.NewGenerator(tree, spec, 42)
	doc := g.GenerateRootChildren(map[string]int{"order": 4000})

	// Round-trip through real XML text to prove the I/O path.
	var buf bytes.Buffer
	if err := xmlshred.WriteXML(&buf, doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized %d KB of XML\n", buf.Len()>>10)
	doc, err = xmlshred.ParseXML(tree, &buf)
	if err != nil {
		log.Fatal(err)
	}

	col := xmlshred.CollectStatistics(tree, doc)
	w := xmlshred.MustWorkload("orders",
		`//order[customer = "cust-0042"]/(date | total | item/sku)`,
		`//order/discount`,
		`//order[total >= 50]/(customer | card)`,
	)
	adv := xmlshred.NewAdvisor(tree, col, w, xmlshred.Options{})
	res, err := adv.Greedy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended design: %s\n", res.Tree)
	fmt.Printf("\nrelational schema:\n%s", res.Mapping.SQLSchema())
	fmt.Printf("\nphysical design:\n%s", res.Config)
	ex, err := adv.MeasureExecution(res, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload execution: %s (%d rows)\n", ex.Elapsed, ex.Rows)
}
