// DBLP example: reproduce the paper's Section 1.1 motivating example
// interactively — the same XPath query against Mapping 1 (hybrid
// inlining: authors in a separate table) and Mapping 2 (repetition
// split: the first k authors inlined), with and without a tuned
// physical design. The tuned/untuned winner flips, which is exactly
// why logical and physical design must be searched together.
package main

import (
	"fmt"
	"log"

	xmlshred "repro"
)

func main() {
	tree := xmlshred.DBLPSchema()
	doc := xmlshred.GenerateDBLP(tree, xmlshred.DBLPOptions{Inproceedings: 8000, Books: 800, Seed: 1})
	col := xmlshred.CollectStatistics(tree, doc)

	query := `/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`
	w := xmlshred.MustWorkload("intro", query)

	// Mapping 2: repetition split on inproceedings' author with the
	// Section 4.6 count (smallest k covering >=80% of publications).
	split := tree.Clone()
	for _, n := range split.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			// The paper's k = 5: the smallest count covering ~99% of
			// publications (Section 4.6).
			if h := col.Card[n.ID]; h != nil {
				n.SplitCount = h.SplitCount(5, 0.95)
			}
			if n.SplitCount == 0 {
				n.SplitCount = 5
			}
			fmt.Printf("repetition split count k = %d\n\n", n.SplitCount)
		}
	}

	for _, m := range []struct {
		name string
		tree *xmlshred.SchemaTree
	}{
		{"Mapping 1 (hybrid inlining)", tree},
		{"Mapping 2 (first k authors inlined)", split},
	} {
		adv := xmlshred.NewAdvisor(m.tree, col, w, xmlshred.Options{})
		tuned, err := adv.HybridBaseline() // tunes the given mapping as-is
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", m.name)
		fmt.Printf("translated SQL:\n%s\n", tuned.SQL[0].SQL())
		ex, err := adv.MeasureExecution(tuned, doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tuned execution:   %s  (config: %d indexes, %d views)\n",
			ex.Elapsed, len(tuned.Config.Indexes), len(tuned.Config.Views))
		// Strip the physical design for the untuned measurement.
		tuned.Config.Indexes = nil
		tuned.Config.Views = nil
		tuned.Config.Partitions = nil
		ex, err = adv.MeasureExecution(tuned, doc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("untuned execution: %s\n\n", ex.Elapsed)
	}

	// Now let the advisor decide: it should reach (at least) Mapping
	// 2's quality on its own.
	adv := xmlshred.NewAdvisor(tree, col, w, xmlshred.Options{})
	res, err := adv.Greedy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Greedy advisor ==\nrecommended design: %s\n", res.Tree)
	ex, err := adv.MeasureExecution(res, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution under recommendation: %s\n", ex.Elapsed)
}
