// Updates example: the paper lists update queries as future work; this
// library implements them as insert streams whose maintenance cost
// enters the tuning objective. The same read workload gets a rich
// physical design when the data is static and a lean one when
// publications stream in continuously.
package main

import (
	"fmt"
	"log"

	xmlshred "repro"
	"repro/internal/workload"
)

func main() {
	tree := xmlshred.DBLPSchema()
	doc := xmlshred.GenerateDBLP(tree, xmlshred.DBLPOptions{Inproceedings: 5000, Books: 500, Seed: 2})
	col := xmlshred.CollectStatistics(tree, doc)

	queries := []string{
		`//inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`,
		`//inproceedings[year = 2000]/(title | pages | ee)`,
		`//book[publisher = "publisher-03"]/(title | price)`,
	}

	for _, rate := range []float64{0, 1000, 100000} {
		w := xmlshred.MustWorkload("w", queries...)
		if rate > 0 {
			w.Updates = []workload.Update{{Element: "inproceedings", Rate: rate}}
		}
		adv := xmlshred.NewAdvisor(tree, col, w, xmlshred.Options{})
		res, err := adv.HybridBaseline()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== insert rate %.0f publications per workload execution ==\n", rate)
		fmt.Printf("estimated cost (queries + maintenance): %.2f\n", res.EstCost)
		fmt.Printf("structures: %d indexes, %d views\n%s\n",
			len(res.Config.Indexes), len(res.Config.Views), res.Config)
	}
}
