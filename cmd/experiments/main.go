// Command experiments reproduces the paper's evaluation end to end:
// Table 1, the Section 1.1 motivating example, and Figures 4-9. It
// prints the same series the paper reports (normalized execution time,
// normalized search time, transformations searched, speed-ups) and can
// restrict the run to individual experiments.
//
//	experiments -scale 0.5              # everything, half-size data
//	experiments -only fig4,fig5 -quick  # just the comparison figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"context"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/loadgen"
	"repro/internal/workload"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.25, "dataset scale factor (1.0 = 20k publications / 10k movies)")
		quick     = flag.Bool("quick", false, "smaller workloads and round caps for a fast pass")
		only      = flag.String("only", "", "comma-separated subset: table1,intro,fig4,fig5,fig6,fig7,fig8,fig9")
		naive     = flag.Bool("naive", true, "include Naive-Greedy on the 10-query workloads (slow)")
		naive20   = flag.Bool("naive20", false, "also run Naive-Greedy on 20-query workloads (very slow)")
		seedBase  = flag.Int64("seed", 7, "workload generation seed")
		parallel  = flag.Int("parallel", 1, "concurrent candidate evaluations per search (all strategies; results are identical at any setting)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars, /debug/metrics, and /debug/pprof on this address while experiments run")

		serviceURL  = flag.String("service-url", "", "client mode: drive a running xmlserved at this base URL instead of running experiments")
		svcCorpus   = flag.String("service-corpus", "movie", "client mode: corpus to query")
		svcTenants  = flag.String("service-tenants", "t0,t1", "client mode: comma-separated tenants to spread requests over")
		svcQueries  = flag.String("service-queries", "", "client mode: semicolon-separated XPath mix (default: a movie-corpus mix)")
		svcConc     = flag.Int("service-concurrency", 4, "client mode: concurrent sessions")
		svcOps      = flag.Int("service-ops", 0, "client mode: total requests (0 = run for -service-duration)")
		svcDuration = flag.Duration("service-duration", 5*time.Second, "client mode: run length when -service-ops is 0")
		svcWorkers  = flag.Int("service-workers", 0, "client mode: requested per-query workers (0 = server default)")
	)
	flag.Parse()
	if *serviceURL != "" {
		if err := runClient(*serviceURL, *svcCorpus, *svcTenants, *svcQueries,
			*svcConc, *svcOps, *svcDuration, *svcWorkers); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	if err := run(*scale, *quick, sel, *naive, *naive20, *seedBase, *parallel, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runClient is the load-generator front end: it drives a running
// xmlserved with a mixed-tenant query mix at fixed concurrency and
// prints sustained QPS, outcome counts, and tail latencies.
func runClient(url, corpus, tenants, queries string, conc, ops int, duration time.Duration, workers int) error {
	mixTexts := []string{
		`//movie[year >= 2000]/(title | box_office)`,
		`//movie[genre = "genre-03"]/(title | year | actor)`,
		`//movie/year`,
		`//movie/(title | aka_title)`,
	}
	if queries != "" {
		mixTexts = strings.Split(queries, ";")
	}
	tenantList := strings.Split(tenants, ",")
	var mix []service.Request
	for i, q := range mixTexts {
		mix = append(mix, service.Request{
			Corpus:  corpus,
			Tenant:  strings.TrimSpace(tenantList[i%len(tenantList)]),
			XPath:   strings.TrimSpace(q),
			Workers: workers,
		})
	}
	cl := service.NewClient(url, nil)
	if infos, err := cl.Corpora(context.Background()); err != nil {
		return fmt.Errorf("connecting to %s: %w", url, err)
	} else {
		fmt.Printf("connected to %s: %d corpora\n", url, len(infos))
	}
	res := loadgen.Run(context.Background(), cl.Query, mix, loadgen.Options{
		Concurrency: conc, Ops: ops, Duration: duration,
	})
	fmt.Printf("ops %d  completed %d  rejected %d  timed-out %d  errors %d  rows %d\n",
		res.Ops, res.Completed, res.Rejected, res.TimedOut, res.Errors, res.Rows)
	fmt.Printf("elapsed %v  qps %.1f\n", res.Elapsed.Round(time.Millisecond), res.QPS)
	fmt.Printf("latency p50 %v  p95 %v  p99 %v  max %v\n", res.P50, res.P95, res.P99, res.Max)
	if res.Errors > 0 {
		return fmt.Errorf("%d requests failed", res.Errors)
	}
	return nil
}

func run(scale float64, quick bool, sel func(string) bool, naive, naive20 bool, seed int64, parallel int, debugAddr string) error {
	start := time.Now()

	opts := core.Options{Parallelism: parallel}
	if debugAddr != "" {
		reg := obs.NewRegistry()
		ds, err := obs.ServeDebug(debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars\n", ds.Addr)
		opts.Registry = reg
	}

	fmt.Printf("loading datasets (scale %.2f)...\n", scale)
	dblp := experiments.LoadDBLP(experiments.Scale(scale))
	movie := experiments.LoadMovie(experiments.Scale(scale))

	if quick {
		opts.MaxRounds = 2
	}
	wl20, wl10 := 20, 10
	if quick {
		wl20, wl10 = 8, 4
	}

	if sel("table1") {
		experiments.PrintTable1(os.Stdout, []experiments.Table1Row{
			experiments.RunTable1(dblp), experiments.RunTable1(movie),
		})
	}
	if sel("intro") {
		res, err := experiments.RunIntroExample(dblp)
		if err != nil {
			return err
		}
		experiments.PrintIntro(os.Stdout, res)
	}
	if sel("fig4") || sel("fig5") || sel("fig6") {
		// DBLP: four 20-query workloads (Greedy, Two-Step; Naive only
		// when -naive20), plus four 10-query workloads incl. Naive —
		// mirroring the paper, which could not finish Naive on the
		// 20-query DBLP workloads.
		var rows []experiments.Row
		for _, p := range workload.StandardParams(wl20, seed) {
			w, err := dblp.Workloads([]workload.Params{p})
			if err != nil {
				return err
			}
			r, err := experiments.RunComparison(dblp, w[0],
				experiments.Algorithms{Greedy: true, Two: true, Naive: naive20}, opts)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		for _, p := range workload.StandardParams(wl10, seed+100) {
			w, err := dblp.Workloads([]workload.Params{p})
			if err != nil {
				return err
			}
			r, err := experiments.RunComparison(dblp, w[0],
				experiments.Algorithms{Greedy: true, Two: true, Naive: naive}, opts)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		experiments.SortRows(rows)
		experiments.PrintRows(os.Stdout, "Fig 4/5/6 (DBLP): quality, search time, transformations", rows)

		rows = rows[:0]
		for _, p := range workload.StandardParams(wl20, seed+200) {
			w, err := movie.Workloads([]workload.Params{p})
			if err != nil {
				return err
			}
			r, err := experiments.RunComparison(movie, w[0],
				experiments.Algorithms{Greedy: true, Two: true, Naive: naive}, opts)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		experiments.SortRows(rows)
		experiments.PrintRows(os.Stdout, "Fig 4/5/6 (Movie): quality, search time, transformations", rows)
	}
	if sel("fig7") {
		var rows []experiments.AblationRow
		for _, p := range workload.StandardParams(wl20, seed+300) {
			w, err := dblp.Workloads([]workload.Params{p})
			if err != nil {
				return err
			}
			r, err := experiments.RunFig7(dblp, w[0], opts)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		experiments.PrintAblation(os.Stdout, "Fig 7 (DBLP): candidate-selection speed-up", rows)
	}
	if sel("fig8") {
		var rows []experiments.AblationRow
		for _, p := range workload.StandardParams(wl20, seed+400) {
			w, err := dblp.Workloads([]workload.Params{p})
			if err != nil {
				return err
			}
			r, err := experiments.RunFig8(dblp, w[0], opts)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		experiments.PrintAblation(os.Stdout, "Fig 8 (DBLP): merging strategies", rows)
	}
	if sel("fig9") {
		var rows []experiments.AblationRow
		for _, p := range workload.StandardParams(wl20, seed+500) {
			w, err := dblp.Workloads([]workload.Params{p})
			if err != nil {
				return err
			}
			r, err := experiments.RunFig9(dblp, w[0], opts)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		experiments.PrintAblation(os.Stdout, "Fig 9 (DBLP): cost derivation", rows)
	}
	fmt.Printf("\ntotal experiment time: %s\n", time.Since(start))
	return nil
}
