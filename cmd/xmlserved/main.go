// Command xmlserved is the long-lived multi-tenant XPath query server:
// it registers named corpora (generated datasets, or a durable store
// directory), shares one engine build — caches, prepared plans, pager —
// across every session, and serves queries over HTTP+JSON under
// admission control (per-tenant quotas, a bounded global worker pool,
// per-request deadlines).
//
//	xmlserved -addr :8080 -corpora movie,dblp -scale 0.25
//	xmlserved -addr :8080 -store /data/movies -store-schema movie -paged -mem-budget 33554432
//	curl -s localhost:8080/query -d '{"corpus":"movie","tenant":"t1","xpath":"//movie/year"}'
//
// Admission state (queue depth, admitted/rejected/timed-out counters,
// per-tenant gauges) is served on -debug-addr via /debug/metrics and
// /debug/vars.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/shred"
	"repro/internal/storage"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "HTTP listen address for the query API")
		debugAddr     = flag.String("debug-addr", "", "serve /debug/vars, /debug/metrics, /debug/pprof on this address")
		corpora       = flag.String("corpora", "movie", "comma-separated generated corpora to register: movie,dblp")
		scale         = flag.Float64("scale", 0.25, "generated dataset scale factor")
		storeDir      = flag.String("store", "", "serve a durable store directory as a corpus instead of generating data")
		storeName     = flag.String("store-name", "store", "corpus name for the -store directory")
		storeSchema   = flag.String("store-schema", "movie", "schema the -store data was shredded under: movie or dblp")
		paged         = flag.Bool("paged", false, "serve -store through chunk-granular paged scans under -mem-budget")
		memBudget     = flag.Int64("mem-budget", 0, "store memory budget in bytes (0 = unbudgeted)")
		poolWorkers   = flag.Int("pool-workers", 0, "global morsel-worker pool capacity (0 = GOMAXPROCS)")
		maxWorkers    = flag.Int("max-workers", 4, "max workers any one query may be granted")
		defTimeout    = flag.Duration("default-timeout", 0, "default per-request deadline (0 = none)")
		maxConcurrent = flag.Int("max-concurrent", 4, "default tenant quota: concurrent queries")
		maxQueued     = flag.Int("max-queued", 16, "default tenant quota: queued requests before fast-fail")
		memQuota      = flag.Int64("mem-quota", 0, "default tenant quota: in-flight memory bytes (0 = unlimited)")
	)
	flag.Parse()
	if err := run(*addr, *debugAddr, *corpora, *scale, *storeDir, *storeName, *storeSchema,
		*paged, *memBudget, *poolWorkers, *maxWorkers, *defTimeout,
		*maxConcurrent, *maxQueued, *memQuota); err != nil {
		fmt.Fprintln(os.Stderr, "xmlserved:", err)
		os.Exit(1)
	}
}

func run(addr, debugAddr, corpora string, scale float64,
	storeDir, storeName, storeSchema string, paged bool, memBudget int64,
	poolWorkers, maxWorkers int, defTimeout time.Duration,
	maxConcurrent, maxQueued int, memQuota int64) error {
	reg := obs.NewRegistry()
	svc := service.New(service.Config{
		PoolWorkers:        poolWorkers,
		MaxWorkersPerQuery: maxWorkers,
		DefaultTimeout:     defTimeout,
		DefaultQuota:       service.TenantQuota{MaxConcurrent: maxConcurrent, MaxQueued: maxQueued, MemBytes: memQuota},
		Registry:           reg,
	})

	if storeDir != "" {
		tree, err := schemaByName(storeSchema)
		if err != nil {
			return err
		}
		m, err := shred.Compile(tree)
		if err != nil {
			return fmt.Errorf("compile %s schema: %w", storeSchema, err)
		}
		store, err := storage.Open(storeDir, storage.Options{MemBudgetBytes: memBudget, Registry: reg})
		if err != nil {
			return err
		}
		defer store.Close()
		if err := svc.RegisterStore(storeName, store, m, paged); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "registered store corpus %q from %s (paged=%v)\n", storeName, storeDir, paged)
	} else {
		for _, name := range strings.Split(corpora, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if err := registerGenerated(svc, name, scale); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "registered generated corpus %q (scale %.2f)\n", name, scale)
		}
	}

	if debugAddr != "" {
		ds, err := obs.ServeDebug(debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/metrics\n", ds.Addr)
	}
	srv, err := service.Serve(addr, svc)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "serving queries on http://%s/query\n", srv.Addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "received %v, shutting down\n", s)
	return svc.Close()
}

func schemaByName(name string) (*schema.Tree, error) {
	switch name {
	case "movie":
		return schema.Movie(), nil
	case "dblp":
		return schema.DBLP(), nil
	}
	return nil, fmt.Errorf("unknown schema %q (want movie or dblp)", name)
}

// registerGenerated shreds a generated dataset and registers it as an
// in-memory corpus.
func registerGenerated(svc *service.Service, name string, scale float64) error {
	var ds *experiments.Dataset
	switch name {
	case "movie":
		ds = experiments.LoadMovie(experiments.Scale(scale))
	case "dblp":
		ds = experiments.LoadDBLP(experiments.Scale(scale))
	default:
		return fmt.Errorf("unknown corpus %q (want movie or dblp)", name)
	}
	m, err := shred.Compile(ds.Tree)
	if err != nil {
		return fmt.Errorf("%s: compile: %w", name, err)
	}
	db, err := shred.Shred(m, ds.Docs[0])
	if err != nil {
		return fmt.Errorf("%s: shred: %w", name, err)
	}
	built, err := engine.Build(db, &physical.Config{})
	if err != nil {
		return fmt.Errorf("%s: build: %w", name, err)
	}
	return svc.RegisterBuilt(name, built, m, nil)
}
