// Command datagen writes the DBLP or Movie XML dataset (and its XSD
// schema) to disk, so the pipeline can be exercised from real files:
//
//	datagen -dataset dblp -scale 0.5 -out dblp.xml -xsd dblp.xsd
package main

import (
	"flag"
	"fmt"
	"os"

	xmlshred "repro"
	"repro/internal/xmlgen"
)

func main() {
	var (
		dataset = flag.String("dataset", "movie", "dblp or movie")
		scale   = flag.Float64("scale", 0.1, "scale factor (1.0 = 20k publications / 10k movies)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output XML file (default stdout)")
		xsdOut  = flag.String("xsd", "", "also write the XSD schema to this file")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *out, *xsdOut); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed int64, out, xsdOut string) error {
	var tree *xmlshred.SchemaTree
	var doc *xmlshred.Document
	switch dataset {
	case "dblp":
		tree = xmlshred.DBLPSchema()
		opts := xmlgen.DefaultDBLPOptions()
		opts.Inproceedings = int(float64(opts.Inproceedings) * scale)
		opts.Books = int(float64(opts.Books) * scale)
		opts.Seed = seed
		doc = xmlshred.GenerateDBLP(tree, opts)
	case "movie":
		tree = xmlshred.MovieSchema()
		opts := xmlgen.DefaultMovieOptions()
		opts.Movies = int(float64(opts.Movies) * scale)
		opts.Seed = seed
		doc = xmlshred.GenerateMovie(tree, opts)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := xmlshred.WriteXML(w, doc); err != nil {
		return err
	}
	if xsdOut != "" {
		f, err := os.Create(xsdOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := xmlshred.WriteXSD(f, tree); err != nil {
			return err
		}
	}
	return nil
}
