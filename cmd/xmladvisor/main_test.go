package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadWorkload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.txt")
	content := `# comment
//movie[year >= 2000]/(title | box_office)
//movie/avg_rating	3.5

//movie[genre = "g"]/title
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := readWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 3 {
		t.Fatalf("queries = %d, want 3", len(w.Queries))
	}
	if w.Queries[1].Weight != 3.5 {
		t.Errorf("weight = %f, want 3.5", w.Queries[1].Weight)
	}
	if w.Queries[0].Weight != 1 {
		t.Errorf("default weight = %f", w.Queries[0].Weight)
	}
}

func TestReadWorkloadErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if _, err := readWorkload(empty); err == nil {
		t.Error("want error for empty workload")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("not an xpath\n"), 0o644)
	if _, err := readWorkload(bad); err == nil {
		t.Error("want error for bad query")
	}
	if _, err := readWorkload(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", 0.1, "", "", "", "greedy", 0, 1, false, false); err == nil {
		t.Error("want error without dataset or schema")
	}
	if err := run("movie", 0.01, "", "", "", "greedy", 0, 1, false, false); err == nil {
		t.Error("want error without queries")
	}
}
