package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadWorkload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.txt")
	content := `# comment
//movie[year >= 2000]/(title | box_office)
//movie/avg_rating	3.5

//movie[genre = "g"]/title
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := readWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 3 {
		t.Fatalf("queries = %d, want 3", len(w.Queries))
	}
	if w.Queries[1].Weight != 3.5 {
		t.Errorf("weight = %f, want 3.5", w.Queries[1].Weight)
	}
	if w.Queries[0].Weight != 1 {
		t.Errorf("default weight = %f", w.Queries[0].Weight)
	}
}

func TestReadWorkloadErrors(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if _, err := readWorkload(empty); err == nil {
		t.Error("want error for empty workload")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("not an xpath\n"), 0o644)
	if _, err := readWorkload(bad); err == nil {
		t.Error("want error for bad query")
	}
	if _, err := readWorkload(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(cliConfig{scale: 0.1, algorithm: "greedy", parallel: 1}); err == nil {
		t.Error("want error without dataset or schema")
	}
	if err := run(cliConfig{dataset: "movie", scale: 0.01, algorithm: "greedy", parallel: 1}); err == nil {
		t.Error("want error without queries")
	}
}

// TestRunTraceJSON drives a full advisor run end to end — search,
// measured execution, cost audit — with -trace-json, and checks the
// emitted span tree is well-formed JSON covering search and executor
// phases.
func TestRunTraceJSON(t *testing.T) {
	dir := t.TempDir()
	queries := filepath.Join(dir, "q.txt")
	content := "//movie[year >= 2000]/title\n//movie/avg_rating\t2\n"
	if err := os.WriteFile(queries, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "trace.json")
	// Silence the report while the test runs; the trace file is the
	// artifact under test.
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	stdout := os.Stdout
	os.Stdout = devnull
	err = run(cliConfig{
		dataset: "movie", scale: 0.02, queryPath: queries,
		algorithm: "greedy", parallel: 2, execute: true,
		traceJSON: trace,
	})
	os.Stdout = stdout
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	type jspan struct {
		Name     string  `json:"name"`
		Children []jspan `json:"children"`
	}
	var doc struct {
		Spans []jspan `json:"spans"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	var walk func(s jspan)
	walk = func(s jspan) {
		names[s.Name] = true
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range doc.Spans {
		walk(s)
	}
	for _, want := range []string{"search", "advisor.evaluate", "physdesign.tune",
		"executor.prepare", "executor.execute", "advisor.cost-audit"} {
		if !names[want] {
			t.Errorf("trace has no %q span (%d top-level spans)", want, len(doc.Spans))
		}
	}
}

// TestRunSaveOpen drives the durable-store flags end to end: an
// advisor run with -save-dir, then a fresh process-equivalent reopen
// with -open-dir whose summary must carry the saved tables and design.
func TestRunSaveOpen(t *testing.T) {
	dir := t.TempDir()
	queries := filepath.Join(dir, "q.txt")
	if err := os.WriteFile(queries, []byte("//movie[year >= 2000]/title\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "store")
	out := captureStdout(t, func() error {
		return run(cliConfig{
			dataset: "movie", scale: 0.02, queryPath: queries,
			algorithm: "greedy", parallel: 1, execute: false,
			saveDir: store,
		})
	})
	if !strings.Contains(out, "saved store") || !strings.Contains(out, store) {
		t.Fatalf("save run did not report the store:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(store, "MANIFEST.xman")); err != nil {
		t.Fatalf("no manifest written: %v", err)
	}

	out = captureStdout(t, func() error {
		return run(cliConfig{openDir: store})
	})
	for _, want := range []string{"segment format v2, epoch 0", "reopened warm",
		"logical design (SQL schema)", "CREATE TABLE", "redo redo.log: 0 rows", "resident: tables"} {
		if !strings.Contains(out, want) {
			t.Errorf("open summary missing %q:\n%s", want, out)
		}
	}

	// A budgeted reopen reports the pager traffic alongside residency.
	out = captureStdout(t, func() error {
		return run(cliConfig{openDir: store, memBudgetMB: 1})
	})
	if !strings.Contains(out, "budget 1 MB") || !strings.Contains(out, "faults") {
		t.Errorf("budgeted open summary missing pager stats:\n%s", out)
	}

	// A paged reopen rebuilds through chunk-scan shells and says so.
	out = captureStdout(t, func() error {
		return run(cliConfig{openDir: store, memBudgetMB: 1, paged: true})
	})
	if !strings.Contains(out, "paged view:") || !strings.Contains(out, "chunk-by-chunk") {
		t.Errorf("paged open summary missing paged-view line:\n%s", out)
	}

	// A corrupted store must reopen as an error, not a summary.
	seg := filepath.Join(store, "t0000.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 1
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = runSilent(t, cliConfig{openDir: store})
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted store reopened: %v", err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it printed, failing the test if fn errors.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout := os.Stdout
	os.Stdout = w
	ferr := fn()
	os.Stdout = stdout
	w.Close()
	data, rerr := io.ReadAll(r)
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	return string(data)
}

// runSilent runs with stdout discarded and returns the error.
func runSilent(t *testing.T, c cliConfig) error {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	stdout := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = stdout }()
	return run(c)
}
