// Command xmladvisor recommends a combined logical + physical design
// for storing XML (with XSD) in a relational database, given a schema,
// a dataset (built-in generators or an XML file), and an XPath
// workload.
//
// Usage:
//
//	xmladvisor -dataset dblp -queries queries.txt -algorithm greedy
//	xmladvisor -xsd schema.xsd -xml data.xml -queries queries.txt
//
// The queries file holds one XPath query per line ('#' comments
// allowed); an optional weight may follow the query separated by a
// tab.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	xmlshred "repro"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		dataset   = flag.String("dataset", "", "built-in dataset: dblp or movie")
		scale     = flag.Float64("scale", 0.25, "built-in dataset scale factor")
		xsdPath   = flag.String("xsd", "", "XSD schema file (alternative to -dataset)")
		xmlPath   = flag.String("xml", "", "XML data file (required with -xsd)")
		queryPath = flag.String("queries", "", "workload file: one XPath query per line")
		algorithm = flag.String("algorithm", "greedy", "greedy | naive | twostep | hybrid")
		storageMB = flag.Int64("storage", 0, "storage bound in MB (0 = unbounded)")
		execute   = flag.Bool("execute", true, "load the data and measure workload execution")
		showSQL   = flag.Bool("sql", false, "print the translated SQL per query")
		trace     = flag.Bool("trace", false, "narrate the search per round on stderr")
		parallel  = flag.Int("parallel", 1, "concurrent candidate evaluations (all algorithms; results are identical at any setting)")
	)
	flag.Parse()
	if *trace {
		traceWriter = os.Stderr
	}
	if err := run(*dataset, *scale, *xsdPath, *xmlPath, *queryPath, *algorithm, *storageMB, *parallel, *execute, *showSQL); err != nil {
		fmt.Fprintln(os.Stderr, "xmladvisor:", err)
		os.Exit(1)
	}
}

// traceWriter receives search narration when -trace is set.
var traceWriter io.Writer

func run(dataset string, scale float64, xsdPath, xmlPath, queryPath, algorithm string,
	storageMB int64, parallel int, execute, showSQL bool) error {
	var tree *xmlshred.SchemaTree
	var docs []*xmlshred.Document
	switch {
	case dataset == "dblp":
		d := experiments.LoadDBLP(experiments.Scale(scale))
		tree, docs = d.Tree, d.Docs
	case dataset == "movie":
		d := experiments.LoadMovie(experiments.Scale(scale))
		tree, docs = d.Tree, d.Docs
	case xsdPath != "":
		f, err := os.Open(xsdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		tree, err = xmlshred.ParseXSD(f)
		if err != nil {
			return err
		}
		if xmlPath == "" {
			return fmt.Errorf("-xml is required with -xsd")
		}
		xf, err := os.Open(xmlPath)
		if err != nil {
			return err
		}
		defer xf.Close()
		doc, err := xmlshred.ParseXML(tree, xf)
		if err != nil {
			return err
		}
		docs = []*xmlshred.Document{doc}
	default:
		return fmt.Errorf("pass -dataset dblp|movie or -xsd schema.xsd -xml data.xml")
	}
	if queryPath == "" {
		return fmt.Errorf("-queries is required")
	}
	w, err := readWorkload(queryPath)
	if err != nil {
		return err
	}
	col := xmlshred.CollectStatistics(tree, docs...)
	adv := xmlshred.NewAdvisor(tree, col, w, core.Options{
		StorageBytes: storageMB << 20,
		Parallelism:  parallel,
		Trace:        traceWriter,
	})

	var res *xmlshred.Result
	switch algorithm {
	case "greedy":
		res, err = adv.Greedy()
	case "naive":
		res, err = adv.NaiveGreedy()
	case "twostep":
		res, err = adv.TwoStep()
	case "hybrid":
		res, err = adv.HybridBaseline()
	default:
		return fmt.Errorf("unknown algorithm %q", algorithm)
	}
	if err != nil {
		return err
	}
	if err := res.WriteReport(os.Stdout, showSQL); err != nil {
		return err
	}
	if execute {
		ex, err := adv.MeasureExecution(res, docs...)
		if err != nil {
			return err
		}
		fmt.Printf("\n-- measured execution --\nworkload time: %s (%d rows, data %d KB, structures %d KB)\n",
			ex.Elapsed, ex.Rows, ex.DataBytes>>10, ex.StructBytes>>10)
	}
	return nil
}

func readWorkload(path string) (*xmlshred.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w := &xmlshred.Workload{Name: path}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		weight := 1.0
		if i := strings.IndexByte(text, '\t'); i >= 0 {
			if v, err := strconv.ParseFloat(strings.TrimSpace(text[i+1:]), 64); err == nil {
				weight = v
				text = strings.TrimSpace(text[:i])
			}
		}
		q, err := xmlshred.ParseQuery(text)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		w.Queries = append(w.Queries, xmlshred.WorkloadQuery{XPath: q, Weight: weight})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("%s: no queries", path)
	}
	return w, nil
}
