// Command xmladvisor recommends a combined logical + physical design
// for storing XML (with XSD) in a relational database, given a schema,
// a dataset (built-in generators or an XML file), and an XPath
// workload.
//
// Usage:
//
//	xmladvisor -dataset dblp -queries queries.txt -algorithm greedy
//	xmladvisor -xsd schema.xsd -xml data.xml -queries queries.txt
//
// The queries file holds one XPath query per line ('#' comments
// allowed); an optional weight may follow the query separated by a
// tab.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	xmlshred "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/storage"
)

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.dataset, "dataset", "", "built-in dataset: dblp or movie")
	flag.Float64Var(&cfg.scale, "scale", 0.25, "built-in dataset scale factor")
	flag.StringVar(&cfg.xsdPath, "xsd", "", "XSD schema file (alternative to -dataset)")
	flag.StringVar(&cfg.xmlPath, "xml", "", "XML data file (required with -xsd)")
	flag.StringVar(&cfg.queryPath, "queries", "", "workload file: one XPath query per line")
	flag.StringVar(&cfg.algorithm, "algorithm", "greedy", "greedy | naive | twostep | hybrid")
	flag.Int64Var(&cfg.storageMB, "storage", 0, "storage bound in MB (0 = unbounded)")
	flag.BoolVar(&cfg.execute, "execute", true, "load the data, measure workload execution, and print the estimated-vs-measured cost audit")
	flag.BoolVar(&cfg.showSQL, "sql", false, "print the translated SQL per query")
	trace := flag.Bool("trace", false, "narrate the search per round on stderr")
	flag.IntVar(&cfg.parallel, "parallel", 1, "concurrent candidate evaluations (all algorithms; results are identical at any setting)")
	flag.IntVar(&cfg.workers, "workers", 0, "intra-query morsel workers for -execute measurements (0/1 = serial pipeline, -1 = all CPUs; results are identical at any setting)")
	flag.StringVar(&cfg.traceJSON, "trace-json", "", "write the structured span tree (search phases, tuner calls, executor stages) to this file as JSON")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve /debug/vars, /debug/metrics, and /debug/pprof on this address while running")
	flag.StringVar(&cfg.saveDir, "save-dir", "", "persist the loaded data and recommended design as a durable store in this directory")
	flag.StringVar(&cfg.openDir, "open-dir", "", "reopen a store saved with -save-dir, verify it, and print its summary (no advisor run)")
	flag.Int64Var(&cfg.memBudgetMB, "mem-budget", 0, "memory budget in MB for -open-dir: column chunks beyond the budget are paged in on demand and evicted (0 = unlimited, everything stays resident)")
	flag.IntVar(&cfg.chunkRows, "chunk-rows", 0, "rows per column chunk for segments written by -save-dir (0 = default 4096, -1 = legacy whole-table segments, else a positive multiple of 64)")
	flag.IntVar(&cfg.compactThreshold, "compact-threshold", 0, "redo-log rows that trigger background compaction on an opened store (0 = compact only on demand)")
	flag.BoolVar(&cfg.paged, "paged", false, "with -open-dir: rebuild through the chunk-granular paged view (Store.PagedBuilt) — tables stay on disk as schema shells and scans fault chunks under -mem-budget instead of assembling tables up front")
	flag.Parse()
	if *trace {
		traceWriter = os.Stderr
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "xmladvisor:", err)
		os.Exit(1)
	}
}

// traceWriter receives search narration when -trace is set.
var traceWriter io.Writer

// cliConfig carries the parsed command line into run.
type cliConfig struct {
	dataset, xsdPath, xmlPath, queryPath, algorithm string
	scale                                           float64
	storageMB                                       int64
	parallel, workers                               int
	execute, showSQL                                bool
	traceJSON, debugAddr                            string
	saveDir, openDir                                string
	memBudgetMB                                     int64
	chunkRows, compactThreshold                     int
	paged                                           bool
}

func run(c cliConfig) error {
	if c.openDir != "" {
		return openStore(c)
	}
	var tree *xmlshred.SchemaTree
	var docs []*xmlshred.Document
	switch {
	case c.dataset == "dblp":
		d := experiments.LoadDBLP(experiments.Scale(c.scale))
		tree, docs = d.Tree, d.Docs
	case c.dataset == "movie":
		d := experiments.LoadMovie(experiments.Scale(c.scale))
		tree, docs = d.Tree, d.Docs
	case c.xsdPath != "":
		f, err := os.Open(c.xsdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		tree, err = xmlshred.ParseXSD(f)
		if err != nil {
			return err
		}
		if c.xmlPath == "" {
			return fmt.Errorf("-xml is required with -xsd")
		}
		xf, err := os.Open(c.xmlPath)
		if err != nil {
			return err
		}
		defer xf.Close()
		doc, err := xmlshred.ParseXML(tree, xf)
		if err != nil {
			return err
		}
		docs = []*xmlshred.Document{doc}
	default:
		return fmt.Errorf("pass -dataset dblp|movie or -xsd schema.xsd -xml data.xml")
	}
	if c.queryPath == "" {
		return fmt.Errorf("-queries is required")
	}
	w, err := readWorkload(c.queryPath)
	if err != nil {
		return err
	}

	// Observability: a tracer when a trace sink is requested, a metrics
	// registry whenever either debug surface is on.
	var tr *obs.Tracer
	var reg *obs.Registry
	if c.traceJSON != "" {
		tr = obs.New()
	}
	if c.traceJSON != "" || c.debugAddr != "" {
		reg = obs.NewRegistry()
	}
	if c.debugAddr != "" {
		ds, err := obs.ServeDebug(c.debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars\n", ds.Addr)
	}

	col := xmlshred.CollectStatistics(tree, docs...)
	adv := xmlshred.NewAdvisor(tree, col, w, core.Options{
		StorageBytes: c.storageMB << 20,
		Parallelism:  c.parallel,
		Workers:      c.workers,
		Trace:        traceWriter,
		Obs:          tr,
		Registry:     reg,
	})

	var res *xmlshred.Result
	switch c.algorithm {
	case "greedy":
		res, err = adv.Greedy()
	case "naive":
		res, err = adv.NaiveGreedy()
	case "twostep":
		res, err = adv.TwoStep()
	case "hybrid":
		res, err = adv.HybridBaseline()
	default:
		return fmt.Errorf("unknown algorithm %q", c.algorithm)
	}
	if err != nil {
		return err
	}
	if err := res.WriteReport(os.Stdout, c.showSQL); err != nil {
		return err
	}
	if c.execute {
		ex, err := adv.MeasureExecution(res, docs...)
		if err != nil {
			return err
		}
		fmt.Printf("\n-- measured execution --\nworkload time: %s (%d rows, data %d KB, structures %d KB)\n",
			ex.Elapsed, ex.Rows, ex.DataBytes>>10, ex.StructBytes>>10)
		audit, err := adv.CostAudit(res, docs...)
		if err != nil {
			return err
		}
		fmt.Println()
		if err := audit.WriteTable(os.Stdout); err != nil {
			return err
		}
	}
	if c.saveDir != "" {
		_, built, err := adv.BuildFor(res, docs...)
		if err != nil {
			return err
		}
		man, err := storage.Save(c.saveDir, built, storage.Options{
			Registry:   reg,
			MappingSQL: res.Mapping.SQLSchema(),
			ChunkRows:  c.chunkRows,
		})
		if err != nil {
			return err
		}
		var rows int64
		for _, e := range man.Tables {
			rows += int64(e.Rows)
		}
		fmt.Printf("\n-- saved store --\n%d tables (%d rows) persisted to %s; reopen with -open-dir %s\n",
			len(man.Tables), rows, c.saveDir, c.saveDir)
	}
	if c.traceJSON != "" {
		if err := writeTrace(tr, c.traceJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", tr.SpanCount(), c.traceJSON)
	}
	return nil
}

// openStore reopens a saved store: it verifies the manifest, loads and
// validates every segment, rebuilds the physical design, and prints a
// summary with the cold reopen latency, the redo-log tail, and what the
// pager kept resident under the memory budget.
func openStore(c cliConfig) error {
	reg := obs.NewRegistry()
	st, err := storage.Open(c.openDir, storage.Options{
		Registry:       reg,
		MemBudgetBytes: c.memBudgetMB << 20,
		CompactRecords: c.compactThreshold,
	})
	if err != nil {
		return err
	}
	defer st.Close()
	man := st.Manifest()
	fmt.Printf("store %s (segment format v%d, epoch %d)\n", c.openDir, man.FormatVersion, man.Epoch)
	rebuild := st.Built
	if c.paged {
		rebuild = st.PagedBuilt
	}
	built, err := rebuild()
	if err != nil {
		return err
	}
	fmt.Printf("%-20s %10s %12s %12s %10s  %s\n", "table", "rows", "generation", "bytes", "chunk", "segment")
	for _, e := range man.Tables {
		chunk := "whole"
		if e.ChunkRows > 0 {
			chunk = fmt.Sprintf("%d", e.ChunkRows)
		}
		fmt.Printf("%-20s %10d %12d %12d %10s  %s\n", e.Name, e.Rows, e.Generation, e.Bytes, chunk, e.File)
	}
	var redoBytes int64
	if man.RedoFile != "" {
		if fi, err := os.Stat(filepath.Join(c.openDir, man.RedoFile)); err == nil {
			redoBytes = fi.Size()
		}
	}
	fmt.Printf("redo %s: %d rows, %d KB (generation %d)", man.RedoFile, st.RedoRows(), redoBytes>>10, man.Epoch)
	if c.compactThreshold > 0 && st.RedoRows() >= c.compactThreshold {
		fmt.Printf("  [compaction due: tail >= %d rows]", c.compactThreshold)
	}
	fmt.Println()
	if man.Design != nil {
		if s := man.Design.String(); s != "" {
			fmt.Printf("\n-- physical design --\n%s", s)
		}
	}
	if man.MappingSQL != "" {
		fmt.Printf("\n-- logical design (SQL schema) --\n%s\n", man.MappingSQL)
	}
	snap := reg.Snapshot()
	tableRes, chunkRes := st.ResidentBytes()
	fmt.Printf("\nreopened warm: %d tables, data %d KB, structures %d KB, segments read %.0f KB, open+rebuild %.1f ms\n",
		len(man.Tables), built.DB.Bytes()>>10, built.StructBytes>>10,
		snap["storage.segment.bytes_read"]/1024,
		snap["storage.open.ms"]+snap["storage.built.ms"]+snap["storage.paged_built.ms"])
	fmt.Printf("resident: tables %d KB, chunk cache %d KB", tableRes>>10, chunkRes>>10)
	if c.memBudgetMB > 0 {
		fmt.Printf(" (budget %d MB, faults %.0f, evictions %.0f)",
			c.memBudgetMB, snap["storage.pager.faults"], snap["storage.pager.evictions"])
	}
	fmt.Println()
	if c.paged {
		srcs := 0
		for _, e := range man.Tables {
			if built.ScanSource(e.Name) != nil {
				srcs++
			}
		}
		fmt.Printf("paged view: %d of %d tables serve scans chunk-by-chunk through the pager; shells assemble only for index/view/partition builds and join build sides\n",
			srcs, len(man.Tables))
	}
	return nil
}

// writeTrace validates the span tree and writes it to path as JSON.
func writeTrace(tr *obs.Tracer, path string) error {
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace validation: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readWorkload(path string) (*xmlshred.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w := &xmlshred.Workload{Name: path}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		weight := 1.0
		if i := strings.IndexByte(text, '\t'); i >= 0 {
			if v, err := strconv.ParseFloat(strings.TrimSpace(text[i+1:]), 64); err == nil {
				weight = v
				text = strings.TrimSpace(text[:i])
			}
		}
		q, err := xmlshred.ParseQuery(text)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		w.Queries = append(w.Queries, xmlshred.WorkloadQuery{XPath: q, Weight: weight})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("%s: no queries", path)
	}
	return w, nil
}
