// Command benchguard enforces the executor-performance contract in CI:
// the disabled-tracing execution path (the nil-tracer default every
// existing caller gets) must not regress against the checked-in
// BENCH_PR3.json baseline, and enabled tracing must stay cheap.
//
// It reads `go test -bench` output on stdin, extracts ns/op for the
// executor benchmarks, and compares:
//
//  1. disabled-path drift: ExecutePrepared / ExecuteReference measured
//     now, against the same ratio from BENCH_PR3.json. Normalizing by
//     the reference executor — seed code this and later PRs do not
//     touch — cancels machine-speed differences between the recording
//     session and the CI runner, so the bound is about the code, not
//     the hardware.
//  2. enabled-tracing overhead: ExecutePreparedTraced / ExecutePrepared
//     from the same run.
//  3. columnar-kernel drift (optional, -columnar BENCH_PR6.json): the
//     same normalized ratio against the columnar baseline, which pins
//     the PR 6 speedup — a change that quietly drops the batch executor
//     back toward the row-store ratio fails even though it would still
//     clear the looser PR 3 bound.
//
// -mode qps guards the PR 10 service path against BENCH_PR10.json:
// the W4/W1 sustained-QPS speedup is asserted from the run itself
// (gated on the run's own reported cpus metric, because a one-thread
// runner cannot show a parallel speedup), the service-dispatch cost of
// W1 over the bare engine is bounded from the same run, and the
// W1/Direct ratio is pinned against the baseline when the run and the
// baseline fall in the same cpu category.
//
// Three storage modes ride on the same normalization: -mode reopen
// pins the StoreReopen/SegmentDecode ratio against BENCH_PR7.json;
// -mode paging pins the chunked, budgeted, and resident reopen paths
// plus the group-commit amortization against BENCH_PR8.json (with
// -resident BENCH_PR7.json holding the unbudgeted path to the PR 7
// numbers); and -mode chunkscan pins the chunk-granular query path
// against BENCH_PR9.json — the budgeted scan's pager high-water mark
// must stay within its residency bound (peak_over_bound <= 1, from the
// run itself), and the ChunkScanQuery/AssembledScanQuery cost factor
// must not drift.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkExecute...' -benchtime 2s | \
//	    go run ./scripts/benchguard -baseline BENCH_PR3.json -columnar BENCH_PR6.json
//	go test -run '^$' -bench 'SegmentDecode|StoreReopen|Append' ./internal/storage/ | \
//	    go run ./scripts/benchguard -mode paging -baseline BENCH_PR8.json -resident BENCH_PR7.json
//	go test -run '^$' -bench 'ScanQuery' ./internal/storage/ | \
//	    go run ./scripts/benchguard -mode chunkscan -baseline BENCH_PR9.json
//	go test -run '^$' -bench 'BenchmarkService' ./internal/service/loadgen/ | \
//	    go run ./scripts/benchguard -mode qps -baseline BENCH_PR10.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// maxDisabledDrift bounds the normalized disabled-path ratio change;
// maxEnabledOverhead bounds traced-vs-untraced from one run;
// maxWorkersOverhead bounds the morsel pool at 4 workers against the
// serial path from the same run. The workers bound is a gross-pathology
// guard (an accidental quadratic merge or a busy-wait would blow it),
// not a speedup contract: on a multi-core runner the ratio drops below
// 1, but on a single-hardware-thread runner four workers time-slice one
// core and measure pure scheduling contention (~1.26x observed), so the
// bound must sit above that noise floor.
const (
	maxDisabledDrift   = 1.05
	maxEnabledOverhead = 1.25
	maxWorkersOverhead = 1.50
	// maxReopenDrift bounds the -mode reopen check: StoreReopen /
	// SegmentDecode measured now against the same ratio in
	// BENCH_PR7.json. The reopen path adds file reads, whole-file CRCs,
	// manifest checks, and redo replay on top of the codec, so the
	// ratio is what the bound pins — a reopen-latency regression that
	// is not just "the codec got slower everywhere" fails.
	maxReopenDrift = 1.50
	// -mode paging bounds. maxResidentDrift holds the fully resident
	// (version-1, unbudgeted) reopen within noise of the PR 7 numbers —
	// the paging machinery must cost nothing when it is not used.
	// maxPagingDrift holds the chunked and budgeted reopens against the
	// PR 8 baseline the same normalized way. maxBatchPerRowFraction is
	// the group-commit contract from a single run: 100 rows under one
	// fsync must beat 100 separate fsyncs per row by a wide margin.
	maxResidentDrift       = 1.50
	maxPagingDrift         = 1.50
	maxBatchPerRowFraction = 0.80
	// -mode chunkscan bounds. maxPeakOverBound is the PR 9 memory
	// contract from a single run: BenchmarkChunkScanQuery reports the
	// pager's resident high-water mark over (budget + one chunk per
	// concurrent holder), and a budgeted scan whose peak exceeds that
	// bound is leaking residency — no baseline can excuse it.
	// maxChunkScanRatio bounds the ChunkScanQuery/AssembledScanQuery
	// ratio drift against the PR 9 baseline: faulting chunks per
	// execution costs a constant factor over resident tables, and this
	// pins that factor so chunk-path regressions cannot hide behind an
	// executor that got slower everywhere.
	maxPeakOverBound  = 1.00
	maxChunkScanDrift = 1.50
	// -mode qps bounds. The speedup contract is decided from the run's
	// own cpus metric: with >= 2 hardware threads, four-worker queries
	// must sustain at least minQPSSpeedupMulticore times the QPS of
	// workers=1 on the identical load — the whole point of sharing one
	// build behind a worker pool. On a single-thread runner four
	// workers can only time-slice one core, so the same ratio measures
	// pure dispatch/scheduling cost and only minQPSSpeedupSingleCore
	// (a gross-pathology floor: a deadlocked pool or serialized morsel
	// queue would sink below it) applies. maxServiceOverhead bounds
	// W1/Direct from one run — everything the service adds per request
	// (HTTP-free in-process dispatch, admission, plan-cache lookup)
	// over the bare engine executing the same warmed plans; on a
	// multi-core runner the concurrent W1 sessions push the ratio
	// below 1, so the bound guards pathology, not a constant.
	// maxQPSDrift pins W1/Direct against BENCH_PR10.json, normalized
	// by the bare engine from each run to cancel machine speed; the
	// comparison only holds within a cpu category (concurrency helps
	// W1 but not Direct on multi-core), so it is skipped when the run
	// and the baseline disagree about cpus >= 2.
	minQPSSpeedupMulticore  = 1.15
	minQPSSpeedupSingleCore = 0.60
	maxServiceOverhead      = 1.50
	maxQPSDrift             = 1.50
)

type baseline struct {
	Results []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"results"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\w+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// metricPair matches the "<value> <unit>" measurements following the
// iteration count, covering both ns/op and custom b.ReportMetric units
// (e.g. "0.86 peak_over_bound").
var metricPair = regexp.MustCompile(`\s(\d+(?:\.\d+)?(?:e[+-]?\d+)?) ([A-Za-z_][\w/]*)`)

// loadBaselineMetrics returns every numeric field of each baseline
// result (ns_per_op plus custom metrics like qps and cpus), keyed by
// benchmark name — the qps mode needs more than ns_per_op.
func loadBaselineMetrics(path string) map[string]map[string]float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base struct {
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		fatal("parsing baseline: %v", err)
	}
	out := map[string]map[string]float64{}
	for _, r := range base.Results {
		name, _ := r["name"].(string)
		if name == "" {
			continue
		}
		m := map[string]float64{}
		for k, v := range r {
			if f, ok := v.(float64); ok {
				m[k] = f
			}
		}
		out[name] = m
	}
	return out
}

func loadBaseline(path string) map[string]float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal("parsing baseline: %v", err)
	}
	ns := map[string]float64{}
	for _, r := range base.Results {
		ns[r.Name] = r.NsPerOp
	}
	return ns
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR3.json", "baseline benchmark JSON")
	columnarPath := flag.String("columnar", "", "columnar baseline JSON (BENCH_PR6.json); empty skips the columnar bound")
	mode := flag.String("mode", "executor", `guard mode: "executor" (the PR 3/6 executor bounds), "reopen" (store reopen latency vs the PR 7 baseline), "paging" (memory-budgeted paging + group commit vs the PR 8 baseline), "chunkscan" (budgeted query peak residency + chunk-scan cost vs the PR 9 baseline), or "qps" (service sustained-QPS speedup + dispatch overhead vs the PR 10 baseline)`)
	residentPath := flag.String("resident", "", "resident-path baseline JSON (BENCH_PR7.json) for -mode paging; empty skips the resident bound")
	flag.Parse()

	measured := map[string]float64{}
	metrics := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the bench output through for the CI log
		if m := benchLine.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[2], 64)
			if err == nil {
				// With -count=N each benchmark reports several times;
				// keep the fastest run — the standard robust estimator
				// for "how fast can this code go", which shrugs off the
				// scheduling noise of shared CI runners.
				if old, ok := measured[m[1]]; !ok || v < old {
					measured[m[1]] = v
				}
			}
			// Custom b.ReportMetric units on the same line are limits,
			// not speeds: keep the worst (largest) observation.
			for _, p := range metricPair.FindAllStringSubmatch(line, -1) {
				if p[2] == "ns/op" {
					continue
				}
				v, err := strconv.ParseFloat(p[1], 64)
				if err != nil {
					continue
				}
				if metrics[m[1]] == nil {
					metrics[m[1]] = map[string]float64{}
				}
				if v > metrics[m[1]][p[2]] {
					metrics[m[1]][p[2]] = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal("reading bench output: %v", err)
	}

	need := func(src map[string]float64, name, where string) float64 {
		v, ok := src[name]
		if !ok || v <= 0 {
			fatal("missing %s in %s", name, where)
		}
		return v
	}

	if *mode == "reopen" {
		// Store-reopen drift: BenchmarkStoreReopen covers Open + every
		// segment load (checksum, decode, validate); BenchmarkSegmentDecode
		// is the pure codec, which normalizes out machine speed the same
		// way the reference executor does for the executor bounds.
		baseNs := loadBaseline(*baselinePath)
		decBase := need(baseNs, "BenchmarkSegmentDecode", *baselinePath)
		reopenBase := need(baseNs, "BenchmarkStoreReopen", *baselinePath)
		decNow := need(measured, "BenchmarkSegmentDecode", "bench output")
		// BENCH_PR7.json recorded the whole-table format; since PR 8
		// BenchmarkStoreReopen measures the chunked default and
		// BenchmarkStoreReopenV1 is the like-for-like path — prefer it
		// when the run includes it.
		reopenNow, ok := measured["BenchmarkStoreReopenV1"]
		if !ok {
			reopenNow = need(measured, "BenchmarkStoreReopen", "bench output")
		}
		drift := (reopenNow / decNow) / (reopenBase / decBase)
		fmt.Printf("benchguard: reopen drift %.3f (bound %.2f)\n", drift, maxReopenDrift)
		if drift > maxReopenDrift {
			fmt.Printf("benchguard: FAIL: store reopen regressed %.1f%% vs %s (normalized by the segment codec)\n",
				(drift-1)*100, *baselinePath)
			os.Exit(1)
		}
		fmt.Println("benchguard: OK")
		return
	}
	if *mode == "paging" {
		// All reopen-shaped bounds are normalized by the segment codec
		// from the same run/baseline, cancelling machine speed.
		baseNs := loadBaseline(*baselinePath)
		decBase := need(baseNs, "BenchmarkSegmentDecode", *baselinePath)
		decNow := need(measured, "BenchmarkSegmentDecode", "bench output")
		failed := false

		// Chunked + budgeted reopen vs the PR 8 baseline.
		for _, name := range []string{"BenchmarkStoreReopen", "BenchmarkStoreReopenBudgeted"} {
			base := need(baseNs, name, *baselinePath)
			now := need(measured, name, "bench output")
			drift := (now / decNow) / (base / decBase)
			fmt.Printf("benchguard: %s drift %.3f (bound %.2f)\n", name, drift, maxPagingDrift)
			if drift > maxPagingDrift {
				fmt.Printf("benchguard: FAIL: %s regressed %.1f%% vs %s (normalized by the segment codec)\n",
					name, (drift-1)*100, *baselinePath)
				failed = true
			}
		}

		// The fully resident path must stay within noise of PR 7: the
		// old baseline's BenchmarkStoreReopen recorded the whole-table
		// format, which BenchmarkStoreReopenV1 still exercises.
		if *residentPath != "" {
			resNs := loadBaseline(*residentPath)
			decRes := need(resNs, "BenchmarkSegmentDecode", *residentPath)
			reopenRes := need(resNs, "BenchmarkStoreReopen", *residentPath)
			v1Now := need(measured, "BenchmarkStoreReopenV1", "bench output")
			drift := (v1Now / decNow) / (reopenRes / decRes)
			fmt.Printf("benchguard: resident (v1) drift %.3f vs %s (bound %.2f)\n", drift, *residentPath, maxResidentDrift)
			if drift > maxResidentDrift {
				fmt.Printf("benchguard: FAIL: resident reopen path regressed %.1f%% vs %s — paging must be free when unused\n",
					(drift-1)*100, *residentPath)
				failed = true
			}
		}

		// Group commit: per-row cost of a 100-row batch vs one row per
		// fsync, from this run alone (no baseline needed — the contract
		// is the amortization itself).
		single := need(measured, "BenchmarkAppendSingle", "bench output")
		batch := need(measured, "BenchmarkAppendBatch100", "bench output")
		perRow := batch / 100
		frac := perRow / single
		fmt.Printf("benchguard: group-commit per-row fraction %.3f (bound %.2f)\n", frac, maxBatchPerRowFraction)
		if frac > maxBatchPerRowFraction {
			fmt.Printf("benchguard: FAIL: batched appends cost %.0f%% of single appends per row — group commit is not amortizing the fsync\n", frac*100)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("benchguard: OK")
		return
	}
	if *mode == "chunkscan" {
		failed := false
		// Memory contract from this run alone: the budgeted scan's pager
		// high-water mark must stay within budget + one chunk per
		// concurrent holder (the benchmark computes the bound and
		// reports the ratio).
		peakM, ok := metrics["BenchmarkChunkScanQuery"]
		if !ok {
			fatal("missing BenchmarkChunkScanQuery metrics in bench output")
		}
		peak, ok := peakM["peak_over_bound"]
		if !ok || peak <= 0 {
			fatal("missing peak_over_bound metric in bench output")
		}
		fmt.Printf("benchguard: chunk-scan peak_over_bound %.3f (bound %.2f)\n", peak, maxPeakOverBound)
		if peak > maxPeakOverBound {
			fmt.Printf("benchguard: FAIL: budgeted chunk scan peaked at %.0f%% of the residency bound — the pager is leaking resident bytes\n", peak*100)
			failed = true
		}
		// Chunk-faulting cost factor vs the PR 9 baseline, normalized by
		// the assembled-path execution of the same plan from the same
		// run/baseline (cancels machine speed like the other modes).
		baseNs := loadBaseline(*baselinePath)
		asmBase := need(baseNs, "BenchmarkAssembledScanQuery", *baselinePath)
		pagedBase := need(baseNs, "BenchmarkChunkScanQuery", *baselinePath)
		asmNow := need(measured, "BenchmarkAssembledScanQuery", "bench output")
		pagedNow := need(measured, "BenchmarkChunkScanQuery", "bench output")
		drift := (pagedNow / asmNow) / (pagedBase / asmBase)
		fmt.Printf("benchguard: chunk-scan drift %.3f (bound %.2f)\n", drift, maxChunkScanDrift)
		if drift > maxChunkScanDrift {
			fmt.Printf("benchguard: FAIL: chunk-scan execution regressed %.1f%% vs %s (normalized by the assembled path)\n",
				(drift-1)*100, *baselinePath)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("benchguard: OK")
		return
	}
	if *mode == "qps" {
		metric := func(bench, unit string) float64 {
			m, ok := metrics[bench]
			if !ok {
				fatal("missing %s metrics in bench output", bench)
			}
			v, ok := m[unit]
			if !ok || v <= 0 {
				fatal("missing %s metric for %s in bench output", unit, bench)
			}
			return v
		}
		failed := false

		// Multi-worker speedup (or single-core dispatch floor) from
		// this run alone, decided by the run's own cpus metric.
		qps1 := metric("BenchmarkServiceQPSW1", "qps")
		qps4 := metric("BenchmarkServiceQPSW4", "qps")
		cpus := metric("BenchmarkServiceQPSW1", "cpus")
		speedup := qps4 / qps1
		bound, kind := minQPSSpeedupSingleCore, "single-core dispatch floor"
		if cpus >= 2 {
			bound, kind = minQPSSpeedupMulticore, "multi-core speedup"
		}
		fmt.Printf("benchguard: qps W4/W1 speedup %.3f on %.0f cpus (%s bound %.2f)\n", speedup, cpus, kind, bound)
		if speedup < bound {
			fmt.Printf("benchguard: FAIL: workers=4 sustained %.1f qps vs %.1f at workers=1 — the shared worker pool is not paying for itself\n", qps4, qps1)
			failed = true
		}

		// Service-dispatch cost over the bare engine from the same run.
		w1Now := need(measured, "BenchmarkServiceQPSW1", "bench output")
		dirNow := need(measured, "BenchmarkServiceDirect", "bench output")
		overhead := w1Now / dirNow
		fmt.Printf("benchguard: service overhead W1/Direct %.3f (bound %.2f)\n", overhead, maxServiceOverhead)
		if overhead > maxServiceOverhead {
			fmt.Printf("benchguard: FAIL: service dispatch costs %.1f%% over the bare engine on the same warmed plans\n", (overhead-1)*100)
			failed = true
		}

		// W1/Direct drift vs the baseline, normalized by the bare
		// engine from each run. Only comparable within a cpu category:
		// the four concurrent W1 sessions speed up with cores while the
		// serial Direct loop does not.
		base := loadBaselineMetrics(*baselinePath)
		needf := func(bench, field string) float64 {
			m, ok := base[bench]
			if !ok {
				fatal("missing %s in %s", bench, *baselinePath)
			}
			v, ok := m[field]
			if !ok || v <= 0 {
				fatal("missing %s for %s in %s", field, bench, *baselinePath)
			}
			return v
		}
		cpusBase := needf("BenchmarkServiceQPSW1", "cpus")
		if (cpus >= 2) == (cpusBase >= 2) {
			drift := overhead / (needf("BenchmarkServiceQPSW1", "ns_per_op") / needf("BenchmarkServiceDirect", "ns_per_op"))
			fmt.Printf("benchguard: qps drift %.3f (bound %.2f)\n", drift, maxQPSDrift)
			if drift > maxQPSDrift {
				fmt.Printf("benchguard: FAIL: service path regressed %.1f%% vs %s (normalized by the bare engine)\n",
					(drift-1)*100, *baselinePath)
				failed = true
			}
		} else {
			fmt.Printf("benchguard: qps drift skipped: run has %.0f cpus, baseline %s recorded %.0f — W1/Direct is only comparable within a cpu category\n",
				cpus, *baselinePath, cpusBase)
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("benchguard: OK")
		return
	}
	if *mode != "executor" {
		fatal("unknown -mode %q", *mode)
	}

	baseNs := loadBaseline(*baselinePath)
	refBase := need(baseNs, "BenchmarkExecuteReference", *baselinePath)
	prepBase := need(baseNs, "BenchmarkExecutePrepared", *baselinePath)
	refNow := need(measured, "BenchmarkExecuteReference", "bench output")
	prepNow := need(measured, "BenchmarkExecutePrepared", "bench output")
	tracedNow := need(measured, "BenchmarkExecutePreparedTraced", "bench output")

	drift := (prepNow / refNow) / (prepBase / refBase)
	overhead := tracedNow / prepNow
	fmt.Printf("benchguard: disabled-path drift %.3f (bound %.2f), enabled-tracing overhead %.3f (bound %.2f)\n",
		drift, maxDisabledDrift, overhead, maxEnabledOverhead)
	failed := false
	if drift > maxDisabledDrift {
		fmt.Printf("benchguard: FAIL: disabled-tracing executor path regressed %.1f%% vs %s (normalized by the reference executor)\n",
			(drift-1)*100, *baselinePath)
		failed = true
	}
	if overhead > maxEnabledOverhead {
		fmt.Printf("benchguard: FAIL: enabled tracing costs %.1f%% over the disabled path\n", (overhead-1)*100)
		failed = true
	}
	if *columnarPath != "" {
		colNs := loadBaseline(*columnarPath)
		refCol := need(colNs, "BenchmarkExecuteReference", *columnarPath)
		prepCol := need(colNs, "BenchmarkExecutePrepared", *columnarPath)
		colDrift := (prepNow / refNow) / (prepCol / refCol)
		fmt.Printf("benchguard: columnar drift %.3f (bound %.2f)\n", colDrift, maxDisabledDrift)
		if colDrift > maxDisabledDrift {
			fmt.Printf("benchguard: FAIL: batch executor regressed %.1f%% vs the columnar baseline %s (normalized by the reference executor)\n",
				(colDrift-1)*100, *columnarPath)
			failed = true
		}
	}
	// The workers bound is optional: it only applies when the bench run
	// included BenchmarkExecutePreparedWorkers4 (older baselines and
	// partial runs skip it).
	if w4, ok := measured["BenchmarkExecutePreparedWorkers4"]; ok && w4 > 0 {
		wover := w4 / prepNow
		fmt.Printf("benchguard: workers=4 overhead %.3f (bound %.2f)\n", wover, maxWorkersOverhead)
		if wover > maxWorkersOverhead {
			fmt.Printf("benchguard: FAIL: morsel pool at 4 workers costs %.1f%% over the serial path\n", (wover-1)*100)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}

func fatal(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", a...)
	os.Exit(1)
}
