// Package xmlshred is a combined logical + physical design advisor for
// storing XML (with XSD) in SQL databases — a from-scratch Go
// reproduction of Chaudhuri, Chen, Shim, and Wu, "Storing XML (with
// XSD) in SQL Databases: Interplay of Logical and Physical Designs"
// (ICDE 2004 / IEEE TKDE 17(12), 2005).
//
// Given an XSD schema, an XPath workload, and a storage bound, the
// advisor searches the combined space of XML-to-relational mappings
// (outlining/inlining, type split/merge, union distribution/
// factorization, repetition split/merge) and relational physical
// designs (indexes, materialized views, vertical partitions), returning
// the mapping and configuration that minimize the estimated workload
// cost. The full substrate — XSD parsing, XPath parsing, shredding,
// sorted outer-union SQL translation, a cost-based optimizer, an
// execution engine, and an index-tuning tool — is implemented in this
// module with no dependencies beyond the Go standard library.
//
// Quick start:
//
//	tree := xmlshred.MovieSchema()
//	doc := xmlshred.GenerateMovie(tree, xmlshred.MovieOptions{Movies: 10000, Seed: 1})
//	col := xmlshred.CollectStatistics(tree, doc)
//	w := xmlshred.MustWorkload("demo",
//		`//movie[year >= 2000]/(title | box_office)`,
//		`//movie[genre = "genre-03"]/(title | actor)`)
//	adv := xmlshred.NewAdvisor(tree, col, w, xmlshred.Options{})
//	res, err := adv.Greedy()
//	// res.Mapping.SQLSchema(), res.Config, res.EstCost ...
package xmlshred

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/physdesign"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// Schema-layer types.
type (
	// SchemaTree is an annotated XSD schema tree (Section 2 of the
	// paper): constructor nodes, tag names, simple types, and
	// annotations naming target relations.
	SchemaTree = schema.Tree
	// SchemaNode is one node of a SchemaTree.
	SchemaNode = schema.Node
	// Distribution records a union distribution on an annotated node.
	Distribution = schema.Distribution
)

// Data-layer types.
type (
	// Document is an in-memory XML document aligned with a schema.
	Document = xmlgen.Doc
	// Statistics is the finest-granularity statistics collection the
	// advisor costs every candidate mapping from.
	Statistics = stats.Collection
	// Database is loaded relational data.
	Database = rel.Database
	// DBLPOptions sizes the DBLP generator.
	DBLPOptions = xmlgen.DBLPOptions
	// MovieOptions sizes the Movie generator.
	MovieOptions = xmlgen.MovieOptions
)

// Query/mapping-layer types.
type (
	// XPathQuery is a parsed query in the paper's XPath subset.
	XPathQuery = xpath.Query
	// Workload is a named weighted query set.
	Workload = workload.Workload
	// WorkloadQuery is one weighted workload entry.
	WorkloadQuery = workload.Query
	// WorkloadParams controls random workload generation (Section
	// 5.1.3).
	WorkloadParams = workload.Params
	// Mapping is a compiled XML-to-relational mapping.
	Mapping = shred.Mapping
	// SQLQuery is a translated sorted outer-union statement.
	SQLQuery = sqlast.Query
)

// Advisor-layer types.
type (
	// Options configures the search (storage bound, merging strategy,
	// ablation switches).
	Options = core.Options
	// Result is a search outcome: logical mapping + physical design.
	Result = core.Result
	// Execution is a measured workload execution.
	Execution = core.Execution
	// Advisor runs the search algorithms of the paper.
	Advisor = core.Advisor
	// Config is a physical configuration (indexes, views, vertical
	// partitions).
	Config = physical.Config
	// Index is a composite-key secondary index with INCLUDE columns.
	Index = physical.Index
	// MaterializedView is a parent-child join view.
	MaterializedView = physical.View
	// VerticalPartition splits a table's columns into groups.
	VerticalPartition = physical.VPartition
)

// Merge strategies for Section 4.7 candidate merging.
const (
	MergeGreedy     = core.MergeGreedy
	MergeNone       = core.MergeNone
	MergeExhaustive = core.MergeExhaustive
)

// ParseXSD parses an XSD document (the supported subset covers
// sequences, choices, occurrence bounds, named simple and complex
// types, and annotation extension attributes).
func ParseXSD(r io.Reader) (*SchemaTree, error) { return schema.ParseXSD(r) }

// ParseXSDString parses an XSD document from a string.
func ParseXSDString(s string) (*SchemaTree, error) { return schema.ParseXSDString(s) }

// ParseDTD parses a DTD rooted at the named element (the paper's
// footnote 3: DTD input is supported by conversion to the schema-tree
// form).
func ParseDTD(r io.Reader, root string) (*SchemaTree, error) { return schema.ParseDTD(r, root) }

// ParseDTDString parses a DTD from a string.
func ParseDTDString(s, root string) (*SchemaTree, error) { return schema.ParseDTDString(s, root) }

// WriteXSD serializes a schema tree back to XSD.
func WriteXSD(w io.Writer, t *SchemaTree) error { return schema.WriteXSD(w, t) }

// DBLPSchema returns the paper's Fig. 1a DBLP schema with hybrid
// inlining annotations.
func DBLPSchema() *SchemaTree { return schema.DBLP() }

// MovieSchema returns the paper's Fig. 1b Movie schema with hybrid
// inlining annotations.
func MovieSchema() *SchemaTree { return schema.Movie() }

// ApplyHybridInlining annotates a tree per the hybrid inlining mapping
// of Shanmugasundaram et al. — the default mapping when no workload is
// known.
func ApplyHybridInlining(t *SchemaTree) *SchemaTree { return schema.ApplyHybridInlining(t) }

// GenerateDBLP builds the DBLP-like dataset (skewed author
// cardinality, Zipf conference distribution).
func GenerateDBLP(t *SchemaTree, opts DBLPOptions) *Document { return xmlgen.GenerateDBLP(t, opts) }

// GenerateMovie builds the synthetic Movie dataset (uniform values).
func GenerateMovie(t *SchemaTree, opts MovieOptions) *Document { return xmlgen.GenerateMovie(t, opts) }

// ParseXML parses XML text into a document aligned with the schema and
// validates it.
func ParseXML(t *SchemaTree, r io.Reader) (*Document, error) { return xmlgen.ParseXML(t, r) }

// WriteXML serializes a document.
func WriteXML(w io.Writer, d *Document) error { return xmlgen.WriteXML(w, d) }

// CollectStatistics gathers the Section 4.1 statistics from documents;
// collect once per dataset and reuse across advisor runs.
func CollectStatistics(t *SchemaTree, docs ...*Document) *Statistics {
	return xmlgen.CollectStats(t, docs...)
}

// ParseQuery parses an XPath query in the supported subset.
func ParseQuery(s string) (*XPathQuery, error) { return xpath.Parse(s) }

// MustWorkload builds a unit-weight workload from query strings,
// panicking on parse errors (for examples and tests).
func MustWorkload(name string, queries ...string) *Workload {
	w := &Workload{Name: name}
	for _, q := range queries {
		w.Queries = append(w.Queries, WorkloadQuery{XPath: xpath.MustParse(q), Weight: 1})
	}
	return w
}

// GenerateWorkload builds a random workload in the paper's style
// (selectivity band, projection count band).
func GenerateWorkload(t *SchemaTree, col *Statistics, p WorkloadParams) (*Workload, error) {
	return workload.Generate(t, col, p)
}

// StandardWorkloadParams returns the paper's four parameter
// combinations ({LP,HP} x {LS,HS}) at the given workload size.
func StandardWorkloadParams(count int, seed int64) []WorkloadParams {
	return workload.StandardParams(count, seed)
}

// NewAdvisor creates an advisor over a schema, statistics, and
// workload.
func NewAdvisor(t *SchemaTree, col *Statistics, w *Workload, opts Options) *Advisor {
	return core.New(t, col, w, opts)
}

// CompileMapping compiles an annotated schema tree into its relational
// mapping (Section 2 mapping rules).
func CompileMapping(t *SchemaTree) (*Mapping, error) { return shred.Compile(t) }

// ShredDocuments loads documents into a fresh database under a
// mapping.
func ShredDocuments(m *Mapping, docs ...*Document) (*Database, error) {
	return shred.Shred(m, docs...)
}

// TranslateQuery translates an XPath query to sorted outer-union SQL
// under a mapping.
func TranslateQuery(m *Mapping, q *XPathQuery) (*SQLQuery, error) {
	return translate.Translate(m, q)
}

// ExecuteQuery plans and runs a translated query over loaded data
// under a physical configuration, returning the output rows.
func ExecuteQuery(db *Database, cfg *Config, q *SQLQuery) ([][]rel.Value, []string, error) {
	return ExecuteQueryContext(context.Background(), db, cfg, q)
}

// ExecuteQueryContext is ExecuteQuery with cancellation: ctx aborts
// plan compilation and execution promptly (the engine polls it once
// per scanned batch) without corrupting any cached execution state.
func ExecuteQueryContext(ctx context.Context, db *Database, cfg *Config, q *SQLQuery) ([][]rel.Value, []string, error) {
	if cfg == nil {
		cfg = &Config{}
	}
	built, err := engine.Build(db, cfg)
	if err != nil {
		return nil, nil, err
	}
	opt := optimizer.New(stats.FromDatabase(db))
	plan, err := opt.PlanQuery(q, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := engine.ExecuteContext(ctx, built, plan)
	if err != nil {
		return nil, nil, err
	}
	return res.Rows, res.Cols, nil
}

// TunePhysicalDesign runs the physical design tool alone on a
// translated workload (the Index Tuning Wizard stand-in).
func TunePhysicalDesign(m *Mapping, col *Statistics, w *Workload, storageBytes int64) (*Config, error) {
	prov := shred.DeriveStats(m, col)
	var pw physdesign.Workload
	for _, q := range w.Queries {
		sql, err := translate.Translate(m, q.XPath)
		if err != nil {
			return nil, err
		}
		pw = append(pw, physdesign.WeightedQuery{Q: sql, Weight: q.Weight})
	}
	rec, err := physdesign.Tune(pw, prov, physdesign.Options{StorageBytes: storageBytes})
	if err != nil {
		return nil, err
	}
	return rec.Config, nil
}
