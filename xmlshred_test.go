package xmlshred_test

import (
	"bytes"
	"strings"
	"testing"

	xmlshred "repro"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow end
// to end through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	tree := xmlshred.MovieSchema()
	doc := xmlshred.GenerateMovie(tree, xmlshred.MovieOptions{Movies: 400, Seed: 1})
	col := xmlshred.CollectStatistics(tree, doc)
	w := xmlshred.MustWorkload("t",
		`//movie[year >= 2000]/(title | box_office)`,
		`//movie[genre = "genre-03"]/(title | actor)`,
	)
	adv := xmlshred.NewAdvisor(tree, col, w, xmlshred.Options{})
	res, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if res.EstCost <= 0 || res.Mapping == nil || res.Config == nil {
		t.Fatalf("degenerate result: %+v", res)
	}
	ex, err := adv.MeasureExecution(res, doc)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Rows == 0 || ex.Elapsed <= 0 {
		t.Errorf("execution: %+v", ex)
	}
}

func TestPublicAPILowLevel(t *testing.T) {
	tree := xmlshred.MovieSchema()
	doc := xmlshred.GenerateMovie(tree, xmlshred.MovieOptions{Movies: 300, Seed: 2})
	col := xmlshred.CollectStatistics(tree, doc)
	m, err := xmlshred.CompileMapping(tree)
	if err != nil {
		t.Fatal(err)
	}
	db, err := xmlshred.ShredDocuments(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	q, err := xmlshred.ParseQuery(`//movie[year >= 2000]/title`)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := xmlshred.TranslateQuery(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.SQL(), "SELECT") {
		t.Error("SQL rendering broken")
	}
	w := &xmlshred.Workload{Name: "x", Queries: []xmlshred.WorkloadQuery{{XPath: q, Weight: 1}}}
	cfg, err := xmlshred.TunePhysicalDesign(m, col, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols, err := xmlshred.ExecuteQuery(db, cfg, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(cols) < 2 {
		t.Errorf("query returned %d rows, %v cols", len(rows), cols)
	}
	// Executing without a configuration must agree on row count.
	rows2, _, err := xmlshred.ExecuteQuery(db, nil, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rows2) {
		t.Errorf("tuned (%d rows) and untuned (%d rows) disagree", len(rows), len(rows2))
	}
}

func TestPublicAPISchemaIO(t *testing.T) {
	tree := xmlshred.DBLPSchema()
	var buf bytes.Buffer
	if err := xmlshred.WriteXSD(&buf, tree); err != nil {
		t.Fatal(err)
	}
	back, err := xmlshred.ParseXSD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Elements()) != len(tree.Elements()) {
		t.Error("XSD round trip changed the schema")
	}
	dtd := `<!ELEMENT r (x*)> <!ELEMENT x (#PCDATA)>`
	dt, err := xmlshred.ParseDTDString(dtd, "r")
	if err != nil {
		t.Fatal(err)
	}
	if dt.Root.Name != "r" {
		t.Error("DTD parsing broken")
	}
	// XML I/O round trip.
	doc := xmlshred.GenerateMovie(xmlshred.MovieSchema(), xmlshred.MovieOptions{Movies: 20, Seed: 3})
	var xb bytes.Buffer
	if err := xmlshred.WriteXML(&xb, doc); err != nil {
		t.Fatal(err)
	}
	if _, err := xmlshred.ParseXML(xmlshred.MovieSchema(), &xb); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIGeneratedWorkloads(t *testing.T) {
	tree := xmlshred.DBLPSchema()
	doc := xmlshred.GenerateDBLP(tree, xmlshred.DBLPOptions{Inproceedings: 500, Books: 50, Seed: 4})
	col := xmlshred.CollectStatistics(tree, doc)
	for _, p := range xmlshred.StandardWorkloadParams(5, 9) {
		w, err := xmlshred.GenerateWorkload(tree, col, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(w.Queries) != 5 {
			t.Errorf("%s: %d queries", p.Name, len(w.Queries))
		}
	}
}
