package shred

import (
	"fmt"

	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/xmlgen"
)

// Shred loads documents into a fresh relational database under the
// mapping. IDs are assigned from a single global counter in document
// order, so ORDER BY ID reconstructs document order across relations
// (the sorted outer-union invariant). The documents must reference the
// same node IDs as the mapping's tree (any transformed clone of the
// tree the documents were generated or parsed against qualifies,
// because logical transformations preserve node identity).
func Shred(m *Mapping, docs ...*xmlgen.Doc) (*rel.Database, error) {
	db := rel.NewDatabase()
	for _, r := range m.Relations {
		t := rel.NewTable(r.Name, r.Columns)
		if r.ParentAnns[0] != "" {
			t.Parent = r.ParentAnns[0]
		}
		db.Add(t)
	}
	s := &shredder{m: m, db: db}
	for _, d := range docs {
		if err := s.instance(d.Root, 0); err != nil {
			return nil, err
		}
	}
	return db, nil
}

type shredder struct {
	m       *Mapping
	db      *rel.Database
	nextID  int64
	scratch []rel.Value // reused across rows; AppendRow copies, never retains
}

func (s *shredder) newID() int64 {
	s.nextID++
	return s.nextID
}

// instance shreds one instance of an annotated element.
func (s *shredder) instance(e *xmlgen.Elem, parentID int64) error {
	node := s.m.Tree.Node(e.Node.ID)
	if node == nil {
		return fmt.Errorf("shred: document node %s (id %d) not in mapping tree", e.Node.Name, e.Node.ID)
	}
	if node.Annotation == "" {
		return fmt.Errorf("shred: instance() on unannotated element %s", node.Path())
	}
	id := s.newID()
	values := make(map[int][]rel.Value)
	presence := make(map[int]bool)
	if node.IsLeaf() {
		values[node.ID] = append(values[node.ID], e.Value)
	} else if err := s.collect(e, node, id, values, presence); err != nil {
		return err
	}
	r, err := s.pickPartition(node, presence)
	if err != nil {
		return err
	}
	row, err := s.buildRow(r, id, parentID, values, node)
	if err != nil {
		return err
	}
	s.db.Table(r.Name).AppendRow(row)
	return nil
}

// collect walks the instance subtree gathering inlined leaf values and
// element presence, recursing into annotated children as separate
// relation instances and routing repetition-split overflow.
func (s *shredder) collect(e *xmlgen.Elem, anchor *schema.Node, id int64,
	values map[int][]rel.Value, presence map[int]bool) error {
	for _, c := range e.Children {
		cn := s.m.Tree.Node(c.Node.ID)
		if cn == nil {
			return fmt.Errorf("shred: document node %s not in mapping tree", c.Node.Name)
		}
		presence[cn.ID] = true
		switch {
		case cn.Annotation != "" && cn.SplitCount > 0 && cn.AnnotatedAncestorIs(anchor):
			// Repetition split: the first k occurrences become columns
			// of the anchor's row; the rest go to the overflow table.
			if len(values[cn.ID]) < cn.SplitCount {
				values[cn.ID] = append(values[cn.ID], c.Value)
			} else if err := s.overflow(cn, c, id); err != nil {
				return err
			}
		case cn.Annotation != "":
			if err := s.instance(c, id); err != nil {
				return err
			}
		case cn.IsLeaf():
			values[cn.ID] = append(values[cn.ID], c.Value)
		default:
			if err := s.collect(c, anchor, id, values, presence); err != nil {
				return err
			}
		}
	}
	return nil
}

// overflow emits an overflow row for a repetition-split occurrence.
func (s *shredder) overflow(leaf *schema.Node, e *xmlgen.Elem, parentID int64) error {
	rels := s.m.RelationsOf(leaf.Annotation)
	if len(rels) != 1 {
		return fmt.Errorf("shred: overflow relation for %s is partitioned", leaf.Path())
	}
	r := rels[0]
	oid := s.newID()
	row, err := s.buildRow(r, oid, parentID, map[int][]rel.Value{leaf.ID: {e.Value}}, leaf)
	if err != nil {
		return err
	}
	s.db.Table(r.Name).AppendRow(row)
	return nil
}

// pickPartition selects the partition relation an instance belongs to.
func (s *shredder) pickPartition(node *schema.Node, presence map[int]bool) (*Relation, error) {
	rels := s.m.RelationsOf(node.Annotation)
	if len(rels) == 0 {
		return nil, fmt.Errorf("shred: no relation for annotation %q", node.Annotation)
	}
	if len(rels) == 1 && rels[0].Part == nil {
		return rels[0], nil
	}
	for _, r := range rels {
		if s.partitionMatches(r.Part, presence) {
			return r, nil
		}
	}
	return nil, fmt.Errorf("shred: no partition of %q matches instance of %s", node.Annotation, node.Path())
}

func (s *shredder) partitionMatches(p *Partition, presence map[int]bool) bool {
	if p == nil {
		return false
	}
	for _, cond := range p.Conds {
		if !s.condMatches(cond, presence) {
			return false
		}
	}
	return true
}

func (s *shredder) condMatches(cond PartCond, presence map[int]bool) bool {
	if cond.Dist.Choice != 0 {
		choice := s.m.Tree.Node(cond.Dist.Choice)
		branch := choice.Children[cond.Branch]
		return branchPresent(branch, presence)
	}
	any := false
	for _, id := range cond.Dist.Optionals {
		if presence[id] {
			any = true
			break
		}
	}
	if cond.Branch == 0 {
		return any
	}
	return !any
}

// branchPresent reports whether any element of the branch subtree is
// present in the instance.
func branchPresent(branch *schema.Node, presence map[int]bool) bool {
	if branch.Kind == schema.KindElement {
		return presence[branch.ID]
	}
	for _, c := range branch.Children {
		if branchPresent(c, presence) {
			return true
		}
	}
	return false
}

// buildRow materializes a relation row from collected leaf values into
// the shredder's scratch buffer. Every column index is assigned below,
// and AppendRow copies the slice into column vectors, so one buffer per
// shredder suffices for the whole load.
func (s *shredder) buildRow(r *Relation, id, parentID int64, values map[int][]rel.Value, node *schema.Node) ([]rel.Value, error) {
	if cap(s.scratch) < len(r.Columns) {
		s.scratch = make([]rel.Value, len(r.Columns))
	}
	row := s.scratch[:len(r.Columns)]
	for i, c := range r.Columns {
		switch {
		case c.Name == rel.IDColumn:
			row[i] = rel.Int(id)
		case c.Name == rel.PIDColumn:
			if parentID == 0 {
				row[i] = rel.NullOf(rel.TInt)
			} else {
				row[i] = rel.Int(parentID)
			}
		default:
			vs := values[c.LeafID]
			if len(vs) == 0 {
				// Type-merged relations: the column may host several
				// anchors' leaves; find the one this instance carries.
				for _, lid := range r.LeafIDsFor(i) {
					if len(values[lid]) > 0 {
						vs = values[lid]
						break
					}
				}
			}
			var v rel.Value
			switch {
			case c.Occurrence == 0 && len(vs) > 1:
				return nil, fmt.Errorf("shred: %d values for scalar column %s.%s of %s",
					len(vs), r.Name, c.Name, node.Path())
			case c.Occurrence == 0 && len(vs) == 1:
				v = vs[0]
			case c.Occurrence > 0 && len(vs) >= c.Occurrence:
				v = vs[c.Occurrence-1]
			default:
				v = rel.NullOf(c.Typ)
			}
			if !v.Null && v.Typ != c.Typ {
				v = v.Coerce(c.Typ)
			}
			if v.Null && !c.Nullable {
				return nil, fmt.Errorf("shred: missing value for NOT NULL column %s.%s of %s",
					r.Name, c.Name, node.Path())
			}
			row[i] = v
		}
	}
	return row, nil
}
