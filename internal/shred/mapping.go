// Package shred implements the XML-to-relational mapping of Section 2:
// compiling an annotated schema tree into a relational schema (mapping
// rules 1-3, extended with union-distribution partitions and
// repetition-split columns), shredding documents into that schema, and
// deriving per-table statistics for any mapping from the statistics
// collected once on the fully split schema (Section 4.1).
package shred

import (
	"fmt"
	"strings"

	"repro/internal/rel"
	"repro/internal/schema"
)

// Relation is one relational table of a mapping. A partitioned
// annotation (union distribution) compiles into several Relations that
// share the annotation.
type Relation struct {
	// Name is the table name (annotation plus partition suffixes).
	Name string
	// Ann is the annotation this relation stores instances of.
	Ann string
	// Anchors are the annotated schema nodes mapped here (several when
	// types are merged).
	Anchors []*schema.Node
	// ParentAnns are the annotations of the parent relations the PID
	// column references, in anchor order ("" for the root).
	ParentAnns []string
	// Columns are the table columns; Columns[0] is ID, Columns[1] PID.
	Columns []rel.Column
	// Part carries the partition conditions, nil when unpartitioned.
	Part *Partition

	colByLeaf map[leafKey]int
}

type leafKey struct {
	leafID     int
	occurrence int
}

// PartCond fixes one distribution to a concrete branch.
type PartCond struct {
	// Dist is the distribution being fixed.
	Dist schema.Distribution
	// Branch selects the branch: for a choice distribution it is the
	// child index of the chosen branch; for an implicit union 0 means
	// "has at least one of the optionals" and 1 means "has none".
	Branch int
}

// Partition is the membership condition of one partition relation.
type Partition struct {
	// Conds has one entry per distribution on the anchor.
	Conds []PartCond
	// Excluded are element node IDs whose subtrees contribute no
	// columns to this partition (absent by construction).
	Excluded map[int]bool
}

// ColumnFor returns the column index storing the given leaf at the
// given occurrence, or -1.
func (r *Relation) ColumnFor(leafID, occurrence int) int {
	if i, ok := r.colByLeaf[leafKey{leafID, occurrence}]; ok {
		return i
	}
	return -1
}

// LeafIDsFor returns all leaf node IDs whose values land in the given
// column index: one per anchor for type-merged relations.
func (r *Relation) LeafIDsFor(colIdx int) []int {
	var out []int
	for k, i := range r.colByLeaf {
		if i == colIdx {
			out = append(out, k.leafID)
		}
	}
	return out
}

// HasLeaf reports whether the relation stores the leaf at all.
func (r *Relation) HasLeaf(leafID int) bool {
	for k := range r.colByLeaf {
		if k.leafID == leafID {
			return true
		}
	}
	return false
}

// Home locates one column holding a leaf element's values.
type Home struct {
	// Rel is the hosting relation.
	Rel *Relation
	// Column is the column name.
	Column string
	// Occurrence is the 1-based repetition-split occurrence, or 0 for
	// scalar/value columns.
	Occurrence int
	// Overflow marks the overflow relation of a repetition-split leaf.
	Overflow bool
}

// Mapping is a compiled XML-to-relational mapping.
type Mapping struct {
	// Tree is the annotated schema tree the mapping was compiled from.
	Tree *schema.Tree
	// Relations lists all relations in document order of their anchors.
	Relations []*Relation

	byName map[string]*Relation
	byAnn  map[string][]*Relation
	homes  map[int][]Home
}

// Relation returns the relation with the given table name, or nil.
func (m *Mapping) Relation(name string) *Relation { return m.byName[name] }

// RelationsOf returns the partition relations of an annotation.
func (m *Mapping) RelationsOf(ann string) []*Relation { return m.byAnn[ann] }

// Homes returns the column homes of a leaf element node.
func (m *Mapping) Homes(leafID int) []Home { return m.homes[leafID] }

// HostRelations returns the relations hosting an element node's
// instances: its own relations if annotated, otherwise the relations of
// its nearest annotated ancestor.
func (m *Mapping) HostRelations(n *schema.Node) []*Relation {
	if n.Annotation != "" {
		return m.byAnn[n.Annotation]
	}
	anc := n.AnnotatedAncestor()
	if anc == nil {
		return nil
	}
	return m.byAnn[anc.Annotation]
}

// SQLSchema renders CREATE TABLE statements for display.
func (m *Mapping) SQLSchema() string {
	var b strings.Builder
	for _, r := range m.Relations {
		fmt.Fprintf(&b, "CREATE TABLE %s (", r.Name)
		for i, c := range r.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", c.Name, c.Typ)
			if !c.Nullable {
				b.WriteString(" NOT NULL")
			}
		}
		if len(r.ParentAnns) > 0 && r.ParentAnns[0] != "" {
			fmt.Fprintf(&b, ", FOREIGN KEY (PID) REFERENCES %s(ID)", r.ParentAnns[0])
		}
		b.WriteString(");\n")
	}
	return b.String()
}

// Compile builds the relational mapping for an annotated schema tree
// per the mapping rules of Section 2, including partition relations for
// distributed unions and inline columns for repetition splits.
func Compile(t *schema.Tree) (*Mapping, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("shred: %w", err)
	}
	m := &Mapping{
		Tree:   t,
		byName: make(map[string]*Relation),
		byAnn:  make(map[string][]*Relation),
		homes:  make(map[int][]Home),
	}
	// Group anchors by annotation in document order.
	var anns []string
	anchors := make(map[string][]*schema.Node)
	t.Walk(func(n *schema.Node) {
		if n.Kind != schema.KindElement || n.Annotation == "" {
			return
		}
		if _, seen := anchors[n.Annotation]; !seen {
			anns = append(anns, n.Annotation)
		}
		anchors[n.Annotation] = append(anchors[n.Annotation], n)
	})
	for _, ann := range anns {
		group := anchors[ann]
		if err := m.compileAnnotation(ann, group); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *Mapping) compileAnnotation(ann string, group []*schema.Node) error {
	if len(group) > 1 {
		parents := make(map[*schema.Node]bool)
		for _, a := range group {
			if len(a.Distributions) > 0 {
				return fmt.Errorf("shred: distribution on type-merged annotation %q is not supported", ann)
			}
			anc := a.AnnotatedAncestor()
			if parents[anc] {
				return fmt.Errorf("shred: annotation %q merges siblings of one parent; rows would be indistinguishable", ann)
			}
			parents[anc] = true
		}
	}
	anchor := group[0]
	parts, err := expandPartitions(m.Tree, anchor)
	if err != nil {
		return err
	}
	parentAnns := make([]string, len(group))
	for i, a := range group {
		if anc := a.AnnotatedAncestor(); anc != nil {
			parentAnns[i] = anc.Annotation
		}
	}
	var sig string
	for _, part := range parts {
		name := ann
		if part != nil {
			name = ann + partitionSuffix(m.Tree, part)
		}
		r := &Relation{
			Name:       name,
			Ann:        ann,
			Anchors:    group,
			ParentAnns: parentAnns,
			Part:       part,
			colByLeaf:  make(map[leafKey]int),
		}
		if _, dup := m.byName[name]; dup {
			return fmt.Errorf("shred: duplicate relation name %q", name)
		}
		r.Columns = append(r.Columns,
			rel.Column{Name: rel.IDColumn, Typ: rel.TInt},
			rel.Column{Name: rel.PIDColumn, Typ: rel.TInt, Nullable: parentAnns[0] == ""},
		)
		// Columns from each anchor must agree for merged types.
		for ai, a := range group {
			cols, err := inlineColumns(m.Tree, a, part)
			if err != nil {
				return err
			}
			if ai == 0 {
				for _, c := range cols {
					idx := len(r.Columns)
					r.Columns = append(r.Columns, c.col)
					r.colByLeaf[leafKey{c.leafID, c.col.Occurrence}] = idx
					m.addHome(c.leafID, Home{Rel: r, Column: c.col.Name, Occurrence: c.col.Occurrence,
						Overflow: overflowHome(a, c)})
				}
				sig = columnSignature(cols, a)
			} else {
				if columnSignature(cols, a) != sig {
					return fmt.Errorf("shred: annotation %q merges structurally different types (%s vs %s)",
						ann, group[0].Path(), a.Path())
				}
				// Columns align positionally (guaranteed by the
				// signature check); register homes for this anchor's
				// leaf IDs against the first anchor's column names.
				for i, c := range cols {
					ci := 2 + i // after ID and PID
					r.colByLeaf[leafKey{c.leafID, c.col.Occurrence}] = ci
					m.addHome(c.leafID, Home{Rel: r, Column: r.Columns[ci].Name, Occurrence: c.col.Occurrence,
						Overflow: overflowHome(a, c)})
				}
			}
		}
		m.Relations = append(m.Relations, r)
		m.byName[name] = r
		m.byAnn[ann] = append(m.byAnn[ann], r)
	}
	return nil
}

// overflowHome reports whether a column home is the overflow value
// column of a repetition-split leaf: the anchor is the split leaf
// itself and the column is its scalar value column.
func overflowHome(anchor *schema.Node, c inlineCol) bool {
	return anchor.IsLeaf() && c.leafID == anchor.ID && anchor.SplitCount > 0 && c.col.Occurrence == 0
}

func (m *Mapping) addHome(leafID int, h Home) {
	m.homes[leafID] = append(m.homes[leafID], h)
}

type inlineCol struct {
	leafID int
	col    rel.Column
}

// columnSignature fingerprints an anchor's inline columns for merge
// compatibility. The anchor's own value column is name-agnostic (two
// merged leaf types may have different tag names, e.g. director and
// actor sharing a Person type).
func columnSignature(cols []inlineCol, anchor *schema.Node) string {
	var b strings.Builder
	for _, c := range cols {
		name := c.col.Name
		if c.leafID == anchor.ID {
			name = "$value"
		}
		fmt.Fprintf(&b, "%s:%d:%d;", name, c.col.Typ, c.col.Occurrence)
	}
	return b.String()
}

// inlineColumns walks an anchor's content and returns the columns
// inlined into its relation: the anchor's own value column if it is a
// leaf, scalar columns for reachable leaves with no annotated node in
// between, and occurrence columns for repetition-split children.
// Leaves under subtrees excluded by the partition are skipped.
func inlineColumns(t *schema.Tree, anchor *schema.Node, part *Partition) ([]inlineCol, error) {
	var out []inlineCol
	used := make(map[string]int)
	name := func(base string) string {
		// Attribute leaves ("@id") shed the marker for column names.
		base = strings.TrimPrefix(base, "@")
		n := used[base]
		used[base] = n + 1
		if n == 0 {
			return base
		}
		return fmt.Sprintf("%s_%d", base, n+1)
	}
	excluded := func(n *schema.Node) bool {
		if part == nil {
			return false
		}
		for p := n; p != nil && p != anchor; p = p.Parent {
			if part.Excluded[p.ID] {
				return true
			}
		}
		return false
	}
	if anchor.IsLeaf() {
		out = append(out, inlineCol{anchor.ID, rel.Column{
			Name: name(anchor.Name), Typ: leafType(anchor), LeafID: anchor.ID,
		}})
		return out, nil
	}
	var walk func(n *schema.Node, nullable bool) error
	walk = func(n *schema.Node, nullable bool) error {
		switch n.Kind {
		case schema.KindElement:
			if excluded(n) {
				return nil
			}
			if n.Annotation != "" {
				// Separate relation; but a repetition-split leaf also
				// contributes its first k occurrences as columns here.
				if n.SplitCount > 0 && n.AnnotatedAncestorIs(anchor) {
					for i := 1; i <= n.SplitCount; i++ {
						out = append(out, inlineCol{n.ID, rel.Column{
							Name:       name(fmt.Sprintf("%s_%d", n.Name, i)),
							Typ:        leafType(n),
							Nullable:   true,
							LeafID:     n.ID,
							Occurrence: i,
						}})
					}
				}
				return nil
			}
			if n.IsSetValued() {
				return fmt.Errorf("shred: set-valued element %s is unannotated", n.Path())
			}
			if n.IsLeaf() {
				out = append(out, inlineCol{n.ID, rel.Column{
					Name: name(n.Name), Typ: leafType(n), Nullable: nullable, LeafID: n.ID,
				}})
				return nil
			}
			for _, c := range n.Children {
				if err := walk(c, nullable); err != nil {
					return err
				}
			}
			return nil
		case schema.KindSimple:
			return nil
		case schema.KindOption, schema.KindChoice:
			for _, c := range n.Children {
				if err := walk(c, true); err != nil {
					return err
				}
			}
			return nil
		default: // sequence, repetition
			for _, c := range n.Children {
				if err := walk(c, nullable); err != nil {
					return err
				}
			}
			return nil
		}
	}
	for _, c := range anchor.Children {
		if err := walk(c, false); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func leafType(n *schema.Node) rel.Type {
	switch n.LeafBase() {
	case schema.BaseInt:
		return rel.TInt
	case schema.BaseFloat:
		return rel.TFloat
	default:
		return rel.TString
	}
}

// expandPartitions returns the cross product of the anchor's
// distributions; a nil element means "no partitioning".
func expandPartitions(t *schema.Tree, anchor *schema.Node) ([]*Partition, error) {
	if len(anchor.Distributions) == 0 {
		return []*Partition{nil}, nil
	}
	parts := []*Partition{{Excluded: make(map[int]bool)}}
	for _, d := range anchor.Distributions {
		var next []*Partition
		if d.Choice != 0 {
			choice := t.Node(d.Choice)
			if choice == nil {
				return nil, fmt.Errorf("shred: distribution references missing node %d", d.Choice)
			}
			for bi, branch := range choice.Children {
				for _, p := range parts {
					np := clonePartition(p)
					np.Conds = append(np.Conds, PartCond{Dist: d, Branch: bi})
					for bj, other := range choice.Children {
						if bj != bi {
							np.Excluded[contentKeyNode(other)] = true
						}
					}
					_ = branch
					next = append(next, np)
				}
			}
		} else {
			for _, p := range parts {
				has := clonePartition(p)
				has.Conds = append(has.Conds, PartCond{Dist: d, Branch: 0})
				next = append(next, has)
				none := clonePartition(p)
				none.Conds = append(none.Conds, PartCond{Dist: d, Branch: 1})
				for _, id := range d.Optionals {
					none.Excluded[id] = true
				}
				next = append(next, none)
			}
		}
		parts = next
	}
	return parts, nil
}

// contentKeyNode returns the node whose exclusion removes a choice
// branch: the branch node itself (exclusion checks walk ancestors).
func contentKeyNode(branch *schema.Node) int { return branch.ID }

func clonePartition(p *Partition) *Partition {
	np := &Partition{
		Conds:    append([]PartCond(nil), p.Conds...),
		Excluded: make(map[int]bool, len(p.Excluded)),
	}
	for k, v := range p.Excluded {
		np.Excluded[k] = v
	}
	return np
}

// partitionSuffix derives a deterministic table-name suffix from the
// partition conditions.
func partitionSuffix(t *schema.Tree, p *Partition) string {
	var b strings.Builder
	for _, c := range p.Conds {
		if c.Dist.Choice != 0 {
			choice := t.Node(c.Dist.Choice)
			branch := choice.Children[c.Branch]
			b.WriteString("_")
			b.WriteString(branchName(branch))
		} else {
			names := make([]string, len(c.Dist.Optionals))
			for i, id := range c.Dist.Optionals {
				names[i] = t.Node(id).Name
			}
			if c.Branch == 0 {
				b.WriteString("_has_")
			} else {
				b.WriteString("_no_")
			}
			b.WriteString(strings.Join(names, "_"))
		}
	}
	return b.String()
}

func branchName(branch *schema.Node) string {
	if branch.Kind == schema.KindElement {
		return branch.Name
	}
	elems := branch.ElementChildren()
	if len(elems) > 0 {
		return elems[0].Name
	}
	return "branch"
}
