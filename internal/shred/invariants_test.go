package shred

import (
	"math/rand"
	"testing"

	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/transform"
	"repro/internal/xmlgen"
)

// TestMappingInvariantsUnderRandomTransformations property-checks the
// structural invariants every compiled mapping must satisfy, across
// random transformation sequences on both datasets:
//
//  1. every relation starts with ID and PID columns;
//  2. every column's LeafID resolves to a leaf element of the tree
//     (or is a key column);
//  3. every leaf element that is not partition-excluded everywhere has
//     at least one column home, and every home points at an existing
//     column of its relation;
//  4. relation names are unique and non-empty;
//  5. loading documents places every instance somewhere: total rows
//     across an annotation's partitions equal the anchor instance
//     counts (minus repetition-split inlined occurrences).
func TestMappingInvariantsUnderRandomTransformations(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	cases := []struct {
		name string
		mk   func() *schema.Tree
		doc  *xmlgen.Doc
	}{
		{"movie", schema.Movie, xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: 80, Seed: 14})},
		{"dblp", schema.DBLP, xmlgen.GenerateDBLP(schema.DBLP(), xmlgen.DBLPOptions{Inproceedings: 80, Books: 15, Seed: 15})},
	}
	for _, tc := range cases {
		base := tc.mk()
		col := xmlgen.CollectStats(base, tc.doc)
		for trial := 0; trial < 15; trial++ {
			tree := tc.mk()
			for s := 0; s < 1+r.Intn(4); s++ {
				cands := transform.EnumerateAll(tree, col)
				if len(cands) == 0 {
					break
				}
				if next, err := cands[r.Intn(len(cands))].Apply(tree); err == nil {
					tree = next
				}
			}
			m, err := Compile(tree)
			if err != nil {
				t.Fatalf("%s trial %d: %v", tc.name, trial, err)
			}
			checkMappingInvariants(t, m)
			db, err := Shred(m, tc.doc)
			if err != nil {
				t.Fatalf("%s trial %d: shred: %v", tc.name, trial, err)
			}
			checkRowConservation(t, m, db, col)
		}
	}
}

func checkMappingInvariants(t *testing.T, m *Mapping) {
	t.Helper()
	seen := map[string]bool{}
	for _, r := range m.Relations {
		if r.Name == "" || seen[r.Name] {
			t.Fatalf("relation name %q duplicated or empty", r.Name)
		}
		seen[r.Name] = true
		if len(r.Columns) < 2 || r.Columns[0].Name != rel.IDColumn || r.Columns[1].Name != rel.PIDColumn {
			t.Fatalf("%s: missing key columns: %v", r.Name, r.Columns)
		}
		for _, c := range r.Columns[2:] {
			leaf := m.Tree.Node(c.LeafID)
			if leaf == nil || !leaf.IsLeaf() {
				t.Fatalf("%s.%s: LeafID %d is not a leaf", r.Name, c.Name, c.LeafID)
			}
		}
	}
	for _, leaf := range m.Tree.Leaves() {
		for _, h := range m.Homes(leaf.ID) {
			ci := h.Rel.ColumnFor(leaf.ID, h.Occurrence)
			if ci < 0 {
				t.Fatalf("home of %s points at missing column %s.%s", leaf.Path(), h.Rel.Name, h.Column)
			}
			if h.Rel.Columns[ci].Name != h.Column {
				t.Fatalf("home column mismatch for %s: %s vs %s", leaf.Path(), h.Rel.Columns[ci].Name, h.Column)
			}
		}
	}
}

// checkRowConservation verifies that no instance is lost or duplicated
// by partition routing and repetition-split overflow.
func checkRowConservation(t *testing.T, m *Mapping, db *rel.Database, col interface{ InstanceCount(int) int64 }) {
	t.Helper()
	byAnn := map[string]int{}
	for _, r := range m.Relations {
		byAnn[r.Ann] += db.Table(r.Name).RowCount()
	}
	for ann, rows := range byAnn {
		rels := m.RelationsOf(ann)
		var want int64
		for _, a := range rels[0].Anchors {
			n := col.InstanceCount(a.ID)
			if a.IsLeaf() && a.SplitCount > 0 {
				// Inlined occurrences live in the parent relation.
				inlined := int64(0)
				for _, pr := range m.HostRelations(a.ElementParent()) {
					for i := 1; i <= a.SplitCount; i++ {
						ci := pr.ColumnFor(a.ID, i)
						if ci < 0 {
							continue
						}
						for _, row := range db.Table(pr.Name).Rows() {
							if !row[ci].Null {
								inlined++
							}
						}
					}
				}
				n -= inlined
			}
			want += n
		}
		if int64(rows) != want {
			t.Fatalf("annotation %q: %d rows, want %d (instances conserved)", ann, rows, want)
		}
	}
}
