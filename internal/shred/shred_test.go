package shred

import (
	"math"
	"testing"

	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/xmlgen"
)

func compileDBLP(t *testing.T) (*schema.Tree, *Mapping) {
	t.Helper()
	tr := schema.DBLP()
	m, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return tr, m
}

func TestCompileDBLPHybrid(t *testing.T) {
	_, m := compileDBLP(t)
	for _, name := range []string{"dblp", "inproceedings", "book", "title1", "author", "cite", "editor"} {
		if m.Relation(name) == nil {
			t.Errorf("missing relation %s; have %v", name, relationNames(m))
		}
	}
	in := m.Relation("inproceedings")
	for _, col := range []string{"ID", "PID", "title", "booktitle", "year", "pages", "ee", "cdrom", "url"} {
		if !hasColumn(in, col) {
			t.Errorf("inproceedings missing column %s", col)
		}
	}
	if hasColumn(in, "author") {
		t.Error("author should be a separate relation, not a column")
	}
	// Book title is outlined: no title column in book, title1 relation
	// carries a title value column.
	bk := m.Relation("book")
	if hasColumn(bk, "title") {
		t.Error("book title should be outlined to title1")
	}
	t1 := m.Relation("title1")
	if !hasColumn(t1, "title") {
		t.Errorf("title1 should carry a title value column, has %v", colNames(t1))
	}
	// Shared author: the relation has two anchors.
	if got := len(m.Relation("author").Anchors); got != 2 {
		t.Errorf("author anchors = %d, want 2", got)
	}
}

func TestCompileRepetitionSplit(t *testing.T) {
	tr := schema.DBLP()
	for _, n := range tr.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			n.SplitCount = 5
		}
	}
	m, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in := m.Relation("inproceedings")
	for i := 1; i <= 5; i++ {
		name := "author_" + string(rune('0'+i))
		if !hasColumn(in, name) {
			t.Errorf("inproceedings missing split column %s: %v", name, colNames(in))
		}
	}
	// Overflow relation still exists with the author column.
	au := m.Relation("author")
	if au == nil || !hasColumn(au, "author") {
		t.Fatal("author overflow relation missing")
	}
	// Homes: author leaf under inproceedings has 5 occurrence homes in
	// inproceedings plus an overflow home; author under book has one
	// home in the shared author relation.
	var inprocAuthor, bookAuthor *schema.Node
	for _, n := range tr.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			inprocAuthor = n
		} else {
			bookAuthor = n
		}
	}
	homes := m.Homes(inprocAuthor.ID)
	occ, over := 0, 0
	for _, h := range homes {
		if h.Occurrence > 0 {
			occ++
		}
		if h.Overflow {
			over++
		}
	}
	if occ != 5 || over != 1 {
		t.Errorf("inproc author homes: occ=%d over=%d (%+v)", occ, over, homes)
	}
	bh := m.Homes(bookAuthor.ID)
	if len(bh) != 1 || bh[0].Rel.Name != "author" || bh[0].Overflow {
		t.Errorf("book author homes = %+v", bh)
	}
}

func TestCompileChoiceDistribution(t *testing.T) {
	tr := schema.Movie()
	movie := tr.ElementsNamed("movie")[0]
	choice := tr.ElementsNamed("box_office")[0].UnderChoice()
	movie.Distributions = []schema.Distribution{{Choice: choice.ID}}
	m, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mb := m.Relation("movie_box_office")
	ms := m.Relation("movie_seasons")
	if mb == nil || ms == nil {
		t.Fatalf("partition relations missing: %v", relationNames(m))
	}
	if !hasColumn(mb, "box_office") || hasColumn(mb, "seasons") {
		t.Errorf("movie_box_office columns wrong: %v", colNames(mb))
	}
	if !hasColumn(ms, "seasons") || hasColumn(ms, "box_office") {
		t.Errorf("movie_seasons columns wrong: %v", colNames(ms))
	}
	// Shared scalar columns present in both.
	for _, c := range []string{"title", "year", "genre"} {
		if !hasColumn(mb, c) || !hasColumn(ms, c) {
			t.Errorf("shared column %s missing from a partition", c)
		}
	}
	if got := len(m.RelationsOf("movie")); got != 2 {
		t.Errorf("movie partitions = %d, want 2", got)
	}
}

func TestCompileImplicitUnion(t *testing.T) {
	tr := schema.Movie()
	movie := tr.ElementsNamed("movie")[0]
	rating := tr.ElementsNamed("avg_rating")[0]
	movie.Distributions = []schema.Distribution{{Optionals: []int{rating.ID}}}
	m, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	has := m.Relation("movie_has_avg_rating")
	no := m.Relation("movie_no_avg_rating")
	if has == nil || no == nil {
		t.Fatalf("implicit union partitions missing: %v", relationNames(m))
	}
	if !hasColumn(has, "avg_rating") {
		t.Error("has-partition missing avg_rating")
	}
	if hasColumn(no, "avg_rating") {
		t.Error("no-partition should drop avg_rating")
	}
}

func TestCompileCrossProductDistributions(t *testing.T) {
	tr := schema.Movie()
	movie := tr.ElementsNamed("movie")[0]
	choice := tr.ElementsNamed("box_office")[0].UnderChoice()
	rating := tr.ElementsNamed("avg_rating")[0]
	movie.Distributions = []schema.Distribution{
		{Choice: choice.ID},
		{Optionals: []int{rating.ID}},
	}
	m, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := len(m.RelationsOf("movie")); got != 4 {
		t.Errorf("cross-product partitions = %d, want 4: %v", got, relationNames(m))
	}
}

func shredMovie(t *testing.T, tr *schema.Tree, nMovies int) (*Mapping, *rel.Database, *xmlgen.Doc) {
	t.Helper()
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: nMovies, Seed: 3})
	m, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	db, err := Shred(m, doc)
	if err != nil {
		t.Fatalf("Shred: %v", err)
	}
	return m, db, doc
}

func TestShredMovieHybrid(t *testing.T) {
	tr := schema.Movie()
	m, db, doc := shredMovie(t, tr, 100)
	_ = m
	if got := db.Table("movie").RowCount(); got != 100 {
		t.Errorf("movie rows = %d, want 100", got)
	}
	// aka_title rows equal total occurrences in the document.
	want := 0
	doc.Root.Walk(func(e *xmlgen.Elem) {
		if e.Node.Name == "aka_title" {
			want++
		}
	})
	if got := db.Table("aka_title").RowCount(); got != want {
		t.Errorf("aka_title rows = %d, want %d", got, want)
	}
	// Every aka_title PID references a movie ID.
	movieIDs := make(map[int64]bool)
	mt := db.Table("movie")
	idIdx := mt.ColIndex(rel.IDColumn)
	for _, row := range mt.Rows() {
		movieIDs[row[idIdx].I] = true
	}
	at := db.Table("aka_title")
	pidIdx := at.ColIndex(rel.PIDColumn)
	for _, row := range at.Rows() {
		if !movieIDs[row[pidIdx].I] {
			t.Fatalf("dangling aka_title PID %d", row[pidIdx].I)
		}
	}
	// Root relation has exactly one row with NULL PID.
	rt := db.Table("movies")
	if rt.RowCount() != 1 || !rt.Rows()[0][rt.ColIndex(rel.PIDColumn)].Null {
		t.Error("root relation should have one row with NULL PID")
	}
}

func TestShredPartitionsRouteRows(t *testing.T) {
	tr := schema.Movie()
	movie := tr.ElementsNamed("movie")[0]
	choice := tr.ElementsNamed("box_office")[0].UnderChoice()
	movie.Distributions = []schema.Distribution{{Choice: choice.ID}}
	_, db, doc := shredMovie(t, tr, 200)
	nb := db.Table("movie_box_office").RowCount()
	ns := db.Table("movie_seasons").RowCount()
	if nb+ns != 200 {
		t.Fatalf("partition rows %d+%d != 200", nb, ns)
	}
	// Compare against the document's actual branch counts.
	wantB := 0
	doc.Root.Walk(func(e *xmlgen.Elem) {
		if e.Node.Name == "box_office" {
			wantB++
		}
	})
	if nb != wantB {
		t.Errorf("box_office partition rows = %d, want %d", nb, wantB)
	}
	// box_office column has no NULLs in its partition.
	bt := db.Table("movie_box_office")
	bi := bt.ColIndex("box_office")
	for _, row := range bt.Rows() {
		if row[bi].Null {
			t.Fatal("NULL box_office inside box_office partition")
		}
	}
}

func TestShredImplicitUnionRouting(t *testing.T) {
	tr := schema.Movie()
	movie := tr.ElementsNamed("movie")[0]
	rating := tr.ElementsNamed("avg_rating")[0]
	movie.Distributions = []schema.Distribution{{Optionals: []int{rating.ID}}}
	_, db, doc := shredMovie(t, tr, 200)
	nh := db.Table("movie_has_avg_rating").RowCount()
	nn := db.Table("movie_no_avg_rating").RowCount()
	if nh+nn != 200 {
		t.Fatalf("partition rows %d+%d != 200", nh, nn)
	}
	want := 0
	doc.Root.Walk(func(e *xmlgen.Elem) {
		if e.Node.Name == "avg_rating" {
			want++
		}
	})
	if nh != want {
		t.Errorf("has-partition rows = %d, want %d", nh, want)
	}
}

func TestShredRepetitionSplitOverflow(t *testing.T) {
	tr := schema.DBLP()
	for _, n := range tr.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			n.SplitCount = 2
		}
	}
	base := schema.DBLP()
	doc := xmlgen.GenerateDBLP(base, xmlgen.DBLPOptions{Inproceedings: 150, Books: 20, Seed: 5})
	m, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Total authors = split columns non-null + overflow rows + book authors.
	totalAuthors := 0
	bookAuthors := 0
	doc.Root.Walk(func(e *xmlgen.Elem) {
		if e.Node.Name == "author" {
			totalAuthors++
		}
	})
	doc.Root.Walk(func(e *xmlgen.Elem) {
		if e.Node.Name == "book" {
			for _, c := range e.Children {
				if c.Node.Name == "author" {
					bookAuthors++
				}
			}
		}
	})
	in := db.Table("inproceedings")
	inline := 0
	for _, col := range []string{"author_1", "author_2"} {
		ci := in.ColIndex(col)
		for _, row := range in.Rows() {
			if !row[ci].Null {
				inline++
			}
		}
	}
	overflowAndBook := db.Table("author").RowCount()
	if inline+overflowAndBook != totalAuthors {
		t.Errorf("inline(%d) + author-table(%d) != total authors (%d)", inline, overflowAndBook, totalAuthors)
	}
	if overflowAndBook < bookAuthors {
		t.Errorf("author table %d rows < book authors %d", overflowAndBook, bookAuthors)
	}
}

func TestShredFullySplit(t *testing.T) {
	tr := schema.Movie()
	schema.ApplyFullySplit(tr)
	_, db, doc := shredMovie(t, tr, 50)
	// Every element instance becomes exactly one row somewhere.
	instances := 0
	doc.Root.Walk(func(e *xmlgen.Elem) { instances++ })
	var rows int
	for _, tb := range db.Tables() {
		rows += tb.RowCount()
	}
	if rows != instances {
		t.Errorf("fully split rows = %d, want %d element instances", rows, instances)
	}
}

func TestDeriveStatsMatchesActual(t *testing.T) {
	tr := schema.Movie()
	movie := tr.ElementsNamed("movie")[0]
	choice := tr.ElementsNamed("box_office")[0].UnderChoice()
	rating := tr.ElementsNamed("avg_rating")[0]
	movie.Distributions = []schema.Distribution{
		{Choice: choice.ID},
		{Optionals: []int{rating.ID}},
	}
	for _, n := range tr.ElementsNamed("actor") {
		n.SplitCount = 3
	}
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 500, Seed: 11})
	col := xmlgen.CollectStats(base, doc)
	m, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	derived := DeriveStats(m, col)
	db, err := Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	actual := stats.FromDatabase(db)
	for _, r := range m.Relations {
		d, a := derived[r.Name], actual[r.Name]
		if d == nil || a == nil {
			t.Fatalf("missing stats for %s", r.Name)
		}
		if a.Rows == 0 {
			continue
		}
		relErr := math.Abs(float64(d.Rows-a.Rows)) / float64(a.Rows)
		// Presence independence for the cross product tolerates some
		// error; generator presence is independent so this is tight.
		if relErr > 0.25 && math.Abs(float64(d.Rows-a.Rows)) > 20 {
			t.Errorf("%s: derived rows %d vs actual %d (err %.2f)", r.Name, d.Rows, a.Rows, relErr)
		}
		// Row width should be in the right ballpark.
		if a.RowBytes > 0 && (d.RowBytes < a.RowBytes*0.5 || d.RowBytes > a.RowBytes*2) {
			t.Errorf("%s: derived rowBytes %.1f vs actual %.1f", r.Name, d.RowBytes, a.RowBytes)
		}
	}
	// Split column null fractions derived from cardinality histogram.
	for _, r := range m.RelationsOf("movie") {
		d := derived[r.Name]
		a := actual[r.Name]
		if a.Rows < 20 {
			continue
		}
		for _, cname := range []string{"actor_1", "actor_3"} {
			dc, ac := d.Col(cname), a.Col(cname)
			if dc == nil || ac == nil {
				t.Fatalf("%s missing %s stats", r.Name, cname)
			}
			if math.Abs(dc.NullFrac-ac.NullFrac) > 0.15 {
				t.Errorf("%s.%s: derived nullFrac %.2f vs actual %.2f", r.Name, cname, dc.NullFrac, ac.NullFrac)
			}
		}
	}
}

func TestSQLSchemaRendering(t *testing.T) {
	_, m := compileDBLP(t)
	s := m.SQLSchema()
	for _, want := range []string{"CREATE TABLE inproceedings", "CREATE TABLE author", "FOREIGN KEY (PID)"} {
		if !contains(s, want) {
			t.Errorf("SQLSchema missing %q", want)
		}
	}
}

func TestCompileRejectsDistributionOnMergedType(t *testing.T) {
	tr := schema.Movie()
	// Merge actor and director into one annotation, then try to
	// distribute on one of them.
	for _, n := range tr.ElementsNamed("actor") {
		n.Annotation = "person"
	}
	for _, n := range tr.ElementsNamed("director") {
		n.Annotation = "person"
	}
	// Distributions require choices/optionals below the anchor; fake an
	// empty-optional one to trigger the merged-type check first.
	tr.ElementsNamed("actor")[0].Distributions = []schema.Distribution{{Choice: 1}}
	if _, err := Compile(tr); err == nil {
		t.Error("want error for distribution on merged annotation")
	}
}

func relationNames(m *Mapping) []string {
	var out []string
	for _, r := range m.Relations {
		out = append(out, r.Name)
	}
	return out
}

func colNames(r *Relation) []string {
	var out []string
	for _, c := range r.Columns {
		out = append(out, c.Name)
	}
	return out
}

func hasColumn(r *Relation, name string) bool {
	for _, c := range r.Columns {
		if c.Name == name {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
