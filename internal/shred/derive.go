package shred

import (
	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/stats"
)

// DeriveStats derives per-table statistics for this mapping from the
// statistics collected once at the finest granularity (Section 4.1).
// The search algorithms cost every enumerated mapping with derived
// statistics; data is never reloaded or rescanned during search.
//
// Derivations: relation cardinality is the sum of its anchors' instance
// counts scaled by the partition fraction (presence independence is
// assumed for merged implicit unions); overflow relations of
// repetition-split leaves use the cardinality histogram's overflow
// count; split occurrence columns take their null fraction from the
// cardinality histogram; value distributions of the fully split leaves
// carry over with counts rescaled.
func DeriveStats(m *Mapping, col *stats.Collection) stats.MapProvider {
	out := make(stats.MapProvider, len(m.Relations))
	rows := make(map[string]float64, len(m.Relations))
	for _, r := range m.Relations {
		rows[r.Name] = deriveRows(m, r, col)
	}
	// Total rows per annotation containing each leaf, for distributing
	// leaf instances across partitions.
	for _, r := range m.Relations {
		ts := &stats.TableStats{
			Name: r.Name,
			Rows: int64(rows[r.Name] + 0.5),
			Cols: make(map[string]*stats.ColumnStats, len(r.Columns)),
		}
		nr := rows[r.Name]
		var rowBytes float64 = 0
		for _, c := range r.Columns {
			cs := deriveColumn(m, r, c, col, nr, rows)
			ts.Cols[c.Name] = cs
			rowBytes += (1-cs.NullFrac)*avgWidth(cs) + cs.NullFrac*1
		}
		ts.RowBytes = rowBytes
		out[r.Name] = ts
	}
	return out
}

func avgWidth(cs *stats.ColumnStats) float64 {
	if cs.AvgWidth > 0 {
		return cs.AvgWidth
	}
	if cs.Typ == rel.TString {
		return 12
	}
	return 8
}

// deriveRows estimates the relation's row count.
func deriveRows(m *Mapping, r *Relation, col *stats.Collection) float64 {
	var rows float64
	frac := partitionFraction(m, r, col)
	for _, a := range r.Anchors {
		if a.IsLeaf() && a.SplitCount > 0 {
			if h := col.Card[a.ID]; h != nil {
				rows += float64(h.OverflowCount(a.SplitCount))
			}
			continue
		}
		rows += float64(col.InstanceCount(a.ID)) * frac
	}
	return rows
}

// partitionFraction estimates the fraction of the annotation's
// instances that land in this partition relation.
func partitionFraction(m *Mapping, r *Relation, col *stats.Collection) float64 {
	if r.Part == nil {
		return 1
	}
	anchor := r.Anchors[0]
	total := float64(col.InstanceCount(anchor.ID))
	if total == 0 {
		return 0
	}
	f := 1.0
	for _, cond := range r.Part.Conds {
		if cond.Dist.Choice != 0 {
			choice := m.Tree.Node(cond.Dist.Choice)
			branch := choice.Children[cond.Branch]
			f *= branchFraction(branch, total, col)
		} else {
			pNone := 1.0
			for _, id := range cond.Dist.Optionals {
				pNone *= 1 - presenceOf(m, id, anchor, col)
			}
			if cond.Branch == 0 {
				f *= 1 - pNone
			} else {
				f *= pNone
			}
		}
	}
	return f
}

// branchFraction is the fraction of anchor instances whose choice
// resolved to this branch, estimated from the branch's first element's
// instance count.
func branchFraction(branch *schema.Node, total float64, col *stats.Collection) float64 {
	var first *schema.Node
	if branch.Kind == schema.KindElement {
		first = branch
	} else if elems := branch.ElementChildren(); len(elems) > 0 {
		first = elems[0]
	}
	if first == nil {
		return 0
	}
	f := float64(col.InstanceCount(first.ID)) / total
	if f > 1 {
		f = 1
	}
	return f
}

// presenceOf is the probability an anchor instance contains the
// element node at least once.
func presenceOf(m *Mapping, id int, anchor *schema.Node, col *stats.Collection) float64 {
	return col.Presence(id, anchor.ID)
}

// deriveColumn builds column statistics for one relation column.
func deriveColumn(m *Mapping, r *Relation, c rel.Column, col *stats.Collection,
	relRows float64, allRows map[string]float64) *stats.ColumnStats {
	switch c.Name {
	case rel.IDColumn:
		return keyStats(int64(relRows), int64(relRows))
	case rel.PIDColumn:
		parents := parentInstanceCount(m, r, col)
		if parents > relRows {
			parents = relRows
		}
		return keyStats(int64(relRows), int64(parents))
	}
	base := col.Cols[c.LeafID]
	if base == nil {
		return &stats.ColumnStats{Typ: c.Typ}
	}
	leaf := m.Tree.Node(c.LeafID)
	cs := *base // copy
	switch {
	case c.Occurrence > 0:
		// Split occurrence column: null fraction from the cardinality
		// histogram.
		frac := 0.0
		if h := col.Card[c.LeafID]; h != nil {
			frac = h.FracWithAtLeast(c.Occurrence)
		}
		cs.NullFrac = 1 - frac
		cs.Count = int64(relRows * frac)
	case leaf != nil && leaf.ID == r.Anchors[0].ID:
		// The relation's own value column (outlined leaf / overflow).
		cs.NullFrac = 0
		cs.Count = int64(relRows)
	default:
		// Scalar inlined leaf: distribute the leaf's instances over the
		// partitions that contain it, proportionally to their sizes.
		var hostRows float64
		for _, pr := range m.RelationsOf(r.Ann) {
			if pr.HasLeaf(c.LeafID) {
				hostRows += allRows[pr.Name]
			}
		}
		leafCount := float64(col.InstanceCount(c.LeafID))
		var inHere float64
		if hostRows > 0 {
			inHere = leafCount * (relRows / hostRows)
		}
		if inHere > relRows {
			inHere = relRows
		}
		cs.Count = int64(inHere)
		if relRows > 0 {
			cs.NullFrac = 1 - inHere/relRows
		}
	}
	if cs.Distinct > cs.Count {
		cs.Distinct = cs.Count
	}
	return &cs
}

// parentInstanceCount sums the instance counts of the parent
// annotations' anchors.
func parentInstanceCount(m *Mapping, r *Relation, col *stats.Collection) float64 {
	seen := make(map[string]bool)
	var total float64
	for _, pa := range r.ParentAnns {
		if pa == "" || seen[pa] {
			continue
		}
		seen[pa] = true
		for _, pr := range m.RelationsOf(pa) {
			for _, a := range pr.Anchors {
				total += float64(col.InstanceCount(a.ID))
			}
			break // anchors are shared across partitions
		}
	}
	return total
}

func keyStats(count, distinct int64) *stats.ColumnStats {
	return &stats.ColumnStats{
		Count:    count,
		Distinct: distinct,
		AvgWidth: 8,
		Typ:      rel.TInt,
		Min:      rel.Int(1),
		Max:      rel.Int(count),
	}
}
