package difftest

import (
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// The comparison convention (shared with the engine integration tests):
// group SQL rows by the context ID column in first-appearance order,
// render each group as a sorted multiset of name=value items, drop
// NULLs, fold repetition-split columns (x__2 -> x), and drop empty
// groups on both sides — the evaluator emits a group even when every
// projection is empty, while SQL prunes all-NULL rows.

// normalizeSQL renders grouped SQL output.
func normalizeSQL(res *engine.Result) []string {
	idIdx := -1
	for i, c := range res.Cols {
		if c == "ID" {
			idIdx = i
		}
	}
	groups := make(map[string][]string)
	var order []string
	for _, row := range res.Rows {
		id := row[idIdx].String()
		if _, ok := groups[id]; !ok {
			groups[id] = []string{}
			order = append(order, id)
		}
		for i, v := range row {
			if i == idIdx || v.Null {
				continue
			}
			name := res.Cols[i]
			if k := strings.Index(name, "__"); k >= 0 {
				name = name[:k]
			}
			groups[id] = append(groups[id], name+"="+v.String())
		}
	}
	out := make([]string, 0, len(order))
	for _, id := range order {
		g := groups[id]
		sort.Strings(g)
		out = append(out, strings.Join(g, ";"))
	}
	return out
}

// normalizeGold renders evaluator result groups the same way.
func normalizeGold(groups []xmlgen.ResultGroup, proj []xpath.Path, bare []string) []string {
	var out []string
	for _, g := range groups {
		var items []string
		for i, vals := range g.Values {
			name := ""
			if len(proj) > 0 {
				name = strings.Join(proj[i], "_")
			} else if i < len(bare) {
				name = bare[i]
			}
			for _, v := range vals {
				items = append(items, name+"="+v.String())
			}
		}
		sort.Strings(items)
		out = append(out, strings.Join(items, ";"))
	}
	return out
}

func dropEmpty(in []string) []string {
	var out []string
	for _, s := range in {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// bareNames reconstructs the implicit projection names of a bare query
// from the base tree, mirroring the translator's bare-context
// projections: the context's name for a leaf context, otherwise its
// single-valued direct leaf children in schema order.
func bareNames(t *schema.Tree, q *xpath.Query) []string {
	if len(q.Proj) > 0 {
		return nil
	}
	nodes := translate.ResolveContext(t, q.Context)
	if len(nodes) == 0 {
		return nil
	}
	ctx := nodes[0]
	if ctx.IsLeaf() {
		return []string{ctx.Name}
	}
	var out []string
	for _, c := range ctx.ElementChildren() {
		if c.IsLeaf() && !c.IsSetValued() {
			out = append(out, c.Name)
		}
	}
	return out
}
