package difftest

import (
	"flag"
	"os"
	"strconv"
	"testing"
)

// Knobs (documented in README.md):
//
//	-difftest.iters=N   trials in TestDifferential (default 60, 12 in -short)
//	DIFFTEST_SEED=N     base seed for the trial sequence
//	DIFFTEST_REPLAY=... replay one shrunk case, e.g. "seed=7,roots=1,steps=0,queries=3,only=2"
var iterFlag = flag.Int("difftest.iters", 60, "number of differential trials in TestDifferential")

func baseSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("DIFFTEST_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad DIFFTEST_SEED %q: %v", s, err)
	}
	return v
}

func runCase(t *testing.T, c Case) RunStats {
	t.Helper()
	st, m := Run(c)
	if m != nil {
		sc, sm := Shrink(c, m)
		t.Fatalf("differential mismatch; replay with DIFFTEST_REPLAY=%q\nshrunk:   %v\noriginal: %v",
			sc.ReplaySpec(), sm, m)
	}
	return st
}

// TestDifferential runs the full pipeline against the reference
// evaluator over a deterministic sequence of random (schema, document,
// workload) triples, each under a random transformation sequence and a
// random (or tuner-chosen) physical design.
func TestDifferential(t *testing.T) {
	if spec := os.Getenv("DIFFTEST_REPLAY"); spec != "" {
		c, err := ParseReplay(spec)
		if err != nil {
			t.Fatal(err)
		}
		st := runCase(t, c)
		t.Logf("replayed %s: %+v", c.ReplaySpec(), st)
		return
	}
	iters := *iterFlag
	if testing.Short() {
		iters = 12
	}
	base := baseSeed(t)
	var total RunStats
	for i := 0; i < iters; i++ {
		total.Add(runCase(t, DefaultCase(base+int64(i))))
	}
	t.Logf("trials=%d queries=%d executed=%d skipped=%d provenEmpty=%d transforms=%d tuned=%d maxCostRatio=%.1f",
		iters, total.Queries, total.Executed, total.Skipped, total.ProvenEmpty,
		total.Transforms, total.Tuned, total.MaxCostRatio)
	if total.Executed < iters {
		t.Errorf("only %d queries executed end to end across %d trials; generator or skip classification degraded",
			total.Executed, iters)
	}
}

// TestRunDeterministic pins the replay contract: the same Case yields
// identical statistics on every run.
func TestRunDeterministic(t *testing.T) {
	c := DefaultCase(42)
	st1, m1 := Run(c)
	st2, m2 := Run(c)
	if m1 != nil || m2 != nil {
		t.Fatalf("unexpected mismatch: %v / %v", m1, m2)
	}
	if st1 != st2 {
		t.Fatalf("two runs of the same case diverged: %+v vs %+v", st1, st2)
	}
	if st1.Executed == 0 {
		t.Fatalf("case %s executed no queries: %+v", c.ReplaySpec(), st1)
	}
}

func TestReplaySpecRoundTrip(t *testing.T) {
	cases := []Case{
		DefaultCase(7),
		{Seed: -3, RootInstances: 1, Steps: 0, Queries: 2, Only: 1, CheckCosts: true},
		{Seed: 1 << 40, RootInstances: 12, Steps: 9, Queries: 8, Only: -1, CheckCosts: true},
		// persist is three-valued: an explicit memory budget survives the
		// round trip (persist=65536), auto stays auto (persist=1).
		{Seed: 5, RootInstances: 2, Steps: 1, Queries: 1, Only: -1, CheckCosts: true, Persist: true, PersistBudget: 65536},
		{Seed: 5, RootInstances: 2, Steps: 1, Queries: 1, Only: -1, CheckCosts: true, Persist: true},
	}
	for _, c := range cases {
		got, err := ParseReplay(c.ReplaySpec())
		if err != nil {
			t.Fatalf("ParseReplay(%q): %v", c.ReplaySpec(), err)
		}
		if got != c {
			t.Errorf("replay round trip: %+v -> %q -> %+v", c, c.ReplaySpec(), got)
		}
	}
	for _, bad := range []string{"seed", "seed=x", "wat=1"} {
		if _, err := ParseReplay(bad); err == nil {
			t.Errorf("ParseReplay(%q) succeeded, want error", bad)
		}
	}
}
