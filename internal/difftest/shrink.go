package difftest

// Shrink minimizes a failing case. Generation is prefix-stable by
// construction — each phase draws from its own seeded substream, and
// later draws never affect earlier ones — so shrinking one knob
// (queries, transformation steps, document size) replays an identical
// prefix of everything else. The shrunk case's ReplaySpec is what the
// tests print for replay via DIFFTEST_REPLAY.
func Shrink(c Case, m *Mismatch) (Case, *Mismatch) {
	best, bestM := c, m
	try := func(cand Case) bool {
		if _, cm := Run(cand); cm != nil {
			best, bestM = cand, cm
			return true
		}
		return false
	}
	// Isolate the failing query and drop the workload tail after it.
	if best.Only < 0 && bestM.QueryIdx >= 0 {
		cand := best
		cand.Only = bestM.QueryIdx
		cand.Queries = bestM.QueryIdx + 1
		try(cand)
	}
	// Shortest failing transformation prefix.
	maxSteps := best.Steps
	for s := 0; s < maxSteps; s++ {
		cand := best
		cand.Steps = s
		if try(cand) {
			break
		}
	}
	// Smaller document.
	for _, ri := range []int{1, 2, 4} {
		if ri >= best.RootInstances {
			break
		}
		cand := best
		cand.RootInstances = ri
		if try(cand) {
			break
		}
	}
	// Drop the service stage when the failure reproduces without it (a
	// concurrent stage makes replays noisier to debug than they need to
	// be; a failure only the service stage hits keeps Service on).
	if best.Service {
		cand := best
		cand.Service = false
		try(cand)
	}
	return best, bestM
}
