package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/xpath"
)

// RandomWorkload generates n queries in the supported XPath grammar
// (context path, optional single predicate, union projection), all
// resolvable against the base tree. Every query is rendered and
// reparsed; a printer round-trip divergence is reported as an error —
// the workload generator doubles as a property test of the printer.
func RandomWorkload(t *schema.Tree, r *rand.Rand, n int) ([]*xpath.Query, error) {
	var out []*xpath.Query
	for attempts := 0; len(out) < n && attempts < 60*n+300; attempts++ {
		q := randomQuery(t, r)
		if q == nil {
			continue
		}
		s := q.String()
		rt, err := xpath.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("difftest: generated query %q does not reparse: %w", s, err)
		}
		if rt.String() != s {
			return nil, fmt.Errorf("difftest: printer round trip diverges: %q -> %q", s, rt.String())
		}
		out = append(out, rt)
	}
	if len(out) < n {
		return nil, fmt.Errorf("difftest: could only generate %d of %d queries", len(out), n)
	}
	return out, nil
}

func randomQuery(t *schema.Tree, r *rand.Rand) *xpath.Query {
	elems := t.Elements()
	target := elems[r.Intn(len(elems))]
	if target == t.Root && r.Intn(4) != 0 {
		return nil // root contexts only occasionally
	}
	if target.IsLeaf() {
		// Leaf contexts appear only as bare single-step queries: the
		// translator resolves explicit projections and predicates on a
		// leaf context through a self-name special case the reference
		// evaluator deliberately does not implement.
		return &xpath.Query{Context: []xpath.Step{{Axis: xpath.Descendant, Name: target.Name}}}
	}
	steps := contextSteps(t, target, r)
	ctxNodes := translate.ResolveContext(t, steps)
	if len(ctxNodes) == 0 {
		return nil
	}
	for _, cn := range ctxNodes {
		if cn.IsLeaf() {
			return nil // a shared name resolves to both; keep it simple
		}
	}
	q := &xpath.Query{Context: steps}
	cands := pathCandidates(ctxNodes)
	if r.Intn(100) < 55 {
		q.Pred = randomPredicate(cands, r)
	}
	// Bare queries keep their shape through the printer only when the
	// predicate pins the context end, or the context is one descendant
	// step (a trailing child step would reparse as a projection).
	bareOK := q.Pred != nil ||
		(len(steps) == 1 && steps[0].Axis == xpath.Descendant)
	if bareOK && r.Intn(100) < 15 && bareSafe(ctxNodes) {
		return q
	}
	proj := randomProjection(cands, r)
	if len(proj) == 0 {
		if q.Pred != nil && bareOK && bareSafe(ctxNodes) {
			return q
		}
		return nil
	}
	q.Proj = proj
	return q
}

// contextSteps builds a location path for the target: usually a single
// descendant step, otherwise the full child path from the root or a
// two-step path through the parent.
func contextSteps(t *schema.Tree, target *schema.Node, r *rand.Rand) []xpath.Step {
	single := []xpath.Step{{Axis: xpath.Descendant, Name: target.Name}}
	if target == t.Root || r.Intn(100) < 60 {
		return single
	}
	if r.Intn(2) == 0 {
		var names []string
		for n := target; n != nil; n = n.ElementParent() {
			names = append([]string{n.Name}, names...)
		}
		steps := make([]xpath.Step, len(names))
		for i, nm := range names {
			steps[i] = xpath.Step{Axis: xpath.Child, Name: nm}
		}
		return steps
	}
	par := target.ElementParent()
	if par == nil || par == t.Root {
		return single
	}
	ax := xpath.Child
	if r.Intn(2) == 0 {
		ax = xpath.Descendant
	}
	return []xpath.Step{{Axis: xpath.Descendant, Name: par.Name}, {Axis: ax, Name: target.Name}}
}

// pathCand is one candidate relative path from the context element to a
// leaf, usable as a predicate or projection.
type pathCand struct {
	path xpath.Path
	leaf *schema.Node
}

// pathCandidates lists the relative paths that resolve to exactly one
// leaf under every resolved context node: direct leaf children, and
// grandchild leaves through complex children (skipping set-valued
// grandchildren of set-valued children, which would cross two relation
// levels under every mapping).
func pathCandidates(ctxNodes []*schema.Node) []pathCand {
	ctx := ctxNodes[0]
	var raw []pathCand
	for _, c := range ctx.ElementChildren() {
		if c.IsLeaf() {
			raw = append(raw, pathCand{xpath.Path{c.Name}, c})
			continue
		}
		for _, gc := range c.ElementChildren() {
			if !gc.IsLeaf() {
				continue
			}
			if c.IsSetValued() && gc.IsSetValued() {
				continue
			}
			raw = append(raw, pathCand{xpath.Path{c.Name, gc.Name}, gc})
		}
	}
	var out []pathCand
	for _, pc := range raw {
		ok := true
		for _, cn := range ctxNodes {
			rs := resolveSchemaPath(cn, pc.path)
			if len(rs) != 1 || !rs[0].IsLeaf() {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, pc)
		}
	}
	return out
}

// resolveSchemaPath mirrors the translator's relative-path resolution
// (without its leaf-context special case).
func resolveSchemaPath(ctx *schema.Node, p xpath.Path) []*schema.Node {
	cur := []*schema.Node{ctx}
	for _, name := range p {
		var next []*schema.Node
		for _, n := range cur {
			for _, c := range n.ElementChildren() {
				if c.Name == name {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	return cur
}

// bareSafe reports whether a bare (projection-less) query on the
// context compares cleanly: every single-valued direct leaf child must
// be unconditionally present, because the evaluator emits one value
// entry per present child while the gold normalizer labels entries by
// schema position.
func bareSafe(ctxNodes []*schema.Node) bool {
	for _, ctx := range ctxNodes {
		if ctx.IsLeaf() {
			return false
		}
		n := 0
		for _, c := range ctx.ElementChildren() {
			if !c.IsLeaf() || c.IsSetValued() {
				continue
			}
			if c.IsOptional() || c.UnderChoice() != nil {
				return false
			}
			n++
		}
		if n == 0 {
			return false
		}
	}
	return true
}

func randomPredicate(cands []pathCand, r *rand.Rand) *xpath.Predicate {
	if len(cands) == 0 {
		return nil
	}
	pc := cands[r.Intn(len(cands))]
	return &xpath.Predicate{
		Path:  pc.path,
		Op:    randomOp(r),
		Value: randomLiteral(pc.leaf, r),
	}
}

func randomOp(r *rand.Rand) xpath.CmpOp {
	w := r.Intn(100)
	switch {
	case w < 35:
		return xpath.OpEq
	case w < 45:
		return xpath.OpNe
	case w < 60:
		return xpath.OpLt
	case w < 73:
		return xpath.OpLe
	case w < 87:
		return xpath.OpGt
	default:
		return xpath.OpGe
	}
}

// randomLiteral draws a comparison literal, usually from the same pool
// the document values come from; occasionally an off-type literal that
// exercises the coercion paths (an unparseable string against a numeric
// column coerces to NULL and never matches, on both sides).
func randomLiteral(leaf *schema.Node, r *rand.Rand) xpath.Literal {
	if r.Intn(100) < 8 {
		switch leaf.LeafBase() {
		case schema.BaseInt, schema.BaseFloat:
			return xpath.StringLit("not-a-number")
		default:
			return xpath.IntLit(int64(r.Intn(12)))
		}
	}
	v := poolValue(leaf, r)
	switch leaf.LeafBase() {
	case schema.BaseInt:
		return xpath.IntLit(v.I)
	case schema.BaseFloat:
		return xpath.FloatLit(v.F)
	default:
		return xpath.StringLit(v.S)
	}
}

func randomProjection(cands []pathCand, r *rand.Rand) []xpath.Path {
	if len(cands) == 0 {
		return nil
	}
	n := 1 + r.Intn(3)
	if n > len(cands) {
		n = len(cands)
	}
	perm := r.Perm(len(cands))
	seen := make(map[string]bool)
	var out []xpath.Path
	for _, i := range perm {
		p := cands[i].path
		if seen[p.String()] {
			continue
		}
		seen[p.String()] = true
		out = append(out, p)
		if len(out) == n {
			break
		}
	}
	return out
}
