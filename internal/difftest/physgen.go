package difftest

import (
	"math/rand"

	"repro/internal/physical"
	"repro/internal/rel"
)

// RandomConfig draws a random physical design over the shredded
// database: PID and value-column indexes (with random include lists),
// two-group vertical partitions, and parent-child join views where the
// parent relation exists under its annotation name (i.e. is not itself
// partitioned). About one config in five is left empty.
func RandomConfig(r *rand.Rand, db *rel.Database) *physical.Config {
	cfg := &physical.Config{}
	if r.Intn(5) == 0 {
		return cfg
	}
	for _, tb := range db.Tables() {
		var valueCols []string
		for _, c := range tb.Columns {
			if c.Name != rel.IDColumn && c.Name != rel.PIDColumn {
				valueCols = append(valueCols, c.Name)
			}
		}
		if tb.HasColumn(rel.PIDColumn) && r.Intn(10) < 4 {
			idx := &physical.Index{
				Name: "p_" + tb.Name, Table: tb.Name, Key: []string{rel.PIDColumn},
			}
			if len(valueCols) > 0 && r.Intn(2) == 0 {
				idx.Include = []string{valueCols[r.Intn(len(valueCols))]}
			}
			cfg.AddIndex(idx)
		}
		if len(valueCols) > 0 && r.Intn(10) < 4 {
			key := valueCols[r.Intn(len(valueCols))]
			idx := &physical.Index{
				Name: "v_" + tb.Name + "_" + key, Table: tb.Name, Key: []string{key},
			}
			if r.Intn(2) == 0 {
				idx.Include = append(idx.Include, rel.IDColumn)
			}
			cfg.AddIndex(idx)
		}
		if len(valueCols) >= 2 && r.Intn(10) < 2 {
			perm := r.Perm(len(valueCols))
			cut := 1 + r.Intn(len(valueCols)-1)
			groups := [][]string{{}, {}}
			for k, i := range perm {
				g := 0
				if k >= cut {
					g = 1
				}
				groups[g] = append(groups[g], valueCols[i])
			}
			cfg.AddPartition(&physical.VPartition{Table: tb.Name, Groups: groups})
		}
		if tb.Parent != "" && r.Intn(10) < 3 {
			outer := db.Table(tb.Parent)
			if outer == nil {
				continue // parent annotation is partitioned; no single table
			}
			oCols := []string{rel.IDColumn}
			for _, c := range outer.Columns {
				if c.Name != rel.IDColumn && c.Name != rel.PIDColumn && r.Intn(2) == 0 {
					oCols = append(oCols, c.Name)
				}
			}
			var iCols []string
			for _, c := range valueCols {
				if r.Intn(2) == 0 {
					iCols = append(iCols, c)
				}
			}
			if len(iCols) == 0 && len(valueCols) > 0 {
				iCols = append(iCols, valueCols[0])
			}
			cfg.AddView(&physical.View{
				Name:      "jv_" + tb.Name,
				Outer:     outer.Name,
				Inner:     tb.Name,
				OuterCols: oCols,
				InnerCols: iCols,
			})
		}
	}
	return cfg
}
