package difftest

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physdesign"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/service"
	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/translate"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// Case identifies one differential trial. Every random decision derives
// deterministically from Seed, so a Case is a complete replay spec.
type Case struct {
	// Seed drives schema, document, workload, transformation, and
	// physical-design generation through independent substreams.
	Seed int64
	// RootInstances scales the document (top-level element counts are
	// drawn from 1..2*RootInstances).
	RootInstances int
	// Steps is the length of the random transformation sequence.
	Steps int
	// Queries is the workload size.
	Queries int
	// Only restricts execution to the query with this index; -1 runs
	// all queries (used by shrinking to isolate a failure).
	Only int
	// CheckCosts enables the cost-model invariant checks.
	CheckCosts bool
	// Persist enables the persistence round trip: the built store is
	// saved to a scratch directory, reopened, and every query must
	// return bit-identical results at identical plan costs from the
	// reopened store — both through assembled tables and through the
	// chunk-granular paged scan path (Store.PagedBuilt).
	Persist bool
	// PersistBudget is the memory budget (bytes) the reopened store runs
	// under. Zero derives a deliberately tiny budget from the database
	// size, so the round trip exercises chunk paging and table eviction;
	// a value > 1 pins an explicit budget (as recorded in replay specs).
	PersistBudget int64
	// Service enables the service-equivalence stage: the trial's
	// workload is also submitted through an in-process multi-tenant
	// service (concurrent sessions, seeded random quotas and worker
	// counts) and every response must be bit-identical to the direct
	// engine execution.
	Service bool
}

// DefaultCase is the standard trial shape for a seed.
func DefaultCase(seed int64) Case {
	return Case{Seed: seed, RootInstances: 8, Steps: 4, Queries: 6, Only: -1, CheckCosts: true, Persist: true, Service: true}
}

// ReplaySpec renders the case in the format DIFFTEST_REPLAY accepts.
// The persist field is three-valued: 0 disables the round trip, 1
// enables it with the auto-derived tiny budget, and a value > 1 pins
// the exact budget bytes a failing trial ran under.
func (c Case) ReplaySpec() string {
	persist := 0
	if c.Persist {
		persist = 1
		if c.PersistBudget > 1 {
			persist = int(c.PersistBudget)
		}
	}
	service := 0
	if c.Service {
		service = 1
	}
	return fmt.Sprintf("seed=%d,roots=%d,steps=%d,queries=%d,only=%d,persist=%d,service=%d",
		c.Seed, c.RootInstances, c.Steps, c.Queries, c.Only, persist, service)
}

// ParseReplay parses a ReplaySpec back into a Case.
func ParseReplay(s string) (Case, error) {
	c := DefaultCase(0)
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return c, fmt.Errorf("difftest: bad replay component %q", kv)
		}
		v, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return c, fmt.Errorf("difftest: bad replay value %q: %v", kv, err)
		}
		switch parts[0] {
		case "seed":
			c.Seed = v
		case "roots":
			c.RootInstances = int(v)
		case "steps":
			c.Steps = int(v)
		case "queries":
			c.Queries = int(v)
		case "only":
			c.Only = int(v)
		case "persist":
			c.Persist = v != 0
			if v > 1 {
				c.PersistBudget = v
			} else {
				c.PersistBudget = 0
			}
		case "service":
			c.Service = v != 0
		default:
			return c, fmt.Errorf("difftest: unknown replay key %q", parts[0])
		}
	}
	return c, nil
}

// Mismatch is a differential failure: the oracle and the pipeline
// disagree, or an invariant broke, at the given stage.
type Mismatch struct {
	Case     Case
	Stage    string
	QueryIdx int // -1 when not tied to one query
	Query    string
	Detail   string
}

func (m *Mismatch) Error() string {
	q := ""
	if m.Query != "" {
		q = fmt.Sprintf(" query %d %s", m.QueryIdx, m.Query)
	}
	return fmt.Sprintf("[%s] stage %s%s: %s", m.Case.ReplaySpec(), m.Stage, q, m.Detail)
}

// RunStats summarizes one trial.
type RunStats struct {
	// Queries is the workload size; Executed of them ran end to end,
	// Skipped hit a mapping/grammar combination the translator cannot
	// express, and ProvenEmpty were pruned to nothing by the translator
	// (verified empty against the evaluator).
	Queries, Executed, Skipped, ProvenEmpty int
	// Transforms counts successfully applied transformation steps.
	Transforms int
	// Tuned is 1 when the physical design came from physdesign.Tune.
	Tuned int
	// MaxCostRatio is the largest derived-vs-measured cost ratio seen.
	MaxCostRatio float64
}

// Add accumulates another trial's stats.
func (s *RunStats) Add(o RunStats) {
	s.Queries += o.Queries
	s.Executed += o.Executed
	s.Skipped += o.Skipped
	s.ProvenEmpty += o.ProvenEmpty
	s.Transforms += o.Transforms
	s.Tuned += o.Tuned
	if o.MaxCostRatio > s.MaxCostRatio {
		s.MaxCostRatio = o.MaxCostRatio
	}
}

// mix derives an independent substream seed from the case seed (a
// splitmix64 step). Separate streams per generation phase keep
// shrinking prefix-stable: changing Steps or Only never shifts the
// schema, document, or workload randomness.
func mix(seed int64, stream uint64) int64 {
	z := uint64(seed) + (stream+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Run executes one differential trial and reports the first mismatch,
// if any.
func Run(c Case) (RunStats, *Mismatch) {
	var st RunStats
	fail := func(stage string, qi int, query, format string, a ...any) *Mismatch {
		return &Mismatch{Case: c, Stage: stage, QueryIdx: qi, Query: query, Detail: fmt.Sprintf(format, a...)}
	}
	base := RandomSchema(rand.New(rand.NewSource(mix(c.Seed, 1))))
	doc, err := RandomDoc(base, rand.New(rand.NewSource(mix(c.Seed, 2))), c.RootInstances)
	if err != nil {
		return st, fail("document", -1, "", "%v", err)
	}
	queries, err := RandomWorkload(base, rand.New(rand.NewSource(mix(c.Seed, 3))), c.Queries)
	if err != nil {
		return st, fail("workload", -1, "", "%v", err)
	}
	st.Queries = len(queries)

	// Random transformation sequence, exactly as the advisor applies
	// them: enumerate applicable candidates, pick one, apply, repeat.
	col := xmlgen.CollectStats(base, doc)
	rt := rand.New(rand.NewSource(mix(c.Seed, 4)))
	tree := base.Clone()
	var applied []string
	for s := 0; s < c.Steps; s++ {
		cands := transform.EnumerateAll(tree, col)
		if len(cands) == 0 {
			break
		}
		tf := cands[rt.Intn(len(cands))]
		next, aerr := tf.Apply(tree)
		if aerr != nil {
			continue // combination not applicable under the current tree
		}
		applied = append(applied, tf.Key())
		tree = next
	}
	st.Transforms = len(applied)

	m, err := shred.Compile(tree)
	if err != nil {
		return st, fail("compile", -1, "", "%v (applied %v)", err, applied)
	}
	db, err := shred.Shred(m, doc)
	if err != nil {
		return st, fail("shred", -1, "", "%v (applied %v)", err, applied)
	}

	type tq struct {
		idx int
		q   *xpath.Query
		sql *sqlast.Query
	}
	var translated []tq
	for i, q := range queries {
		if c.Only >= 0 && i != c.Only {
			continue
		}
		sql, terr := translate.Translate(m, q)
		if terr != nil {
			switch classifyTranslateErr(terr) {
			case skipClass:
				st.Skipped++
				continue
			case emptyClass:
				// The translator pruned every branch: the query must
				// really be empty on the document.
				gold, gerr := xmlgen.Evaluate(base, doc, q)
				if gerr != nil {
					return st, fail("evaluate", i, q.String(), "%v", gerr)
				}
				if n := len(dropEmpty(normalizeGold(gold, q.Proj, bareNames(base, q)))); n > 0 {
					return st, fail("prune", i, q.String(),
						"translator proved the query empty but the evaluator returns %d non-empty groups (applied %v)", n, applied)
				}
				st.ProvenEmpty++
				continue
			default:
				return st, fail("translate", i, q.String(), "%v (applied %v)", terr, applied)
			}
		}
		translated = append(translated, tq{i, q, sql})
	}

	prov := stats.FromDatabase(db)
	rp := rand.New(rand.NewSource(mix(c.Seed, 5)))
	var cfg *physical.Config
	if len(translated) > 0 && rp.Intn(100) < 15 {
		// Tuner-chosen design under a random storage bound; doubles as
		// the storage-bound invariant check.
		var w physdesign.Workload
		for _, t := range translated {
			w = append(w, physdesign.WeightedQuery{Q: t.sql, Weight: float64(1 + rp.Intn(3)), Tag: t.q.String()})
		}
		bound := db.Bytes()/2 + int64(rp.Intn(4096))
		rec, rerr := physdesign.Tune(w, prov, physdesign.Options{
			StorageBytes:      bound,
			EnableVPartitions: rp.Intn(2) == 0,
		})
		if rerr != nil {
			return st, fail("tune", -1, "", "%v (applied %v)", rerr, applied)
		}
		if c.CheckCosts {
			if rec.StructBytes > bound {
				return st, fail("storage-bound", -1, "",
					"recommendation StructBytes %d exceeds bound %d", rec.StructBytes, bound)
			}
			if est := rec.Config.EstBytes(prov); est > bound {
				return st, fail("storage-bound", -1, "",
					"config EstBytes %d exceeds bound %d", est, bound)
			}
		}
		cfg = rec.Config
		st.Tuned = 1
	} else {
		cfg = RandomConfig(rp, db)
	}

	built, err := engine.Build(db, cfg)
	if err != nil {
		return st, fail("build", -1, "", "%v (config %v)", err, cfg)
	}

	// Persistence round trip: save the built store, reopen it, and hold
	// the reopened copy to the same bar as the executors — bit-identical
	// tables now, bit-identical results and identical plan costs per
	// query below.
	var reopened, paged *engine.Built
	var reopenedOpt *optimizer.Optimizer
	if c.Persist {
		// The reopened store runs under a deliberately tiny memory
		// budget (unless the replay spec pins one), with small chunks so
		// even modest trial databases page: the round trip then covers
		// chunk faulting, CLOCK eviction, and table reassembly, and the
		// budget lands in the replay spec of any failure.
		if c.PersistBudget <= 1 {
			c.PersistBudget = db.Bytes() / 3
			if c.PersistBudget < 4096 {
				c.PersistBudget = 4096
			}
		}
		dir, derr := os.MkdirTemp("", "difftest-store-")
		if derr != nil {
			return st, fail("persistence-round-trip", -1, "", "scratch dir: %v", derr)
		}
		defer os.RemoveAll(dir)
		if _, serr := storage.Save(dir, built, storage.Options{ChunkRows: 64}); serr != nil {
			return st, fail("persistence-round-trip", -1, "", "save: %v (config %v)", serr, cfg)
		}
		store, oerr := storage.Open(dir, storage.Options{MemBudgetBytes: c.PersistBudget, ChunkRows: 64})
		if oerr != nil {
			return st, fail("persistence-round-trip", -1, "", "open: %v", oerr)
		}
		reopened, err = store.Built()
		if err != nil {
			return st, fail("persistence-round-trip", -1, "", "rebuild: %v (config %v)", err, cfg)
		}
		if reopened.StructBytes != built.StructBytes {
			return st, fail("persistence-round-trip", -1, "",
				"reopened StructBytes %d, original %d", reopened.StructBytes, built.StructBytes)
		}
		for _, tb := range db.Tables() {
			if d := diffTables(tb, reopened.DB.Table(tb.Name)); d != "" {
				return st, fail("persistence-round-trip", -1, "", "table %s: %s", tb.Name, d)
			}
		}
		reopenedOpt = optimizer.New(stats.FromDatabase(reopened.DB))
		// Paged view of the same store: driver-stage scans pull chunks
		// through the pager under the trial's tiny budget instead of
		// reading assembled tables. Executed differentially below.
		paged, err = store.PagedBuilt()
		if err != nil {
			return st, fail("chunk-scan-equivalence", -1, "", "paged rebuild: %v (config %v)", err, cfg)
		}
	}
	// Every trial also exercises the tracing layer: executor spans are
	// recorded for each batch execution and the tree must stay
	// well-formed no matter which plans, caches, and branch shapes the
	// trial hits.
	tracer := obs.New()
	built.AttachObs(tracer, nil)
	opt := optimizer.New(prov)
	var optDerived *optimizer.Optimizer
	if c.CheckCosts {
		optDerived = optimizer.New(shred.DeriveStats(m, col))
	}
	// Worker count for the parallel-executor differential: seeded from
	// its own stream so replays are deterministic, drawn from {2..7}
	// rather than NumCPU so a trial reproduces identically across
	// machines.
	wrand := rand.New(rand.NewSource(mix(c.Seed, 6)))
	// Fully validated queries and their reference results, kept for the
	// service-equivalence stage below.
	type svcQuery struct {
		idx   int
		query string
		ref   *engine.Result
	}
	var svcQueries []svcQuery
	for _, t := range translated {
		plan, perr := opt.PlanQuery(t.sql, cfg)
		if perr != nil {
			return st, fail("plan", t.idx, t.q.String(), "%v\nSQL:\n%s", perr, t.sql.SQL())
		}
		res, xerr := engine.Execute(built, plan)
		if xerr != nil {
			return st, fail("execute", t.idx, t.q.String(), "%v\nSQL:\n%s", xerr, t.sql.SQL())
		}
		// Executor differential: the pipelined batch executor must be
		// bit-identical — rows, order, and stats — to the row-at-a-time
		// reference path.
		ref, rerr := engine.ExecuteReference(built, plan)
		if rerr != nil {
			return st, fail("execute-reference", t.idx, t.q.String(), "%v\nSQL:\n%s", rerr, t.sql.SQL())
		}
		if d := diffResults(res, ref); d != "" {
			return st, fail("executor-equivalence", t.idx, t.q.String(), "%s (applied %v)\nSQL:\n%s", d, applied, t.sql.SQL())
		}
		// Parallel-executor differential: the same plan through the
		// morsel-driven worker pool must also be bit-identical to the
		// reference, at a seeded random worker count.
		wk := 2 + wrand.Intn(6)
		pp, perr2 := built.Prepared(plan)
		if perr2 != nil {
			return st, fail("prepare", t.idx, t.q.String(), "%v\nSQL:\n%s", perr2, t.sql.SQL())
		}
		pp.Workers = wk
		par, xerr2 := pp.Execute()
		pp.Workers = 0
		if xerr2 != nil {
			return st, fail("execute-parallel", t.idx, t.q.String(), "workers=%d: %v\nSQL:\n%s", wk, xerr2, t.sql.SQL())
		}
		if d := diffResults(par, ref); d != "" {
			return st, fail("executor-parallel-equivalence", t.idx, t.q.String(),
				"workers=%d: %s (applied %v)\nSQL:\n%s", wk, d, applied, t.sql.SQL())
		}
		// Persistence differential: the reopened store must plan at the
		// exact same cost (its statistics come from bit-identical
		// tables) and execute to bit-identical results.
		if reopened != nil {
			rplan, rperr := reopenedOpt.PlanQuery(t.sql, cfg)
			if rperr != nil {
				return st, fail("persistence-round-trip", t.idx, t.q.String(), "replan: %v\nSQL:\n%s", rperr, t.sql.SQL())
			}
			if rplan.Cost != plan.Cost {
				return st, fail("persistence-round-trip", t.idx, t.q.String(),
					"reopened plan cost %v, original %v (applied %v)\nSQL:\n%s", rplan.Cost, plan.Cost, applied, t.sql.SQL())
			}
			rres, rxerr := engine.Execute(reopened, rplan)
			if rxerr != nil {
				return st, fail("persistence-round-trip", t.idx, t.q.String(), "execute: %v\nSQL:\n%s", rxerr, t.sql.SQL())
			}
			if d := diffResults(rres, ref); d != "" {
				return st, fail("persistence-round-trip", t.idx, t.q.String(),
					"%s (applied %v)\nSQL:\n%s", d, applied, t.sql.SQL())
			}
			// Chunk-scan differential: the same plan through the paged
			// Built — scans faulting, filtering, and releasing one pager
			// chunk at a time — must be bit-identical to the reference,
			// serially and at the seeded morsel worker count.
			pres, pxerr := engine.Execute(paged, rplan)
			if pxerr != nil {
				return st, fail("chunk-scan-equivalence", t.idx, t.q.String(), "execute: %v\nSQL:\n%s", pxerr, t.sql.SQL())
			}
			if d := diffResults(pres, ref); d != "" {
				return st, fail("chunk-scan-equivalence", t.idx, t.q.String(),
					"%s (applied %v)\nSQL:\n%s", d, applied, t.sql.SQL())
			}
			ppaged, pperr := paged.Prepared(rplan)
			if pperr != nil {
				return st, fail("chunk-scan-equivalence", t.idx, t.q.String(), "prepare: %v\nSQL:\n%s", pperr, t.sql.SQL())
			}
			ppaged.Workers = wk
			ppar, pxerr2 := ppaged.Execute()
			ppaged.Workers = 0
			if pxerr2 != nil {
				return st, fail("chunk-scan-equivalence", t.idx, t.q.String(),
					"workers=%d: %v\nSQL:\n%s", wk, pxerr2, t.sql.SQL())
			}
			if d := diffResults(ppar, ref); d != "" {
				return st, fail("chunk-scan-equivalence", t.idx, t.q.String(),
					"workers=%d: %s (applied %v)\nSQL:\n%s", wk, d, applied, t.sql.SQL())
			}
		}
		gold, gerr := xmlgen.Evaluate(base, doc, t.q)
		if gerr != nil {
			return st, fail("evaluate", t.idx, t.q.String(), "%v", gerr)
		}
		got := dropEmpty(normalizeSQL(res))
		want := dropEmpty(normalizeGold(gold, t.q.Proj, bareNames(base, t.q)))
		if d := diffGroups(got, want); d != "" {
			return st, fail("compare", t.idx, t.q.String(), "%s (applied %v)\nSQL:\n%s", d, applied, t.sql.SQL())
		}
		st.Executed++
		if c.CheckCosts {
			if cerr := checkCosts(&st, optDerived, t.sql, cfg, plan); cerr != "" {
				return st, fail("cost", t.idx, t.q.String(), "%s (applied %v)", cerr, applied)
			}
		}
		svcQueries = append(svcQueries, svcQuery{idx: t.idx, query: t.q.String(), ref: ref})
	}
	// Service-equivalence stage: the same workload through an in-process
	// multi-tenant service — concurrent sessions, seeded random quotas,
	// pool size, and per-session worker asks — sharing the trial's Built
	// and its warm caches. Every response must be bit-identical (rows,
	// order, values, stats) to the direct reference execution, and the
	// service's plan cache must have translated each query text exactly
	// once across all sessions.
	if c.Service && len(svcQueries) > 0 {
		srand := rand.New(rand.NewSource(mix(c.Seed, 7)))
		sessions := 2 + srand.Intn(3)
		sreg := obs.NewRegistry()
		maxConc := 1 + srand.Intn(3)
		svc := service.New(service.Config{
			Registry:           sreg,
			PoolWorkers:        1 + srand.Intn(4),
			MaxWorkersPerQuery: 1 + srand.Intn(4),
			DefaultQuota: service.TenantQuota{
				MaxConcurrent: maxConc,
				// Deep enough that no request is ever rejected: the stage
				// checks equivalence under queueing, not overload.
				MaxQueued: 2 * sessions * len(svcQueries),
			},
		})
		if rerr := svc.RegisterBuilt("trial", built, m, nil); rerr != nil {
			return st, fail("service-equivalence", -1, "", "register: %v", rerr)
		}
		asks := make([]int, sessions)
		for i := range asks {
			asks[i] = 1 + srand.Intn(4)
		}
		fails := make(chan *Mismatch, sessions)
		var wg sync.WaitGroup
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				tenant := fmt.Sprintf("tenant-%d", s%2)
				for _, sq := range svcQueries {
					resp, qerr := svc.Query(context.Background(), service.Request{
						Corpus: "trial", Tenant: tenant, XPath: sq.query, Workers: asks[s],
					})
					if qerr != nil {
						fails <- fail("service-equivalence", sq.idx, sq.query,
							"session %d: %v (applied %v)", s, qerr, applied)
						return
					}
					got := &engine.Result{Cols: resp.Cols, Rows: resp.Rows, Stats: resp.Stats}
					if d := diffResults(got, sq.ref); d != "" {
						fails <- fail("service-equivalence", sq.idx, sq.query,
							"session %d workers %d: %s (applied %v)", s, asks[s], d, applied)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		close(fails)
		for sm := range fails {
			return st, sm
		}
		distinct := make(map[string]bool, len(svcQueries))
		for _, sq := range svcQueries {
			distinct[sq.query] = true
		}
		snap := sreg.Snapshot()
		if got := snap["service.plan.misses"]; got != float64(len(distinct)) {
			return st, fail("service-equivalence", -1, "",
				"plan cache misses %v across %d sessions, want %d distinct texts (single-flight broken)",
				got, sessions, len(distinct))
		}
		for _, tenant := range []string{"tenant-0", "tenant-1"} {
			if peak := snap["service.tenant."+tenant+".inflight_peak"]; peak > float64(maxConc) {
				return st, fail("service-equivalence", -1, "",
					"%s inflight peak %v exceeds quota %d", tenant, peak, maxConc)
			}
		}
	}
	if err := tracer.Validate(); err != nil {
		return st, fail("obs-wellformed", -1, "", "%v (applied %v)", err, applied)
	}
	if st.Executed > 0 {
		if got := len(tracer.FindAll("executor.execute")); got < st.Executed {
			return st, fail("obs-wellformed", -1, "",
				"%d queries executed but only %d executor.execute spans recorded", st.Executed, got)
		}
	}
	return st, nil
}

// diffResults compares two executor results for exact equality: column
// names, row count, every value bit for bit (Value.BitEqual, so NaN
// equals NaN and -0.0 differs from +0.0 — Go's struct equality would
// reject identical NaNs), and ExecStats counters.
func diffResults(got, want *engine.Result) string {
	if len(got.Cols) != len(want.Cols) {
		return fmt.Sprintf("batch executor returned %d cols, reference %d", len(got.Cols), len(want.Cols))
	}
	for i := range got.Cols {
		if got.Cols[i] != want.Cols[i] {
			return fmt.Sprintf("col %d is %q, reference %q", i, got.Cols[i], want.Cols[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Sprintf("batch executor returned %d rows, reference %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			return fmt.Sprintf("row %d has %d values, reference %d", i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range got.Rows[i] {
			if !got.Rows[i][j].BitEqual(want.Rows[i][j]) {
				return fmt.Sprintf("row %d col %d is %v, reference %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	if got.Stats != want.Stats {
		return fmt.Sprintf("stats %+v, reference %+v", got.Stats, want.Stats)
	}
	return ""
}

// diffTables compares a reopened table against the original down to
// the bit level: schema, row count, generation, byte accounting, and
// every value under Value.BitEqual.
func diffTables(want, got *rel.Table) string {
	if got == nil {
		return "missing after reopen"
	}
	if got.Name != want.Name || got.Parent != want.Parent {
		return fmt.Sprintf("identity %q/%q, original %q/%q", got.Name, got.Parent, want.Name, want.Parent)
	}
	if len(got.Columns) != len(want.Columns) {
		return fmt.Sprintf("%d columns, original %d", len(got.Columns), len(want.Columns))
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] {
			return fmt.Sprintf("column %d is %+v, original %+v", i, got.Columns[i], want.Columns[i])
		}
	}
	if got.RowCount() != want.RowCount() {
		return fmt.Sprintf("%d rows, original %d", got.RowCount(), want.RowCount())
	}
	if got.Generation() != want.Generation() {
		return fmt.Sprintf("generation %d, original %d", got.Generation(), want.Generation())
	}
	if got.Bytes() != want.Bytes() || got.Pages() != want.Pages() {
		return fmt.Sprintf("accounting %d bytes/%d pages, original %d/%d",
			got.Bytes(), got.Pages(), want.Bytes(), want.Pages())
	}
	for r := 0; r < want.RowCount(); r++ {
		for ci := range want.Columns {
			if gv, wv := got.ValueAt(r, ci), want.ValueAt(r, ci); !gv.BitEqual(wv) {
				return fmt.Sprintf("value (%d,%d) is %v, original %v", r, ci, gv, wv)
			}
		}
	}
	return ""
}

func diffGroups(got, want []string) string {
	if len(got) != len(want) {
		return fmt.Sprintf("got %d groups, want %d\n got: %s\nwant: %s",
			len(got), len(want), strings.Join(got, " || "), strings.Join(want, " || "))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("group %d differs\n got: %s\nwant: %s", i, got[i], want[i])
		}
	}
	return ""
}

type errClass int

const (
	failClass errClass = iota
	skipClass
	emptyClass
)

// classifyTranslateErr sorts translator errors into three bins: shapes
// a mapping legitimately cannot express (skipped), queries the
// translator proves return nothing (verified against the evaluator),
// and everything else (a failure).
func classifyTranslateErr(err error) errClass {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "selects nothing under this mapping"):
		return emptyClass
	case strings.Contains(msg, "resolves to"),
		strings.Contains(msg, "crosses more than one relation level"),
		strings.Contains(msg, "selection on partitioned child relation"),
		strings.Contains(msg, "split selection with partitioned overflow"),
		strings.Contains(msg, "ambiguous with incompatible projections"):
		return skipClass
	default:
		return failClass
	}
}

// Cost-model invariant bounds. The derived cost comes from document
// statistics pushed through the mapping (shred.DeriveStats); the
// measured cost from scanning the loaded database. They estimate the
// same plans with different inputs, so they must stay within a fixed
// factor once a small epsilon absorbs the constant terms of near-empty
// tables.
const (
	costEpsilon  = 8.0
	costMaxRatio = 64.0
)

func checkCosts(st *RunStats, derived *optimizer.Optimizer, sql *sqlast.Query,
	cfg *physical.Config, plan *optimizer.Plan) string {
	if math.IsNaN(plan.Cost) || math.IsInf(plan.Cost, 0) || plan.Cost <= 0 {
		return fmt.Sprintf("measured plan cost %v is not finite and positive", plan.Cost)
	}
	dcost, err := derived.Cost(sql, cfg)
	if err != nil {
		return fmt.Sprintf("derived-stats costing failed: %v", err)
	}
	if math.IsNaN(dcost) || math.IsInf(dcost, 0) || dcost < 0 {
		return fmt.Sprintf("derived plan cost %v is not finite", dcost)
	}
	ratio := (dcost + costEpsilon) / (plan.Cost + costEpsilon)
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > st.MaxCostRatio {
		st.MaxCostRatio = ratio
	}
	if ratio > costMaxRatio {
		return fmt.Sprintf("derived cost %.1f vs measured %.1f: ratio %.1f exceeds %g",
			dcost, plan.Cost, ratio, costMaxRatio)
	}
	return ""
}
