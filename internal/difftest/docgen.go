package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/xmlgen"
)

// poolValue draws a leaf value from a small per-leaf pool so that
// workload predicates actually hit: strings are "<name>-00".."<name>-07",
// ints are 0..11, and floats are k+odd/8 — exact in binary and never
// integral, so float literals survive the XPath printer round trip.
func poolValue(leaf *schema.Node, r *rand.Rand) rel.Value {
	switch leaf.LeafBase() {
	case schema.BaseInt:
		return rel.Int(int64(r.Intn(12)))
	case schema.BaseFloat:
		odds := [...]int64{1, 3, 5, 7}
		return rel.Float(float64(r.Intn(10)) + float64(odds[r.Intn(4)])/8)
	default:
		return rel.Str(fmt.Sprintf("%s-%02d", strings.TrimPrefix(leaf.Name, "@"), r.Intn(8)))
	}
}

// docValue draws a leaf value for document generation: usually a plain
// pool value, but ~1/16 of the time a special form — non-finite floats
// (NaN, ±Inf), negative zero, or a whitespace-padded lexical string
// that parses as the declared numeric type. Specials appear only as
// document data, never as comparison literals (randomLiteral draws from
// poolValue): the XPath grammar cannot express NaN or Inf, so the
// differential battery exercises them purely through storage,
// coercion, and ordering.
func docValue(leaf *schema.Node, r *rand.Rand) rel.Value {
	if r.Intn(16) != 0 {
		return poolValue(leaf, r)
	}
	switch leaf.LeafBase() {
	case schema.BaseInt:
		// Whitespace-padded lexical form; shredding and the gold
		// evaluator both trim and parse it to the same integer.
		return rel.Str(fmt.Sprintf(" %d ", r.Intn(12)))
	case schema.BaseFloat:
		switch r.Intn(6) {
		case 0:
			return rel.Float(math.NaN())
		case 1:
			return rel.Float(math.Inf(1))
		case 2:
			return rel.Float(math.Inf(-1))
		case 3:
			return rel.Float(math.Copysign(0, -1))
		case 4:
			return rel.Str("NaN")
		default:
			odds := [...]int64{1, 3, 5, 7}
			return rel.Str(fmt.Sprintf(" %g ", float64(r.Intn(10))+float64(odds[r.Intn(4)])/8))
		}
	default:
		// Numeric-looking strings must stay strings end to end.
		if r.Intn(2) == 0 {
			return rel.Str("NaN")
		}
		return rel.Str(fmt.Sprintf(" %d ", r.Intn(12)))
	}
}

// RandomDoc generates a document valid for the tree: pool-driven leaf
// values, per-option presence probabilities, and rootInstances scaling
// the top-level element counts. This generalizes the hand-coded
// GenerateMovie/GenerateDBLP to arbitrary generated schemas.
func RandomDoc(t *schema.Tree, r *rand.Rand, rootInstances int) (*xmlgen.Doc, error) {
	if rootInstances < 1 {
		rootInstances = 1
	}
	spec := xmlgen.NewGenSpec()
	for _, leaf := range t.Leaves() {
		leaf := leaf
		spec.Value[leaf.ID] = func(rr *rand.Rand, _ int64) rel.Value {
			return docValue(leaf, rr)
		}
	}
	t.Walk(func(n *schema.Node) {
		if n.Kind == schema.KindOption {
			spec.Presence[n.ID] = 0.25 + r.Float64()*0.5
		}
	})
	counts := make(map[string]int)
	for _, c := range t.Root.Children[0].Children {
		if c.Kind != schema.KindRepetition {
			continue
		}
		if elems := c.ElementChildren(); len(elems) == 1 {
			counts[elems[0].Name] = 1 + r.Intn(2*rootInstances)
		}
	}
	g := xmlgen.NewGenerator(t, spec, r.Int63())
	doc := g.GenerateRootChildren(counts)
	if err := doc.Validate(t); err != nil {
		return nil, fmt.Errorf("difftest: generated document is invalid: %w", err)
	}
	return doc, nil
}
