// Package difftest is a generative differential-testing harness: it
// draws random XSD schema trees, documents valid for them, and XPath
// workloads in the supported grammar, then pushes each triple through a
// random transformation sequence and physical design and checks that
// shred → translate → plan → execute returns exactly what the
// reference evaluator (xmlgen.Evaluate) returns on the document.
// Failures shrink to a minimal case and print a replay spec.
package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
)

// RootName is the document root element of every generated schema.
const RootName = "r0"

// schemaGen carries the name counters so every generated element and
// attribute name is globally unique (shared-type twins excepted, which
// deliberately reuse one name under two distinct parents).
type schemaGen struct {
	r     *rand.Rand
	nameN int
	attrN int
}

func (g *schemaGen) name() string {
	g.nameN++
	return fmt.Sprintf("e%d", g.nameN)
}

func (g *schemaGen) attrName() string {
	g.attrN++
	return fmt.Sprintf("@a%d", g.attrN)
}

// base draws a leaf base type: strings half the time, then ints, then
// floats — all three rel value types appear in any non-trivial schema.
func (g *schemaGen) base() schema.BaseType {
	switch g.r.Intn(10) {
	case 0, 1, 2:
		return schema.BaseInt
	case 3, 4:
		return schema.BaseFloat
	default:
		return schema.BaseString
	}
}

// RandomSchema draws a bounded random schema tree: a root holding 2-4
// repeated complex elements, each with a mix of required/optional/
// repeated leaves, attributes, choice groups, and up to two levels of
// nested complex content; sometimes a pair of shared-type twin leaves
// spans two top-level elements (the DBLP author/cite pattern). The
// tree is annotated with hybrid inlining and always validates.
func RandomSchema(r *rand.Rand) *schema.Tree {
	g := &schemaGen{r: r}
	nTop := 2 + r.Intn(3)
	tops := make([]*schema.Node, nTop)
	var rootKids []*schema.Node
	for i := range tops {
		tops[i] = g.complexElem(1)
		rootKids = append(rootKids, schema.Rep(tops[i]))
	}
	// Occasionally a single-valued root leaf (dataset metadata).
	if r.Intn(3) == 0 {
		rootKids = append(rootKids, schema.Leaf(g.name(), g.base()))
	}
	if nTop >= 2 && r.Intn(10) < 7 {
		g.addSharedPair(tops)
	}
	t := schema.NewTree(schema.Elem(RootName, schema.Seq(rootKids...)))
	schema.ApplyHybridInlining(t)
	if err := t.Validate(); err != nil {
		// A generator bug, not a system-under-test failure.
		panic(fmt.Sprintf("difftest: generated schema is invalid: %v", err))
	}
	return t
}

// complexElem builds one complex element at the given nesting depth.
func (g *schemaGen) complexElem(depth int) *schema.Node {
	name := g.name()
	var kids []*schema.Node
	// An attribute first, sometimes optional — attributes precede
	// content in the XSD surface form.
	if g.r.Intn(10) < 4 {
		a := schema.Leaf(g.attrName(), g.base())
		if g.r.Intn(2) == 0 {
			kids = append(kids, schema.Opt(a))
		} else {
			kids = append(kids, a)
		}
	}
	// Always at least one required leaf so the element has content for
	// bare-context queries and partition signatures.
	kids = append(kids, schema.Leaf(g.name(), g.base()))
	n := 1 + g.r.Intn(4)
	for i := 0; i < n; i++ {
		kids = append(kids, g.contentItem(depth))
	}
	return schema.Elem(name, schema.Seq(kids...))
}

// contentItem draws one content-model item.
func (g *schemaGen) contentItem(depth int) *schema.Node {
	w := g.r.Intn(100)
	switch {
	case w < 20: // required leaf
		return schema.Leaf(g.name(), g.base())
	case w < 40: // optional leaf (implicit-union candidate)
		return schema.Opt(schema.Leaf(g.name(), g.base()))
	case w < 58: // unbounded repeated leaf (rep-split candidate)
		return schema.Rep(schema.Leaf(g.name(), g.base()))
	case w < 65: // bounded repeated leaf
		return schema.RepN(schema.Leaf(g.name(), g.base()), 2+g.r.Intn(3))
	case w < 78: // choice group (choice-distribution candidate)
		return g.choiceGroup(depth)
	case w < 88 && depth < 2: // nested single-valued complex element
		return g.complexElem(depth + 1)
	case w < 96 && depth < 2: // nested repeated complex element
		return schema.Rep(g.complexElem(depth + 1))
	case depth < 2: // optional complex element
		return schema.Opt(g.complexElem(depth + 1))
	default:
		return schema.Opt(schema.Leaf(g.name(), g.base()))
	}
}

// choiceGroup builds a 2-3 branch choice; branches are leaves, with an
// occasional complex-element branch at shallow depth.
func (g *schemaGen) choiceGroup(depth int) *schema.Node {
	n := 2 + g.r.Intn(2)
	branches := make([]*schema.Node, n)
	for i := range branches {
		if depth < 2 && g.r.Intn(10) == 0 {
			branches[i] = g.complexElem(depth + 1)
		} else {
			branches[i] = schema.Leaf(g.name(), g.base())
		}
	}
	return schema.Choice(branches...)
}

// addSharedPair inserts twin leaves with one shared name, base type,
// and TypeName under two distinct top-level elements. When both twins
// are set-valued, hybrid inlining gives them one shared annotation
// (type merge); mixing a set-valued and a single-valued twin exercises
// the DBLP title/title1 outline pattern instead.
func (g *schemaGen) addSharedPair(tops []*schema.Node) {
	i := g.r.Intn(len(tops))
	j := g.r.Intn(len(tops) - 1)
	if j >= i {
		j++
	}
	name := g.name()
	typeName := "T" + name
	base := g.base()
	twin := func() *schema.Node { return schema.TypedLeaf(name, base, typeName) }
	appendTo := func(top *schema.Node, n *schema.Node) {
		seq := top.Children[0]
		seq.Children = append(seq.Children, n)
	}
	if g.r.Intn(10) < 6 {
		appendTo(tops[i], schema.Rep(twin()))
		appendTo(tops[j], schema.Rep(twin()))
		return
	}
	appendTo(tops[i], schema.Rep(twin()))
	if g.r.Intn(2) == 0 {
		appendTo(tops[j], twin())
	} else {
		appendTo(tops[j], schema.Opt(twin()))
	}
}
