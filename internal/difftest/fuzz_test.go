package difftest

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xpath"
)

// FuzzDifferential feeds arbitrary seeds to a reduced differential
// trial. Without -fuzz the checked-in corpus under
// testdata/fuzz/FuzzDifferential runs as regular deterministic tests.
func FuzzDifferential(f *testing.F) {
	for _, s := range []int64{0, 1, 2, 105, -7} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := Case{Seed: seed, RootInstances: 5, Steps: 3, Queries: 4, Only: -1, CheckCosts: true, Persist: true, Service: true}
		if _, m := Run(c); m != nil {
			sc, sm := Shrink(c, m)
			t.Fatalf("differential mismatch; replay with DIFFTEST_REPLAY=%q\nshrunk:   %v\noriginal: %v",
				sc.ReplaySpec(), sm, m)
		}
	})
}

// FuzzXPathRoundTrip checks parse(print(q)) == q over generated
// workloads: RandomWorkload already rejects any printer divergence, so
// a reported error here is a printer or parser bug (schemas too small
// to yield a workload are skipped).
func FuzzXPathRoundTrip(f *testing.F) {
	for _, s := range []int64{3, 17, 2026} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		tree := RandomSchema(rand.New(rand.NewSource(mix(seed, 1))))
		_, err := RandomWorkload(tree, rand.New(rand.NewSource(mix(seed, 3))), 4)
		if err == nil {
			return
		}
		if strings.Contains(err.Error(), "could only generate") {
			t.Skip("schema yields too few expressible queries")
		}
		t.Fatal(err)
	})
}

// FuzzXPathParse checks that any string the parser accepts prints to a
// fixed point: print(parse(s)) must itself parse, and print again to
// the same string.
func FuzzXPathParse(f *testing.F) {
	for _, s := range []string{
		"//movie",
		"/dblp/article[author=\"Jones\"]/(title|year)",
		"//a/b[c/d>=2.5]",
		"//x[y!=-3]/(p/q|r)",
		"/a/b/c",
		"//t['it''s']",
		"//n[v<\"s\"]/(@id)",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := xpath.Parse(s)
		if err != nil {
			t.Skip()
		}
		printed := q.String()
		q2, err := xpath.Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of accepted input %q does not parse: %v", printed, s, err)
		}
		if again := q2.String(); again != printed {
			t.Fatalf("printer not a fixed point: %q -> %q -> %q", s, printed, again)
		}
	})
}
