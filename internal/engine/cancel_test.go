package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/xmlgen"
)

// cancelFixture builds a database big enough that one execution spans
// many driver batches, so a cancel fired shortly after Execute starts
// reliably lands mid-scan or mid-join.
func cancelFixture(t *testing.T) (*Built, []*optimizer.Plan) {
	t.Helper()
	doc := xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: 4000, Seed: 9})
	return buildPlans(t, schema.Movie(), doc, movieQueries, nil)
}

// TestCancelBeforeExecute pins the fast-path contract: an already
// cancelled or already expired context fails Execute immediately with
// the context's error and never touches the executor.
func TestCancelBeforeExecute(t *testing.T) {
	built, plans := cancelFixture(t)
	pp, err := built.Prepared(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	for name, ctx := range map[string]context.Context{"cancelled": cancelled, "deadline": expired} {
		wantErr := context.Canceled
		if name == "deadline" {
			wantErr = context.DeadlineExceeded
		}
		for _, wk := range []int{1, 4} {
			pp.Workers = wk
			if _, err := pp.ExecuteContext(ctx); !errors.Is(err, wantErr) {
				t.Errorf("%s workers=%d: err = %v, want %v", name, wk, err, wantErr)
			}
		}
		pp.Workers = 0
		// The top-level helper threads ctx through prepare too.
		if _, err := ExecuteContext(ctx, built, plans[0]); !errors.Is(err, wantErr) {
			t.Errorf("%s ExecuteContext: err = %v, want %v", name, err, wantErr)
		}
	}
}

// TestCancelPreparePoisonsNothing: a context cancelled before
// PreparedContext reserves a cache entry must leave the prepared cache
// empty, and a later un-cancelled call must compile cleanly.
func TestCancelPreparePoisonsNothing(t *testing.T) {
	doc := xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: 50, Seed: 10})
	built, plans := buildPlans(t, schema.Movie(), doc, movieQueries[:1], nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := built.PreparedContext(ctx, plans[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("PreparedContext on cancelled ctx: err = %v", err)
	}
	if n := built.CachedStructures()["prepared"]; n != 0 {
		t.Fatalf("cancelled prepare left %d cache entries, want 0", n)
	}
	if _, err := built.Prepared(plans[0]); err != nil {
		t.Fatalf("prepare after cancelled attempt: %v", err)
	}
	if n := built.CachedStructures()["prepared"]; n != 1 {
		t.Fatalf("prepared cache = %d entries, want 1", n)
	}
}

// pollCancelCtx is a context that cancels itself on the Nth Done()
// call. The executor calls Done() once per runRange (branch pipeline or
// morsel), so triggering on that call deterministically cancels while
// the execution is in flight — between a pipeline's start and its first
// per-batch cancellation poll — on any hardware. The timing-based
// predecessor of this hook (a goroutine sleeping a few dozen
// microseconds before cancelling) stopped landing once the columnar
// kernels pushed whole executions under the Go scheduler's ~10ms async
// preemption quantum: on a single-core runner the cancel goroutine
// never got the CPU until the execution had already finished.
type pollCancelCtx struct {
	context.Context
	cancel context.CancelFunc
	calls  int64
	after  int64
}

func newPollCancelCtx(after int64) *pollCancelCtx {
	ctx, cancel := context.WithCancel(context.Background())
	return &pollCancelCtx{Context: ctx, cancel: cancel, after: after}
}

func (c *pollCancelCtx) Done() <-chan struct{} {
	if atomic.AddInt64(&c.calls, 1) >= c.after {
		c.cancel()
	}
	return c.Context.Done()
}

// TestCancelMidExecution cancels executions from within — the context
// trips on the executor's own first cancellation-poll setup, mid-scan
// or mid-join on a 4000-movie fixture — and asserts the prompt-return
// contract: the call comes back with context.Canceled well before the
// work could have finished, and the very next Execute on the same
// PreparedPlan succeeds bit-identically with warm caches (no
// recompilation).
func TestCancelMidExecution(t *testing.T) {
	built, plans := cancelFixture(t)
	for _, wk := range []int{1, 4} {
		interrupted := false
		for pi, plan := range plans {
			want, err := ExecuteReference(built, plan)
			if err != nil {
				t.Fatalf("plan %d: reference: %v", pi, err)
			}
			pp, err := built.Prepared(plan)
			if err != nil {
				t.Fatalf("plan %d: prepare: %v", pi, err)
			}
			pp.Workers = wk
			missesBefore := built.CacheCounters()["prepared.misses"]
			// Trip the cancel on successively later polls until the plan
			// runs out of pipelines; the first poll always lands.
			for after := int64(1); after <= 4; after++ {
				ctx := newPollCancelCtx(after)
				start := time.Now()
				_, err := pp.ExecuteContext(ctx)
				took := time.Since(start)
				ctx.cancel()
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("plan %d workers %d: err = %v, want context.Canceled", pi, wk, err)
					}
					interrupted = true
					// Prompt return: far under a second even on a loaded box.
					if took > time.Second {
						t.Errorf("plan %d workers %d: cancelled call took %v", pi, wk, took)
					}
				}
			}
			// Warm re-execution after cancellations: bit-identical, no new
			// plan compilation.
			got, err := pp.ExecuteContext(context.Background())
			if err != nil {
				t.Fatalf("plan %d workers %d: execute after cancel: %v", pi, wk, err)
			}
			requireIdentical(t, "after-cancel", got, want)
			if after := built.CacheCounters()["prepared.misses"]; after != missesBefore {
				t.Errorf("plan %d workers %d: prepared.misses grew %d -> %d after cancellations",
					pi, wk, missesBefore, after)
			}
			pp.Workers = 0
		}
		if !interrupted {
			t.Errorf("workers=%d: no cancel landed mid-execution in any attempt", wk)
		}
	}
}

// TestCancelLeaksNoGoroutines runs a burst of cancelled parallel
// executions and checks the goroutine count settles back to where it
// started: morsel workers must exit on cancellation, not park forever.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	built, plans := cancelFixture(t)
	pp, err := built.Prepared(plans[0])
	if err != nil {
		t.Fatal(err)
	}
	pp.Workers = 4
	defer func() { pp.Workers = 0 }()
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		_, _ = pp.ExecuteContext(ctx)
		cancel()
	}
	// Workers exit asynchronously after Wait; give the runtime a moment
	// to reap them before comparing counts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled executions", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
