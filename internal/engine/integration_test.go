package engine

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// normalizeSQL groups SQL output rows by the ID column and renders each
// group as a sorted multiset of name=value strings, dropping NULLs and
// normalizing split columns (author__2 -> author).
func normalizeSQL(res *Result) []string {
	idIdx := -1
	for i, c := range res.Cols {
		if c == "ID" {
			idIdx = i
		}
	}
	groups := make(map[string][]string)
	var order []string
	for _, row := range res.Rows {
		id := row[idIdx].String()
		if _, ok := groups[id]; !ok {
			groups[id] = []string{}
			order = append(order, id)
		}
		for i, v := range row {
			if i == idIdx || v.Null {
				continue
			}
			name := res.Cols[i]
			if k := strings.Index(name, "__"); k >= 0 {
				name = name[:k]
			}
			groups[id] = append(groups[id], name+"="+v.String())
		}
	}
	out := make([]string, 0, len(order))
	for _, id := range order {
		g := groups[id]
		sort.Strings(g)
		out = append(out, strings.Join(g, ";"))
	}
	return out
}

// normalizeGold renders evaluator result groups the same way.
func normalizeGold(groups []xmlgen.ResultGroup, proj []xpath.Path, bare []string) []string {
	var out []string
	for _, g := range groups {
		var items []string
		for i, vals := range g.Values {
			name := ""
			if len(proj) > 0 {
				name = strings.Join(proj[i], "_")
			} else if i < len(bare) {
				name = bare[i]
			}
			for _, v := range vals {
				items = append(items, name+"="+v.String())
			}
		}
		sort.Strings(items)
		out = append(out, strings.Join(items, ";"))
	}
	return out
}

// runPipeline shreds docs under the mapping, translates, plans with the
// config, executes, and compares against the document evaluator.
func runPipeline(t *testing.T, tree *schema.Tree, baseTree *schema.Tree, doc *xmlgen.Doc,
	queries []string, cfg *physical.Config) {
	t.Helper()
	m, err := shred.Compile(tree)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatalf("Shred: %v", err)
	}
	if cfg == nil {
		cfg = &physical.Config{}
	}
	built, err := Build(db, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	prov := stats.FromDatabase(db)
	opt := optimizer.New(prov)
	for _, qs := range queries {
		q := xpath.MustParse(qs)
		sql, err := translate.Translate(m, q)
		if err != nil {
			t.Fatalf("%s: translate: %v", qs, err)
		}
		plan, err := opt.PlanQuery(sql, cfg)
		if err != nil {
			t.Fatalf("%s: plan: %v\nSQL:\n%s", qs, err, sql.SQL())
		}
		res, err := Execute(built, plan)
		if err != nil {
			t.Fatalf("%s: execute: %v\nSQL:\n%s", qs, err, sql.SQL())
		}
		gold, err := xmlgen.Evaluate(baseTree, doc, q)
		if err != nil {
			t.Fatalf("%s: evaluate: %v", qs, err)
		}
		got := normalizeSQL(res)
		bare := bareNames(tree, q)
		want := normalizeGold(gold, q.Proj, bare)
		// The evaluator emits a group even when all projections are
		// empty; SQL prunes all-NULL rows. Drop empty groups on both
		// sides before comparing.
		got = dropEmpty(got)
		want = dropEmpty(want)
		if len(got) != len(want) {
			t.Errorf("%s: got %d groups, want %d\nSQL:\n%s", qs, len(got), len(want), sql.SQL())
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: group %d differs\n got: %s\nwant: %s\nSQL:\n%s", qs, i, got[i], want[i], sql.SQL())
				break
			}
		}
	}
}

func dropEmpty(in []string) []string {
	var out []string
	for _, s := range in {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// bareNames reconstructs the implicit projection names of a bare
// context query for the gold normalization.
func bareNames(tree *schema.Tree, q *xpath.Query) []string {
	if len(q.Proj) > 0 {
		return nil
	}
	ctxs := resolveCtx(tree, q)
	if len(ctxs) == 0 {
		return nil
	}
	ctx := ctxs[0]
	if ctx.IsLeaf() {
		return []string{ctx.Name}
	}
	var out []string
	for _, c := range ctx.ElementChildren() {
		if c.IsLeaf() && !c.IsSetValued() {
			out = append(out, c.Name)
		}
	}
	return out
}

func resolveCtx(tree *schema.Tree, q *xpath.Query) []*schema.Node {
	name := q.ContextName()
	return tree.ElementsNamed(name)
}

var movieQueries = []string{
	`//movie[year >= 2000]/(title | box_office)`,
	`//movie[title = "Movie Title 000042"]/(aka_title | avg_rating)`,
	`//movie/year`,
	`//movie[genre = "genre-03"]/(title | year | actor)`,
	`//movie[year = 1984]/(title | seasons | director)`,
	`//movie[actor = "Bob Author-00017"]/title`,
	`//movie[country = "country-07"]/(avg_rating | language | runtime)`,
	`//movie/(title | aka_title)`,
}

var dblpQueries = []string{
	`/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`,
	`/dblp/inproceedings[year = 2000]/(title | booktitle | pages)`,
	`//inproceedings[year >= 1999]/(title | author | cite)`,
	`//book/(title | publisher | author)`,
	`//book[publisher = "publisher-03"]/(title | price)`,
	`//inproceedings[author = "Fatima Author-00005"]/title`,
	`//inproceedings/ee`,
}

func TestPipelineMovieHybrid(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 300, Seed: 21})
	runPipeline(t, schema.Movie(), base, doc, movieQueries, nil)
}

func TestPipelineDBLPHybrid(t *testing.T) {
	base := schema.DBLP()
	doc := xmlgen.GenerateDBLP(base, xmlgen.DBLPOptions{Inproceedings: 300, Books: 40, Seed: 21})
	runPipeline(t, schema.DBLP(), base, doc, dblpQueries, nil)
}

func TestPipelineMovieFullySplit(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 200, Seed: 22})
	tree := schema.Movie()
	schema.ApplyFullySplit(tree)
	runPipeline(t, tree, base, doc, []string{
		`//movie/year`,
		`//movie[year >= 2000]/title`,
		`//movie/(title | aka_title)`,
	}, nil)
}

func TestPipelineMovieChoiceDistribution(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 300, Seed: 23})
	tree := schema.Movie()
	movie := tree.ElementsNamed("movie")[0]
	choice := tree.ElementsNamed("box_office")[0].UnderChoice()
	movie.Distributions = []schema.Distribution{{Choice: choice.ID}}
	runPipeline(t, tree, base, doc, movieQueries, nil)
}

func TestPipelineMovieImplicitUnion(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 300, Seed: 24})
	tree := schema.Movie()
	movie := tree.ElementsNamed("movie")[0]
	rating := tree.ElementsNamed("avg_rating")[0]
	lang := tree.ElementsNamed("language")[0]
	movie.Distributions = []schema.Distribution{{Optionals: []int{rating.ID, lang.ID}}}
	runPipeline(t, tree, base, doc, movieQueries, nil)
}

func TestPipelineDBLPRepetitionSplit(t *testing.T) {
	base := schema.DBLP()
	doc := xmlgen.GenerateDBLP(base, xmlgen.DBLPOptions{Inproceedings: 300, Books: 40, Seed: 25})
	tree := schema.DBLP()
	for _, n := range tree.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			n.SplitCount = 3
		}
	}
	runPipeline(t, tree, base, doc, dblpQueries, nil)
}

func TestPipelineDBLPTypeSplit(t *testing.T) {
	base := schema.DBLP()
	doc := xmlgen.GenerateDBLP(base, xmlgen.DBLPOptions{Inproceedings: 250, Books: 50, Seed: 26})
	tree := schema.DBLP()
	for _, n := range tree.ElementsNamed("author") {
		if n.ElementParent().Name == "book" {
			n.Annotation = "book_author"
		} else {
			n.Annotation = "inproc_author"
		}
	}
	runPipeline(t, tree, base, doc, dblpQueries, nil)
}

func TestPipelineWithIndexes(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 300, Seed: 27})
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "ix_movie_year", Table: "movie", Key: []string{"year"},
		Include: []string{"ID", "title", "box_office"}})
	cfg.AddIndex(&physical.Index{Name: "ix_aka_pid", Table: "aka_title", Key: []string{"PID"},
		Include: []string{"aka_title"}})
	cfg.AddIndex(&physical.Index{Name: "ix_actor_pid", Table: "actor", Key: []string{"PID"}})
	cfg.AddIndex(&physical.Index{Name: "ix_movie_genre", Table: "movie", Key: []string{"genre"}})
	runPipeline(t, schema.Movie(), base, doc, movieQueries, cfg)
}

func TestPipelineWithView(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 300, Seed: 28})
	cfg := &physical.Config{}
	cfg.AddView(&physical.View{Name: "v_movie_actor", Outer: "movie", Inner: "actor",
		OuterCols: []string{"ID", "year", "genre", "title"}, InnerCols: []string{"actor"}})
	runPipeline(t, schema.Movie(), base, doc, []string{
		`//movie[genre = "genre-03"]/(title | year | actor)`,
		`//movie[year >= 2000]/(title | box_office)`,
	}, cfg)
}

func TestPipelineWithVerticalPartition(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 300, Seed: 29})
	cfg := &physical.Config{}
	cfg.AddPartition(&physical.VPartition{Table: "movie", Groups: [][]string{
		{"title", "year", "box_office", "seasons"},
		{"avg_rating", "genre", "country", "language", "runtime"},
	}})
	runPipeline(t, schema.Movie(), base, doc, movieQueries, cfg)
}

func TestPipelineSplitSelection(t *testing.T) {
	// Selection on a repetition-split element exercises PredOrExists.
	base := schema.DBLP()
	doc := xmlgen.GenerateDBLP(base, xmlgen.DBLPOptions{Inproceedings: 300, Books: 30, Seed: 30})
	tree := schema.DBLP()
	for _, n := range tree.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			n.SplitCount = 2
		}
	}
	runPipeline(t, tree, base, doc, []string{
		`//inproceedings[author = "Fatima Author-00005"]/(title | year)`,
	}, nil)
}

func TestPipelineCombinedTransformations(t *testing.T) {
	// Distribution + repetition split + type split together.
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 300, Seed: 31})
	tree := schema.Movie()
	movie := tree.ElementsNamed("movie")[0]
	choice := tree.ElementsNamed("box_office")[0].UnderChoice()
	rating := tree.ElementsNamed("avg_rating")[0]
	movie.Distributions = []schema.Distribution{
		{Choice: choice.ID},
		{Optionals: []int{rating.ID}},
	}
	for _, n := range tree.ElementsNamed("aka_title") {
		n.SplitCount = 2
	}
	runPipeline(t, tree, base, doc, movieQueries, nil)
}

// Sanity checks over the physical layer itself.

func TestIndexSeekMatchesFilter(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 500, Seed: 33})
	m, _ := shred.Compile(schema.Movie())
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	idx := &physical.Index{Name: "ix", Table: "movie", Key: []string{"year"}}
	cfg := &physical.Config{Indexes: []*physical.Index{idx}}
	built, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bi := built.Index(idx)
	mt := db.Table("movie")
	yi := mt.ColIndex("year")
	for _, op := range []opKind{opEq, opLt, opLe, opGt, opGe} {
		for _, year := range []int64{1950, 1984, 2004, 1900, 2050} {
			got := len(bi.seekRange(op, rel.Int(year)))
			want := 0
			for _, row := range mt.Rows() {
				if row[yi].Null {
					continue
				}
				cmp := row[yi].Compare(rel.Int(year))
				match := false
				switch op {
				case opEq:
					match = cmp == 0
				case opLt:
					match = cmp < 0
				case opLe:
					match = cmp <= 0
				case opGt:
					match = cmp > 0
				case opGe:
					match = cmp >= 0
				}
				if match {
					want++
				}
			}
			if got != want {
				t.Fatalf("seekRange(op=%d, %d) = %d rows, want %d", op, year, got, want)
			}
		}
	}
}

func TestViewMaterialization(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 100, Seed: 34})
	m, _ := shred.Compile(schema.Movie())
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	v := &physical.View{Name: "v", Outer: "movie", Inner: "actor",
		OuterCols: []string{"ID", "year"}, InnerCols: []string{"actor"}}
	built, err := Build(db, &physical.Config{Views: []*physical.View{v}})
	if err != nil {
		t.Fatal(err)
	}
	vt := built.ViewTable("v")
	if vt.RowCount() != db.Table("actor").RowCount() {
		t.Errorf("view rows = %d, want %d (one per actor)", vt.RowCount(), db.Table("actor").RowCount())
	}
	if vt.ColIndex("movie__year") < 0 || vt.ColIndex("actor__actor") < 0 {
		t.Errorf("view column naming wrong: %v", vt.Columns)
	}
}

func TestPartitionAlignment(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 100, Seed: 35})
	m, _ := shred.Compile(schema.Movie())
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	vp := &physical.VPartition{Table: "movie", Groups: [][]string{{"title"}, {"year", "genre"}}}
	built, err := Build(db, &physical.Config{Partitions: []*physical.VPartition{vp}})
	if err != nil {
		t.Fatal(err)
	}
	g0, g1 := built.PartGroup("movie", 0), built.PartGroup("movie", 1)
	mt := db.Table("movie")
	if g0.RowCount() != mt.RowCount() || g1.RowCount() != mt.RowCount() {
		t.Fatal("group row counts differ from base")
	}
	mrows, g0rows, g1rows := mt.Rows(), g0.Rows(), g1.Rows()
	for i := range mrows {
		if g0rows[i][0].I != g1rows[i][0].I || g0rows[i][0].I != mrows[i][mt.ColIndex("ID")].I {
			t.Fatalf("row %d misaligned across groups", i)
		}
	}
}

// TestOptimizerPrefersCoveringIndex checks the central cost-model
// ordering of the intro example: with a selective predicate and a
// covering index, the seek must beat the scan.
func TestOptimizerPrefersCoveringIndex(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 2000, Seed: 36})
	m, _ := shred.Compile(schema.Movie())
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	prov := stats.FromDatabase(db)
	opt := optimizer.New(prov)
	q := xpath.MustParse(`//movie[title = "Movie Title 000042"]/(year | genre)`)
	sql, err := translate.Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	noIdx, err := opt.Cost(sql, &physical.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "cov", Table: "movie", Key: []string{"title"},
		Include: []string{"ID", "year", "genre"}})
	withIdx, err := opt.Cost(sql, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withIdx >= noIdx {
		t.Errorf("covering index did not reduce cost: %f >= %f", withIdx, noIdx)
	}
	if withIdx > noIdx/5 {
		t.Errorf("covering index speedup too small: %f vs %f", withIdx, noIdx)
	}
}

func TestOptimizerCallsCounted(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 50, Seed: 37})
	m, _ := shred.Compile(schema.Movie())
	db, _ := shred.Shred(m, doc)
	opt := optimizer.New(stats.FromDatabase(db))
	q, _ := translate.Translate(m, xpath.MustParse(`//movie/year`))
	for i := 0; i < 3; i++ {
		if _, err := opt.Cost(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if opt.Calls != 3 {
		t.Errorf("Calls = %d, want 3", opt.Calls)
	}
}

func fmtRows(res *Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		for i, v := range r {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}
