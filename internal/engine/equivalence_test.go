package engine

import (
	"testing"

	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// buildPlans shreds the doc under the tree's mapping and plans every
// query under the config, returning the built database and the plans.
func buildPlans(t *testing.T, tree *schema.Tree, doc *xmlgen.Doc,
	queries []string, cfg *physical.Config) (*Built, []*optimizer.Plan) {
	t.Helper()
	m, err := shred.Compile(tree)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatalf("Shred: %v", err)
	}
	if cfg == nil {
		cfg = &physical.Config{}
	}
	built, err := Build(db, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	opt := optimizer.New(stats.FromDatabase(db))
	var plans []*optimizer.Plan
	for _, qs := range queries {
		sql, err := translate.Translate(m, xpath.MustParse(qs))
		if err != nil {
			t.Fatalf("%s: translate: %v", qs, err)
		}
		plan, err := opt.PlanQuery(sql, cfg)
		if err != nil {
			t.Fatalf("%s: plan: %v", qs, err)
		}
		plans = append(plans, plan)
	}
	return built, plans
}

// requireIdentical asserts two executor results are bit-identical:
// column names, rows in order, every value, and stats.
func requireIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: got %d cols, want %d", label, len(got.Cols), len(want.Cols))
	}
	for i := range got.Cols {
		if got.Cols[i] != want.Cols[i] {
			t.Fatalf("%s: col %d = %q, want %q", label, i, got.Cols[i], want.Cols[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: got %d rows, want %d\ngot:\n%swant:\n%s",
			label, len(got.Rows), len(want.Rows), fmtRows(got), fmtRows(want))
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("%s: row %d has %d values, want %d", label, i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range got.Rows[i] {
			// BitEqual, not struct equality: NaN must equal NaN and
			// -0.0 must differ from +0.0 for bit-identity to hold.
			if !got.Rows[i][j].BitEqual(want.Rows[i][j]) {
				t.Fatalf("%s: row %d col %d = %v, want %v\ngot:\n%swant:\n%s",
					label, i, j, got.Rows[i][j], want.Rows[i][j], fmtRows(got), fmtRows(want))
			}
		}
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
}

// equivalenceFixtures covers every operator the executors implement:
// heap scans, index seeks, INL and hash joins (base tables and views),
// partition-zip drivers, multi-branch unions, and EXISTS predicates
// from split selections.
func equivalenceFixtures(t *testing.T) map[string]struct {
	built *Built
	plans []*optimizer.Plan
} {
	t.Helper()
	out := make(map[string]struct {
		built *Built
		plans []*optimizer.Plan
	})
	add := func(name string, b *Built, ps []*optimizer.Plan) {
		out[name] = struct {
			built *Built
			plans []*optimizer.Plan
		}{b, ps}
	}

	movieDoc := xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: 300, Seed: 21})
	b, ps := buildPlans(t, schema.Movie(), movieDoc, movieQueries, nil)
	add("movie-hybrid", b, ps)

	idxCfg := &physical.Config{}
	idxCfg.AddIndex(&physical.Index{Name: "ix_movie_year", Table: "movie", Key: []string{"year"},
		Include: []string{"ID", "title", "box_office"}})
	idxCfg.AddIndex(&physical.Index{Name: "ix_actor_pid", Table: "actor", Key: []string{"PID"}})
	idxCfg.AddIndex(&physical.Index{Name: "ix_movie_genre", Table: "movie", Key: []string{"genre"}})
	b, ps = buildPlans(t, schema.Movie(), movieDoc, movieQueries, idxCfg)
	add("movie-indexes", b, ps)

	viewCfg := &physical.Config{}
	viewCfg.AddView(&physical.View{Name: "v_movie_actor", Outer: "movie", Inner: "actor",
		OuterCols: []string{"ID", "year", "genre", "title"}, InnerCols: []string{"actor"}})
	b, ps = buildPlans(t, schema.Movie(), movieDoc, []string{
		`//movie[genre = "genre-03"]/(title | year | actor)`,
		`//movie[year >= 2000]/(title | box_office)`,
	}, viewCfg)
	add("movie-view", b, ps)

	partCfg := &physical.Config{}
	partCfg.AddPartition(&physical.VPartition{Table: "movie", Groups: [][]string{
		{"title", "year", "box_office", "seasons"},
		{"avg_rating", "genre", "country", "language", "runtime"},
	}})
	b, ps = buildPlans(t, schema.Movie(), movieDoc, movieQueries, partCfg)
	add("movie-partition", b, ps)

	dblpDoc := xmlgen.GenerateDBLP(schema.DBLP(), xmlgen.DBLPOptions{Inproceedings: 300, Books: 40, Seed: 21})
	b, ps = buildPlans(t, schema.DBLP(), dblpDoc, dblpQueries, nil)
	add("dblp-hybrid", b, ps)

	splitTree := schema.DBLP()
	for _, n := range splitTree.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			n.SplitCount = 2
		}
	}
	b, ps = buildPlans(t, splitTree, dblpDoc, []string{
		`//inproceedings[author = "Fatima Author-00005"]/(title | year)`,
	}, nil)
	add("dblp-split-exists", b, ps)

	return out
}

// TestBatchExecutorMatchesReference is the executor differential over
// the integration fixtures: the pipelined batch executor must return
// bit-identical results — rows, order, values, and stats — to the
// row-at-a-time reference path, on the first (cold-cache) execution and
// on repeated warm-cache executions.
func TestBatchExecutorMatchesReference(t *testing.T) {
	for name, fx := range equivalenceFixtures(t) {
		t.Run(name, func(t *testing.T) {
			for pi, plan := range fx.plans {
				want, err := ExecuteReference(fx.built, plan)
				if err != nil {
					t.Fatalf("plan %d: reference: %v", pi, err)
				}
				for run := 0; run < 3; run++ {
					got, err := Execute(fx.built, plan)
					if err != nil {
						t.Fatalf("plan %d run %d: %v", pi, run, err)
					}
					requireIdentical(t, name, got, want)
				}
			}
		})
	}
}

// TestParallelBranchesDeterministic executes prepared plans with branch
// parallelism forced above one worker and asserts results stay
// bit-identical to the sequential reference across repeated runs. Run
// with -race this also checks the worker pool for data races.
func TestParallelBranchesDeterministic(t *testing.T) {
	for name, fx := range equivalenceFixtures(t) {
		t.Run(name, func(t *testing.T) {
			for pi, plan := range fx.plans {
				want, err := ExecuteReference(fx.built, plan)
				if err != nil {
					t.Fatalf("plan %d: reference: %v", pi, err)
				}
				pp, err := fx.built.Prepared(plan)
				if err != nil {
					t.Fatalf("plan %d: prepare: %v", pi, err)
				}
				if again, _ := fx.built.Prepared(plan); again != pp {
					t.Fatalf("plan %d: Prepared not memoized", pi)
				}
				for _, par := range []int{1, 4} {
					pp.Parallelism = par
					for run := 0; run < 3; run++ {
						got, err := pp.Execute()
						if err != nil {
							t.Fatalf("plan %d par %d run %d: %v", pi, par, run, err)
						}
						requireIdentical(t, name, got, want)
					}
				}
				pp.Parallelism = 0
			}
		})
	}
}

// TestStructureCachesPopulate checks the plan-lifetime caches actually
// fill: after executing join-bearing plans, the Built holds cached
// join tables and prepared plans.
func TestStructureCachesPopulate(t *testing.T) {
	movieDoc := xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: 100, Seed: 40})
	built, plans := buildPlans(t, schema.Movie(), movieDoc, []string{
		`//movie[genre = "genre-03"]/(title | year | actor)`,
		`//movie/(title | aka_title)`,
	}, nil)
	for _, plan := range plans {
		if _, err := Execute(built, plan); err != nil {
			t.Fatal(err)
		}
	}
	cs := built.CachedStructures()
	if cs["prepared"] != len(plans) {
		t.Errorf("prepared cache = %d, want %d", cs["prepared"], len(plans))
	}
	if cs["joinTables"] == 0 {
		t.Errorf("no cached join tables after join-bearing plans: %v (keys %v)", cs, built.CacheKeys())
	}
	// Re-executing must not grow the caches.
	for _, plan := range plans {
		if _, err := Execute(built, plan); err != nil {
			t.Fatal(err)
		}
	}
	if again := built.CachedStructures(); again["joinTables"] != cs["joinTables"] || again["prepared"] != cs["prepared"] {
		t.Errorf("caches grew on re-execution: %v -> %v", cs, again)
	}
}
