// Package engine materializes physical configurations over loaded
// relational data (indexes, materialized join views, vertical
// partitions) and executes the optimizer's plans for real — the
// "execution time" numbers of the evaluation come from this engine.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/rel"
)

// Built holds materialized physical structures over a database.
type Built struct {
	// DB is the underlying data.
	DB *rel.Database
	// Config is the configuration that was built.
	Config *physical.Config
	// StructBytes is the total size of materialized structures.
	StructBytes int64

	indexes map[string]*builtIndex // by index ID
	views   map[string]*rel.Table
	parts   map[string][]*rel.Table // base table -> group tables
	caches  *builtCaches            // plan-lifetime execution structures
	sources map[string]ScanSource   // driver-stage chunk sources by table

	// gens snapshots every reachable table's mutation generation at
	// Build time; the structure caches refuse to serve after any table
	// moves past its snapshot (see checkGenerations).
	gens map[*rel.Table]int64

	// obsTracer and obsReg are the optional observability sinks set by
	// AttachObs; both are nil-safe no-ops when unset.
	obsTracer *obs.Tracer
	obsReg    *obs.Registry
}

// AttachObs wires a tracer and metrics registry into the executor:
// structure builds, plan compiles, and executions emit spans on tr,
// and cache/execution traffic mirrors into reg. Either may be nil
// (disabled). Attach before executing; spans and counters only cover
// activity after the call.
func (b *Built) AttachObs(tr *obs.Tracer, reg *obs.Registry) {
	b.obsTracer = tr
	b.obsReg = reg
}

// snapshotGenerations records the Build-time generation of every table
// the executor can read: base tables, materialized views, and
// partition group tables.
func (b *Built) snapshotGenerations() {
	b.gens = make(map[*rel.Table]int64)
	for _, t := range b.DB.Tables() {
		b.gens[t] = t.Generation()
	}
	for _, vt := range b.views {
		b.gens[vt] = vt.Generation()
	}
	for _, gts := range b.parts {
		for _, gt := range gts {
			b.gens[gt] = gt.Generation()
		}
	}
}

// checkGenerations fails if any table mutated after Build. The
// plan-lifetime caches (hash tables, EXISTS probe sets, partition
// zips, prepared plans) are derived from Build-time rows; serving them
// over mutated data would silently return stale results, so the stale
// state is an error, not a refresh.
func (b *Built) checkGenerations() error {
	for t, g := range b.gens {
		if cur := t.Generation(); cur != g {
			return fmt.Errorf("engine: table %s mutated after Build (generation %d, snapshot %d); cached execution structures would be stale — rebuild the configuration", t.Name, cur, g)
		}
	}
	return nil
}

// Build materializes every structure in the configuration.
func Build(db *rel.Database, cfg *physical.Config) (*Built, error) {
	if cfg == nil {
		cfg = &physical.Config{}
	}
	b := &Built{
		DB:      db,
		Config:  cfg,
		indexes: make(map[string]*builtIndex),
		views:   make(map[string]*rel.Table),
		parts:   make(map[string][]*rel.Table),
		caches:  newBuiltCaches(),
	}
	for _, idx := range cfg.Indexes {
		bi, err := buildIndex(db, idx)
		if err != nil {
			return nil, err
		}
		b.indexes[idx.ID()] = bi
		b.StructBytes += bi.bytes
	}
	for _, v := range cfg.Views {
		vt, err := buildView(db, v)
		if err != nil {
			return nil, err
		}
		b.views[v.Name] = vt
		b.StructBytes += vt.Bytes()
	}
	for _, vp := range cfg.Partitions {
		gts, err := buildPartition(db, vp)
		if err != nil {
			return nil, err
		}
		b.parts[vp.Table] = gts
		for _, gt := range gts {
			b.StructBytes += 16 * int64(gt.RowCount()) // replicated keys
		}
	}
	b.snapshotGenerations()
	return b, nil
}

// Index returns the built index for a descriptor, or nil.
func (b *Built) Index(idx *physical.Index) *builtIndex {
	return b.indexes[idx.ID()]
}

// ViewTable returns the materialized view table, or nil.
func (b *Built) ViewTable(name string) *rel.Table { return b.views[name] }

// PartGroup returns one partition group table.
func (b *Built) PartGroup(table string, g int) *rel.Table {
	gts := b.parts[table]
	if g < 0 || g >= len(gts) {
		return nil
	}
	return gts[g]
}

// builtIndex is a sorted permutation of a table's rows by key columns.
type builtIndex struct {
	idx    *physical.Index
	table  *rel.Table
	keyIdx []int
	order  []int
	bytes  int64
	// leadKeys materializes the leading key in index order, so the
	// binary searches of per-execution seeks read a flat vector instead
	// of chasing a row pointer per probe step.
	leadKeys []rel.Value
	// firstNonNull is the first position whose leading key is non-NULL.
	firstNonNull int
}

func buildIndex(db *rel.Database, idx *physical.Index) (*builtIndex, error) {
	t := db.Table(idx.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: index %s on unknown table %s", idx.Name, idx.Table)
	}
	if err := t.Hydrate(); err != nil {
		return nil, err
	}
	bi := &builtIndex{idx: idx, table: t}
	for _, k := range idx.Key {
		ci := t.ColIndex(k)
		if ci < 0 {
			return nil, fmt.Errorf("engine: index %s references unknown column %s.%s", idx.Name, idx.Table, k)
		}
		bi.keyIdx = append(bi.keyIdx, ci)
	}
	for _, k := range idx.Include {
		if t.ColIndex(k) < 0 {
			return nil, fmt.Errorf("engine: index %s includes unknown column %s.%s", idx.Name, idx.Table, k)
		}
	}
	rows := t.Rows()
	bi.order = make([]int, t.RowCount())
	for i := range bi.order {
		bi.order[i] = i
	}
	sort.SliceStable(bi.order, func(a, c int) bool {
		ra, rc := rows[bi.order[a]], rows[bi.order[c]]
		for _, ki := range bi.keyIdx {
			if cmp := ra[ki].Compare(rc[ki]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	lead := bi.keyIdx[0]
	bi.leadKeys = make([]rel.Value, len(bi.order))
	for i, rid := range bi.order {
		bi.leadKeys[i] = rows[rid][lead]
	}
	bi.firstNonNull = sort.Search(len(bi.order), func(i int) bool {
		return !bi.leadKeys[i].Null
	})
	bi.bytes = 12 * int64(t.RowCount())
	for _, c := range append(append([]string(nil), idx.Key...), idx.Include...) {
		ci := t.ColIndex(c)
		for _, row := range rows {
			bi.bytes += int64(row[ci].Width())
		}
	}
	return bi, nil
}

// lowerBound returns the first position with leading key >= v (among
// non-NULL keys).
func (bi *builtIndex) lowerBound(v rel.Value) int {
	i := sort.Search(len(bi.order)-bi.firstNonNull, func(i int) bool {
		return bi.leadKeys[bi.firstNonNull+i].Compare(v) >= 0
	})
	return bi.firstNonNull + i
}

// upperBound returns the first position with leading key > v.
func (bi *builtIndex) upperBound(v rel.Value) int {
	i := sort.Search(len(bi.order)-bi.firstNonNull, func(i int) bool {
		return bi.leadKeys[bi.firstNonNull+i].Compare(v) > 0
	})
	return bi.firstNonNull + i
}

// seekEqual returns the row ids whose leading key equals v.
func (bi *builtIndex) seekEqual(v rel.Value) []int {
	lo, hi := bi.lowerBound(v), bi.upperBound(v)
	return bi.order[lo:hi]
}

// seekRange returns row ids for "leading key op v"; NULL keys never
// match, and a NULL probe value matches nothing (NULL sorts before all
// keys, so bounding against it would otherwise admit every non-NULL
// row for > and >=).
func (bi *builtIndex) seekRange(op opKind, v rel.Value) []int {
	if v.Null {
		return nil
	}
	n := len(bi.order)
	switch op {
	case opEq:
		return bi.seekEqual(v)
	case opLt:
		return bi.order[bi.firstNonNull:bi.lowerBound(v)]
	case opLe:
		return bi.order[bi.firstNonNull:bi.upperBound(v)]
	case opGt:
		return bi.order[bi.upperBound(v):n]
	case opGe:
		return bi.order[bi.lowerBound(v):n]
	}
	return nil
}

type opKind int

const (
	opEq opKind = iota
	opLt
	opLe
	opGt
	opGe
)

// buildView materializes a parent-child join view: for every inner row
// whose PID matches an outer ID, one row with the carried columns named
// table__col.
func buildView(db *rel.Database, v *physical.View) (*rel.Table, error) {
	outer, inner := db.Table(v.Outer), db.Table(v.Inner)
	if outer == nil || inner == nil {
		return nil, fmt.Errorf("engine: view %s references unknown tables %s/%s", v.Name, v.Outer, v.Inner)
	}
	if err := outer.Hydrate(); err != nil {
		return nil, err
	}
	if err := inner.Hydrate(); err != nil {
		return nil, err
	}
	var cols []rel.Column
	var outerIdx, innerIdx []int
	for _, c := range v.OuterCols {
		ci := outer.ColIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("engine: view %s references unknown column %s.%s", v.Name, v.Outer, c)
		}
		col := outer.Columns[ci]
		col.Name = v.Outer + "__" + c
		cols = append(cols, col)
		outerIdx = append(outerIdx, ci)
	}
	for _, c := range v.InnerCols {
		ci := inner.ColIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("engine: view %s references unknown column %s.%s", v.Name, v.Inner, c)
		}
		col := inner.Columns[ci]
		col.Name = v.Inner + "__" + c
		cols = append(cols, col)
		innerIdx = append(innerIdx, ci)
	}
	vt := rel.NewTable(v.Name, cols)
	byID := make(map[int64][]rel.Value, outer.RowCount())
	oid := outer.ColIndex(rel.IDColumn)
	for _, row := range outer.Rows() {
		byID[row[oid].I] = row
	}
	pid := inner.ColIndex(rel.PIDColumn)
	out := make([]rel.Value, 0, len(cols)) // AppendRow copies, so one scratch row suffices
	for _, irow := range inner.Rows() {
		if irow[pid].Null {
			continue
		}
		orow, ok := byID[irow[pid].I]
		if !ok {
			continue
		}
		out = out[:0]
		for _, ci := range outerIdx {
			out = append(out, orow[ci])
		}
		for _, ci := range innerIdx {
			out = append(out, irow[ci])
		}
		vt.AppendRow(out)
	}
	return vt, nil
}

// buildPartition splits a table vertically; group rows stay aligned
// with the base table's row order and replicate ID and PID.
func buildPartition(db *rel.Database, vp *physical.VPartition) ([]*rel.Table, error) {
	t := db.Table(vp.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: partition of unknown table %s", vp.Table)
	}
	if err := t.Hydrate(); err != nil {
		return nil, err
	}
	var out []*rel.Table
	for gi, group := range vp.Groups {
		cols := []rel.Column{t.Columns[t.ColIndex(rel.IDColumn)], t.Columns[t.ColIndex(rel.PIDColumn)]}
		idxs := []int{t.ColIndex(rel.IDColumn), t.ColIndex(rel.PIDColumn)}
		for _, c := range group {
			ci := t.ColIndex(c)
			if ci < 0 {
				return nil, fmt.Errorf("engine: partition group references unknown column %s.%s", vp.Table, c)
			}
			cols = append(cols, t.Columns[ci])
			idxs = append(idxs, ci)
		}
		gt := rel.NewTable(vp.GroupTable(gi), cols)
		grow := make([]rel.Value, len(idxs)) // AppendRow copies, so one scratch row suffices
		for _, row := range t.Rows() {
			for i, ci := range idxs {
				grow[i] = row[ci]
			}
			gt.AppendRow(grow)
		}
		out = append(out, gt)
	}
	return out, nil
}
