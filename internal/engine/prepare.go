package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/rel"
	"repro/internal/sqlast"
)

// PreparedPlan is the compiled, reusable form of an optimizer plan
// over one Built: a pipelined batch executor per union branch, with
// predicate closures, projection layouts, and probe structures (join
// hash tables, EXISTS sets, partition zips) resolved once at compile
// time against the Built's plan-lifetime caches. Executing a
// PreparedPlan allocates no per-row intermediates: operators pass
// fixed-size rel.Batch blocks with selection vectors, joins write
// combined tuples into pooled batch arenas, and only the projected
// output rows are freshly allocated (in one chunk per batch).
//
// A PreparedPlan is safe for concurrent Execute calls; per-execution
// operator state comes from a pool.
type PreparedPlan struct {
	// Parallelism caps the number of union branches executed
	// concurrently when the morsel pool is off (Workers <= 1); <= 0
	// means GOMAXPROCS. Results are bit-identical at any setting:
	// branches land in fixed slots and merge in plan order.
	Parallelism int

	// Workers sizes the morsel worker pool shared by one Execute call.
	// When > 1, every branch's driver (table scan, index range scan, or
	// partition-group scan) is split into fixed-size morsels dispatched
	// to the pool, so a single wide scan — and the hash-join probes and
	// filters downstream of it — runs on several cores at once. 0 or 1
	// keeps the serial per-branch pipeline (branches still fan out under
	// Parallelism); < 0 means GOMAXPROCS. Every morsel emits into a
	// fixed (branch, morsel) slot and slots merge in plan order, so
	// rows, order, values, and stats are bit-identical at any setting.
	Workers int

	built    *Built
	plan     *optimizer.Plan
	cols     []string
	branches []*preparedBranch
}

// Prepare compiles a plan for the batch executor. All plan-shape
// errors the row-at-a-time executor reported during execution (unknown
// tables, unbuilt indexes, out-of-scope columns, unapplied predicates)
// are reported here instead, once.
func Prepare(b *Built, plan *optimizer.Plan) (*PreparedPlan, error) {
	pp := &PreparedPlan{built: b, plan: plan, cols: plan.Query.OutputColumns()}
	for _, br := range plan.Branches {
		pb, err := prepareBranch(b, br)
		if err != nil {
			return nil, err
		}
		pp.branches = append(pp.branches, pb)
	}
	return pp, nil
}

// Execute runs the prepared plan without cancellation (a background
// context). See ExecuteContext.
func (pp *PreparedPlan) Execute() (*Result, error) {
	return pp.ExecuteContext(context.Background())
}

// ExecuteContext runs the prepared plan. With Workers <= 1 whole union
// branches fan out on a pool bounded by Parallelism; with Workers > 1
// every branch's driver is additionally split into morsels dispatched
// to one shared worker pool (see executeMorsels). Either way each unit
// of work lands in a fixed slot and slots merge in plan order, so
// repeated runs produce identical results at any setting.
//
// ctx cancels the execution: cancellation is polled once per driver
// batch, so a cancelled call returns ctx's error promptly without
// finishing the scan or join it was in. A cancelled execution never
// poisons the Built's single-flight structure caches (structure builds
// always run to completion; see cacheGet) and returns pooled operator
// state for reuse, so a later ExecuteContext on the same PreparedPlan
// succeeds with warm caches.
func (pp *PreparedPlan) ExecuteContext(ctx context.Context) (*Result, error) {
	return pp.ExecuteContextWorkers(ctx, pp.Workers)
}

// ExecuteContextWorkers is ExecuteContext at an explicit worker count,
// leaving the shared Workers field untouched. A PreparedPlan cached on
// a Built is shared by every session that prepares the same plan, so a
// long-lived multi-session server cannot set Workers per request
// without racing other sessions; this entry point carries the count
// through the call instead. Workers semantics match the field: 0 or 1
// is the serial per-branch pipeline, < 0 means GOMAXPROCS, > 1 sizes
// the morsel pool. Results are bit-identical at any count.
func (pp *PreparedPlan) ExecuteContextWorkers(ctx context.Context, workers int) (*Result, error) {
	var tr *obs.Tracer
	var reg *obs.Registry
	if pp.built != nil {
		tr, reg = pp.built.obsTracer, pp.built.obsReg
	}
	if err := ctx.Err(); err != nil {
		reg.Counter("engine.exec.cancellations").Inc()
		return nil, err
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	n := len(pp.branches)
	sp := tr.StartSpan("executor.execute",
		obs.Int("branches", int64(n)), obs.Int("workers", int64(workers)))
	var res *Result
	var err error
	if workers > 1 {
		res, err = pp.executeMorsels(ctx, sp, reg, workers)
	} else {
		res, err = pp.executeBranches(ctx, sp)
	}
	if err == nil {
		err = sortResult(res, pp.plan.Query.OrderBy)
	}
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		sp.End()
		if ctx.Err() != nil {
			reg.Counter("engine.exec.cancellations").Inc()
		}
		return nil, err
	}
	sp.SetAttr(obs.Int("rows_out", int64(len(res.Rows))),
		obs.Int("rows_scanned", res.Stats.RowsScanned),
		obs.Int("rows_sought", res.Stats.RowsSought))
	sp.End()
	reg.Counter("engine.exec.executions").Inc()
	reg.Counter("engine.exec.rows_out").Add(int64(len(res.Rows)))
	reg.Counter("engine.exec.rows_scanned").Add(res.Stats.RowsScanned)
	reg.Counter("engine.exec.rows_sought").Add(res.Stats.RowsSought)
	return res, nil
}

// executeBranches is the branch-parallel execution path (Workers <= 1):
// each branch runs its whole pipeline serially, independent branches
// fan out on a pool bounded by Parallelism, and each branch emits into
// a fixed slot merged in plan order.
func (pp *PreparedPlan) executeBranches(ctx context.Context, sp *obs.Span) (*Result, error) {
	n := len(pp.branches)
	type branchOut struct {
		rows [][]rel.Value
		st   ExecStats
		err  error
	}
	slots := make([]branchOut, n)
	runBranch := func(i int) {
		bs := sp.Child("executor.branch",
			obs.Int("branch", int64(i)),
			obs.Int("operators", int64(len(pp.branches[i].ops))))
		slots[i].rows, slots[i].err = pp.branches[i].run(ctx, &slots[i].st)
		if slots[i].err != nil {
			bs.SetAttr(obs.String("error", slots[i].err.Error()))
		}
		bs.SetAttr(obs.Int("rows", int64(len(slots[i].rows))),
			obs.Int("rows_scanned", slots[i].st.RowsScanned),
			obs.Int("rows_sought", slots[i].st.RowsSought))
		bs.End()
	}
	par := pp.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := range pp.branches {
			runBranch(i)
			if slots[i].err != nil {
				break
			}
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(par)
		for w := 0; w < par; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runBranch(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	res := &Result{Cols: pp.cols}
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		res.Rows = append(res.Rows, slots[i].rows...)
		res.Stats.add(slots[i].st)
	}
	return res, nil
}

// srcKind discriminates driver sources.
type srcKind int

const (
	srcScan srcKind = iota
	srcSeek
	srcZip
	srcChunks
)

// driverSrc is the compiled driving access of a branch.
type driverSrc struct {
	kind    srcKind
	table   *rel.Table
	bi      *builtIndex
	seekOp  opKind
	seekVal rel.Value
	zip     *partZip
	// chunks feeds a srcChunks driver: the scan pulls resident fragments
	// from the source one chunk at a time instead of materializing the
	// table, so peak scan memory follows the source's paging budget.
	chunks ScanSource
	// rows is the materialized row view the pipeline hands downstream
	// operators by reference: the table's generation-cached Rows() for
	// scans and seeks, the zip rows for partition drivers. Resolved at
	// prepare time so execution never takes the materialization lock.
	// srcChunks drivers leave it nil and resolve rows per chunk.
	rows [][]rel.Value
}

// pipeKind discriminates pipeline operators.
type pipeKind int

const (
	pipeFilter pipeKind = iota
	pipeHashJoin
	pipeINLJoin
)

// pipeOp is one compiled pipeline operator.
type pipeOp struct {
	kind pipeKind

	// pred filters rows in place on the selection vector (pipeFilter).
	pred func([]rel.Value) bool

	// Join fields.
	outerPos int
	width    int // combined tuple width after this join
	slot     int // output-batch slot in branchState.joinOut

	// Hash join: cached build side, plus the per-execution scan
	// accounting its inner source incurs (the reference executor
	// re-scans the build side every execution; the batch executor pays
	// the same simulated scan cost and counters but skips the rebuild).
	jt          *joinTable
	scanTable   *rel.Table // table to touch per run (nil for zips/seeks)
	scanCount   int64      // RowsScanned per run
	soughtCount int64      // RowsSought per run (seek-fed build side)

	// INL join.
	bi        *builtIndex
	innerRows [][]rel.Value // generation-cached row view of the inner table
}

// proj is one projection slot.
type proj struct {
	pos  int
	null bool
}

// preparedBranch is one compiled union branch.
type preparedBranch struct {
	src driverSrc
	// kerns are the driver-stage columnar filter kernels: every
	// predicate applied before the first join, compiled against the
	// driver table's column vectors (table scans and index seeks only —
	// partition-zip drivers keep row filters in ops). They run over the
	// selection vector of driver row ids before any row is materialized
	// into a batch, in the same WHERE order the reference executor
	// applies.
	kerns      []colKernel
	ops        []pipeOp
	projs      []proj
	nJoinSlots int
	// chunkPreds are the driver-stage predicates of a srcChunks driver,
	// in WHERE order. They are validated once at Prepare (compiled
	// against the table shell and discarded) and recompiled per chunk at
	// run time — every kernel is bit-equivalent to matchCompare, so
	// per-chunk recompilation cannot change results, and chunk-local
	// structures (string dictionaries) get chunk-local kernels.
	chunkPreds []*sqlast.Pred
	// chunkScope is a driver-table-only scope snapshot for per-chunk
	// kernel compilation (the branch scope keeps growing as joins land).
	chunkScope *scope
	// built backs per-chunk kernel compilation (EXISTS probe-set lookups
	// go through its single-flighted cache).
	built *Built
	// pool recycles per-execution operator state (batch buffers) across
	// executions of this branch.
	pool sync.Pool
}

// branchState is the per-execution operator state: the driver batch,
// the driver selection vector the columnar kernels compact, and one
// output batch per join operator.
type branchState struct {
	in      *rel.Batch
	sel     []int32
	joinOut []*rel.Batch
}

func resolveTable(b *Built, name string) *rel.Table {
	if vt := b.ViewTable(name); vt != nil {
		return vt
	}
	return b.DB.Table(name)
}

func colNames(t *rel.Table) []string {
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	return cols
}

func prepareBranch(b *Built, br *optimizer.Branch) (*preparedBranch, error) {
	pb := &preparedBranch{}
	sc := newScope()
	a := br.Driver
	var cols []string
	if len(a.PartGroups) > 0 {
		z, err := b.partitionZip(a.Table, a.PartGroups)
		if err != nil {
			return nil, err
		}
		pb.src = driverSrc{kind: srcZip, zip: z, rows: z.rows}
		cols = z.cols
	} else {
		t := resolveTable(b, a.Table)
		if t == nil {
			return nil, fmt.Errorf("engine: unknown table %s", a.Table)
		}
		cols = colNames(t)
		if a.Kind == optimizer.AccessSeek {
			bi := b.Index(a.Index)
			if bi == nil {
				return nil, fmt.Errorf("engine: index %s not built", a.Index.Name)
			}
			if a.SeekPred == nil {
				return nil, fmt.Errorf("engine: seek access without predicate on %s", a.Table)
			}
			if err := t.Hydrate(); err != nil {
				return nil, err
			}
			pb.src = driverSrc{kind: srcSeek, table: t, bi: bi,
				seekOp: opFromCmp(a.SeekPred.Op), seekVal: a.SeekPred.Value, rows: t.Rows()}
		} else if src := b.ScanSource(a.Table); src != nil && b.ViewTable(a.Table) == nil {
			if src.RowCount() != t.RowCount() {
				return nil, fmt.Errorf("engine: scan source for %s covers %d rows, table declares %d",
					a.Table, src.RowCount(), t.RowCount())
			}
			pb.built = b
			pb.src = driverSrc{kind: srcChunks, table: t, chunks: src}
			pb.chunkScope = newScope()
			pb.chunkScope.add(a.Table, cols)
		} else {
			if err := t.Hydrate(); err != nil {
				return nil, err
			}
			pb.src = driverSrc{kind: srcScan, table: t, rows: t.Rows()}
		}
	}
	sc.add(a.Table, cols)
	applied := make(map[int]bool)
	// Driver-stage filters over a table source compile to columnar
	// kernels; everything after the first join filters materialized rows.
	if err := pb.appendFilters(b, br, sc, applied, pb.src.table); err != nil {
		return nil, err
	}
	for _, j := range br.Joins {
		if err := pb.appendJoin(b, br, sc, j); err != nil {
			return nil, err
		}
		if err := pb.appendFilters(b, br, sc, applied, nil); err != nil {
			return nil, err
		}
	}
	// Verify every predicate was applied (defensive: plans must cover
	// all conjuncts).
	for i := range br.Sel.Where {
		p := &br.Sel.Where[i]
		if p.Kind == sqlast.PredJoin || applied[i] || p == br.Driver.SeekPred {
			continue
		}
		return nil, fmt.Errorf("engine: predicate %s left unapplied", p)
	}
	for _, it := range br.Sel.Items {
		if it.Col == nil {
			pb.projs = append(pb.projs, proj{null: true})
			continue
		}
		pos, err := sc.pos(*it.Col)
		if err != nil {
			return nil, err
		}
		pb.projs = append(pb.projs, proj{pos: pos})
	}
	pb.initPool()
	return pb, nil
}

// appendFilters compiles every not-yet-applied predicate whose
// referenced tables are in scope, in WHERE order — the same
// application order as the reference executor's applyPreds passes.
// When kt is non-nil (the driver-stage pass over a table scan or index
// seek) each predicate compiles to a columnar kernel over kt's vectors
// instead of a row closure; kernels run in the same order the closures
// would have.
func (pb *preparedBranch) appendFilters(b *Built, br *optimizer.Branch, sc *scope, applied map[int]bool, kt *rel.Table) error {
	s := br.Sel
	for i := range s.Where {
		p := &s.Where[i]
		if applied[i] || p.Kind == sqlast.PredJoin || p == br.Driver.SeekPred {
			continue
		}
		if !predInScope(p, sc) {
			continue
		}
		if kt != nil {
			k, err := compileColKernel(b, p, kt, sc)
			if err != nil {
				return err
			}
			if k != nil {
				if pb.src.kind == srcChunks {
					// Validation compile only: the shell has no resident
					// vectors, so the real kernels recompile against each
					// resident chunk at run time (see chunkKernels).
					pb.chunkPreds = append(pb.chunkPreds, p)
				} else {
					pb.kerns = append(pb.kerns, k)
				}
				applied[i] = true
				continue
			}
		}
		f, err := compileBatchPred(b, p, sc)
		if err != nil {
			return err
		}
		pb.ops = append(pb.ops, pipeOp{kind: pipeFilter, pred: f})
		applied[i] = true
	}
	return nil
}

// appendJoin compiles one join step, resolving the build side through
// the Built's structure caches.
func (pb *preparedBranch) appendJoin(b *Built, br *optimizer.Branch, sc *scope, j optimizer.Join) error {
	outerPos, err := sc.pos(j.OuterCol)
	if err != nil {
		return err
	}
	slot := pb.nJoinSlots
	pb.nJoinSlots++
	if j.Method == optimizer.JoinINL {
		bi := b.Index(j.Inner.Index)
		if bi == nil {
			return fmt.Errorf("engine: INL index %s not built", j.Inner.Index.Name)
		}
		t := bi.table
		sc.add(j.Inner.Table, colNames(t))
		pb.ops = append(pb.ops, pipeOp{kind: pipeINLJoin, outerPos: outerPos,
			bi: bi, innerRows: t.Rows(), width: sc.width, slot: slot})
		return nil
	}
	// Hash join: resolve the inner row source.
	var rows [][]rel.Value
	var cols []string
	var srcKey string
	var scanTable *rel.Table
	var scanCount, soughtCount int64
	a := j.Inner
	if len(a.PartGroups) > 0 {
		z, zerr := b.partitionZip(a.Table, a.PartGroups)
		if zerr != nil {
			return zerr
		}
		rows, cols = z.rows, z.cols
		srcKey = "p:" + zipKey(a.Table, a.PartGroups)
		scanCount = int64(len(z.rows) * z.groups)
	} else {
		t := resolveTable(b, a.Table)
		if t == nil {
			return fmt.Errorf("engine: unknown table %s", a.Table)
		}
		if err := t.Hydrate(); err != nil {
			return err
		}
		cols = colNames(t)
		if a.Kind == optimizer.AccessSeek {
			// A seek-fed hash build: not produced by today's optimizer,
			// but the reference path supports it. The seek restricts the
			// build rows, so the table stays private to this plan.
			bi := b.Index(a.Index)
			if bi == nil {
				return fmt.Errorf("engine: index %s not built", a.Index.Name)
			}
			if a.SeekPred == nil {
				return fmt.Errorf("engine: seek access without predicate on %s", a.Table)
			}
			ids := bi.seekRange(opFromCmp(a.SeekPred.Op), a.SeekPred.Value)
			trows := t.Rows()
			rows = make([][]rel.Value, len(ids))
			for i, id := range ids {
				rows[i] = trows[id]
			}
			soughtCount = int64(len(rows))
		} else {
			rows = t.Rows()
			if b.ViewTable(a.Table) != nil {
				srcKey = "v:" + a.Table
			} else {
				srcKey = "t:" + a.Table
			}
			scanTable = t
			scanCount = int64(t.RowCount())
		}
	}
	ji := -1
	for i, c := range cols {
		if c == j.InnerCol.Column {
			ji = i
			break
		}
	}
	if ji < 0 {
		return fmt.Errorf("engine: join column %s missing from %s", j.InnerCol, j.Inner.Table)
	}
	sc.add(j.Inner.Table, cols)
	var jt *joinTable
	if srcKey != "" {
		jt, err = b.hashJoinTable(srcKey, j.InnerCol.Column, rows, ji)
		if err != nil {
			return err
		}
	} else {
		jt = buildJoinTable(rows, ji)
	}
	pb.ops = append(pb.ops, pipeOp{kind: pipeHashJoin, outerPos: outerPos, jt: jt,
		width: sc.width, slot: slot, scanTable: scanTable,
		scanCount: scanCount, soughtCount: soughtCount})
	return nil
}

// compileBatchPred builds a boolean row predicate with every column
// position and probe structure resolved at compile time.
func compileBatchPred(b *Built, p *sqlast.Pred, sc *scope) (func([]rel.Value) bool, error) {
	switch p.Kind {
	case sqlast.PredCompare:
		pos, err := sc.pos(p.Col)
		if err != nil {
			return nil, err
		}
		return func(r []rel.Value) bool {
			return matchCompare(r[pos], p.Op, p.Value)
		}, nil
	case sqlast.PredOr:
		positions, err := colPositions(sc, p.Cols)
		if err != nil {
			return nil, err
		}
		return func(r []rel.Value) bool {
			for _, pos := range positions {
				if matchCompare(r[pos], p.Op, p.Value) {
					return true
				}
			}
			return false
		}, nil
	case sqlast.PredExists, sqlast.PredOrExists:
		positions, err := colPositions(sc, p.Cols)
		if err != nil {
			return nil, err
		}
		outerPos, err := sc.pos(p.OuterCol)
		if err != nil {
			return nil, err
		}
		set, err := b.existsProbeSet(p)
		if err != nil {
			return nil, err
		}
		return func(r []rel.Value) bool {
			for _, pos := range positions {
				if matchCompare(r[pos], p.Op, p.Value) {
					return true
				}
			}
			return set.match(r[outerPos])
		}, nil
	}
	return nil, fmt.Errorf("engine: cannot compile predicate %s", p)
}

// initPool wires the per-execution state pool: one driver batch plus
// one arena batch per join operator, sized to that join's output width.
func (pb *preparedBranch) initPool() {
	widths := make([]int, 0, pb.nJoinSlots)
	for _, op := range pb.ops {
		if op.kind != pipeFilter {
			widths = append(widths, op.width)
		}
	}
	pb.pool.New = func() any {
		st := &branchState{in: rel.NewBatch(0), sel: make([]int32, 0, rel.BatchSize),
			joinOut: make([]*rel.Batch, len(widths))}
		for i, w := range widths {
			st.joinOut[i] = rel.NewBatch(w)
		}
		return st
	}
}

// run executes one branch serially, returning its projected rows in
// pipeline order. It is the single-worker composition of the three
// phases the morsel executor schedules separately: precharge, driver
// resolution, and the row-range pipeline.
func (pb *preparedBranch) run(ctx context.Context, st *ExecStats) ([][]rel.Value, error) {
	st.Branches++
	pb.precharge(st)
	n, ids := pb.resolveDriver(st)
	return pb.runRange(ctx, st, ids, 0, n)
}

// precharge charges the hash-join build-side scan cost. The reference
// executor re-fetches every build side once per execution, even when
// the driver produces no rows; charging the same scan touch and
// counters up front — once per branch, never per morsel — keeps
// measured cost and Stats aligned at any worker count.
func (pb *preparedBranch) precharge(st *ExecStats) {
	for i := range pb.ops {
		op := &pb.ops[i]
		if op.kind != pipeHashJoin {
			continue
		}
		if op.scanTable != nil {
			touchTable(op.scanTable, 0, op.scanTable.RowCount())
		}
		st.RowsScanned += op.scanCount
		st.RowsSought += op.soughtCount
	}
}

// resolveDriver materializes the branch's driver row set: the number of
// driver rows, plus — for index range seeks — the matching row ids (in
// index order), whose seek cost is charged here, once per branch. Scans
// and partition zips drive straight off their row slices and return nil
// ids.
func (pb *preparedBranch) resolveDriver(st *ExecStats) (int, []int) {
	switch pb.src.kind {
	case srcSeek:
		ids := pb.src.bi.seekRange(pb.src.seekOp, pb.src.seekVal)
		st.RowsSought += int64(len(ids))
		return len(ids), ids
	case srcZip:
		return len(pb.src.zip.rows), nil
	case srcChunks:
		return pb.src.chunks.RowCount(), nil
	default: // srcScan
		return pb.src.table.RowCount(), nil
	}
}

// chunkKernels compiles the driver-stage predicates of a srcChunks
// branch against one resident chunk fragment. The compile is cheap
// (scope positions resolve in a two-level map, EXISTS probe sets come
// from the Built's single-flighted cache) and chunk-local: a string
// range predicate precomputes its match table against the chunk's own
// dictionary. Kernels operate on chunk-local row ids.
func (pb *preparedBranch) chunkKernels(frag *rel.Table) ([]colKernel, error) {
	if len(pb.chunkPreds) == 0 {
		return nil, nil
	}
	ks := make([]colKernel, 0, len(pb.chunkPreds))
	for _, p := range pb.chunkPreds {
		k, err := compileColKernel(pb.built, p, frag, pb.chunkScope)
		if err != nil {
			return nil, err
		}
		ks = append(ks, k)
	}
	return ks, nil
}

// morselRanges splits the branch's n driver rows into morsel ranges.
// srcChunks drivers align morsels to chunk boundaries — whole chunks
// accumulate until a morsel reaches morselRows — so each worker faults
// and holds exactly one chunk at a time and two morsels never fault the
// same chunk; every other driver splits on the fixed morselRows stride.
func (pb *preparedBranch) morselRanges(n int) [][2]int {
	var out [][2]int
	if pb.src.kind == srcChunks {
		src := pb.src.chunks
		nc := src.NumChunks()
		lo := 0
		for k := 0; k < nc; {
			hi := lo
			for k < nc && hi-lo < morselRows {
				_, hi = src.ChunkSpan(k)
				k++
			}
			if hi > n {
				hi = n
			}
			if hi > lo {
				out = append(out, [2]int{lo, hi})
			}
			lo = hi
		}
		return out
	}
	for lo := 0; lo < n; lo += morselRows {
		out = append(out, [2]int{lo, min(lo+morselRows, n)})
	}
	return out
}

// runRange pushes driver rows [lo, hi) through the branch pipeline and
// returns the projected rows in pipeline order. Output depends only on
// the driver rows' order — operators keep no state across rows, and
// batch boundaries never split a row's join expansion out of order —
// so concatenating adjacent ranges' outputs equals one big run, which
// is what makes the morsel merge bit-identical to serial execution.
// ctx is polled once per driver batch; on cancellation the pipeline
// stops promptly, pooled state is still returned for reuse, and ctx's
// error is reported.
func (pb *preparedBranch) runRange(ctx context.Context, st *ExecStats, ids []int, lo, hi int) ([][]rel.Value, error) {
	done := ctx.Done()
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	state := pb.pool.Get().(*branchState)
	defer pb.pool.Put(state)
	var out [][]rel.Value
	np := len(pb.projs)

	// sink projects a batch's live rows into fresh output rows, one
	// backing arena chunk per batch instead of one allocation per row.
	sink := func(bt *rel.Batch) {
		n := bt.Len()
		if n == 0 {
			return
		}
		arena := make([]rel.Value, n*np)
		k := 0
		for _, si := range bt.Sel {
			r := bt.Rows[si]
			o := arena[k : k+np : k+np]
			for i, pr := range pb.projs {
				if pr.null {
					o[i] = rel.NullOf(rel.TString)
				} else {
					o[i] = r[pr.pos]
				}
			}
			out = append(out, o)
			k += np
		}
	}

	// process pushes a batch through the operators starting at oi.
	var process func(oi int, bt *rel.Batch)
	process = func(oi int, bt *rel.Batch) {
		for ; oi < len(pb.ops); oi++ {
			op := &pb.ops[oi]
			switch op.kind {
			case pipeFilter:
				bt.FilterSel(op.pred)
				if bt.Len() == 0 {
					return
				}
			case pipeHashJoin, pipeINLJoin:
				ob := state.joinOut[op.slot]
				ob.Reset()
				next := oi + 1
				flush := func() {
					if ob.Len() > 0 {
						process(next, ob)
					}
					ob.Reset()
				}
				if op.kind == pipeHashJoin {
					jt := op.jt
					if jt.intKeys {
						for _, si := range bt.Sel {
							orow := bt.Rows[si]
							v := orow[op.outerPos]
							if v.Null || v.Typ != rel.TInt {
								continue
							}
							i, ok := jt.head[v.I]
							for ok && i >= 0 {
								ob.AppendConcat(orow, jt.rows[i])
								if ob.Full() {
									flush()
								}
								i = jt.next[i]
							}
						}
					} else {
						for _, si := range bt.Sel {
							orow := bt.Rows[si]
							v := orow[op.outerPos]
							if v.Null {
								continue
							}
							for _, i := range jt.str[v.String()] {
								ob.AppendConcat(orow, jt.rows[i])
								if ob.Full() {
									flush()
								}
							}
						}
					}
				} else {
					irows := op.innerRows
					for _, si := range bt.Sel {
						orow := bt.Rows[si]
						v := orow[op.outerPos]
						if v.Null {
							continue
						}
						for _, rid := range op.bi.seekEqual(v) {
							st.RowsSought++
							ob.AppendConcat(orow, irows[rid])
							if ob.Full() {
								flush()
							}
						}
					}
				}
				flush()
				return
			}
		}
		sink(bt)
	}

	feed := func(chunk [][]rel.Value) {
		bt := state.in
		bt.Reset()
		for _, r := range chunk {
			bt.AppendRef(r)
		}
		process(0, bt)
	}
	// feedSel materializes the surviving driver rows — after the
	// columnar kernels compacted the selection vector — as references
	// into the generation-cached row view and pushes them through the
	// remaining (join and post-join) operators.
	rows := pb.src.rows
	feedSel := func(sel []int32) {
		for _, k := range pb.kerns {
			sel = k(sel)
			if len(sel) == 0 {
				return
			}
		}
		bt := state.in
		bt.Reset()
		for _, r := range sel {
			bt.AppendRef(rows[r])
		}
		process(0, bt)
	}
	switch pb.src.kind {
	case srcChunks:
		// Chunk-granular scan: fault each overlapping chunk through the
		// source, filter it with chunk-compiled kernels, and release it
		// before moving on — the fragment is resident only between Chunk
		// and release, so peak scan memory follows the source's budget.
		// Output is bit-identical to the assembled srcScan path: batch
		// boundaries differ but every operator is per-row, touchTable
		// charges the same per-cell work on the fragment's vectors, and
		// RowsScanned sums to the same total.
		src := pb.src.chunks
		nc := src.NumChunks()
		for k := 0; k < nc; k++ {
			clo, chi := src.ChunkSpan(k)
			if chi <= lo {
				continue
			}
			if clo >= hi {
				break
			}
			frag, release, err := src.Chunk(k)
			if err != nil {
				return out, err
			}
			kerns, err := pb.chunkKernels(frag)
			if err != nil {
				release()
				return out, err
			}
			frows := frag.Rows()
			s0, e0 := max(lo, clo), min(hi, chi)
			for start := s0; start < e0; start += rel.BatchSize {
				if cancelled() {
					release()
					return out, ctx.Err()
				}
				end := min(start+rel.BatchSize, e0)
				touchTable(frag, start-clo, end-clo)
				st.RowsScanned += int64(end - start)
				sel := state.sel[:0]
				for r := start - clo; r < end-clo; r++ {
					sel = append(sel, int32(r))
				}
				for _, kn := range kerns {
					sel = kn(sel)
					if len(sel) == 0 {
						break
					}
				}
				if len(sel) == 0 {
					continue
				}
				bt := state.in
				bt.Reset()
				for _, r := range sel {
					bt.AppendRef(frows[r])
				}
				process(0, bt)
			}
			release()
		}
	case srcSeek:
		for start := lo; start < hi; start += rel.BatchSize {
			if cancelled() {
				return out, ctx.Err()
			}
			end := min(start+rel.BatchSize, hi)
			sel := state.sel[:0]
			for _, id := range ids[start:end] {
				sel = append(sel, int32(id))
			}
			feedSel(sel)
		}
	case srcZip:
		for start := lo; start < hi; start += rel.BatchSize {
			if cancelled() {
				return out, ctx.Err()
			}
			end := min(start+rel.BatchSize, hi)
			st.RowsScanned += int64((end - start) * pb.src.zip.groups)
			feed(rows[start:end])
		}
	default: // srcScan
		t := pb.src.table
		for start := lo; start < hi; start += rel.BatchSize {
			if cancelled() {
				return out, ctx.Err()
			}
			end := min(start+rel.BatchSize, hi)
			// Per-batch scan-cost touch: the simulated sequential-read
			// work stays proportional to scanned bytes (see touchTable),
			// read straight off the column vectors.
			touchTable(t, start, end)
			st.RowsScanned += int64(end - start)
			sel := state.sel[:0]
			for r := start; r < end; r++ {
				sel = append(sel, int32(r))
			}
			feedSel(sel)
		}
	}
	return out, nil
}
