package engine

import (
	"context"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/xmlgen"
)

// workerCountsUnderTest returns the worker counts every equivalence
// fixture runs at: the fixed battery {1, 2, 7, NumCPU}, any count
// injected by CI through ENGINE_TEST_WORKERS, and two randomized
// counts whose seed is logged so a failure replays with
// ENGINE_TEST_SEED=<seed>.
func workerCountsUnderTest(t *testing.T) []int {
	t.Helper()
	counts := []int{1, 2, 7, runtime.NumCPU()}
	if env := os.Getenv("ENGINE_TEST_WORKERS"); env != "" {
		w, err := strconv.Atoi(env)
		if err != nil || w < 1 {
			t.Fatalf("ENGINE_TEST_WORKERS=%q: want a positive integer", env)
		}
		counts = append(counts, w)
	}
	seed := time.Now().UnixNano()
	if env := os.Getenv("ENGINE_TEST_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("ENGINE_TEST_SEED=%q: want an int64", env)
		}
		seed = s
	}
	t.Logf("randomized worker counts use seed %d (replay: ENGINE_TEST_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2; i++ {
		counts = append(counts, 2+rng.Intn(15))
	}
	t.Logf("worker counts under test: %v", counts)
	return counts
}

// TestMorselExecutorMatchesReference is the intra-query-parallelism
// differential: every integration fixture plan, executed with the
// morsel pool at each worker count, must be bit-identical — columns,
// rows in order, values, and stats — to the row-at-a-time reference
// executor, on cold and warm caches. Under -race this also exercises
// the morsel dispatch, the shared branch pools, and the single-flight
// caches for data races.
func TestMorselExecutorMatchesReference(t *testing.T) {
	counts := workerCountsUnderTest(t)
	fixtures := equivalenceFixtures(t)
	// The integration fixtures fit a single morsel (a few hundred driver
	// rows vs morselRows = 4096); add a fixture wide enough that every
	// branch genuinely splits across morsels at the default size.
	bigDoc := xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: 3 * morselRows / 2, Seed: 77})
	bigBuilt, bigPlans := buildPlans(t, schema.Movie(), bigDoc, movieQueries, nil)
	fixtures["movie-multi-morsel"] = struct {
		built *Built
		plans []*optimizer.Plan
	}{bigBuilt, bigPlans}
	names := make([]string, 0, len(fixtures))
	for name := range fixtures {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fx := fixtures[name]
		t.Run(name, func(t *testing.T) {
			for pi, plan := range fx.plans {
				want, err := ExecuteReference(fx.built, plan)
				if err != nil {
					t.Fatalf("plan %d: reference: %v", pi, err)
				}
				pp, err := fx.built.Prepared(plan)
				if err != nil {
					t.Fatalf("plan %d: prepare: %v", pi, err)
				}
				for _, wk := range counts {
					pp.Workers = wk
					for run := 0; run < 2; run++ {
						got, err := pp.ExecuteContext(context.Background())
						if err != nil {
							t.Fatalf("plan %d workers %d run %d: %v", pi, wk, run, err)
						}
						requireIdentical(t, name, got, want)
					}
				}
				pp.Workers = 0
			}
		})
	}
}

// TestWorkersKnobSemantics pins the Workers knob's resolution rules:
// 0 and 1 stay on the serial per-branch path (no morsel counter
// traffic), negative means GOMAXPROCS, and > 1 turns the morsel pool
// on — all bit-identical to the reference.
func TestWorkersKnobSemantics(t *testing.T) {
	fx := equivalenceFixtures(t)["movie-hybrid"]
	for pi, plan := range fx.plans {
		want, err := ExecuteReference(fx.built, plan)
		if err != nil {
			t.Fatalf("plan %d: reference: %v", pi, err)
		}
		pp, err := fx.built.Prepared(plan)
		if err != nil {
			t.Fatalf("plan %d: prepare: %v", pi, err)
		}
		for _, wk := range []int{0, 1, -1, 3} {
			pp.Workers = wk
			got, err := pp.Execute()
			if err != nil {
				t.Fatalf("plan %d workers %d: %v", pi, wk, err)
			}
			requireIdentical(t, "workers-knob", got, want)
		}
		pp.Workers = 0
	}
}
