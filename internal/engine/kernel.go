package engine

import (
	"strings"

	"repro/internal/rel"
	"repro/internal/sqlast"
)

// This file holds the columnar filter kernels of the batch executor.
// Driver-stage predicates (everything before the first join) on table
// scans and index range scans compile to colKernels: tight loops over
// one typed column vector that compact a selection vector of row ids
// in place, without boxing a rel.Value per cell. Every kernel is
// bit-equivalent to matchCompare over the materialized row — the
// specialized paths delegate to rel.CompareInts/CompareFloats (the
// scalar orders Value.Compare is built on) and the generic fallback
// materializes single cells through Table.ValueAt.

// colKernel compacts a selection vector of driver row ids in place,
// returning the surviving prefix.
type colKernel func(sel []int32) []int32

// compileColKernel compiles one predicate into a columnar kernel over
// the driver table. sc holds only the driver table at this stage, so
// scope positions are column indices. It never fails to produce a
// kernel for a supported predicate kind: unsupported column/literal
// shapes fall back to a per-cell ValueAt kernel.
func compileColKernel(b *Built, p *sqlast.Pred, t *rel.Table, sc *scope) (colKernel, error) {
	switch p.Kind {
	case sqlast.PredCompare:
		pos, err := sc.pos(p.Col)
		if err != nil {
			return nil, err
		}
		if k := compareKernel(t, pos, p.Op, p.Value); k != nil {
			return k, nil
		}
		op, lit := p.Op, p.Value
		return func(sel []int32) []int32 {
			live := sel[:0]
			for _, r := range sel {
				if matchCompare(t.ValueAt(int(r), pos), op, lit) {
					live = append(live, r)
				}
			}
			return live
		}, nil
	case sqlast.PredOr:
		positions, err := colPositions(sc, p.Cols)
		if err != nil {
			return nil, err
		}
		op, lit := p.Op, p.Value
		return func(sel []int32) []int32 {
			live := sel[:0]
			for _, r := range sel {
				for _, pos := range positions {
					if matchCompare(t.ValueAt(int(r), pos), op, lit) {
						live = append(live, r)
						break
					}
				}
			}
			return live
		}, nil
	case sqlast.PredExists, sqlast.PredOrExists:
		positions, err := colPositions(sc, p.Cols)
		if err != nil {
			return nil, err
		}
		outerPos, err := sc.pos(p.OuterCol)
		if err != nil {
			return nil, err
		}
		set, err := b.existsProbeSet(p)
		if err != nil {
			return nil, err
		}
		op, lit := p.Op, p.Value
		return func(sel []int32) []int32 {
			live := sel[:0]
		rows:
			for _, r := range sel {
				for _, pos := range positions {
					if matchCompare(t.ValueAt(int(r), pos), op, lit) {
						live = append(live, r)
						continue rows
					}
				}
				if set.match(t.ValueAt(int(r), outerPos)) {
					live = append(live, r)
				}
			}
			return live
		}, nil
	}
	return nil, nil
}

// compareKernel builds the typed fast path for a PredCompare over
// column ci, or nil when the column/literal shape needs the generic
// fallback (a column with exception values, or a literal whose
// comparison against the column type crosses into string space).
func compareKernel(t *rel.Table, ci int, op sqlast.CmpOp, lit rel.Value) colKernel {
	if lit.Null {
		// matchCompare never matches a NULL literal.
		return func(sel []int32) []int32 { return sel[:0] }
	}
	switch t.Columns[ci].Typ {
	case rel.TInt:
		ints, nulls, ok := t.IntCol(ci)
		if !ok {
			return nil
		}
		switch lit.Typ {
		case rel.TInt:
			l := lit.I
			return func(sel []int32) []int32 {
				live := sel[:0]
				for _, r := range sel {
					if !nulls.Get(int(r)) && op.Matches(rel.CompareInts(ints[r], l)) {
						live = append(live, r)
					}
				}
				return live
			}
		case rel.TFloat:
			// Mixed numeric types compare as floats (Value.Compare).
			l := lit.F
			return func(sel []int32) []int32 {
				live := sel[:0]
				for _, r := range sel {
					if !nulls.Get(int(r)) && op.Matches(rel.CompareFloats(float64(ints[r]), l)) {
						live = append(live, r)
					}
				}
				return live
			}
		}
		return nil // string literal vs int column compares string forms
	case rel.TFloat:
		floats, nulls, ok := t.FloatCol(ci)
		if !ok {
			return nil
		}
		var l float64
		switch lit.Typ {
		case rel.TFloat:
			l = lit.F
		case rel.TInt:
			l = float64(lit.I)
		default:
			return nil
		}
		return func(sel []int32) []int32 {
			live := sel[:0]
			for _, r := range sel {
				if !nulls.Get(int(r)) && op.Matches(rel.CompareFloats(floats[r], l)) {
					live = append(live, r)
				}
			}
			return live
		}
	case rel.TString:
		codes, dict, nulls, ok := t.StrCol(ci)
		if !ok {
			return nil
		}
		// A string column compares its raw bytes against the literal's
		// string form whatever the literal type (Value.Compare).
		litS := lit.String()
		if op == sqlast.OpEq {
			// Equality resolves to one dictionary code — or to nothing,
			// when the literal never occurs in the column.
			c, present := dict.Code(litS)
			if !present {
				return func(sel []int32) []int32 { return sel[:0] }
			}
			return func(sel []int32) []int32 {
				live := sel[:0]
				for _, r := range sel {
					if codes[r] == c && !nulls.Get(int(r)) {
						live = append(live, r)
					}
				}
				return live
			}
		}
		// Range ops: decide once per distinct string, then filter on
		// codes — the dictionary is frozen during execution (generation
		// guards), so the table is complete.
		match := make([]bool, dict.Len())
		for code, s := range dict.Strs() {
			match[code] = op.Matches(strings.Compare(s, litS))
		}
		return func(sel []int32) []int32 {
			live := sel[:0]
			for _, r := range sel {
				if !nulls.Get(int(r)) && match[codes[r]] {
					live = append(live, r)
				}
			}
			return live
		}
	}
	return nil
}
