package engine

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/sqlast"
	"repro/internal/stats"
)

// planQuery plans a hand-built query against the oracle database under
// an empty config. Plans are Built-independent, so one plan executes
// against both the assembled and the chunk-sourced Built.
func planQuery(t *testing.T, db *rel.Database, q *sqlast.Query) *optimizer.Plan {
	t.Helper()
	plan, err := optimizer.New(stats.FromDatabase(db)).PlanQuery(q, &physical.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// sliceSource is an in-memory ScanSource: chunk-granular snapshots of
// a resident table, adopted as read-only views at Chunk time — the
// same shape the storage pager serves, without the disk. It counts
// outstanding acquisitions so tests can assert the executor's release
// discipline: at most one held chunk per worker, zero when idle.
type sliceSource struct {
	cols   []rel.Column
	rows   int
	spans  [][2]int
	chunks []*rel.TableSnapshot

	held    atomic.Int64
	maxHeld atomic.Int64
}

func newSliceSource(t *testing.T, tbl *rel.Table, chunkRows int) *sliceSource {
	t.Helper()
	if chunkRows%64 != 0 {
		t.Fatalf("chunkRows %d must be a multiple of 64", chunkRows)
	}
	snap := tbl.Snapshot()
	s := &sliceSource{cols: tbl.Columns, rows: tbl.RowCount()}
	for lo := 0; lo < s.rows; lo += chunkRows {
		hi := min(lo+chunkRows, s.rows)
		cs, err := snap.SliceSnapshot(lo, hi)
		if err != nil {
			t.Fatalf("SliceSnapshot(%d,%d): %v", lo, hi, err)
		}
		s.spans = append(s.spans, [2]int{lo, hi})
		s.chunks = append(s.chunks, cs)
	}
	return s
}

func (s *sliceSource) Columns() []rel.Column      { return s.cols }
func (s *sliceSource) RowCount() int              { return s.rows }
func (s *sliceSource) NumChunks() int             { return len(s.chunks) }
func (s *sliceSource) ChunkSpan(k int) (int, int) { return s.spans[k][0], s.spans[k][1] }

func (s *sliceSource) Chunk(k int) (*rel.Table, func(), error) {
	h := s.held.Add(1)
	for {
		m := s.maxHeld.Load()
		if h <= m || s.maxHeld.CompareAndSwap(m, h) {
			break
		}
	}
	var released atomic.Bool
	return rel.ViewFromSnapshot(s.chunks[k]), func() {
		if released.CompareAndSwap(false, true) {
			s.held.Add(-1)
		}
	}, nil
}

// chunkDB builds a parent/child database big enough to span many
// chunks, with the value shapes that stress kernels: repeated strings,
// NULLs, non-finite floats, and wrong-typed exception rows (which force
// the generic per-cell kernel fallback on the chunks that contain them
// while other chunks keep the typed fast path).
func chunkDB(nrows int) *rel.Database {
	db := rel.NewDatabase()
	big := rel.NewTable("big", []rel.Column{
		{Name: "ID", Typ: rel.TInt},
		{Name: "PID", Typ: rel.TInt, Nullable: true},
		{Name: "tag", Typ: rel.TString, Nullable: true},
		{Name: "val", Typ: rel.TFloat, Nullable: true},
		{Name: "n", Typ: rel.TInt, Nullable: true},
	})
	for i := 0; i < nrows; i++ {
		tag := rel.Str(fmt.Sprintf("tag-%02d", i%7))
		switch {
		case i%13 == 0:
			tag = rel.NullOf(rel.TString)
		case i%97 == 0:
			tag = rel.Int(int64(i)) // exception: int in a string column
		}
		val := rel.Float(float64(i) / 3)
		switch {
		case i%31 == 0:
			val = rel.Float(math.NaN())
		case i%47 == 0:
			val = rel.Float(math.Copysign(0, -1))
		case i%11 == 0:
			val = rel.NullOf(rel.TFloat)
		}
		n := rel.Int(int64(i % 100))
		if i%17 == 0 {
			n = rel.NullOf(rel.TInt)
		}
		big.AppendRow([]rel.Value{rel.Int(int64(i)), rel.NullOf(rel.TInt), tag, val, n})
	}
	kid := rel.NewTable("kid", []rel.Column{
		{Name: "ID", Typ: rel.TInt},
		{Name: "PID", Typ: rel.TInt},
		{Name: "word", Typ: rel.TString},
	})
	kid.Parent = "big"
	for i := 0; i < nrows/2; i++ {
		kid.AppendRow([]rel.Value{
			rel.Int(int64(nrows + i)), rel.Int(int64((i * 5) % nrows)),
			rel.Str(fmt.Sprintf("w%d", i%19)),
		})
	}
	db.Add(big)
	db.Add(kid)
	return db
}

// chunkQueries exercise the srcChunks driver: a pure filtered scan
// (typed int + dictionary string kernels), a scan over the
// exception-bearing float column (generic fallback kernel), and a
// hash-join with a driver-stage filter.
func chunkQueries() []*sqlast.Query {
	return []*sqlast.Query{
		{Branches: []*sqlast.Select{{
			Items: []sqlast.SelectItem{
				{Col: &sqlast.ColRef{Table: "big", Column: "ID"}, As: "ID"},
				{Col: &sqlast.ColRef{Table: "big", Column: "tag"}, As: "tag"},
			},
			From: []string{"big"},
			Where: []sqlast.Pred{
				{Kind: sqlast.PredCompare, Op: sqlast.OpEq,
					Col: sqlast.ColRef{Table: "big", Column: "tag"}, Value: rel.Str("tag-03")},
				{Kind: sqlast.PredCompare, Op: sqlast.OpGe,
					Col: sqlast.ColRef{Table: "big", Column: "n"}, Value: rel.Int(40)},
			},
		}}, OrderBy: "ID"},
		{Branches: []*sqlast.Select{{
			Items: []sqlast.SelectItem{
				{Col: &sqlast.ColRef{Table: "big", Column: "ID"}, As: "ID"},
				{Col: &sqlast.ColRef{Table: "big", Column: "val"}, As: "val"},
			},
			From: []string{"big"},
			Where: []sqlast.Pred{
				{Kind: sqlast.PredCompare, Op: sqlast.OpLt,
					Col: sqlast.ColRef{Table: "big", Column: "val"}, Value: rel.Float(25)},
			},
		}}, OrderBy: "ID"},
		{Branches: []*sqlast.Select{{
			Items: []sqlast.SelectItem{
				{Col: &sqlast.ColRef{Table: "big", Column: "ID"}, As: "ID"},
				{Col: &sqlast.ColRef{Table: "kid", Column: "word"}, As: "word"},
			},
			From: []string{"big", "kid"},
			Where: []sqlast.Pred{
				{Kind: sqlast.PredJoin,
					Left:  sqlast.ColRef{Table: "kid", Column: "PID"},
					Right: sqlast.ColRef{Table: "big", Column: "ID"}},
				{Kind: sqlast.PredCompare, Op: sqlast.OpLt,
					Col: sqlast.ColRef{Table: "big", Column: "n"}, Value: rel.Int(50)},
			},
		}}, OrderBy: "ID"},
	}
}

// TestScanSourceMatchesAssembled is the in-memory equivalence oracle
// for the chunk-scan driver: the same plans executed over a Built with
// registered chunk sources must return bit-identical results — rows,
// order, values, stats — to the assembled-table Built and the
// row-at-a-time reference, serially and at several morsel worker
// counts, with every chunk released when execution finishes.
func TestScanSourceMatchesAssembled(t *testing.T) {
	const nrows = 1600
	db := chunkDB(nrows)

	oracle, err := Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	paged, err := Build(chunkDB(nrows), nil)
	if err != nil {
		t.Fatal(err)
	}
	bigSrc := newSliceSource(t, db.Table("big"), 128)
	kidSrc := newSliceSource(t, db.Table("kid"), 128)
	paged.SetScanSource("big", bigSrc)
	paged.SetScanSource("kid", kidSrc)

	defer func(old int) { morselRows = old }(morselRows)
	morselRows = 256 // two 128-row chunks per morsel

	for qi, q := range chunkQueries() {
		plan := planQuery(t, db, q)
		want, err := ExecuteReference(oracle, plan)
		if err != nil {
			t.Fatalf("query %d: reference: %v", qi, err)
		}
		asm, err := Execute(oracle, plan)
		if err != nil {
			t.Fatalf("query %d: assembled: %v", qi, err)
		}
		requireIdentical(t, fmt.Sprintf("query %d assembled-vs-reference", qi), asm, want)

		pp, err := paged.Prepared(plan)
		if err != nil {
			t.Fatalf("query %d: prepare paged: %v", qi, err)
		}
		for _, workers := range []int{1, 2, runtime.NumCPU()} {
			pp.Workers = workers
			for run := 0; run < 2; run++ {
				got, err := pp.Execute()
				if err != nil {
					t.Fatalf("query %d workers %d: %v", qi, workers, err)
				}
				requireIdentical(t, fmt.Sprintf("query %d workers %d", qi, workers), got, want)
			}
			if h := bigSrc.held.Load() + kidSrc.held.Load(); h != 0 {
				t.Fatalf("query %d workers %d: %d chunks still held after execution", qi, workers, h)
			}
		}
		pp.Workers = 0
	}
	if m := bigSrc.maxHeld.Load(); m < 1 {
		t.Fatal("scan source was never used")
	}
}

// TestScanSourceOverVirtualShells runs the chunk-scan driver over a
// database of unhydrated shells: the driver scan must execute without
// ever hydrating its table, while the join build side hydrates on
// demand through its loader.
func TestScanSourceOverVirtualShells(t *testing.T) {
	const nrows = 960
	db := chunkDB(nrows)
	bigSrc := newSliceSource(t, db.Table("big"), 128)
	kidSrc := newSliceSource(t, db.Table("kid"), 128)

	shellDB := rel.NewDatabase()
	var shells []*rel.Table
	for _, src := range db.Tables() {
		src := src
		sh := rel.NewVirtualTable(src.Name, src.Parent, src.Columns,
			src.RowCount(), src.Generation(), src.Bytes(),
			func() (*rel.Table, error) { return src, nil })
		shellDB.Add(sh)
		shells = append(shells, sh)
	}
	paged, err := Build(shellDB, nil)
	if err != nil {
		t.Fatal(err)
	}
	paged.SetScanSource("big", bigSrc)
	paged.SetScanSource("kid", kidSrc)
	oracle, err := Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}

	for qi, q := range chunkQueries() {
		plan := planQuery(t, db, q)
		want, err := Execute(oracle, plan)
		if err != nil {
			t.Fatalf("query %d: oracle: %v", qi, err)
		}
		got, err := Execute(paged, plan)
		if err != nil {
			t.Fatalf("query %d: paged: %v", qi, err)
		}
		requireIdentical(t, fmt.Sprintf("query %d shells", qi), got, want)
	}
	// The pure-scan queries never touch "big" beyond its source, and the
	// join plan only hydrates its build side — at least one shell must
	// still be virtual, proving scans did not fall back to assembly.
	virtual := 0
	for _, sh := range shells {
		if !sh.Resident() {
			virtual++
		}
	}
	if virtual == 0 {
		t.Fatal("every shell hydrated; chunk scans fell back to full assembly")
	}
}

// TestScanSourceIgnoredForSeeksAndViews pins the scope of the source
// registry: index seeks hydrate and use the assembled table even when a
// source is registered (results must stay identical to the assembled
// Built with the same index).
func TestScanSourceIgnoredForSeeks(t *testing.T) {
	const nrows = 640
	db := chunkDB(nrows)
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "ix_big_n", Table: "big", Key: []string{"n"},
		Include: []string{"ID", "tag"}})

	q := &sqlast.Query{Branches: []*sqlast.Select{{
		Items: []sqlast.SelectItem{{Col: &sqlast.ColRef{Table: "big", Column: "ID"}, As: "ID"}},
		From:  []string{"big"},
		Where: []sqlast.Pred{{Kind: sqlast.PredCompare, Op: sqlast.OpGe,
			Col: sqlast.ColRef{Table: "big", Column: "n"}, Value: rel.Int(95)}},
	}}, OrderBy: "ID"}

	oracle, plan := planFor(t, db, q, cfg)
	paged, err := Build(chunkDB(nrows), cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := newSliceSource(t, db.Table("big"), 128)
	paged.SetScanSource("big", src)

	want, err := Execute(oracle, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(paged, plan)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "seek with registered source", got, want)
	if want.Stats.RowsSought == 0 {
		t.Fatal("plan did not seek; fixture lost its point")
	}
	if src.maxHeld.Load() != 0 {
		t.Fatal("seek access pulled chunks from the scan source")
	}
}
