package engine

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// TestSelectionQueriesActuallyMatch guards against test fixtures whose
// selection constants silently stop matching after generator changes.
func TestSelectionQueriesActuallyMatch(t *testing.T) {
	base := schema.DBLP()
	doc := xmlgen.GenerateDBLP(base, xmlgen.DBLPOptions{Inproceedings: 300, Books: 40, Seed: 21})
	for _, qs := range []string{
		`//inproceedings[author = "Fatima Author-00005"]/title`,
	} {
		groups, err := xmlgen.Evaluate(base, doc, xpath.MustParse(qs))
		if err != nil {
			t.Fatal(err)
		}
		if len(groups) == 0 {
			t.Errorf("%s matches nothing; fixture constants stale", qs)
		}
	}
	mbase := schema.Movie()
	mdoc := xmlgen.GenerateMovie(mbase, xmlgen.MovieOptions{Movies: 300, Seed: 21})
	groups, err := xmlgen.Evaluate(mbase, mdoc, xpath.MustParse(`//movie[actor = "Bob Author-00017"]/title`))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Error("movie actor selection matches nothing; fixture constants stale")
	}
}
