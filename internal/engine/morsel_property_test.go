package engine

import (
	"fmt"
	"testing"

	"repro/internal/physical"
	"repro/internal/schema"
	"repro/internal/xmlgen"
)

// TestMorselBoundaryProperties shrinks morselRows so that tiny fixtures
// exercise every boundary shape — empty tables, row counts below /
// equal to / one above the morsel size, multi-morsel tails, selection
// vectors straddling morsel edges (the genre/year predicates in
// movieQueries survive in some morsels and die in others), and
// partition groups smaller than one morsel — and asserts the morsel
// executor stays bit-identical to the reference at several worker
// counts.
func TestMorselBoundaryProperties(t *testing.T) {
	saved := morselRows
	morselRows = 8
	defer func() { morselRows = saved }()

	configs := map[string]func() *physical.Config{
		"heap": func() *physical.Config { return nil },
		"partition": func() *physical.Config {
			cfg := &physical.Config{}
			cfg.AddPartition(&physical.VPartition{Table: "movie", Groups: [][]string{
				{"title", "year", "box_office", "seasons"},
				{"avg_rating", "genre", "country", "language", "runtime"},
			}})
			return cfg
		},
		"index": func() *physical.Config {
			cfg := &physical.Config{}
			cfg.AddIndex(&physical.Index{Name: "ix_movie_year", Table: "movie", Key: []string{"year"},
				Include: []string{"ID", "title", "box_office"}})
			return cfg
		},
	}

	// Row counts around the shrunk morsel size: empty, below, exactly
	// one morsel, one above, two morsels ± one, and a ragged tail.
	for _, movies := range []int{0, 1, 7, 8, 9, 15, 16, 17, 31} {
		doc := xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: movies, Seed: int64(100 + movies)})
		for cfgName, mkCfg := range configs {
			name := fmt.Sprintf("%s/movies=%d", cfgName, movies)
			t.Run(name, func(t *testing.T) {
				built, plans := buildPlans(t, schema.Movie(), doc, movieQueries, mkCfg())
				for pi, plan := range plans {
					want, err := ExecuteReference(built, plan)
					if err != nil {
						t.Fatalf("plan %d: reference: %v", pi, err)
					}
					pp, err := built.Prepared(plan)
					if err != nil {
						t.Fatalf("plan %d: prepare: %v", pi, err)
					}
					for _, wk := range []int{1, 2, 3, 5} {
						pp.Workers = wk
						got, err := pp.Execute()
						if err != nil {
							t.Fatalf("plan %d workers %d: %v", pi, wk, err)
						}
						requireIdentical(t, name, got, want)
					}
					pp.Workers = 0
				}
			})
		}
	}
}
