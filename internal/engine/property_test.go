package engine

import (
	"math/rand"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/transform"
	"repro/internal/translate"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// TestRandomTransformationSequencesPreserveSemantics is the central
// correctness property of the whole system: for ANY mapping reachable
// by a sequence of logical transformations, and ANY physical
// configuration the tuner might build, executing the translated SQL
// returns exactly what the reference XPath evaluator returns on the
// documents.
func TestRandomTransformationSequencesPreserveSemantics(t *testing.T) {
	type fixture struct {
		name    string
		base    *schema.Tree
		tree    func() *schema.Tree
		doc     *xmlgen.Doc
		queries []string
	}
	movieBase := schema.Movie()
	dblpBase := schema.DBLP()
	fixtures := []fixture{
		{
			name: "movie",
			base: movieBase,
			tree: schema.Movie,
			doc:  xmlgen.GenerateMovie(movieBase, xmlgen.MovieOptions{Movies: 120, Seed: 91}),
			queries: []string{
				`//movie[year >= 2000]/(title | box_office)`,
				`//movie[genre = "genre-03"]/(title | actor | avg_rating)`,
				`//movie/language`,
				`//movie[country = "country-07"]/(aka_title | seasons)`,
			},
		},
		{
			name: "dblp",
			base: dblpBase,
			tree: schema.DBLP,
			doc:  xmlgen.GenerateDBLP(dblpBase, xmlgen.DBLPOptions{Inproceedings: 120, Books: 25, Seed: 92}),
			queries: []string{
				`//inproceedings[year >= 1999]/(title | author)`,
				`//book/(title | publisher | price)`,
				`//inproceedings[booktitle = "VLDB"]/(pages | cite)`,
			},
		},
	}
	r := rand.New(rand.NewSource(7))
	for _, fx := range fixtures {
		col := xmlgen.CollectStats(fx.base, fx.doc)
		const trials = 12
		for trial := 0; trial < trials; trial++ {
			tree := fx.tree()
			// Apply a random sequence of applicable transformations.
			steps := 1 + r.Intn(4)
			var applied []string
			for s := 0; s < steps; s++ {
				cands := transform.EnumerateAll(tree, col)
				if len(cands) == 0 {
					break
				}
				tf := cands[r.Intn(len(cands))]
				next, err := tf.Apply(tree)
				if err != nil {
					continue // combination not applicable; skip
				}
				applied = append(applied, tf.Key())
				tree = next
			}
			m, err := shred.Compile(tree)
			if err != nil {
				t.Fatalf("%s trial %d (%v): compile: %v", fx.name, trial, applied, err)
			}
			db, err := shred.Shred(m, fx.doc)
			if err != nil {
				t.Fatalf("%s trial %d (%v): shred: %v", fx.name, trial, applied, err)
			}
			// Random physical configuration: sometimes empty, sometimes
			// a handful of plausible indexes.
			cfg := &physical.Config{}
			if r.Intn(2) == 0 {
				for _, tb := range db.Tables() {
					if r.Intn(3) == 0 && tb.HasColumn("PID") {
						cfg.AddIndex(&physical.Index{
							Name: "p_" + tb.Name, Table: tb.Name, Key: []string{"PID"},
						})
					}
				}
			}
			built, err := Build(db, cfg)
			if err != nil {
				t.Fatalf("%s trial %d: build: %v", fx.name, trial, err)
			}
			prov := stats.FromDatabase(db)
			opt := optimizer.New(prov)
			for _, qs := range fx.queries {
				q := xpath.MustParse(qs)
				sql, err := translate.Translate(m, q)
				if err != nil {
					t.Fatalf("%s trial %d (%v): translate %s: %v", fx.name, trial, applied, qs, err)
				}
				plan, err := opt.PlanQuery(sql, cfg)
				if err != nil {
					t.Fatalf("%s trial %d: plan %s: %v", fx.name, trial, qs, err)
				}
				res, err := Execute(built, plan)
				if err != nil {
					t.Fatalf("%s trial %d (%v): execute %s: %v", fx.name, trial, applied, qs, err)
				}
				gold, err := xmlgen.Evaluate(fx.base, fx.doc, q)
				if err != nil {
					t.Fatalf("%s trial %d: evaluate %s: %v", fx.name, trial, qs, err)
				}
				got := dropEmpty(normalizeSQL(res))
				want := dropEmpty(normalizeGold(gold, q.Proj, nil))
				if len(got) != len(want) {
					t.Fatalf("%s trial %d (%v): %s: %d groups, want %d\nSQL:\n%s",
						fx.name, trial, applied, qs, len(got), len(want), sql.SQL())
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s trial %d (%v): %s: group %d\n got: %s\nwant: %s\nSQL:\n%s",
							fx.name, trial, applied, qs, i, got[i], want[i], sql.SQL())
					}
				}
			}
		}
	}
}
