package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/rel"
)

// morselRows is the number of driver rows per morsel: four pipeline
// batches, enough to amortize dispatch without starving small worker
// pools. A package variable (not a const) so boundary tests can shrink
// it and exercise partial/straddling morsels on small fixtures.
var morselRows = 4 * rel.BatchSize

// executeMorsels is the intra-query parallel execution path
// (Workers > 1). Every branch's driver — table scan, index range scan,
// or partition-group zip scan — is split into fixed-size morsels of
// driver rows, and all morsels from all branches are dispatched to one
// worker pool shared by this Execute call. Downstream operators
// (filters, hash-join probes, index-nested-loop joins) run inside the
// morsel that feeds them, so one wide scan parallelizes end to end;
// hash-join build sides stay single-flighted on the Built's cache.
//
// Determinism: each morsel writes its rows and stats into a fixed
// (branch, morsel) slot; the merge concatenates slots branch by branch
// in plan order and morsel by morsel in driver order. runRange output
// depends only on which driver rows a morsel covers — never on timing
// — and ExecStats are commutative sums, so results are bit-identical
// to serial execution at any worker count.
//
// Each branch also gets one precharge task (hash-join build-side cost
// charging, once per branch — see precharge) that runs before any of
// its morsels are claimable, mirroring the serial path's accounting.
func (pp *PreparedPlan) executeMorsels(ctx context.Context, sp *obs.Span, reg *obs.Registry, workers int) (*Result, error) {
	type branchRun struct {
		st   ExecStats // precharge + driver-resolution stats
		ids  []int     // seek drivers: matching row ids
		n    int       // driver row count
		out  []morselOut
		span *obs.Span
	}
	nb := len(pp.branches)
	runs := make([]*branchRun, nb)
	type task struct {
		branch int
		morsel int // index into runs[branch].out
		lo, hi int
	}
	var tasks []task
	totalMorsels := 0
	// Resolve drivers and build the task list up front: driver
	// resolution (index range seek + seek-cost charge) is cheap and
	// single-threaded here so morsel boundaries are fixed before any
	// worker starts. Branch spans are created serially in plan order;
	// morsel spans are added concurrently by workers (Span.Child is
	// concurrency-safe).
	for bi, pb := range pp.branches {
		r := &branchRun{}
		r.st.Branches++
		pb.precharge(&r.st)
		r.n, r.ids = pb.resolveDriver(&r.st)
		ranges := pb.morselRanges(r.n)
		nm := len(ranges)
		r.out = make([]morselOut, nm)
		r.span = sp.Child("executor.branch",
			obs.Int("branch", int64(bi)),
			obs.Int("operators", int64(len(pb.ops))),
			obs.Int("morsels", int64(nm)))
		runs[bi] = r
		for m, rg := range ranges {
			tasks = append(tasks, task{branch: bi, morsel: m, lo: rg[0], hi: rg[1]})
		}
		totalMorsels += nm
	}

	var next atomic.Int64
	var stop atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) || stop.Load() {
					return
				}
				t := tasks[i]
				r := runs[t.branch]
				ms := r.span.Child("executor.morsel",
					obs.Int("morsel", int64(t.morsel)),
					obs.Int("rows_in", int64(t.hi-t.lo)))
				slot := &r.out[t.morsel]
				var err error
				slot.rows, err = pp.branches[t.branch].runRange(ctx, &slot.st, r.ids, t.lo, t.hi)
				if err != nil {
					ms.SetAttr(obs.String("error", err.Error()))
					ms.End()
					fail(err)
					return
				}
				ms.SetAttr(obs.Int("rows", int64(len(slot.rows))))
				ms.End()
			}
		}()
	}
	wg.Wait()
	reg.Counter("engine.exec.morsels").Add(int64(totalMorsels))

	res := &Result{Cols: pp.cols}
	for _, r := range runs {
		var bst ExecStats
		bst.add(r.st)
		brows := 0
		for i := range r.out {
			res.Rows = append(res.Rows, r.out[i].rows...)
			bst.add(r.out[i].st)
			brows += len(r.out[i].rows)
		}
		res.Stats.add(bst)
		r.span.SetAttr(obs.Int("rows", int64(brows)),
			obs.Int("rows_scanned", bst.RowsScanned),
			obs.Int("rows_sought", bst.RowsSought))
		r.span.End()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// morselOut is one morsel's fixed output slot: its projected rows in
// driver order plus the stats its pipeline accumulated.
type morselOut struct {
	rows [][]rel.Value
	st   ExecStats
}
