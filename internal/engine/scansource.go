package engine

import "repro/internal/rel"

// ScanSource feeds a driver-stage table scan chunk by chunk instead of
// through a fully materialized rel.Table, so a scan's peak resident
// memory is bounded by the source's paging policy (the storage layer
// backs one with its CLOCK-budgeted pager) rather than by table size.
//
// A source describes a fixed point-in-time row set: RowCount and the
// chunk spans never change after registration, and results must be
// bit-identical to scanning the assembled table — the executor leans on
// that to keep the assembled path as its equivalence oracle. Chunk
// returns a resident fragment covering rows [lo, hi) of the table plus
// a release callback; the fragment is only valid until release, which
// lets the source unpin or evict it. Chunk must be safe for concurrent
// calls (morsel workers pull chunks independently) and should return an
// error — not stale data — when the backing store has moved on.
type ScanSource interface {
	// Columns returns the table's column descriptors, in table order.
	Columns() []rel.Column
	// RowCount returns the total number of rows the source covers.
	RowCount() int
	// NumChunks returns the number of chunks.
	NumChunks() int
	// ChunkSpan returns the global row range [lo, hi) chunk k covers.
	// Chunks are contiguous and in row order: chunk 0 starts at 0, each
	// chunk starts where the previous one ended, and the last ends at
	// RowCount().
	ChunkSpan(k int) (lo, hi int)
	// Chunk returns chunk k as a resident read-only table fragment whose
	// row r corresponds to global row ChunkSpan(k).lo + r, plus a release
	// callback the caller must invoke when done with the fragment.
	Chunk(k int) (*rel.Table, func(), error)
}

// SetScanSource registers a chunk source for driver-stage scans of the
// named base table. Plain table scans (no partition groups, not a view)
// then pull chunks from the source instead of materializing the table's
// rows; every other access to the table — seeks, join build sides,
// EXISTS probes, index/view/partition builds — still hydrates the full
// table. Register sources after Build and before Prepare.
func (b *Built) SetScanSource(table string, src ScanSource) {
	if b.sources == nil {
		b.sources = make(map[string]ScanSource)
	}
	b.sources[table] = src
}

// ScanSource returns the registered chunk source for a table, or nil.
func (b *Built) ScanSource(table string) ScanSource { return b.sources[table] }
