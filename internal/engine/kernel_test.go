package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/rel"
	"repro/internal/sqlast"
)

// kernelTable builds a table whose columns exercise every kernel shape:
// clean int/float/string vectors with NULLs and special floats, plus a
// dirty column holding wrong-typed exception values.
func kernelTable(r *rand.Rand, rows int) *rel.Table {
	t := rel.NewTable("K", []rel.Column{
		{Name: "i", Typ: rel.TInt, Nullable: true},
		{Name: "f", Typ: rel.TFloat, Nullable: true},
		{Name: "s", Typ: rel.TString, Nullable: true},
		{Name: "dirty", Typ: rel.TInt, Nullable: true},
	})
	for n := 0; n < rows; n++ {
		var iv, fv, sv, dv rel.Value
		if r.Intn(8) == 0 {
			iv = rel.NullOf(rel.TInt)
		} else {
			iv = rel.Int(r.Int63n(20) - 10)
		}
		switch r.Intn(10) {
		case 0:
			fv = rel.NullOf(rel.TFloat)
		case 1:
			fv = rel.Float(math.NaN())
		case 2:
			fv = rel.Float(math.Inf(1))
		case 3:
			fv = rel.Float(math.Copysign(0, -1))
		default:
			fv = rel.Float(float64(r.Intn(16)) / 4)
		}
		if r.Intn(8) == 0 {
			sv = rel.NullOf(rel.TString)
		} else {
			sv = rel.Str(fmt.Sprintf("v-%02d", r.Intn(10)))
		}
		if r.Intn(4) == 0 {
			dv = rel.Str(fmt.Sprintf("%d", r.Intn(5))) // exception cell
		} else {
			dv = rel.Int(r.Int63n(5))
		}
		t.AppendRow([]rel.Value{iv, fv, sv, dv})
	}
	return t
}

// TestCompareKernelEquivalence: for every comparison operator, column
// shape, and a battery of literals — including cross-typed and special
// ones — the compiled columnar kernel keeps exactly the rows
// matchCompare keeps on the materialized values. This is the contract
// that lets the batch executor filter on vectors while the reference
// executor stays row-at-a-time.
func TestCompareKernelEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tbl := kernelTable(r, 700)
	sc := newScope()
	sc.add("K", []string{"i", "f", "s", "dirty"})
	ops := []sqlast.CmpOp{sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe}
	lits := map[string][]rel.Value{
		"i": {rel.Int(0), rel.Int(-3), rel.Float(1.5), rel.Str("2"), rel.Str("zz"), rel.NullOf(rel.TInt)},
		"f": {rel.Float(2.5), rel.Float(math.NaN()), rel.Float(math.Inf(1)), rel.Float(math.Copysign(0, -1)),
			rel.Int(1), rel.Str("1"), rel.NullOf(rel.TFloat)},
		"s":     {rel.Str("v-03"), rel.Str("absent"), rel.Str(""), rel.Int(7), rel.NullOf(rel.TString)},
		"dirty": {rel.Int(2), rel.Str("3"), rel.NullOf(rel.TInt)},
	}
	all := make([]int32, tbl.RowCount())
	for i := range all {
		all[i] = int32(i)
	}
	for col, cands := range lits {
		pos := tbl.ColIndex(col)
		for _, op := range ops {
			for _, lit := range cands {
				p := &sqlast.Pred{Kind: sqlast.PredCompare, Op: op, Value: lit,
					Col: sqlast.ColRef{Table: "K", Column: col}}
				k, err := compileColKernel(nil, p, tbl, sc)
				if err != nil {
					t.Fatalf("%s %v %v: compile: %v", col, op, lit, err)
				}
				if k == nil {
					t.Fatalf("%s %v %v: no kernel compiled", col, op, lit)
				}
				sel := append([]int32(nil), all...)
				got := k(sel)
				var want []int32
				for _, ri := range all {
					if matchCompare(tbl.ValueAt(int(ri), pos), op, lit) {
						want = append(want, ri)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s %v %v: kernel kept %d rows, matchCompare %d",
						col, op, lit, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s %v %v: survivor %d is row %d, want %d",
							col, op, lit, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestOrKernelEquivalence: the PredOr kernel matches row-at-a-time OR
// evaluation over multiple columns.
func TestOrKernelEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	tbl := kernelTable(r, 400)
	sc := newScope()
	sc.add("K", []string{"i", "f", "s", "dirty"})
	cols := []sqlast.ColRef{{Table: "K", Column: "i"}, {Table: "K", Column: "dirty"}}
	for _, op := range []sqlast.CmpOp{sqlast.OpEq, sqlast.OpGt} {
		p := &sqlast.Pred{Kind: sqlast.PredOr, Op: op, Value: rel.Int(2), Cols: cols}
		k, err := compileColKernel(nil, p, tbl, sc)
		if err != nil || k == nil {
			t.Fatalf("compile: k=%v err=%v", k, err)
		}
		sel := make([]int32, tbl.RowCount())
		for i := range sel {
			sel[i] = int32(i)
		}
		got := k(sel)
		var want []int32
		for ri := 0; ri < tbl.RowCount(); ri++ {
			for _, c := range cols {
				if matchCompare(tbl.ValueAt(ri, tbl.ColIndex(c.Column)), op, rel.Int(2)) {
					want = append(want, int32(ri))
					break
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("op %v: kernel kept %d, want %d", op, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("op %v: survivor %d = %d, want %d", op, i, got[i], want[i])
			}
		}
	}
}
