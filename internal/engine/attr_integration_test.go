package engine

import (
	"bytes"
	"testing"

	"repro/internal/schema"
	"repro/internal/xmlgen"
)

const attrXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
 <xs:element name="catalog">
  <xs:complexType>
   <xs:sequence>
    <xs:element name="product" minOccurs="0" maxOccurs="unbounded">
     <xs:complexType>
      <xs:sequence>
       <xs:element name="name" type="xs:string"/>
       <xs:element name="price" type="xs:decimal"/>
       <xs:element name="tag" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
      <xs:attribute name="sku" type="xs:string" use="required"/>
      <xs:attribute name="stock" type="xs:integer"/>
     </xs:complexType>
    </xs:element>
   </xs:sequence>
  </xs:complexType>
 </xs:element>
</xs:schema>`

// TestAttributePipeline drives XSD attributes through the whole stack:
// generation, XML serialization and re-parsing (attributes written as
// real XML attributes), shredding (attribute columns), translation
// (@sku steps), execution, and gold comparison.
func TestAttributePipeline(t *testing.T) {
	tree, err := schema.ParseXSDString(attrXSD)
	if err != nil {
		t.Fatal(err)
	}
	spec := xmlgen.NewGenSpec()
	g := xmlgen.NewGenerator(tree, spec, 5)
	doc := g.GenerateRootChildren(map[string]int{"product": 120})
	if err := doc.Validate(tree); err != nil {
		t.Fatal(err)
	}
	// Round trip through XML text: attributes must survive.
	var buf bytes.Buffer
	if err := xmlgen.WriteXML(&buf, doc); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte(`sku="`)) {
		t.Fatalf("attributes not serialized as XML attributes:\n%.300s", text)
	}
	doc2, err := xmlgen.ParseXML(tree, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline equivalence on attribute queries.
	tree2, err := schema.ParseXSDString(attrXSD)
	if err != nil {
		t.Fatal(err)
	}
	runPipeline(t, tree2, tree, doc2, []string{
		`//product[name >= "name-500"]/(@sku | price)`,
		`//product/@stock`,
		`//product[@stock >= 5000]/(name | tag)`,
	}, nil)
}
