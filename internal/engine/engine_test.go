package engine

import (
	"testing"

	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/sqlast"
	"repro/internal/stats"
)

// tinyDB builds a two-table parent/child database by hand.
func tinyDB() *rel.Database {
	db := rel.NewDatabase()
	parent := rel.NewTable("p", []rel.Column{
		{Name: "ID", Typ: rel.TInt},
		{Name: "PID", Typ: rel.TInt, Nullable: true},
		{Name: "name", Typ: rel.TString},
		{Name: "score", Typ: rel.TInt, Nullable: true},
	})
	for i := int64(1); i <= 6; i++ {
		score := rel.Int(i * 10)
		if i == 3 {
			score = rel.NullOf(rel.TInt)
		}
		parent.AppendRow([]rel.Value{rel.Int(i), rel.NullOf(rel.TInt), rel.Str("p" + rel.Int(i).String()), score})
	}
	child := rel.NewTable("c", []rel.Column{
		{Name: "ID", Typ: rel.TInt},
		{Name: "PID", Typ: rel.TInt},
		{Name: "tag", Typ: rel.TString},
	})
	id := int64(100)
	for i := int64(1); i <= 6; i++ {
		for k := int64(0); k < i%3; k++ {
			child.AppendRow([]rel.Value{rel.Int(id), rel.Int(i), rel.Str("t")})
			id++
		}
	}
	db.Add(parent)
	db.Add(child)
	return db
}

func planFor(t *testing.T, db *rel.Database, q *sqlast.Query, cfg *physical.Config) (*Built, *optimizer.Plan) {
	t.Helper()
	if cfg == nil {
		cfg = &physical.Config{}
	}
	built, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(stats.FromDatabase(db))
	plan, err := opt.PlanQuery(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return built, plan
}

func TestExecuteFilterNullSemantics(t *testing.T) {
	// score >= 0 must not match the NULL row.
	q := &sqlast.Query{Branches: []*sqlast.Select{{
		Items: []sqlast.SelectItem{{Col: &sqlast.ColRef{Table: "p", Column: "ID"}, As: "ID"}},
		From:  []string{"p"},
		Where: []sqlast.Pred{{Kind: sqlast.PredCompare, Op: sqlast.OpGe,
			Col: sqlast.ColRef{Table: "p", Column: "score"}, Value: rel.Int(0)}},
	}}, OrderBy: "ID"}
	built, plan := planFor(t, tinyDB(), q, nil)
	res, err := Execute(built, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d, want 5 (NULL score excluded)", len(res.Rows))
	}
}

func TestExecuteOrderByNullsFirst(t *testing.T) {
	q := &sqlast.Query{Branches: []*sqlast.Select{{
		Items: []sqlast.SelectItem{{Col: &sqlast.ColRef{Table: "p", Column: "score"}, As: "ID"}},
		From:  []string{"p"},
	}}, OrderBy: "ID"}
	built, plan := planFor(t, tinyDB(), q, nil)
	res, err := Execute(built, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Null {
		t.Errorf("NULL should sort first, got %v", res.Rows[0][0])
	}
	for i := 1; i < len(res.Rows)-1; i++ {
		if res.Rows[i][0].Compare(res.Rows[i+1][0]) > 0 {
			t.Errorf("rows out of order at %d", i)
		}
	}
}

func TestExecuteJoinNullPIDSkipped(t *testing.T) {
	// The parent rows have NULL PID; joining p.PID = c.ID must yield
	// nothing rather than matching NULLs.
	q := &sqlast.Query{Branches: []*sqlast.Select{{
		Items: []sqlast.SelectItem{{Col: &sqlast.ColRef{Table: "p", Column: "ID"}, As: "ID"}},
		From:  []string{"p", "c"},
		Where: []sqlast.Pred{{Kind: sqlast.PredJoin,
			Left:  sqlast.ColRef{Table: "p", Column: "PID"},
			Right: sqlast.ColRef{Table: "c", Column: "ID"}}},
	}}, OrderBy: "ID"}
	built, plan := planFor(t, tinyDB(), q, nil)
	res, err := Execute(built, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("NULL join keys matched: %d rows", len(res.Rows))
	}
}

func TestExecuteHashAndINLAgree(t *testing.T) {
	q := &sqlast.Query{Branches: []*sqlast.Select{{
		Items: []sqlast.SelectItem{
			{Col: &sqlast.ColRef{Table: "p", Column: "ID"}, As: "ID"},
			{Col: &sqlast.ColRef{Table: "c", Column: "tag"}, As: "tag"},
		},
		From: []string{"p", "c"},
		Where: []sqlast.Pred{{Kind: sqlast.PredJoin,
			Left:  sqlast.ColRef{Table: "c", Column: "PID"},
			Right: sqlast.ColRef{Table: "p", Column: "ID"}}},
	}}, OrderBy: "ID"}
	db := tinyDB()
	builtHash, planHash := planFor(t, db, q, nil)
	resHash, err := Execute(builtHash, planHash)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "cpid", Table: "c", Key: []string{"PID"}, Include: []string{"tag"}})
	builtINL, planINL := planFor(t, db, q, cfg)
	// Verify the INL path is actually taken.
	if planINL.Branches[0].Joins[0].Method != optimizer.JoinINL {
		t.Skip("optimizer chose hash even with index; nothing to compare")
	}
	resINL, err := Execute(builtINL, planINL)
	if err != nil {
		t.Fatal(err)
	}
	if len(resHash.Rows) != len(resINL.Rows) {
		t.Fatalf("hash %d rows vs INL %d rows", len(resHash.Rows), len(resINL.Rows))
	}
}

func TestExecuteExistsSemantics(t *testing.T) {
	// Parents with at least one child: i%3 != 0 -> 1,2,4,5 (i=3,6 have
	// zero children).
	q := &sqlast.Query{Branches: []*sqlast.Select{{
		Items: []sqlast.SelectItem{{Col: &sqlast.ColRef{Table: "p", Column: "ID"}, As: "ID"}},
		From:  []string{"p"},
		Where: []sqlast.Pred{{Kind: sqlast.PredExists,
			Table: "c", JoinCol: "PID",
			OuterCol: sqlast.ColRef{Table: "p", Column: "ID"}}},
	}}, OrderBy: "ID"}
	built, plan := planFor(t, tinyDB(), q, nil)
	res, err := Execute(built, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("exists rows = %d, want 4", len(res.Rows))
	}
}

func TestBuildRejectsBadStructures(t *testing.T) {
	db := tinyDB()
	cases := []*physical.Config{
		{Indexes: []*physical.Index{{Name: "x", Table: "nope", Key: []string{"ID"}}}},
		{Indexes: []*physical.Index{{Name: "x", Table: "p", Key: []string{"nope"}}}},
		{Indexes: []*physical.Index{{Name: "x", Table: "p", Key: []string{"ID"}, Include: []string{"nope"}}}},
		{Views: []*physical.View{{Name: "v", Outer: "nope", Inner: "c", OuterCols: []string{"ID"}, InnerCols: []string{"tag"}}}},
		{Views: []*physical.View{{Name: "v", Outer: "p", Inner: "c", OuterCols: []string{"nope"}, InnerCols: []string{"tag"}}}},
		{Partitions: []*physical.VPartition{{Table: "p", Groups: [][]string{{"nope"}}}}},
	}
	for i, cfg := range cases {
		if _, err := Build(db, cfg); err == nil {
			t.Errorf("case %d: want build error", i)
		}
	}
}

func TestBuiltIndexBytes(t *testing.T) {
	db := tinyDB()
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "x", Table: "p", Key: []string{"score"}, Include: []string{"name"}})
	built, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if built.StructBytes <= 0 {
		t.Error("index bytes not accounted")
	}
}

func TestScopeErrors(t *testing.T) {
	sc := newScope()
	sc.add("t", []string{"a", "b"})
	if _, err := sc.pos(sqlast.ColRef{Table: "t", Column: "a"}); err != nil {
		t.Errorf("pos: %v", err)
	}
	if _, err := sc.pos(sqlast.ColRef{Table: "t", Column: "z"}); err == nil {
		t.Error("want error for unknown column")
	}
	if _, err := sc.pos(sqlast.ColRef{Table: "u", Column: "a"}); err == nil {
		t.Error("want error for unknown table")
	}
}
