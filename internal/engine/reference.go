package engine

import (
	"fmt"
	"strconv"

	"repro/internal/optimizer"
	"repro/internal/rel"
	"repro/internal/sqlast"
)

// ExecuteReference runs an optimizer plan with the original
// row-at-a-time executor: every intermediate fully materialized,
// per-execution probe structures, sequential branches. It is retained
// as the correctness oracle for the batch executor — difftest and the
// equivalence tests assert that Execute produces bit-identical
// Cols/Rows/Stats — and as the "seed" side of the executor benchmarks.
func ExecuteReference(b *Built, plan *optimizer.Plan) (*Result, error) {
	res := &Result{Cols: plan.Query.OutputColumns()}
	for _, br := range plan.Branches {
		res.Stats.Branches++
		rows, err := execBranch(b, br, &res.Stats)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	if err := sortResult(res, plan.Query.OrderBy); err != nil {
		return nil, err
	}
	return res, nil
}

// execBranch runs one branch plan.
func execBranch(b *Built, br *optimizer.Branch, st *ExecStats) ([][]rel.Value, error) {
	sc := newScope()
	cols, rows, err := fetchAccess(b, br.Sel, br.Driver, st)
	if err != nil {
		return nil, err
	}
	sc.add(br.Driver.Table, cols)
	applied := make(map[int]bool)
	ex := &existsCache{b: b}
	rows, err = applyPreds(b, br.Sel, sc, rows, applied, ex, br.Driver.SeekPred)
	if err != nil {
		return nil, err
	}
	for _, j := range br.Joins {
		rows, err = execJoin(b, br.Sel, sc, rows, j, st)
		if err != nil {
			return nil, err
		}
		rows, err = applyPreds(b, br.Sel, sc, rows, applied, ex, br.Driver.SeekPred)
		if err != nil {
			return nil, err
		}
	}
	// Verify every predicate was applied (defensive: plans must cover
	// all conjuncts).
	for i := range br.Sel.Where {
		p := &br.Sel.Where[i]
		if p.Kind == sqlast.PredJoin || applied[i] || p == br.Driver.SeekPred {
			continue
		}
		return nil, fmt.Errorf("engine: predicate %s left unapplied", p)
	}
	// Projection.
	out := make([][]rel.Value, 0, len(rows))
	type proj struct {
		pos  int
		null bool
	}
	projs := make([]proj, len(br.Sel.Items))
	for i, it := range br.Sel.Items {
		if it.Col == nil {
			projs[i] = proj{null: true}
			continue
		}
		pos, err := sc.pos(*it.Col)
		if err != nil {
			return nil, err
		}
		projs[i] = proj{pos: pos}
	}
	for _, r := range rows {
		o := make([]rel.Value, len(projs))
		for i, p := range projs {
			if p.null {
				o[i] = rel.NullOf(rel.TString)
			} else {
				o[i] = r[p.pos]
			}
		}
		out = append(out, o)
	}
	return out, nil
}

// fetchAccess materializes the rows of an access path as combined
// tuples (a fresh slice of column names plus row slices).
func fetchAccess(b *Built, s *sqlast.Select, a optimizer.Access, st *ExecStats) ([]string, [][]rel.Value, error) {
	if len(a.PartGroups) > 0 {
		return fetchPartition(b, s, a, st)
	}
	var t *rel.Table
	if vt := b.ViewTable(a.Table); vt != nil {
		t = vt
	} else {
		t = b.DB.Table(a.Table)
	}
	if t == nil {
		return nil, nil, fmt.Errorf("engine: unknown table %s", a.Table)
	}
	if err := t.Hydrate(); err != nil {
		return nil, nil, err
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	if a.Kind == optimizer.AccessSeek {
		bi := b.Index(a.Index)
		if bi == nil {
			return nil, nil, fmt.Errorf("engine: index %s not built", a.Index.Name)
		}
		if a.SeekPred == nil {
			return nil, nil, fmt.Errorf("engine: seek access without predicate on %s", a.Table)
		}
		ids := bi.seekRange(opFromCmp(a.SeekPred.Op), a.SeekPred.Value)
		trows := t.Rows()
		rows := make([][]rel.Value, len(ids))
		for i, id := range ids {
			rows[i] = trows[id]
		}
		if st != nil {
			st.RowsSought += int64(len(rows))
		}
		return cols, rows, nil
	}
	trows := t.Rows()
	touchRows(trows)
	if st != nil {
		st.RowsScanned += int64(len(trows))
	}
	return cols, trows, nil
}

// fetchPartition zips the needed partition groups into combined rows.
func fetchPartition(b *Built, s *sqlast.Select, a optimizer.Access, st *ExecStats) ([]string, [][]rel.Value, error) {
	var cols []string
	var groupTables []*rel.Table
	for _, g := range a.PartGroups {
		gt := b.PartGroup(a.Table, g)
		if gt == nil {
			return nil, nil, fmt.Errorf("engine: partition group %d of %s not built", g, a.Table)
		}
		groupTables = append(groupTables, gt)
	}
	seen := make(map[string]bool)
	type src struct{ gi, ci int }
	var srcs []src
	for gi, gt := range groupTables {
		for ci, c := range gt.Columns {
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			cols = append(cols, c.Name)
			srcs = append(srcs, src{gi, ci})
		}
	}
	groupRows := make([][][]rel.Value, len(groupTables))
	for gi, gt := range groupTables {
		groupRows[gi] = gt.Rows()
	}
	n := groupTables[0].RowCount()
	rows := make([][]rel.Value, n)
	for i := 0; i < n; i++ {
		row := make([]rel.Value, len(srcs))
		for k, sr := range srcs {
			row[k] = groupRows[sr.gi][i][sr.ci]
		}
		rows[i] = row
	}
	if st != nil {
		st.RowsScanned += int64(n * len(groupTables))
	}
	return cols, rows, nil
}

// applyPreds evaluates every not-yet-applied predicate whose referenced
// tables are in scope.
func applyPreds(b *Built, s *sqlast.Select, sc *scope, rows [][]rel.Value,
	applied map[int]bool, ex *existsCache, seekPred *sqlast.Pred) ([][]rel.Value, error) {
	for i := range s.Where {
		p := &s.Where[i]
		if applied[i] || p.Kind == sqlast.PredJoin || p == seekPred {
			continue
		}
		if !predInScope(p, sc) {
			continue
		}
		f, err := compilePred(b, p, sc, ex)
		if err != nil {
			return nil, err
		}
		var kept [][]rel.Value
		for _, r := range rows {
			ok, err := f(r)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
		applied[i] = true
	}
	return rows, nil
}

// compilePred builds a tuple predicate evaluator.
func compilePred(b *Built, p *sqlast.Pred, sc *scope, ex *existsCache) (func([]rel.Value) (bool, error), error) {
	switch p.Kind {
	case sqlast.PredCompare:
		pos, err := sc.pos(p.Col)
		if err != nil {
			return nil, err
		}
		return func(r []rel.Value) (bool, error) {
			return matchCompare(r[pos], p.Op, p.Value), nil
		}, nil
	case sqlast.PredOr:
		positions, err := colPositions(sc, p.Cols)
		if err != nil {
			return nil, err
		}
		return func(r []rel.Value) (bool, error) {
			for _, pos := range positions {
				if matchCompare(r[pos], p.Op, p.Value) {
					return true, nil
				}
			}
			return false, nil
		}, nil
	case sqlast.PredExists, sqlast.PredOrExists:
		positions, err := colPositions(sc, p.Cols)
		if err != nil {
			return nil, err
		}
		outerPos, err := sc.pos(p.OuterCol)
		if err != nil {
			return nil, err
		}
		matcher, err := ex.matcher(p)
		if err != nil {
			return nil, err
		}
		return func(r []rel.Value) (bool, error) {
			for _, pos := range positions {
				if matchCompare(r[pos], p.Op, p.Value) {
					return true, nil
				}
			}
			return matcher(r[outerPos]), nil
		}, nil
	}
	return nil, fmt.Errorf("engine: cannot compile predicate %s", p)
}

// existsCache builds per-predicate semi-join probe structures lazily.
// Integer join keys (the common ID/PID case) get an int-keyed set and
// probe fast path mirroring the int-keyed hash join; everything else
// falls back to stringified keys.
type existsCache struct {
	b    *Built
	ints map[string]map[int64]bool
	strs map[string]map[string]bool
}

func (e *existsCache) matcher(p *sqlast.Pred) (func(rel.Value) bool, error) {
	t := e.b.DB.Table(p.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: EXISTS over unknown table %s", p.Table)
	}
	if err := t.Hydrate(); err != nil {
		return nil, err
	}
	key := p.String()
	if ints, ok := e.ints[key]; ok {
		return intSetMatcher(ints), nil
	}
	if strs, ok := e.strs[key]; ok {
		return strSetMatcher(strs), nil
	}
	ji := t.ColIndex(p.JoinCol)
	if ji < 0 {
		return nil, fmt.Errorf("engine: EXISTS join column %s.%s missing", p.Table, p.JoinCol)
	}
	vi := -1
	if p.InnerCol != "" {
		vi = t.ColIndex(p.InnerCol)
		if vi < 0 {
			return nil, fmt.Errorf("engine: EXISTS value column %s.%s missing", p.Table, p.InnerCol)
		}
	}
	trows := t.Rows()
	if t.Columns[ji].Typ == rel.TInt {
		if set, ok := buildIntExists(trows, ji, vi, p); ok {
			if e.ints == nil {
				e.ints = make(map[string]map[int64]bool)
			}
			e.ints[key] = set
			return intSetMatcher(set), nil
		}
	}
	set := buildStrExists(trows, ji, vi, p)
	if e.strs == nil {
		e.strs = make(map[string]map[string]bool)
	}
	e.strs[key] = set
	return strSetMatcher(set), nil
}

// buildIntExists builds an int-keyed EXISTS probe set; ok is false
// when a non-integer value appears in the declared-int join column
// (the caller then falls back to string keys, preserving the exact
// stringified-key semantics).
func buildIntExists(rows [][]rel.Value, ji, vi int, p *sqlast.Pred) (map[int64]bool, bool) {
	set := make(map[int64]bool)
	for _, row := range rows {
		if row[ji].Null {
			continue
		}
		if row[ji].Typ != rel.TInt {
			return nil, false
		}
		if vi >= 0 && !matchCompare(row[vi], p.Op, p.Value) {
			continue
		}
		set[row[ji].I] = true
	}
	return set, true
}

func buildStrExists(rows [][]rel.Value, ji, vi int, p *sqlast.Pred) map[string]bool {
	set := make(map[string]bool)
	for _, row := range rows {
		if row[ji].Null {
			continue
		}
		if vi >= 0 && !matchCompare(row[vi], p.Op, p.Value) {
			continue
		}
		set[row[ji].String()] = true
	}
	return set
}

func strSetMatcher(set map[string]bool) func(rel.Value) bool {
	return func(v rel.Value) bool {
		if v.Null {
			return false
		}
		return set[v.String()]
	}
}

// intSetMatcher probes an int-keyed set. Integer probes hit the map
// directly; any other probe value matches exactly when its string form
// is the canonical decimal rendering of a key — the same outcomes the
// stringified set produces, without stringifying every probe.
func intSetMatcher(set map[int64]bool) func(rel.Value) bool {
	return func(v rel.Value) bool {
		if v.Null {
			return false
		}
		if v.Typ == rel.TInt {
			return set[v.I]
		}
		return matchIntSetString(set, v)
	}
}

// matchIntSetString resolves a non-integer probe against an int-keyed
// set: it matches exactly when the probe's string form is the
// canonical decimal rendering of a present key.
func matchIntSetString(set map[int64]bool, v rel.Value) bool {
	s := v.String()
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil || strconv.FormatInt(i, 10) != s {
		return false
	}
	return set[i]
}

// execJoin performs one join step, producing combined tuples.
func execJoin(b *Built, s *sqlast.Select, sc *scope, outer [][]rel.Value, j optimizer.Join, st *ExecStats) ([][]rel.Value, error) {
	outerPos, err := sc.pos(j.OuterCol)
	if err != nil {
		return nil, err
	}
	switch j.Method {
	case optimizer.JoinINL:
		bi := b.Index(j.Inner.Index)
		if bi == nil {
			return nil, fmt.Errorf("engine: INL index %s not built", j.Inner.Index.Name)
		}
		t := bi.table
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
		sc.add(j.Inner.Table, cols)
		trows := t.Rows()
		var out [][]rel.Value
		for _, orow := range outer {
			v := orow[outerPos]
			if v.Null {
				continue
			}
			for _, rid := range bi.seekEqual(v) {
				if st != nil {
					st.RowsSought++
				}
				out = append(out, concatRows(orow, trows[rid]))
			}
		}
		return out, nil
	default: // hash join
		cols, innerRows, err := fetchAccess(b, s, j.Inner, st)
		if err != nil {
			return nil, err
		}
		// Inner join column position within the inner row layout.
		ji := -1
		for i, c := range cols {
			if c == j.InnerCol.Column {
				ji = i
				break
			}
		}
		if ji < 0 {
			return nil, fmt.Errorf("engine: join column %s missing from %s", j.InnerCol, j.Inner.Table)
		}
		sc.add(j.Inner.Table, cols)
		// Integer join keys (the common ID/PID case) use an int-keyed
		// hash table; everything else falls back to string keys.
		intKeys := len(innerRows) == 0 || innerRows[0][ji].Typ == rel.TInt
		var out [][]rel.Value
		if intKeys {
			// Chained hash table: head map plus a next-pointer array,
			// avoiding per-key slice allocations on the build side.
			head := make(map[int64]int32, len(innerRows))
			next := make([]int32, len(innerRows))
			for i, ir := range innerRows {
				if ir[ji].Null {
					next[i] = -1
					continue
				}
				k := ir[ji].I
				if prev, ok := head[k]; ok {
					next[i] = prev
				} else {
					next[i] = -1
				}
				head[k] = int32(i)
			}
			for _, orow := range outer {
				v := orow[outerPos]
				if v.Null || v.Typ != rel.TInt {
					continue
				}
				i, ok := head[v.I]
				for ok && i >= 0 {
					out = append(out, concatRows(orow, innerRows[i]))
					i = next[i]
				}
			}
			return out, nil
		}
		ht := make(map[string][][]rel.Value, len(innerRows))
		for _, ir := range innerRows {
			if ir[ji].Null {
				continue
			}
			k := ir[ji].String()
			ht[k] = append(ht[k], ir)
		}
		for _, orow := range outer {
			v := orow[outerPos]
			if v.Null {
				continue
			}
			for _, ir := range ht[v.String()] {
				out = append(out, concatRows(orow, ir))
			}
		}
		return out, nil
	}
}

func concatRows(a, b []rel.Value) []rel.Value {
	out := make([]rel.Value, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}
