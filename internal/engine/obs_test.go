package engine

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/xmlgen"
)

// TestStaleCacheDetected is the regression test for the stale-cache
// hazard: mutating a table after Build used to silently serve results
// from cached hash tables / probe sets / prepared plans built over the
// old rows. It must now be a loud error on the next execution.
func TestStaleCacheDetected(t *testing.T) {
	movieDoc := xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: 50, Seed: 7})
	built, plans := buildPlans(t, schema.Movie(), movieDoc, []string{
		`//movie[genre = "genre-03"]/(title | year | actor)`,
	}, nil)
	if _, err := Execute(built, plans[0]); err != nil {
		t.Fatalf("pre-mutation execute: %v", err)
	}

	// Mutate a base table the cached structures were derived from.
	mt := built.DB.Table("movie")
	if mt == nil {
		t.Fatal("movie table missing")
	}
	row := make([]rel.Value, len(mt.Columns))
	for i, c := range mt.Columns {
		row[i] = rel.NullOf(c.Typ)
	}
	mt.AppendRow(row)

	_, err := Execute(built, plans[0])
	if err == nil {
		t.Fatal("execute after mutation succeeded — stale cached structures were served")
	}
	if !strings.Contains(err.Error(), "mutated after Build") || !strings.Contains(err.Error(), "movie") {
		t.Errorf("stale-cache error not descriptive: %v", err)
	}

	// Re-sorting counts as a mutation too (row order feeds cached
	// structures), and a rebuilt configuration recovers.
	rebuilt, err := Build(built.DB, built.Config)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if _, err := Execute(rebuilt, plans[0]); err != nil {
		t.Fatalf("execute after rebuild: %v", err)
	}
	built.DB.Table("movie").SortByID()
	if _, err := Execute(rebuilt, plans[0]); err == nil {
		t.Fatal("execute after post-build SortByID succeeded")
	}
}

// TestCacheCounters pins the always-on hit/miss accounting of the
// plan-lifetime caches: one miss per structure, hits on every reuse.
func TestCacheCounters(t *testing.T) {
	movieDoc := xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: 50, Seed: 8})
	built, plans := buildPlans(t, schema.Movie(), movieDoc, []string{
		`//movie[genre = "genre-03"]/(title | year | actor)`,
	}, nil)
	for run := 0; run < 3; run++ {
		if _, err := Execute(built, plans[0]); err != nil {
			t.Fatal(err)
		}
	}
	cc := built.CacheCounters()
	if cc["prepared.misses"] != 1 {
		t.Errorf("prepared.misses = %d, want 1 (one compile per plan)", cc["prepared.misses"])
	}
	if cc["prepared.hits"] != 2 {
		t.Errorf("prepared.hits = %d, want 2 (two warm executions)", cc["prepared.hits"])
	}
	if cc["join.misses"] == 0 {
		t.Errorf("join.misses = 0, want >0 for a join-bearing plan: %v", cc)
	}
	// Compiling the same plan again only touches the prepared cache.
	if _, err := built.Prepared(plans[0]); err != nil {
		t.Fatal(err)
	}
	if again := built.CacheCounters(); again["prepared.hits"] != cc["prepared.hits"]+1 ||
		again["join.misses"] != cc["join.misses"] {
		t.Errorf("counters after warm Prepared: %v -> %v", cc, again)
	}
}

// TestExecutorObs attaches a tracer and registry and checks the span
// tree covers prepare, structure builds, and executions — and stays
// well-formed — and that registry counters mirror the cache and
// execution traffic.
func TestExecutorObs(t *testing.T) {
	movieDoc := xmlgen.GenerateMovie(schema.Movie(), xmlgen.MovieOptions{Movies: 50, Seed: 9})
	built, plans := buildPlans(t, schema.Movie(), movieDoc, []string{
		`//movie[genre = "genre-03"]/(title | year | actor)`,
		`//movie[year >= 2000]/(title | box_office)`,
	}, nil)
	tr := obs.New()
	reg := obs.NewRegistry()
	built.AttachObs(tr, reg)
	for run := 0; run < 2; run++ {
		for _, plan := range plans {
			if _, err := Execute(built, plan); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("executor span tree not well-formed: %v", err)
	}
	if got := len(tr.FindAll("executor.prepare")); got != len(plans) {
		t.Errorf("executor.prepare spans = %d, want %d", got, len(plans))
	}
	if got := len(tr.FindAll("executor.execute")); got != 2*len(plans) {
		t.Errorf("executor.execute spans = %d, want %d", got, 2*len(plans))
	}
	if len(tr.FindAll("executor.cache.build")) == 0 {
		t.Error("no executor.cache.build spans for join-bearing plans")
	}
	execs := tr.FindAll("executor.execute")
	if _, ok := execs[0].Attr("rows_out"); !ok {
		t.Errorf("execute span missing rows_out attr: %v", execs[0].AttrKeys())
	}
	if len(execs[0].AttrKeys()) == 0 || len(tr.FindAll("executor.branch")) == 0 {
		t.Error("execute spans missing branch children or attrs")
	}

	snap := reg.Snapshot()
	if snap["engine.exec.executions"] != float64(2*len(plans)) {
		t.Errorf("engine.exec.executions = %v, want %d", snap["engine.exec.executions"], 2*len(plans))
	}
	if snap["engine.cache.prepared.hits"] == 0 || snap["engine.cache.join.misses"] == 0 {
		t.Errorf("cache traffic not mirrored into registry: %v", snap)
	}
}
