package engine

import (
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// TestPartitionPruningReadsFewerRows ties the union-distribution
// benefit (Section 4.4's Q1 example) to observable work: under the
// distributed mapping, //movie/language scans only the has-language
// partition.
func TestPartitionPruningReadsFewerRows(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 400, Seed: 41})
	run := func(tree *schema.Tree) *Result {
		m, err := shred.Compile(tree)
		if err != nil {
			t.Fatal(err)
		}
		db, err := shred.Shred(m, doc)
		if err != nil {
			t.Fatal(err)
		}
		built, err := Build(db, &physical.Config{})
		if err != nil {
			t.Fatal(err)
		}
		opt := optimizer.New(stats.FromDatabase(db))
		sql, err := translate.Translate(m, xpath.MustParse(`//movie/language`))
		if err != nil {
			t.Fatal(err)
		}
		plan, err := opt.PlanQuery(sql, &physical.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(built, plan)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(schema.Movie())

	dist := schema.Movie()
	movie := dist.ElementsNamed("movie")[0]
	lang := dist.ElementsNamed("language")[0]
	movie.Distributions = []schema.Distribution{{Optionals: []int{lang.ID}}}
	pruned := run(dist)

	// The plain mapping emits an all-NULL row per movie without a
	// language (normalized away downstream); compare the non-NULL
	// results.
	count := func(r *Result) int {
		li := -1
		for i, c := range r.Cols {
			if c == "language" {
				li = i
			}
		}
		n := 0
		for _, row := range r.Rows {
			if !row[li].Null {
				n++
			}
		}
		return n
	}
	if count(plain) != count(pruned) {
		t.Fatalf("result counts differ: %d vs %d", count(plain), count(pruned))
	}
	if pruned.Stats.RowsScanned >= plain.Stats.RowsScanned {
		t.Errorf("partition pruning did not reduce scanned rows: %d vs %d",
			pruned.Stats.RowsScanned, plain.Stats.RowsScanned)
	}
	// Roughly: only ~50% of movies have language.
	if pruned.Stats.RowsScanned > plain.Stats.RowsScanned*7/10 {
		t.Errorf("pruning too weak: %d vs %d", pruned.Stats.RowsScanned, plain.Stats.RowsScanned)
	}
}

// TestIndexSeekAvoidsScan checks the seek path is observable in the
// counters.
func TestIndexSeekAvoidsScan(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 400, Seed: 42})
	m, _ := shred.Compile(schema.Movie())
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "t", Table: "movie", Key: []string{"title"},
		Include: []string{"ID", "year", "genre"}})
	built, err := Build(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(stats.FromDatabase(db))
	sql, err := translate.Translate(m, xpath.MustParse(`//movie[title = "Movie Title 000042"]/(year | genre)`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.PlanQuery(sql, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(built, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RowsScanned != 0 {
		t.Errorf("seek plan scanned %d rows", res.Stats.RowsScanned)
	}
	if res.Stats.RowsSought != 1 {
		t.Errorf("RowsSought = %d, want 1 (unique title)", res.Stats.RowsSought)
	}
	// The plan explanation names the seek.
	exp := plan.Explain()
	if !strings.Contains(exp, "INDEX SEEK") || !strings.Contains(exp, "COVERING") {
		t.Errorf("Explain missing seek: %s", exp)
	}
}

func TestExplainShapes(t *testing.T) {
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 100, Seed: 43})
	m, _ := shred.Compile(schema.Movie())
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(stats.FromDatabase(db))
	sql, err := translate.Translate(m, xpath.MustParse(`//movie[genre = "genre-03"]/(title | actor)`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.PlanQuery(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	exp := plan.Explain()
	for _, want := range []string{"PLAN", "BRANCH", "SCAN movie", "JOIN", "SORT BY ID"} {
		if !strings.Contains(exp, want) {
			t.Errorf("Explain missing %q:\n%s", want, exp)
		}
	}
}
