package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/rel"
	"repro/internal/sqlast"
)

// builtCaches holds the plan-lifetime execution structures of a Built:
// join hash tables keyed by (source, column), EXISTS probe sets keyed
// by predicate, zipped partition-group row sets, and compiled
// PreparedPlans keyed by plan fingerprint. Everything is built lazily
// on first use and shared across repeated executions and across plans
// over the same Built — the operator-state reuse half of the batch
// executor. Entries are single-flighted so parallel union branches
// never build the same structure twice.
//
// Caching is safe because a Built's data is immutable after Build;
// that used to be an unchecked convention, and mutating a table after
// a structure was cached silently served stale results. Every cache
// access now verifies the generation snapshot taken at Build time and
// fails loudly on post-build mutation (see Built.checkGenerations).
// Hit/miss traffic per cache kind is counted unconditionally (plain
// atomics, one add per access) and surfaces through CacheCounters,
// the obs registry, and execution spans. The simulated scan cost
// (touchRows) and the ExecStats accounting are NOT cached — every
// execution still pays the scan touch and counts the rows its plan
// reads, so measured execution time keeps the paper's scan/probe cost
// ratio and Stats stay bit-identical to the row-at-a-time reference
// executor.
type builtCaches struct {
	mu       sync.Mutex
	zips     map[string]*centry[*partZip]
	joins    map[string]*centry[*joinTable]
	exists   map[string]*centry[*existsSet]
	prepared map[string]*centry[*PreparedPlan]

	stats [ckindCount]cacheStat
}

// ckind indexes the per-kind hit/miss counters.
type ckind int

const (
	ckindZip ckind = iota
	ckindJoin
	ckindExists
	ckindPrepared
	ckindCount
)

func (k ckind) String() string {
	switch k {
	case ckindZip:
		return "zip"
	case ckindJoin:
		return "join"
	case ckindExists:
		return "exists"
	}
	return "prepared"
}

// cacheStat is one cache kind's traffic counters.
type cacheStat struct {
	hits, misses atomic.Int64
}

func newBuiltCaches() *builtCaches {
	return &builtCaches{
		zips:     make(map[string]*centry[*partZip]),
		joins:    make(map[string]*centry[*joinTable]),
		exists:   make(map[string]*centry[*existsSet]),
		prepared: make(map[string]*centry[*PreparedPlan]),
	}
}

// centry is a single-flighted cache entry: the first requester builds,
// everyone else waits on done.
type centry[T any] struct {
	done chan struct{}
	v    T
	err  error
}

// cacheGet serves one single-flighted lookup: exactly one miss is
// counted per key (recorded at reservation, under the lock — waiters
// that raced the builder count as hits), the stale-data guard runs on
// every access, and a miss optionally emits a cache.build span.
//
// Cancellation never poisons an entry: ctx is checked only before an
// entry is reserved and while *waiting* on someone else's build. Once
// this caller has reserved the entry it builds to completion and
// caches the result regardless of ctx, so a cancelled query leaves
// either no entry or a finished one — never a broken or abandoned
// entry — and the next caller gets a warm hit. Internal structure
// lookups during execution (zips, join tables, EXISTS sets) pass
// context.Background() for the same reason: a build already in the
// middle of a pipeline is cheaper to finish than to redo.
func cacheGet[T any](ctx context.Context, b *Built, m map[string]*centry[T], kind ckind, key string, build func() (T, error)) (T, error) {
	var zero T
	if err := b.checkGenerations(); err != nil {
		return zero, err
	}
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	c := b.caches
	c.mu.Lock()
	if e, ok := m[key]; ok {
		c.mu.Unlock()
		c.stats[kind].hits.Add(1)
		b.obsReg.Counter("engine.cache." + kind.String() + ".hits").Inc()
		select {
		case <-e.done:
			return e.v, e.err
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
	e := &centry[T]{done: make(chan struct{})}
	m[key] = e
	c.stats[kind].misses.Add(1)
	c.mu.Unlock()
	b.obsReg.Counter("engine.cache." + kind.String() + ".misses").Inc()
	sp := b.obsTracer.StartSpan("executor.cache.build",
		obs.String("kind", kind.String()), obs.String("key", key))
	e.v, e.err = build()
	if e.err != nil {
		sp.SetAttr(obs.String("error", e.err.Error()))
	}
	sp.End()
	close(e.done)
	return e.v, e.err
}

// CacheCounters reports hit/miss traffic per cache kind (keys like
// "join.hits", "prepared.misses") — always on, no obs attachment
// needed.
func (b *Built) CacheCounters() map[string]int64 {
	out := make(map[string]int64, 2*int(ckindCount))
	for k := ckind(0); k < ckindCount; k++ {
		out[k.String()+".hits"] = b.caches.stats[k].hits.Load()
		out[k.String()+".misses"] = b.caches.stats[k].misses.Load()
	}
	return out
}

// Prepared returns the compiled batch-executor form of the plan,
// compiling it once per plan fingerprint and Built.
func (b *Built) Prepared(plan *optimizer.Plan) (*PreparedPlan, error) {
	return b.PreparedContext(context.Background(), plan)
}

// PreparedContext is Prepared with cancellation: a cancelled ctx aborts
// before reserving a cache entry or while waiting on another caller's
// in-flight compilation, but never abandons a compilation this caller
// started (see cacheGet).
func (b *Built) PreparedContext(ctx context.Context, plan *optimizer.Plan) (*PreparedPlan, error) {
	return cacheGet(ctx, b, b.caches.prepared, ckindPrepared, plan.Fingerprint(), func() (*PreparedPlan, error) {
		sp := b.obsTracer.StartSpan("executor.prepare",
			obs.String("fingerprint", plan.Fingerprint()),
			obs.Int("branches", int64(len(plan.Branches))))
		pp, err := Prepare(b, plan)
		if err != nil {
			sp.SetAttr(obs.String("error", err.Error()))
		} else {
			var ops int
			for _, br := range pp.branches {
				ops += len(br.ops)
			}
			sp.SetAttr(obs.Int("operators", int64(ops)))
		}
		sp.End()
		return pp, err
	})
}

// partZip is a cached zip of a table's partition groups into combined
// rows (the per-execution work of the reference fetchPartition, done
// once per Built).
type partZip struct {
	cols []string
	rows [][]rel.Value
	// groups is the number of partition groups zipped; each execution
	// that reads the zip counts rows*groups scanned rows, exactly like
	// zipping afresh.
	groups int
}

func zipKey(table string, groups []int) string {
	return fmt.Sprintf("%s|%v", table, groups)
}

// partitionZip returns the cached zip of the given partition groups.
func (b *Built) partitionZip(table string, groups []int) (*partZip, error) {
	return cacheGet(context.Background(), b, b.caches.zips, ckindZip, zipKey(table, groups), func() (*partZip, error) {
		var groupTables []*rel.Table
		for _, g := range groups {
			gt := b.PartGroup(table, g)
			if gt == nil {
				return nil, fmt.Errorf("engine: partition group %d of %s not built", g, table)
			}
			groupTables = append(groupTables, gt)
		}
		z := &partZip{groups: len(groupTables)}
		seen := make(map[string]bool)
		type src struct{ gi, ci int }
		var srcs []src
		for gi, gt := range groupTables {
			for ci, c := range gt.Columns {
				if seen[c.Name] {
					continue
				}
				seen[c.Name] = true
				z.cols = append(z.cols, c.Name)
				srcs = append(srcs, src{gi, ci})
			}
		}
		groupRows := make([][][]rel.Value, len(groupTables))
		for gi, gt := range groupTables {
			groupRows[gi] = gt.Rows()
		}
		n := groupTables[0].RowCount()
		z.rows = make([][]rel.Value, n)
		arena := make([]rel.Value, n*len(srcs))
		for i := 0; i < n; i++ {
			row := arena[i*len(srcs) : (i+1)*len(srcs) : (i+1)*len(srcs)]
			for k, sr := range srcs {
				row[k] = groupRows[sr.gi][i][sr.ci]
			}
			z.rows[i] = row
		}
		return z, nil
	})
}

// joinTable is a cached hash-join build side over a row source.
// Integer keys (the common ID/PID case) use the chained head/next
// layout of the reference executor — probing walks the chain in the
// same (reverse-build) order, so join output ordering is bit-identical.
// String keys map to row indices in build order, likewise matching the
// reference.
type joinTable struct {
	rows    [][]rel.Value
	intKeys bool
	head    map[int64]int32
	next    []int32
	str     map[string][]int32
}

func buildJoinTable(rows [][]rel.Value, ji int) *joinTable {
	jt := &joinTable{rows: rows}
	jt.intKeys = len(rows) == 0 || rows[0][ji].Typ == rel.TInt
	if jt.intKeys {
		jt.head = make(map[int64]int32, len(rows))
		jt.next = make([]int32, len(rows))
		for i, ir := range rows {
			if ir[ji].Null {
				jt.next[i] = -1
				continue
			}
			k := ir[ji].I
			if prev, ok := jt.head[k]; ok {
				jt.next[i] = prev
			} else {
				jt.next[i] = -1
			}
			jt.head[k] = int32(i)
		}
		return jt
	}
	jt.str = make(map[string][]int32, len(rows))
	for i, ir := range rows {
		if ir[ji].Null {
			continue
		}
		k := ir[ji].String()
		jt.str[k] = append(jt.str[k], int32(i))
	}
	return jt
}

// hashJoinTable returns the cached build side for joining against the
// named row source on the given column. srcKey identifies the row
// source (base table, view, or partition zip) within the Built.
func (b *Built) hashJoinTable(srcKey, col string, rows [][]rel.Value, ji int) (*joinTable, error) {
	return cacheGet(context.Background(), b, b.caches.joins, ckindJoin, srcKey+"|c:"+col, func() (*joinTable, error) {
		return buildJoinTable(rows, ji), nil
	})
}

// existsSet is a cached EXISTS semi-join probe set with the same
// int-keyed fast path as the hash join: declared-integer join columns
// probe a map[int64] directly instead of stringifying every value.
type existsSet struct {
	ints map[int64]bool
	strs map[string]bool
}

func (e *existsSet) match(v rel.Value) bool {
	if v.Null {
		return false
	}
	if e.ints != nil {
		if v.Typ == rel.TInt {
			return e.ints[v.I]
		}
		return matchIntSetString(e.ints, v)
	}
	return e.strs[v.String()]
}

// existsProbeSet returns the cached probe set for an EXISTS predicate.
// The key is the predicate's canonical SQL rendering, which pins the
// inner table, join column, and any inner-value restriction — the same
// identity the reference executor's per-execution cache used.
func (b *Built) existsProbeSet(p *sqlast.Pred) (*existsSet, error) {
	return cacheGet(context.Background(), b, b.caches.exists, ckindExists, "exists:"+p.String(), func() (*existsSet, error) {
		t := b.DB.Table(p.Table)
		if t == nil {
			return nil, fmt.Errorf("engine: EXISTS over unknown table %s", p.Table)
		}
		if err := t.Hydrate(); err != nil {
			return nil, err
		}
		ji := t.ColIndex(p.JoinCol)
		if ji < 0 {
			return nil, fmt.Errorf("engine: EXISTS join column %s.%s missing", p.Table, p.JoinCol)
		}
		vi := -1
		if p.InnerCol != "" {
			vi = t.ColIndex(p.InnerCol)
			if vi < 0 {
				return nil, fmt.Errorf("engine: EXISTS value column %s.%s missing", p.Table, p.InnerCol)
			}
		}
		rows := t.Rows()
		if t.Columns[ji].Typ == rel.TInt {
			if ints, ok := buildIntExists(rows, ji, vi, p); ok {
				return &existsSet{ints: ints}, nil
			}
		}
		return &existsSet{strs: buildStrExists(rows, ji, vi, p)}, nil
	})
}

// CachedStructures reports the cache population (zips, join tables,
// exists sets, prepared plans) — observability for tests and tools.
func (b *Built) CachedStructures() map[string]int {
	b.caches.mu.Lock()
	defer b.caches.mu.Unlock()
	return map[string]int{
		"partZips":   len(b.caches.zips),
		"joinTables": len(b.caches.joins),
		"existsSets": len(b.caches.exists),
		"prepared":   len(b.caches.prepared),
	}
}

// CacheKeys returns the sorted join-table cache keys (test hook).
func (b *Built) CacheKeys() []string {
	b.caches.mu.Lock()
	defer b.caches.mu.Unlock()
	keys := make([]string, 0, len(b.caches.joins))
	for k := range b.caches.joins {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
