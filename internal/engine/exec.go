package engine

import (
	"fmt"
	"sort"

	"repro/internal/optimizer"
	"repro/internal/rel"
	"repro/internal/sqlast"
)

// ExecStats counts the work an execution performed; tests use it to
// assert that physical designs actually reduce data access (e.g.
// partition pruning reads fewer rows).
type ExecStats struct {
	// RowsScanned counts rows produced by heap/partition scans.
	RowsScanned int64
	// RowsSought counts rows fetched through index seeks and probes.
	RowsSought int64
	// Branches counts executed union branches.
	Branches int64
}

// Result is the output of executing a sorted outer-union query.
type Result struct {
	// Cols are the output column names.
	Cols []string
	// Rows are the output tuples, ordered by the ORDER BY column.
	Rows [][]rel.Value
	// Stats counts the work performed.
	Stats ExecStats
}

// Execute runs an optimizer plan over the built database.
func Execute(b *Built, plan *optimizer.Plan) (*Result, error) {
	res := &Result{Cols: plan.Query.OutputColumns()}
	for _, br := range plan.Branches {
		res.Stats.Branches++
		rows, err := execBranch(b, br, &res.Stats)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	if plan.Query.OrderBy != "" {
		oi := -1
		for i, c := range res.Cols {
			if c == plan.Query.OrderBy {
				oi = i
				break
			}
		}
		if oi < 0 {
			return nil, fmt.Errorf("engine: ORDER BY column %s missing from output", plan.Query.OrderBy)
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			return res.Rows[i][oi].Compare(res.Rows[j][oi]) < 0
		})
	}
	return res, nil
}

// scope tracks the combined tuple layout during branch execution:
// table name -> column name -> offset in the combined tuple.
type scope struct {
	offsets map[string]map[string]int
	width   int
}

func newScope() *scope { return &scope{offsets: make(map[string]map[string]int)} }

func (sc *scope) add(table string, cols []string) {
	m := make(map[string]int, len(cols))
	for i, c := range cols {
		m[c] = sc.width + i
	}
	sc.offsets[table] = m
	sc.width += len(cols)
}

func (sc *scope) pos(c sqlast.ColRef) (int, error) {
	m, ok := sc.offsets[c.Table]
	if !ok {
		return 0, fmt.Errorf("engine: table %s not in scope", c.Table)
	}
	i, ok := m[c.Column]
	if !ok {
		return 0, fmt.Errorf("engine: column %s not in scope", c)
	}
	return i, nil
}

func (sc *scope) has(table string) bool { _, ok := sc.offsets[table]; return ok }

// execBranch runs one branch plan.
func execBranch(b *Built, br *optimizer.Branch, st *ExecStats) ([][]rel.Value, error) {
	sc := newScope()
	cols, rows, err := fetchAccess(b, br.Sel, br.Driver, st)
	if err != nil {
		return nil, err
	}
	sc.add(br.Driver.Table, cols)
	applied := make(map[int]bool)
	ex := &existsCache{b: b}
	rows, err = applyPreds(b, br.Sel, sc, rows, applied, ex, br.Driver.SeekPred)
	if err != nil {
		return nil, err
	}
	for _, j := range br.Joins {
		rows, err = execJoin(b, br.Sel, sc, rows, j, st)
		if err != nil {
			return nil, err
		}
		rows, err = applyPreds(b, br.Sel, sc, rows, applied, ex, br.Driver.SeekPred)
		if err != nil {
			return nil, err
		}
	}
	// Verify every predicate was applied (defensive: plans must cover
	// all conjuncts).
	for i := range br.Sel.Where {
		p := &br.Sel.Where[i]
		if p.Kind == sqlast.PredJoin || applied[i] || p == br.Driver.SeekPred {
			continue
		}
		return nil, fmt.Errorf("engine: predicate %s left unapplied", p)
	}
	// Projection.
	out := make([][]rel.Value, 0, len(rows))
	type proj struct {
		pos  int
		null bool
	}
	projs := make([]proj, len(br.Sel.Items))
	for i, it := range br.Sel.Items {
		if it.Col == nil {
			projs[i] = proj{null: true}
			continue
		}
		pos, err := sc.pos(*it.Col)
		if err != nil {
			return nil, err
		}
		projs[i] = proj{pos: pos}
	}
	for _, r := range rows {
		o := make([]rel.Value, len(projs))
		for i, p := range projs {
			if p.null {
				o[i] = rel.NullOf(rel.TString)
			} else {
				o[i] = r[p.pos]
			}
		}
		out = append(out, o)
	}
	return out, nil
}

// fetchAccess materializes the rows of an access path as combined
// tuples (a fresh slice of column names plus row slices).
func fetchAccess(b *Built, s *sqlast.Select, a optimizer.Access, st *ExecStats) ([]string, [][]rel.Value, error) {
	if len(a.PartGroups) > 0 {
		return fetchPartition(b, s, a, st)
	}
	var t *rel.Table
	if vt := b.ViewTable(a.Table); vt != nil {
		t = vt
	} else {
		t = b.DB.Table(a.Table)
	}
	if t == nil {
		return nil, nil, fmt.Errorf("engine: unknown table %s", a.Table)
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	if a.Kind == optimizer.AccessSeek {
		bi := b.Index(a.Index)
		if bi == nil {
			return nil, nil, fmt.Errorf("engine: index %s not built", a.Index.Name)
		}
		if a.SeekPred == nil {
			return nil, nil, fmt.Errorf("engine: seek access without predicate on %s", a.Table)
		}
		ids := bi.seekRange(opFromCmp(a.SeekPred.Op), a.SeekPred.Value)
		rows := make([][]rel.Value, len(ids))
		for i, id := range ids {
			rows[i] = t.Rows[id]
		}
		if st != nil {
			st.RowsSought += int64(len(rows))
		}
		return cols, rows, nil
	}
	touchRows(t.Rows)
	if st != nil {
		st.RowsScanned += int64(len(t.Rows))
	}
	return cols, t.Rows, nil
}

// scanSink absorbs the byte-touching work of heap scans so the
// compiler cannot elide it.
var scanSink int64

// scanTouchPasses calibrates the simulated sequential-read bandwidth
// of heap scans. The paper's substrate is a disk-resident system where
// scanning a page costs far more than a hash-table operation; an
// in-memory row store inverts that balance, so heap scans here touch
// every byte several times to restore the ratio (roughly emulating a
// few hundred MB/s of effective scan bandwidth against in-memory joins).
const scanTouchPasses = 8

// touchRows makes heap scans cost work proportional to the scanned
// byte volume, like the page reads of a disk-resident system: a wider
// table is slower to scan even when the query projects few columns.
// Without this, in-memory scans are width-oblivious and the paper's
// untuned-mapping comparisons (Section 1.1) lose their crossover.
func touchRows(rows [][]rel.Value) {
	var sink int64
	for pass := 0; pass < scanTouchPasses; pass++ {
		for _, row := range rows {
			for i := range row {
				v := &row[i]
				if v.Typ == rel.TString && !v.Null {
					for j := 0; j < len(v.S); j++ {
						sink += int64(v.S[j])
					}
				} else {
					sink += 8
				}
			}
		}
	}
	scanSink += sink
}

// fetchPartition zips the needed partition groups into combined rows.
func fetchPartition(b *Built, s *sqlast.Select, a optimizer.Access, st *ExecStats) ([]string, [][]rel.Value, error) {
	var cols []string
	var groupTables []*rel.Table
	for _, g := range a.PartGroups {
		gt := b.PartGroup(a.Table, g)
		if gt == nil {
			return nil, nil, fmt.Errorf("engine: partition group %d of %s not built", g, a.Table)
		}
		groupTables = append(groupTables, gt)
	}
	seen := make(map[string]bool)
	type src struct{ gi, ci int }
	var srcs []src
	for gi, gt := range groupTables {
		for ci, c := range gt.Columns {
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			cols = append(cols, c.Name)
			srcs = append(srcs, src{gi, ci})
		}
	}
	n := groupTables[0].RowCount()
	rows := make([][]rel.Value, n)
	for i := 0; i < n; i++ {
		row := make([]rel.Value, len(srcs))
		for k, sr := range srcs {
			row[k] = groupTables[sr.gi].Rows[i][sr.ci]
		}
		rows[i] = row
	}
	if st != nil {
		st.RowsScanned += int64(n * len(groupTables))
	}
	return cols, rows, nil
}

// applyPreds evaluates every not-yet-applied predicate whose referenced
// tables are in scope.
func applyPreds(b *Built, s *sqlast.Select, sc *scope, rows [][]rel.Value,
	applied map[int]bool, ex *existsCache, seekPred *sqlast.Pred) ([][]rel.Value, error) {
	for i := range s.Where {
		p := &s.Where[i]
		if applied[i] || p.Kind == sqlast.PredJoin || p == seekPred {
			continue
		}
		if !predInScope(p, sc) {
			continue
		}
		f, err := compilePred(b, p, sc, ex)
		if err != nil {
			return nil, err
		}
		var kept [][]rel.Value
		for _, r := range rows {
			ok, err := f(r)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
		applied[i] = true
	}
	return rows, nil
}

func predInScope(p *sqlast.Pred, sc *scope) bool {
	switch p.Kind {
	case sqlast.PredCompare:
		return sc.has(p.Col.Table)
	case sqlast.PredOr:
		return len(p.Cols) > 0 && sc.has(p.Cols[0].Table)
	case sqlast.PredExists, sqlast.PredOrExists:
		if !sc.has(p.OuterCol.Table) {
			return false
		}
		for _, c := range p.Cols {
			if !sc.has(c.Table) {
				return false
			}
		}
		return true
	}
	return false
}

// compilePred builds a tuple predicate evaluator.
func compilePred(b *Built, p *sqlast.Pred, sc *scope, ex *existsCache) (func([]rel.Value) (bool, error), error) {
	switch p.Kind {
	case sqlast.PredCompare:
		pos, err := sc.pos(p.Col)
		if err != nil {
			return nil, err
		}
		return func(r []rel.Value) (bool, error) {
			return matchCompare(r[pos], p.Op, p.Value), nil
		}, nil
	case sqlast.PredOr:
		positions, err := colPositions(sc, p.Cols)
		if err != nil {
			return nil, err
		}
		return func(r []rel.Value) (bool, error) {
			for _, pos := range positions {
				if matchCompare(r[pos], p.Op, p.Value) {
					return true, nil
				}
			}
			return false, nil
		}, nil
	case sqlast.PredExists, sqlast.PredOrExists:
		positions, err := colPositions(sc, p.Cols)
		if err != nil {
			return nil, err
		}
		outerPos, err := sc.pos(p.OuterCol)
		if err != nil {
			return nil, err
		}
		matcher, err := ex.matcher(p)
		if err != nil {
			return nil, err
		}
		return func(r []rel.Value) (bool, error) {
			for _, pos := range positions {
				if matchCompare(r[pos], p.Op, p.Value) {
					return true, nil
				}
			}
			return matcher(r[outerPos]), nil
		}, nil
	}
	return nil, fmt.Errorf("engine: cannot compile predicate %s", p)
}

func colPositions(sc *scope, cols []sqlast.ColRef) ([]int, error) {
	out := make([]int, len(cols))
	for i, c := range cols {
		pos, err := sc.pos(c)
		if err != nil {
			return nil, err
		}
		out[i] = pos
	}
	return out, nil
}

func matchCompare(v rel.Value, op sqlast.CmpOp, lit rel.Value) bool {
	if v.Null || lit.Null {
		return false
	}
	return op.Matches(v.Compare(lit))
}

// existsCache builds per-predicate semi-join probe structures lazily.
type existsCache struct {
	b     *Built
	cache map[string]map[string]bool
}

func (e *existsCache) matcher(p *sqlast.Pred) (func(rel.Value) bool, error) {
	t := e.b.DB.Table(p.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: EXISTS over unknown table %s", p.Table)
	}
	key := p.String()
	if e.cache == nil {
		e.cache = make(map[string]map[string]bool)
	}
	set, ok := e.cache[key]
	if !ok {
		ji := t.ColIndex(p.JoinCol)
		if ji < 0 {
			return nil, fmt.Errorf("engine: EXISTS join column %s.%s missing", p.Table, p.JoinCol)
		}
		vi := -1
		if p.InnerCol != "" {
			vi = t.ColIndex(p.InnerCol)
			if vi < 0 {
				return nil, fmt.Errorf("engine: EXISTS value column %s.%s missing", p.Table, p.InnerCol)
			}
		}
		set = make(map[string]bool)
		for _, row := range t.Rows {
			if row[ji].Null {
				continue
			}
			if vi >= 0 && !matchCompare(row[vi], p.Op, p.Value) {
				continue
			}
			set[row[ji].String()] = true
		}
		e.cache[key] = set
	}
	return func(v rel.Value) bool {
		if v.Null {
			return false
		}
		return set[v.String()]
	}, nil
}

// execJoin performs one join step, producing combined tuples.
func execJoin(b *Built, s *sqlast.Select, sc *scope, outer [][]rel.Value, j optimizer.Join, st *ExecStats) ([][]rel.Value, error) {
	outerPos, err := sc.pos(j.OuterCol)
	if err != nil {
		return nil, err
	}
	switch j.Method {
	case optimizer.JoinINL:
		bi := b.Index(j.Inner.Index)
		if bi == nil {
			return nil, fmt.Errorf("engine: INL index %s not built", j.Inner.Index.Name)
		}
		t := bi.table
		cols := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
		sc.add(j.Inner.Table, cols)
		var out [][]rel.Value
		for _, orow := range outer {
			v := orow[outerPos]
			if v.Null {
				continue
			}
			for _, rid := range bi.seekEqual(v) {
				if st != nil {
					st.RowsSought++
				}
				out = append(out, concatRows(orow, t.Rows[rid]))
			}
		}
		return out, nil
	default: // hash join
		cols, innerRows, err := fetchAccess(b, s, j.Inner, st)
		if err != nil {
			return nil, err
		}
		// Inner join column position within the inner row layout.
		ji := -1
		for i, c := range cols {
			if c == j.InnerCol.Column {
				ji = i
				break
			}
		}
		if ji < 0 {
			return nil, fmt.Errorf("engine: join column %s missing from %s", j.InnerCol, j.Inner.Table)
		}
		sc.add(j.Inner.Table, cols)
		// Integer join keys (the common ID/PID case) use an int-keyed
		// hash table; everything else falls back to string keys.
		intKeys := len(innerRows) == 0 || innerRows[0][ji].Typ == rel.TInt
		var out [][]rel.Value
		if intKeys {
			// Chained hash table: head map plus a next-pointer array,
			// avoiding per-key slice allocations on the build side.
			head := make(map[int64]int32, len(innerRows))
			next := make([]int32, len(innerRows))
			for i, ir := range innerRows {
				if ir[ji].Null {
					next[i] = -1
					continue
				}
				k := ir[ji].I
				if prev, ok := head[k]; ok {
					next[i] = prev
				} else {
					next[i] = -1
				}
				head[k] = int32(i)
			}
			for _, orow := range outer {
				v := orow[outerPos]
				if v.Null || v.Typ != rel.TInt {
					continue
				}
				i, ok := head[v.I]
				for ok && i >= 0 {
					out = append(out, concatRows(orow, innerRows[i]))
					i = next[i]
				}
			}
			return out, nil
		}
		ht := make(map[string][][]rel.Value, len(innerRows))
		for _, ir := range innerRows {
			if ir[ji].Null {
				continue
			}
			ht[ir[ji].String()] = append(ht[ir[ji].String()], ir)
		}
		for _, orow := range outer {
			v := orow[outerPos]
			if v.Null {
				continue
			}
			for _, ir := range ht[v.String()] {
				out = append(out, concatRows(orow, ir))
			}
		}
		return out, nil
	}
}

func concatRows(a, b []rel.Value) []rel.Value {
	out := make([]rel.Value, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func opFromCmp(op sqlast.CmpOp) opKind {
	switch op {
	case sqlast.OpEq:
		return opEq
	case sqlast.OpLt:
		return opLt
	case sqlast.OpLe:
		return opLe
	case sqlast.OpGt:
		return opGt
	}
	return opGe
}
