package engine

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/optimizer"
	"repro/internal/rel"
	"repro/internal/sqlast"
)

// ExecStats counts the work an execution performed; tests use it to
// assert that physical designs actually reduce data access (e.g.
// partition pruning reads fewer rows).
type ExecStats struct {
	// RowsScanned counts rows produced by heap/partition scans.
	RowsScanned int64
	// RowsSought counts rows fetched through index seeks and probes.
	RowsSought int64
	// Branches counts executed union branches.
	Branches int64
}

// add accumulates another branch's counters.
func (s *ExecStats) add(o ExecStats) {
	s.RowsScanned += o.RowsScanned
	s.RowsSought += o.RowsSought
	s.Branches += o.Branches
}

// Result is the output of executing a sorted outer-union query.
type Result struct {
	// Cols are the output column names.
	Cols []string
	// Rows are the output tuples, ordered by the ORDER BY column.
	Rows [][]rel.Value
	// Stats counts the work performed.
	Stats ExecStats
}

// Execute runs an optimizer plan over the built database through the
// pipelined batch executor. The compiled form of the plan and its
// probe structures (join hash tables, EXISTS sets, partition zips) are
// cached on the Built, so repeated executions of the same plan — and
// other plans touching the same tables — reuse them.
func Execute(b *Built, plan *optimizer.Plan) (*Result, error) {
	return ExecuteContext(context.Background(), b, plan)
}

// ExecuteContext is Execute with cancellation: ctx aborts both the
// wait for plan compilation and the execution itself (see
// PreparedPlan.ExecuteContext). A cancelled call never poisons the
// Built's structure caches — in-flight builds always complete for the
// next caller.
func ExecuteContext(ctx context.Context, b *Built, plan *optimizer.Plan) (*Result, error) {
	pp, err := b.PreparedContext(ctx, plan)
	if err != nil {
		return nil, err
	}
	return pp.ExecuteContext(ctx)
}

// scope tracks the combined tuple layout during branch execution:
// table name -> column name -> offset in the combined tuple.
type scope struct {
	offsets map[string]map[string]int
	width   int
}

func newScope() *scope { return &scope{offsets: make(map[string]map[string]int)} }

func (sc *scope) add(table string, cols []string) {
	m := make(map[string]int, len(cols))
	for i, c := range cols {
		m[c] = sc.width + i
	}
	sc.offsets[table] = m
	sc.width += len(cols)
}

func (sc *scope) pos(c sqlast.ColRef) (int, error) {
	m, ok := sc.offsets[c.Table]
	if !ok {
		return 0, fmt.Errorf("engine: table %s not in scope", c.Table)
	}
	i, ok := m[c.Column]
	if !ok {
		return 0, fmt.Errorf("engine: column %s not in scope", c)
	}
	return i, nil
}

func (sc *scope) has(table string) bool { _, ok := sc.offsets[table]; return ok }

// scanSink absorbs the byte-touching work of heap scans so the
// compiler cannot elide it. It is updated atomically: union branches
// may scan in parallel.
var scanSink atomic.Int64

// scanTouchPasses calibrates the simulated sequential-read bandwidth
// of heap scans. The paper's substrate is a disk-resident system where
// scanning a page costs far more than a hash-table operation; an
// in-memory row store inverts that balance, so heap scans here touch
// every byte several times to restore the ratio (roughly emulating a
// few hundred MB/s of effective scan bandwidth against in-memory joins).
const scanTouchPasses = 8

// touchRows makes heap scans cost work proportional to the scanned
// byte volume, like the page reads of a disk-resident system: a wider
// table is slower to scan even when the query projects few columns.
// Without this, in-memory scans are width-oblivious and the paper's
// untuned-mapping comparisons (Section 1.1) lose their crossover. The
// batch executor calls it once per batch of scanned rows, so the
// simulated read cost stays attached to the scan that incurs it even
// when downstream operators reuse cached structures.
func touchRows(rows [][]rel.Value) {
	var sink int64
	for pass := 0; pass < scanTouchPasses; pass++ {
		for _, row := range rows {
			for i := range row {
				v := &row[i]
				if v.Typ == rel.TString && !v.Null {
					for j := 0; j < len(v.S); j++ {
						sink += int64(v.S[j])
					}
				} else {
					sink += 8
				}
			}
		}
	}
	scanSink.Add(sink)
}

// touchTable is touchRows over columnar storage: the same simulated
// per-byte scan cost for rows [lo, hi), read straight from the column
// vectors — numeric cells cost one unit of work per cell per pass,
// string cells one per byte — without materializing a row. Columns
// holding exception values (appends that don't round-trip through the
// typed vectors) fall back to per-cell materialization so the charged
// work matches the row store exactly.
func touchTable(t *rel.Table, lo, hi int) {
	if lo >= hi {
		return
	}
	var sink int64
	for pass := 0; pass < scanTouchPasses; pass++ {
		for ci := range t.Columns {
			if codes, dict, nulls, ok := t.StrCol(ci); ok {
				strs := dict.Strs()
				for r := lo; r < hi; r++ {
					if nulls.Get(r) {
						sink += 8
						continue
					}
					s := strs[codes[r]]
					for j := 0; j < len(s); j++ {
						sink += int64(s[j])
					}
				}
				continue
			}
			if t.Columns[ci].Typ != rel.TString {
				if _, _, ok := t.IntCol(ci); ok {
					for r := lo; r < hi; r++ {
						sink += 8
					}
					continue
				}
				if _, _, ok := t.FloatCol(ci); ok {
					for r := lo; r < hi; r++ {
						sink += 8
					}
					continue
				}
			}
			// Exception fallback: charge each cell like touchRows would.
			for r := lo; r < hi; r++ {
				v := t.ValueAt(r, ci)
				if v.Typ == rel.TString && !v.Null {
					for j := 0; j < len(v.S); j++ {
						sink += int64(v.S[j])
					}
				} else {
					sink += 8
				}
			}
		}
	}
	scanSink.Add(sink)
}

func predInScope(p *sqlast.Pred, sc *scope) bool {
	switch p.Kind {
	case sqlast.PredCompare:
		return sc.has(p.Col.Table)
	case sqlast.PredOr:
		return len(p.Cols) > 0 && sc.has(p.Cols[0].Table)
	case sqlast.PredExists, sqlast.PredOrExists:
		if !sc.has(p.OuterCol.Table) {
			return false
		}
		for _, c := range p.Cols {
			if !sc.has(c.Table) {
				return false
			}
		}
		return true
	}
	return false
}

func colPositions(sc *scope, cols []sqlast.ColRef) ([]int, error) {
	out := make([]int, len(cols))
	for i, c := range cols {
		pos, err := sc.pos(c)
		if err != nil {
			return nil, err
		}
		out[i] = pos
	}
	return out, nil
}

func matchCompare(v rel.Value, op sqlast.CmpOp, lit rel.Value) bool {
	if v.Null || lit.Null {
		return false
	}
	return op.Matches(v.Compare(lit))
}

// sortResult applies the final ORDER BY of the sorted outer union.
func sortResult(res *Result, orderBy string) error {
	if orderBy == "" {
		return nil
	}
	oi := -1
	for i, c := range res.Cols {
		if c == orderBy {
			oi = i
			break
		}
	}
	if oi < 0 {
		return fmt.Errorf("engine: ORDER BY column %s missing from output", orderBy)
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		return res.Rows[i][oi].Compare(res.Rows[j][oi]) < 0
	})
	return nil
}

func opFromCmp(op sqlast.CmpOp) opKind {
	switch op {
	case sqlast.OpEq:
		return opEq
	case sqlast.OpLt:
		return opLt
	case sqlast.OpLe:
		return opLe
	case sqlast.OpGt:
		return opGt
	}
	return opGe
}
