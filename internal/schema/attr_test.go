package schema

import (
	"strings"
	"testing"
)

const attrXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
 <xs:element name="catalog">
  <xs:complexType>
   <xs:sequence>
    <xs:element name="product" minOccurs="0" maxOccurs="unbounded">
     <xs:complexType>
      <xs:sequence>
       <xs:element name="name" type="xs:string"/>
       <xs:element name="price" type="xs:decimal"/>
      </xs:sequence>
      <xs:attribute name="sku" type="xs:string" use="required"/>
      <xs:attribute name="stock" type="xs:integer"/>
     </xs:complexType>
    </xs:element>
   </xs:sequence>
  </xs:complexType>
 </xs:element>
</xs:schema>`

func TestParseXSDAttributes(t *testing.T) {
	tr, err := ParseXSDString(attrXSD)
	if err != nil {
		t.Fatal(err)
	}
	sku := tr.ElementsNamed("@sku")
	if len(sku) != 1 || !sku[0].IsLeaf() {
		t.Fatalf("@sku not parsed as a leaf: %v", sku)
	}
	if sku[0].IsOptional() {
		t.Error("required attribute parsed as optional")
	}
	stock := tr.ElementsNamed("@stock")
	if len(stock) != 1 || !stock[0].IsOptional() {
		t.Fatal("@stock should be an optional leaf")
	}
	if stock[0].LeafBase() != BaseInt {
		t.Error("@stock should be integer-typed")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAttributeXSDRoundTrip(t *testing.T) {
	tr, err := ParseXSDString(attrXSD)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteXSD(&b, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `<xs:attribute name="sku"`) {
		t.Fatalf("attributes not serialized:\n%s", b.String())
	}
	back, err := ParseXSDString(b.String())
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, b.String())
	}
	if len(back.ElementsNamed("@sku")) != 1 || len(back.ElementsNamed("@stock")) != 1 {
		t.Error("attributes lost in round trip")
	}
}
