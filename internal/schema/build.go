package schema

import (
	"fmt"
	"strings"
)

// Builder helpers for constructing schema trees in Go code. Nodes get
// their IDs when the root is passed to NewTree.

// Elem constructs an element node with the given content children.
func Elem(name string, children ...*Node) *Node {
	return &Node{Kind: KindElement, Name: name, Children: children}
}

// TypedElem constructs an element node carrying a shared type name.
func TypedElem(name, typeName string, children ...*Node) *Node {
	n := Elem(name, children...)
	n.TypeName = typeName
	return n
}

// Leaf constructs a leaf element with simple content of the given base
// type.
func Leaf(name string, base BaseType) *Node {
	return Elem(name, &Node{Kind: KindSimple, Base: base})
}

// TypedLeaf constructs a leaf element carrying a shared type name.
func TypedLeaf(name string, base BaseType, typeName string) *Node {
	n := Leaf(name, base)
	n.TypeName = typeName
	return n
}

// Seq constructs a sequence (",") constructor.
func Seq(children ...*Node) *Node {
	return &Node{Kind: KindSequence, Children: children}
}

// Choice constructs a choice ("|") constructor.
func Choice(children ...*Node) *Node {
	return &Node{Kind: KindChoice, Children: children}
}

// Opt constructs an option ("?") constructor: minOccurs=0, maxOccurs=1.
func Opt(child *Node) *Node {
	return &Node{Kind: KindOption, Children: []*Node{child}, MinOccurs: 0, MaxOccurs: 1}
}

// Rep constructs an unbounded repetition ("*") constructor.
func Rep(child *Node) *Node {
	return &Node{Kind: KindRepetition, Children: []*Node{child}, MinOccurs: 0, MaxOccurs: Unbounded}
}

// RepN constructs a bounded repetition with maxOccurs = max.
func RepN(child *Node, max int) *Node {
	return &Node{Kind: KindRepetition, Children: []*Node{child}, MinOccurs: 0, MaxOccurs: max}
}

// ApplyHybridInlining annotates the tree per the hybrid-inlining
// mapping of Shanmugasundaram et al. [20]: only nodes that must be
// mapped to separate relations (the root and set-valued elements) are
// annotated; everything else is inlined. Set-valued occurrences of the
// same shared type receive the same annotation, so shared types land in
// one relation. Existing annotations, distributions, and split counts
// are cleared. The tree is modified in place and also returned.
func ApplyHybridInlining(t *Tree) *Tree {
	byType := make(map[string]string) // TypeName -> annotation
	used := make(map[string]int)      // annotation base name -> count
	t.Walk(func(n *Node) {
		if n.Kind != KindElement {
			return
		}
		n.Annotation = ""
		n.Distributions = nil
		n.SplitCount = 0
		if !n.MustAnnotate() {
			return
		}
		if n.TypeName != "" {
			if ann, ok := byType[n.TypeName]; ok {
				n.Annotation = ann
				return
			}
		}
		ann := uniqueAnnotation(n.Name, used)
		n.Annotation = ann
		if n.TypeName != "" {
			byType[n.TypeName] = ann
		}
	})
	return t
}

// ApplyFullySplit annotates every element node with a unique annotation
// (all possible outlining and type-split transformations applied,
// Section 4.1). Distributions and split counts are cleared; statistics
// are collected at this finest granularity.
func ApplyFullySplit(t *Tree) *Tree {
	used := make(map[string]int)
	t.Walk(func(n *Node) {
		if n.Kind != KindElement {
			return
		}
		n.Distributions = nil
		n.SplitCount = 0
		n.Annotation = uniqueAnnotation(n.Name, used)
	})
	return t
}

// ApplyFullInlining removes every annotation that is not mandatory,
// producing the fully inlined schema T0 of Theorem 1. Distributions and
// split counts on inlined nodes are dropped; those on mandatory nodes
// are preserved. Shared-type mandatory nodes keep their (possibly
// distinct) annotations.
func ApplyFullInlining(t *Tree) *Tree {
	t.Walk(func(n *Node) {
		if n.Kind != KindElement || n.MustAnnotate() {
			return
		}
		n.Annotation = ""
		n.Distributions = nil
		n.SplitCount = 0
	})
	return t
}

// uniqueAnnotation derives an annotation from an element name, adding
// a numeric suffix when the bare name was already used (title, title1,
// title2, ...).
func uniqueAnnotation(name string, used map[string]int) string {
	base := strings.ToLower(strings.TrimPrefix(name, "@"))
	n := used[base]
	used[base] = n + 1
	if n == 0 {
		return base
	}
	return fmt.Sprintf("%s%d", base, n)
}

// DBLP builds the DBLP schema of Fig. 1a: a dblp root with repeated
// inproceedings and book elements. The two title elements and the two
// author elements are shared types; author is set-valued; book has an
// optional booktitle. Annotations follow hybrid inlining, with the two
// author occurrences sharing the author relation and book's title
// outlined as "title1" exactly as in the figure.
func DBLP() *Tree {
	inproc := Elem("inproceedings",
		Seq(
			TypedLeaf("title", BaseString, "Title"),
			Leaf("booktitle", BaseString),
			Leaf("year", BaseInt),
			Leaf("pages", BaseString),
			Opt(Leaf("ee", BaseString)),
			Opt(Leaf("cdrom", BaseString)),
			Opt(Leaf("url", BaseString)),
			Rep(TypedLeaf("author", BaseString, "Author")),
			Rep(TypedLeaf("cite", BaseString, "Cite")),
			Rep(TypedLeaf("editor", BaseString, "Editor")),
		),
	)
	book := Elem("book",
		Seq(
			TypedLeaf("title", BaseString, "Title"),
			Opt(Leaf("booktitle", BaseString)),
			Leaf("year", BaseInt),
			Leaf("publisher", BaseString),
			Opt(Leaf("isbn", BaseString)),
			Opt(Leaf("price", BaseFloat)),
			Rep(TypedLeaf("author", BaseString, "Author")),
			Rep(TypedLeaf("cite", BaseString, "Cite")),
			Rep(TypedLeaf("editor", BaseString, "Editor")),
		),
	)
	root := Elem("dblp", Seq(Rep(inproc), Rep(book)))
	t := NewTree(root)
	ApplyHybridInlining(t)
	// Fig. 1a outlines book's title with annotation "title1" while
	// inproceedings' title stays inlined: the canonical shared-type pair
	// that type merge can only reach after an inline (Section 3.3).
	for _, n := range t.ElementsNamed("title") {
		if n.ElementParent() != nil && n.ElementParent().Name == "book" {
			n.Annotation = "title1"
		}
	}
	if err := t.Validate(); err != nil {
		panic("schema: DBLP schema invalid: " + err.Error())
	}
	return t
}

// Movie builds the Movie schema of Fig. 1b: a movies root with
// repeated movie elements holding title, year, repeated aka_title,
// optional avg_rating, a (box_office | seasons) choice, repeated
// director and actor (shared Person type), and a few scalar fields.
func Movie() *Tree {
	movie := Elem("movie",
		Seq(
			Leaf("title", BaseString),
			Leaf("year", BaseInt),
			Rep(Leaf("aka_title", BaseString)),
			Opt(Leaf("avg_rating", BaseFloat)),
			Choice(Leaf("box_office", BaseInt), Leaf("seasons", BaseInt)),
			Rep(TypedLeaf("director", BaseString, "Person")),
			Rep(TypedLeaf("actor", BaseString, "Person")),
			Leaf("genre", BaseString),
			Leaf("country", BaseString),
			Opt(Leaf("language", BaseString)),
			Opt(Leaf("runtime", BaseInt)),
		),
	)
	root := Elem("movies", Seq(Rep(movie)))
	t := NewTree(root)
	ApplyHybridInlining(t)
	// Keep director and actor in separate relations by default (they
	// are shared types, so type merge is available as a transformation).
	for _, n := range t.ElementsNamed("actor") {
		n.Annotation = "actor"
	}
	for _, n := range t.ElementsNamed("director") {
		n.Annotation = "director"
	}
	if err := t.Validate(); err != nil {
		panic("schema: Movie schema invalid: " + err.Error())
	}
	return t
}
