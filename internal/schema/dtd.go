package schema

import (
	"fmt"
	"io"
	"strings"
)

// This file implements DTD input (footnote 3 of the paper: "Our work
// also applies to XML data with DTD by first transforming DTD to
// XSD"): a parser for element declarations with sequence, choice,
// optional (?), and repetition (* and +) content particles, converted
// directly into the schema-tree form. #PCDATA elements become string
// leaves; occurrence markers become option/repetition constructors.
//
// Supported syntax:
//
//	<!ELEMENT movies (movie*)>
//	<!ELEMENT movie (title, year, aka_title*, avg_rating?, (box_office | seasons))>
//	<!ELEMENT title (#PCDATA)>
//
// Attributes (<!ATTLIST>) and entities are ignored; mixed content
// other than pure #PCDATA is rejected.

// ParseDTD reads a DTD and returns the schema tree rooted at the given
// element, with hybrid-inlining annotations applied.
func ParseDTD(r io.Reader, root string) (*Tree, error) {
	text, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dtd: %w", err)
	}
	decls, err := parseDTDDecls(string(text))
	if err != nil {
		return nil, err
	}
	if _, ok := decls[root]; !ok {
		return nil, fmt.Errorf("dtd: root element %q not declared", root)
	}
	b := &dtdBuilder{decls: decls, building: make(map[string]bool)}
	rootNode, err := b.element(root)
	if err != nil {
		return nil, err
	}
	t := NewTree(rootNode)
	ApplyHybridInlining(t)
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("dtd: invalid schema: %w", err)
	}
	return t, nil
}

// ParseDTDString is ParseDTD over a string.
func ParseDTDString(s, root string) (*Tree, error) {
	return ParseDTD(strings.NewReader(s), root)
}

type dtdBuilder struct {
	decls    map[string]string
	building map[string]bool
}

// element expands one element declaration to a schema node.
func (b *dtdBuilder) element(name string) (*Node, error) {
	content, ok := b.decls[name]
	if !ok {
		return nil, fmt.Errorf("dtd: element %q referenced but not declared", name)
	}
	if b.building[name] {
		return nil, fmt.Errorf("dtd: recursive element %q (recursion is out of scope, Section 2.1)", name)
	}
	b.building[name] = true
	defer delete(b.building, name)
	if content == "(#PCDATA)" || content == "#PCDATA" {
		return Leaf(name, BaseString), nil
	}
	if content == "EMPTY" {
		return Elem(name), nil
	}
	p := &dtdParser{src: content}
	particle, err := p.particle(b)
	if err != nil {
		return nil, fmt.Errorf("dtd: element %q: %w", name, err)
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("dtd: element %q: trailing content model %q", name, p.src[p.pos:])
	}
	return Elem(name, particle), nil
}

// parseDTDDecls extracts <!ELEMENT name model> declarations.
func parseDTDDecls(text string) (map[string]string, error) {
	decls := make(map[string]string)
	rest := text
	for {
		i := strings.Index(rest, "<!ELEMENT")
		if i < 0 {
			break
		}
		rest = rest[i+len("<!ELEMENT"):]
		j := strings.IndexByte(rest, '>')
		if j < 0 {
			return nil, fmt.Errorf("dtd: unterminated <!ELEMENT declaration")
		}
		decl := strings.TrimSpace(rest[:j])
		rest = rest[j+1:]
		fields := strings.Fields(decl)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dtd: malformed declaration %q", decl)
		}
		name := fields[0]
		model := strings.TrimSpace(strings.TrimPrefix(decl, name))
		if _, dup := decls[name]; dup {
			return nil, fmt.Errorf("dtd: element %q declared twice", name)
		}
		decls[name] = model
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations found")
	}
	return decls, nil
}

type dtdParser struct {
	src string
	pos int
}

// particle parses a parenthesized group with its occurrence marker.
func (p *dtdParser) particle(b *dtdBuilder) (*Node, error) {
	p.ws()
	if p.peek() != '(' {
		return nil, fmt.Errorf("expected '(' at %d", p.pos)
	}
	p.pos++
	var children []*Node
	sep := byte(0)
	for {
		p.ws()
		var child *Node
		var err error
		if p.peek() == '(' {
			child, err = p.particle(b)
		} else {
			child, err = p.name(b)
		}
		if err != nil {
			return nil, err
		}
		children = append(children, child)
		p.ws()
		switch p.peek() {
		case ',', '|':
			c := p.peek()
			if sep != 0 && sep != c {
				return nil, fmt.Errorf("mixed ',' and '|' at %d (parenthesize)", p.pos)
			}
			sep = c
			p.pos++
		case ')':
			p.pos++
			var group *Node
			if len(children) == 1 {
				group = children[0]
			} else if sep == '|' {
				group = Choice(children...)
			} else {
				group = Seq(children...)
			}
			return p.occurs(group), nil
		default:
			return nil, fmt.Errorf("expected ',', '|' or ')' at %d", p.pos)
		}
	}
}

// name parses an element reference with its occurrence marker.
func (p *dtdParser) name(b *dtdBuilder) (*Node, error) {
	start := p.pos
	for p.pos < len(p.src) && isDTDNameChar(p.src[p.pos]) {
		p.pos++
	}
	if start == p.pos {
		return nil, fmt.Errorf("expected element name at %d", p.pos)
	}
	name := p.src[start:p.pos]
	if name == "#PCDATA" {
		return nil, fmt.Errorf("mixed content is not supported")
	}
	n, err := b.element(name)
	if err != nil {
		return nil, err
	}
	return p.occurs(n), nil
}

// occurs wraps a node according to the trailing ?, *, or + marker.
func (p *dtdParser) occurs(n *Node) *Node {
	switch p.peek() {
	case '?':
		p.pos++
		return Opt(n)
	case '*':
		p.pos++
		return Rep(n)
	case '+':
		p.pos++
		r := Rep(n)
		r.MinOccurs = 1
		return r
	}
	return n
}

func (p *dtdParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *dtdParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func isDTDNameChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == '#' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
