package schema

import (
	"strings"
	"testing"
)

const movieDTD = `
<!ELEMENT movies (movie*)>
<!ELEMENT movie (title, year, aka_title*, avg_rating?, (box_office | seasons), actor+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT aka_title (#PCDATA)>
<!ELEMENT avg_rating (#PCDATA)>
<!ELEMENT box_office (#PCDATA)>
<!ELEMENT seasons (#PCDATA)>
<!ELEMENT actor (#PCDATA)>
`

func TestParseDTD(t *testing.T) {
	tr, err := ParseDTDString(movieDTD, "movies")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Name != "movies" {
		t.Fatalf("root = %s", tr.Root.Name)
	}
	movie := tr.ElementsNamed("movie")
	if len(movie) != 1 || !movie[0].IsSetValued() {
		t.Fatal("movie should be one set-valued element")
	}
	if !tr.ElementsNamed("avg_rating")[0].IsOptional() {
		t.Error("avg_rating should be optional")
	}
	if tr.ElementsNamed("box_office")[0].UnderChoice() == nil {
		t.Error("box_office should be under a choice")
	}
	actor := tr.ElementsNamed("actor")[0]
	if !actor.IsSetValued() {
		t.Error("actor+ should be set-valued")
	}
	// + has minOccurs 1.
	for p := actor.Parent; p != nil; p = p.Parent {
		if p.Kind == KindRepetition {
			if p.MinOccurs != 1 {
				t.Errorf("actor+ minOccurs = %d", p.MinOccurs)
			}
			break
		}
	}
	// Hybrid annotations applied.
	if movie[0].Annotation == "" || tr.ElementsNamed("aka_title")[0].Annotation == "" {
		t.Error("hybrid annotations missing")
	}
	// All #PCDATA elements are string leaves.
	if !tr.ElementsNamed("title")[0].IsLeaf() {
		t.Error("title should be a leaf")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseDTDNestedGroups(t *testing.T) {
	dtd := `
	<!ELEMENT r (a, (b | (c, d))*, e?)>
	<!ELEMENT a (#PCDATA)>
	<!ELEMENT b (#PCDATA)>
	<!ELEMENT c (#PCDATA)>
	<!ELEMENT d (#PCDATA)>
	<!ELEMENT e (#PCDATA)>
	`
	tr, err := ParseDTDString(dtd, "r")
	if err != nil {
		t.Fatal(err)
	}
	b := tr.ElementsNamed("b")[0]
	if !b.IsSetValued() || b.UnderChoice() == nil {
		t.Error("b should be set-valued under a choice")
	}
	c := tr.ElementsNamed("c")[0]
	if !c.IsSetValued() {
		t.Error("c should be set-valued (inside repeated group)")
	}
}

func TestParseDTDErrors(t *testing.T) {
	cases := map[string]struct{ dtd, root string }{
		"missing root":      {`<!ELEMENT a (#PCDATA)>`, "r"},
		"undeclared ref":    {`<!ELEMENT r (a)>`, "r"},
		"recursive":         {`<!ELEMENT r (r?, a)> <!ELEMENT a (#PCDATA)>`, "r"},
		"mixed separators":  {`<!ELEMENT r (a, b | c)> <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)>`, "r"},
		"no declarations":   {`hello`, "r"},
		"duplicate element": {`<!ELEMENT r (a)> <!ELEMENT a (#PCDATA)> <!ELEMENT a (#PCDATA)>`, "r"},
		"mixed content":     {`<!ELEMENT r (#PCDATA | a)*> <!ELEMENT a (#PCDATA)>`, "r"},
	}
	for name, c := range cases {
		if _, err := ParseDTDString(c.dtd, c.root); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestDTDToXSDRoundTrip(t *testing.T) {
	tr, err := ParseDTDString(movieDTD, "movies")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteXSD(&b, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ParseXSDString(b.String())
	if err != nil {
		t.Fatalf("DTD -> XSD -> parse failed: %v\n%s", err, b.String())
	}
	if len(back.Elements()) != len(tr.Elements()) {
		t.Errorf("element count changed: %d -> %d", len(tr.Elements()), len(back.Elements()))
	}
}
