package schema

import (
	"strings"
	"testing"
)

func TestDBLPValid(t *testing.T) {
	tr := DBLP()
	if err := tr.Validate(); err != nil {
		t.Fatalf("DBLP schema invalid: %v", err)
	}
	if tr.Root.Name != "dblp" {
		t.Errorf("root = %q, want dblp", tr.Root.Name)
	}
}

func TestMovieValid(t *testing.T) {
	tr := Movie()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Movie schema invalid: %v", err)
	}
}

func TestDBLPSharedTypes(t *testing.T) {
	tr := DBLP()
	groups := tr.SharedTypeGroups()
	for _, name := range []string{"Title", "Author", "Cite", "Editor"} {
		if len(groups[name]) != 2 {
			t.Errorf("shared type %s has %d occurrences, want 2", name, len(groups[name]))
		}
	}
}

func TestDBLPAnnotations(t *testing.T) {
	tr := DBLP()
	// The two author occurrences share one annotation (hybrid inlining
	// merges shared set-valued types).
	authors := tr.ElementsNamed("author")
	if len(authors) != 2 {
		t.Fatalf("got %d author nodes, want 2", len(authors))
	}
	if authors[0].Annotation == "" || authors[0].Annotation != authors[1].Annotation {
		t.Errorf("author annotations %q and %q, want equal and non-empty",
			authors[0].Annotation, authors[1].Annotation)
	}
	// Book's title is outlined as title1; inproceedings' title inlined.
	titles := tr.ElementsNamed("title")
	var bookTitle, inprocTitle *Node
	for _, n := range titles {
		switch n.ElementParent().Name {
		case "book":
			bookTitle = n
		case "inproceedings":
			inprocTitle = n
		}
	}
	if bookTitle == nil || bookTitle.Annotation != "title1" {
		t.Errorf("book title annotation = %v, want title1", bookTitle)
	}
	if inprocTitle == nil || inprocTitle.Annotation != "" {
		t.Errorf("inproceedings title should be inlined")
	}
}

func TestMustAnnotate(t *testing.T) {
	tr := Movie()
	for _, n := range tr.Elements() {
		switch n.Name {
		case "movies", "movie", "aka_title", "director", "actor":
			if !n.MustAnnotate() {
				t.Errorf("%s must be annotated (root or set-valued)", n.Name)
			}
		default:
			if n.MustAnnotate() {
				t.Errorf("%s should be inlineable", n.Name)
			}
		}
	}
}

func TestOptionalAndChoice(t *testing.T) {
	tr := Movie()
	rating := tr.ElementsNamed("avg_rating")[0]
	if !rating.IsOptional() {
		t.Errorf("avg_rating should be optional")
	}
	box := tr.ElementsNamed("box_office")[0]
	if box.UnderChoice() == nil {
		t.Errorf("box_office should be under a choice")
	}
	if box.IsOptional() {
		t.Errorf("box_office is a choice branch, not an optional")
	}
	title := tr.ElementsNamed("title")[0]
	if title.IsOptional() || title.IsSetValued() || title.UnderChoice() != nil {
		t.Errorf("movie/title should be a plain required leaf")
	}
	aka := tr.ElementsNamed("aka_title")[0]
	if !aka.IsSetValued() {
		t.Errorf("aka_title should be set-valued")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := DBLP()
	cl := tr.Clone()
	// Same IDs, distinct nodes.
	for _, n := range tr.Elements() {
		m := cl.Node(n.ID)
		if m == nil {
			t.Fatalf("clone lost node %d (%s)", n.ID, n.Name)
		}
		if m == n {
			t.Fatalf("clone shares node %d", n.ID)
		}
		if m.Name != n.Name || m.Annotation != n.Annotation {
			t.Fatalf("clone node %d differs: %s/%s vs %s/%s", n.ID, m.Name, m.Annotation, n.Name, n.Annotation)
		}
	}
	// Mutating the clone must not affect the original.
	cl.ElementsNamed("year")[0].Annotation = "zzz"
	for _, n := range tr.ElementsNamed("year") {
		if n.Annotation == "zzz" {
			t.Fatal("clone mutation leaked into original")
		}
	}
}

func TestCloneDistributions(t *testing.T) {
	tr := Movie()
	movie := tr.ElementsNamed("movie")[0]
	choice := tr.ElementsNamed("box_office")[0].UnderChoice()
	movie.Distributions = []Distribution{{Choice: choice.ID}}
	cl := tr.Clone()
	m2 := cl.Node(movie.ID)
	if len(m2.Distributions) != 1 || m2.Distributions[0].Choice != choice.ID {
		t.Fatalf("distributions not cloned: %+v", m2.Distributions)
	}
	m2.Distributions[0].Choice = 0
	if movie.Distributions[0].Choice == 0 {
		t.Fatal("distribution mutation leaked into original")
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("unannotated set-valued", func(t *testing.T) {
		tr := NewTree(Elem("r", Seq(Rep(Leaf("x", BaseString)))))
		tr.Root.Annotation = "r"
		if err := tr.Validate(); err == nil {
			t.Error("want error for unannotated set-valued element")
		}
	})
	t.Run("shared annotation across distinct types", func(t *testing.T) {
		a := Leaf("a", BaseString)
		b := Leaf("b", BaseInt)
		tr := NewTree(Elem("r", Seq(Rep(a), Rep(b))))
		tr.Root.Annotation = "r"
		a.Annotation = "same"
		b.Annotation = "same"
		if err := tr.Validate(); err == nil {
			t.Error("want error for shared annotation on non-equivalent types")
		}
	})
	t.Run("split on non-leaf", func(t *testing.T) {
		inner := Elem("x", Seq(Leaf("y", BaseString)))
		tr := NewTree(Elem("r", Seq(Rep(inner))))
		tr.Root.Annotation = "r"
		inner.Annotation = "x"
		inner.SplitCount = 3
		if err := tr.Validate(); err == nil {
			t.Error("want error for repetition split on non-leaf")
		}
	})
	t.Run("distribution on unannotated node", func(t *testing.T) {
		tr := Movie()
		title := tr.ElementsNamed("title")[0]
		title.Distributions = []Distribution{{Optionals: []int{tr.ElementsNamed("avg_rating")[0].ID}}}
		if err := tr.Validate(); err == nil {
			t.Error("want error for distribution on unannotated element")
		}
	})
	t.Run("implicit union on non-optional", func(t *testing.T) {
		tr := Movie()
		movie := tr.ElementsNamed("movie")[0]
		movie.Distributions = []Distribution{{Optionals: []int{tr.ElementsNamed("title")[0].ID}}}
		if err := tr.Validate(); err == nil {
			t.Error("want error for implicit union on required element")
		}
	})
}

func TestDistributionKey(t *testing.T) {
	d1 := Distribution{Optionals: []int{3, 1, 2}}
	d2 := Distribution{Optionals: []int{1, 2, 3}}
	if d1.Key() != d2.Key() {
		t.Errorf("keys differ for same optional set: %q vs %q", d1.Key(), d2.Key())
	}
	d3 := Distribution{Choice: 7}
	if d3.Key() == d1.Key() {
		t.Error("choice and implicit keys must differ")
	}
}

func TestApplyFullySplit(t *testing.T) {
	tr := Movie()
	ApplyFullySplit(tr)
	seen := make(map[string]bool)
	for _, n := range tr.Elements() {
		if n.Annotation == "" {
			t.Fatalf("fully split left %s unannotated", n.Path())
		}
		if seen[n.Annotation] {
			t.Fatalf("fully split reused annotation %q", n.Annotation)
		}
		seen[n.Annotation] = true
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("fully split invalid: %v", err)
	}
}

func TestApplyFullInlining(t *testing.T) {
	tr := DBLP() // has book title outlined as title1
	ApplyFullInlining(tr)
	for _, n := range tr.Elements() {
		if n.MustAnnotate() && n.Annotation == "" {
			t.Fatalf("full inlining removed a mandatory annotation on %s", n.Path())
		}
		if !n.MustAnnotate() && n.Annotation != "" {
			t.Fatalf("full inlining left %s annotated %q", n.Path(), n.Annotation)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("fully inlined invalid: %v", err)
	}
}

func TestTreeString(t *testing.T) {
	s := Movie().String()
	for _, want := range []string{"movie", "aka_title{aka_title}*", "avg_rating?", "(box_office|seasons)"} {
		if !strings.Contains(s, want) {
			t.Errorf("tree string %q missing %q", s, want)
		}
	}
}

// TestSignature pins the properties the memoization cache key relies
// on: the signature is stable across Clone (so re-derived candidate
// trees hit the cache) and distinguishes every logical-design decision
// — annotations, repetition splits, and union distributions — that
// changes the resulting mapping.
func TestSignature(t *testing.T) {
	base := Movie()
	if got, want := base.Signature(), base.Clone().Signature(); got != want {
		t.Errorf("clone changed signature:\n%s\n%s", want, got)
	}
	distinct := map[string]string{"base": base.Signature()}
	check := func(label string, tr *Tree) {
		sig := tr.Signature()
		for prev, psig := range distinct {
			if sig == psig {
				t.Errorf("%s and %s share a signature: %s", label, prev, sig)
			}
		}
		distinct[label] = sig
	}

	split := base.Clone()
	split.ElementsNamed("aka_title")[0].SplitCount = 2
	check("split", split)

	ann := base.Clone()
	ann.ElementsNamed("actor")[0].Annotation = "cast"
	check("annotation", ann)

	dist := base.Clone()
	movie := dist.ElementsNamed("movie")[0]
	rating := dist.ElementsNamed("avg_rating")[0]
	movie.Distributions = []Distribution{{Optionals: []int{rating.ID}}}
	check("distribution", dist)
}

const sampleXSD = `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
 <xs:complexType name="Person">
  <xs:sequence>
   <xs:element name="name" type="xs:string"/>
   <xs:element name="age" type="xs:integer" minOccurs="0"/>
  </xs:sequence>
 </xs:complexType>
 <xs:element name="library">
  <xs:complexType>
   <xs:sequence>
    <xs:element name="book" minOccurs="0" maxOccurs="unbounded">
     <xs:complexType>
      <xs:sequence>
       <xs:element name="title" type="xs:string"/>
       <xs:element name="price" type="xs:decimal" minOccurs="0"/>
       <xs:choice>
        <xs:element name="isbn" type="xs:string"/>
        <xs:element name="issn" type="xs:string"/>
       </xs:choice>
       <xs:element name="author" type="Person" minOccurs="0" maxOccurs="unbounded"/>
       <xs:element name="editor" type="Person" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
     </xs:complexType>
    </xs:element>
   </xs:sequence>
  </xs:complexType>
 </xs:element>
</xs:schema>`

func TestParseXSD(t *testing.T) {
	tr, err := ParseXSDString(sampleXSD)
	if err != nil {
		t.Fatalf("ParseXSD: %v", err)
	}
	if tr.Root.Name != "library" {
		t.Fatalf("root = %q", tr.Root.Name)
	}
	book := tr.ElementsNamed("book")
	if len(book) != 1 || !book[0].IsSetValued() {
		t.Fatalf("book should be one set-valued element, got %d", len(book))
	}
	price := tr.ElementsNamed("price")[0]
	if !price.IsOptional() || price.LeafBase() != BaseFloat {
		t.Errorf("price should be optional decimal")
	}
	isbn := tr.ElementsNamed("isbn")[0]
	if isbn.UnderChoice() == nil {
		t.Errorf("isbn should be under a choice")
	}
	authors := tr.ElementsNamed("author")
	editors := tr.ElementsNamed("editor")
	if len(authors) != 1 || len(editors) != 1 {
		t.Fatalf("author/editor counts: %d/%d", len(authors), len(editors))
	}
	if authors[0].TypeName != "Person" || editors[0].TypeName != "Person" {
		t.Errorf("author/editor should carry shared type Person")
	}
	groups := tr.SharedTypeGroups()
	if len(groups["Person"]) != 2 {
		t.Errorf("Person group size = %d, want 2", len(groups["Person"]))
	}
	// Hybrid annotations applied automatically (no annotation attrs).
	if tr.Root.Annotation == "" || book[0].Annotation == "" {
		t.Errorf("hybrid annotations missing")
	}
	// Named-type contents expand: name/age leaves under author.
	names := tr.ElementsNamed("name")
	if len(names) != 2 {
		t.Errorf("Person expansion: got %d name leaves, want 2", len(names))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("parsed tree invalid: %v", err)
	}
}

func TestParseXSDErrors(t *testing.T) {
	cases := map[string]string{
		"no root element":  `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"></xs:schema>`,
		"unknown type ref": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="r" type="Nope"/></xs:schema>`,
		"bad xml":          `<xs:schema`,
		"bad minOccurs": `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="r">
		  <xs:complexType><xs:sequence><xs:element name="x" type="xs:string" minOccurs="banana"/></xs:sequence></xs:complexType>
		 </xs:element></xs:schema>`,
	}
	for name, doc := range cases {
		if _, err := ParseXSDString(doc); err == nil {
			t.Errorf("%s: want parse error", name)
		}
	}
}

func TestXSDRoundTrip(t *testing.T) {
	for _, tr := range []*Tree{DBLP(), Movie()} {
		var b strings.Builder
		if err := WriteXSD(&b, tr); err != nil {
			t.Fatalf("WriteXSD: %v", err)
		}
		back, err := ParseXSDString(b.String())
		if err != nil {
			t.Fatalf("re-parse: %v\nXSD:\n%s", err, b.String())
		}
		// Round trip preserves the element structure and annotations.
		orig, rt := tr.Elements(), back.Elements()
		if len(orig) != len(rt) {
			t.Fatalf("element count %d -> %d", len(orig), len(rt))
		}
		for i := range orig {
			if orig[i].Name != rt[i].Name {
				t.Fatalf("element %d: %s -> %s", i, orig[i].Name, rt[i].Name)
			}
			if orig[i].Annotation != rt[i].Annotation {
				t.Errorf("element %s annotation %q -> %q", orig[i].Name, orig[i].Annotation, rt[i].Annotation)
			}
			if orig[i].IsOptional() != rt[i].IsOptional() || orig[i].IsSetValued() != rt[i].IsSetValued() {
				t.Errorf("element %s occurrence flags changed", orig[i].Name)
			}
		}
	}
}
