// Package schema models XSD schemas as annotated schema trees, following
// the formalism of Section 2 of the paper: a tree T(V, E, A) whose nodes
// are type constructors (sequence ",", repetition "*", option "?", choice
// "|"), tag names, and simple types, and whose annotations A mark the
// nodes that are mapped to separate relations.
//
// Node identity (Node.ID) is stable across Clone, so statistics collected
// once on the fully-split schema remain addressable after any sequence of
// logical transformations.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the constructor a tree node represents.
type Kind int

const (
	// KindElement is a tagname node: an XML element.
	KindElement Kind = iota
	// KindSequence is the "," constructor: ordered content.
	KindSequence
	// KindChoice is the "|" constructor: exactly one branch is present.
	KindChoice
	// KindOption is the "?" constructor: minOccurs=0, maxOccurs=1.
	KindOption
	// KindRepetition is the "*" constructor: maxOccurs > 1 or unbounded.
	KindRepetition
	// KindSimple is a simple-type leaf (xs:string, xs:integer, ...).
	KindSimple
)

// String returns the constructor symbol used in the paper.
func (k Kind) String() string {
	switch k {
	case KindElement:
		return "element"
	case KindSequence:
		return ","
	case KindChoice:
		return "|"
	case KindOption:
		return "?"
	case KindRepetition:
		return "*"
	case KindSimple:
		return "simple"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// BaseType is the simple type of a leaf element.
type BaseType int

const (
	// BaseString maps to xs:string.
	BaseString BaseType = iota
	// BaseInt maps to xs:integer.
	BaseInt
	// BaseFloat maps to xs:decimal.
	BaseFloat
)

// String returns the xs: name of the base type.
func (b BaseType) String() string {
	switch b {
	case BaseString:
		return "xs:string"
	case BaseInt:
		return "xs:integer"
	case BaseFloat:
		return "xs:decimal"
	}
	return fmt.Sprintf("BaseType(%d)", int(b))
}

// Unbounded is the MaxOccurs value for maxOccurs="unbounded".
const Unbounded = -1

// Distribution records a union distribution applied to an annotated
// element node (Section 2.1, transformation 3). A distribution either
// distributes an explicit choice constructor (Choice != 0) or forms an
// implicit union over a set of optional child elements (len(Optionals)
// > 0); merged implicit-union candidates from Section 4.7 carry several
// optionals. The relations produced by a distributed node are the cross
// product of its distributions' partitions.
type Distribution struct {
	// Choice is the node ID of the distributed choice constructor, or 0
	// for an implicit union.
	Choice int
	// Optionals holds the element node IDs of the optional children an
	// implicit union distributes on.
	Optionals []int
}

// Key returns a canonical identity for the distribution, used to detect
// duplicates.
func (d Distribution) Key() string {
	if d.Choice != 0 {
		return fmt.Sprintf("choice:%d", d.Choice)
	}
	ids := append([]int(nil), d.Optionals...)
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return "opt:" + strings.Join(parts, ",")
}

// Node is a schema tree node.
type Node struct {
	// ID is unique within the tree and preserved by Clone.
	ID int
	// Kind is the constructor this node represents.
	Kind Kind
	// Name is the tag name for KindElement nodes.
	Name string
	// Base is the simple type for KindSimple nodes.
	Base BaseType
	// Annotation names the relation this node maps to; empty means the
	// node is inlined into its nearest annotated ancestor. Only
	// KindElement nodes may carry annotations.
	Annotation string
	// TypeName identifies shared types: two element nodes with the same
	// non-empty TypeName are logically equivalent occurrences of one
	// type (Section 2) and are candidates for type merge.
	TypeName string
	// SplitCount is the repetition-split count k: the first k
	// occurrences of this set-valued leaf element are inlined into the
	// parent relation as columns name_1..name_k (Section 2.1,
	// transformation 4). Zero means no repetition split.
	SplitCount int
	// Distributions lists the union distributions applied at this
	// annotated element node.
	Distributions []Distribution
	// MinOccurs and MaxOccurs carry occurrence bounds for
	// KindRepetition nodes (MaxOccurs == Unbounded for unbounded).
	MinOccurs, MaxOccurs int
	// Children are the ordered child nodes.
	Children []*Node
	// Parent is the parent node; nil for the root.
	Parent *Node
}

// IsElement reports whether the node is a tagname node.
func (n *Node) IsElement() bool { return n.Kind == KindElement }

// IsLeaf reports whether the node is a leaf element: an element whose
// entire content is a single simple type. Leaf elements map to columns.
func (n *Node) IsLeaf() bool {
	return n.Kind == KindElement && len(n.Children) == 1 && n.Children[0].Kind == KindSimple
}

// LeafBase returns the simple type of a leaf element.
func (n *Node) LeafBase() BaseType {
	if !n.IsLeaf() {
		panic(fmt.Sprintf("schema: LeafBase on non-leaf node %s", n.Name))
	}
	return n.Children[0].Base
}

// ElementParent returns the nearest ancestor element node, or nil for
// the root element.
func (n *Node) ElementParent() *Node {
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Kind == KindElement {
			return p
		}
	}
	return nil
}

// IsSetValued reports whether a repetition constructor lies between the
// element node and its nearest element ancestor, i.e. whether multiple
// instances of this element may occur per parent instance.
func (n *Node) IsSetValued() bool {
	for p := n.Parent; p != nil && p.Kind != KindElement; p = p.Parent {
		if p.Kind == KindRepetition {
			return true
		}
	}
	return false
}

// IsOptional reports whether an option constructor (and no repetition)
// lies between the element node and its nearest element ancestor:
// minOccurs=0, maxOccurs=1.
func (n *Node) IsOptional() bool {
	opt := false
	for p := n.Parent; p != nil && p.Kind != KindElement; p = p.Parent {
		switch p.Kind {
		case KindRepetition:
			return false
		case KindOption:
			opt = true
		}
	}
	return opt
}

// UnderChoice returns the choice constructor between the element and its
// nearest element ancestor, or nil if none.
func (n *Node) UnderChoice() *Node {
	for p := n.Parent; p != nil && p.Kind != KindElement; p = p.Parent {
		if p.Kind == KindChoice {
			return p
		}
	}
	return nil
}

// MustAnnotate reports whether the node's in-degree differs from one in
// the type-graph sense (Section 2): the root and set-valued elements
// must be mapped to separate relations and cannot be inlined.
func (n *Node) MustAnnotate() bool {
	if n.Kind != KindElement {
		return false
	}
	return n.Parent == nil || n.IsSetValued()
}

// AnnotatedAncestorIs reports whether a is the nearest annotated
// proper ancestor of n.
func (n *Node) AnnotatedAncestorIs(a *Node) bool { return n.AnnotatedAncestor() == a }

// AnnotatedAncestor returns the nearest proper ancestor element node
// that carries an annotation, or nil if none exists.
func (n *Node) AnnotatedAncestor() *Node {
	for p := n.ElementParent(); p != nil; p = p.ElementParent() {
		if p.Annotation != "" {
			return p
		}
	}
	return nil
}

// ElementChildren returns the element nodes reachable from n without
// passing through another element node, in document order. For a
// constructor node it descends its subtree; for an element node it
// descends the element's content.
func (n *Node) ElementChildren() []*Node {
	var out []*Node
	var walk func(c *Node)
	walk = func(c *Node) {
		if c.Kind == KindElement {
			out = append(out, c)
			return
		}
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	for _, c := range n.Children {
		walk(c)
	}
	return out
}

// Path returns the element names from the root to this element,
// joined by "/". Used for diagnostics and deterministic naming.
func (n *Node) Path() string {
	var names []string
	for p := n; p != nil; p = p.Parent {
		if p.Kind == KindElement {
			names = append(names, p.Name)
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, "/")
}

// Tree is a schema tree with stable node identifiers.
type Tree struct {
	Root   *Node
	byID   map[int]*Node
	nextID int
}

// NewTree wraps a hand-built node structure into a Tree, assigning IDs
// to nodes that lack them (ID == 0) and wiring parent pointers. Nodes
// with pre-assigned IDs keep them.
func NewTree(root *Node) *Tree {
	t := &Tree{Root: root, byID: make(map[int]*Node)}
	maxID := 0
	var scan func(n *Node)
	scan = func(n *Node) {
		if n.ID > maxID {
			maxID = n.ID
		}
		for _, c := range n.Children {
			c.Parent = n
			scan(c)
		}
	}
	scan(root)
	t.nextID = maxID + 1
	var assign func(n *Node)
	assign = func(n *Node) {
		if n.ID == 0 {
			n.ID = t.nextID
			t.nextID++
		}
		if prev, dup := t.byID[n.ID]; dup {
			panic(fmt.Sprintf("schema: duplicate node ID %d (%s and %s)", n.ID, prev.Kind, n.Kind))
		}
		t.byID[n.ID] = n
		for _, c := range n.Children {
			assign(c)
		}
	}
	assign(root)
	return t
}

// Node returns the node with the given ID, or nil.
func (t *Tree) Node(id int) *Node { return t.byID[id] }

// Walk visits every node in document order (pre-order).
func (t *Tree) Walk(f func(*Node)) {
	var walk func(n *Node)
	walk = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
}

// Elements returns all element nodes in document order.
func (t *Tree) Elements() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.Kind == KindElement {
			out = append(out, n)
		}
	})
	return out
}

// Leaves returns all leaf elements in document order.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
		}
	})
	return out
}

// Annotated returns all annotated element nodes in document order.
func (t *Tree) Annotated() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.Annotation != "" {
			out = append(out, n)
		}
	})
	return out
}

// ElementsNamed returns the element nodes with the given tag name in
// document order.
func (t *Tree) ElementsNamed(name string) []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.Kind == KindElement && n.Name == name {
			out = append(out, n)
		}
	})
	return out
}

// SharedTypeGroups returns the groups of element nodes that share a
// non-empty TypeName with at least one other node, keyed by TypeName.
func (t *Tree) SharedTypeGroups() map[string][]*Node {
	groups := make(map[string][]*Node)
	t.Walk(func(n *Node) {
		if n.Kind == KindElement && n.TypeName != "" {
			groups[n.TypeName] = append(groups[n.TypeName], n)
		}
	})
	for k, g := range groups {
		if len(g) < 2 {
			delete(groups, k)
		}
	}
	return groups
}

// Clone returns a deep copy of the tree. Node IDs, annotations,
// distributions, and split counts are preserved.
func (t *Tree) Clone() *Tree {
	nt := &Tree{byID: make(map[int]*Node, len(t.byID)), nextID: t.nextID}
	var cp func(n *Node, parent *Node) *Node
	cp = func(n *Node, parent *Node) *Node {
		m := &Node{
			ID:         n.ID,
			Kind:       n.Kind,
			Name:       n.Name,
			Base:       n.Base,
			Annotation: n.Annotation,
			TypeName:   n.TypeName,
			SplitCount: n.SplitCount,
			MinOccurs:  n.MinOccurs,
			MaxOccurs:  n.MaxOccurs,
			Parent:     parent,
		}
		if len(n.Distributions) > 0 {
			m.Distributions = make([]Distribution, len(n.Distributions))
			for i, d := range n.Distributions {
				m.Distributions[i] = Distribution{Choice: d.Choice, Optionals: append([]int(nil), d.Optionals...)}
			}
		}
		m.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			m.Children[i] = cp(c, m)
		}
		nt.byID[m.ID] = m
		return m
	}
	nt.Root = cp(t.Root, nil)
	return nt
}

// NewNodeID allocates a fresh node ID (used by transformations that
// create nodes, e.g. repetition split materialization).
func (t *Tree) NewNodeID() int {
	id := t.nextID
	t.nextID++
	return id
}

// Validate checks the structural invariants of an annotated schema
// tree and returns the first violation found.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("schema: nil root")
	}
	if t.Root.Kind != KindElement {
		return fmt.Errorf("schema: root must be an element, got %s", t.Root.Kind)
	}
	annByName := make(map[string]*Node)
	var err error
	t.Walk(func(n *Node) {
		if err != nil {
			return
		}
		switch n.Kind {
		case KindElement:
			if n.Name == "" {
				err = fmt.Errorf("schema: element node %d has empty name", n.ID)
				return
			}
			for _, c := range n.Children {
				if c.Kind == KindSimple && len(n.Children) != 1 {
					err = fmt.Errorf("schema: element %s mixes simple and complex content", n.Name)
					return
				}
			}
			if n.MustAnnotate() && n.Annotation == "" {
				err = fmt.Errorf("schema: element %s (in-degree != 1) must be annotated", n.Path())
				return
			}
			if n.Annotation != "" {
				if prev, ok := annByName[n.Annotation]; ok {
					// Shared annotation requires shared type.
					if prev.TypeName == "" || prev.TypeName != n.TypeName {
						err = fmt.Errorf("schema: annotation %q shared by non-equivalent types %s and %s",
							n.Annotation, prev.Path(), n.Path())
						return
					}
				} else {
					annByName[n.Annotation] = n
				}
			}
			if n.SplitCount < 0 {
				err = fmt.Errorf("schema: element %s has negative split count", n.Path())
				return
			}
			if n.SplitCount > 0 {
				if !n.IsLeaf() {
					err = fmt.Errorf("schema: repetition split on non-leaf element %s", n.Path())
					return
				}
				if !n.IsSetValued() {
					err = fmt.Errorf("schema: repetition split on single-valued element %s", n.Path())
					return
				}
				if n.Annotation == "" {
					err = fmt.Errorf("schema: repetition-split element %s lost its overflow annotation", n.Path())
					return
				}
			}
			for _, d := range n.Distributions {
				if n.Annotation == "" {
					err = fmt.Errorf("schema: distribution on unannotated element %s", n.Path())
					return
				}
				if d.Choice != 0 {
					c := t.Node(d.Choice)
					if c == nil || c.Kind != KindChoice {
						err = fmt.Errorf("schema: distribution on element %s references non-choice node %d", n.Path(), d.Choice)
						return
					}
					if nearestElement(c) != n {
						err = fmt.Errorf("schema: distributed choice %d does not belong to element %s", d.Choice, n.Path())
						return
					}
				}
				if d.Choice == 0 && len(d.Optionals) == 0 {
					err = fmt.Errorf("schema: empty distribution on element %s", n.Path())
					return
				}
				for _, id := range d.Optionals {
					o := t.Node(id)
					if o == nil || o.Kind != KindElement || !o.IsOptional() {
						err = fmt.Errorf("schema: implicit union on element %s references non-optional node %d", n.Path(), id)
						return
					}
					if o.ElementParent() != n {
						err = fmt.Errorf("schema: implicit union optional %d is not a direct child element of %s", id, n.Path())
						return
					}
				}
			}
		case KindSimple:
			if n.Parent == nil || n.Parent.Kind != KindElement {
				err = fmt.Errorf("schema: simple node %d not directly under an element", n.ID)
				return
			}
		case KindRepetition, KindOption:
			if len(n.Children) != 1 {
				err = fmt.Errorf("schema: %s node %d must have exactly one child, has %d", n.Kind, n.ID, len(n.Children))
				return
			}
		case KindSequence, KindChoice:
			if len(n.Children) == 0 {
				err = fmt.Errorf("schema: %s node %d has no children", n.Kind, n.ID)
				return
			}
		}
	})
	return err
}

// nearestElement returns the nearest element at or above n.
func nearestElement(n *Node) *Node {
	for p := n; p != nil; p = p.Parent {
		if p.Kind == KindElement {
			return p
		}
	}
	return nil
}

// Signature renders a canonical serialization of the tree for use as a
// memoization key: everything mapping compilation and statistics
// derivation read — structure, element identities, annotations, split
// counts, union distributions, simple types, and occurrence bounds.
// Two trees with equal signatures compile to identical mappings with
// identical derived statistics, so an evaluation of one can be reused
// for the other. Unlike String, it disambiguates same-named elements by
// node ID and includes distribution metadata.
func (t *Tree) Signature() string {
	var b strings.Builder
	var render func(n *Node)
	render = func(n *Node) {
		switch n.Kind {
		case KindElement:
			fmt.Fprintf(&b, "%s#%d", n.Name, n.ID)
			if n.Annotation != "" {
				fmt.Fprintf(&b, "{%s}", n.Annotation)
			}
			if n.TypeName != "" {
				fmt.Fprintf(&b, "<%s>", n.TypeName)
			}
			if n.SplitCount > 0 {
				fmt.Fprintf(&b, "[k=%d]", n.SplitCount)
			}
			if len(n.Distributions) > 0 {
				keys := make([]string, len(n.Distributions))
				for i, d := range n.Distributions {
					keys[i] = d.Key()
				}
				sort.Strings(keys)
				fmt.Fprintf(&b, "[d=%s]", strings.Join(keys, ";"))
			}
			if len(n.Children) > 0 {
				b.WriteByte('(')
				for i, c := range n.Children {
					if i > 0 {
						b.WriteByte(',')
					}
					render(c)
				}
				b.WriteByte(')')
			}
		case KindSequence:
			b.WriteByte('[')
			for i, c := range n.Children {
				if i > 0 {
					b.WriteByte(',')
				}
				render(c)
			}
			b.WriteByte(']')
		case KindChoice:
			b.WriteByte('(')
			for i, c := range n.Children {
				if i > 0 {
					b.WriteByte('|')
				}
				render(c)
			}
			b.WriteByte(')')
		case KindOption:
			render(n.Children[0])
			b.WriteByte('?')
		case KindRepetition:
			render(n.Children[0])
			fmt.Fprintf(&b, "*%d..%d", n.MinOccurs, n.MaxOccurs)
		case KindSimple:
			fmt.Fprintf(&b, ":%d", n.Base)
		}
	}
	render(t.Root)
	return b.String()
}

// String renders the tree in a compact single-line grammar form for
// diagnostics, e.g. movie(title,year,aka_title*,avg_rating?,(box_office|seasons)).
func (t *Tree) String() string {
	var b strings.Builder
	var render func(n *Node)
	render = func(n *Node) {
		switch n.Kind {
		case KindElement:
			b.WriteString(n.Name)
			if n.Annotation != "" {
				fmt.Fprintf(&b, "{%s}", n.Annotation)
			}
			if n.SplitCount > 0 {
				fmt.Fprintf(&b, "[k=%d]", n.SplitCount)
			}
			if !n.IsLeaf() && len(n.Children) > 0 {
				b.WriteByte('(')
				for i, c := range n.Children {
					if i > 0 {
						b.WriteByte(',')
					}
					render(c)
				}
				b.WriteByte(')')
			}
		case KindSequence:
			for i, c := range n.Children {
				if i > 0 {
					b.WriteByte(',')
				}
				render(c)
			}
		case KindChoice:
			b.WriteByte('(')
			for i, c := range n.Children {
				if i > 0 {
					b.WriteByte('|')
				}
				render(c)
			}
			b.WriteByte(')')
		case KindOption:
			render(n.Children[0])
			b.WriteByte('?')
		case KindRepetition:
			render(n.Children[0])
			b.WriteByte('*')
		case KindSimple:
			// leaf content is implied by the element name
		}
	}
	render(t.Root)
	return b.String()
}
