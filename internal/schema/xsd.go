package schema

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a from-scratch parser and serializer for the XSD
// subset the paper relies on: global and inline element declarations,
// complex types with xs:sequence and xs:choice content, minOccurs /
// maxOccurs occurrence bounds, the simple types xs:string, xs:integer
// (and friends), and xs:decimal, and named complex types (which become
// shared types in the schema tree). Go's standard library has no XSD
// support, so this substrate is built here.

// xsdNS is the XML Schema namespace.
const xsdNS = "http://www.w3.org/2001/XMLSchema"

// ParseXSD reads an XSD document describing a single global root
// element and returns the corresponding schema tree. Annotations are
// read from the extension attribute `annotation`; if the document
// carries none at all, hybrid-inlining annotations are applied so the
// resulting tree is immediately usable.
func ParseXSD(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	p := &xsdParser{types: make(map[string]*typeDef)}
	root, err := p.parse(dec)
	if err != nil {
		return nil, err
	}
	t := NewTree(root)
	if !p.sawAnnotation {
		ApplyHybridInlining(t)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("xsd: invalid schema: %w", err)
	}
	return t, nil
}

// ParseXSDString is ParseXSD over a string.
func ParseXSDString(s string) (*Tree, error) {
	return ParseXSD(strings.NewReader(s))
}

type typeDef struct {
	name    string
	content *Node // template content (sequence/choice subtree), cloned per use
	base    BaseType
	simple  bool
}

type xsdParser struct {
	types         map[string]*typeDef
	root          *Node
	sawAnnotation bool
}

func (p *xsdParser) parse(dec *xml.Decoder) (*Node, error) {
	// First pass: fully decode the token stream into a lightweight DOM
	// keeping child order, since occurrence wrappers depend on it.
	doc, err := decodeXMLTree(dec)
	if err != nil {
		return nil, err
	}
	if doc == nil || local(doc.name) != "schema" {
		return nil, fmt.Errorf("xsd: document root must be xs:schema, got %q", localOrEmpty(doc))
	}
	// Named types first, so element references resolve.
	for _, c := range doc.children {
		switch local(c.name) {
		case "complexType":
			name := c.attr("name")
			if name == "" {
				return nil, fmt.Errorf("xsd: top-level complexType without name")
			}
			content, err := p.typeContent(c, name)
			if err != nil {
				return nil, err
			}
			p.types[name] = content
		case "simpleType":
			name := c.attr("name")
			if name == "" {
				return nil, fmt.Errorf("xsd: top-level simpleType without name")
			}
			base := BaseString
			for _, ch := range c.children {
				if local(ch.name) == "restriction" {
					if b, ok := xsdBaseType(ch.attr("base")); ok {
						base = b
					}
				}
			}
			p.types[name] = &typeDef{name: name, simple: true, base: base}
		}
	}
	var rootElem *rawNode
	for _, c := range doc.children {
		if local(c.name) == "element" {
			if rootElem != nil {
				return nil, fmt.Errorf("xsd: multiple global elements; exactly one root element is supported")
			}
			rootElem = c
		}
	}
	if rootElem == nil {
		return nil, fmt.Errorf("xsd: no global element declaration")
	}
	n, err := p.element(rootElem)
	if err != nil {
		return nil, err
	}
	return n, nil
}

// typeContent builds a typeDef from a complexType raw node. Attributes
// become leaf element nodes named "@attr", prepended to the content
// (they shred to columns like any other leaf and serialize back to
// real XML attributes).
func (p *xsdParser) typeContent(c *rawNode, name string) (*typeDef, error) {
	attrs, err := p.attributes(c)
	if err != nil {
		return nil, err
	}
	for _, ch := range c.children {
		switch local(ch.name) {
		case "sequence":
			content, err := p.particle(ch, KindSequence)
			if err != nil {
				return nil, err
			}
			content.Children = append(attrs, content.Children...)
			return &typeDef{name: name, content: content}, nil
		case "choice":
			content, err := p.particle(ch, KindChoice)
			if err != nil {
				return nil, err
			}
			if len(attrs) > 0 {
				content = &Node{Kind: KindSequence, Children: append(attrs, content)}
			}
			return &typeDef{name: name, content: content}, nil
		}
	}
	if len(attrs) > 0 {
		return &typeDef{name: name, content: &Node{Kind: KindSequence, Children: attrs}}, nil
	}
	return nil, fmt.Errorf("xsd: complexType %q must contain xs:sequence or xs:choice", name)
}

// attributes parses the xs:attribute declarations of a complexType.
func (p *xsdParser) attributes(c *rawNode) ([]*Node, error) {
	var out []*Node
	for _, ch := range c.children {
		if local(ch.name) != "attribute" {
			continue
		}
		name := ch.attr("name")
		if name == "" {
			return nil, fmt.Errorf("xsd: attribute without name")
		}
		base := BaseString
		if b, ok := xsdBaseType(ch.attr("type")); ok {
			base = b
		}
		leaf := Leaf("@"+name, base)
		if ch.attr("use") != "required" {
			out = append(out, &Node{Kind: KindOption, Children: []*Node{leaf}, MaxOccurs: 1})
		} else {
			out = append(out, leaf)
		}
	}
	return out, nil
}

// particle converts an xs:sequence or xs:choice into a constructor node.
func (p *xsdParser) particle(c *rawNode, kind Kind) (*Node, error) {
	node := &Node{Kind: kind}
	for _, ch := range c.children {
		var child *Node
		var err error
		switch local(ch.name) {
		case "element":
			child, err = p.element(ch)
		case "sequence":
			child, err = p.particle(ch, KindSequence)
		case "choice":
			child, err = p.particle(ch, KindChoice)
		case "annotation", "attribute":
			continue // ignored
		default:
			return nil, fmt.Errorf("xsd: unsupported particle xs:%s", local(ch.name))
		}
		if err != nil {
			return nil, err
		}
		child, err = wrapOccurs(child, ch)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
	}
	if len(node.Children) == 0 {
		return nil, fmt.Errorf("xsd: empty xs:%s", strings.ToLower(kindXSDName(kind)))
	}
	return node, nil
}

// element converts an xs:element raw node into an element schema node.
func (p *xsdParser) element(c *rawNode) (*Node, error) {
	name := c.attr("name")
	if name == "" {
		return nil, fmt.Errorf("xsd: element without name")
	}
	n := &Node{Kind: KindElement, Name: name}
	if ann := c.attr("annotation"); ann != "" {
		n.Annotation = ann
		p.sawAnnotation = true
	}
	typ := c.attr("type")
	var inline *rawNode
	for _, ch := range c.children {
		if local(ch.name) == "complexType" {
			inline = ch
			break
		}
	}
	switch {
	case typ != "" && inline != nil:
		return nil, fmt.Errorf("xsd: element %q has both type attribute and inline complexType", name)
	case typ != "":
		if base, ok := xsdBaseType(typ); ok {
			n.Children = []*Node{{Kind: KindSimple, Base: base}}
			return n, nil
		}
		td, ok := p.types[stripPrefix(typ)]
		if !ok {
			return nil, fmt.Errorf("xsd: element %q references unknown type %q", name, typ)
		}
		n.TypeName = td.name
		if td.simple {
			n.Children = []*Node{{Kind: KindSimple, Base: td.base}}
		} else {
			n.Children = []*Node{cloneTemplate(td.content)}
		}
		return n, nil
	case inline != nil:
		td, err := p.typeContent(inline, "")
		if err != nil {
			return nil, fmt.Errorf("xsd: element %q: %w", name, err)
		}
		n.Children = []*Node{td.content}
		return n, nil
	default:
		// No type: treat as xs:string leaf.
		n.Children = []*Node{{Kind: KindSimple, Base: BaseString}}
		return n, nil
	}
}

// wrapOccurs wraps a node in option/repetition constructors according
// to minOccurs/maxOccurs.
func wrapOccurs(n *Node, c *rawNode) (*Node, error) {
	min, max := 1, 1
	if v := c.attr("minOccurs"); v != "" {
		m, err := strconv.Atoi(v)
		if err != nil || m < 0 {
			return nil, fmt.Errorf("xsd: bad minOccurs %q", v)
		}
		min = m
	}
	if v := c.attr("maxOccurs"); v != "" {
		if v == "unbounded" {
			max = Unbounded
		} else {
			m, err := strconv.Atoi(v)
			if err != nil || m < 1 {
				return nil, fmt.Errorf("xsd: bad maxOccurs %q", v)
			}
			max = m
		}
	}
	switch {
	case max == 1 && min == 1:
		return n, nil
	case max == 1 && min == 0:
		return &Node{Kind: KindOption, Children: []*Node{n}, MinOccurs: 0, MaxOccurs: 1}, nil
	default:
		return &Node{Kind: KindRepetition, Children: []*Node{n}, MinOccurs: min, MaxOccurs: max}, nil
	}
}

// cloneTemplate deep-copies a type content template so each use of a
// named type gets distinct nodes (IDs assigned later by NewTree).
func cloneTemplate(n *Node) *Node {
	m := &Node{Kind: n.Kind, Name: n.Name, Base: n.Base, TypeName: n.TypeName,
		MinOccurs: n.MinOccurs, MaxOccurs: n.MaxOccurs}
	m.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		m.Children[i] = cloneTemplate(c)
	}
	return m
}

func xsdBaseType(typ string) (BaseType, bool) {
	switch stripPrefix(typ) {
	case "string", "token", "normalizedString", "anyURI", "date":
		return BaseString, true
	case "integer", "int", "long", "short", "nonNegativeInteger", "positiveInteger":
		return BaseInt, true
	case "decimal", "float", "double":
		return BaseFloat, true
	}
	return 0, false
}

func stripPrefix(s string) string {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func kindXSDName(k Kind) string {
	if k == KindChoice {
		return "choice"
	}
	return "sequence"
}

// rawNode is a minimal order-preserving XML DOM used while parsing XSD.
type rawNode struct {
	name     xml.Name
	attrs    []xml.Attr
	children []*rawNode
}

func (r *rawNode) attr(name string) string {
	for _, a := range r.attrs {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}

func local(n xml.Name) string { return n.Local }

func localOrEmpty(r *rawNode) string {
	if r == nil {
		return ""
	}
	return r.name.Local
}

// decodeXMLTree reads the full token stream into rawNodes.
func decodeXMLTree(dec *xml.Decoder) (*rawNode, error) {
	var root *rawNode
	var stack []*rawNode
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xsd: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &rawNode{name: t.Name, attrs: append([]xml.Attr(nil), t.Attr...)}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xsd: multiple document roots")
				}
				root = n
			} else {
				top := stack[len(stack)-1]
				top.children = append(top.children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xsd: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xsd: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xsd: unterminated element %s", stack[len(stack)-1].name.Local)
	}
	return root, nil
}

// WriteXSD serializes the schema tree back to an XSD document,
// including annotation extension attributes so ParseXSD round-trips the
// logical design. Shared types are emitted as named complex types.
func WriteXSD(w io.Writer, t *Tree) error {
	var b strings.Builder
	b.WriteString(`<xs:schema xmlns:xs="` + xsdNS + `">` + "\n")
	// Emit one named complexType per shared type, using the first
	// occurrence as the template.
	emitted := make(map[string]bool)
	var emitType func(n *Node) error
	var emitParticle func(n *Node, indent string) error
	var emitElement func(n *Node, indent string, min, max int) error

	emitElement = func(n *Node, indent string, min, max int) error {
		occ := ""
		if min == 0 && max == 1 {
			occ = ` minOccurs="0"`
		} else if max != 1 {
			occ = fmt.Sprintf(` minOccurs="%d" maxOccurs=%q`, min, maxStr(max))
		}
		ann := ""
		if n.Annotation != "" {
			ann = fmt.Sprintf(" annotation=%q", n.Annotation)
		}
		if n.IsLeaf() {
			typ := n.LeafBase().String()
			if n.TypeName != "" {
				if err := emitType(n); err != nil {
					return err
				}
				typ = n.TypeName
			}
			fmt.Fprintf(&b, "%s<xs:element name=%q type=%q%s%s/>\n", indent, n.Name, typ, occ, ann)
			return nil
		}
		if n.TypeName != "" {
			if err := emitType(n); err != nil {
				return err
			}
			fmt.Fprintf(&b, "%s<xs:element name=%q type=%q%s%s/>\n", indent, n.Name, n.TypeName, occ, ann)
			return nil
		}
		fmt.Fprintf(&b, "%s<xs:element name=%q%s%s>\n%s <xs:complexType>\n", indent, n.Name, occ, ann, indent)
		content, attrs := splitAttributes(n.Children[0])
		inner := indent + "  "
		if content != nil {
			wrap := content.Kind != KindSequence && content.Kind != KindChoice
			if wrap {
				// Bare occurrence-wrapped or single-element content
				// must sit inside an xs:sequence to be valid XSD.
				fmt.Fprintf(&b, "%s<xs:sequence>\n", inner)
				if err := emitParticle(content, inner+" "); err != nil {
					return err
				}
				fmt.Fprintf(&b, "%s</xs:sequence>\n", inner)
			} else if err := emitParticle(content, inner); err != nil {
				return err
			}
		}
		for _, at := range attrs {
			use := ""
			if at.optional {
				use = ` use="optional"`
			} else {
				use = ` use="required"`
			}
			fmt.Fprintf(&b, "%s<xs:attribute name=%q type=%q%s/>\n",
				inner, strings.TrimPrefix(at.leaf.Name, "@"), at.leaf.LeafBase().String(), use)
		}
		fmt.Fprintf(&b, "%s </xs:complexType>\n%s</xs:element>\n", indent, indent)
		return nil
	}

	emitParticle = func(n *Node, indent string) error {
		switch n.Kind {
		case KindSequence, KindChoice:
			tag := "xs:sequence"
			if n.Kind == KindChoice {
				tag = "xs:choice"
			}
			fmt.Fprintf(&b, "%s<%s>\n", indent, tag)
			for _, c := range n.Children {
				if err := emitParticle(c, indent+" "); err != nil {
					return err
				}
			}
			fmt.Fprintf(&b, "%s</%s>\n", indent, tag)
			return nil
		case KindOption:
			return emitChildWithOccurs(n.Children[0], indent, 0, 1, emitParticle, emitElement)
		case KindRepetition:
			return emitChildWithOccurs(n.Children[0], indent, n.MinOccurs, n.MaxOccurs, emitParticle, emitElement)
		case KindElement:
			return emitElement(n, indent, 1, 1)
		default:
			return fmt.Errorf("xsd: cannot serialize node kind %s", n.Kind)
		}
	}

	emitType = func(n *Node) error {
		if emitted[n.TypeName] {
			return nil
		}
		emitted[n.TypeName] = true
		if n.IsLeaf() {
			fmt.Fprintf(&b, " <xs:simpleType name=%q>\n  <xs:restriction base=%q/>\n </xs:simpleType>\n",
				n.TypeName, n.LeafBase().String())
			return nil
		}
		fmt.Fprintf(&b, " <xs:complexType name=%q>\n", n.TypeName)
		if err := emitParticle(n.Children[0], "  "); err != nil {
			return err
		}
		b.WriteString(" </xs:complexType>\n")
		return nil
	}

	// Named non-leaf shared types must be declared before use; walk the
	// tree to emit them first.
	var preErr error
	t.Walk(func(n *Node) {
		if preErr == nil && n.Kind == KindElement && n.TypeName != "" {
			preErr = emitType(n)
		}
	})
	if preErr != nil {
		return preErr
	}
	if err := emitElement(t.Root, " ", 1, 1); err != nil {
		return err
	}
	b.WriteString("</xs:schema>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// emitChildWithOccurs serializes an occurrence-wrapped child. Wrapped
// sequences/choices are not representable with plain occurrence
// attributes on xs:element, so they keep the attributes on the particle
// tag; the parser accepts both.
func emitChildWithOccurs(c *Node, indent string, min, max int,
	emitParticle func(*Node, string) error, emitElement func(*Node, string, int, int) error) error {
	if c.Kind == KindElement {
		return emitElement(c, indent, min, max)
	}
	// Occurrence-wrapped constructor: unsupported in our subset writer.
	return fmt.Errorf("xsd: occurrence bounds on %s constructors are not serializable", c.Kind)
}

func maxStr(max int) string {
	if max == Unbounded {
		return "unbounded"
	}
	return strconv.Itoa(max)
}

// attrDecl is an attribute extracted from a content model for
// serialization.
type attrDecl struct {
	leaf     *Node
	optional bool
}

// splitAttributes removes top-level "@name" leaves (possibly
// option-wrapped) from a content model copy and returns them
// separately; the returned content is nil when only attributes remain.
func splitAttributes(content *Node) (*Node, []attrDecl) {
	isAttr := func(n *Node) (*Node, bool, bool) {
		if n.Kind == KindElement && strings.HasPrefix(n.Name, "@") {
			return n, false, true
		}
		if n.Kind == KindOption && len(n.Children) == 1 {
			c := n.Children[0]
			if c.Kind == KindElement && strings.HasPrefix(c.Name, "@") {
				return c, true, true
			}
		}
		return nil, false, false
	}
	if leaf, opt, ok := isAttr(content); ok {
		return nil, []attrDecl{{leaf, opt}}
	}
	if content.Kind != KindSequence {
		return content, nil
	}
	var attrs []attrDecl
	var rest []*Node
	for _, c := range content.Children {
		if leaf, opt, ok := isAttr(c); ok {
			attrs = append(attrs, attrDecl{leaf, opt})
			continue
		}
		rest = append(rest, c)
	}
	if len(rest) == 0 {
		return nil, attrs
	}
	out := &Node{Kind: KindSequence, Children: rest, ID: content.ID}
	if len(attrs) == 0 {
		return content, nil
	}
	return out, attrs
}
