package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a running debug endpoint: /debug/vars (expvar, with
// the given registry published), /debug/metrics (plain-text registry
// dump), and /debug/pprof (the standard profiles).
type DebugServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ServeDebug starts the debug endpoint on addr in a background
// goroutine. The registry is published to expvar as "xmlshred" (once
// per process) and also served directly. Callers Close() it on
// shutdown; a failed bind is returned synchronously.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	PublishExpvar("xmlshred", r)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := r.WriteTo(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener on %s: %w", addr, err)
	}
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go ds.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ds, nil
}

// Close shuts the debug endpoint down.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
