package obs

import "testing"

// BenchmarkNilTracer pins the disabled-path cost of the instrumentation
// pattern used on hot paths: a nil-tracer span start/attr/end sequence
// must stay in the low-nanosecond range so wiring obs through the
// executor and the search does not tax production runs (see
// BENCH_PR4_OBS.json for the end-to-end executor comparison).
func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.StartSpan("op")
		c := s.Child("inner")
		c.End()
		s.End()
	}
}

// BenchmarkNilCounter pins the disabled-path cost of registry counters.
func BenchmarkNilCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkEnabledSpan measures the enabled-path span cost for scale.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New()
	tr.SetMaxSpans(1 << 30)
	root := tr.StartSpan("root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := root.Child("op", Int("i", int64(i)))
		s.End()
	}
}

// BenchmarkEnabledCounter measures the enabled-path counter cost.
func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
