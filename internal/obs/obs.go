// Package obs is a zero-dependency observability layer: a structured
// span tracer plus a counter/gauge registry, wired through the search
// (candidate selection, merging, per-candidate evaluation, cost
// derivation, tuner calls) and the batch executor (prepare, execution,
// structure-cache hits and misses).
//
// The disabled path is a deliberate design constraint: a nil *Tracer
// and a nil *Span accept every method call as a near-no-op (one
// pointer test), so instrumented hot paths keep their performance when
// tracing is off. BenchmarkNilTracer and the executor benchmarks in
// the repo root pin this (<5% overhead against BENCH_PR3.json; see
// BENCH_PR4_OBS.json).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value span attribute. Values are restricted to
// JSON-friendly scalars by the constructors below.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// DefaultMaxSpans bounds the number of live spans a tracer retains.
// Beyond it new spans are dropped (counted in DroppedSpans) so a
// traced measurement loop cannot exhaust memory.
const DefaultMaxSpans = 1 << 18

// Tracer records a forest of spans. The zero value is not usable; call
// New. A nil *Tracer is the disabled tracer: every method is a no-op
// and StartSpan returns a nil *Span.
type Tracer struct {
	mu       sync.Mutex
	epoch    time.Time
	nextID   int64
	roots    []*Span
	count    int
	dropped  int64
	maxSpans int
}

// New creates an enabled tracer.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), maxSpans: DefaultMaxSpans}
}

// SetMaxSpans overrides the span retention cap (0 restores the
// default).
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 {
		n = DefaultMaxSpans
	}
	t.maxSpans = n
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil }

// DroppedSpans reports how many spans the retention cap discarded.
func (t *Tracer) DroppedSpans() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Span is one timed operation in the tree. A nil *Span is a disabled
// span: every method no-ops and Child returns nil, so span handles can
// be passed through code paths unconditionally.
type Span struct {
	tracer   *Tracer
	parent   *Span
	ID       int64
	Name     string
	start    time.Duration // since tracer epoch
	end      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// newSpan allocates a span under the tracer lock.
func (t *Tracer) newSpan(name string, parent *Span, attrs []Attr) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count >= t.maxSpans {
		t.dropped++
		return nil
	}
	t.count++
	t.nextID++
	s := &Span{
		tracer: t,
		parent: parent,
		ID:     t.nextID,
		Name:   name,
		start:  time.Since(t.epoch),
		attrs:  attrs,
	}
	if parent == nil {
		t.roots = append(t.roots, s)
	} else {
		parent.children = append(parent.children, s)
	}
	return s
}

// StartSpan opens a root span.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, nil, attrs)
}

// Child opens a sub-span. Safe to call from concurrent goroutines
// sharing one parent (parallel candidate evaluations, union branches).
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(name, s, attrs)
}

// Parent returns the span's parent, or nil for a root (or nil) span.
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// SetAttr appends attributes to an open or ended span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tracer.mu.Unlock()
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = time.Since(s.tracer.epoch)
	}
	s.tracer.mu.Unlock()
}

// spanJSON is the serialized span shape.
type spanJSON struct {
	ID       int64          `json:"id"`
	Parent   int64          `json:"parent,omitempty"`
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*spanJSON    `json:"children,omitempty"`
}

func (s *Span) toJSON() *spanJSON {
	j := &spanJSON{
		ID:      s.ID,
		Name:    s.Name,
		StartUS: s.start.Microseconds(),
		DurUS:   (s.end - s.start).Microseconds(),
	}
	if s.parent != nil {
		j.Parent = s.parent.ID
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			j.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		j.Children = append(j.Children, c.toJSON())
	}
	return j
}

// traceJSON is the serialized trace document.
type traceJSON struct {
	Spans   []*spanJSON `json:"spans"`
	Dropped int64       `json:"dropped_spans,omitempty"`
}

// WriteJSON emits the whole span forest as one JSON document. Open
// spans are reported with their current duration.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"spans":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	doc := traceJSON{Dropped: t.dropped}
	for _, r := range t.roots {
		doc.Spans = append(doc.Spans, r.toJSON())
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText renders the span tree as indented text with durations and
// attributes — the human-readable form of WriteJSON.
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		fmt.Fprintf(&b, "%s%s %s", strings.Repeat("  ", depth), s.Name,
			(s.end - s.start).Round(time.Microsecond))
		for _, a := range s.attrs {
			fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.roots {
		walk(r, 0)
	}
	if t.dropped > 0 {
		fmt.Fprintf(&b, "(%d spans dropped by retention cap)\n", t.dropped)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Validate checks span-tree well-formedness: every span is ended, ends
// at or after its start, links to the tracer's own spans, and nests
// inside its parent's interval. A nil tracer is trivially well-formed.
func (t *Tracer) Validate() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var check func(s *Span, parent *Span) error
	check = func(s *Span, parent *Span) error {
		if s.parent != parent {
			return fmt.Errorf("obs: span %d %q has wrong parent link", s.ID, s.Name)
		}
		if !s.ended {
			return fmt.Errorf("obs: span %d %q never ended", s.ID, s.Name)
		}
		if s.end < s.start {
			return fmt.Errorf("obs: span %d %q ends before it starts", s.ID, s.Name)
		}
		if parent != nil && (s.start < parent.start || (parent.ended && s.end > parent.end)) {
			return fmt.Errorf("obs: span %d %q [%v,%v] escapes parent %q [%v,%v]",
				s.ID, s.Name, s.start, s.end, parent.Name, parent.start, parent.end)
		}
		for _, c := range s.children {
			if err := check(c, s); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range t.roots {
		if err := check(r, nil); err != nil {
			return err
		}
	}
	return nil
}

// SpanCount returns the number of retained spans.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// FindAll returns every retained span with the given name, in creation
// order within each subtree (test helper).
func (t *Tracer) FindAll(name string) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	var walk func(s *Span)
	walk = func(s *Span) {
		if s.Name == name {
			out = append(out, s)
		}
		for _, c := range s.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return out
}

// Attr returns the named attribute value of a span and whether it was
// set (last write wins).
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value, true
		}
	}
	return nil, false
}

// AttrKeys returns the span's attribute keys, sorted (test helper).
func (s *Span) AttrKeys() []string {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	keys := make([]string, 0, len(s.attrs))
	for _, a := range s.attrs {
		keys = append(keys, a.Key)
	}
	sort.Strings(keys)
	return keys
}
