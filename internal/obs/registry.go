package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter
// no-ops, so callers can hold counters unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric (float64, stored as bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Add atomically adjusts the gauge by d (CAS loop). Level-style gauges
// — resident bytes, queue depths — are maintained by concurrent
// holders adding and subtracting; Set would lose updates.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Registry is a named set of counters and gauges. Metrics are created
// on first use and live for the registry's lifetime; reads are atomic
// and never block writers. A nil *Registry hands out nil metrics,
// which no-op — instrumented code never branches on enablement.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns every metric's current value keyed by name.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for n, c := range r.counters {
		out[n] = float64(c.Value())
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	return out
}

// WriteTo renders the metrics sorted by name, one per line.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var total int64
	for _, n := range names {
		v := snap[n]
		var line string
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			line = fmt.Sprintf("%s %d\n", n, int64(v))
		} else {
			line = fmt.Sprintf("%s %g\n", n, v)
		}
		k, err := io.WriteString(w, line)
		total += int64(k)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ExpvarFunc adapts the registry to expvar: the returned Func dumps a
// point-in-time snapshot as a JSON object.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any { return r.Snapshot() }
}

// publishOnce guards expvar.Publish, which panics on duplicate names
// (tests and long-lived processes may wire the same registry twice).
var publishOnce sync.Map

// PublishExpvar exposes the registry under the given expvar name; the
// first call per name wins and repeat calls are no-ops.
func PublishExpvar(name string, r *Registry) {
	if r == nil {
		return
	}
	if _, loaded := publishOnce.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, r.ExpvarFunc())
}

// Default is the process-wide registry the cmd binaries publish via
// expvar; library code takes an explicit *Registry and never reaches
// for it implicitly.
var Default = NewRegistry()
