package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestSpanTree(t *testing.T) {
	tr := New()
	root := tr.StartSpan("search", String("alg", "greedy"))
	sel := root.Child("candidate-selection")
	sel.SetAttr(Int("splits", 3))
	sel.End()
	round := root.Child("round", Int("idx", 0))
	ev := round.Child("evaluate")
	ev.End()
	round.End()
	root.End()

	if err := tr.Validate(); err != nil {
		t.Fatalf("well-formed tree rejected: %v", err)
	}
	if got := tr.SpanCount(); got != 4 {
		t.Errorf("SpanCount = %d, want 4", got)
	}
	if len(tr.FindAll("evaluate")) != 1 || len(tr.FindAll("round")) != 1 {
		t.Error("FindAll missed spans")
	}
	if v, ok := sel.Attr("splits"); !ok || v.(int64) != 3 {
		t.Errorf("attr splits = %v, %v", v, ok)
	}
}

func TestValidateRejectsOpenSpan(t *testing.T) {
	tr := New()
	root := tr.StartSpan("search")
	root.Child("never-ended")
	root.End()
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "never ended") {
		t.Errorf("Validate() = %v, want never-ended error", err)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tr := New()
	root := tr.StartSpan("a", Int("n", 7), Bool("flag", true), Float("f", 0.5))
	root.Child("b").End()
	root.End()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []struct {
			Name     string         `json:"name"`
			Attrs    map[string]any `json:"attrs"`
			Children []struct {
				Name   string `json:"name"`
				Parent int64  `json:"parent"`
			} `json:"children"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, b.String())
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "a" {
		t.Fatalf("bad root: %+v", doc.Spans)
	}
	if doc.Spans[0].Attrs["n"].(float64) != 7 || doc.Spans[0].Attrs["flag"] != true {
		t.Errorf("attrs lost: %+v", doc.Spans[0].Attrs)
	}
	if len(doc.Spans[0].Children) != 1 || doc.Spans[0].Children[0].Parent == 0 {
		t.Errorf("child/parent links lost: %+v", doc.Spans[0].Children)
	}
}

func TestWriteText(t *testing.T) {
	tr := New()
	root := tr.StartSpan("outer")
	root.Child("inner", Int("rows", 42)).End()
	root.End()
	var b strings.Builder
	if err := tr.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "outer") || !strings.Contains(out, "  inner") ||
		!strings.Contains(out, "rows=42") {
		t.Errorf("text rendering missing pieces:\n%s", out)
	}
}

func TestNilTracerAndSpanNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	s := tr.StartSpan("x", Int("n", 1))
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	c := s.Child("y")
	c.SetAttr(String("k", "v"))
	c.End()
	s.End()
	if err := tr.Validate(); err != nil {
		t.Errorf("nil tracer Validate = %v", err)
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"spans":[]`) {
		t.Errorf("nil tracer JSON = %s", b.String())
	}
	if err := tr.WriteText(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := New()
	tr.SetMaxSpans(3)
	root := tr.StartSpan("root")
	for i := 0; i < 5; i++ {
		root.Child(fmt.Sprintf("c%d", i)).End()
	}
	root.End()
	if got := tr.SpanCount(); got != 3 {
		t.Errorf("SpanCount = %d, want 3 (capped)", got)
	}
	if got := tr.DroppedSpans(); got != 3 {
		t.Errorf("DroppedSpans = %d, want 3", got)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("capped tracer not well-formed: %v", err)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := New()
	root := tr.StartSpan("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.Child("work", Int("worker", int64(i)))
				c.SetAttr(Int("j", int64(j)))
				c.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	if err := tr.Validate(); err != nil {
		t.Fatalf("concurrent children broke the tree: %v", err)
	}
	if got := len(tr.FindAll("work")); got != 16*50 {
		t.Errorf("work spans = %d, want %d", got, 16*50)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("advisor.tool_calls")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("advisor.tool_calls") != c {
		t.Error("Counter did not return the same instance")
	}
	g := r.Gauge("advisor.est_cost")
	g.Set(12.5)
	if g.Value() != 12.5 {
		t.Errorf("gauge = %v", g.Value())
	}
	snap := r.Snapshot()
	if snap["advisor.tool_calls"] != 5 || snap["advisor.est_cost"] != 12.5 {
		t.Errorf("snapshot = %v", snap)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "advisor.est_cost 12.5") ||
		!strings.Contains(b.String(), "advisor.tool_calls 5") {
		t.Errorf("WriteTo output:\n%s", b.String())
	}
}

func TestNilRegistryNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Error("nil registry retained values")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
	PublishExpvar("nil-registry", r) // must not panic
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.cache.join_hits").Add(3)
	ds, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, path := range []string{"/debug/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/metrics" && !strings.Contains(string(body), "engine.cache.join_hits 3") {
			t.Errorf("metrics body missing counter:\n%s", body)
		}
	}
	// Publishing the same name twice must not panic.
	PublishExpvar("xmlshred", r)
}
