// Package optimizer is the cost-based query optimizer the whole stack
// leans on: it picks access paths (heap scan, index seek, covering
// index, materialized view, vertical partition groups) and join methods
// (hash join, index nested loops) for every branch of a sorted
// outer-union query, under a physical configuration, using per-table
// statistics. The same planner serves three callers exactly as in the
// paper's architecture (Fig. 2): the physical design tool's what-if
// costing, the search algorithms' mapping costing, and real execution.
package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/sqlast"
	"repro/internal/stats"
)

// Cost model constants (unit: one sequential page read = 1.0).
const (
	// CostTuple is the CPU cost of producing/inspecting one tuple.
	CostTuple = 0.002
	// CostSeek is the cost of one index traversal to a leaf.
	CostSeek = 0.02
	// CostRandIO is the cost of one random row lookup from an index.
	CostRandIO = 0.5
	// CostHashTuple is the per-tuple cost of hash build/probe.
	CostHashTuple = 0.004
	// CostSortTuple is the per-tuple-comparison cost of sorting.
	CostSortTuple = 0.004
	// CostBranch is the fixed startup cost of one union branch
	// (operator initialization, per-branch hash/probe structures).
	// Without it, near-tie fragmentations of a relation look free to
	// the model while paying real per-branch overhead at execution.
	CostBranch = 0.25
)

// AccessKind discriminates access paths.
type AccessKind int

const (
	// AccessScan reads the full heap table (or partition groups).
	AccessScan AccessKind = iota
	// AccessSeek traverses an index for a sargable predicate.
	AccessSeek
)

// Access describes how one table (or view) is read.
type Access struct {
	// Table is the base table or view being accessed.
	Table string
	// Kind is the access path.
	Kind AccessKind
	// Index is the index used by AccessSeek.
	Index *physical.Index
	// Covering reports whether the index covers all referenced columns
	// (no row lookups needed).
	Covering bool
	// SeekPred is the sargable predicate the seek applies.
	SeekPred *sqlast.Pred
	// PartGroups lists vertical partition groups read (nil when the
	// table is unpartitioned).
	PartGroups []int
	// Rows estimates the output cardinality after local predicates.
	Rows float64
	// Cost is the estimated access cost.
	Cost float64
}

// JoinMethod discriminates join algorithms.
type JoinMethod int

const (
	// JoinHash builds a hash table on the inner input.
	JoinHash JoinMethod = iota
	// JoinINL probes an inner index per outer row.
	JoinINL
)

func (m JoinMethod) String() string {
	if m == JoinINL {
		return "INL"
	}
	return "HASH"
}

// Join describes one join step of a left-deep plan.
type Join struct {
	Method JoinMethod
	// Inner describes the inner input (for hash: a scan; for INL the
	// Index field names the probed index).
	Inner Access
	// OuterCol/InnerCol are the equi-join columns.
	OuterCol, InnerCol sqlast.ColRef
	// Rows estimates the join output; Cost the incremental cost.
	Rows, Cost float64
}

// Branch is the physical plan of one union branch.
type Branch struct {
	// Sel is the branch being planned.
	Sel *sqlast.Select
	// View is non-nil when the branch is answered from a materialized
	// view; Driver then accesses the view.
	View *physical.View
	// Driver is the first (driving) access.
	Driver Access
	// Joins are the remaining joins in order.
	Joins []Join
	// Rows and Cost are branch-level estimates.
	Rows, Cost float64
}

// Plan is the physical plan of a sorted outer-union query.
type Plan struct {
	Query    *sqlast.Query
	Branches []*Branch
	// Rows and Cost are totals (Cost includes the final sort).
	Rows, Cost float64

	fpOnce sync.Once
	fp     string
}

// Fingerprint returns a canonical identity for the physical plan: the
// rendered operator tree plus each branch's SQL text. Two plans with
// equal fingerprints describe the same execution, so engines key
// compiled per-plan state (prepared executors, cached probe
// structures) on it. Computed once and memoized.
func (p *Plan) Fingerprint() string {
	p.fpOnce.Do(func() {
		var b strings.Builder
		b.WriteString(p.Explain())
		for _, br := range p.Branches {
			b.WriteString(br.Sel.SQL())
			b.WriteByte('\n')
		}
		p.fp = b.String()
	})
	return p.fp
}

// Objects returns the identities of every relational object the plan
// reads: base tables, partition group tables, indexes, and views. This
// is the I(Q,M) set of Section 4.8's cost derivation.
func (p *Plan) Objects() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	addAccess := func(a Access) {
		if len(a.PartGroups) > 0 {
			for _, g := range a.PartGroups {
				add(fmt.Sprintf("%s#g%d", a.Table, g))
			}
		} else {
			add(a.Table)
		}
		if a.Index != nil {
			add(a.Index.ID())
		}
	}
	for _, b := range p.Branches {
		if b.View != nil {
			add("view:" + b.View.Name)
		}
		addAccess(b.Driver)
		for _, j := range b.Joins {
			addAccess(j.Inner)
		}
		for _, pr := range b.Sel.Where {
			if pr.Kind == sqlast.PredExists || pr.Kind == sqlast.PredOrExists {
				add(pr.Table)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Explain renders the plan as an indented operator tree, one branch of
// the sorted outer union per block.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PLAN cost=%.2f rows=%.0f\n", p.Cost, p.Rows)
	for i, br := range p.Branches {
		fmt.Fprintf(&b, " BRANCH %d cost=%.2f rows=%.0f\n", i, br.Cost, br.Rows)
		if br.View != nil {
			fmt.Fprintf(&b, "  VIEW %s (%s JOIN %s)\n", br.View.Name, br.View.Outer, br.View.Inner)
		}
		b.WriteString("  " + explainAccess(br.Driver) + "\n")
		for _, j := range br.Joins {
			fmt.Fprintf(&b, "  %s JOIN (%s = %s) rows=%.0f\n   %s\n",
				j.Method, j.OuterCol, j.InnerCol, j.Rows, explainAccess(j.Inner))
		}
		for _, pr := range br.Sel.Where {
			if pr.Kind == sqlast.PredExists || pr.Kind == sqlast.PredOrExists {
				fmt.Fprintf(&b, "  SEMIJOIN %s\n", pr.Table)
			}
		}
	}
	if p.Query != nil && p.Query.OrderBy != "" {
		fmt.Fprintf(&b, " SORT BY %s\n", p.Query.OrderBy)
	}
	return b.String()
}

func explainAccess(a Access) string {
	switch {
	case a.Kind == AccessSeek && a.Index != nil:
		cover := ""
		if a.Covering {
			cover = " COVERING"
		}
		pred := ""
		if a.SeekPred != nil {
			pred = " [" + a.SeekPred.String() + "]"
		}
		return fmt.Sprintf("INDEX SEEK %s ON %s%s%s", a.Index.Name, a.Table, cover, pred)
	case len(a.PartGroups) > 0:
		return fmt.Sprintf("PARTITION SCAN %s groups=%v", a.Table, a.PartGroups)
	default:
		return fmt.Sprintf("SCAN %s", a.Table)
	}
}

// Optimizer plans queries against a statistics provider.
type Optimizer struct {
	// Provider supplies table statistics (derived during search, exact
	// when planning execution).
	Provider stats.Provider
	// Calls counts PlanQuery invocations — the experiments report
	// optimizer-call counts like the paper reports tool running time.
	Calls int64
}

// New creates an optimizer over the given statistics.
func New(p stats.Provider) *Optimizer { return &Optimizer{Provider: p} }

// PlanQuery builds the minimum-estimated-cost physical plan for the
// query under the configuration.
func (o *Optimizer) PlanQuery(q *sqlast.Query, cfg *physical.Config) (*Plan, error) {
	o.Calls++
	if cfg == nil {
		cfg = &physical.Config{}
	}
	plan := &Plan{Query: q}
	for _, s := range q.Branches {
		b, err := o.planBranch(s, cfg)
		if err != nil {
			return nil, err
		}
		plan.Branches = append(plan.Branches, b)
		plan.Rows += b.Rows
		plan.Cost += b.Cost + CostBranch
	}
	if q.OrderBy != "" && plan.Rows > 1 {
		plan.Cost += plan.Rows * math.Log2(plan.Rows+2) * CostSortTuple
	}
	return plan, nil
}

// Cost returns only the estimated cost.
func (o *Optimizer) Cost(q *sqlast.Query, cfg *physical.Config) (float64, error) {
	p, err := o.PlanQuery(q, cfg)
	if err != nil {
		return 0, err
	}
	return p.Cost, nil
}

// planBranch picks the cheaper of the base-table plan and any
// view-rewritten plan.
func (o *Optimizer) planBranch(s *sqlast.Select, cfg *physical.Config) (*Branch, error) {
	best, err := o.planBase(s, cfg)
	if err != nil {
		return nil, err
	}
	for _, v := range cfg.Views {
		rs, ok := RewriteOverView(s, v)
		if !ok {
			continue
		}
		vb, err := o.planViewBranch(rs, v, cfg)
		if err != nil {
			return nil, err
		}
		if best == nil || vb.Cost < best.Cost {
			// vb.Sel stays the rewritten select: it is what executes.
			best = vb
		}
	}
	if best == nil {
		return nil, fmt.Errorf("optimizer: no plan for branch %s", s.SQL())
	}
	return best, nil
}

// planViewBranch plans a rewritten single-table branch over a view.
func (o *Optimizer) planViewBranch(s *sqlast.Select, v *physical.View, cfg *physical.Config) (*Branch, error) {
	ts := v.Stats(o.Provider)
	acc := o.scanAccess(v.Name, ts, nil)
	rows, sel := o.localRows(s, v.Name, ts, nil)
	acc.Rows = rows
	_ = sel
	cost := acc.Cost
	rows, ecost, err := o.applyExists(s, map[string]bool{v.Name: true}, rows, cfg)
	if err != nil {
		return nil, err
	}
	cost += ecost + rows*CostTuple
	return &Branch{Sel: s, View: v, Driver: acc, Rows: rows, Cost: cost}, nil
}

// planBase enumerates left-deep join orders over the base tables.
func (o *Optimizer) planBase(s *sqlast.Select, cfg *physical.Config) (*Branch, error) {
	tables := s.From
	if len(tables) == 0 {
		return nil, fmt.Errorf("optimizer: branch without FROM: %s", s.SQL())
	}
	var best *Branch
	for _, perm := range permutations(tables) {
		b, err := o.planOrder(s, perm, cfg)
		if err != nil {
			continue // this order may be unjoinable; others may work
		}
		if best == nil || b.Cost < best.Cost {
			best = b
		}
	}
	if best == nil {
		return nil, fmt.Errorf("optimizer: no joinable order for branch %s", s.SQL())
	}
	return best, nil
}

// planOrder plans one left-deep order.
func (o *Optimizer) planOrder(s *sqlast.Select, order []string, cfg *physical.Config) (*Branch, error) {
	driver := order[0]
	dts := o.Provider.TableStats(driver)
	if dts == nil {
		return nil, fmt.Errorf("optimizer: no statistics for table %s", driver)
	}
	acc := o.bestTableAccess(s, driver, dts, cfg)
	b := &Branch{Sel: s, Driver: acc, Rows: acc.Rows, Cost: acc.Cost}
	joined := map[string]bool{driver: true}
	for _, t := range order[1:] {
		jp, ok := findJoinPred(s, joined, t)
		if !ok {
			return nil, fmt.Errorf("optimizer: no join predicate reaching %s", t)
		}
		outerCol, innerCol := jp.Left, jp.Right
		if innerCol.Table != t {
			outerCol, innerCol = jp.Right, jp.Left
		}
		its := o.Provider.TableStats(t)
		if its == nil {
			return nil, fmt.Errorf("optimizer: no statistics for table %s", t)
		}
		j := o.bestJoin(s, t, its, cfg, b.Rows, outerCol, innerCol)
		b.Joins = append(b.Joins, j)
		b.Rows = j.Rows
		b.Cost += j.Cost
		joined[t] = true
	}
	rows, ecost, err := o.applyExists(s, joined, b.Rows, cfg)
	if err != nil {
		return nil, err
	}
	b.Rows = rows
	b.Cost += ecost + rows*CostTuple
	return b, nil
}

// bestTableAccess picks the cheapest access path for a driving table.
func (o *Optimizer) bestTableAccess(s *sqlast.Select, table string, ts *stats.TableStats, cfg *physical.Config) Access {
	needed := s.ColumnsOf(table)
	vp := cfg.PartitionOf(table)
	rows, _ := o.localRows(s, table, ts, nil)
	best := o.scanAccess(table, ts, vp.GroupsForOrNil(needed))
	best.Rows = rows
	if vp != nil {
		// Partitioned tables scan their groups; indexes target the base
		// table and are unavailable (Section 3.1 equivalence).
		best.Cost = o.partScanCost(vp, ts, best.PartGroups)
		return best
	}
	for _, idx := range cfg.IndexesOn(table) {
		sp := sargablePred(s, table, idx.Key[0])
		if sp == nil {
			continue
		}
		ists := ts.Col(sp.Col.Column)
		if ists == nil {
			continue
		}
		matchFrac := ists.Selectivity(sp.Op, sp.Value) * (1 - ists.NullFrac)
		matchRows := float64(ts.Rows) * matchFrac
		covering := idx.Covers(needed)
		cost := CostSeek + matchRows*CostTuple
		if covering {
			cost += matchFrac * float64(idx.EstPages(ts))
		} else {
			cost += matchRows * CostRandIO
		}
		// Residual predicates beyond the seek multiply in.
		_, resSel := o.localRows(s, table, ts, sp)
		rows := math.Min(matchRows, float64(ts.Rows)) * resSel
		if cost < best.Cost {
			best = Access{
				Table: table, Kind: AccessSeek, Index: idx, Covering: covering,
				SeekPred: sp, Rows: rows, Cost: cost,
			}
		}
	}
	return best
}

// bestJoin picks hash vs index-nested-loop for the next inner table.
func (o *Optimizer) bestJoin(s *sqlast.Select, inner string, its *stats.TableStats,
	cfg *physical.Config, outerRows float64, outerCol, innerCol sqlast.ColRef) Join {
	needed := s.ColumnsOf(inner)
	innerRows, _ := o.localRows(s, inner, its, nil)
	// Join output estimate: |O| * |I| / max(d(innerCol), 1).
	d := 1.0
	if cs := its.Col(innerCol.Column); cs != nil && cs.Distinct > 0 {
		d = float64(cs.Distinct)
	}
	outRows := outerRows * innerRows / math.Max(d, 1)
	if outRows > outerRows*innerRows {
		outRows = outerRows * innerRows
	}
	vp := cfg.PartitionOf(inner)
	// Hash join: scan inner fully, build, probe.
	innerScan := o.scanAccess(inner, its, vp.GroupsForOrNil(needed))
	if vp != nil {
		innerScan.Cost = o.partScanCost(vp, its, innerScan.PartGroups)
	}
	hashCost := innerScan.Cost + (outerRows+innerRows)*CostHashTuple
	best := Join{Method: JoinHash, Inner: innerScan, OuterCol: outerCol, InnerCol: innerCol,
		Rows: outRows, Cost: hashCost}
	if vp == nil {
		fanout := outRows / math.Max(outerRows, 1)
		for _, idx := range cfg.IndexesOn(inner) {
			if idx.Key[0] != innerCol.Column {
				continue
			}
			covering := idx.Covers(needed)
			cost := outerRows * (CostSeek + fanout*CostTuple)
			if !covering {
				cost += outRows * CostRandIO
			}
			if cost < best.Cost {
				best = Join{Method: JoinINL,
					Inner:    Access{Table: inner, Kind: AccessSeek, Index: idx, Covering: covering},
					OuterCol: outerCol, InnerCol: innerCol, Rows: outRows, Cost: cost}
			}
		}
	}
	return best
}

// applyExists folds EXISTS semi-joins whose outer column is available.
func (o *Optimizer) applyExists(s *sqlast.Select, joined map[string]bool, rows float64,
	cfg *physical.Config) (float64, float64, error) {
	var cost float64
	for _, p := range s.Where {
		if p.Kind != sqlast.PredExists && p.Kind != sqlast.PredOrExists {
			continue
		}
		if !joined[p.OuterCol.Table] && cfg.View(p.OuterCol.Table) == nil {
			return 0, 0, fmt.Errorf("optimizer: EXISTS outer column %s not in scope", p.OuterCol)
		}
		ets := o.Provider.TableStats(p.Table)
		if ets == nil {
			return 0, 0, fmt.Errorf("optimizer: no statistics for EXISTS table %s", p.Table)
		}
		// Probe via an index on the join column when available,
		// otherwise build a hash of the inner table once.
		indexed := false
		for _, idx := range cfg.IndexesOn(p.Table) {
			if idx.Key[0] == p.JoinCol {
				indexed = true
				break
			}
		}
		if indexed {
			cost += rows * (CostSeek + CostTuple)
		} else {
			cost += float64(ets.Pages()) + float64(ets.Rows)*CostHashTuple + rows*CostHashTuple
		}
		// Selectivity of the semi-join (the PredOr part of PredOrExists
		// is already counted by localRows; keep the combined estimate
		// simple by treating the exists arm as additive match mass).
		if p.Kind == sqlast.PredExists {
			rows *= o.existsSelectivity(p, ets)
		}
	}
	return rows, cost, nil
}

func (o *Optimizer) existsSelectivity(p sqlast.Pred, ets *stats.TableStats) float64 {
	matching := float64(ets.Rows)
	if p.InnerCol != "" {
		if cs := ets.Col(p.InnerCol); cs != nil {
			matching *= cs.Selectivity(p.Op, p.Value) * (1 - cs.NullFrac)
		}
	}
	var parents float64 = 1
	if cs := ets.Col(p.JoinCol); cs != nil && cs.Distinct > 0 {
		parents = float64(cs.Distinct)
	}
	// P(parent has a matching child) assuming children spread evenly.
	perParent := matching / math.Max(parents, 1)
	sel := 1 - math.Exp(-perParent)
	if sel < 1e-9 {
		sel = 1e-9
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// localRows estimates a table's cardinality after its local predicates,
// excluding the given already-applied seek predicate.
func (o *Optimizer) localRows(s *sqlast.Select, table string, ts *stats.TableStats,
	skip *sqlast.Pred) (float64, float64) {
	sel := 1.0
	for i := range s.Where {
		p := &s.Where[i]
		if skip != nil && p == skip {
			continue
		}
		switch p.Kind {
		case sqlast.PredCompare:
			if p.Col.Table != table {
				continue
			}
			if cs := ts.Col(p.Col.Column); cs != nil {
				sel *= cs.Selectivity(p.Op, p.Value) * (1 - cs.NullFrac)
			}
		case sqlast.PredOr, sqlast.PredOrExists:
			if len(p.Cols) == 0 || p.Cols[0].Table != table {
				continue
			}
			keep := 1.0
			for _, c := range p.Cols {
				if cs := ts.Col(c.Column); cs != nil {
					keep *= 1 - cs.Selectivity(p.Op, p.Value)*(1-cs.NullFrac)
				}
			}
			sel *= 1 - keep*0.98 // small extra mass for the exists arm
		}
	}
	rows := float64(ts.Rows) * sel
	if rows < 0 {
		rows = 0
	}
	return rows, sel
}

// scanAccess costs a heap scan (or partition-group scan shell; the
// partition cost is filled by partScanCost).
func (o *Optimizer) scanAccess(table string, ts *stats.TableStats, groups []int) Access {
	return Access{
		Table:      table,
		Kind:       AccessScan,
		PartGroups: groups,
		Rows:       float64(ts.Rows),
		Cost:       float64(ts.Pages()) + float64(ts.Rows)*CostTuple,
	}
}

// partScanCost costs reading and aligning the needed partition groups.
func (o *Optimizer) partScanCost(vp *physical.VPartition, ts *stats.TableStats, groups []int) float64 {
	if ts == nil {
		return 0
	}
	total := math.Max(ts.RowBytes, 1)
	var cost float64
	for _, g := range groups {
		var gw float64 = 16 // replicated keys
		for _, c := range vp.Groups[g] {
			if cs := ts.Col(c); cs != nil {
				gw += (1 - cs.NullFrac) * math.Max(cs.AvgWidth, 1)
			} else {
				gw += 8
			}
		}
		frac := gw / (total + 16)
		if frac > 1 {
			frac = 1
		}
		pages := math.Ceil(float64(ts.Pages()) * frac)
		cost += pages + float64(ts.Rows)*CostTuple
	}
	if len(groups) > 1 {
		cost += float64(ts.Rows) * CostHashTuple * float64(len(groups)-1)
	}
	return cost
}

// sargablePred returns the first equality/range compare on the given
// table and column.
func sargablePred(s *sqlast.Select, table, col string) *sqlast.Pred {
	for i := range s.Where {
		p := &s.Where[i]
		if p.Kind == sqlast.PredCompare && p.Col.Table == table && p.Col.Column == col && p.Op != sqlast.OpNe {
			return p
		}
	}
	return nil
}

// findJoinPred locates a join predicate connecting the joined set to t.
func findJoinPred(s *sqlast.Select, joined map[string]bool, t string) (sqlast.Pred, bool) {
	for _, p := range s.Where {
		if p.Kind != sqlast.PredJoin {
			continue
		}
		if joined[p.Left.Table] && p.Right.Table == t {
			return p, true
		}
		if joined[p.Right.Table] && p.Left.Table == t {
			return sqlast.Pred{Kind: sqlast.PredJoin, Left: p.Right, Right: p.Left}, true
		}
	}
	return sqlast.Pred{}, false
}

// RewriteOverView rewrites a two-table join branch over a matching
// materialized view; ok is false when the view does not apply.
func RewriteOverView(s *sqlast.Select, v *physical.View) (*sqlast.Select, bool) {
	if len(s.From) != 2 {
		return nil, false
	}
	hasOuter, hasInner := false, false
	for _, t := range s.From {
		if t == v.Outer {
			hasOuter = true
		}
		if t == v.Inner {
			hasInner = true
		}
	}
	if !hasOuter || !hasInner {
		return nil, false
	}
	// The join must be Inner.PID = Outer.ID.
	joinOK := false
	for _, p := range s.Where {
		if p.Kind != sqlast.PredJoin {
			continue
		}
		l, r := p.Left, p.Right
		if l.Table == v.Outer {
			l, r = r, l
		}
		if l.Table == v.Inner && l.Column == rel.PIDColumn && r.Table == v.Outer && r.Column == rel.IDColumn {
			joinOK = true
		}
	}
	if !joinOK {
		return nil, false
	}
	// Every referenced column must be carried by the view.
	mapCol := func(c sqlast.ColRef) (sqlast.ColRef, bool) {
		if c.Table != v.Outer && c.Table != v.Inner {
			return c, true // e.g. EXISTS inner table columns
		}
		vc := v.ViewColumn(c.Table, c.Column)
		if vc == "" {
			return c, false
		}
		return sqlast.ColRef{Table: v.Name, Column: vc}, true
	}
	out := &sqlast.Select{From: []string{v.Name}}
	for _, it := range s.Items {
		ni := it
		if it.Col != nil {
			c, ok := mapCol(*it.Col)
			if !ok {
				return nil, false
			}
			ni.Col = &c
		}
		out.Items = append(out.Items, ni)
	}
	for _, p := range s.Where {
		np := p
		switch p.Kind {
		case sqlast.PredJoin:
			continue // absorbed by the view
		case sqlast.PredCompare:
			c, ok := mapCol(p.Col)
			if !ok {
				return nil, false
			}
			np.Col = c
		case sqlast.PredOr:
			np.Cols = nil
			for _, c := range p.Cols {
				nc, ok := mapCol(c)
				if !ok {
					return nil, false
				}
				np.Cols = append(np.Cols, nc)
			}
		case sqlast.PredExists, sqlast.PredOrExists:
			c, ok := mapCol(p.OuterCol)
			if !ok {
				return nil, false
			}
			np.OuterCol = c
			np.Cols = nil
			for _, oc := range p.Cols {
				nc, ok := mapCol(oc)
				if !ok {
					return nil, false
				}
				np.Cols = append(np.Cols, nc)
			}
		}
		out.Where = append(out.Where, np)
	}
	return out, true
}

// permutations enumerates all orders of the tables (branches join at
// most a handful of relations).
func permutations(items []string) [][]string {
	if len(items) <= 1 {
		return [][]string{append([]string(nil), items...)}
	}
	var out [][]string
	for i := range items {
		rest := make([]string, 0, len(items)-1)
		rest = append(rest, items[:i]...)
		rest = append(rest, items[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{items[i]}, p...))
		}
	}
	return out
}
