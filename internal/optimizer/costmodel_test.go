package optimizer

import (
	"testing"

	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/sqlast"
	"repro/internal/stats"
)

// scaleStats multiplies the row counts of a provider.
func scaleStats(p stats.MapProvider, f float64) stats.MapProvider {
	out := make(stats.MapProvider, len(p))
	for name, ts := range p {
		ns := &stats.TableStats{Name: ts.Name, Rows: int64(float64(ts.Rows) * f),
			RowBytes: ts.RowBytes, Cols: make(map[string]*stats.ColumnStats)}
		for c, cs := range ts.Cols {
			sc := *cs
			sc.Count = int64(float64(cs.Count) * f)
			if sc.Distinct > sc.Count {
				sc.Distinct = sc.Count
			}
			ns.Cols[c] = &sc
		}
		out[name] = ns
	}
	return out
}

// TestCostGrowsWithData checks the basic sanity property: the same
// plan problem on more data never estimates cheaper, for scans, seeks,
// and joins.
func TestCostGrowsWithData(t *testing.T) {
	base := fakeStats()
	queries := []*sqlast.Query{
		{Branches: []*sqlast.Select{selectMovie()}},
		{Branches: []*sqlast.Select{selectMovie(sqlast.Pred{
			Kind: sqlast.PredCompare, Op: sqlast.OpGe,
			Col:   sqlast.ColRef{Table: "movie", Column: "year"},
			Value: rel.Int(10),
		})}},
		{Branches: []*sqlast.Select{joinBranch()}},
	}
	cfgs := []*physical.Config{
		{},
		{Indexes: []*physical.Index{
			{Name: "y", Table: "movie", Key: []string{"year"}, Include: []string{"ID", "title"}},
			{Name: "p", Table: "actor", Key: []string{"PID"}, Include: []string{"actor"}},
		}},
	}
	for qi, q := range queries {
		for ci, cfg := range cfgs {
			prev := 0.0
			for _, f := range []float64{0.25, 1, 4, 16} {
				o := New(scaleStats(base, f))
				c, err := o.Cost(q, cfg)
				if err != nil {
					t.Fatalf("q%d cfg%d scale %f: %v", qi, ci, f, err)
				}
				if c < prev*0.999 {
					t.Errorf("q%d cfg%d: cost decreased with data: %.3f at previous scale vs %.3f", qi, ci, prev, c)
				}
				prev = c
			}
		}
	}
}

// TestMoreIndexesNeverHurt checks that enlarging a configuration never
// raises the estimated minimum cost (the optimizer may always ignore a
// structure).
func TestMoreIndexesNeverHurt(t *testing.T) {
	o := New(fakeStats())
	q := &sqlast.Query{Branches: []*sqlast.Select{joinBranch()}}
	cfg := &physical.Config{}
	prev, err := o.Cost(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adds := []*physical.Index{
		{Name: "a", Table: "movie", Key: []string{"genre"}},
		{Name: "b", Table: "movie", Key: []string{"genre"}, Include: []string{"ID", "title"}},
		{Name: "c", Table: "actor", Key: []string{"PID"}},
		{Name: "d", Table: "actor", Key: []string{"PID"}, Include: []string{"actor"}},
		{Name: "e", Table: "movie", Key: []string{"year"}},
	}
	for _, idx := range adds {
		cfg.AddIndex(idx)
		c, err := o.Cost(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c > prev*1.0001 {
			t.Errorf("adding %s raised cost: %.3f -> %.3f", idx.Name, prev, c)
		}
		prev = c
	}
	cfg.AddView(&physical.View{Name: "v", Outer: "movie", Inner: "actor",
		OuterCols: []string{"ID", "genre"}, InnerCols: []string{"actor"}})
	c, err := o.Cost(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c > prev*1.0001 {
		t.Errorf("adding a view raised cost: %.3f -> %.3f", prev, c)
	}
}

// TestSelectivityMonotoneInCost: a more selective predicate never
// estimates more expensive under an index.
func TestSelectivityMonotoneInCost(t *testing.T) {
	o := New(fakeStats())
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "y", Table: "movie", Key: []string{"year"},
		Include: []string{"ID", "title"}})
	prev := -1.0
	for _, bound := range []int64{0, 10, 25, 40, 54} {
		q := &sqlast.Query{Branches: []*sqlast.Select{selectMovie(sqlast.Pred{
			Kind: sqlast.PredCompare, Op: sqlast.OpGe,
			Col:   sqlast.ColRef{Table: "movie", Column: "year"},
			Value: rel.Int(bound),
		})}}
		c, err := o.Cost(q, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && c > prev*1.01 {
			t.Errorf("tighter bound %d raised cost: %.3f -> %.3f", bound, prev, c)
		}
		prev = c
	}
}
