package optimizer

import (
	"strings"
	"testing"

	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/sqlast"
	"repro/internal/stats"
)

// fakeStats builds a provider with two tables: a parent "movie" (10k
// rows) and a child "actor" (40k rows).
func fakeStats() stats.MapProvider {
	mk := func(name string, rows int64, cols map[string]*stats.ColumnStats, rowBytes float64) *stats.TableStats {
		return &stats.TableStats{Name: name, Rows: rows, RowBytes: rowBytes, Cols: cols}
	}
	intCol := func(count, distinct int64) *stats.ColumnStats {
		return &stats.ColumnStats{Count: count, Distinct: distinct, AvgWidth: 8, Typ: rel.TInt,
			Min: rel.Int(0), Max: rel.Int(distinct)}
	}
	strCol := func(count, distinct int64) *stats.ColumnStats {
		return &stats.ColumnStats{Count: count, Distinct: distinct, AvgWidth: 16, Typ: rel.TString}
	}
	return stats.MapProvider{
		"movie": mk("movie", 10000, map[string]*stats.ColumnStats{
			"ID":    intCol(10000, 10000),
			"PID":   intCol(10000, 1),
			"title": strCol(10000, 10000),
			"year":  intCol(10000, 55),
			"genre": strCol(10000, 20),
		}, 60),
		"actor": mk("actor", 40000, map[string]*stats.ColumnStats{
			"ID":    intCol(40000, 40000),
			"PID":   intCol(40000, 9000),
			"actor": strCol(40000, 2500),
		}, 40),
	}
}

func selectMovie(preds ...sqlast.Pred) *sqlast.Select {
	return &sqlast.Select{
		Items: []sqlast.SelectItem{
			{Col: &sqlast.ColRef{Table: "movie", Column: "ID"}, As: "ID"},
			{Col: &sqlast.ColRef{Table: "movie", Column: "title"}, As: "title"},
		},
		From:  []string{"movie"},
		Where: preds,
	}
}

func joinBranch() *sqlast.Select {
	return &sqlast.Select{
		Items: []sqlast.SelectItem{
			{Col: &sqlast.ColRef{Table: "movie", Column: "ID"}, As: "ID"},
			{Col: &sqlast.ColRef{Table: "actor", Column: "actor"}, As: "actor"},
		},
		From: []string{"movie", "actor"},
		Where: []sqlast.Pred{
			{Kind: sqlast.PredJoin,
				Left:  sqlast.ColRef{Table: "actor", Column: "PID"},
				Right: sqlast.ColRef{Table: "movie", Column: "ID"}},
			{Kind: sqlast.PredCompare, Op: sqlast.OpEq,
				Col:   sqlast.ColRef{Table: "movie", Column: "genre"},
				Value: rel.Str("g")},
		},
	}
}

func TestScanVsSeekOrdering(t *testing.T) {
	o := New(fakeStats())
	q := &sqlast.Query{Branches: []*sqlast.Select{selectMovie(sqlast.Pred{
		Kind: sqlast.PredCompare, Op: sqlast.OpEq,
		Col:   sqlast.ColRef{Table: "movie", Column: "title"},
		Value: rel.Str("x"),
	})}}
	scanCost, err := o.Cost(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "i", Table: "movie", Key: []string{"title"}, Include: []string{"ID"}})
	seekCost, err := o.Cost(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seekCost >= scanCost {
		t.Errorf("covering seek (%f) not cheaper than scan (%f)", seekCost, scanCost)
	}
	if seekCost > scanCost/20 {
		t.Errorf("selective covering seek should be far cheaper: %f vs %f", seekCost, scanCost)
	}
}

func TestNonCoveringSeekCostsLookups(t *testing.T) {
	o := New(fakeStats())
	// Unselective predicate: year >= 0 matches everything.
	q := &sqlast.Query{Branches: []*sqlast.Select{selectMovie(sqlast.Pred{
		Kind: sqlast.PredCompare, Op: sqlast.OpGe,
		Col:   sqlast.ColRef{Table: "movie", Column: "year"},
		Value: rel.Int(0),
	})}}
	scanCost, _ := o.Cost(q, nil)
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "i", Table: "movie", Key: []string{"year"}})
	plan, err := o.PlanQuery(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The optimizer must not pick a non-covering seek for an
	// unselective range: random lookups would dwarf the scan.
	if plan.Branches[0].Driver.Kind == AccessSeek {
		t.Errorf("picked non-covering seek for unselective predicate (scan cost %f)", scanCost)
	}
}

func TestJoinMethodSwitchesWithIndex(t *testing.T) {
	o := New(fakeStats())
	q := &sqlast.Query{Branches: []*sqlast.Select{joinBranch()}}
	plan, err := o.PlanQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Branches[0].Joins) != 1 || plan.Branches[0].Joins[0].Method != JoinHash {
		t.Errorf("without indexes expected hash join, got %+v", plan.Branches[0].Joins)
	}
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "i", Table: "actor", Key: []string{"PID"}, Include: []string{"actor"}})
	cfg.AddIndex(&physical.Index{Name: "g", Table: "movie", Key: []string{"genre"}, Include: []string{"ID"}})
	plan2, err := o.PlanQuery(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := plan2.Branches[0]
	if len(b.Joins) != 1 || b.Joins[0].Method != JoinINL {
		t.Errorf("with PID index expected INL join, got %v", b.Joins[0].Method)
	}
	if b.Cost >= plan.Branches[0].Cost {
		t.Errorf("indexed plan (%f) not cheaper than unindexed (%f)", b.Cost, plan.Branches[0].Cost)
	}
}

func TestViewRewrite(t *testing.T) {
	v := &physical.View{Name: "v", Outer: "movie", Inner: "actor",
		OuterCols: []string{"ID", "genre"}, InnerCols: []string{"actor"}}
	s := joinBranch()
	rs, ok := RewriteOverView(s, v)
	if !ok {
		t.Fatal("rewrite failed")
	}
	if len(rs.From) != 1 || rs.From[0] != "v" {
		t.Errorf("rewritten FROM = %v", rs.From)
	}
	if got := rs.SQL(); !strings.Contains(got, "v.movie__ID") || !strings.Contains(got, "v.actor__actor") {
		t.Errorf("rewritten SQL: %s", got)
	}
	// Missing column: no rewrite.
	v2 := &physical.View{Name: "v2", Outer: "movie", Inner: "actor",
		OuterCols: []string{"ID"}, InnerCols: []string{"actor"}}
	if _, ok := RewriteOverView(s, v2); ok {
		t.Error("rewrite should fail when the view lacks genre")
	}
}

func TestViewPlanWins(t *testing.T) {
	o := New(fakeStats())
	q := &sqlast.Query{Branches: []*sqlast.Select{joinBranch()}}
	base, _ := o.Cost(q, nil)
	cfg := &physical.Config{}
	cfg.AddView(&physical.View{Name: "v", Outer: "movie", Inner: "actor",
		OuterCols: []string{"ID", "genre"}, InnerCols: []string{"actor"}})
	plan, err := o.PlanQuery(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Branches[0].View == nil {
		t.Error("view plan not chosen")
	}
	if plan.Cost >= base {
		t.Errorf("view plan (%f) not cheaper than base (%f)", plan.Cost, base)
	}
}

func TestPartitionScanCheaper(t *testing.T) {
	o := New(fakeStats())
	// Query touching only 2 of movie's columns.
	q := &sqlast.Query{Branches: []*sqlast.Select{selectMovie()}}
	base, _ := o.Cost(q, nil)
	cfg := &physical.Config{}
	cfg.AddPartition(&physical.VPartition{Table: "movie", Groups: [][]string{
		{"ID", "title"}, {"year", "genre"},
	}})
	part, err := o.Cost(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if part >= base {
		t.Errorf("partition scan (%f) not cheaper than full scan (%f)", part, base)
	}
}

func TestExistsCosting(t *testing.T) {
	o := New(fakeStats())
	s := selectMovie()
	s.Where = append(s.Where, sqlast.Pred{
		Kind: sqlast.PredExists, Op: sqlast.OpEq, Value: rel.Str("x"),
		Table: "actor", JoinCol: "PID", InnerCol: "actor",
		OuterCol: sqlast.ColRef{Table: "movie", Column: "ID"},
	})
	q := &sqlast.Query{Branches: []*sqlast.Select{s}}
	hashCost, err := o.Cost(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &physical.Config{}
	cfg.AddIndex(&physical.Index{Name: "i", Table: "actor", Key: []string{"PID"}})
	idxCost, err := o.Cost(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idxCost >= hashCost {
		t.Errorf("indexed exists (%f) not cheaper than hash exists (%f)", idxCost, hashCost)
	}
}

func TestPlanObjects(t *testing.T) {
	o := New(fakeStats())
	cfg := &physical.Config{}
	idx := &physical.Index{Name: "i", Table: "actor", Key: []string{"PID"}, Include: []string{"actor"}}
	cfg.AddIndex(idx)
	cfg.AddIndex(&physical.Index{Name: "g", Table: "movie", Key: []string{"genre"}, Include: []string{"ID", "title"}})
	q := &sqlast.Query{Branches: []*sqlast.Select{joinBranch()}}
	plan, err := o.PlanQuery(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	objs := strings.Join(plan.Objects(), " ")
	if !strings.Contains(objs, "idx:actor(PID)") {
		t.Errorf("objects missing actor index: %s", objs)
	}
}

func TestCallsCount(t *testing.T) {
	o := New(fakeStats())
	q := &sqlast.Query{Branches: []*sqlast.Select{selectMovie()}}
	for i := 0; i < 5; i++ {
		if _, err := o.Cost(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if o.Calls != 5 {
		t.Errorf("Calls = %d", o.Calls)
	}
}

func TestPermutations(t *testing.T) {
	perms := permutations([]string{"a", "b", "c"})
	if len(perms) != 6 {
		t.Fatalf("permutations = %d", len(perms))
	}
	seen := map[string]bool{}
	for _, p := range perms {
		seen[strings.Join(p, "")] = true
	}
	if len(seen) != 6 {
		t.Errorf("duplicate permutations: %v", perms)
	}
}
