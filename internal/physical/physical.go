// Package physical describes physical design structures — indexes
// (clustered-key style composite indexes with INCLUDE columns),
// materialized join views, and vertical partitions — shared by the
// what-if optimizer (costing), the execution engine (building), and the
// physical design tool (selection under a storage bound).
package physical

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rel"
	"repro/internal/stats"
)

// Index is a secondary index on a base table: composite key columns
// plus non-key INCLUDE columns (covering indexes, footnote 2 of the
// paper).
type Index struct {
	// Name is the index name.
	Name string
	// Table is the base table.
	Table string
	// Key lists the key columns in order.
	Key []string
	// Include lists covered non-key columns.
	Include []string
}

// ID returns a canonical identity string for deduplication.
func (i *Index) ID() string {
	inc := append([]string(nil), i.Include...)
	sort.Strings(inc)
	return fmt.Sprintf("idx:%s(%s)inc(%s)", i.Table, strings.Join(i.Key, ","), strings.Join(inc, ","))
}

// Covers reports whether every column in cols is stored in the index.
func (i *Index) Covers(cols []string) bool {
	for _, c := range cols {
		if !i.HasColumn(c) {
			return false
		}
	}
	return true
}

// HasColumn reports whether the index stores the column.
func (i *Index) HasColumn(c string) bool {
	for _, k := range i.Key {
		if k == c {
			return true
		}
	}
	for _, k := range i.Include {
		if k == c {
			return true
		}
	}
	return false
}

// EstBytes estimates the index size from table statistics.
func (i *Index) EstBytes(ts *stats.TableStats) int64 {
	if ts == nil {
		return 0
	}
	width := 12.0 // row pointer + entry overhead
	for _, c := range append(append([]string(nil), i.Key...), i.Include...) {
		if cs := ts.Col(c); cs != nil {
			width += (1-cs.NullFrac)*colWidth(cs) + cs.NullFrac
		} else {
			width += 8
		}
	}
	return int64(width * float64(ts.Rows))
}

// EstPages estimates the index size in pages.
func (i *Index) EstPages(ts *stats.TableStats) int64 {
	p := (i.EstBytes(ts) + rel.PageSize - 1) / rel.PageSize
	if p < 1 {
		p = 1
	}
	return p
}

func colWidth(cs *stats.ColumnStats) float64 {
	if cs.AvgWidth > 0 {
		return cs.AvgWidth
	}
	if cs.Typ == rel.TString {
		return 12
	}
	return 8
}

// View is a materialized parent-child join view: the join of Outer and
// Inner on Inner.PID = Outer.ID, carrying the listed columns of each.
// Column c of table t appears in the view as t__c.
type View struct {
	// Name is the view name.
	Name string
	// Outer is the parent-side table; Inner the child side.
	Outer, Inner string
	// OuterCols and InnerCols are the carried columns.
	OuterCols, InnerCols []string
}

// ID returns a canonical identity string for deduplication.
func (v *View) ID() string {
	oc := append([]string(nil), v.OuterCols...)
	ic := append([]string(nil), v.InnerCols...)
	sort.Strings(oc)
	sort.Strings(ic)
	return fmt.Sprintf("view:%s(%s)x%s(%s)", v.Outer, strings.Join(oc, ","), v.Inner, strings.Join(ic, ","))
}

// ViewColumn returns the view column name carrying table.col, or ""
// when the view does not carry it.
func (v *View) ViewColumn(table, col string) string {
	cols := v.OuterCols
	if table == v.Inner {
		cols = v.InnerCols
	} else if table != v.Outer {
		return ""
	}
	for _, c := range cols {
		if c == col {
			return table + "__" + col
		}
	}
	return ""
}

// EstRows estimates the view cardinality: one row per inner (child)
// row that joins, approximated by the inner row count.
func (v *View) EstRows(p stats.Provider) int64 {
	in := p.TableStats(v.Inner)
	if in == nil {
		return 0
	}
	return in.Rows
}

// EstBytes estimates the materialized size.
func (v *View) EstBytes(p stats.Provider) int64 {
	rows := float64(v.EstRows(p))
	width := 8.0
	add := func(t string, cols []string) {
		ts := p.TableStats(t)
		if ts == nil {
			width += 8 * float64(len(cols))
			return
		}
		for _, c := range cols {
			if cs := ts.Col(c); cs != nil {
				width += (1-cs.NullFrac)*colWidth(cs) + cs.NullFrac
			} else {
				width += 8
			}
		}
	}
	add(v.Outer, v.OuterCols)
	add(v.Inner, v.InnerCols)
	return int64(width * rows)
}

// Stats derives TableStats for the view so the optimizer can cost
// access to it like a table.
func (v *View) Stats(p stats.Provider) *stats.TableStats {
	rows := v.EstRows(p)
	ts := &stats.TableStats{Name: v.Name, Rows: rows, Cols: make(map[string]*stats.ColumnStats)}
	var width float64 = 8
	copyCols := func(t string, cols []string) {
		src := p.TableStats(t)
		for _, c := range cols {
			name := t + "__" + c
			if src != nil {
				if cs := src.Col(c); cs != nil {
					sc := *cs
					if sc.Distinct > rows {
						sc.Distinct = rows
					}
					ts.Cols[name] = &sc
					width += (1-sc.NullFrac)*colWidth(&sc) + sc.NullFrac
					continue
				}
			}
			ts.Cols[name] = &stats.ColumnStats{Typ: rel.TInt, Count: rows, Distinct: rows, AvgWidth: 8}
			width += 8
		}
	}
	copyCols(v.Outer, v.OuterCols)
	copyCols(v.Inner, v.InnerCols)
	ts.RowBytes = width
	return ts
}

// VPartition is a vertical partitioning of a base table: each group
// holds the listed non-key columns; every group replicates ID and PID
// (the definition of Section 3.1).
type VPartition struct {
	// Table is the partitioned base table.
	Table string
	// Groups lists the non-key columns of each partition.
	Groups [][]string
}

// ID returns a canonical identity string for deduplication.
func (vp *VPartition) ID() string {
	parts := make([]string, len(vp.Groups))
	for i, g := range vp.Groups {
		gs := append([]string(nil), g...)
		sort.Strings(gs)
		parts[i] = strings.Join(gs, ",")
	}
	sort.Strings(parts)
	return fmt.Sprintf("vpart:%s[%s]", vp.Table, strings.Join(parts, "|"))
}

// GroupTable returns the table name of partition group g.
func (vp *VPartition) GroupTable(g int) string {
	return fmt.Sprintf("%s__g%d", vp.Table, g)
}

// GroupsForOrNil is GroupsFor tolerating a nil receiver (unpartitioned
// tables yield nil groups).
func (vp *VPartition) GroupsForOrNil(cols []string) []int {
	if vp == nil {
		return nil
	}
	return vp.GroupsFor(cols)
}

// GroupsFor returns the indices of the groups needed to reconstruct the
// given non-key columns (key columns are in every group).
func (vp *VPartition) GroupsFor(cols []string) []int {
	var out []int
	for gi, g := range vp.Groups {
		need := false
		for _, c := range cols {
			if c == rel.IDColumn || c == rel.PIDColumn {
				continue
			}
			for _, gc := range g {
				if gc == c {
					need = true
					break
				}
			}
			if need {
				break
			}
		}
		if need {
			out = append(out, gi)
		}
	}
	if len(out) == 0 && len(vp.Groups) > 0 {
		out = []int{0} // key-only access reads the first group
	}
	return out
}

// EstBytes estimates the total partitioned size: base data plus
// replicated keys per extra group.
func (vp *VPartition) EstBytes(ts *stats.TableStats) int64 {
	if ts == nil {
		return 0
	}
	extra := int64(len(vp.Groups)-1) * 16 * ts.Rows
	if extra < 0 {
		extra = 0
	}
	return ts.Bytes() + extra
}

// Config is a physical configuration: the set of structures the
// optimizer may use.
type Config struct {
	Indexes    []*Index
	Views      []*View
	Partitions []*VPartition
}

// Clone returns a shallow copy with independent slices.
func (c *Config) Clone() *Config {
	return &Config{
		Indexes:    append([]*Index(nil), c.Indexes...),
		Views:      append([]*View(nil), c.Views...),
		Partitions: append([]*VPartition(nil), c.Partitions...),
	}
}

// AddIndex appends an index unless an identical one exists.
func (c *Config) AddIndex(i *Index) bool {
	for _, e := range c.Indexes {
		if e.ID() == i.ID() {
			return false
		}
	}
	c.Indexes = append(c.Indexes, i)
	return true
}

// AddView appends a view unless an identical one exists.
func (c *Config) AddView(v *View) bool {
	for _, e := range c.Views {
		if e.ID() == v.ID() {
			return false
		}
	}
	c.Views = append(c.Views, v)
	return true
}

// AddPartition appends a vertical partitioning; at most one per table.
func (c *Config) AddPartition(vp *VPartition) bool {
	for _, e := range c.Partitions {
		if e.Table == vp.Table {
			return false
		}
	}
	c.Partitions = append(c.Partitions, vp)
	return true
}

// IndexesOn returns the indexes on a table.
func (c *Config) IndexesOn(table string) []*Index {
	var out []*Index
	for _, i := range c.Indexes {
		if i.Table == table {
			out = append(out, i)
		}
	}
	return out
}

// PartitionOf returns the vertical partitioning of a table, or nil.
func (c *Config) PartitionOf(table string) *VPartition {
	for _, vp := range c.Partitions {
		if vp.Table == table {
			return vp
		}
	}
	return nil
}

// View returns the named view, or nil.
func (c *Config) View(name string) *View {
	for _, v := range c.Views {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// EstBytes estimates the configuration's structure size (indexes and
// views; partitions count only their key-replication overhead).
func (c *Config) EstBytes(p stats.Provider) int64 {
	var n int64
	for _, i := range c.Indexes {
		n += i.EstBytes(p.TableStats(i.Table))
	}
	for _, v := range c.Views {
		n += v.EstBytes(p)
	}
	for _, vp := range c.Partitions {
		ts := p.TableStats(vp.Table)
		if ts != nil {
			n += vp.EstBytes(ts) - ts.Bytes()
		}
	}
	return n
}

// String summarizes the configuration.
func (c *Config) String() string {
	var b strings.Builder
	for _, i := range c.Indexes {
		fmt.Fprintf(&b, "INDEX %s ON %s(%s)", i.Name, i.Table, strings.Join(i.Key, ","))
		if len(i.Include) > 0 {
			fmt.Fprintf(&b, " INCLUDE(%s)", strings.Join(i.Include, ","))
		}
		b.WriteString("\n")
	}
	for _, v := range c.Views {
		fmt.Fprintf(&b, "VIEW %s AS %s JOIN %s\n", v.Name, v.Outer, v.Inner)
	}
	for _, vp := range c.Partitions {
		fmt.Fprintf(&b, "VPARTITION %s INTO %d GROUPS\n", vp.Table, len(vp.Groups))
	}
	return b.String()
}
