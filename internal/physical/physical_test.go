package physical

import (
	"strings"
	"testing"

	"repro/internal/rel"
	"repro/internal/stats"
)

func tableStats() *stats.TableStats {
	return &stats.TableStats{
		Name: "movie", Rows: 10000, RowBytes: 80,
		Cols: map[string]*stats.ColumnStats{
			"ID":    {Count: 10000, Distinct: 10000, AvgWidth: 8, Typ: rel.TInt},
			"PID":   {Count: 10000, Distinct: 1, AvgWidth: 8, Typ: rel.TInt},
			"title": {Count: 10000, Distinct: 10000, AvgWidth: 20, Typ: rel.TString},
			"year":  {Count: 10000, Distinct: 55, AvgWidth: 8, Typ: rel.TInt},
		},
	}
}

func TestIndexIdentityAndCoverage(t *testing.T) {
	a := &Index{Name: "x", Table: "movie", Key: []string{"year"}, Include: []string{"title", "ID"}}
	b := &Index{Name: "y", Table: "movie", Key: []string{"year"}, Include: []string{"ID", "title"}}
	if a.ID() != b.ID() {
		t.Errorf("include order should not change identity: %s vs %s", a.ID(), b.ID())
	}
	if !a.Covers([]string{"year", "title", "ID"}) {
		t.Error("Covers should include key and include columns")
	}
	if a.Covers([]string{"genre"}) {
		t.Error("Covers should reject missing columns")
	}
}

func TestIndexSizeScalesWithColumns(t *testing.T) {
	ts := tableStats()
	small := &Index{Table: "movie", Key: []string{"year"}}
	big := &Index{Table: "movie", Key: []string{"year"}, Include: []string{"title", "ID"}}
	if small.EstBytes(ts) >= big.EstBytes(ts) {
		t.Errorf("wider index not bigger: %d vs %d", small.EstBytes(ts), big.EstBytes(ts))
	}
	if small.EstPages(ts) < 1 {
		t.Error("pages must be at least 1")
	}
}

func TestViewColumnsAndStats(t *testing.T) {
	v := &View{Name: "v", Outer: "movie", Inner: "actor",
		OuterCols: []string{"ID", "year"}, InnerCols: []string{"actor"}}
	if got := v.ViewColumn("movie", "year"); got != "movie__year" {
		t.Errorf("ViewColumn = %q", got)
	}
	if got := v.ViewColumn("movie", "title"); got != "" {
		t.Errorf("uncarried column should be empty, got %q", got)
	}
	if got := v.ViewColumn("elsewhere", "x"); got != "" {
		t.Errorf("foreign table should be empty, got %q", got)
	}
	prov := stats.MapProvider{
		"movie": tableStats(),
		"actor": {Name: "actor", Rows: 40000, RowBytes: 30, Cols: map[string]*stats.ColumnStats{
			"actor": {Count: 40000, Distinct: 2000, AvgWidth: 16, Typ: rel.TString},
		}},
	}
	if v.EstRows(prov) != 40000 {
		t.Errorf("EstRows = %d", v.EstRows(prov))
	}
	ts := v.Stats(prov)
	if ts.Cols["movie__year"] == nil || ts.Cols["actor__actor"] == nil {
		t.Errorf("view stats columns: %v", ts.Cols)
	}
	if ts.Rows != 40000 {
		t.Errorf("view stats rows = %d", ts.Rows)
	}
}

func TestVPartitionGroups(t *testing.T) {
	vp := &VPartition{Table: "movie", Groups: [][]string{{"title"}, {"year", "genre"}}}
	if got := vp.GroupsFor([]string{"title"}); len(got) != 1 || got[0] != 0 {
		t.Errorf("GroupsFor(title) = %v", got)
	}
	if got := vp.GroupsFor([]string{"title", "genre"}); len(got) != 2 {
		t.Errorf("GroupsFor(title,genre) = %v", got)
	}
	// Key-only access reads one group.
	if got := vp.GroupsFor([]string{"ID"}); len(got) != 1 {
		t.Errorf("GroupsFor(ID) = %v", got)
	}
	if got := (*VPartition)(nil).GroupsForOrNil([]string{"x"}); got != nil {
		t.Errorf("nil receiver should yield nil, got %v", got)
	}
	if vp.GroupTable(1) != "movie__g1" {
		t.Errorf("GroupTable = %s", vp.GroupTable(1))
	}
}

func TestConfigDedupAndLookup(t *testing.T) {
	cfg := &Config{}
	i1 := &Index{Name: "a", Table: "movie", Key: []string{"year"}}
	i2 := &Index{Name: "b", Table: "movie", Key: []string{"year"}} // same identity
	if !cfg.AddIndex(i1) {
		t.Error("first add failed")
	}
	if cfg.AddIndex(i2) {
		t.Error("duplicate index added")
	}
	if len(cfg.IndexesOn("movie")) != 1 || len(cfg.IndexesOn("actor")) != 0 {
		t.Error("IndexesOn wrong")
	}
	v := &View{Name: "v", Outer: "movie", Inner: "actor", OuterCols: []string{"ID"}, InnerCols: []string{"actor"}}
	if !cfg.AddView(v) || cfg.AddView(v) {
		t.Error("view dedup wrong")
	}
	if cfg.View("v") == nil || cfg.View("w") != nil {
		t.Error("View lookup wrong")
	}
	vp := &VPartition{Table: "movie", Groups: [][]string{{"title"}, {"year"}}}
	if !cfg.AddPartition(vp) || cfg.AddPartition(vp) {
		t.Error("partition dedup wrong")
	}
	if cfg.PartitionOf("movie") == nil || cfg.PartitionOf("actor") != nil {
		t.Error("PartitionOf wrong")
	}
	clone := cfg.Clone()
	clone.Indexes = clone.Indexes[:0]
	if len(cfg.Indexes) != 1 {
		t.Error("Clone shares slices")
	}
	s := cfg.String()
	for _, want := range []string{"INDEX", "VIEW", "VPARTITION"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %s: %s", want, s)
		}
	}
}

func TestConfigEstBytes(t *testing.T) {
	prov := stats.MapProvider{"movie": tableStats()}
	cfg := &Config{}
	if cfg.EstBytes(prov) != 0 {
		t.Error("empty config should be 0 bytes")
	}
	cfg.AddIndex(&Index{Table: "movie", Key: []string{"year"}})
	if cfg.EstBytes(prov) <= 0 {
		t.Error("index bytes not counted")
	}
}
