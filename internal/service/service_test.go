package service

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// serviceQueries is the mixed workload the battery runs: heap scans,
// a hash/INL join (actor), and multi-branch unions, so the shared
// caches actually hold join tables and several prepared plans.
var serviceQueries = []string{
	`//movie[year >= 2000]/(title | box_office)`,
	`//movie[genre = "genre-03"]/(title | year | actor)`,
	`//movie/year`,
	`//movie/(title | aka_title)`,
	`//movie[actor = "Bob Author-00017"]/title`,
}

// movieFixture shreds a seeded movie corpus and returns the pieces a
// test needs to register it and to compute reference answers.
func movieFixture(t testing.TB, movies int) (*shred.Mapping, *rel.Database, *engine.Built) {
	t.Helper()
	tree := schema.Movie()
	doc := xmlgen.GenerateMovie(tree, xmlgen.MovieOptions{Movies: movies, Seed: 21})
	m, err := shred.Compile(tree)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatalf("Shred: %v", err)
	}
	built, err := engine.Build(db, &physical.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m, db, built
}

// refResults executes every query directly through the engine on its
// own private Built — the ground truth the service answers must be
// bit-identical to.
func refResults(t testing.TB, m *shred.Mapping, db *rel.Database, queries []string) []*engine.Result {
	t.Helper()
	built, err := engine.Build(db, &physical.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	opt := optimizer.New(stats.FromDatabase(db))
	out := make([]*engine.Result, len(queries))
	for i, qs := range queries {
		sql, err := translate.Translate(m, xpath.MustParse(qs))
		if err != nil {
			t.Fatalf("%s: translate: %v", qs, err)
		}
		plan, err := opt.PlanQuery(sql, &physical.Config{})
		if err != nil {
			t.Fatalf("%s: plan: %v", qs, err)
		}
		out[i], err = engine.Execute(built, plan)
		if err != nil {
			t.Fatalf("%s: execute: %v", qs, err)
		}
	}
	return out
}

// diffResponse compares a service response against a direct engine
// result for bit-identity: columns, row order, every value (BitEqual
// so NaN matches NaN), and stats. Empty string means identical.
func diffResponse(got *Response, want *engine.Result) string {
	if len(got.Cols) != len(want.Cols) {
		return fmt.Sprintf("%d cols, want %d", len(got.Cols), len(want.Cols))
	}
	for i := range got.Cols {
		if got.Cols[i] != want.Cols[i] {
			return fmt.Sprintf("col %d = %q, want %q", i, got.Cols[i], want.Cols[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Sprintf("%d rows, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			return fmt.Sprintf("row %d has %d values, want %d", i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range got.Rows[i] {
			if !got.Rows[i][j].BitEqual(want.Rows[i][j]) {
				return fmt.Sprintf("row %d col %d = %v, want %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	if got.Stats != want.Stats {
		return fmt.Sprintf("stats %+v, want %+v", got.Stats, want.Stats)
	}
	return ""
}

// requireSameResult is diffResponse as a fatal test assertion.
func requireSameResult(t testing.TB, label string, got *Response, want *engine.Result) {
	t.Helper()
	if d := diffResponse(got, want); d != "" {
		t.Fatalf("%s: %s", label, d)
	}
}

func TestServiceQueryBasic(t *testing.T) {
	m, db, built := movieFixture(t, 200)
	want := refResults(t, m, db, serviceQueries)
	reg := obs.NewRegistry()
	svc := New(Config{Registry: reg, PoolWorkers: 2})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		for i, qs := range serviceQueries {
			resp, err := svc.Query(ctx, Request{Corpus: "movie", Tenant: "t0", XPath: qs})
			if err != nil {
				t.Fatalf("round %d query %d: %v", round, i, err)
			}
			requireSameResult(t, qs, resp, want[i])
		}
	}
	// The plan cache translated each text once; round two was all hits.
	snap := reg.Snapshot()
	if got := snap["service.plan.misses"]; got != float64(len(serviceQueries)) {
		t.Errorf("plan misses = %v, want %d", got, len(serviceQueries))
	}
	if got := snap["service.plan.hits"]; got != float64(len(serviceQueries)) {
		t.Errorf("plan hits = %v, want %d", got, len(serviceQueries))
	}
	if got := snap["service.completed"]; got != float64(2*len(serviceQueries)) {
		t.Errorf("completed = %v, want %d", got, 2*len(serviceQueries))
	}
}

func TestServiceErrors(t *testing.T) {
	m, _, built := movieFixture(t, 50)
	svc := New(Config{})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.Query(ctx, Request{Corpus: "nope", Tenant: "t", XPath: "//movie/year"}); !errors.Is(err, ErrUnknownCorpus) {
		t.Errorf("unknown corpus: got %v", err)
	}
	// A parse error is cached, answered identically on retry, and never
	// consumes tenant quota.
	for i := 0; i < 2; i++ {
		if _, err := svc.Query(ctx, Request{Corpus: "movie", Tenant: "t", XPath: "//movie["}); err == nil {
			t.Fatalf("attempt %d: bad query succeeded", i)
		}
	}
	if inflight, _, ok := svc.TenantPeaks("t"); ok && inflight != 0 {
		t.Errorf("plan errors consumed quota: peak inflight %d", inflight)
	}
	if err := svc.RegisterBuilt("movie", built, m, nil); err == nil {
		t.Error("duplicate register succeeded")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Query(ctx, Request{Corpus: "movie", Tenant: "t", XPath: "//movie/year"}); !errors.Is(err, ErrClosed) {
		t.Errorf("after Close: got %v", err)
	}
}

func TestDeadlineErrorTaxonomy(t *testing.T) {
	err := wrapDeadline("queued", context.DeadlineExceeded)
	if !errors.Is(err, ErrDeadline) {
		t.Error("DeadlineError does not match ErrDeadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("DeadlineError does not match the wrapped context error")
	}
	var de *DeadlineError
	if !errors.As(err, &de) || de.Phase != "queued" {
		t.Errorf("phase not preserved: %v", err)
	}
}
