// Package service is the multi-tenant query front end over the engine:
// a long-lived server that registers named corpora (each one shared
// engine.Built — or paged storage view — for every session), translates
// and plans XPath once per query text through a process-wide
// single-flight cache, and admits requests under per-tenant concurrency
// and in-flight-memory quotas, a bounded global morsel-worker pool, and
// per-request deadlines. Admitted queries execute through the batch
// executor at whatever parallelism the pool grants; results are
// bit-identical to a direct engine.Execute at any grant (the morsel
// determinism contract), so fairness decisions never change answers.
//
// Everything the admission layer does is observable through the
// obs.Registry handed in at construction: service.admitted /
// service.rejected / service.timedout counters, service.queue_depth and
// service.pool.* gauges, and per-tenant service.tenant.<name>.* gauges
// with lifetime peaks — the property tests assert quota enforcement
// from those gauges, and the -debug-addr endpoints serve them live.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/xpath"
)

// Sentinel errors. ErrOverloaded and ErrDeadline are the two
// admission-control outcomes a client must tell apart: the first means
// "back off and retry", the second "the request ran out of time".
var (
	// ErrOverloaded reports a tenant whose wait queue is full; the
	// request was rejected without queueing (fast-fail on overload).
	ErrOverloaded = errors.New("service: tenant overloaded, queue full")
	// ErrDeadline reports a request that ran out of time, in the
	// admission queue or mid-execution. errors.Is also matches the
	// underlying context error (context.DeadlineExceeded or Canceled).
	ErrDeadline = errors.New("service: request deadline exceeded")
	// ErrUnknownCorpus reports a query against a corpus name that was
	// never registered.
	ErrUnknownCorpus = errors.New("service: unknown corpus")
	// ErrClosed fences use after Close.
	ErrClosed = errors.New("service: closed")
)

// DeadlineError is the concrete error for a request that ran out of
// time; Phase says where ("queued" while waiting for admission,
// "execute" mid-query). It matches both ErrDeadline and the wrapped
// context error under errors.Is.
type DeadlineError struct {
	Phase string
	Err   error
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("service: deadline exceeded while %s: %v", e.Phase, e.Err)
}

func (e *DeadlineError) Unwrap() error { return e.Err }

// Is matches ErrDeadline so callers can test the service-level
// condition without caring which context error tripped it.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

func wrapDeadline(phase string, err error) error {
	return &DeadlineError{Phase: phase, Err: err}
}

// Config sizes a Service. Zero values take documented defaults.
type Config struct {
	// PoolWorkers is the capacity of the global morsel-worker pool:
	// the number of *extra* parallel workers (beyond each query's own
	// goroutine) that may exist process-wide at once. Default
	// GOMAXPROCS; negative disables intra-query parallelism entirely.
	PoolWorkers int
	// MaxWorkersPerQuery caps the workers any one query may be granted,
	// counting its own goroutine. Default 4.
	MaxWorkersPerQuery int
	// DefaultTimeout is applied to requests that carry no timeout of
	// their own. 0 = no deadline.
	DefaultTimeout time.Duration
	// DefaultQuota is the quota for tenants without an explicit
	// SetTenantQuota. Zero fields default to MaxConcurrent 4,
	// MaxQueued 16, MemBytes unlimited.
	DefaultQuota TenantQuota
	// MemEstimate is the per-request in-flight memory charge when the
	// request does not declare one. Default 1 MiB.
	MemEstimate int64
	// Registry receives the admission counters and gauges; nil
	// disables them (metrics no-op). Tracer receives service.query
	// spans; nil disables tracing.
	Registry *obs.Registry
	Tracer   *obs.Tracer
}

// Request is one query submission.
type Request struct {
	Corpus string `json:"corpus"`
	Tenant string `json:"tenant"`
	XPath  string `json:"xpath"`
	// Workers is the requested intra-query parallelism (counting the
	// request's own goroutine); 0 takes MaxWorkersPerQuery. The grant
	// may be smaller under load, never larger.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS overrides the service default deadline, in
	// milliseconds; 0 keeps the default, negative means no deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MemEstimate is the in-flight memory charge in bytes; 0 takes the
	// service default.
	MemEstimate int64 `json:"mem_estimate,omitempty"`
}

// Response is a completed query: the result plus what admission did
// with the request.
type Response struct {
	Cols  []string
	Rows  [][]rel.Value
	Stats engine.ExecStats
	// Workers is the granted worker count the query ran with.
	Workers int
	// Queued is how long the request waited for admission; Elapsed the
	// total service time including execution.
	Queued  time.Duration
	Elapsed time.Duration
}

// corpus is one registered dataset: a shared Built, the mapping that
// translates XPath against it, its optimizer, and the per-query-text
// plan cache. The Built's own caches (prepared plans by fingerprint,
// hash tables, probe sets, partition zips) are shared across every
// session automatically because the Built itself is shared; the plans
// map adds the XPath-text → optimizer.Plan step on top, single-flighted
// so concurrent first requests for the same text translate and plan
// once.
type corpus struct {
	name    string
	built   *engine.Built
	mapping *shred.Mapping
	cfg     *physical.Config
	opt     *optimizer.Optimizer

	mu    sync.Mutex
	plans map[string]*planEntry

	hits, misses *obs.Counter
}

type planEntry struct {
	done chan struct{}
	plan *optimizer.Plan
	err  error
}

// plan returns the cached optimizer plan for the query text,
// translating and planning it on first use. Errors are cached too:
// translation failure is a property of (mapping, query), so every
// session sees the same answer without re-parsing.
func (c *corpus) plan(ctx context.Context, query string) (*optimizer.Plan, error) {
	c.mu.Lock()
	if e, ok := c.plans[query]; ok {
		c.mu.Unlock()
		c.hits.Inc()
		select {
		case <-e.done:
			return e.plan, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &planEntry{done: make(chan struct{})}
	c.plans[query] = e
	c.mu.Unlock()
	c.misses.Inc()
	e.plan, e.err = c.buildPlan(query)
	close(e.done)
	return e.plan, e.err
}

func (c *corpus) buildPlan(query string) (*optimizer.Plan, error) {
	q, err := xpath.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("service: parse: %w", err)
	}
	sql, err := translate.Translate(c.mapping, q)
	if err != nil {
		return nil, fmt.Errorf("service: translate: %w", err)
	}
	return c.opt.PlanQuery(sql, c.cfg)
}

// Service is the long-lived multi-tenant query front end.
type Service struct {
	cfg  Config
	reg  *obs.Registry
	tr   *obs.Tracer
	pool *workerPool

	mu      sync.Mutex
	corpora map[string]*corpus
	tenants map[string]*tenant
	closed  bool

	queueDepth                                     *obs.Gauge
	admitted, rejected, timedout, completed, errct *obs.Counter
}

// New creates a Service. The zero Config is usable: GOMAXPROCS pool
// workers, 4 workers per query, no default deadline, default tenant
// quota {4 concurrent, 16 queued, unlimited memory}, 1 MiB memory
// estimate, metrics and tracing disabled.
func New(cfg Config) *Service {
	if cfg.PoolWorkers == 0 {
		cfg.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.PoolWorkers < 0 {
		cfg.PoolWorkers = 0
	}
	if cfg.MaxWorkersPerQuery <= 0 {
		cfg.MaxWorkersPerQuery = 4
	}
	if cfg.MemEstimate <= 0 {
		cfg.MemEstimate = 1 << 20
	}
	cfg.DefaultQuota = cfg.DefaultQuota.withDefaults(TenantQuota{MaxConcurrent: 4, MaxQueued: 16})
	s := &Service{
		cfg:        cfg,
		reg:        cfg.Registry,
		tr:         cfg.Tracer,
		pool:       newWorkerPool(cfg.PoolWorkers, cfg.Registry),
		corpora:    make(map[string]*corpus),
		tenants:    make(map[string]*tenant),
		queueDepth: cfg.Registry.Gauge("service.queue_depth"),
		admitted:   cfg.Registry.Counter("service.admitted"),
		rejected:   cfg.Registry.Counter("service.rejected"),
		timedout:   cfg.Registry.Counter("service.timedout"),
		completed:  cfg.Registry.Counter("service.completed"),
		errct:      cfg.Registry.Counter("service.errors"),
	}
	return s
}

// SetTenantQuota pins an explicit quota for a tenant (zero fields take
// the service defaults). Call before the tenant's first query; a quota
// set after traffic started applies to subsequent admissions only.
func (s *Service) SetTenantQuota(name string, q TenantQuota) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		s.tenants[name] = newTenant(name, q.withDefaults(s.cfg.DefaultQuota), s.reg)
		return
	}
	t.mu.Lock()
	t.quota = q.withDefaults(s.cfg.DefaultQuota)
	t.mu.Unlock()
}

func (s *Service) tenant(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = newTenant(name, s.cfg.DefaultQuota, s.reg)
		s.tenants[name] = t
	}
	return t
}

// RegisterBuilt registers a corpus over an already materialized Built.
// The mapping must be the one the data was shredded under (it drives
// XPath translation); cfg nil takes the Built's own configuration. The
// Built is shared by every session from here on and must not be
// mutated (its generation guard fails queries loudly if it is).
func (s *Service) RegisterBuilt(name string, b *engine.Built, m *shred.Mapping, cfg *physical.Config) error {
	if cfg == nil {
		cfg = b.Config
	}
	return s.register(&corpus{
		name:    name,
		built:   b,
		mapping: m,
		cfg:     cfg,
		opt:     optimizer.New(stats.FromDatabase(b.DB)),
	})
}

// RegisterStore registers a corpus served from a durable store. With
// paged=false the store's tables are assembled up front (Store.Built);
// with paged=true driver-stage scans pull chunks through the store's
// budgeted pager (Store.PagedBuilt), so every session's scans share one
// CLOCK-managed chunk cache and the corpus serves data larger than RAM.
// Optimizer statistics are collected once at registration through the
// store's assembled-table cache (budget-evicting), so a paged corpus
// pays one bounded pass, not a resident copy.
func (s *Service) RegisterStore(name string, st *storage.Store, m *shred.Mapping, paged bool) error {
	db, err := st.Database()
	if err != nil {
		return fmt.Errorf("service: register %s: %w", name, err)
	}
	prov := stats.FromDatabase(db)
	var b *engine.Built
	if paged {
		b, err = st.PagedBuilt()
	} else {
		b, err = st.Built()
	}
	if err != nil {
		return fmt.Errorf("service: register %s: %w", name, err)
	}
	return s.register(&corpus{
		name:    name,
		built:   b,
		mapping: m,
		cfg:     b.Config,
		opt:     optimizer.New(prov),
	})
}

func (s *Service) register(c *corpus) error {
	c.plans = make(map[string]*planEntry)
	c.hits = s.reg.Counter("service.plan.hits")
	c.misses = s.reg.Counter("service.plan.misses")
	c.built.AttachObs(s.tr, s.reg)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.corpora[c.name]; dup {
		return fmt.Errorf("service: corpus %q already registered", c.name)
	}
	s.corpora[c.name] = c
	return nil
}

// CorpusInfo describes a registered corpus for listings.
type CorpusInfo struct {
	Name   string `json:"name"`
	Tables int    `json:"tables"`
	Rows   int    `json:"rows"`
}

// Corpora lists registered corpora sorted by name.
func (s *Service) Corpora() []CorpusInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CorpusInfo, 0, len(s.corpora))
	for _, c := range s.corpora {
		info := CorpusInfo{Name: c.name}
		for _, t := range c.built.DB.Tables() {
			info.Tables++
			info.Rows += t.RowCount()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Service) corpus(name string) (*corpus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	c, ok := s.corpora[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCorpus, name)
	}
	return c, nil
}

// timeout resolves the request's deadline: per-request override, else
// the service default; negative disables.
func (s *Service) timeout(req Request) time.Duration {
	if req.TimeoutMS < 0 {
		return 0
	}
	if req.TimeoutMS > 0 {
		return time.Duration(req.TimeoutMS) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

// Query runs one request end to end: resolve the corpus, translate and
// plan through the shared plan cache, admit under the tenant's quota
// (queueing FIFO, failing fast on a full queue), borrow extra workers
// from the global pool, execute, release. The context and the resolved
// deadline govern every phase; a request past its deadline returns a
// DeadlineError promptly — from the queue without ever occupying quota,
// or from execution via the engine's per-batch cancellation polls — and
// never poisons a shared cache entry (the engine's single-flight builds
// run to completion regardless, see engine.cacheGet).
func (s *Service) Query(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	c, err := s.corpus(req.Corpus)
	if err != nil {
		s.errct.Inc()
		return nil, err
	}
	if d := s.timeout(req); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	sp := s.tr.StartSpan("service.query",
		obs.String("corpus", req.Corpus), obs.String("tenant", req.Tenant))
	defer sp.End()

	fail := func(phase string, err error) (*Response, error) {
		err = s.classify(phase, err)
		sp.SetAttr(obs.String("error", err.Error()))
		return nil, err
	}

	// Plan before admission: a parse or translation error must not
	// consume quota, and the plan cache is single-flighted so this is
	// cheap for every request after the first.
	plan, err := c.plan(ctx, req.XPath)
	if err != nil {
		return fail("plan", err)
	}

	mem := req.MemEstimate
	if mem <= 0 {
		mem = s.cfg.MemEstimate
	}
	t := s.tenant(req.Tenant)
	if err := ctx.Err(); err != nil {
		// Already expired: don't even queue.
		return fail("queued", err)
	}
	if err := t.acquire(ctx, mem, s.queueDepth); err != nil {
		return fail("queued", err)
	}
	defer t.release(mem)
	queued := time.Since(start)
	s.admitted.Inc()

	want := req.Workers
	if want <= 0 || want > s.cfg.MaxWorkersPerQuery {
		want = s.cfg.MaxWorkersPerQuery
	}
	extra := s.pool.acquire(want)
	defer s.pool.release(extra)
	workers := 1 + extra
	sp.SetAttr(obs.Int("workers", int64(workers)))

	pp, err := c.built.PreparedContext(ctx, plan)
	if err != nil {
		return fail("prepare", err)
	}
	res, err := pp.ExecuteContextWorkers(ctx, workers)
	if err != nil {
		return fail("execute", err)
	}
	s.completed.Inc()
	sp.SetAttr(obs.Int("rows", int64(len(res.Rows))))
	return &Response{
		Cols:    res.Cols,
		Rows:    res.Rows,
		Stats:   res.Stats,
		Workers: workers,
		Queued:  queued,
		Elapsed: time.Since(start),
	}, nil
}

// classify folds an error into the admission taxonomy and counts it:
// context expiry anywhere becomes a DeadlineError for the phase,
// overload stays ErrOverloaded, anything else is a plain failure.
func (s *Service) classify(phase string, err error) error {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.rejected.Inc()
		return err
	case errors.Is(err, ErrDeadline):
		s.timedout.Inc()
		return err
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.timedout.Inc()
		return wrapDeadline(phase, err)
	default:
		s.errct.Inc()
		return err
	}
}

// PoolPeak returns the worker pool's lifetime occupancy high-water
// mark (test and monitoring hook).
func (s *Service) PoolPeak() int { return s.pool.Peak() }

// TenantPeaks returns a tenant's lifetime in-flight and memory
// high-water marks; ok is false if the tenant never submitted.
func (s *Service) TenantPeaks(name string) (inflight int, mem int64, ok bool) {
	s.mu.Lock()
	t, exists := s.tenants[name]
	s.mu.Unlock()
	if !exists {
		return 0, 0, false
	}
	inflight, mem = t.Peaks()
	return inflight, mem, true
}

// Close fences the service: subsequent Query and register calls fail
// with ErrClosed. In-flight queries finish; Close does not wait for
// them (the engine has no long-lived background work to reap).
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
