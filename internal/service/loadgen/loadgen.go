// Package loadgen drives mixed-tenant XPath workloads against a query
// service at a fixed session concurrency and reports sustained
// throughput and tail latency. It targets anything that answers a
// service.Request — the in-process Service, or a remote xmlserved via
// service.Client — through one QueryFunc signature, so the same
// harness produces the checked-in QPS benchmark (BENCH_PR10.json) and
// ad-hoc load tests against a live server.
package loadgen

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// QueryFunc submits one request. Both (*service.Service).Query and
// (*service.Client).Query satisfy it.
type QueryFunc func(context.Context, service.Request) (*service.Response, error)

// Options shapes a run.
type Options struct {
	// Concurrency is the number of session goroutines issuing requests
	// back to back. Default 1.
	Concurrency int
	// Ops caps the total requests issued; 0 means run until Duration.
	Ops int
	// Duration bounds the run when Ops is 0. Default 1s.
	Duration time.Duration
}

// Result is the aggregate outcome of a run.
type Result struct {
	// Ops counts requests issued; Completed/Rejected/TimedOut/Errors
	// partition them by outcome (Rejected = ErrOverloaded fast-fails,
	// TimedOut = deadline expiries, Errors = everything else).
	Ops       int64
	Completed int64
	Rejected  int64
	TimedOut  int64
	Errors    int64
	// Rows sums result rows over completed requests — a cheap
	// cross-check that the workload actually produced data.
	Rows int64
	// Elapsed is wall clock for the whole run; QPS is Completed/Elapsed.
	Elapsed time.Duration
	QPS     float64
	// Latency percentiles over completed requests.
	P50, P95, P99, Max time.Duration
}

// Run issues the request mix round-robin across Concurrency session
// goroutines until Ops (or Duration) is exhausted, then aggregates.
// Each session owns its latency slice, so the hot path is
// contention-free except for the shared op ticket counter.
func Run(ctx context.Context, fn QueryFunc, mix []service.Request, opts Options) Result {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Ops <= 0 && opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.Ops <= 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	var (
		ticket    atomic.Int64
		completed atomic.Int64
		rejected  atomic.Int64
		timedOut  atomic.Int64
		errored   atomic.Int64
		rows      atomic.Int64
	)
	lats := make([][]time.Duration, opts.Concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < opts.Concurrency; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for {
				i := ticket.Add(1)
				if opts.Ops > 0 && i > int64(opts.Ops) {
					ticket.Add(-1)
					return
				}
				if ctx.Err() != nil {
					ticket.Add(-1)
					return
				}
				req := mix[int(i-1)%len(mix)]
				t0 := time.Now()
				resp, err := fn(ctx, req)
				switch {
				case err == nil:
					completed.Add(1)
					rows.Add(int64(len(resp.Rows)))
					lats[s] = append(lats[s], time.Since(t0))
				case errors.Is(err, service.ErrOverloaded):
					rejected.Add(1)
				case errors.Is(err, service.ErrDeadline),
					errors.Is(err, context.DeadlineExceeded),
					errors.Is(err, context.Canceled):
					timedOut.Add(1)
				default:
					errored.Add(1)
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := Result{
		Ops:       ticket.Load(),
		Completed: completed.Load(),
		Rejected:  rejected.Load(),
		TimedOut:  timedOut.Load(),
		Errors:    errored.Load(),
		Rows:      rows.Load(),
		Elapsed:   elapsed,
		P50:       pct(all, 50),
		P95:       pct(all, 95),
		P99:       pct(all, 99),
	}
	if n := len(all); n > 0 {
		res.Max = all[n-1]
	}
	if elapsed > 0 {
		res.QPS = float64(res.Completed) / elapsed.Seconds()
	}
	return res
}

// pct is the nearest-rank percentile of a sorted slice.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > len(sorted) {
		i = len(sorted)
	}
	if i < 1 {
		i = 1
	}
	return sorted[i-1]
}
