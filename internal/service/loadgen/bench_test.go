package loadgen_test

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/service/loadgen"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// Sustained-QPS benchmarks for the service path, recorded as
// BENCH_PR10.json and guarded by `benchguard -mode qps`:
//
//	BenchmarkServiceDirect — the same query mix executed serially
//	  through the bare engine (normalizer: what the work costs with no
//	  service, no admission, one session).
//	BenchmarkServiceQPSW1  — loadgen at 4 concurrent sessions through
//	  the service, every query pinned to workers=1.
//	BenchmarkServiceQPSW4  — same load, queries ask for 4 morsel
//	  workers from the shared pool.
//
// Flat names (no sub-benchmarks): benchguard's parser keys on
// unslashed benchmark names. Each QPS benchmark reports qps, p50_ms,
// p99_ms, and cpus; the guard asserts the W4/W1 speedup from the run
// itself when cpus >= 2 (the multi-core CI runner) and only a
// dispatch-overhead floor on a one-thread box, where four workers can
// only time-slice one core.

const benchMovies = 400

var benchQueries = []string{
	`//movie[year >= 2000]/(title | box_office)`,
	`//movie[genre = "genre-03"]/(title | year | actor)`,
	`//movie/year`,
	`//movie/(title | aka_title)`,
}

func benchFixture(b *testing.B) (*shred.Mapping, *rel.Database, *engine.Built) {
	b.Helper()
	tree := schema.Movie()
	doc := xmlgen.GenerateMovie(tree, xmlgen.MovieOptions{Movies: benchMovies, Seed: 21})
	m, err := shred.Compile(tree)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	db, err := shred.Shred(m, doc)
	if err != nil {
		b.Fatalf("Shred: %v", err)
	}
	built, err := engine.Build(db, &physical.Config{})
	if err != nil {
		b.Fatalf("Build: %v", err)
	}
	return m, db, built
}

func benchService(b *testing.B) *service.Service {
	b.Helper()
	m, _, built := benchFixture(b)
	svc := service.New(service.Config{
		PoolWorkers:        3 * 4,
		MaxWorkersPerQuery: 4,
		DefaultQuota:       service.TenantQuota{MaxConcurrent: 16, MaxQueued: 1 << 16},
	})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		b.Fatal(err)
	}
	// Warm plan + structure caches so the steady state is measured.
	for _, qs := range benchQueries {
		if _, err := svc.Query(context.Background(), service.Request{Corpus: "movie", Tenant: "warm", XPath: qs}); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

func benchMix(workers int) []service.Request {
	mix := make([]service.Request, len(benchQueries))
	for i, qs := range benchQueries {
		mix[i] = service.Request{
			Corpus: "movie", Tenant: [2]string{"t0", "t1"}[i%2],
			XPath: qs, Workers: workers,
		}
	}
	return mix
}

func runQPS(b *testing.B, svc *service.Service, workers int) {
	b.Helper()
	b.ResetTimer()
	res := loadgen.Run(context.Background(), svc.Query, benchMix(workers), loadgen.Options{
		Concurrency: 4, Ops: b.N,
	})
	b.StopTimer()
	if res.Errors > 0 || res.Rejected > 0 || res.TimedOut > 0 {
		b.Fatalf("load run degraded: %+v", res)
	}
	b.ReportMetric(res.QPS, "qps")
	b.ReportMetric(float64(res.P50.Microseconds())/1e3, "p50_ms")
	b.ReportMetric(float64(res.P99.Microseconds())/1e3, "p99_ms")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

func BenchmarkServiceQPSW1(b *testing.B) {
	runQPS(b, benchService(b), 1)
}

func BenchmarkServiceQPSW4(b *testing.B) {
	runQPS(b, benchService(b), 4)
}

func BenchmarkServiceDirect(b *testing.B) {
	m, db, built := benchFixture(b)
	opt := optimizer.New(stats.FromDatabase(db))
	plans := make([]*optimizer.Plan, len(benchQueries))
	for i, qs := range benchQueries {
		sql, err := translate.Translate(m, xpath.MustParse(qs))
		if err != nil {
			b.Fatal(err)
		}
		if plans[i], err = opt.PlanQuery(sql, &physical.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range plans {
		if _, err := engine.Execute(built, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Execute(built, plans[i%len(plans)]); err != nil {
			b.Fatal(err)
		}
	}
}
