package service

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/rel"
)

func TestHTTPRoundTrip(t *testing.T) {
	m, db, built := movieFixture(t, 120)
	want := refResults(t, m, db, serviceQueries)
	svc := New(Config{})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl := NewClient("http://"+srv.Addr, nil)
	ctx := context.Background()

	for i, qs := range serviceQueries {
		resp, err := cl.Query(ctx, Request{Corpus: "movie", Tenant: "remote", XPath: qs})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		requireSameResult(t, qs, resp, want[i])
	}

	// Admission errors keep their identity across the wire.
	if _, err := cl.Query(ctx, Request{Corpus: "nope", Tenant: "remote", XPath: "//movie/year"}); !errors.Is(err, ErrUnknownCorpus) {
		t.Errorf("unknown corpus over HTTP: got %v", err)
	}

	infos, err := cl.Corpora(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "movie" || infos[0].Rows == 0 {
		t.Errorf("corpora = %+v", infos)
	}
}

func TestWireValueRoundTrip(t *testing.T) {
	cases := []rel.Value{
		rel.Int(42),
		rel.Int(-1),
		rel.NullOf(rel.TInt),
		rel.Str(""),
		rel.Str("héllo\x00world"),
		rel.NullOf(rel.TString),
		rel.Float(3.25),
		rel.Float(math.NaN()),
		rel.Float(math.Inf(1)),
		rel.Float(math.Inf(-1)),
		rel.Float(math.Copysign(0, -1)), // -0.0 must stay distinct from +0.0
		rel.NullOf(rel.TFloat),
	}
	for _, v := range cases {
		got, err := fromWire(toWire(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !got.BitEqual(v) {
			t.Errorf("round trip %v -> %v: not bit-equal", v, got)
		}
	}
}

func TestErrKindMapping(t *testing.T) {
	for _, sentinel := range []error{ErrOverloaded, ErrDeadline, ErrUnknownCorpus, ErrClosed} {
		status, kind := errKind(sentinel)
		if kind == "" {
			t.Fatalf("%v: no kind", sentinel)
		}
		if back := kindErr(kind, sentinel.Error()); !errors.Is(back, sentinel) {
			t.Errorf("kind %q (status %d) does not invert to %v", kind, status, sentinel)
		}
	}
	// The wrapped DeadlineError maps like its sentinel.
	if _, kind := errKind(wrapDeadline("execute", context.DeadlineExceeded)); kind != "deadline" {
		t.Errorf("DeadlineError kind = %q", kind)
	}
}
