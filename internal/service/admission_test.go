package service

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
)

// Admission-control properties: quotas are never exceeded (peaks
// asserted from the obs gauges, not internal fields), queued requests
// drain FIFO per tenant, and overload rejections are a deterministic
// function of the arrival schedule.

func TestQuotasNeverExceeded(t *testing.T) {
	m, db, built := movieFixture(t, 150)
	want := refResults(t, m, db, serviceQueries)
	reg := obs.NewRegistry()
	svc := New(Config{
		Registry:    reg,
		PoolWorkers: 3,
		DefaultQuota: TenantQuota{
			MaxConcurrent: 2,
			MaxQueued:     256, // no rejections: every request eventually runs
			MemBytes:      3 << 20,
		},
	})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}

	const sessions, rounds = 12, 4
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", s%2)
			for r := 0; r < rounds; r++ {
				for i, qs := range serviceQueries {
					resp, err := svc.Query(context.Background(), Request{
						Corpus: "movie", Tenant: tenant, XPath: qs,
						Workers: 1 + (s+r)%4, MemEstimate: 1 << 20,
					})
					if err != nil {
						errs <- fmt.Errorf("session %d: %w", s, err)
						return
					}
					if d := diffResponse(resp, want[i]); d != "" {
						errs <- fmt.Errorf("session %d %s: %s", s, qs, d)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// A single-hardware-thread runner can drain the whole battery
	// without two queries ever overlapping, so the peak-reaches-cap
	// check cannot rely on scheduler luck: hold one slot white-box and
	// run a real query beside it — inflight is deterministically 2
	// while it executes.
	for _, tenant := range []string{"t0", "t1"} {
		tnt := svc.tenant(tenant)
		tnt.mu.Lock()
		tnt.admitLocked(1 << 20)
		tnt.mu.Unlock()
		if _, err := svc.Query(context.Background(), Request{
			Corpus: "movie", Tenant: tenant, XPath: serviceQueries[0], MemEstimate: 1 << 20,
		}); err != nil {
			t.Fatal(err)
		}
		tnt.release(1 << 20)
	}

	snap := reg.Snapshot()
	for _, tenant := range []string{"t0", "t1"} {
		p := "service.tenant." + tenant + "."
		if peak := snap[p+"inflight_peak"]; peak > 2 {
			t.Errorf("%s inflight peak %v exceeds MaxConcurrent 2", tenant, peak)
		}
		if peak := snap[p+"mem_bytes_peak"]; peak > float64(3<<20) {
			t.Errorf("%s mem peak %v exceeds MemBytes quota", tenant, peak)
		}
		if snap[p+"inflight"] != 0 || snap[p+"mem_bytes"] != 0 || snap[p+"queued"] != 0 {
			t.Errorf("%s gauges nonzero after drain: inflight=%v mem=%v queued=%v",
				tenant, snap[p+"inflight"], snap[p+"mem_bytes"], snap[p+"queued"])
		}
		// The forced overlap above guarantees two in-flight requests
		// happened at least once; the peak must record it.
		if peak := snap[p+"inflight_peak"]; peak != 2 {
			t.Errorf("%s inflight peak %v never reached MaxConcurrent 2 — no contention exercised", tenant, peak)
		}
	}
	if peak := snap["service.pool.busy_peak"]; peak > 3 {
		t.Errorf("pool busy peak %v exceeds capacity 3", peak)
	}
	if snap["service.pool.busy"] != 0 {
		t.Errorf("pool busy = %v after drain, want 0", snap["service.pool.busy"])
	}
	if snap["service.rejected"] != 0 {
		t.Errorf("rejections with an effectively unbounded queue: %v", snap["service.rejected"])
	}
	// Battery queries plus the two forced-overlap probes.
	if want := sessions*rounds*len(serviceQueries) + 2; snap["service.admitted"] != float64(want) {
		t.Errorf("admitted = %v, want %d", snap["service.admitted"], want)
	}
}

func TestFIFODrainPerTenant(t *testing.T) {
	reg := obs.NewRegistry()
	tn := newTenant("fifo", TenantQuota{MaxConcurrent: 1, MaxQueued: 16}, reg)

	// Occupy the single slot, then enqueue five waiters with distinct
	// memory charges (including one that would fit out of order).
	tn.mu.Lock()
	if !tn.tryAdmitLocked(10) {
		t.Fatal("first admit failed")
	}
	var ws []*waiter
	for i := 0; i < 5; i++ {
		w, ok := tn.enqueueLocked(int64(10 - i))
		if !ok {
			t.Fatalf("enqueue %d rejected", i)
		}
		ws = append(ws, w)
	}
	tn.mu.Unlock()

	// Releases must grant strictly in arrival order.
	for i := range ws {
		tn.release(10 - int64(i-1)*1) // release previous holder's charge
		granted := -1
		for j, w := range ws {
			select {
			case <-w.ready:
				if w.granted && j > granted {
					granted = j
				}
			default:
			}
		}
		if granted != i {
			t.Fatalf("after release %d: highest granted waiter is %d, want exactly %d (FIFO)", i, granted, i)
		}
		for j := i + 1; j < len(ws); j++ {
			select {
			case <-ws[j].ready:
				t.Fatalf("waiter %d granted before waiter %d: overtaking", j, i)
			default:
			}
		}
	}
}

func TestFIFOHeadOfLineHoldsBack(t *testing.T) {
	reg := obs.NewRegistry()
	tn := newTenant("hol", TenantQuota{MaxConcurrent: 4, MaxQueued: 16, MemBytes: 100}, reg)

	tn.mu.Lock()
	if !tn.tryAdmitLocked(60) {
		t.Fatal("first admit failed")
	}
	// Head wants 80 (doesn't fit beside 60); a later 10 would fit but
	// must not overtake.
	big, _ := tn.enqueueLocked(80)
	small, _ := tn.enqueueLocked(10)
	tn.drainLocked()
	tn.mu.Unlock()
	select {
	case <-small.ready:
		t.Fatal("small request overtook the blocked head of line")
	default:
	}
	select {
	case <-big.ready:
		t.Fatal("head granted while memory quota lacks room")
	default:
	}

	tn.release(60) // now 80 fits alone, then 10 beside it
	if !big.granted {
		t.Fatal("head not granted after release")
	}
	if !small.granted {
		t.Fatal("small not granted after head admitted (80+10 <= 100 is false — expected grant when head ran alone)")
	}
	if in, mem := tn.Peaks(); in > 4 || mem > 100 {
		t.Fatalf("peaks inflight=%d mem=%d exceed quota", in, mem)
	}
}

func TestOversizedRequestRunsAlone(t *testing.T) {
	tn := newTenant("big", TenantQuota{MaxConcurrent: 4, MaxQueued: 4, MemBytes: 100}, nil)
	tn.mu.Lock()
	defer tn.mu.Unlock()
	tn.admitLocked(50)
	if tn.canRunLocked(150) {
		t.Fatal("oversized request admitted beside live work")
	}
	tn.releaseLocked(50)
	if !tn.canRunLocked(150) {
		t.Fatal("oversized request starved with the tenant idle")
	}
	tn.admitLocked(150)
	if tn.canRunLocked(1) {
		t.Fatal("request admitted beside an oversized one")
	}
}

// admissionEvent is one step of a seeded schedule: submit a request
// with a memory charge, or finish the oldest admitted one.
type admissionEvent struct {
	submit bool
	mem    int64
}

// runSchedule feeds the events through the deterministic locked core
// and records each decision: A=admit, Q=queue, R=reject, F=finish,
// D=drain-grant (with waiter seq).
func runSchedule(q TenantQuota, events []admissionEvent) string {
	tn := newTenant("sched", q, nil)
	var decisions []byte
	var admitted []int64 // memory charges of running requests, oldest first
	var queued []*waiter
	tn.mu.Lock()
	defer tn.mu.Unlock()
	for _, ev := range events {
		if ev.submit {
			switch {
			case tn.tryAdmitLocked(ev.mem):
				admitted = append(admitted, ev.mem)
				decisions = append(decisions, 'A')
			default:
				if w, ok := tn.enqueueLocked(ev.mem); ok {
					queued = append(queued, w)
					decisions = append(decisions, 'Q')
				} else {
					decisions = append(decisions, 'R')
				}
			}
		} else if len(admitted) > 0 {
			tn.releaseLocked(admitted[0])
			admitted = admitted[1:]
			decisions = append(decisions, 'F')
			// Collect any waiters the drain granted, in order.
			for len(queued) > 0 && queued[0].granted {
				admitted = append(admitted, queued[0].mem)
				decisions = append(decisions, 'D')
				queued = queued[1:]
			}
		}
	}
	return string(decisions)
}

func TestOverloadRejectionsDeterministic(t *testing.T) {
	quota := TenantQuota{MaxConcurrent: 2, MaxQueued: 2, MemBytes: 64}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		events := make([]admissionEvent, 60)
		for i := range events {
			events[i] = admissionEvent{
				submit: rng.Intn(100) < 60,
				mem:    int64(8 << rng.Intn(3)), // 8, 16, or 32
			}
		}
		first := runSchedule(quota, events)
		for rerun := 0; rerun < 3; rerun++ {
			if got := runSchedule(quota, events); got != first {
				t.Fatalf("seed %d rerun %d: decisions %q, first run %q — overload behavior is nondeterministic",
					seed, rerun, got, first)
			}
		}
		// Structural invariants of any decision string: rejects only
		// happen while the queue is full, and grants never exceed quota.
		inflight, queueLen, rejects := 0, 0, 0
		for i, d := range first {
			switch d {
			case 'A':
				inflight++
			case 'Q':
				queueLen++
			case 'R':
				rejects++
				if queueLen != quota.MaxQueued {
					t.Fatalf("seed %d: reject at step %d with queue %d/%d — must only reject when full (%q)",
						seed, i, queueLen, quota.MaxQueued, first)
				}
			case 'F':
				inflight--
			case 'D':
				inflight++
				queueLen--
			}
			if inflight > quota.MaxConcurrent {
				t.Fatalf("seed %d: inflight %d exceeds quota at step %d (%q)", seed, inflight, i, first)
			}
			if queueLen > quota.MaxQueued {
				t.Fatalf("seed %d: queue %d exceeds quota at step %d (%q)", seed, queueLen, i, first)
			}
		}
		if seed == 1 && rejects == 0 {
			t.Logf("seed 1 produced no rejections; schedule may be too gentle: %q", first)
		}
	}
}

func TestWorkerPoolGrants(t *testing.T) {
	reg := obs.NewRegistry()
	p := newWorkerPool(3, reg)
	if got := p.acquire(4); got != 3 {
		t.Fatalf("first acquire got %d extra, want 3", got)
	}
	if got := p.acquire(4); got != 0 {
		t.Fatalf("saturated acquire got %d extra, want 0 (must not block)", got)
	}
	p.release(3)
	if got := p.acquire(2); got != 1 {
		t.Fatalf("post-release acquire got %d extra, want 1", got)
	}
	p.release(1)
	if p.Peak() != 3 {
		t.Errorf("peak = %d, want 3", p.Peak())
	}
	snap := reg.Snapshot()
	if snap["service.pool.capacity"] != 3 || snap["service.pool.busy"] != 0 || snap["service.pool.busy_peak"] != 3 {
		t.Errorf("pool gauges = %v", snap)
	}
	// Serial requests never take pool slots; a zero-capacity pool
	// degrades everything to serial.
	if got := p.acquire(1); got != 0 {
		t.Errorf("want=1 acquired %d extra", got)
	}
	z := newWorkerPool(0, nil)
	if got := z.acquire(8); got != 0 {
		t.Errorf("zero-capacity pool granted %d", got)
	}
}
