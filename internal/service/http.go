package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/rel"
)

// The wire protocol is JSON over HTTP:
//
//	POST /query    Request body  → wireResponse | wireError
//	GET  /corpora  → []CorpusInfo
//	GET  /healthz  → "ok"
//
// Admission outcomes map onto status codes so generic HTTP tooling
// does the right thing — 429 for overload (back off), 504 for
// deadline, 404 for an unknown corpus — and the body carries a "kind"
// tag so Client can recover the exact sentinel error, keeping local
// and remote callers on one error taxonomy.

// wireValue is the JSON form of a rel.Value. Floats travel as
// strconv.FormatFloat(…, 'g', -1, 64) strings so every float —
// including NaN and the infinities, which encoding/json rejects —
// round-trips bit-exactly.
type wireValue struct {
	Null bool   `json:"null,omitempty"`
	Type string `json:"type"`
	Int  int64  `json:"int,omitempty"`
	Flt  string `json:"float,omitempty"`
	Str  string `json:"str,omitempty"`
}

func toWire(v rel.Value) wireValue {
	w := wireValue{Null: v.Null}
	switch v.Typ {
	case rel.TInt:
		w.Type, w.Int = "int", v.I
	case rel.TFloat:
		w.Type, w.Flt = "float", strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		w.Type, w.Str = "string", v.S
	}
	return w
}

func fromWire(w wireValue) (rel.Value, error) {
	switch w.Type {
	case "int":
		return rel.Value{Null: w.Null, Typ: rel.TInt, I: w.Int}, nil
	case "float":
		f, err := strconv.ParseFloat(w.Flt, 64)
		if err != nil && w.Flt != "" {
			return rel.Value{}, fmt.Errorf("service: bad float %q: %w", w.Flt, err)
		}
		return rel.Value{Null: w.Null, Typ: rel.TFloat, F: f}, nil
	case "string":
		return rel.Value{Null: w.Null, Typ: rel.TString, S: w.Str}, nil
	}
	return rel.Value{}, fmt.Errorf("service: bad wire type %q", w.Type)
}

type wireResponse struct {
	Cols      []string         `json:"cols"`
	Rows      [][]wireValue    `json:"rows"`
	Stats     engine.ExecStats `json:"stats"`
	Workers   int              `json:"workers"`
	QueuedUS  int64            `json:"queued_us"`
	ElapsedUS int64            `json:"elapsed_us"`
}

type wireError struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// errKind tags an error for the wire; Client's kindErr inverts it.
func errKind(err error) (status int, kind string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, ErrUnknownCorpus):
		return http.StatusNotFound, "unknown_corpus"
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	default:
		return http.StatusBadRequest, ""
	}
}

func kindErr(kind, msg string) error {
	switch kind {
	case "overloaded":
		return fmt.Errorf("%w (server: %s)", ErrOverloaded, msg)
	case "deadline":
		return fmt.Errorf("%w (server: %s)", ErrDeadline, msg)
	case "unknown_corpus":
		return fmt.Errorf("%w (server: %s)", ErrUnknownCorpus, msg)
	case "closed":
		return fmt.Errorf("%w (server: %s)", ErrClosed, msg)
	default:
		return errors.New(msg)
	}
}

// Handler returns the service's HTTP API as an http.Handler, ready to
// mount on any server (xmlserved mounts it at /, tests on a
// httptest.Server).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/corpora", s.handleCorpora)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n") //nolint:errcheck
	})
	return mux
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := s.Query(r.Context(), req)
	if err != nil {
		status, kind := errKind(err)
		writeJSON(w, status, wireError{Error: err.Error(), Kind: kind})
		return
	}
	wr := wireResponse{
		Cols:      resp.Cols,
		Rows:      make([][]wireValue, len(resp.Rows)),
		Stats:     resp.Stats,
		Workers:   resp.Workers,
		QueuedUS:  resp.Queued.Microseconds(),
		ElapsedUS: resp.Elapsed.Microseconds(),
	}
	for i, row := range resp.Rows {
		wrow := make([]wireValue, len(row))
		for j, v := range row {
			wrow[j] = toWire(v)
		}
		wr.Rows[i] = wrow
	}
	writeJSON(w, http.StatusOK, wr)
}

func (s *Service) handleCorpora(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.Corpora())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// Server runs a Service behind a TCP listener.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Serve starts the service's HTTP API on addr in a background
// goroutine; a failed bind is returned synchronously.
func Serve(addr string, s *Service) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	out := &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return out, nil
}

// Close shuts the listener down; in-flight requests are aborted.
func (sv *Server) Close() error {
	if sv == nil {
		return nil
	}
	return sv.srv.Close()
}

// Client is the HTTP counterpart of Service.Query: it submits requests
// to a remote xmlserved and folds wire errors back into the sentinel
// taxonomy, so code written against Query works unchanged against a
// remote service (loadgen targets either through QueryFunc).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for a service at base (e.g.
// "http://localhost:8080"). hc nil uses a default client with no
// overall timeout — per-request deadlines come from the context and
// the server-side Request.TimeoutMS.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: base, hc: hc}
}

// Query submits one request. Admission errors come back as the same
// sentinels the local path returns: errors.Is(err, ErrOverloaded) and
// errors.Is(err, ErrDeadline) hold across the wire.
func (c *Client) Query(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hr)
	if err != nil {
		if ctx.Err() != nil {
			return nil, wrapDeadline("client", ctx.Err())
		}
		return nil, err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(io.LimitReader(resp.Body, 64<<20))
	if resp.StatusCode != http.StatusOK {
		var we wireError
		if err := dec.Decode(&we); err != nil {
			return nil, fmt.Errorf("service: HTTP %d (unreadable body: %v)", resp.StatusCode, err)
		}
		return nil, kindErr(we.Kind, we.Error)
	}
	var wr wireResponse
	if err := dec.Decode(&wr); err != nil {
		return nil, fmt.Errorf("service: decode response: %w", err)
	}
	out := &Response{
		Cols:    wr.Cols,
		Rows:    make([][]rel.Value, len(wr.Rows)),
		Stats:   wr.Stats,
		Workers: wr.Workers,
		Queued:  time.Duration(wr.QueuedUS) * time.Microsecond,
		Elapsed: time.Duration(wr.ElapsedUS) * time.Microsecond,
	}
	for i, wrow := range wr.Rows {
		row := make([]rel.Value, len(wrow))
		for j, wv := range wrow {
			row[j], err = fromWire(wv)
			if err != nil {
				return nil, err
			}
		}
		out.Rows[i] = row
	}
	return out, nil
}

// Corpora lists the server's registered corpora.
func (c *Client) Corpora(ctx context.Context) ([]CorpusInfo, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/corpora", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: HTTP %d listing corpora", resp.StatusCode)
	}
	var out []CorpusInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
