package service

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// TenantQuota bounds one tenant's footprint on the service. Zero
// values take the service defaults (see Config.DefaultQuota and the
// defaultQuota fallbacks).
type TenantQuota struct {
	// MaxConcurrent caps the tenant's in-flight (admitted, executing)
	// queries. Further requests queue.
	MaxConcurrent int
	// MaxQueued caps the tenant's wait queue; a request arriving with
	// the queue full fails fast with ErrOverloaded instead of piling
	// latency onto an already overloaded tenant.
	MaxQueued int
	// MemBytes caps the sum of in-flight memory reservations (each
	// request charges its MemEstimate). 0 = unlimited. A single request
	// whose estimate alone exceeds the cap is not rejected forever: it
	// is admitted when it is at the head of the queue and nothing else
	// is in flight, so it runs alone.
	MemBytes int64
}

// withDefaults fills zero fields from the fallback quota.
func (q TenantQuota) withDefaults(d TenantQuota) TenantQuota {
	if q.MaxConcurrent <= 0 {
		q.MaxConcurrent = d.MaxConcurrent
	}
	if q.MaxQueued <= 0 {
		q.MaxQueued = d.MaxQueued
	}
	if q.MemBytes <= 0 {
		q.MemBytes = d.MemBytes
	}
	return q
}

// waiter is one queued admission request. ready is closed exactly once,
// under the tenant lock, when the drain loop grants the slot; gone
// marks a waiter abandoned by its deadline so the drain skips it.
type waiter struct {
	mem     int64
	ready   chan struct{}
	granted bool
	gone    bool
	seq     uint64 // arrival order, for FIFO verification in tests
}

// tenant is one tenant's admission state: a counting quota plus a FIFO
// wait queue. All transitions happen under mu; the obs gauges mirror
// the state at every transition so external observers (the debug
// endpoints, the property tests) see quota enforcement, not inference.
//
// The blocking acquire/release pair wraps a non-blocking deterministic
// core (tryAdmitLocked / enqueueLocked / drainLocked): given the same
// sequence of submit and finish events the same requests are admitted,
// queued, and rejected, which is what makes overload behavior testable
// under a seeded schedule.
type tenant struct {
	name  string
	quota TenantQuota

	mu       sync.Mutex
	inflight int
	memUsed  int64
	queue    []*waiter
	nextSeq  uint64

	// Peaks are high-water marks over the tenant's lifetime; the
	// admission property tests assert they never exceed the quota.
	peakInflight int
	peakMem      int64

	gInflight, gQueued, gMem             *obs.Gauge
	gPeakInflight, gPeakMem              *obs.Gauge
	admitted, rejected, timedout, errors *obs.Counter
}

func newTenant(name string, q TenantQuota, reg *obs.Registry) *tenant {
	p := "service.tenant." + name + "."
	return &tenant{
		name:          name,
		quota:         q,
		gInflight:     reg.Gauge(p + "inflight"),
		gQueued:       reg.Gauge(p + "queued"),
		gMem:          reg.Gauge(p + "mem_bytes"),
		gPeakInflight: reg.Gauge(p + "inflight_peak"),
		gPeakMem:      reg.Gauge(p + "mem_bytes_peak"),
		admitted:      reg.Counter(p + "admitted"),
		rejected:      reg.Counter(p + "rejected"),
		timedout:      reg.Counter(p + "timedout"),
		errors:        reg.Counter(p + "errors"),
	}
}

// canRunLocked reports whether a request charging mem bytes may start
// now. An oversized request (mem alone exceeds the budget) may only
// run alone, so it neither starves forever nor stacks on live work.
func (t *tenant) canRunLocked(mem int64) bool {
	if t.inflight >= t.quota.MaxConcurrent {
		return false
	}
	if t.quota.MemBytes <= 0 {
		return true
	}
	if mem > t.quota.MemBytes {
		return t.inflight == 0
	}
	return t.memUsed+mem <= t.quota.MemBytes
}

func (t *tenant) admitLocked(mem int64) {
	t.inflight++
	t.memUsed += mem
	if t.inflight > t.peakInflight {
		t.peakInflight = t.inflight
		t.gPeakInflight.Set(float64(t.peakInflight))
	}
	if t.memUsed > t.peakMem {
		t.peakMem = t.memUsed
		t.gPeakMem.Set(float64(t.peakMem))
	}
	t.gInflight.Set(float64(t.inflight))
	t.gMem.Set(float64(t.memUsed))
	t.admitted.Inc()
}

// tryAdmitLocked admits immediately when the queue is empty (FIFO:
// nobody waiting may be overtaken) and the quota has room.
func (t *tenant) tryAdmitLocked(mem int64) bool {
	if len(t.queue) > 0 || !t.canRunLocked(mem) {
		return false
	}
	t.admitLocked(mem)
	return true
}

// enqueueLocked appends a waiter, or reports overload when the queue
// is full.
func (t *tenant) enqueueLocked(mem int64) (*waiter, bool) {
	if len(t.queue) >= t.quota.MaxQueued {
		t.rejected.Inc()
		return nil, false
	}
	w := &waiter{mem: mem, ready: make(chan struct{}), seq: t.nextSeq}
	t.nextSeq++
	t.queue = append(t.queue, w)
	t.gQueued.Set(float64(t.liveQueuedLocked()))
	return w, true
}

// liveQueuedLocked counts waiters that have not been abandoned.
func (t *tenant) liveQueuedLocked() int {
	n := 0
	for _, w := range t.queue {
		if !w.gone {
			n++
		}
	}
	return n
}

// drainLocked grants queued waiters strictly in arrival order while the
// quota has room. The head blocks the line even when a later, smaller
// request would fit — per-tenant admission is FIFO, not best-fit — so a
// heavy request cannot be starved by a stream of light ones.
func (t *tenant) drainLocked() {
	for len(t.queue) > 0 {
		w := t.queue[0]
		if w.gone {
			t.queue = t.queue[1:]
			continue
		}
		if !t.canRunLocked(w.mem) {
			break
		}
		t.admitLocked(w.mem)
		w.granted = true
		close(w.ready)
		t.queue = t.queue[1:]
	}
	t.gQueued.Set(float64(t.liveQueuedLocked()))
}

// releaseLocked returns an admitted request's quota and wakes waiters.
func (t *tenant) releaseLocked(mem int64) {
	t.inflight--
	t.memUsed -= mem
	t.gInflight.Set(float64(t.inflight))
	t.gMem.Set(float64(t.memUsed))
	t.drainLocked()
}

// acquire blocks until the request is admitted, its context expires, or
// the tenant queue is full. It returns nil on admission; the caller
// must release(mem) when the query finishes.
func (t *tenant) acquire(ctx context.Context, mem int64, queueDepth *obs.Gauge) error {
	t.mu.Lock()
	if t.tryAdmitLocked(mem) {
		t.mu.Unlock()
		return nil
	}
	w, ok := t.enqueueLocked(mem)
	if !ok {
		t.mu.Unlock()
		return ErrOverloaded
	}
	queueDepth.Add(1)
	t.mu.Unlock()
	defer queueDepth.Add(-1)

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		t.mu.Lock()
		if w.granted {
			// The grant raced the deadline: the slot is ours, but the
			// request is already dead. Hand the slot straight back.
			t.releaseLocked(mem)
			t.mu.Unlock()
		} else {
			w.gone = true
			t.gQueued.Set(float64(t.liveQueuedLocked()))
			t.mu.Unlock()
		}
		return wrapDeadline("queued", ctx.Err())
	}
}

func (t *tenant) release(mem int64) {
	t.mu.Lock()
	t.releaseLocked(mem)
	t.mu.Unlock()
}

// Peaks returns the tenant's lifetime high-water marks (in-flight
// queries, reserved bytes) — the admission property tests assert them
// against the quota.
func (t *tenant) Peaks() (inflight int, mem int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peakInflight, t.peakMem
}

// workerPool is the bounded global morsel-worker pool shared by every
// concurrent query in the process. Every admitted query always runs
// with at least one worker (the serial pipeline on its own goroutine);
// the pool only hands out the *extra* parallel workers beyond that, up
// to its capacity, and never blocks — under load queries degrade to
// fewer workers instead of queueing twice. Results are bit-identical at
// any worker count (the PR 5 morsel contract), so degrading is safe.
type workerPool struct {
	cap int

	mu   sync.Mutex
	busy int
	peak int

	gBusy, gPeak *obs.Gauge
}

func newWorkerPool(capacity int, reg *obs.Registry) *workerPool {
	p := &workerPool{
		cap:   capacity,
		gBusy: reg.Gauge("service.pool.busy"),
		gPeak: reg.Gauge("service.pool.busy_peak"),
	}
	reg.Gauge("service.pool.capacity").Set(float64(capacity))
	return p
}

// acquire grants up to want-1 extra worker slots (the first worker is
// the caller's own goroutine and is never pooled). The grant is
// whatever is free right now, possibly zero.
func (p *workerPool) acquire(want int) int {
	if want <= 1 || p.cap <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	extra := want - 1
	if free := p.cap - p.busy; extra > free {
		extra = free
	}
	if extra < 0 {
		extra = 0
	}
	p.busy += extra
	if p.busy > p.peak {
		p.peak = p.busy
		p.gPeak.Set(float64(p.peak))
	}
	p.gBusy.Set(float64(p.busy))
	return extra
}

func (p *workerPool) release(extra int) {
	if extra <= 0 {
		return
	}
	p.mu.Lock()
	p.busy -= extra
	p.gBusy.Set(float64(p.busy))
	p.mu.Unlock()
}

// Peak returns the pool's lifetime occupancy high-water mark.
func (p *workerPool) Peak() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}
