package service

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Deadline and cancellation over the service path: a request past its
// deadline returns promptly with the service's distinct error
// (ErrDeadline, phase-tagged), leaks no goroutines, and never poisons
// a shared cache entry for the next session.

// pollCancelCtx cancels itself on the Nth Done() call. The executor
// calls Done() once per pipeline/morsel range, so the cancel lands
// deterministically mid-execution on any hardware — same hook as the
// engine's cancel battery (see engine/cancel_test.go for why a
// timing-based cancel goroutine does not work on a one-core runner).
type pollCancelCtx struct {
	context.Context
	cancel context.CancelFunc
	calls  int64
	after  int64
}

func newPollCancelCtx(after int64) *pollCancelCtx {
	ctx, cancel := context.WithCancel(context.Background())
	return &pollCancelCtx{Context: ctx, cancel: cancel, after: after}
}

func (c *pollCancelCtx) Done() <-chan struct{} {
	if atomic.AddInt64(&c.calls, 1) >= c.after {
		c.cancel()
	}
	return c.Context.Done()
}

func TestServiceDeadlineMidExecution(t *testing.T) {
	m, db, built := movieFixture(t, 1500)
	want := refResults(t, m, db, serviceQueries[:2])
	reg := obs.NewRegistry()
	svc := New(Config{Registry: reg})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}

	// Warm both queries once so every shared structure exists before the
	// cancellations; any miss growth afterwards is poisoning.
	for _, qs := range serviceQueries[:2] {
		if _, err := svc.Query(context.Background(), Request{Corpus: "movie", Tenant: "warm", XPath: qs}); err != nil {
			t.Fatalf("warm %s: %v", qs, err)
		}
	}

	qs := serviceQueries[1] // join-bearing: exercises shared probe structures
	// Sweep the trip point across successive Done() polls: the earliest
	// land before admission (phase "queued"), later ones land inside the
	// executor (phase "execute"); at least one of each must occur.
	sawExecute := false
	interrupted := false
	for after := int64(1); after <= 5; after++ {
		ctx := newPollCancelCtx(after)
		start := time.Now()
		_, err := svc.Query(ctx, Request{Corpus: "movie", Tenant: "t", XPath: qs, Workers: 4})
		took := time.Since(start)
		ctx.cancel()
		if err == nil {
			continue
		}
		interrupted = true
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("after=%d: err = %v, want ErrDeadline", after, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: err = %v does not match the context error", after, err)
		}
		var de *DeadlineError
		if errors.As(err, &de) && de.Phase == "execute" {
			sawExecute = true
		}
		if took > time.Second {
			t.Errorf("after=%d: cancelled call took %v, want prompt return", after, took)
		}
	}
	if !interrupted {
		t.Fatal("no cancellation landed at all")
	}
	if !sawExecute {
		t.Fatal("no cancellation landed mid-execution (phase execute)")
	}
	if got := reg.Snapshot()["service.timedout"]; got < 1 {
		t.Errorf("service.timedout = %v after cancellations", got)
	}

	// The next session gets clean answers from the same shared caches —
	// bit-identical, with no rebuilt structures.
	misses := built.CacheCounters()
	for i, qs := range serviceQueries[:2] {
		resp, err := svc.Query(context.Background(), Request{Corpus: "movie", Tenant: "t2", XPath: qs})
		if err != nil {
			t.Fatalf("after cancel, query %d: %v", i, err)
		}
		requireSameResult(t, qs, resp, want[i])
	}
	after := built.CacheCounters()
	for k, v := range misses {
		if len(k) > 7 && k[len(k)-7:] == ".misses" && after[k] != v {
			t.Errorf("cache %s grew %d -> %d: cancellation poisoned a shared entry", k, v, after[k])
		}
	}
}

func TestServiceDeadlineAlreadyExpired(t *testing.T) {
	m, _, built := movieFixture(t, 50)
	svc := New(Config{})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := svc.Query(ctx, Request{Corpus: "movie", Tenant: "t", XPath: serviceQueries[0]})
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx: err = %v", err)
	}
	// The expired request must not have consumed quota.
	if inflight, _, ok := svc.TenantPeaks("t"); ok && inflight != 0 {
		t.Errorf("expired request consumed quota: peak inflight %d", inflight)
	}
}

func TestServiceQueuedDeadline(t *testing.T) {
	m, _, built := movieFixture(t, 50)
	reg := obs.NewRegistry()
	svc := New(Config{Registry: reg})
	svc.SetTenantQuota("t", TenantQuota{MaxConcurrent: 1, MaxQueued: 4})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}
	// Occupy the tenant's only slot so the request must queue, then let
	// its deadline expire in the queue.
	tnt := svc.tenant("t")
	tnt.mu.Lock()
	tnt.admitLocked(0)
	tnt.mu.Unlock()

	start := time.Now()
	_, err := svc.Query(context.Background(), Request{
		Corpus: "movie", Tenant: "t", XPath: serviceQueries[0], TimeoutMS: 30,
	})
	took := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued past deadline: err = %v", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) || de.Phase != "queued" {
		t.Fatalf("phase = %v, want queued (err %v)", de, err)
	}
	if took > 2*time.Second {
		t.Errorf("queued timeout took %v, want prompt return", took)
	}
	if got := reg.Snapshot()["service.tenant.t.queued"]; got != 0 {
		t.Errorf("abandoned waiter still counted queued: gauge = %v", got)
	}

	// Freeing the slot un-wedges the tenant: the next request runs.
	tnt.release(0)
	if _, err := svc.Query(context.Background(), Request{
		Corpus: "movie", Tenant: "t", XPath: serviceQueries[0],
	}); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if got := reg.Snapshot()["service.queue_depth"]; got != 0 {
		t.Errorf("queue_depth = %v after drain, want 0", got)
	}
}

func TestServiceCancelPlanCacheNoPoison(t *testing.T) {
	m, _, built := movieFixture(t, 50)
	reg := obs.NewRegistry()
	svc := New(Config{Registry: reg})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Query(ctx, Request{Corpus: "movie", Tenant: "t", XPath: serviceQueries[2]}); err == nil {
		t.Fatal("cancelled request succeeded")
	}
	// The plan built under the cancelled request stays usable: the next
	// session hits the cache instead of replanning.
	if _, err := svc.Query(context.Background(), Request{Corpus: "movie", Tenant: "t", XPath: serviceQueries[2]}); err != nil {
		t.Fatalf("after cancelled first use: %v", err)
	}
	snap := reg.Snapshot()
	if snap["service.plan.misses"] != 1 || snap["service.plan.hits"] != 1 {
		t.Errorf("plan cache misses=%v hits=%v, want 1/1 (cancellation poisoned the entry)",
			snap["service.plan.misses"], snap["service.plan.hits"])
	}
}

func TestServiceDeadlineLeaksNoGoroutines(t *testing.T) {
	m, _, built := movieFixture(t, 1500)
	svc := New(Config{PoolWorkers: 4})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}
	// Warm the plan so the loop measures execution cancels only.
	if _, err := svc.Query(context.Background(), Request{Corpus: "movie", Tenant: "t", XPath: serviceQueries[1]}); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		ctx := newPollCancelCtx(1)
		_, _ = svc.Query(ctx, Request{Corpus: "movie", Tenant: "t", XPath: serviceQueries[1], Workers: 4})
		ctx.cancel()
	}
	// Morsel workers exit asynchronously; give the runtime a moment to
	// reap them (same settle pattern as engine/cancel_test.go).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled service queries",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Compile-time check that both query paths satisfy the loadgen target
// signature contract (kept here so a signature drift fails the build,
// not the benchmark).
var _ = func() bool {
	var svc *Service
	var c *Client
	var _ func(context.Context, Request) (*Response, error) = svc.Query
	var _ func(context.Context, Request) (*Response, error) = c.Query
	var _ *engine.Result
	return true
}
