package service

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/storage"
)

// The race battery: N goroutine "sessions" hammer one corpus's shared
// Built (and PagedBuilt) through the service concurrently, at mixed
// worker counts, and every answer must be bit-identical to a direct
// single-threaded engine execution. Run under -race this is the
// shared-cache safety evidence for the whole service path; the cache
// counters afterwards pin the single-flight property — every prepared
// plan, join table, and probe set was built exactly once no matter how
// many sessions raced to first use.

const (
	batterySessions = 8
	batteryRounds   = 6
)

// runBattery drives sessions×rounds over every query against one
// registered corpus and checks each response bit-exactly.
func runBattery(t *testing.T, svc *Service, corpus string, want []*engine.Result) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, batterySessions)
	for s := 0; s < batterySessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ctx := context.Background()
			tenant := fmt.Sprintf("tenant-%d", s%3)
			for r := 0; r < batteryRounds; r++ {
				// Mixed worker counts: each session asks for a different
				// parallelism each round; grants vary with pool load and
				// the answers must not.
				workers := 1 + (s+r)%4
				for i, qs := range serviceQueries {
					resp, err := svc.Query(ctx, Request{
						Corpus: corpus, Tenant: tenant, XPath: qs, Workers: workers,
					})
					if err != nil {
						errs <- fmt.Errorf("session %d round %d query %d: %w", s, r, i, err)
						return
					}
					if d := diffResponse(resp, want[i]); d != "" {
						errs <- fmt.Errorf("session %d round %d workers %d %s: %s", s, r, workers, qs, d)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// singleFlightMisses executes each battery query once on a fresh Built
// and returns its cache-miss profile: the exact miss counts a shared
// Built must show after ANY number of concurrent sessions, if and only
// if every structure was built exactly once.
func singleFlightMisses(t *testing.T, svc *Service, corpus string) map[string]int64 {
	t.Helper()
	ctx := context.Background()
	for _, qs := range serviceQueries {
		if _, err := svc.Query(ctx, Request{Corpus: corpus, Tenant: "baseline", XPath: qs}); err != nil {
			t.Fatalf("baseline %s: %v", qs, err)
		}
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	out := map[string]int64{}
	for k, v := range svc.corpora[corpus].built.CacheCounters() {
		if len(k) > 7 && k[len(k)-7:] == ".misses" {
			out[k] = v
		}
	}
	return out
}

func assertSingleFlight(t *testing.T, b *engine.Built, wantMisses map[string]int64) {
	t.Helper()
	got := b.CacheCounters()
	for k, want := range wantMisses {
		if got[k] != want {
			t.Errorf("cache %s = %d after battery, want %d (structure built more than once, single-flight broken); counters %v",
				k, got[k], want, got)
		}
	}
}

func TestSharedBuiltRaceBattery(t *testing.T) {
	m, db, built := movieFixture(t, 200)
	want := refResults(t, m, db, serviceQueries)

	// Miss profile of a single serial pass on a private Built: the
	// battery's shared Built must match it exactly.
	_, _, baselineBuilt := movieFixture(t, 200)
	baseSvc := New(Config{})
	if err := baseSvc.RegisterBuilt("movie", baselineBuilt, m, nil); err != nil {
		t.Fatal(err)
	}
	wantMisses := singleFlightMisses(t, baseSvc, "movie")

	reg := obs.NewRegistry()
	svc := New(Config{Registry: reg, PoolWorkers: 4, DefaultQuota: TenantQuota{MaxConcurrent: 8, MaxQueued: 64}})
	if err := svc.RegisterBuilt("movie", built, m, nil); err != nil {
		t.Fatal(err)
	}
	runBattery(t, svc, "movie", want)
	assertSingleFlight(t, built, wantMisses)

	// The plan cache is also single-flight: one miss per query text.
	if got := reg.Snapshot()["service.plan.misses"]; got != float64(len(serviceQueries)) {
		t.Errorf("plan misses = %v after %d sessions, want %d",
			got, batterySessions, len(serviceQueries))
	}
}

func TestSharedPagedBuiltRaceBattery(t *testing.T) {
	m, db, built := movieFixture(t, 200)
	want := refResults(t, m, db, serviceQueries)

	dir, err := os.MkdirTemp("", "service-paged-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if _, err := storage.Save(dir, built, storage.Options{ChunkRows: 64}); err != nil {
		t.Fatalf("save: %v", err)
	}
	// A budget around a third of the data forces real paging: sessions
	// continuously fault and evict each other's chunks while sharing one
	// CLOCK pager.
	store, err := storage.Open(dir, storage.Options{MemBudgetBytes: db.Bytes() / 3, ChunkRows: 64})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { store.Close() })

	reg := obs.NewRegistry()
	svc := New(Config{Registry: reg, PoolWorkers: 4, DefaultQuota: TenantQuota{MaxConcurrent: 8, MaxQueued: 64}})
	if err := svc.RegisterStore("movie", store, m, true); err != nil {
		t.Fatal(err)
	}
	runBattery(t, svc, "movie", want)

	// Prepared plans are still single-flight on the paged Built. (Join
	// and probe structures too — same counters, same cache.)
	counters := func() map[string]int64 {
		svc.mu.Lock()
		defer svc.mu.Unlock()
		return svc.corpora["movie"].built.CacheCounters()
	}()
	if counters["prepared.misses"] != int64(len(serviceQueries)) {
		t.Errorf("prepared.misses = %d, want %d (counters %v)",
			counters["prepared.misses"], len(serviceQueries), counters)
	}
}
