// Package translate turns XPath queries into sorted outer-union SQL
// [21] under an arbitrary compiled mapping: one main branch per
// context-hosting (partition) relation carrying the inlined
// single-valued projections, one branch per set-valued or outlined
// projection joining its relation to the context relation, UNION ALL,
// ORDER BY the context ID. Union-distributed partitions that cannot
// contain the selection column or any projection are pruned —
// exactly the benefit Section 4.4's candidate selection targets.
package translate

import (
	"fmt"
	"strings"

	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// OutputID is the output column name of the context element's ID.
const OutputID = "ID"

// Translate compiles an XPath query against a mapping.
func Translate(m *shred.Mapping, q *xpath.Query) (*sqlast.Query, error) {
	ctxNodes := ResolveContext(m.Tree, q.Context)
	if len(ctxNodes) == 0 {
		return nil, fmt.Errorf("translate: no schema element matches context %v", q.Context)
	}
	// Output schema is computed from the first context node; further
	// context nodes must produce the same projections by name.
	out := &sqlast.Query{OrderBy: OutputID}
	var outNames []string
	for i, ctx := range ctxNodes {
		branches, names, err := translateContext(m, ctx, q)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			outNames = names
		} else if strings.Join(names, ",") != strings.Join(outNames, ",") {
			return nil, fmt.Errorf("translate: context %v is ambiguous with incompatible projections", q.Context)
		}
		out.Branches = append(out.Branches, branches...)
	}
	if len(ctxNodes) > 1 {
		out.Branches = dedupeBranches(out.Branches)
	}
	if len(out.Branches) == 0 {
		// All partitions pruned: the query provably returns nothing
		// from this mapping; emit a single never-matching branch so the
		// statement stays well-formed.
		return nil, fmt.Errorf("translate: query %s selects nothing under this mapping", q)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("translate: internal error: %w (SQL: %s)", err, out.SQL())
	}
	return out, nil
}

// dedupeBranches drops branches that render to identical SQL. Distinct
// context nodes sharing a type-merged annotation resolve to the same
// host relation with positionally aligned columns, so each of them
// emits the same branch; keeping the duplicates would return every
// stored instance once per context node instead of once.
func dedupeBranches(in []*sqlast.Select) []*sqlast.Select {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, b := range in {
		sql := b.SQL()
		if seen[sql] {
			continue
		}
		seen[sql] = true
		out = append(out, b)
	}
	return out
}

// projection classification results
type projPlan struct {
	name string // output column base name
	leaf *schema.Node
	// inline: column of the host relation (may be absent in some
	// partitions).
	inline bool
	// split: repetition-split leaf; k occurrence columns inline plus an
	// overflow relation.
	split bool
	// child: hosted by relations whose parent is the host annotation.
	childRels []*shred.Relation
}

func translateContext(m *shred.Mapping, ctx *schema.Node, q *xpath.Query) ([]*sqlast.Select, []string, error) {
	hosts := m.HostRelations(ctx)
	if len(hosts) == 0 {
		return nil, nil, fmt.Errorf("translate: context %s has no hosting relation", ctx.Path())
	}
	hostAnn := hosts[0].Ann

	// --- selection classification ---
	var selLeaf *schema.Node
	if q.Pred != nil {
		leaves := resolveRelPath(ctx, q.Pred.Path)
		if len(leaves) != 1 {
			return nil, nil, fmt.Errorf("translate: selection path %s resolves to %d elements under %s",
				q.Pred.Path, len(leaves), ctx.Path())
		}
		selLeaf = leaves[0]
		if !selLeaf.IsLeaf() {
			return nil, nil, fmt.Errorf("translate: selection path %s is not a leaf element", q.Pred.Path)
		}
	}

	// --- projection classification ---
	proj := q.Proj
	if len(proj) == 0 {
		proj = bareContextProjections(ctx)
	}
	plans := make([]*projPlan, 0, len(proj))
	for _, p := range proj {
		leaves := resolveRelPath(ctx, p)
		if len(leaves) != 1 {
			return nil, nil, fmt.Errorf("translate: projection %s resolves to %d elements under %s",
				p, len(leaves), ctx.Path())
		}
		leaf := leaves[0]
		if !leaf.IsLeaf() {
			return nil, nil, fmt.Errorf("translate: projection %s is not a leaf element", p)
		}
		pp := &projPlan{name: strings.Join(p, "_"), leaf: leaf}
		switch {
		case leaf.SplitCount > 0 && hostsLeafInline(m, hostAnn, leaf, 1):
			pp.split = true
		case hostsLeafInline(m, hostAnn, leaf, 0):
			pp.inline = true
		default:
			prels := m.HostRelations(leaf)
			if len(prels) == 0 {
				return nil, nil, fmt.Errorf("translate: projection %s has no hosting relation", p)
			}
			if !relationChildOf(prels[0], hostAnn) {
				return nil, nil, fmt.Errorf("translate: projection %s crosses more than one relation level", p)
			}
			pp.childRels = prels
		}
		plans = append(plans, pp)
	}

	// Output schema: ID, then per projection either one column or
	// (for split) k occurrence columns plus the overflow column.
	outNames := []string{OutputID}
	for _, pp := range plans {
		if pp.split {
			for i := 1; i <= pp.leaf.SplitCount; i++ {
				outNames = append(outNames, fmt.Sprintf("%s__%d", pp.name, i))
			}
		}
		outNames = append(outNames, pp.name)
	}

	var branches []*sqlast.Select
	for _, host := range hosts {
		// Partition pruning on the selection column.
		selPreds, ok, err := selectionPreds(m, host, hostAnn, ctx, selLeaf, q.Pred)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			continue // partition cannot satisfy the selection
		}
		// Main branch: inlined single-valued and split occurrence
		// columns present in this partition.
		main := &sqlast.Select{From: []string{host.Name}, Where: selPreds}
		main.Items = append(main.Items, sqlast.SelectItem{
			Col: &sqlast.ColRef{Table: host.Name, Column: rel.IDColumn}, As: OutputID})
		nonNull := 0
		for _, pp := range plans {
			if pp.split {
				for i := 1; i <= pp.leaf.SplitCount; i++ {
					name := fmt.Sprintf("%s__%d", pp.name, i)
					if ci := host.ColumnFor(pp.leaf.ID, i); ci >= 0 {
						main.Items = append(main.Items, sqlast.SelectItem{
							Col: &sqlast.ColRef{Table: host.Name, Column: host.Columns[ci].Name}, As: name})
						nonNull++
					} else {
						main.Items = append(main.Items, sqlast.SelectItem{As: name})
					}
				}
				main.Items = append(main.Items, sqlast.SelectItem{As: pp.name})
				continue
			}
			if pp.inline {
				if ci := host.ColumnFor(pp.leaf.ID, 0); ci >= 0 {
					main.Items = append(main.Items, sqlast.SelectItem{
						Col: &sqlast.ColRef{Table: host.Name, Column: host.Columns[ci].Name}, As: pp.name})
					nonNull++
					continue
				}
			}
			main.Items = append(main.Items, sqlast.SelectItem{As: pp.name})
		}
		if nonNull > 0 {
			branches = append(branches, main)
		}
		// Child branches: one per (projection, child partition) plus
		// overflow branches for split projections.
		for _, pp := range plans {
			switch {
			case pp.split:
				overflow := m.RelationsOf(pp.leaf.Annotation)
				for _, orel := range overflow {
					b, err := childBranch(m, host, orel, pp, outNames, selPreds)
					if err != nil {
						return nil, nil, err
					}
					branches = append(branches, b)
				}
			case len(pp.childRels) > 0:
				for _, crel := range pp.childRels {
					if !crel.HasLeaf(pp.leaf.ID) {
						continue // child partition without the leaf
					}
					b, err := childBranch(m, host, crel, pp, outNames, selPreds)
					if err != nil {
						return nil, nil, err
					}
					branches = append(branches, b)
				}
			}
		}
	}
	return branches, outNames, nil
}

// childBranch builds a branch joining the host to a child relation and
// emitting the child's value column into the projection slot.
func childBranch(m *shred.Mapping, host, child *shred.Relation, pp *projPlan,
	outNames []string, selPreds []sqlast.Pred) (*sqlast.Select, error) {
	ci := child.ColumnFor(pp.leaf.ID, 0)
	if ci < 0 {
		return nil, fmt.Errorf("translate: relation %s lacks value column for %s", child.Name, pp.leaf.Path())
	}
	valCol := child.Columns[ci].Name
	b := &sqlast.Select{From: []string{host.Name, child.Name}}
	b.Where = append(b.Where, sqlast.Pred{
		Kind:  sqlast.PredJoin,
		Left:  sqlast.ColRef{Table: child.Name, Column: rel.PIDColumn},
		Right: sqlast.ColRef{Table: host.Name, Column: rel.IDColumn},
	})
	b.Where = append(b.Where, selPreds...)
	for _, name := range outNames {
		switch name {
		case OutputID:
			b.Items = append(b.Items, sqlast.SelectItem{
				Col: &sqlast.ColRef{Table: host.Name, Column: rel.IDColumn}, As: OutputID})
		case pp.name:
			b.Items = append(b.Items, sqlast.SelectItem{
				Col: &sqlast.ColRef{Table: child.Name, Column: valCol}, As: pp.name})
		default:
			b.Items = append(b.Items, sqlast.SelectItem{As: name})
		}
	}
	return b, nil
}

// selectionPreds builds the WHERE conjuncts implementing the selection
// for one host partition; ok=false prunes the partition entirely.
func selectionPreds(m *shred.Mapping, host *shred.Relation, hostAnn string,
	ctx, selLeaf *schema.Node, pred *xpath.Predicate) ([]sqlast.Pred, bool, error) {
	if selLeaf == nil {
		return nil, true, nil
	}
	op := cmpOp(pred.Op)
	lit := xmlgen.LiteralValue(pred.Value)
	switch {
	case selLeaf.SplitCount > 0 && hostsLeafInline(m, hostAnn, selLeaf, 1):
		// Repetition-split selection: OR over the occurrence columns
		// plus EXISTS on the overflow relation.
		var cols []sqlast.ColRef
		for i := 1; i <= selLeaf.SplitCount; i++ {
			if ci := host.ColumnFor(selLeaf.ID, i); ci >= 0 {
				cols = append(cols, sqlast.ColRef{Table: host.Name, Column: host.Columns[ci].Name})
			}
		}
		if len(cols) == 0 {
			return nil, false, nil
		}
		overflow := m.RelationsOf(selLeaf.Annotation)
		if len(overflow) != 1 {
			return nil, false, fmt.Errorf("translate: split selection with partitioned overflow relation")
		}
		oci := overflow[0].ColumnFor(selLeaf.ID, 0)
		return []sqlast.Pred{{
			Kind:     sqlast.PredOrExists,
			Op:       op,
			Value:    lit.Coerce(leafRelType(selLeaf)),
			Cols:     cols,
			Table:    overflow[0].Name,
			JoinCol:  rel.PIDColumn,
			OuterCol: sqlast.ColRef{Table: host.Name, Column: rel.IDColumn},
			InnerCol: overflow[0].Columns[oci].Name,
		}}, true, nil
	case hostsLeafInline(m, hostAnn, selLeaf, 0):
		ci := host.ColumnFor(selLeaf.ID, 0)
		if ci < 0 {
			// This partition cannot contain the selection element:
			// prune it (union-distribution benefit).
			return nil, false, nil
		}
		return []sqlast.Pred{{
			Kind:  sqlast.PredCompare,
			Op:    op,
			Col:   sqlast.ColRef{Table: host.Name, Column: host.Columns[ci].Name},
			Value: lit.Coerce(host.Columns[ci].Typ),
		}}, true, nil
	default:
		prels := m.HostRelations(selLeaf)
		if len(prels) == 0 {
			return nil, false, fmt.Errorf("translate: selection %s has no hosting relation", selLeaf.Path())
		}
		if len(prels) != 1 {
			return nil, false, fmt.Errorf("translate: selection on partitioned child relation is unsupported")
		}
		if !relationChildOf(prels[0], hostAnn) {
			return nil, false, fmt.Errorf("translate: selection %s crosses more than one relation level", selLeaf.Path())
		}
		ci := prels[0].ColumnFor(selLeaf.ID, 0)
		if ci < 0 {
			return nil, false, fmt.Errorf("translate: relation %s lacks value column for %s", prels[0].Name, selLeaf.Path())
		}
		return []sqlast.Pred{{
			Kind:     sqlast.PredExists,
			Op:       op,
			Value:    lit.Coerce(prels[0].Columns[ci].Typ),
			Table:    prels[0].Name,
			JoinCol:  rel.PIDColumn,
			OuterCol: sqlast.ColRef{Table: host.Name, Column: rel.IDColumn},
			InnerCol: prels[0].Columns[ci].Name,
		}}, true, nil
	}
}

// hostsLeafInline reports whether the leaf has an inline column home
// (at the given occurrence level: 0 scalar, 1 first split column) in
// the relations of the host annotation.
func hostsLeafInline(m *shred.Mapping, hostAnn string, leaf *schema.Node, occ int) bool {
	for _, h := range m.Homes(leaf.ID) {
		if h.Rel.Ann == hostAnn && h.Occurrence == occ && !h.Overflow {
			return true
		}
	}
	return false
}

// relationChildOf reports whether r's PID references the given
// annotation.
func relationChildOf(r *shred.Relation, ann string) bool {
	for _, pa := range r.ParentAnns {
		if pa == ann {
			return true
		}
	}
	return false
}

// bareContextProjections returns the implicit projections of a bare
// context query: the context's own value for a leaf context, otherwise
// its single-valued direct leaf children.
func bareContextProjections(ctx *schema.Node) []xpath.Path {
	if ctx.IsLeaf() {
		return []xpath.Path{{ctx.Name}}
	}
	var out []xpath.Path
	for _, c := range ctx.ElementChildren() {
		if c.IsLeaf() && !c.IsSetValued() {
			out = append(out, xpath.Path{c.Name})
		}
	}
	return out
}

// ResolveContext resolves location steps to element nodes of the
// schema tree in document order.
func ResolveContext(t *schema.Tree, steps []xpath.Step) []*schema.Node {
	if len(steps) == 0 {
		return nil
	}
	var cur []*schema.Node
	switch steps[0].Axis {
	case xpath.Child:
		if t.Root.Name == steps[0].Name {
			cur = append(cur, t.Root)
		}
	case xpath.Descendant:
		cur = append(cur, t.ElementsNamed(steps[0].Name)...)
	}
	for _, s := range steps[1:] {
		var next []*schema.Node
		seen := make(map[int]bool)
		for _, n := range cur {
			switch s.Axis {
			case xpath.Child:
				for _, c := range n.ElementChildren() {
					if c.Name == s.Name && !seen[c.ID] {
						seen[c.ID] = true
						next = append(next, c)
					}
				}
			case xpath.Descendant:
				var walk func(e *schema.Node)
				walk = func(e *schema.Node) {
					if e.Name == s.Name && !seen[e.ID] {
						seen[e.ID] = true
						next = append(next, e)
					}
					for _, c := range e.ElementChildren() {
						walk(c)
					}
				}
				for _, c := range n.ElementChildren() {
					walk(c)
				}
			}
		}
		cur = next
	}
	return cur
}

// resolveRelPath resolves a relative child path from a context element
// to element nodes.
func resolveRelPath(ctx *schema.Node, p xpath.Path) []*schema.Node {
	// A path naming the leaf context itself resolves to the context
	// (bare leaf contexts).
	if len(p) == 1 && ctx.IsLeaf() && p[0] == ctx.Name {
		return []*schema.Node{ctx}
	}
	cur := []*schema.Node{ctx}
	for _, name := range p {
		var next []*schema.Node
		for _, n := range cur {
			for _, c := range n.ElementChildren() {
				if c.Name == name {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	return cur
}

func cmpOp(op xpath.CmpOp) sqlast.CmpOp {
	switch op {
	case xpath.OpEq:
		return sqlast.OpEq
	case xpath.OpNe:
		return sqlast.OpNe
	case xpath.OpLt:
		return sqlast.OpLt
	case xpath.OpLe:
		return sqlast.OpLe
	case xpath.OpGt:
		return sqlast.OpGt
	}
	return sqlast.OpGe
}

func leafRelType(n *schema.Node) rel.Type {
	switch n.LeafBase() {
	case schema.BaseInt:
		return rel.TInt
	case schema.BaseFloat:
		return rel.TFloat
	default:
		return rel.TString
	}
}
