package translate

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/xpath"
)

func compile(t *testing.T, tree *schema.Tree) *shred.Mapping {
	t.Helper()
	m, err := shred.Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTranslateIntroExampleShape(t *testing.T) {
	// Mapping 1 of Section 1.1: the translated SQL must be the sorted
	// outer union of the paper.
	m := compile(t, schema.DBLP())
	q := xpath.MustParse(`/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`)
	sql, err := Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sql.Branches) != 2 {
		t.Fatalf("branches = %d, want 2 (main + author join)", len(sql.Branches))
	}
	text := sql.SQL()
	for _, want := range []string{
		"booktitle = 'SIGMOD CONFERENCE'",
		"UNION ALL",
		"author.PID = inproceedings.ID",
		"ORDER BY ID",
		"NULL AS author",
		"NULL AS title",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("SQL missing %q:\n%s", want, text)
		}
	}
	if err := sql.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTranslateRepetitionSplitShape(t *testing.T) {
	// Mapping 2: the main branch carries author_1..k columns and the
	// overflow branch joins the author table.
	tree := schema.DBLP()
	for _, n := range tree.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			n.SplitCount = 5
		}
	}
	m := compile(t, tree)
	q := xpath.MustParse(`/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`)
	sql, err := Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	text := sql.SQL()
	for _, want := range []string{"author_1", "author_5", "author.PID = inproceedings.ID"} {
		if !strings.Contains(text, want) {
			t.Errorf("SQL missing %q:\n%s", want, text)
		}
	}
	// Output schema: ID + title + year + author__1..5 + author (the
	// overflow slot).
	if got := len(sql.OutputColumns()); got != 9 {
		t.Errorf("output columns = %d (%v), want 8", got, sql.OutputColumns())
	}
}

func TestTranslatePartitionPruning(t *testing.T) {
	// //movie/year with an implicit union on year reads only the
	// has-year partition (the paper's Q1 example).
	tree := schema.Movie()
	movie := tree.ElementsNamed("movie")[0]
	lang := tree.ElementsNamed("language")[0]
	movie.Distributions = []schema.Distribution{{Optionals: []int{lang.ID}}}
	m := compile(t, tree)

	q := xpath.MustParse(`//movie/language`)
	sql, err := Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sql.Branches) != 1 {
		t.Fatalf("branches = %d, want 1 (no-language partition pruned):\n%s", len(sql.Branches), sql.SQL())
	}
	if sql.Branches[0].From[0] != "movie_has_language" {
		t.Errorf("branch reads %s", sql.Branches[0].From[0])
	}
	// A query on a column present in both partitions reads both.
	q2 := xpath.MustParse(`//movie/title`)
	sql2, err := Translate(m, q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sql2.Branches) != 2 {
		t.Errorf("branches = %d, want 2:\n%s", len(sql2.Branches), sql2.SQL())
	}
}

func TestTranslateSelectionPruning(t *testing.T) {
	// Selection on a choice branch prunes partitions of the other
	// branch entirely.
	tree := schema.Movie()
	movie := tree.ElementsNamed("movie")[0]
	choice := tree.ElementsNamed("box_office")[0].UnderChoice()
	movie.Distributions = []schema.Distribution{{Choice: choice.ID}}
	m := compile(t, tree)
	q := xpath.MustParse(`//movie[box_office >= 1000]/(title | year)`)
	sql, err := Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sql.Branches {
		for _, tab := range b.Tables() {
			if strings.Contains(tab, "seasons") {
				t.Errorf("seasons partition not pruned:\n%s", sql.SQL())
			}
		}
	}
}

func TestTranslateSplitSelection(t *testing.T) {
	tree := schema.DBLP()
	for _, n := range tree.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			n.SplitCount = 2
		}
	}
	m := compile(t, tree)
	q := xpath.MustParse(`//inproceedings[author = "x"]/title`)
	sql, err := Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	text := sql.SQL()
	for _, want := range []string{"author_1 = 'x'", "OR", "EXISTS"} {
		if !strings.Contains(text, want) {
			t.Errorf("split selection missing %q:\n%s", want, text)
		}
	}
}

func TestTranslateChildSelectionUsesExists(t *testing.T) {
	m := compile(t, schema.DBLP())
	q := xpath.MustParse(`//inproceedings[author = "x"]/title`)
	sql, err := Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.SQL(), "EXISTS") {
		t.Errorf("set-valued selection should use EXISTS:\n%s", sql.SQL())
	}
}

func TestTranslateMultipleContexts(t *testing.T) {
	// //title resolves to both the inlined inproceedings title and the
	// outlined book title (title1 relation).
	m := compile(t, schema.DBLP())
	q := xpath.MustParse(`//title`)
	sql, err := Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	text := sql.SQL()
	if !strings.Contains(text, "inproceedings") || !strings.Contains(text, "title1") {
		t.Errorf("multi-context translation incomplete:\n%s", text)
	}
}

func TestTranslateBareContext(t *testing.T) {
	m := compile(t, schema.Movie())
	q := xpath.MustParse(`//movie`)
	sql, err := Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	cols := sql.OutputColumns()
	// Single-valued leaves projected; set-valued (aka_title etc.) not.
	joined := strings.Join(cols, ",")
	if !strings.Contains(joined, "title") || !strings.Contains(joined, "year") {
		t.Errorf("bare context columns: %v", cols)
	}
	if strings.Contains(joined, "aka_title") {
		t.Errorf("bare context should not project set-valued leaves: %v", cols)
	}
}

func TestTranslateErrors(t *testing.T) {
	m := compile(t, schema.Movie())
	cases := []string{
		`//nonexistent/title`,
		`//movie/nonexistent`,
		`//movie[nonexistent = "x"]/title`,
	}
	for _, qs := range cases {
		if _, err := Translate(m, xpath.MustParse(qs)); err == nil {
			t.Errorf("%s: want error", qs)
		}
	}
}

func TestTranslateDeepProjection(t *testing.T) {
	// item/sku crosses exactly one relation boundary: supported.
	xsd := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
	 <xs:element name="orders"><xs:complexType><xs:sequence>
	  <xs:element name="order" minOccurs="0" maxOccurs="unbounded"><xs:complexType><xs:sequence>
	   <xs:element name="customer" type="xs:string"/>
	   <xs:element name="item" minOccurs="0" maxOccurs="unbounded"><xs:complexType><xs:sequence>
	    <xs:element name="sku" type="xs:string"/>
	   </xs:sequence></xs:complexType></xs:element>
	  </xs:sequence></xs:complexType></xs:element>
	 </xs:sequence></xs:complexType></xs:element>
	</xs:schema>`
	tree, err := schema.ParseXSDString(xsd)
	if err != nil {
		t.Fatal(err)
	}
	m := compile(t, tree)
	q := xpath.MustParse(`//order[customer = "c"]/(item/sku)`)
	sql, err := Translate(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.SQL(), "item.PID = order.ID") {
		t.Errorf("deep projection join missing:\n%s", sql.SQL())
	}
	outs := sql.OutputColumns()
	if outs[1] != "item_sku" {
		t.Errorf("output name = %v", outs)
	}
}

func TestResolveContext(t *testing.T) {
	tree := schema.DBLP()
	if got := ResolveContext(tree, xpath.MustParse(`//author`).Context); len(got) != 2 {
		t.Errorf("//author resolves to %d nodes, want 2", len(got))
	}
	if got := ResolveContext(tree, xpath.MustParse(`/dblp/book`).Context); len(got) != 1 {
		t.Errorf("/dblp/book resolves to %d nodes", len(got))
	}
	if got := ResolveContext(tree, xpath.MustParse(`/book`).Context); len(got) != 0 {
		t.Errorf("/book (child axis from root) resolves to %d nodes, want 0", len(got))
	}
}
