package physdesign

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

func movieWorkload(t *testing.T) (Workload, stats.MapProvider, *shred.Mapping) {
	t.Helper()
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 3000, Seed: 51})
	m, err := shred.Compile(schema.Movie())
	if err != nil {
		t.Fatal(err)
	}
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	prov := stats.FromDatabase(db)
	var w Workload
	for _, qs := range []string{
		`//movie[year = 1984]/(title | genre)`,
		`//movie[genre = "genre-03"]/(title | year | actor)`,
		`//movie[title = "Movie Title 000042"]/(aka_title | avg_rating)`,
	} {
		sql, err := translate.Translate(m, xpath.MustParse(qs))
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		w = append(w, WeightedQuery{Q: sql, Weight: 1, Tag: qs})
	}
	return w, prov, m
}

func TestTuneReducesCost(t *testing.T) {
	w, prov, _ := movieWorkload(t)
	rec, err := Tune(w, prov, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Config.Indexes) == 0 {
		t.Fatal("no indexes recommended")
	}
	// Compare against the empty configuration.
	base, err := Tune(w, prov, Options{StorageBytes: 1}) // bound too small for anything
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalCost >= base.TotalCost {
		t.Errorf("tuning did not reduce cost: %f >= %f", rec.TotalCost, base.TotalCost)
	}
	if rec.TotalCost > base.TotalCost/2 {
		t.Errorf("tuning benefit too small: %f vs %f", rec.TotalCost, base.TotalCost)
	}
	if rec.OptimizerCalls <= int64(len(w)) {
		t.Errorf("optimizer calls = %d, expected more than one per query", rec.OptimizerCalls)
	}
	if rec.StructBytes <= 0 {
		t.Error("struct bytes not accounted")
	}
}

func TestTuneRespectsStorageBound(t *testing.T) {
	w, prov, _ := movieWorkload(t)
	unbounded, err := Tune(w, prov, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := unbounded.StructBytes / 2
	if bound == 0 {
		t.Skip("nothing recommended")
	}
	rec, err := Tune(w, prov, Options{StorageBytes: bound})
	if err != nil {
		t.Fatal(err)
	}
	if rec.StructBytes > bound {
		t.Errorf("structures %d bytes exceed bound %d", rec.StructBytes, bound)
	}
	if rec.TotalCost < unbounded.TotalCost {
		t.Errorf("bounded config cheaper than unbounded: %f < %f", rec.TotalCost, unbounded.TotalCost)
	}
}

func TestTuneRecommendationExecutes(t *testing.T) {
	// The recommended configuration must actually build and run.
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 500, Seed: 52})
	m, _ := shred.Compile(schema.Movie())
	db, err := shred.Shred(m, doc)
	if err != nil {
		t.Fatal(err)
	}
	prov := stats.FromDatabase(db)
	sql, err := translate.Translate(m, xpath.MustParse(`//movie[year = 1984]/(title | actor)`))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Tune(Workload{{Q: sql, Weight: 1}}, prov, Options{})
	if err != nil {
		t.Fatal(err)
	}
	built, err := engine.Build(db, rec.Config)
	if err != nil {
		t.Fatalf("recommended config failed to build: %v\n%s", err, rec.Config)
	}
	res, err := engine.Execute(built, rec.Plans[0])
	if err != nil {
		t.Fatalf("execution under recommendation failed: %v", err)
	}
	_ = res
}

func TestTuneWithViewCandidates(t *testing.T) {
	w, prov, _ := movieWorkload(t)
	withViews, err := Tune(w, prov, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noViews, err := Tune(w, prov, Options{DisableViews: true})
	if err != nil {
		t.Fatal(err)
	}
	// Views may or may not win, but disabling them must never help.
	if withViews.TotalCost > noViews.TotalCost*1.001 {
		t.Errorf("enabling views hurt: %f > %f", withViews.TotalCost, noViews.TotalCost)
	}
}

func TestTuneVPartitionCandidates(t *testing.T) {
	w, prov, _ := movieWorkload(t)
	rec, err := Tune(w, prov, Options{EnableVPartitions: true})
	if err != nil {
		t.Fatal(err)
	}
	// With covering indexes available, vertical partitions are
	// subsumed (Section 3.1): the tool should still produce a valid,
	// beneficial configuration.
	if rec.TotalCost <= 0 {
		t.Error("degenerate cost")
	}
}

func TestCandidateGenerationShapes(t *testing.T) {
	w, prov, _ := movieWorkload(t)
	cands := generateCandidates(w, prov, Options{})
	var haveSelIdx, haveCovering, havePID, haveView bool
	for _, c := range cands {
		if c.idx != nil {
			if c.idx.Key[0] == "year" || c.idx.Key[0] == "genre" || c.idx.Key[0] == "title" {
				haveSelIdx = true
				if len(c.idx.Include) > 0 {
					haveCovering = true
				}
			}
			if c.idx.Key[0] == "PID" {
				havePID = true
			}
		}
		if c.view != nil {
			haveView = true
		}
	}
	if !haveSelIdx || !haveCovering || !havePID || !haveView {
		t.Errorf("candidate generation incomplete: sel=%v cov=%v pid=%v view=%v",
			haveSelIdx, haveCovering, havePID, haveView)
	}
	// No duplicates.
	seen := make(map[string]bool)
	for _, c := range cands {
		if seen[c.id()] {
			t.Errorf("duplicate candidate %s", c.id())
		}
		seen[c.id()] = true
	}
}

// TestOptionsKey pins the canonical options identity used in advisor
// memoization keys: every tuning-relevant field must be distinguished,
// and InsertRates must serialize in sorted order so map iteration
// cannot produce two keys for the same options.
func TestOptionsKey(t *testing.T) {
	base := Options{StorageBytes: 1 << 20}
	variants := []Options{
		{},
		{StorageBytes: 1 << 20, DisableViews: true},
		{StorageBytes: 1 << 20, EnableVPartitions: true},
		{StorageBytes: 1 << 20, MaxCandidatesPerQuery: 3},
		{StorageBytes: 1 << 20, InsertRates: map[string]float64{"t": 0.5}},
	}
	for i, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("variant %d has same key as base: %s", i, v.Key())
		}
	}
	a := Options{InsertRates: map[string]float64{"a": 1, "b": 2, "c": 3}}
	b := Options{InsertRates: map[string]float64{"c": 3, "b": 2, "a": 1}}
	for i := 0; i < 20; i++ {
		if a.Key() != b.Key() {
			t.Fatalf("InsertRates serialization is order-dependent:\n%s\n%s", a.Key(), b.Key())
		}
	}
}
