// Package physdesign is the automated physical design tool the search
// algorithms call as a black box — the stand-in for Microsoft SQL
// Server 2000's Index Tuning Wizard in the paper's architecture
// (Fig. 2). Given a weighted SQL workload, statistics, and a storage
// bound, it generates candidate indexes (selection, covering, join),
// materialized join views, and optionally vertical partitions, then
// greedily picks the best benefit-per-byte set that fits the bound,
// costing every step with what-if optimizer calls.
package physdesign

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/sqlast"
	"repro/internal/stats"
)

// WeightedQuery pairs a translated SQL query with its workload weight.
type WeightedQuery struct {
	// Q is the translated sorted outer-union query.
	Q *sqlast.Query
	// Weight is the query's workload frequency f_i.
	Weight float64
	// Tag is an optional label (the source XPath) for reporting.
	Tag string
}

// Workload is a weighted SQL workload.
type Workload []WeightedQuery

// Options configures the tool.
type Options struct {
	// StorageBytes bounds the total size of recommended structures
	// (indexes plus views); 0 means unbounded.
	StorageBytes int64
	// DisableViews turns off materialized view candidates.
	DisableViews bool
	// EnableVPartitions adds vertical partition candidates (off by
	// default, like the Index Tuning Wizard; Section 3.1 shows they are
	// subsumed by covering indexes when space allows).
	EnableVPartitions bool
	// MaxCandidatesPerQuery caps candidate generation per query.
	MaxCandidatesPerQuery int
	// InsertRates gives the number of rows inserted per workload
	// execution, per table. Every structure on a table pays a
	// maintenance cost proportional to its insert rate, so
	// update-heavy workloads receive leaner configurations (the
	// paper's future-work extension).
	InsertRates map[string]float64
	// Obs, when non-nil, is the caller's tuner-call span; Tune reports
	// candidate counts, chosen structures, and optimizer effort on it.
	// Deliberately excluded from Key(): observability must not fork the
	// advisor's memoization.
	Obs *obs.Span
}

// Key returns a canonical string identity for the options, so advisor
// caches can include the physical-design configuration in their
// memoization keys. InsertRates are serialized in sorted table order.
func (o Options) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "s=%d;dv=%t;vp=%t;mc=%d", o.StorageBytes, o.DisableViews,
		o.EnableVPartitions, o.MaxCandidatesPerQuery)
	if len(o.InsertRates) > 0 {
		tables := make([]string, 0, len(o.InsertRates))
		for t := range o.InsertRates {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			fmt.Fprintf(&b, ";ir:%s=%g", t, o.InsertRates[t])
		}
	}
	return b.String()
}

// Recommendation is the tool's output.
type Recommendation struct {
	// Config is the chosen configuration.
	Config *physical.Config
	// PerQuery are the estimated costs of each workload query under
	// Config, aligned with the input workload.
	PerQuery []float64
	// Plans are the corresponding plans (for cost derivation).
	Plans []*optimizer.Plan
	// TotalCost is the weighted workload cost under Config.
	TotalCost float64
	// StructBytes is the estimated size of the chosen structures.
	StructBytes int64
	// MaintenanceCost is the per-execution update maintenance cost of
	// the chosen structures (included in TotalCost).
	MaintenanceCost float64
	// OptimizerCalls is the number of what-if optimizer invocations.
	OptimizerCalls int64
}

// maintenancePerRow is the cost of keeping one structure current for
// one inserted row (an index insertion: a seek plus a tuple write).
const maintenancePerRow = optimizer.CostSeek + optimizer.CostTuple

// maintenanceCost returns the per-execution maintenance of a candidate
// under the insert rates.
func (c *candidate) maintenanceCost(rates map[string]float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	switch {
	case c.idx != nil:
		return rates[c.idx.Table] * maintenancePerRow
	case c.view != nil:
		// A view row is produced per inserted inner row; outer inserts
		// may also touch it.
		return (rates[c.view.Inner] + 0.5*rates[c.view.Outer]) * maintenancePerRow
	default:
		// Every partition group receives the key columns of each
		// inserted row.
		return rates[c.vpart.Table] * maintenancePerRow * float64(len(c.vpart.Groups))
	}
}

// defaultMaxCandidates bounds the candidate pool entering the greedy
// selection (after benefit-ranked prefiltering), and
// defaultMaxStructures bounds the configuration size. Both keep the
// tool's running time proportional to workload size rather than to the
// candidate blowup of heavily partitioned mappings.
const (
	defaultMaxCandidates = 48
	defaultMaxStructures = 32
)

// candidate is one structure under consideration.
type candidate struct {
	idx     *physical.Index
	view    *physical.View
	vpart   *physical.VPartition
	tables  []string // tables whose queries it can affect
	bytes   int64
	origins []int // workload indices of the queries that generated it
}

func (c *candidate) id() string {
	switch {
	case c.idx != nil:
		return c.idx.ID()
	case c.view != nil:
		return c.view.ID()
	default:
		return c.vpart.ID()
	}
}

func (c *candidate) addTo(cfg *physical.Config) bool {
	switch {
	case c.idx != nil:
		return cfg.AddIndex(c.idx)
	case c.view != nil:
		return cfg.AddView(c.view)
	default:
		return cfg.AddPartition(c.vpart)
	}
}

// Tune runs the tool over the workload.
func Tune(w Workload, prov stats.Provider, opts Options) (*Recommendation, error) {
	opt := optimizer.New(prov)
	startCalls := opt.Calls
	cfg := &physical.Config{}
	costs := make([]float64, len(w))
	plans := make([]*optimizer.Plan, len(w))
	for i, wq := range w {
		p, err := opt.PlanQuery(wq.Q, cfg)
		if err != nil {
			return nil, fmt.Errorf("physdesign: base cost of query %d: %w", i, err)
		}
		plans[i] = p
		costs[i] = p.Cost
	}
	cands := generateCandidates(w, prov, opts)
	cands = prefilterCandidates(cands, w, opt, costs, opts)
	// Lazy greedy selection: scores only go down as structures are
	// added, so a stale-score heap avoids re-evaluating every candidate
	// every round (the classic lazy submodular trick).
	type scored struct {
		c      *candidate
		score  float64
		round  int
		benfit float64
		costs  []float64
	}
	evaluate := func(c *candidate) (float64, []float64, bool) {
		trial := cfg.Clone()
		if !c.addTo(trial) {
			return 0, nil, false
		}
		benefit := -c.maintenanceCost(opts.InsertRates)
		trialCosts := make([]float64, len(w))
		copy(trialCosts, costs)
		for i, wq := range w {
			if !queryTouches(wq.Q, c.tables) {
				continue
			}
			p, err := opt.PlanQuery(wq.Q, trial)
			if err != nil {
				return 0, nil, false
			}
			trialCosts[i] = p.Cost
			benefit += wq.Weight * (costs[i] - p.Cost)
		}
		return benefit, trialCosts, true
	}
	var pool []*scored
	for _, c := range cands {
		pool = append(pool, &scored{c: c, score: math.Inf(1), round: -1})
	}
	maxStructures := defaultMaxStructures
	for round := 0; round < maxStructures && len(pool) > 0; round++ {
		used := cfg.EstBytes(prov)
		selected := -1
		for {
			// Pick the highest stale-or-fresh score.
			best := -1
			for i, s := range pool {
				if s == nil {
					continue
				}
				if best < 0 || s.score > pool[best].score {
					best = i
				}
			}
			if best < 0 || pool[best].score <= 1e-12 {
				break
			}
			s := pool[best]
			if opts.StorageBytes > 0 && used+s.c.bytes > opts.StorageBytes {
				pool[best] = nil
				continue
			}
			if s.round == round {
				selected = best
				break
			}
			benefit, trialCosts, ok := evaluate(s.c)
			if !ok {
				pool[best] = nil
				continue
			}
			s.benfit, s.costs, s.round = benefit, trialCosts, round
			s.score = benefit / math.Max(float64(s.c.bytes), 1)
			if benefit <= 1e-9 {
				pool[best] = nil
			}
		}
		if selected < 0 {
			break
		}
		s := pool[selected]
		s.c.addTo(cfg)
		costs = s.costs
		pool[selected] = nil
	}
	// Final pass: plans and exact per-query costs under the chosen
	// configuration.
	total := 0.0
	for i, wq := range w {
		p, err := opt.PlanQuery(wq.Q, cfg)
		if err != nil {
			return nil, fmt.Errorf("physdesign: final cost of query %d: %w", i, err)
		}
		plans[i] = p
		costs[i] = p.Cost
		total += wq.Weight * p.Cost
	}
	maint := configMaintenance(cfg, opts.InsertRates)
	opts.Obs.SetAttr(
		obs.Int("queries", int64(len(w))),
		obs.Int("candidates", int64(len(cands))),
		obs.Int("structures", int64(len(cfg.Indexes)+len(cfg.Views)+len(cfg.Partitions))),
		obs.Int("optimizer_calls", opt.Calls-startCalls),
		obs.Float("total_cost", total+maint))
	return &Recommendation{
		Config:          cfg,
		PerQuery:        costs,
		Plans:           plans,
		TotalCost:       total + maint,
		StructBytes:     cfg.EstBytes(prov),
		MaintenanceCost: maint,
		OptimizerCalls:  opt.Calls - startCalls,
	}, nil
}

// configMaintenance sums the per-execution maintenance cost of every
// chosen structure.
func configMaintenance(cfg *physical.Config, rates map[string]float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	total := 0.0
	for _, idx := range cfg.Indexes {
		total += (&candidate{idx: idx}).maintenanceCost(rates)
	}
	for _, v := range cfg.Views {
		total += (&candidate{view: v}).maintenanceCost(rates)
	}
	for _, vp := range cfg.Partitions {
		total += (&candidate{vpart: vp}).maintenanceCost(rates)
	}
	return total
}

// queryTouches reports whether the query references any of the tables.
func queryTouches(q *sqlast.Query, tables []string) bool {
	qt := q.Tables()
	for _, t := range tables {
		for _, x := range qt {
			if x == t {
				return true
			}
		}
	}
	return false
}

// generateCandidates derives candidate structures from the workload,
// recording which queries produced each candidate.
func generateCandidates(w Workload, prov stats.Provider, opts Options) []*candidate {
	seen := make(map[string]*candidate)
	var out []*candidate
	qi := 0
	add := func(c *candidate) {
		id := c.id()
		if prev, ok := seen[id]; ok {
			// Record the additional origin query.
			last := len(prev.origins) - 1
			if last < 0 || prev.origins[last] != qi {
				prev.origins = append(prev.origins, qi)
			}
			return
		}
		c.origins = []int{qi}
		seen[id] = c
		out = append(out, c)
	}
	seq := 0
	name := func(prefix string) string {
		seq++
		return fmt.Sprintf("%s_%d", prefix, seq)
	}
	for i, wq := range w {
		qi = i
		n := 0
		for _, s := range wq.Q.Branches {
			if opts.MaxCandidatesPerQuery > 0 && n >= opts.MaxCandidatesPerQuery {
				break
			}
			for _, c := range branchCandidates(s, prov, opts, name) {
				add(c)
				n++
			}
		}
	}
	// Deterministic order helps reproducibility.
	sort.SliceStable(out, func(i, j int) bool { return out[i].id() < out[j].id() })
	return out
}

// prefilterCandidates ranks candidates by their benefit on the queries
// that generated them (one cheap what-if each) and keeps the top
// MaxCandidates, so heavily partitioned mappings with hundreds of
// near-duplicate candidates stay tractable.
func prefilterCandidates(cands []*candidate, w Workload, opt *optimizer.Optimizer,
	baseCosts []float64, opts Options) []*candidate {
	limit := defaultMaxCandidates
	if len(cands) <= limit {
		return cands
	}
	type ranked struct {
		c     *candidate
		score float64
	}
	rs := make([]ranked, 0, len(cands))
	for _, c := range cands {
		trial := &physical.Config{}
		if !c.addTo(trial) {
			continue
		}
		benefit := -c.maintenanceCost(opts.InsertRates)
		for _, qi := range c.origins {
			p, err := opt.PlanQuery(w[qi].Q, trial)
			if err != nil {
				continue
			}
			benefit += w[qi].Weight * (baseCosts[qi] - p.Cost)
		}
		if benefit <= 0 {
			continue
		}
		rs = append(rs, ranked{c, benefit / math.Max(float64(c.bytes), 1)})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].score > rs[j].score })
	if len(rs) > limit {
		rs = rs[:limit]
	}
	out := make([]*candidate, len(rs))
	for i, r := range rs {
		out[i] = r.c
	}
	return out
}

// branchCandidates derives candidates from one branch.
func branchCandidates(s *sqlast.Select, prov stats.Provider, opts Options,
	name func(string) string) []*candidate {
	var out []*candidate
	mkIndex := func(table string, key []string, include []string) {
		ts := prov.TableStats(table)
		if ts == nil {
			return
		}
		idx := &physical.Index{Name: name("ix_" + table), Table: table, Key: key, Include: dedupe(include, key)}
		out = append(out, &candidate{idx: idx, tables: []string{table}, bytes: idx.EstBytes(ts)})
	}
	// Selection indexes: plain and covering.
	for _, p := range s.Where {
		if p.Kind != sqlast.PredCompare || p.Op == sqlast.OpNe {
			continue
		}
		t := p.Col.Table
		mkIndex(t, []string{p.Col.Column}, nil)
		mkIndex(t, []string{p.Col.Column}, s.ColumnsOf(t))
	}
	// Join and EXISTS probe indexes (plain and covering).
	for _, p := range s.Where {
		switch p.Kind {
		case sqlast.PredJoin:
			for _, side := range []sqlast.ColRef{p.Left, p.Right} {
				if side.Column == rel.PIDColumn {
					mkIndex(side.Table, []string{rel.PIDColumn}, nil)
					mkIndex(side.Table, []string{rel.PIDColumn}, s.ColumnsOf(side.Table))
				}
				if side.Column == rel.IDColumn {
					mkIndex(side.Table, []string{rel.IDColumn}, nil)
				}
			}
		case sqlast.PredExists, sqlast.PredOrExists:
			inc := []string{}
			if p.InnerCol != "" {
				inc = append(inc, p.InnerCol)
			}
			mkIndex(p.Table, []string{p.JoinCol}, inc)
		}
	}
	// Materialized join view for two-table branches.
	if !opts.DisableViews && len(s.From) == 2 {
		if v := joinViewCandidate(s, name); v != nil {
			out = append(out, &candidate{
				view:   v,
				tables: []string{v.Outer, v.Inner},
				bytes:  v.EstBytes(prov),
			})
		}
	}
	// Vertical partition: referenced columns vs the rest.
	if opts.EnableVPartitions {
		for _, t := range s.From {
			ts := prov.TableStats(t)
			if ts == nil {
				continue
			}
			refd := dedupe(s.ColumnsOf(t), []string{rel.IDColumn, rel.PIDColumn})
			var rest []string
			for c := range ts.Cols {
				if c == rel.IDColumn || c == rel.PIDColumn || containsStr(refd, c) {
					continue
				}
				rest = append(rest, c)
			}
			sort.Strings(rest)
			if len(refd) == 0 || len(rest) == 0 {
				continue
			}
			vp := &physical.VPartition{Table: t, Groups: [][]string{refd, rest}}
			out = append(out, &candidate{vpart: vp, tables: []string{t},
				bytes: vp.EstBytes(ts) - ts.Bytes()})
		}
	}
	return out
}

// joinViewCandidate builds a parent-child join view matching the
// branch, or nil.
func joinViewCandidate(s *sqlast.Select, name func(string) string) *physical.View {
	for _, p := range s.Where {
		if p.Kind != sqlast.PredJoin {
			continue
		}
		l, r := p.Left, p.Right
		if l.Column == rel.IDColumn && r.Column == rel.PIDColumn {
			l, r = r, l
		}
		if l.Column != rel.PIDColumn || r.Column != rel.IDColumn {
			continue
		}
		inner, outer := l.Table, r.Table
		oc := s.ColumnsOf(outer)
		ic := s.ColumnsOf(inner)
		if !containsStr(oc, rel.IDColumn) {
			oc = append(oc, rel.IDColumn)
		}
		sort.Strings(oc)
		sort.Strings(ic)
		return &physical.View{Name: name("v_" + outer), Outer: outer, Inner: inner,
			OuterCols: oc, InnerCols: ic}
	}
	return nil
}

func dedupe(cols, minus []string) []string {
	var out []string
	for _, c := range cols {
		if !containsStr(minus, c) && !containsStr(out, c) {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
