package transform

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/xmlgen"
)

func movieStats() (*schema.Tree, *xmlgen.Doc) {
	tr := schema.Movie()
	doc := xmlgen.GenerateMovie(tr, xmlgen.MovieOptions{Movies: 200, Seed: 61})
	return tr, doc
}

func TestOutlineInlineRoundTrip(t *testing.T) {
	tr := schema.Movie()
	title := tr.ElementsNamed("title")[0]
	out, err := Transformation{Kind: Outline, Node: title.ID}.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Node(title.ID).Annotation == "" {
		t.Fatal("outline did not annotate")
	}
	if tr.Node(title.ID).Annotation != "" {
		t.Fatal("outline mutated the input tree")
	}
	back, err := Transformation{Kind: Inline, Node: title.ID}.Apply(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Node(title.ID).Annotation != "" {
		t.Fatal("inline did not remove annotation")
	}
}

func TestInlineMandatoryFails(t *testing.T) {
	tr := schema.Movie()
	movie := tr.ElementsNamed("movie")[0]
	if _, err := (Transformation{Kind: Inline, Node: movie.ID}).Apply(tr); err == nil {
		t.Error("inlining a set-valued element must fail")
	}
}

func TestTypeSplitAndMerge(t *testing.T) {
	tr := schema.DBLP()
	var inprocAuthor *schema.Node
	for _, n := range tr.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			inprocAuthor = n
		}
	}
	split, err := Transformation{Kind: TypeSplit, Node: inprocAuthor.ID}.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	a1 := split.Node(inprocAuthor.ID).Annotation
	if a1 == "author" || a1 == "" {
		t.Fatalf("split annotation = %q", a1)
	}
	// Merge them back.
	var ids []int
	for _, n := range split.ElementsNamed("author") {
		ids = append(ids, n.ID)
	}
	merged, err := Transformation{Kind: TypeMerge, Nodes: ids}.Apply(split)
	if err != nil {
		t.Fatal(err)
	}
	anns := map[string]bool{}
	for _, n := range merged.ElementsNamed("author") {
		anns[n.Annotation] = true
	}
	if len(anns) != 1 {
		t.Fatalf("merge left annotations %v", anns)
	}
}

func TestTypeMergeRequiresInlineFirst(t *testing.T) {
	// The Section 3.3 example: merging the two titles implicitly
	// outlines the inlined inproceedings title into the merged
	// relation.
	tr := schema.DBLP()
	var ids []int
	for _, n := range tr.ElementsNamed("title") {
		ids = append(ids, n.ID)
	}
	merged, err := Transformation{Kind: TypeMerge, Nodes: ids}.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	anns := map[string]bool{}
	for _, n := range merged.ElementsNamed("title") {
		if n.Annotation == "" {
			t.Fatal("merged member left unannotated")
		}
		anns[n.Annotation] = true
	}
	if len(anns) != 1 {
		t.Fatalf("titles not merged: %v", anns)
	}
	// The merged mapping compiles and the shared relation has two
	// anchors.
	m, err := shred.Compile(merged)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Relations {
		if r.Ann == merged.ElementsNamed("title")[0].Annotation && len(r.Anchors) != 2 {
			t.Errorf("merged title relation has %d anchors", len(r.Anchors))
		}
	}
}

func TestUnionDistFact(t *testing.T) {
	tr := schema.Movie()
	movie := tr.ElementsNamed("movie")[0]
	choice := tr.ElementsNamed("box_office")[0].UnderChoice()
	dist := schema.Distribution{Choice: choice.ID}
	d, err := Transformation{Kind: UnionDist, Node: movie.ID, Dist: dist}.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Node(movie.ID).Distributions) != 1 {
		t.Fatal("distribution not added")
	}
	// Re-applying the same distribution fails.
	if _, err := (Transformation{Kind: UnionDist, Node: movie.ID, Dist: dist}).Apply(d); err == nil {
		t.Error("duplicate distribution should fail")
	}
	f, err := Transformation{Kind: UnionFact, Node: movie.ID, Dist: dist}.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Node(movie.ID).Distributions) != 0 {
		t.Fatal("factorization did not remove distribution")
	}
}

func TestRepSplitMerge(t *testing.T) {
	tr, doc := movieStats()
	col := xmlgen.CollectStats(tr, doc)
	aka := tr.ElementsNamed("aka_title")[0]
	k := SplitCountFor(aka, col)
	if k < 1 || k > DefaultSplitCap {
		t.Fatalf("split count = %d", k)
	}
	s, err := Transformation{Kind: RepSplit, Node: aka.ID, SplitCount: k}.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Node(aka.ID).SplitCount != k {
		t.Fatal("split count not applied")
	}
	m, err := Transformation{Kind: RepMerge, Node: aka.ID}.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Node(aka.ID).SplitCount != 0 {
		t.Fatal("merge did not clear split")
	}
}

func TestCommAndAssocKeepValidity(t *testing.T) {
	tr := schema.Movie()
	var seq *schema.Node
	tr.Walk(func(n *schema.Node) {
		if seq == nil && n.Kind == schema.KindSequence && len(n.Children) > 2 {
			seq = n
		}
	})
	if seq == nil {
		t.Skip("no wide sequence")
	}
	c, err := Transformation{Kind: Comm, Node: seq.ID, Pos: 0}.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := Transformation{Kind: Assoc, Node: seq.ID, Pos: 1}.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mapping compiles identically column-wise modulo order.
	m1, err := shred.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	m0, _ := shred.Compile(schema.Movie())
	if len(m1.Relations) != len(m0.Relations) {
		t.Errorf("assoc changed relation count: %d vs %d", len(m1.Relations), len(m0.Relations))
	}
}

func TestEnumerateAllCounts(t *testing.T) {
	tr, doc := movieStats()
	col := xmlgen.CollectStats(tr, doc)
	all := EnumerateAll(tr, col)
	nonsub := EnumerateNonSubsumed(tr, col)
	if len(nonsub) >= len(all) {
		t.Errorf("non-subsumed (%d) should be fewer than all (%d)", len(nonsub), len(all))
	}
	// The paper's Table 1 shape: subsumed transformations are a large
	// share of the space.
	if len(all) < 2*len(nonsub) {
		t.Logf("all=%d nonsub=%d", len(all), len(nonsub))
	}
	kinds := map[Kind]int{}
	for _, tf := range all {
		kinds[tf.Kind]++
	}
	// Movie has no valid type merges (director/actor are siblings of
	// one parent); TypeMerge coverage is asserted on DBLP below.
	for _, k := range []Kind{Outline, Comm, Assoc, UnionDist, RepSplit} {
		if kinds[k] == 0 {
			t.Errorf("no %s transformations enumerated", k)
		}
	}
	// All enumerated transformations must apply cleanly.
	for _, tf := range all {
		if _, err := tf.Apply(tr); err != nil {
			t.Errorf("enumerated %s does not apply: %v", tf.Describe(tr), err)
		}
	}
	// Keys are unique.
	seen := map[string]bool{}
	for _, tf := range all {
		if seen[tf.Key()] {
			t.Errorf("duplicate key %s", tf.Key())
		}
		seen[tf.Key()] = true
	}
}

func TestEnumerateOnDBLP(t *testing.T) {
	tr := schema.DBLP()
	doc := xmlgen.GenerateDBLP(tr, xmlgen.DBLPOptions{Inproceedings: 200, Books: 30, Seed: 62})
	col := xmlgen.CollectStats(tr, doc)
	all := EnumerateAll(tr, col)
	nonsub := EnumerateNonSubsumed(tr, col)
	if len(all) == 0 || len(nonsub) == 0 {
		t.Fatalf("counts: all=%d nonsub=%d", len(all), len(nonsub))
	}
	var haveSplitAuthor, haveMergeTitle bool
	for _, tf := range nonsub {
		if tf.Kind == RepSplit {
			if n := tr.Node(tf.Node); n != nil && n.Name == "author" {
				haveSplitAuthor = true
			}
		}
		if tf.Kind == TypeMerge {
			if n := tr.Node(tf.Nodes[0]); n != nil && n.Name == "title" {
				haveMergeTitle = true
			}
		}
	}
	if !haveSplitAuthor {
		t.Error("author repetition split not enumerated")
	}
	if !haveMergeTitle {
		t.Error("title type merge (deep merge) not enumerated")
	}
}

// TestEnumerateOrderDeterministic pins the enumeration ORDER, not just
// the set: the advisor and the differential harness pick candidates by
// index from a seeded stream, so a map-iteration-ordered enumeration
// silently breaks replay (the same seed applies different transforms on
// different runs). DBLP exercises every grouping path — multiple shared
// annotations, shared-type groups, and single-anchor distributions.
func TestEnumerateOrderDeterministic(t *testing.T) {
	tr := schema.DBLP()
	doc := xmlgen.GenerateDBLP(tr, xmlgen.DBLPOptions{Inproceedings: 50, Books: 10, Seed: 63})
	col := xmlgen.CollectStats(tr, doc)
	keys := func(tfs []Transformation) string {
		var b strings.Builder
		for _, tf := range tfs {
			b.WriteString(tf.Key())
			b.WriteByte('\n')
		}
		return b.String()
	}
	want := keys(EnumerateAll(tr, col))
	for i := 0; i < 20; i++ {
		if got := keys(EnumerateAll(tr, col)); got != want {
			t.Fatalf("enumeration order diverged on repeat %d:\n%s\nvs first:\n%s", i, got, want)
		}
	}
}

func TestAppliedTransformationsShredCorrectly(t *testing.T) {
	// Every enumerated non-subsumed transformation yields a mapping
	// that compiles and loads the documents.
	tr, doc := movieStats()
	col := xmlgen.CollectStats(tr, doc)
	for _, tf := range EnumerateNonSubsumed(tr, col) {
		nt, err := tf.Apply(tr)
		if err != nil {
			t.Fatalf("%s: %v", tf.Describe(tr), err)
		}
		m, err := shred.Compile(nt)
		if err != nil {
			t.Fatalf("%s: compile: %v", tf.Describe(tr), err)
		}
		if _, err := shred.Shred(m, doc); err != nil {
			t.Fatalf("%s: shred: %v", tf.Describe(tr), err)
		}
	}
}

func TestDescribe(t *testing.T) {
	tr := schema.Movie()
	aka := tr.ElementsNamed("aka_title")[0]
	d := Transformation{Kind: RepSplit, Node: aka.ID, SplitCount: 3}.Describe(tr)
	if !strings.Contains(d, "rep-split") || !strings.Contains(d, "aka_title") {
		t.Errorf("Describe = %q", d)
	}
}
