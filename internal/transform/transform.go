// Package transform implements the logical design transformations of
// Section 2.1 — outlining/inlining, type split/merge, union
// distribution/factorization (explicit choices and implicit unions over
// optionals), repetition split/merge, associativity and commutativity —
// together with their classification into subsumed and non-subsumed
// (Section 3) and the enumerators the search algorithms use.
//
// Transformations address schema nodes by ID, so one Transformation
// value applies to any clone of the tree (searches apply candidates to
// fresh clones every round).
package transform

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/stats"
)

// Kind enumerates transformation types.
type Kind int

const (
	// Outline introduces an annotation on a node (Section 2.1, #1).
	Outline Kind = iota
	// Inline removes an annotation (the reverse).
	Inline
	// TypeSplit renames one occurrence's shared annotation (#2).
	TypeSplit
	// TypeMerge gives shared-type occurrences one annotation (#2).
	TypeMerge
	// UnionDist adds a union distribution (#3).
	UnionDist
	// UnionFact removes a union distribution (#3).
	UnionFact
	// RepSplit inlines the first k occurrences of a set-valued leaf
	// (#4).
	RepSplit
	// RepMerge undoes a repetition split (#4).
	RepMerge
	// Assoc regroups adjacent sequence children (#5).
	Assoc
	// Comm swaps adjacent sequence children (#5).
	Comm
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Outline:
		return "outline"
	case Inline:
		return "inline"
	case TypeSplit:
		return "type-split"
	case TypeMerge:
		return "type-merge"
	case UnionDist:
		return "union-dist"
	case UnionFact:
		return "union-fact"
	case RepSplit:
		return "rep-split"
	case RepMerge:
		return "rep-merge"
	case Assoc:
		return "assoc"
	case Comm:
		return "comm"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Transformation is one applicable schema transformation.
type Transformation struct {
	// Kind is the transformation type.
	Kind Kind
	// Node is the primary target node ID (element for most kinds, the
	// sequence node for Assoc/Comm).
	Node int
	// Nodes are the group members for TypeMerge.
	Nodes []int
	// Dist is the distribution added (UnionDist) or removed
	// (UnionFact, matched by Key).
	Dist schema.Distribution
	// SplitCount is k for RepSplit.
	SplitCount int
	// Name is the annotation name for Outline/TypeSplit/TypeMerge
	// (derived deterministically when empty).
	Name string
	// Pos is the child position for Assoc/Comm.
	Pos int
}

// Subsumed reports whether the transformation alone is subsumed by
// physical design (Theorem 1: outlining, inlining, associativity, and
// commutativity generate vertical partitionings of the fully inlined
// schema).
func (t Transformation) Subsumed() bool {
	switch t.Kind {
	case Outline, Inline, Assoc, Comm:
		return true
	}
	return false
}

// MergeType reports whether the transformation is a merge-type
// candidate (applied during greedy search) as opposed to a split-type
// candidate (applied once to form the initial fully split mapping).
func (t Transformation) MergeType() bool {
	switch t.Kind {
	case Inline, TypeMerge, UnionFact, RepMerge:
		return true
	}
	return false
}

// Key is a canonical identity for deduplication.
func (t Transformation) Key() string {
	switch t.Kind {
	case TypeMerge:
		ids := append([]int(nil), t.Nodes...)
		sort.Ints(ids)
		return fmt.Sprintf("%s:%v", t.Kind, ids)
	case UnionDist, UnionFact:
		return fmt.Sprintf("%s:%d:%s", t.Kind, t.Node, t.Dist.Key())
	case RepSplit:
		return fmt.Sprintf("%s:%d:%d", t.Kind, t.Node, t.SplitCount)
	case Assoc, Comm:
		return fmt.Sprintf("%s:%d:%d", t.Kind, t.Node, t.Pos)
	default:
		return fmt.Sprintf("%s:%d", t.Kind, t.Node)
	}
}

// String describes the transformation against a tree for diagnostics.
func (t Transformation) String() string { return t.Key() }

// Describe renders a human-readable form using the tree's node names.
func (t Transformation) Describe(tr *schema.Tree) string {
	nodeName := func(id int) string {
		if n := tr.Node(id); n != nil {
			return n.Path()
		}
		return fmt.Sprintf("#%d", id)
	}
	switch t.Kind {
	case TypeMerge:
		names := make([]string, len(t.Nodes))
		for i, id := range t.Nodes {
			names[i] = nodeName(id)
		}
		return fmt.Sprintf("%s(%s)", t.Kind, strings.Join(names, ","))
	case UnionDist, UnionFact:
		return fmt.Sprintf("%s(%s, %s)", t.Kind, nodeName(t.Node), t.Dist.Key())
	case RepSplit:
		return fmt.Sprintf("%s(%s, k=%d)", t.Kind, nodeName(t.Node), t.SplitCount)
	default:
		return fmt.Sprintf("%s(%s)", t.Kind, nodeName(t.Node))
	}
}

// Apply produces a transformed clone of the tree. The input is never
// modified. The result is validated.
func (t Transformation) Apply(tr *schema.Tree) (*schema.Tree, error) {
	out := tr.Clone()
	if err := t.applyInPlace(out); err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("transform: %s produced invalid schema: %w", t.Describe(tr), err)
	}
	return out, nil
}

func (t Transformation) applyInPlace(tr *schema.Tree) error {
	n := tr.Node(t.Node)
	if n == nil && t.Kind != TypeMerge {
		return fmt.Errorf("transform: %s targets missing node %d", t.Kind, t.Node)
	}
	switch t.Kind {
	case Outline:
		if n.Annotation != "" {
			return fmt.Errorf("transform: outline of already-annotated %s", n.Path())
		}
		name := t.Name
		if name == "" {
			name = freshAnnotation(tr, n.Name)
		}
		n.Annotation = name
		return nil
	case Inline:
		if n.Annotation == "" {
			return fmt.Errorf("transform: inline of unannotated %s", n.Path())
		}
		if n.MustAnnotate() {
			return fmt.Errorf("transform: cannot inline %s (in-degree != 1)", n.Path())
		}
		n.Annotation = ""
		n.Distributions = nil
		n.SplitCount = 0
		return nil
	case TypeSplit:
		if n.Annotation == "" {
			return fmt.Errorf("transform: type split of unannotated %s", n.Path())
		}
		shared := false
		tr.Walk(func(m *schema.Node) {
			if m != n && m.Annotation == n.Annotation {
				shared = true
			}
		})
		if !shared {
			return fmt.Errorf("transform: type split of unshared annotation %q", n.Annotation)
		}
		name := t.Name
		if name == "" {
			parent := "x"
			if p := n.ElementParent(); p != nil {
				parent = p.Name
			}
			name = freshAnnotation(tr, parent+"_"+n.Name)
		}
		n.Annotation = name
		return nil
	case TypeMerge:
		var members []*schema.Node
		for _, id := range t.Nodes {
			m := tr.Node(id)
			if m == nil {
				return fmt.Errorf("transform: type merge member %d missing", id)
			}
			members = append(members, m)
		}
		if len(members) < 2 {
			return fmt.Errorf("transform: type merge needs at least two members")
		}
		tn := members[0].TypeName
		for _, m := range members {
			if m.TypeName == "" || m.TypeName != tn {
				return fmt.Errorf("transform: type merge of non-equivalent types")
			}
			if m.SplitCount > 0 || len(m.Distributions) > 0 {
				return fmt.Errorf("transform: type merge of split/distributed node %s", m.Path())
			}
		}
		name := t.Name
		if name == "" {
			// Reuse an existing annotation when one member has one.
			for _, m := range members {
				if m.Annotation != "" {
					name = m.Annotation
					break
				}
			}
			if name == "" {
				name = freshAnnotation(tr, members[0].Name)
			}
		}
		for _, m := range members {
			// Deep merge: unannotated members are outlined into the
			// merged relation (the inline-then-merge combination of
			// Section 3.3).
			m.Annotation = name
			m.Distributions = nil
			m.SplitCount = 0
		}
		return nil
	case UnionDist:
		if n.Annotation == "" {
			return fmt.Errorf("transform: union distribution on unannotated %s", n.Path())
		}
		for _, d := range n.Distributions {
			if d.Key() == t.Dist.Key() {
				return fmt.Errorf("transform: distribution %s already applied", t.Dist.Key())
			}
		}
		n.Distributions = append(n.Distributions, t.Dist)
		return nil
	case UnionFact:
		for i, d := range n.Distributions {
			if d.Key() == t.Dist.Key() {
				n.Distributions = append(n.Distributions[:i], n.Distributions[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("transform: distribution %s not present on %s", t.Dist.Key(), n.Path())
	case RepSplit:
		if t.SplitCount < 1 {
			return fmt.Errorf("transform: repetition split with k=%d", t.SplitCount)
		}
		if n.SplitCount > 0 {
			return fmt.Errorf("transform: %s already split", n.Path())
		}
		n.SplitCount = t.SplitCount
		return nil
	case RepMerge:
		if n.SplitCount == 0 {
			return fmt.Errorf("transform: %s is not split", n.Path())
		}
		n.SplitCount = 0
		return nil
	case Comm:
		if n.Kind != schema.KindSequence || t.Pos < 0 || t.Pos+1 >= len(n.Children) {
			return fmt.Errorf("transform: bad commutativity target")
		}
		n.Children[t.Pos], n.Children[t.Pos+1] = n.Children[t.Pos+1], n.Children[t.Pos]
		return nil
	case Assoc:
		if n.Kind != schema.KindSequence || t.Pos < 0 || t.Pos+1 >= len(n.Children) {
			return fmt.Errorf("transform: bad associativity target")
		}
		grouped := &schema.Node{
			ID:       tr.NewNodeID(),
			Kind:     schema.KindSequence,
			Children: []*schema.Node{n.Children[t.Pos], n.Children[t.Pos+1]},
			Parent:   n,
		}
		grouped.Children[0].Parent = grouped
		grouped.Children[1].Parent = grouped
		rest := append([]*schema.Node{}, n.Children[:t.Pos]...)
		rest = append(rest, grouped)
		rest = append(rest, n.Children[t.Pos+2:]...)
		n.Children = rest
		return registerNode(tr, grouped)
	}
	return fmt.Errorf("transform: unknown kind %v", t.Kind)
}

// registerNode adds a created node to the tree's ID map via a
// validation walk (Tree has no exported registration; re-wrap).
func registerNode(tr *schema.Tree, n *schema.Node) error {
	// NewTree re-indexes in place; rebuilding the map is O(tree).
	reindexed := schema.NewTree(tr.Root)
	*tr = *reindexed
	return nil
}

// freshAnnotation derives an unused annotation name.
func freshAnnotation(tr *schema.Tree, base string) string {
	used := make(map[string]bool)
	tr.Walk(func(n *schema.Node) {
		if n.Annotation != "" {
			used[n.Annotation] = true
		}
	})
	name := strings.ToLower(base)
	if !used[name] {
		return name
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s%d", name, i)
		if !used[cand] {
			return cand
		}
	}
}

// DefaultSplitCap and DefaultSplitFrac are the Section 4.6 defaults
// (cmax = 5, x = 80%).
const (
	DefaultSplitCap  = 5
	DefaultSplitFrac = 0.8
)

// EnumerateAll lists every applicable transformation on the tree — the
// space Naive-Greedy and Two-Step search. Statistics (optional) pick
// repetition-split counts; without them k = DefaultSplitCap.
func EnumerateAll(tr *schema.Tree, col *stats.Collection) []Transformation {
	var out []Transformation
	out = append(out, enumerateSubsumed(tr)...)
	out = append(out, EnumerateNonSubsumed(tr, col)...)
	return out
}

// enumerateSubsumed lists outlining, inlining, associativity, and
// commutativity opportunities.
func enumerateSubsumed(tr *schema.Tree) []Transformation {
	var out []Transformation
	tr.Walk(func(n *schema.Node) {
		switch n.Kind {
		case schema.KindElement:
			if n.Annotation == "" {
				out = append(out, Transformation{Kind: Outline, Node: n.ID})
			} else if !n.MustAnnotate() {
				out = append(out, Transformation{Kind: Inline, Node: n.ID})
			}
		case schema.KindSequence:
			for i := 0; i+1 < len(n.Children); i++ {
				out = append(out, Transformation{Kind: Comm, Node: n.ID, Pos: i})
				out = append(out, Transformation{Kind: Assoc, Node: n.ID, Pos: i})
			}
		}
	})
	return out
}

// EnumerateNonSubsumed lists type split/merge, union distribution/
// factorization (explicit and implicit), and repetition split/merge
// opportunities — the space Greedy searches (Section 4.3).
func EnumerateNonSubsumed(tr *schema.Tree, col *stats.Collection) []Transformation {
	var out []Transformation
	seen := make(map[string]bool)
	add := func(t Transformation) {
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	// Type splits: each anchor of a shared annotation. Annotations are
	// visited in sorted order, not map order: enumeration feeds
	// index-based random choice (the advisor's candidate picks and the
	// differential harness's transform sequences), so candidate ORDER is
	// part of the replay contract, not just the candidate set.
	byAnn := make(map[string][]*schema.Node)
	tr.Walk(func(n *schema.Node) {
		if n.Kind == schema.KindElement && n.Annotation != "" {
			byAnn[n.Annotation] = append(byAnn[n.Annotation], n)
		}
	})
	anns := make([]string, 0, len(byAnn))
	for a := range byAnn {
		anns = append(anns, a)
	}
	sort.Strings(anns)
	for _, a := range anns {
		group := byAnn[a]
		if len(group) < 2 {
			continue
		}
		for _, n := range group {
			add(Transformation{Kind: TypeSplit, Node: n.ID})
		}
	}
	// Type merges: shared-type groups not already one annotation.
	// Members must live under distinct annotated ancestors: merging
	// siblings of one parent would make their rows indistinguishable
	// after the PID join (the paper's merges — author, title — are
	// always across distinct parents).
	typeGroups := tr.SharedTypeGroups()
	typeNames := make([]string, 0, len(typeGroups))
	for tn := range typeGroups {
		typeNames = append(typeNames, tn)
	}
	sort.Strings(typeNames)
	for _, tn := range typeNames {
		group := typeGroups[tn]
		mergeable := true
		sameAnn := true
		parents := make(map[*schema.Node]bool)
		for _, n := range group {
			if n.SplitCount > 0 || len(n.Distributions) > 0 {
				mergeable = false
			}
			if n.Annotation == "" || n.Annotation != group[0].Annotation {
				sameAnn = false
			}
			anc := n.AnnotatedAncestor()
			if parents[anc] {
				mergeable = false
			}
			parents[anc] = true
		}
		if mergeable && !sameAnn {
			ids := make([]int, len(group))
			for i, n := range group {
				ids[i] = n.ID
			}
			add(Transformation{Kind: TypeMerge, Nodes: ids})
		}
	}
	// Distributions on single-anchor annotated nodes.
	for _, a := range anns {
		group := byAnn[a]
		if len(group) != 1 {
			continue
		}
		anchor := group[0]
		existing := make(map[string]bool)
		distributedChoice := make(map[int]bool)
		distributedOpt := make(map[int]bool)
		for _, d := range anchor.Distributions {
			existing[d.Key()] = true
			if d.Choice != 0 {
				distributedChoice[d.Choice] = true
			}
			for _, id := range d.Optionals {
				distributedOpt[id] = true
			}
			// Factorization of every existing distribution.
			add(Transformation{Kind: UnionFact, Node: anchor.ID, Dist: d})
		}
		for _, choice := range inlineChoices(anchor) {
			if !distributedChoice[choice.ID] {
				d := schema.Distribution{Choice: choice.ID}
				if !existing[d.Key()] {
					add(Transformation{Kind: UnionDist, Node: anchor.ID, Dist: d})
				}
			}
		}
		for _, opt := range inlineOptionals(anchor) {
			if !distributedOpt[opt.ID] {
				d := schema.Distribution{Optionals: []int{opt.ID}}
				if !existing[d.Key()] {
					add(Transformation{Kind: UnionDist, Node: anchor.ID, Dist: d})
				}
			}
		}
	}
	// Repetition split/merge on set-valued annotated leaves.
	tr.Walk(func(n *schema.Node) {
		if n.Kind != schema.KindElement || !n.IsLeaf() || !n.IsSetValued() || n.Annotation == "" {
			return
		}
		if n.SplitCount > 0 {
			add(Transformation{Kind: RepMerge, Node: n.ID})
			return
		}
		// Shared-annotation overflow tables are allowed; the split
		// count belongs to this occurrence.
		k := SplitCountFor(n, col)
		if k > 0 {
			add(Transformation{Kind: RepSplit, Node: n.ID, SplitCount: k})
		}
	})
	return out
}

// SplitCountFor picks the repetition-split count per Section 4.6.
func SplitCountFor(n *schema.Node, col *stats.Collection) int {
	if col == nil {
		return DefaultSplitCap
	}
	h := col.Card[n.ID]
	if h == nil {
		return 0
	}
	if max := h.Max(); max > 0 && max <= DefaultSplitCap {
		return max
	}
	return h.SplitCount(DefaultSplitCap, DefaultSplitFrac)
}

// inlineChoices returns the choice constructors between the anchor and
// its inlined content (not crossing annotated elements).
func inlineChoices(anchor *schema.Node) []*schema.Node {
	var out []*schema.Node
	var walk func(n *schema.Node)
	walk = func(n *schema.Node) {
		switch n.Kind {
		case schema.KindElement:
			return // separate relation or leaf boundary
		case schema.KindChoice:
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, c := range anchor.Children {
		walk(c)
	}
	return out
}

// inlineOptionals returns the optional direct child leaf elements of
// the anchor that are currently inlined (implicit union candidates).
func inlineOptionals(anchor *schema.Node) []*schema.Node {
	var out []*schema.Node
	for _, c := range anchor.ElementChildren() {
		if c.IsOptional() && c.IsLeaf() && c.Annotation == "" && c.ElementParent() == anchor {
			out = append(out, c)
		}
	}
	return out
}
