package xmlgen

import (
	"repro/internal/schema"
	"repro/internal/stats"
)

// CollectStats gathers the Section 4.1 statistics from documents: per
// element node instance counts (the ID ranges / PID distributions of
// the fully split schema), per set-valued element the per-parent
// cardinality histogram, and per leaf element the value distribution.
// The information is identical to what loading the fully split schema
// and scanning it would produce.
func CollectStats(t *schema.Tree, docs ...*Doc) *stats.Collection {
	c := stats.NewCollection()
	collectors := make(map[int]*stats.ColumnCollector)
	for _, leaf := range t.Leaves() {
		collectors[leaf.ID] = stats.NewColumnCollector(baseToType(leaf.LeafBase()))
	}
	for _, d := range docs {
		c.DocBytes += d.Root.Bytes()
		d.Root.Walk(func(e *Elem) {
			c.Count[e.Node.ID]++
			if e.Leaf() {
				// Atomize lexical string forms to the declared type so the
				// statistics see the same values the shredded columns hold.
				collectors[e.Node.ID].Add(atomize(e))
				return
			}
			// Cardinalities of set-valued children, including zeros.
			node := t.Node(e.Node.ID)
			for _, child := range node.ElementChildren() {
				if !child.IsSetValued() {
					continue
				}
				h := c.Card[child.ID]
				if h == nil {
					h = stats.NewCardHist()
					c.Card[child.ID] = h
				}
				h.Add(len(e.ChildrenOf(child)))
			}
		})
	}
	for id, cc := range collectors {
		c.Cols[id] = cc.Stats()
	}
	return c
}
