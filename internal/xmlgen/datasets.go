package xmlgen

import (
	"fmt"
	"math/rand"

	"repro/internal/rel"
	"repro/internal/schema"
)

// DBLPOptions sizes the DBLP-like dataset.
type DBLPOptions struct {
	// Inproceedings is the number of inproceedings publications.
	Inproceedings int
	// Books is the number of book publications.
	Books int
	// Seed drives the deterministic PRNG.
	Seed int64
}

// DefaultDBLPOptions returns the laptop-scale default sizing.
func DefaultDBLPOptions() DBLPOptions {
	return DBLPOptions{Inproceedings: 20000, Books: 2000, Seed: 1}
}

// conference pool; queries select on booktitle as in the paper's
// SIGMOD example. Weights are Zipf-ish so some conferences are large.
var conferences = buildConferences()

func buildConferences() []string {
	base := []string{"SIGMOD CONFERENCE", "VLDB", "ICDE", "PODS", "EDBT", "KDD", "CIKM", "WWW", "SIGIR", "ICDT"}
	out := append([]string(nil), base...)
	for i := 0; i < 90; i++ {
		out = append(out, fmt.Sprintf("WORKSHOP-%02d", i))
	}
	return out
}

// pickConference draws a conference with Zipf-like skew.
func pickConference(r *rand.Rand) string {
	// P(rank i) proportional to 1/(i+1).
	h := 0.0
	for i := range conferences {
		h += 1.0 / float64(i+1)
	}
	pick := r.Float64() * h
	for i := range conferences {
		pick -= 1.0 / float64(i+1)
		if pick < 0 {
			return conferences[i]
		}
	}
	return conferences[len(conferences)-1]
}

var titleWords = []string{
	"efficient", "scalable", "adaptive", "relational", "semistructured",
	"query", "index", "storage", "optimization", "processing", "xml",
	"schema", "workload", "design", "physical", "logical", "mining",
	"streams", "views", "joins", "approximate", "distributed", "cost",
}

func randomTitle(r *rand.Rand, ordinal int64) rel.Value {
	n := 3 + r.Intn(4)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += titleWords[r.Intn(len(titleWords))]
	}
	return rel.Str(fmt.Sprintf("%s #%d", s, ordinal))
}

// authorCard draws the skewed author cardinality of Section 4.6:
// about 99% of publications have at most five authors, max 20.
func authorCard(r *rand.Rand) int {
	x := r.Float64()
	switch {
	case x < 0.30:
		return 1
	case x < 0.60:
		return 2
	case x < 0.80:
		return 3
	case x < 0.93:
		return 4
	case x < 0.99:
		return 5
	default:
		return 6 + r.Intn(15) // 6..20
	}
}

var firstNames = []string{
	"Alice", "Bob", "Carlos", "Dana", "Erik", "Fatima", "Grace", "Hiro",
	"Ines", "Jonas", "Katya", "Liang", "Maria", "Nikhil", "Olga", "Pierre",
}

// personName draws names from a bounded pool; names are ~20-25 bytes
// like real author names, so inlined author columns carry realistic
// width (the Section 1.1 space/width trade-off depends on it).
func personName(pool int) func(r *rand.Rand, ordinal int64) rel.Value {
	return func(r *rand.Rand, ordinal int64) rel.Value {
		id := r.Intn(pool)
		return rel.Str(fmt.Sprintf("%s Author-%05d", firstNames[id%len(firstNames)], id))
	}
}

// GenerateDBLP builds the DBLP schema's document per the options.
// The returned doc's elements reference nodes of the given tree, which
// must be (a clone of) schema.DBLP().
func GenerateDBLP(t *schema.Tree, opts DBLPOptions) *Doc {
	spec := NewGenSpec()
	find := func(parent, name string) *schema.Node {
		for _, n := range t.ElementsNamed(name) {
			if p := n.ElementParent(); p != nil && p.Name == parent {
				return n
			}
		}
		panic(fmt.Sprintf("xmlgen: DBLP schema missing %s/%s", parent, name))
	}
	rep := func(n *schema.Node) int {
		// The repetition node wrapping the element.
		for p := n.Parent; p != nil; p = p.Parent {
			if p.Kind == schema.KindRepetition {
				return p.ID
			}
		}
		panic("xmlgen: element not set-valued: " + n.Path())
	}
	opt := func(n *schema.Node) int {
		for p := n.Parent; p != nil; p = p.Parent {
			if p.Kind == schema.KindOption {
				return p.ID
			}
		}
		panic("xmlgen: element not optional: " + n.Path())
	}

	inTitle := find("inproceedings", "title")
	bkTitle := find("book", "title")
	spec.Value[inTitle.ID] = randomTitle
	spec.Value[bkTitle.ID] = randomTitle
	spec.Value[find("inproceedings", "booktitle").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Str(pickConference(r))
	}
	spec.Value[find("book", "booktitle").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Str(pickConference(r))
	}
	yearFn := func(r *rand.Rand, _ int64) rel.Value {
		// Skewed toward recent years, 1970..2004.
		y := 2004 - int(34*r.Float64()*r.Float64())
		return rel.Int(int64(y))
	}
	spec.Value[find("inproceedings", "year").ID] = yearFn
	spec.Value[find("book", "year").ID] = yearFn
	spec.Value[find("inproceedings", "pages").ID] = func(r *rand.Rand, _ int64) rel.Value {
		start := r.Intn(900) + 1
		return rel.Str(fmt.Sprintf("%d-%d", start, start+8+r.Intn(20)))
	}
	spec.Value[find("inproceedings", "ee").ID] = func(r *rand.Rand, ord int64) rel.Value {
		return rel.Str(fmt.Sprintf("db/conf/paper%d.html", ord))
	}
	spec.Value[find("inproceedings", "cdrom").ID] = func(r *rand.Rand, ord int64) rel.Value {
		return rel.Str(fmt.Sprintf("CDROM/%d", ord))
	}
	spec.Value[find("inproceedings", "url").ID] = func(r *rand.Rand, ord int64) rel.Value {
		return rel.Str(fmt.Sprintf("http://dblp/rec/%d", ord))
	}
	spec.Value[find("book", "publisher").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Str(fmt.Sprintf("publisher-%02d", r.Intn(40)))
	}
	spec.Value[find("book", "isbn").ID] = func(r *rand.Rand, ord int64) rel.Value {
		return rel.Str(fmt.Sprintf("0-000-%05d-%d", ord%100000, ord%7))
	}
	spec.Value[find("book", "price").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Float(float64(10+r.Intn(90)) + 0.99)
	}
	pool := opts.Inproceedings/3 + 100
	nameFn := personName(pool)
	citeFn := func(r *rand.Rand, _ int64) rel.Value {
		return rel.Str(fmt.Sprintf("ref-%06d", r.Intn(opts.Inproceedings+1)))
	}
	for _, parent := range []string{"inproceedings", "book"} {
		spec.Value[find(parent, "author").ID] = nameFn
		spec.Value[find(parent, "editor").ID] = nameFn
		spec.Value[find(parent, "cite").ID] = citeFn
		spec.Card[rep(find(parent, "author"))] = authorCard
		spec.Card[rep(find(parent, "cite"))] = func(r *rand.Rand) int { return r.Intn(6) }
		spec.Card[rep(find(parent, "editor"))] = func(r *rand.Rand) int {
			if r.Float64() < 0.9 {
				return 0
			}
			return 1 + r.Intn(2)
		}
	}
	spec.Presence[opt(find("inproceedings", "ee"))] = 0.7
	spec.Presence[opt(find("inproceedings", "cdrom"))] = 0.3
	spec.Presence[opt(find("inproceedings", "url"))] = 0.6
	spec.Presence[opt(find("book", "booktitle"))] = 0.3
	spec.Presence[opt(find("book", "isbn"))] = 0.8
	spec.Presence[opt(find("book", "price"))] = 0.5

	g := NewGenerator(t, spec, opts.Seed)
	return g.GenerateRootChildren(map[string]int{
		"inproceedings": opts.Inproceedings,
		"book":          opts.Books,
	})
}

// MovieOptions sizes the synthetic Movie dataset.
type MovieOptions struct {
	// Movies is the number of movie elements.
	Movies int
	// Seed drives the deterministic PRNG.
	Seed int64
}

// DefaultMovieOptions returns the laptop-scale default sizing.
func DefaultMovieOptions() MovieOptions {
	return MovieOptions{Movies: 10000, Seed: 7}
}

// GenerateMovie builds the Movie schema's document per the options;
// values follow uniform distributions as in Section 5.1.2.
func GenerateMovie(t *schema.Tree, opts MovieOptions) *Doc {
	spec := NewGenSpec()
	byName := func(name string) *schema.Node {
		ns := t.ElementsNamed(name)
		if len(ns) != 1 {
			panic(fmt.Sprintf("xmlgen: Movie schema has %d %s elements", len(ns), name))
		}
		return ns[0]
	}
	rep := func(n *schema.Node) int {
		for p := n.Parent; p != nil; p = p.Parent {
			if p.Kind == schema.KindRepetition {
				return p.ID
			}
		}
		panic("xmlgen: element not set-valued: " + n.Path())
	}
	opt := func(n *schema.Node) int {
		for p := n.Parent; p != nil; p = p.Parent {
			if p.Kind == schema.KindOption {
				return p.ID
			}
		}
		panic("xmlgen: element not optional: " + n.Path())
	}

	spec.Value[byName("title").ID] = func(r *rand.Rand, ord int64) rel.Value {
		return rel.Str(fmt.Sprintf("Movie Title %06d", ord))
	}
	spec.Value[byName("year").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Int(int64(1950 + r.Intn(55)))
	}
	spec.Value[byName("aka_title").ID] = func(r *rand.Rand, ord int64) rel.Value {
		return rel.Str(fmt.Sprintf("AKA %06d", ord))
	}
	spec.Value[byName("avg_rating").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Float(float64(r.Intn(100)) / 10.0)
	}
	spec.Value[byName("box_office").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Int(int64(r.Intn(400_000_000)))
	}
	spec.Value[byName("seasons").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Int(int64(1 + r.Intn(20)))
	}
	person := personName(opts.Movies/4 + 50)
	spec.Value[byName("director").ID] = person
	spec.Value[byName("actor").ID] = person
	spec.Value[byName("genre").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Str(fmt.Sprintf("genre-%02d", r.Intn(20)))
	}
	spec.Value[byName("country").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Str(fmt.Sprintf("country-%02d", r.Intn(50)))
	}
	spec.Value[byName("language").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Str(fmt.Sprintf("lang-%02d", r.Intn(30)))
	}
	spec.Value[byName("runtime").ID] = func(r *rand.Rand, _ int64) rel.Value {
		return rel.Int(int64(60 + r.Intn(180)))
	}

	spec.Card[rep(byName("aka_title"))] = func(r *rand.Rand) int { return r.Intn(5) }
	spec.Card[rep(byName("director"))] = func(r *rand.Rand) int { return 1 + r.Intn(2) }
	spec.Card[rep(byName("actor"))] = func(r *rand.Rand) int { return r.Intn(11) }
	spec.Presence[opt(byName("avg_rating"))] = 0.6
	spec.Presence[opt(byName("language"))] = 0.5
	spec.Presence[opt(byName("runtime"))] = 0.8
	spec.ChoiceWeights[byName("box_office").UnderChoice().ID] = []float64{0.7, 0.3}

	g := NewGenerator(t, spec, opts.Seed)
	return g.GenerateRootChildren(map[string]int{"movie": opts.Movies})
}
