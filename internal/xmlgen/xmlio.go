package xmlgen

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/schema"
)

// WriteXML serializes the document as XML text.
func WriteXML(w io.Writer, d *Doc) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(xml.Header); err != nil {
		return err
	}
	if err := writeElem(bw, d.Root, 0); err != nil {
		return err
	}
	return bw.Flush()
}

func writeElem(w *bufio.Writer, e *Elem, depth int) error {
	for i := 0; i < depth; i++ {
		w.WriteByte(' ')
	}
	if e.Leaf() {
		var esc strings.Builder
		if err := xml.EscapeText(&esc, []byte(e.Value.String())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "<%s>%s</%s>\n", e.Node.Name, esc.String(), e.Node.Name)
		return err
	}
	// Children named "@x" are XML attributes of this element.
	fmt.Fprintf(w, "<%s", e.Node.Name)
	for _, c := range e.Children {
		if strings.HasPrefix(c.Node.Name, "@") {
			var esc strings.Builder
			if err := xml.EscapeText(&esc, []byte(c.Value.String())); err != nil {
				return err
			}
			fmt.Fprintf(w, " %s=%q", strings.TrimPrefix(c.Node.Name, "@"), esc.String())
		}
	}
	w.WriteString(">\n")
	for _, c := range e.Children {
		if strings.HasPrefix(c.Node.Name, "@") {
			continue
		}
		if err := writeElem(w, c, depth+1); err != nil {
			return err
		}
	}
	for i := 0; i < depth; i++ {
		w.WriteByte(' ')
	}
	_, err := fmt.Fprintf(w, "</%s>\n", e.Node.Name)
	return err
}

// ParseXML parses XML text into a document aligned with the schema
// tree, resolving each element to its schema node by tag name within
// the enclosing element's content model. The result is validated.
func ParseXML(t *schema.Tree, r io.Reader) (*Doc, error) {
	dec := xml.NewDecoder(r)
	// Per-element lookup: child tag name -> child schema node.
	childIdx := make(map[int]map[string]*schema.Node)
	lookup := func(n *schema.Node) map[string]*schema.Node {
		if m, ok := childIdx[n.ID]; ok {
			return m
		}
		m := make(map[string]*schema.Node)
		for _, c := range n.ElementChildren() {
			if _, dup := m[c.Name]; dup {
				// Ambiguous names within one content model are not
				// supported by name-based alignment.
				m[c.Name] = nil
			} else {
				m[c.Name] = c
			}
		}
		childIdx[n.ID] = m
		return m
	}

	var stack []*Elem
	var root *Elem
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlgen: parse: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			var node *schema.Node
			if len(stack) == 0 {
				if tk.Name.Local != t.Root.Name {
					return nil, fmt.Errorf("xmlgen: root element %q, schema expects %q", tk.Name.Local, t.Root.Name)
				}
				node = t.Root
			} else {
				parent := stack[len(stack)-1]
				node = lookup(parent.Node)[tk.Name.Local]
				if node == nil {
					return nil, fmt.Errorf("xmlgen: unexpected or ambiguous element %q under %q",
						tk.Name.Local, parent.Node.Name)
				}
			}
			e := &Elem{Node: node}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, e)
			} else {
				root = e
			}
			// XML attributes instantiate "@name" schema children.
			if !node.IsLeaf() {
				byName := lookup(node)
				for _, at := range tk.Attr {
					an := byName["@"+at.Name.Local]
					if an == nil {
						return nil, fmt.Errorf("xmlgen: unexpected attribute %q on %q", at.Name.Local, node.Name)
					}
					v, err := ParseValue(an.LeafBase(), at.Value)
					if err != nil {
						return nil, fmt.Errorf("xmlgen: attribute %s: %w", at.Name.Local, err)
					}
					e.Children = append(e.Children, &Elem{Node: an, Value: v})
				}
			}
			stack = append(stack, e)
			text.Reset()
		case xml.CharData:
			text.Write(tk)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlgen: unbalanced end element %s", tk.Name.Local)
			}
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if e.Leaf() {
				v, err := ParseValue(e.Node.LeafBase(), strings.TrimSpace(text.String()))
				if err != nil {
					return nil, fmt.Errorf("xmlgen: element %s: %w", e.Node.Name, err)
				}
				e.Value = v
			}
			text.Reset()
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlgen: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlgen: unterminated element %s", stack[len(stack)-1].Node.Name)
	}
	d := &Doc{Root: root}
	if err := d.Validate(t); err != nil {
		return nil, err
	}
	return d, nil
}
