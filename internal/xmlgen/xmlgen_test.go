package xmlgen

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/xpath"
)

func smallDBLP(t *testing.T) (*schema.Tree, *Doc) {
	t.Helper()
	tr := schema.DBLP()
	d := GenerateDBLP(tr, DBLPOptions{Inproceedings: 200, Books: 30, Seed: 42})
	return tr, d
}

func smallMovie(t *testing.T) (*schema.Tree, *Doc) {
	t.Helper()
	tr := schema.Movie()
	d := GenerateMovie(tr, MovieOptions{Movies: 150, Seed: 42})
	return tr, d
}

func TestGenerateDBLPValid(t *testing.T) {
	tr, d := smallDBLP(t)
	if err := d.Validate(tr); err != nil {
		t.Fatalf("generated DBLP invalid: %v", err)
	}
	if n := len(d.Root.Children); n != 230 {
		t.Errorf("root children = %d, want 230", n)
	}
}

func TestGenerateMovieValid(t *testing.T) {
	tr, d := smallMovie(t)
	if err := d.Validate(tr); err != nil {
		t.Fatalf("generated Movie invalid: %v", err)
	}
	if n := len(d.Root.Children); n != 150 {
		t.Errorf("root children = %d, want 150", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tr := schema.Movie()
	d1 := GenerateMovie(tr, MovieOptions{Movies: 50, Seed: 9})
	d2 := GenerateMovie(tr, MovieOptions{Movies: 50, Seed: 9})
	var b1, b2 bytes.Buffer
	if err := WriteXML(&b1, d1); err != nil {
		t.Fatal(err)
	}
	if err := WriteXML(&b2, d2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("same seed produced different documents")
	}
	d3 := GenerateMovie(tr, MovieOptions{Movies: 50, Seed: 10})
	var b3 bytes.Buffer
	if err := WriteXML(&b3, d3); err != nil {
		t.Fatal(err)
	}
	if b1.String() == b3.String() {
		t.Error("different seeds produced identical documents")
	}
}

func TestAuthorCardinalitySkew(t *testing.T) {
	tr, d := smallDBLP(t)
	col := CollectStats(tr, d)
	var authorNode *schema.Node
	for _, n := range tr.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			authorNode = n
		}
	}
	h := col.Card[authorNode.ID]
	if h == nil {
		t.Fatal("no cardinality histogram for inproceedings/author")
	}
	if f := h.FracAtMost(5); f < 0.9 {
		t.Errorf("FracAtMost(5) = %.3f, want >= 0.9 (skewed distribution)", f)
	}
	if h.Max() > 20 {
		t.Errorf("max authors = %d, want <= 20", h.Max())
	}
	if k := h.SplitCount(5, 0.8); k < 1 || k > 5 {
		t.Errorf("SplitCount = %d, want in [1,5]", k)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tr, d := smallMovie(t)
	var buf bytes.Buffer
	if err := WriteXML(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ParseXML(tr, &buf)
	if err != nil {
		t.Fatalf("ParseXML: %v", err)
	}
	// Structural equality: same element names and leaf values in order.
	var flat func(e *Elem, out *[]string)
	flat = func(e *Elem, out *[]string) {
		s := e.Node.Name
		if e.Leaf() {
			s += "=" + e.Value.String()
		}
		*out = append(*out, s)
		for _, c := range e.Children {
			flat(c, out)
		}
	}
	var a, b []string
	flat(d.Root, &a)
	flat(back.Root, &b)
	if len(a) != len(b) {
		t.Fatalf("round trip changed element count: %d -> %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("element %d: %q -> %q", i, a[i], b[i])
		}
	}
}

func TestParseXMLRejectsUnknownElement(t *testing.T) {
	tr := schema.Movie()
	_, err := ParseXML(tr, strings.NewReader(`<movies><bogus/></movies>`))
	if err == nil {
		t.Error("want error for unknown element")
	}
}

func TestParseXMLRejectsWrongRoot(t *testing.T) {
	tr := schema.Movie()
	_, err := ParseXML(tr, strings.NewReader(`<films></films>`))
	if err == nil {
		t.Error("want error for wrong root")
	}
}

func TestParseXMLRejectsBadValue(t *testing.T) {
	tr := schema.Movie()
	doc := `<movies><movie><title>t</title><year>banana</year></movie></movies>`
	if _, err := ParseXML(tr, strings.NewReader(doc)); err == nil {
		t.Error("want error for non-integer year")
	}
}

func TestValidateCatchesChoiceViolation(t *testing.T) {
	tr, d := smallMovie(t)
	// Add both choice branches to the first movie.
	movie := d.Root.Children[0]
	box := tr.ElementsNamed("box_office")[0]
	seasons := tr.ElementsNamed("seasons")[0]
	movie.Children = append(movie.Children,
		&Elem{Node: box, Value: rel.Int(1)},
		&Elem{Node: seasons, Value: rel.Int(1)})
	if err := d.Validate(tr); err == nil {
		t.Error("want error for both choice branches present")
	}
}

func TestValidateCatchesMissingRequired(t *testing.T) {
	tr, d := smallMovie(t)
	movie := d.Root.Children[0]
	var kept []*Elem
	for _, c := range movie.Children {
		if c.Node.Name != "title" {
			kept = append(kept, c)
		}
	}
	movie.Children = kept
	if err := d.Validate(tr); err == nil {
		t.Error("want error for missing required title")
	}
}

func TestCollectStats(t *testing.T) {
	tr, d := smallMovie(t)
	col := CollectStats(tr, d)
	movies := tr.ElementsNamed("movie")[0]
	if col.Count[movies.ID] != 150 {
		t.Errorf("movie count = %d", col.Count[movies.ID])
	}
	year := tr.ElementsNamed("year")[0]
	ys := col.Cols[year.ID]
	if ys == nil || ys.Count != 150 {
		t.Fatalf("year stats = %+v", ys)
	}
	if ys.Min.I < 1950 || ys.Max.I > 2004 {
		t.Errorf("year range [%v,%v]", ys.Min, ys.Max)
	}
	// Selectivity sanity: P(year <= max) ~ 1.
	if s := ys.Selectivity(0 /* OpEq */, rel.Int(1980)); s <= 0 || s > 0.5 {
		t.Errorf("equality selectivity = %f", s)
	}
	rating := tr.ElementsNamed("avg_rating")[0]
	pres := col.Presence(rating.ID, movies.ID)
	if pres < 0.4 || pres > 0.8 {
		t.Errorf("avg_rating presence = %.2f, want ~0.6", pres)
	}
	box := tr.ElementsNamed("box_office")[0]
	bpres := col.Presence(box.ID, movies.ID)
	if bpres < 0.55 || bpres > 0.85 {
		t.Errorf("box_office presence = %.2f, want ~0.7", bpres)
	}
	if col.DocBytes <= 0 {
		t.Error("DocBytes not collected")
	}
}

func TestEvaluateSelection(t *testing.T) {
	tr, d := smallMovie(t)
	// Find an actual year value to query.
	year := d.Root.Children[0].ChildrenOf(tr.ElementsNamed("year")[0])[0].Value.I
	q := xpath.MustParse(`//movie[year = ` + year10(year) + `]/(title | aka_title)`)
	groups, err := Evaluate(tr, d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no matches for existing year")
	}
	for _, g := range groups {
		if len(g.Values) != 2 {
			t.Fatalf("group has %d projection slots", len(g.Values))
		}
		if len(g.Values[0]) != 1 {
			t.Errorf("title should be single-valued, got %d", len(g.Values[0]))
		}
	}
	// Count matches manually.
	want := 0
	for _, m := range d.Root.Children {
		for _, y := range m.ChildrenOf(tr.ElementsNamed("year")[0]) {
			if y.Value.I == year {
				want++
			}
		}
	}
	if len(groups) != want {
		t.Errorf("matches = %d, want %d", len(groups), want)
	}
}

func TestEvaluateDescendant(t *testing.T) {
	tr, d := smallDBLP(t)
	q := xpath.MustParse(`//author`)
	groups, err := Evaluate(tr, d, q)
	if err != nil {
		t.Fatal(err)
	}
	// Every author element (from both inproceedings and book) matches.
	count := 0
	d.Root.Walk(func(e *Elem) {
		if e.Node.Name == "author" {
			count++
		}
	})
	if len(groups) != count {
		t.Errorf("//author groups = %d, want %d", len(groups), count)
	}
}

func TestEvaluateRangePredicate(t *testing.T) {
	tr, d := smallMovie(t)
	q := xpath.MustParse(`//movie[year >= 2000]/title`)
	groups, err := Evaluate(tr, d, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	yearNode := tr.ElementsNamed("year")[0]
	for _, m := range d.Root.Children {
		for _, y := range m.ChildrenOf(yearNode) {
			if y.Value.I >= 2000 {
				want++
			}
		}
	}
	if len(groups) != want {
		t.Errorf("matches = %d, want %d", len(groups), want)
	}
}

func TestEvaluatePredicateOnMissingOptional(t *testing.T) {
	tr, d := smallMovie(t)
	// Movies without avg_rating must not match any comparison on it.
	q := xpath.MustParse(`//movie[avg_rating >= 0]/title`)
	groups, err := Evaluate(tr, d, q)
	if err != nil {
		t.Fatal(err)
	}
	rating := tr.ElementsNamed("avg_rating")[0]
	want := 0
	for _, m := range d.Root.Children {
		if len(m.ChildrenOf(rating)) > 0 {
			want++
		}
	}
	if len(groups) != want {
		t.Errorf("matches = %d, want %d (only movies with avg_rating)", len(groups), want)
	}
}

func TestDBLPDataShape(t *testing.T) {
	tr, d := smallDBLP(t)
	// Some SIGMOD papers must exist (Zipf head).
	q := xpath.MustParse(`//inproceedings[booktitle = "SIGMOD CONFERENCE"]/title`)
	groups, err := Evaluate(tr, d, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Error("no SIGMOD papers generated; conference skew broken")
	}
	if len(groups) > 150 {
		t.Errorf("SIGMOD papers = %d of 200; too many", len(groups))
	}
}

func year10(y int64) string {
	return rel.Int(y).String()
}

func TestXMLEscapingRoundTrip(t *testing.T) {
	tr := schema.Movie()
	d := GenerateMovie(tr, MovieOptions{Movies: 3, Seed: 1})
	// Inject values needing XML escaping.
	title := tr.ElementsNamed("title")[0]
	hostile := []string{`a <b> & "c" 'd'`, "tabs\tand\nnewlines", "<&>"}
	i := 0
	d.Root.Walk(func(e *Elem) {
		if e.Node.ID == title.ID && i < len(hostile) {
			e.Value = rel.Str(hostile[i])
			i++
		}
	})
	var buf bytes.Buffer
	if err := WriteXML(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ParseXML(tr, &buf)
	if err != nil {
		t.Fatalf("ParseXML: %v\n%s", err, buf.String())
	}
	var got []string
	back.Root.Walk(func(e *Elem) {
		if e.Node.ID == title.ID {
			got = append(got, e.Value.S)
		}
	})
	for j, want := range hostile {
		// The XML parser normalizes \r\n and trims surrounding space;
		// compare after the same trim the reader applies.
		if j < len(got) && got[j] != strings.TrimSpace(want) && got[j] != want {
			t.Errorf("title %d: %q -> %q", j, want, got[j])
		}
	}
}
