package xmlgen

import (
	"fmt"
	"math/rand"

	"repro/internal/rel"
	"repro/internal/schema"
)

// GenSpec configures the generic schema-driven document generator. All
// hooks are keyed by schema node ID; unspecified nodes fall back to the
// defaults.
type GenSpec struct {
	// Card returns the occurrence count for a repetition node instance.
	Card map[int]func(r *rand.Rand) int
	// Presence is the probability an option node's content is present.
	Presence map[int]float64
	// ChoiceWeights are relative branch weights for a choice node.
	ChoiceWeights map[int][]float64
	// Value generates the text value of a leaf element instance. The
	// ordinal is the global instance number of that leaf, usable for
	// distinct values.
	Value map[int]func(r *rand.Rand, ordinal int64) rel.Value

	// DefaultCard is used for repetition nodes without a Card hook.
	DefaultCard func(r *rand.Rand) int
	// DefaultPresence is used for option nodes without a hook.
	DefaultPresence float64
}

// NewGenSpec returns a spec with sensible defaults: repetitions of
// 0..3 occurrences, optionals present half the time, uniform choices,
// and type-driven default values.
func NewGenSpec() *GenSpec {
	return &GenSpec{
		Card:            make(map[int]func(*rand.Rand) int),
		Presence:        make(map[int]float64),
		ChoiceWeights:   make(map[int][]float64),
		Value:           make(map[int]func(*rand.Rand, int64) rel.Value),
		DefaultCard:     func(r *rand.Rand) int { return r.Intn(4) },
		DefaultPresence: 0.5,
	}
}

// Generator produces documents from a schema tree and spec with a
// deterministic PRNG.
type Generator struct {
	tree     *schema.Tree
	spec     *GenSpec
	r        *rand.Rand
	ordinals map[int]int64
}

// NewGenerator creates a generator with the given seed.
func NewGenerator(t *schema.Tree, spec *GenSpec, seed int64) *Generator {
	return &Generator{tree: t, spec: spec, r: rand.New(rand.NewSource(seed)), ordinals: make(map[int]int64)}
}

// GenerateRootChildren builds one document whose root contains the
// given number of instances per repeated top-level element (keyed by
// element name); other content follows the spec.
func (g *Generator) GenerateRootChildren(counts map[string]int) *Doc {
	root := &Elem{Node: g.tree.Root}
	g.content(g.tree.Root.Children[0], root, counts)
	return &Doc{Root: root}
}

// Generate builds a document entirely from the spec.
func (g *Generator) Generate() *Doc {
	return g.GenerateRootChildren(nil)
}

// element instantiates one element.
func (g *Generator) element(n *schema.Node) *Elem {
	e := &Elem{Node: n}
	if n.IsLeaf() {
		e.Value = g.leafValue(n)
		return e
	}
	for _, c := range n.Children {
		g.content(c, e, nil)
	}
	return e
}

// content expands a content-model node, appending instances to parent.
// rootCounts overrides repetition cardinalities by element name (used
// for top-level dataset sizing).
func (g *Generator) content(n *schema.Node, parent *Elem, rootCounts map[string]int) {
	switch n.Kind {
	case schema.KindElement:
		parent.Children = append(parent.Children, g.element(n))
	case schema.KindSimple:
		// handled by element()
	case schema.KindSequence:
		for _, c := range n.Children {
			g.content(c, parent, rootCounts)
		}
	case schema.KindOption:
		p, ok := g.spec.Presence[n.ID]
		if !ok {
			p = g.spec.DefaultPresence
		}
		if g.r.Float64() < p {
			g.content(n.Children[0], parent, nil)
		}
	case schema.KindRepetition:
		card := g.repetitionCard(n, rootCounts)
		for i := 0; i < card; i++ {
			g.content(n.Children[0], parent, nil)
		}
	case schema.KindChoice:
		idx := g.chooseBranch(n)
		g.content(n.Children[idx], parent, nil)
	default:
		panic(fmt.Sprintf("xmlgen: cannot generate node kind %v", n.Kind))
	}
}

func (g *Generator) repetitionCard(n *schema.Node, rootCounts map[string]int) int {
	if rootCounts != nil {
		if elems := n.ElementChildren(); len(elems) == 1 {
			if c, ok := rootCounts[elems[0].Name]; ok {
				return c
			}
		}
	}
	fn, ok := g.spec.Card[n.ID]
	if !ok {
		fn = g.spec.DefaultCard
	}
	card := fn(g.r)
	if card < 0 {
		card = 0
	}
	if n.MaxOccurs != schema.Unbounded && card > n.MaxOccurs {
		card = n.MaxOccurs
	}
	if card < n.MinOccurs {
		card = n.MinOccurs
	}
	return card
}

func (g *Generator) chooseBranch(n *schema.Node) int {
	w, ok := g.spec.ChoiceWeights[n.ID]
	if !ok || len(w) != len(n.Children) {
		return g.r.Intn(len(n.Children))
	}
	total := 0.0
	for _, x := range w {
		total += x
	}
	pick := g.r.Float64() * total
	for i, x := range w {
		pick -= x
		if pick < 0 {
			return i
		}
	}
	return len(n.Children) - 1
}

func (g *Generator) leafValue(n *schema.Node) rel.Value {
	ord := g.ordinals[n.ID]
	g.ordinals[n.ID] = ord + 1
	if fn, ok := g.spec.Value[n.ID]; ok {
		return fn(g.r, ord)
	}
	switch n.LeafBase() {
	case schema.BaseInt:
		return rel.Int(int64(g.r.Intn(10000)))
	case schema.BaseFloat:
		return rel.Float(g.r.Float64() * 100)
	default:
		return rel.Str(fmt.Sprintf("%s-%d", n.Name, g.r.Intn(1000)))
	}
}
