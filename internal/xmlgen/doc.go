// Package xmlgen provides the XML document substrate: an in-memory
// document model aligned with a schema tree, deterministic dataset
// generators for the paper's DBLP and Movie datasets, XML
// serialization/parsing, document validation, statistics collection
// (Section 4.1), and a reference XPath evaluator used as the gold
// standard in integration tests.
package xmlgen

import (
	"fmt"
	"strconv"

	"repro/internal/rel"
	"repro/internal/schema"
)

// Elem is one element instance in a document, annotated with the schema
// node it instantiates.
type Elem struct {
	// Node is the schema element node this instance conforms to.
	Node *schema.Node
	// Value holds the text content of leaf elements.
	Value rel.Value
	// Children are the child element instances in document order.
	Children []*Elem
}

// Doc is an XML document.
type Doc struct {
	Root *Elem
}

// Leaf reports whether the element is a leaf instance.
func (e *Elem) Leaf() bool { return e.Node.IsLeaf() }

// ChildrenOf returns the child instances of the given schema node, in
// document order.
func (e *Elem) ChildrenOf(node *schema.Node) []*Elem {
	var out []*Elem
	for _, c := range e.Children {
		if c.Node == node || c.Node.ID == node.ID {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits the element and all descendants in document order.
func (e *Elem) Walk(f func(*Elem)) {
	f(e)
	for _, c := range e.Children {
		c.Walk(f)
	}
}

// Bytes approximates the serialized size of the element subtree:
// tags plus text content.
func (e *Elem) Bytes() int64 {
	var n int64
	e.Walk(func(x *Elem) {
		n += int64(2*len(x.Node.Name) + 5)
		if x.Leaf() {
			n += int64(x.Value.Width())
		}
	})
	return n
}

// Validate checks the document against the schema tree: every element's
// children must instantiate schema element children of its node,
// occurrence constraints must hold (required children present, at most
// one instance of non-set-valued children, exactly one branch of each
// choice), and leaf values must match the declared base types.
func (d *Doc) Validate(t *schema.Tree) error {
	if d.Root == nil {
		return fmt.Errorf("xmlgen: empty document")
	}
	if d.Root.Node.ID != t.Root.ID {
		return fmt.Errorf("xmlgen: root element %s does not instantiate schema root %s",
			d.Root.Node.Name, t.Root.Name)
	}
	return validateElem(d.Root, t)
}

func validateElem(e *Elem, t *schema.Tree) error {
	n := t.Node(e.Node.ID)
	if n == nil || n.Kind != schema.KindElement || n.Name != e.Node.Name {
		return fmt.Errorf("xmlgen: element %s does not match schema", e.Node.Name)
	}
	if n.IsLeaf() {
		if len(e.Children) != 0 {
			return fmt.Errorf("xmlgen: leaf element %s has children", n.Name)
		}
		if e.Value.Null {
			return fmt.Errorf("xmlgen: leaf element %s has no value", n.Name)
		}
		want := baseToType(n.LeafBase())
		if e.Value.Typ != want {
			// A string value under a numeric leaf is valid when its
			// lexical form parses as the declared type — XML carries text,
			// and "NaN" or " 42 " are legal decimal/integer literals. The
			// shredder applies the same Coerce when loading the column.
			if e.Value.Typ != rel.TString || e.Value.Coerce(want).Null {
				return fmt.Errorf("xmlgen: leaf element %s has %v value, want %v", n.Name, e.Value.Typ, want)
			}
		}
		return nil
	}
	// Count instances per child schema node.
	counts := make(map[int]int)
	for _, c := range e.Children {
		counts[c.Node.ID]++
	}
	if len(n.Children) > 0 {
		if err := validateContent(n.Children[0], counts, n.Name); err != nil {
			return err
		}
	}
	// Every child must be reachable as a schema child of n.
	allowed := make(map[int]bool)
	for _, c := range n.ElementChildren() {
		allowed[c.ID] = true
	}
	for _, c := range e.Children {
		if !allowed[c.Node.ID] {
			return fmt.Errorf("xmlgen: element %s has unexpected child %s", n.Name, c.Node.Name)
		}
		if err := validateElem(c, t); err != nil {
			return err
		}
	}
	return nil
}

// validateContent checks occurrence constraints of a content model
// against instance counts.
func validateContent(n *schema.Node, counts map[int]int, owner string) error {
	switch n.Kind {
	case schema.KindElement:
		if counts[n.ID] != 1 {
			return fmt.Errorf("xmlgen: element %s requires exactly one %s, found %d", owner, n.Name, counts[n.ID])
		}
		return nil
	case schema.KindSequence:
		for _, c := range n.Children {
			if err := validateContent(c, counts, owner); err != nil {
				return err
			}
		}
		return nil
	case schema.KindOption:
		if total := subtreeCount(n.Children[0], counts); total > 1 {
			return fmt.Errorf("xmlgen: optional content under %s occurs %d times", owner, total)
		}
		if subtreeCount(n.Children[0], counts) == 1 {
			return validateContent(n.Children[0], counts, owner)
		}
		return nil
	case schema.KindRepetition:
		if n.MaxOccurs != schema.Unbounded {
			if total := subtreeCount(n.Children[0], counts); total > n.MaxOccurs {
				return fmt.Errorf("xmlgen: repeated content under %s occurs %d times, max %d", owner, total, n.MaxOccurs)
			}
		}
		return nil
	case schema.KindChoice:
		present := 0
		for _, c := range n.Children {
			if subtreeCount(c, counts) > 0 {
				present++
			}
		}
		if present != 1 {
			return fmt.Errorf("xmlgen: choice under %s has %d branches present, want 1", owner, present)
		}
		for _, c := range n.Children {
			if subtreeCount(c, counts) > 0 {
				return validateContent(c, counts, owner)
			}
		}
		return nil
	case schema.KindSimple:
		return nil
	}
	return fmt.Errorf("xmlgen: unknown content node kind %v", n.Kind)
}

// subtreeCount sums instance counts of all element nodes in a content
// subtree (not descending into elements).
func subtreeCount(n *schema.Node, counts map[int]int) int {
	if n.Kind == schema.KindElement {
		return counts[n.ID]
	}
	total := 0
	for _, c := range n.Children {
		total += subtreeCount(c, counts)
	}
	return total
}

// baseToType maps schema base types to relational types.
func baseToType(b schema.BaseType) rel.Type {
	switch b {
	case schema.BaseInt:
		return rel.TInt
	case schema.BaseFloat:
		return rel.TFloat
	default:
		return rel.TString
	}
}

// BaseToType exposes the base-type mapping to other packages.
func BaseToType(b schema.BaseType) rel.Type { return baseToType(b) }

// ParseValue parses leaf text into a typed value.
func ParseValue(b schema.BaseType, text string) (rel.Value, error) {
	switch b {
	case schema.BaseInt:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return rel.Value{}, fmt.Errorf("xmlgen: bad integer %q: %w", text, err)
		}
		return rel.Int(i), nil
	case schema.BaseFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return rel.Value{}, fmt.Errorf("xmlgen: bad decimal %q: %w", text, err)
		}
		return rel.Float(f), nil
	default:
		return rel.Str(text), nil
	}
}
