package xmlgen

import (
	"fmt"

	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/xpath"
)

// ResultGroup is the reference evaluator's output for one context
// element instance that satisfies the selection: the values of each
// projection path in document order. Integration tests compare these
// groups against the grouped output of the translated SQL.
type ResultGroup struct {
	// Ordinal is the 0-based document-order index of the context
	// instance among all matching context instances.
	Ordinal int
	// Values[i] lists the instances of projection path i.
	Values [][]rel.Value
}

// atomize converts a leaf instance's value to its declared schema type,
// mirroring the shredder's column coercion: a "NaN" lexical string
// under a decimal leaf compares and projects as the float NaN, exactly
// as it does after shredding into a typed column.
func atomize(e *Elem) rel.Value {
	want := baseToType(e.Node.LeafBase())
	if e.Value.Null || e.Value.Typ == want {
		return e.Value
	}
	return e.Value.Coerce(want)
}

// Evaluate runs the XPath query directly over the document: the gold
// standard the shred+translate+execute pipeline must agree with.
func Evaluate(t *schema.Tree, d *Doc, q *xpath.Query) ([]ResultGroup, error) {
	ctx, err := contextInstances(d, q.Context)
	if err != nil {
		return nil, err
	}
	var out []ResultGroup
	for _, e := range ctx {
		if q.Pred != nil {
			leaves := resolveRel(e, q.Pred.Path)
			if len(leaves) == 0 {
				continue
			}
			match := false
			for _, l := range leaves {
				v := atomize(l)
				lit := literalValue(q.Pred.Value).Coerce(v.Typ)
				if lit.Null {
					continue
				}
				if sqlOpMatches(q.Pred.Op, v.Compare(lit)) {
					match = true
					break
				}
			}
			if !match {
				continue
			}
		}
		g := ResultGroup{Ordinal: len(out)}
		proj := q.Proj
		if len(proj) == 0 {
			// Bare context: a leaf context projects its own value;
			// otherwise project the single-valued direct leaf children
			// (matching the translator's bare-context semantics).
			if e.Leaf() {
				g.Values = append(g.Values, []rel.Value{atomize(e)})
			} else {
				for _, c := range e.Children {
					if c.Leaf() && !c.Node.IsSetValued() {
						g.Values = append(g.Values, []rel.Value{atomize(c)})
					}
				}
			}
			out = append(out, g)
			continue
		}
		for _, p := range proj {
			leaves := resolveRel(e, p)
			vals := make([]rel.Value, len(leaves))
			for i, l := range leaves {
				vals[i] = atomize(l)
			}
			g.Values = append(g.Values, vals)
		}
		out = append(out, g)
	}
	return out, nil
}

// contextInstances resolves the location path to element instances in
// document order.
func contextInstances(d *Doc, steps []xpath.Step) ([]*Elem, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("xmlgen: empty location path")
	}
	cur := []*Elem{}
	first := steps[0]
	switch first.Axis {
	case xpath.Child:
		if d.Root.Node.Name == first.Name {
			cur = append(cur, d.Root)
		}
	case xpath.Descendant:
		d.Root.Walk(func(e *Elem) {
			if e.Node.Name == first.Name {
				cur = append(cur, e)
			}
		})
	}
	for _, s := range steps[1:] {
		var next []*Elem
		for _, e := range cur {
			switch s.Axis {
			case xpath.Child:
				for _, c := range e.Children {
					if c.Node.Name == s.Name {
						next = append(next, c)
					}
				}
			case xpath.Descendant:
				for _, c := range e.Children {
					c.Walk(func(x *Elem) {
						if x.Node.Name == s.Name {
							next = append(next, x)
						}
					})
				}
			}
		}
		cur = next
	}
	return cur, nil
}

// resolveRel resolves a relative child path from an element to leaf
// instances in document order.
func resolveRel(e *Elem, p xpath.Path) []*Elem {
	cur := []*Elem{e}
	for _, name := range p {
		var next []*Elem
		for _, x := range cur {
			for _, c := range x.Children {
				if c.Node.Name == name {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	var leaves []*Elem
	for _, x := range cur {
		if x.Leaf() {
			leaves = append(leaves, x)
		}
	}
	return leaves
}

// literalValue converts an xpath literal to a rel.Value.
func literalValue(l xpath.Literal) rel.Value {
	switch l.Kind {
	case xpath.LitInt:
		return rel.Int(l.I)
	case xpath.LitFloat:
		return rel.Float(l.F)
	default:
		return rel.Str(l.S)
	}
}

// LiteralValue exposes literal conversion to other packages.
func LiteralValue(l xpath.Literal) rel.Value { return literalValue(l) }

// sqlOpMatches mirrors sqlast.CmpOp.Matches for xpath operators, which
// share the same ordering semantics.
func sqlOpMatches(op xpath.CmpOp, cmp int) bool {
	switch op {
	case xpath.OpEq:
		return cmp == 0
	case xpath.OpNe:
		return cmp != 0
	case xpath.OpLt:
		return cmp < 0
	case xpath.OpLe:
		return cmp <= 0
	case xpath.OpGt:
		return cmp > 0
	case xpath.OpGe:
		return cmp >= 0
	}
	return false
}
