package rel

import (
	"math"
	"testing"
)

// TestFloatTotalOrder pins the total order over special floats: NULL
// sorts before everything, NaN sorts before every other float and
// equals itself, and -0.0 equals +0.0. Both executors and ORDER BY
// depend on this order being total — a comparator that returns "never
// equal, never ordered" for NaN would make sort results
// schedule-dependent.
func TestFloatTotalOrder(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	negZero := math.Copysign(0, -1)
	cases := []struct {
		name string
		a, b Value
		want int
	}{
		{"nan-eq-nan", Float(nan), Float(nan), 0},
		{"nan-lt-neginf", Float(nan), Float(math.Inf(-1)), -1},
		{"nan-lt-zero", Float(nan), Float(0), -1},
		{"nan-lt-inf", Float(nan), Float(inf), -1},
		{"inf-gt-nan", Float(inf), Float(nan), 1},
		{"inf-gt-max", Float(inf), Float(math.MaxFloat64), 1},
		{"neginf-lt-min", Float(math.Inf(-1)), Float(-math.MaxFloat64), -1},
		{"neginf-eq-neginf", Float(math.Inf(-1)), Float(math.Inf(-1)), 0},
		{"inf-eq-inf", Float(inf), Float(inf), 0},
		{"negzero-eq-zero", Float(negZero), Float(0), 0},
		{"zero-eq-negzero", Float(0), Float(negZero), 0},
		{"null-lt-nan", NullOf(TFloat), Float(nan), -1},
		{"nan-gt-null", Float(nan), NullOf(TFloat), 1},
		{"int-vs-nan", Int(0), Float(nan), 1},
		{"nan-vs-int", Float(nan), Int(0), -1},
		{"int-vs-inf", Int(0), Float(inf), -1},
		{"negzero-vs-int", Float(negZero), Int(0), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%s: Compare(%v,%v) = %d, want %d", c.name, c.a, c.b, got, c.want)
		}
		if got, want := c.a.Equal(c.b), c.want == 0; got != want {
			t.Errorf("%s: Equal(%v,%v) = %v, want %v", c.name, c.a, c.b, got, want)
		}
		// Antisymmetry must hold for specials too.
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("%s: Compare(%v,%v) = %d, want %d", c.name, c.b, c.a, got, -c.want)
		}
	}
}

// TestBitEqual distinguishes what Equal deliberately conflates: -0.0 is
// not bit-equal to +0.0, while NaN is bit-equal to the same NaN
// payload. Equivalence tests compare executor outputs with BitEqual, so
// a batch path that flips a zero sign or loses a NaN would be caught.
func TestBitEqual(t *testing.T) {
	nan := math.NaN()
	negZero := math.Copysign(0, -1)
	cases := []struct {
		name string
		a, b Value
		want bool
	}{
		{"nan-nan", Float(nan), Float(nan), true},
		{"negzero-zero", Float(negZero), Float(0), false},
		{"negzero-negzero", Float(negZero), Float(negZero), true},
		{"inf-inf", Float(math.Inf(1)), Float(math.Inf(1)), true},
		{"inf-neginf", Float(math.Inf(1)), Float(math.Inf(-1)), false},
		{"null-null", NullOf(TFloat), NullOf(TFloat), true},
		{"null-nan", NullOf(TFloat), Float(nan), false},
		{"int-float", Int(2), Float(2), false},
		{"str-str", Str("x"), Str("x"), true},
	}
	for _, c := range cases {
		if got := c.a.BitEqual(c.b); got != c.want {
			t.Errorf("%s: BitEqual(%v,%v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if got := c.b.BitEqual(c.a); got != c.want {
			t.Errorf("%s: BitEqual(%v,%v) = %v, want %v (symmetry)", c.name, c.b, c.a, got, c.want)
		}
	}
}

// TestCoerceLexicalForms pins the lexical paths documents rely on:
// whitespace-padded numerics parse, "NaN" parses to the float NaN, and
// garbage coerces to NULL.
func TestCoerceLexicalForms(t *testing.T) {
	if v := Str(" 42 ").Coerce(TInt); v.Null || v.I != 42 {
		t.Errorf("Coerce(\" 42 \", TInt) = %v", v)
	}
	if v := Str("NaN").Coerce(TFloat); v.Null || !math.IsNaN(v.F) {
		t.Errorf("Coerce(\"NaN\", TFloat) = %v", v)
	}
	if v := Str(" 2.5 ").Coerce(TFloat); v.Null || v.F != 2.5 {
		t.Errorf("Coerce(\" 2.5 \", TFloat) = %v", v)
	}
	if v := Str("-Inf").Coerce(TFloat); v.Null || !math.IsInf(v.F, -1) {
		t.Errorf("Coerce(\"-Inf\", TFloat) = %v", v)
	}
	if v := Str("not-a-number").Coerce(TFloat); !v.Null {
		t.Errorf("Coerce(\"not-a-number\", TFloat) = %v, want NULL", v)
	}
}
