package rel

import (
	"testing"
	"testing/quick"
)

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{NullOf(TInt), Int(0), -1},
		{Int(0), NullOf(TInt), 1},
		{NullOf(TInt), NullOf(TString), 0},
		{Int(2), Float(2.0), 0},
		{Int(2), Float(2.5), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareProperties(t *testing.T) {
	mk := func(kind uint8, i int64, f float64, s string) Value {
		switch kind % 4 {
		case 0:
			return Int(i)
		case 1:
			return Float(f)
		case 2:
			return Str(s)
		default:
			return NullOf(TInt)
		}
	}
	antisym := func(k1 uint8, i1 int64, f1 float64, s1 string, k2 uint8, i2 int64, f2 float64, s2 string) bool {
		a, b := mk(k1, i1, f1, s1), mk(k2, i2, f2, s2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	reflexive := func(k uint8, i int64, f float64, s string) bool {
		v := mk(k, i, f, s)
		return v.Compare(v) == 0
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
}

func TestValueCoerce(t *testing.T) {
	cases := []struct {
		in   Value
		typ  Type
		want Value
	}{
		{Str("1998"), TInt, Int(1998)},
		{Str("7.5"), TFloat, Float(7.5)},
		{Int(42), TString, Str("42")},
		{Int(42), TFloat, Float(42)},
		{Float(3.9), TInt, Int(3)},
		{Str("banana"), TInt, NullOf(TInt)},
		{NullOf(TString), TInt, NullOf(TInt)},
		// NULL propagates to every target type, never resurrecting a value.
		{NullOf(TInt), TFloat, NullOf(TFloat)},
		{NullOf(TFloat), TString, NullOf(TString)},
		{NullOf(TInt), TInt, NullOf(TInt)},
		// Empty and whitespace-only strings are not numbers.
		{Str(""), TInt, NullOf(TInt)},
		{Str(""), TFloat, NullOf(TFloat)},
		{Str("   "), TInt, NullOf(TInt)},
		// Surrounding whitespace is trimmed before numeric parsing.
		{Str("  7 "), TInt, Int(7)},
		{Str("\t-2.25\n"), TFloat, Float(-2.25)},
		// Exponent forms parse as floats but not as ints.
		{Str("1e3"), TInt, NullOf(TInt)},
		{Str("1e3"), TFloat, Float(1000)},
		// Same-type coercion is the identity.
		{Str("x"), TString, Str("x")},
		{Int(-9), TInt, Int(-9)},
		// Float-to-int truncates toward zero, including negatives.
		{Float(-3.9), TInt, Int(-3)},
		// Cross-type via string forms.
		{Float(2.5), TString, Str("2.5")},
		{Str("-4"), TFloat, Float(-4)},
	}
	for _, c := range cases {
		got := c.in.Coerce(c.typ)
		if got.Null != c.want.Null || (!got.Null && got.Compare(c.want) != 0) || got.Typ != c.want.Typ {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.in, c.typ, got, c.want)
		}
	}
}

func TestValueSQLLiteral(t *testing.T) {
	if got := Str("O'Brien").SQLLiteral(); got != "'O''Brien'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Int(5).SQLLiteral(); got != "5" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := NullOf(TInt).SQLLiteral(); got != "NULL" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestValueWidth(t *testing.T) {
	if Int(5).Width() != 8 || Float(1).Width() != 8 {
		t.Error("numeric width should be 8")
	}
	if Str("hello").Width() != 5 {
		t.Error("string width should be len")
	}
	if NullOf(TString).Width() != 1 || Str("").Width() != 1 {
		t.Error("null/empty width should be 1")
	}
}

func newTestTable() *Table {
	return NewTable("inproc", []Column{
		{Name: IDColumn, Typ: TInt},
		{Name: PIDColumn, Typ: TInt},
		{Name: "title", Typ: TString},
		{Name: "year", Typ: TInt},
	})
}

func TestTableBasics(t *testing.T) {
	tb := newTestTable()
	if tb.ColIndex("year") != 3 || tb.ColIndex("nope") != -1 {
		t.Error("ColIndex wrong")
	}
	tb.AppendRow([]Value{Int(1), Int(1), Str("a paper"), Int(2000)})
	tb.AppendRow([]Value{Int(2), Int(1), Str("another"), Int(2001)})
	if tb.RowCount() != 2 {
		t.Errorf("RowCount = %d", tb.RowCount())
	}
	if tb.Bytes() <= 0 || tb.Pages() < 1 {
		t.Error("size accounting broken")
	}
	if !tb.HasColumn("title") || tb.Column("title").Typ != TString {
		t.Error("Column lookup broken")
	}
}

func TestTableAppendRowWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for wrong row width")
		}
	}()
	newTestTable().AppendRow([]Value{Int(1)})
}

func TestTableSortByID(t *testing.T) {
	tb := newTestTable()
	tb.AppendRow([]Value{Int(3), Int(1), Str("c"), Int(1)})
	tb.AppendRow([]Value{Int(1), Int(1), Str("a"), Int(1)})
	tb.AppendRow([]Value{Int(2), Int(1), Str("b"), Int(1)})
	tb.SortByID()
	for i, want := range []int64{1, 2, 3} {
		if tb.Rows()[i][0].I != want {
			t.Fatalf("row %d ID = %d, want %d", i, tb.Rows()[i][0].I, want)
		}
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	tb := newTestTable()
	db.Add(tb)
	if db.Table("inproc") != tb || db.Table("nope") != nil {
		t.Error("Table lookup broken")
	}
	tb2 := NewTable("author", []Column{{Name: IDColumn, Typ: TInt}, {Name: PIDColumn, Typ: TInt}})
	db.Add(tb2)
	tables := db.Tables()
	if len(tables) != 2 || tables[0].Name != "inproc" || tables[1].Name != "author" {
		t.Errorf("Tables order = %v", tables)
	}
	tb.AppendRow([]Value{Int(1), Int(1), Str("x"), Int(1)})
	if db.Bytes() != tb.Bytes()+tb2.Bytes() {
		t.Error("Bytes aggregation broken")
	}
	if db.Pages() < 2 {
		t.Error("Pages should count both tables")
	}
}

func TestDatabaseDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for duplicate table")
		}
	}()
	db := NewDatabase()
	db.Add(newTestTable())
	db.Add(newTestTable())
}

func TestDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for duplicate column")
		}
	}()
	NewTable("t", []Column{{Name: "a", Typ: TInt}, {Name: "a", Typ: TInt}})
}

// TestRowBytesMatchesAppendRow pins the shared accounting contract
// consumers that predict a table's bookkeeping without appending rely
// on (storage's paged shells): one AppendRow moves Bytes() by exactly
// RowBytes(row) and Generation() by exactly one, across every value
// shape including NULLs and wrong-typed (exception-slot) appends.
func TestRowBytesMatchesAppendRow(t *testing.T) {
	tb := NewTable("acct", []Column{
		{Name: IDColumn, Typ: TInt},
		{Name: "tag", Typ: TString, Nullable: true},
		{Name: "val", Typ: TFloat, Nullable: true},
	})
	rows := [][]Value{
		{Int(1), Str("short"), Float(1.5)},
		{Int(2), NullOf(TString), NullOf(TFloat)},
		{Int(3), Str("a considerably longer string value"), Float(0)},
		{Int(4), Int(1998), Str("39.95")}, // wrong-typed: exception slots
		{Int(5), Str(""), Float(-0.0)},
	}
	for i, row := range rows {
		genBefore, bytesBefore := tb.Generation(), tb.Bytes()
		want := RowBytes(row)
		tb.AppendRow(row)
		if got := tb.Bytes() - bytesBefore; got != want {
			t.Errorf("row %d: AppendRow moved Bytes by %d, RowBytes predicts %d", i, got, want)
		}
		if got := tb.Generation() - genBefore; got != 1 {
			t.Errorf("row %d: AppendRow moved Generation by %d, want 1", i, got)
		}
	}
}
