package rel

import (
	"fmt"
	"sort"
)

// Well-known column names: every shredded relation carries an ID
// primary key and a PID foreign key to its parent relation (Section 2,
// mapping rule 1).
const (
	IDColumn  = "ID"
	PIDColumn = "PID"
)

// Column describes one column of a table.
type Column struct {
	// Name is the SQL column name.
	Name string
	// Typ is the column type.
	Typ Type
	// Nullable marks columns that may hold NULL (optional elements,
	// repetition-split occurrence columns, union-projection slots).
	Nullable bool
	// LeafID is the schema node ID of the leaf element this column
	// stores, or 0 for the ID/PID key columns.
	LeafID int
	// Occurrence is the 1-based repetition-split occurrence this column
	// stores (author_1, author_2, ...); 0 for scalar columns.
	Occurrence int
}

// Table is a heap table of rows.
type Table struct {
	// Name is the relation name.
	Name string
	// Columns are the table's columns; Columns[0] is ID, Columns[1] is
	// PID for shredded relations.
	Columns []Column
	// Parent is the name of the parent relation PID references; empty
	// for the root relation.
	Parent string
	// Rows is the row store.
	Rows [][]Value

	colIdx map[string]int
	bytes  int64
	gen    int64
}

// NewTable creates an empty table.
func NewTable(name string, cols []Column) *Table {
	t := &Table{Name: name, Columns: cols, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			panic(fmt.Sprintf("rel: duplicate column %s.%s", name, c.Name))
		}
		t.colIdx[c.Name] = i
	}
	return t
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	i := t.ColIndex(name)
	if i < 0 {
		return nil
	}
	return &t.Columns[i]
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool { return t.ColIndex(name) >= 0 }

// AppendRow adds a row; it must have exactly one value per column.
func (t *Table) AppendRow(row []Value) {
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("rel: row width %d != %d columns in %s", len(row), len(t.Columns), t.Name))
	}
	t.Rows = append(t.Rows, row)
	for _, v := range row {
		t.bytes += int64(v.Width())
	}
	t.bytes += 8 // per-row overhead
	t.gen++
}

// Generation counts the mutations (appends, re-sorts) this table has
// seen. Consumers that cache structures derived from the rows — the
// engine's plan-lifetime hash tables, probe sets, and prepared plans —
// snapshot it and refuse to serve the cache after the table moved on,
// turning silent stale reads into loud errors.
func (t *Table) Generation() int64 { return t.gen }

// RowCount returns the number of rows.
func (t *Table) RowCount() int { return len(t.Rows) }

// Bytes returns the accounted data size in bytes.
func (t *Table) Bytes() int64 { return t.bytes }

// Pages returns the accounted data size in pages (minimum 1).
func (t *Table) Pages() int64 {
	p := (t.bytes + PageSize - 1) / PageSize
	if p < 1 {
		p = 1
	}
	return p
}

// SortByID sorts rows by the ID column; shredding emits rows in
// document order so this is normally already true.
func (t *Table) SortByID() {
	id := t.ColIndex(IDColumn)
	if id < 0 {
		return
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		return t.Rows[i][id].Compare(t.Rows[j][id]) < 0
	})
	t.gen++
}

// Database is a named collection of tables.
type Database struct {
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Add registers a table; duplicate names panic (schema compilation
// guarantees uniqueness).
func (d *Database) Add(t *Table) {
	if _, dup := d.tables[t.Name]; dup {
		panic(fmt.Sprintf("rel: duplicate table %s", t.Name))
	}
	d.tables[t.Name] = t
	d.order = append(d.order, t.Name)
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table { return d.tables[name] }

// Tables returns all tables in creation order.
func (d *Database) Tables() []*Table {
	out := make([]*Table, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.tables[n])
	}
	return out
}

// Bytes returns the total accounted data size.
func (d *Database) Bytes() int64 {
	var n int64
	for _, t := range d.tables {
		n += t.Bytes()
	}
	return n
}

// Pages returns the total accounted page count.
func (d *Database) Pages() int64 {
	var n int64
	for _, t := range d.tables {
		n += t.Pages()
	}
	return n
}
