package rel

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Well-known column names: every shredded relation carries an ID
// primary key and a PID foreign key to its parent relation (Section 2,
// mapping rule 1).
const (
	IDColumn  = "ID"
	PIDColumn = "PID"
)

// Column describes one column of a table.
type Column struct {
	// Name is the SQL column name.
	Name string
	// Typ is the column type.
	Typ Type
	// Nullable marks columns that may hold NULL (optional elements,
	// repetition-split occurrence columns, union-projection slots).
	Nullable bool
	// LeafID is the schema node ID of the leaf element this column
	// stores, or 0 for the ID/PID key columns.
	LeafID int
	// Occurrence is the 1-based repetition-split occurrence this column
	// stores (author_1, author_2, ...); 0 for scalar columns.
	Occurrence int
}

// Table is a columnar table: one typed vector per column (int64,
// float64, or dictionary-coded strings) plus a null bitmap. The
// executor's kernels read the vectors through the typed accessors
// (IntCol/FloatCol/StrCol); row-at-a-time consumers — the reference
// executor, the shredder's round-trip checks, tests — use the
// materializing accessors (Rows, ValueAt, ReadRowInto), which rebuild
// bit-identical rows.
type Table struct {
	// Name is the relation name.
	Name string
	// Columns are the table's columns; Columns[0] is ID, Columns[1] is
	// PID for shredded relations.
	Columns []Column
	// Parent is the name of the parent relation PID references; empty
	// for the root relation.
	Parent string

	cols   []colVec
	nrows  int
	colIdx map[string]int
	bytes  int64
	gen    int64

	// rowMu guards the lazily built row-materialized view. Concurrent
	// executions share one table, so the first Rows() call per
	// generation builds the cache under the lock and later calls reuse
	// it. A superseded cache is abandoned, never mutated, so slices
	// handed out before a mutation stay valid (they just describe the
	// old generation, which Generation() guards catch).
	rowMu       sync.Mutex
	rowCache    [][]Value
	rowCacheGen int64

	// virtual marks a schema-only shell (NewVirtualTable) whose data is
	// not resident: metadata accessors work, data accessors do not until
	// Hydrate resolves the rows through load. The flag is atomic so hot
	// readers can check it without a lock; Hydrate publishes t.cols
	// before clearing it, and the atomic load/store pair orders the two.
	virtual   atomic.Bool
	load      func() (*Table, error)
	hydrateMu sync.Mutex
}

// NewTable creates an empty table.
func NewTable(name string, cols []Column) *Table {
	t := &Table{Name: name, Columns: cols, colIdx: make(map[string]int, len(cols))}
	t.cols = make([]colVec, len(cols))
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			panic(fmt.Sprintf("rel: duplicate column %s.%s", name, c.Name))
		}
		t.colIdx[c.Name] = i
		t.cols[i] = newColVec(c.Typ)
	}
	return t
}

// NewVirtualTable creates a schema-only shell that reports the name,
// columns, parent, row count, generation, and byte accounting of a real
// table whose data is not resident. Metadata accessors (RowCount,
// Generation, Bytes, ColIndex, ...) work immediately; data accessors
// require a prior Hydrate call, which resolves the resident form
// through load and must land on exactly the declared shape. Typed
// kernel accessors (IntCol/FloatCol/StrCol) report ok=false while
// unhydrated, matching their "no clean vector available" contract.
func NewVirtualTable(name, parent string, cols []Column, rows int, gen, bytes int64, load func() (*Table, error)) *Table {
	t := &Table{Name: name, Parent: parent, Columns: cols,
		nrows: rows, gen: gen, bytes: bytes,
		colIdx: make(map[string]int, len(cols)), load: load}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			panic(fmt.Sprintf("rel: duplicate column %s.%s", name, c.Name))
		}
		t.colIdx[c.Name] = i
	}
	t.virtual.Store(true)
	return t
}

// Resident reports whether the table's data is readable: always true
// for regular tables, true for a virtual shell only after Hydrate.
func (t *Table) Resident() bool { return !t.virtual.Load() }

// Hydrate resolves a virtual shell to its resident form; it is a no-op
// on a resident table. The loaded table must match the shell's declared
// schema, row count, generation, and byte accounting exactly — a
// mismatch means the backing store moved on since the shell was created
// and is reported as an error, never served.
func (t *Table) Hydrate() error {
	if !t.virtual.Load() {
		return nil
	}
	t.hydrateMu.Lock()
	defer t.hydrateMu.Unlock()
	if !t.virtual.Load() {
		return nil
	}
	src, err := t.load()
	if err != nil {
		return fmt.Errorf("rel: hydrating %s: %w", t.Name, err)
	}
	if src.nrows != t.nrows || src.gen != t.gen || src.bytes != t.bytes || len(src.Columns) != len(t.Columns) {
		return fmt.Errorf("rel: hydrating %s: loaded %d rows / generation %d / %d bytes, shell declares %d / %d / %d",
			t.Name, src.nrows, src.gen, src.bytes, t.nrows, t.gen, t.bytes)
	}
	for i := range t.Columns {
		if src.Columns[i] != t.Columns[i] {
			return fmt.Errorf("rel: hydrating %s: column %d is %+v, shell declares %+v", t.Name, i, src.Columns[i], t.Columns[i])
		}
	}
	t.cols = src.cols
	t.virtual.Store(false)
	return nil
}

// requireResident panics when a data accessor touches an unhydrated
// shell — a programming error (callers with an error path Hydrate
// first), not a data error.
func (t *Table) requireResident() {
	if t.virtual.Load() {
		panic(fmt.Sprintf("rel: table %s is a virtual shell; call Hydrate before reading rows", t.Name))
	}
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	i := t.ColIndex(name)
	if i < 0 {
		return nil
	}
	return &t.Columns[i]
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool { return t.ColIndex(name) >= 0 }

// RowBytes returns the byte-accounting delta one AppendRow of row
// applies: the per-row overhead plus each value's width. AppendRow
// itself uses it, so consumers that predict a table's accounting
// without appending — storage's paged shells computing what a redo
// tail adds to Bytes() — cannot drift from the real bookkeeping (the
// matching Generation() delta is one per appended row).
func RowBytes(row []Value) int64 {
	b := int64(8) // per-row overhead
	for _, v := range row {
		b += int64(v.Width())
	}
	return b
}

// AppendRow adds a row; it must have exactly one value per column. The
// values are decomposed into the column vectors — the slice is not
// retained, so callers may reuse it.
func (t *Table) AppendRow(row []Value) {
	t.requireResident()
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("rel: row width %d != %d columns in %s", len(row), len(t.Columns), t.Name))
	}
	for i, v := range row {
		t.cols[i].append(v)
	}
	t.nrows++
	t.bytes += RowBytes(row)
	t.gen++
}

// Generation counts the mutations (appends, re-sorts) this table has
// seen. Consumers that cache structures derived from the rows — the
// engine's plan-lifetime hash tables, probe sets, and prepared plans —
// snapshot it and refuse to serve the cache after the table moved on,
// turning silent stale reads into loud errors.
func (t *Table) Generation() int64 { return t.gen }

// RowCount returns the number of rows.
func (t *Table) RowCount() int { return t.nrows }

// Bytes returns the accounted data size in bytes.
func (t *Table) Bytes() int64 { return t.bytes }

// Pages returns the accounted data size in pages (minimum 1).
func (t *Table) Pages() int64 {
	p := (t.bytes + PageSize - 1) / PageSize
	if p < 1 {
		p = 1
	}
	return p
}

// ValueAt returns the value at (row, col), bit-identical to what
// AppendRow stored.
func (t *Table) ValueAt(row, col int) Value {
	t.requireResident()
	return t.cols[col].value(row)
}

// IsNullAt reports whether the value at (row, col) is NULL.
func (t *Table) IsNullAt(row, col int) bool {
	t.requireResident()
	cv := &t.cols[col]
	if cv.exc != nil {
		if v, ok := cv.exc[row]; ok {
			return v.Null
		}
	}
	return cv.nulls.Get(row)
}

// ReadRowInto materializes row rid into dst, which must have exactly
// one slot per column.
func (t *Table) ReadRowInto(dst []Value, rid int) {
	t.requireResident()
	if len(dst) != len(t.Columns) {
		panic(fmt.Sprintf("rel: dst width %d != %d columns in %s", len(dst), len(t.Columns), t.Name))
	}
	for i := range t.cols {
		dst[i] = t.cols[i].value(rid)
	}
}

// IntCol returns the int64 vector and null bitmap of column ci, with
// ok=true only when the column is TInt and every stored value
// round-trips through the vector (no type-mismatched exceptions) — the
// precondition for the executor's typed kernels. The vector includes
// rows whose bit is set in the bitmap (their payload slot is 0).
func (t *Table) IntCol(ci int) (vals []int64, nulls *Bitmap, ok bool) {
	if t.virtual.Load() {
		return nil, nil, false
	}
	cv := &t.cols[ci]
	if cv.typ != TInt || !cv.clean() {
		return nil, nil, false
	}
	return cv.ints, &cv.nulls, true
}

// FloatCol is IntCol for TFloat columns.
func (t *Table) FloatCol(ci int) (vals []float64, nulls *Bitmap, ok bool) {
	if t.virtual.Load() {
		return nil, nil, false
	}
	cv := &t.cols[ci]
	if cv.typ != TFloat || !cv.clean() {
		return nil, nil, false
	}
	return cv.floats, &cv.nulls, true
}

// StrCol returns the dictionary codes, dictionary, and null bitmap of
// a TString column under the same cleanliness precondition as IntCol.
func (t *Table) StrCol(ci int) (codes []uint32, dict *Dict, nulls *Bitmap, ok bool) {
	if t.virtual.Load() {
		return nil, nil, nil, false
	}
	cv := &t.cols[ci]
	if cv.typ != TString || !cv.clean() {
		return nil, nil, nil, false
	}
	return cv.codes, cv.dict, &cv.nulls, true
}

// Rows materializes the table as row slices, cached per generation.
// This is the compatibility accessor for row-at-a-time consumers (the
// reference executor, hash-join build sides, views); values are
// bit-identical to what AppendRow stored. Callers must not modify the
// returned rows.
func (t *Table) Rows() [][]Value {
	t.requireResident()
	t.rowMu.Lock()
	defer t.rowMu.Unlock()
	if t.rowCache != nil && t.rowCacheGen == t.gen {
		return t.rowCache
	}
	w := len(t.Columns)
	rows := make([][]Value, t.nrows)
	if t.nrows > 0 {
		flat := make([]Value, t.nrows*w)
		for ci := range t.cols {
			cv := &t.cols[ci]
			for r := 0; r < t.nrows; r++ {
				flat[r*w+ci] = cv.value(r)
			}
		}
		for r := range rows {
			rows[r] = flat[r*w : (r+1)*w : (r+1)*w]
		}
	}
	t.rowCache = rows
	t.rowCacheGen = t.gen
	return rows
}

// SortByID sorts rows by the ID column; shredding emits rows in
// document order so this is normally already true.
func (t *Table) SortByID() {
	t.requireResident()
	id := t.ColIndex(IDColumn)
	if id < 0 {
		return
	}
	perm := make([]int, t.nrows)
	for i := range perm {
		perm[i] = i
	}
	idc := &t.cols[id]
	sort.SliceStable(perm, func(i, j int) bool {
		return idc.value(perm[i]).Compare(idc.value(perm[j])) < 0
	})
	for ci := range t.cols {
		t.cols[ci].permute(perm)
	}
	t.gen++
}

// Database is a named collection of tables.
type Database struct {
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Add registers a table; duplicate names panic (schema compilation
// guarantees uniqueness).
func (d *Database) Add(t *Table) {
	if _, dup := d.tables[t.Name]; dup {
		panic(fmt.Sprintf("rel: duplicate table %s", t.Name))
	}
	d.tables[t.Name] = t
	d.order = append(d.order, t.Name)
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table { return d.tables[name] }

// Tables returns all tables in creation order.
func (d *Database) Tables() []*Table {
	out := make([]*Table, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.tables[n])
	}
	return out
}

// Bytes returns the total accounted data size.
func (d *Database) Bytes() int64 {
	var n int64
	for _, t := range d.tables {
		n += t.Bytes()
	}
	return n
}

// Pages returns the total accounted page count.
func (d *Database) Pages() int64 {
	var n int64
	for _, t := range d.tables {
		n += t.Pages()
	}
	return n
}
