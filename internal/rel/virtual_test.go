package rel

import (
	"errors"
	"strings"
	"testing"
)

// TestVirtualTableMetadataAndGuards pins the shell contract: metadata
// accessors serve the declared shape without loading, typed kernel
// accessors report ok=false (no clean vector available), and the
// materializing data accessors panic until Hydrate.
func TestVirtualTableMetadataAndGuards(t *testing.T) {
	src := snapshotTable(t)
	src.Parent = "root"
	v := NewVirtualTable(src.Name, src.Parent, src.Columns, src.RowCount(),
		src.Generation(), src.Bytes(), func() (*Table, error) { return src, nil })

	if v.Resident() {
		t.Fatal("fresh shell reports resident")
	}
	if v.RowCount() != src.RowCount() || v.Generation() != src.Generation() || v.Bytes() != src.Bytes() {
		t.Fatalf("shell metadata %d/%d/%d, want %d/%d/%d",
			v.RowCount(), v.Generation(), v.Bytes(), src.RowCount(), src.Generation(), src.Bytes())
	}
	if v.ColIndex("title") != src.ColIndex("title") || !v.HasColumn(IDColumn) {
		t.Fatal("shell column metadata differs from source")
	}
	if _, _, ok := v.IntCol(0); ok {
		t.Fatal("IntCol on a shell must report ok=false")
	}
	if _, _, ok := v.FloatCol(3); ok {
		t.Fatal("FloatCol on a shell must report ok=false")
	}
	if _, _, _, ok := v.StrCol(2); ok {
		t.Fatal("StrCol on a shell must report ok=false")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s on a shell did not panic", name)
			}
			if !strings.Contains(r.(string), "virtual shell") {
				t.Fatalf("%s panic = %v, want virtual-shell message", name, r)
			}
		}()
		f()
	}
	mustPanic("Rows", func() { v.Rows() })
	mustPanic("ValueAt", func() { v.ValueAt(0, 0) })
	mustPanic("IsNullAt", func() { v.IsNullAt(0, 0) })
	mustPanic("ReadRowInto", func() { v.ReadRowInto(make([]Value, len(v.Columns)), 0) })
	mustPanic("AppendRow", func() { v.AppendRow(make([]Value, len(v.Columns))) })
	mustPanic("SortByID", func() { v.SortByID() })
	mustPanic("Snapshot", func() { v.Snapshot() })
}

// TestVirtualTableHydrate resolves a shell and checks the result is
// bit-identical to the source, that Hydrate is idempotent, and that a
// resident table treats Hydrate as a no-op.
func TestVirtualTableHydrate(t *testing.T) {
	src := snapshotTable(t)
	loads := 0
	v := NewVirtualTable(src.Name, src.Parent, src.Columns, src.RowCount(),
		src.Generation(), src.Bytes(), func() (*Table, error) { loads++; return src, nil })

	if err := v.Hydrate(); err != nil {
		t.Fatal(err)
	}
	if !v.Resident() {
		t.Fatal("hydrated shell still reports virtual")
	}
	tablesBitEqual(t, src, v)
	if _, _, ok := v.IntCol(0); !ok {
		t.Fatal("IntCol must work after Hydrate")
	}
	if err := v.Hydrate(); err != nil {
		t.Fatal(err)
	}
	if loads != 1 {
		t.Fatalf("load ran %d times, want 1", loads)
	}
	if err := src.Hydrate(); err != nil {
		t.Fatalf("Hydrate on a resident table: %v", err)
	}
}

// TestVirtualTableHydrateMismatch covers every declared-shape check:
// the loader returning a table that moved on (rows, generation, bytes,
// columns) must be reported, never served.
func TestVirtualTableHydrateMismatch(t *testing.T) {
	src := snapshotTable(t)
	loadErr := errors.New("segment vanished")
	cases := []struct {
		name string
		v    *Table
		want string
	}{
		{"load error",
			NewVirtualTable(src.Name, src.Parent, src.Columns, src.RowCount(), src.Generation(), src.Bytes(),
				func() (*Table, error) { return nil, loadErr }),
			"segment vanished"},
		{"row mismatch",
			NewVirtualTable(src.Name, src.Parent, src.Columns, src.RowCount()+1, src.Generation(), src.Bytes(),
				func() (*Table, error) { return src, nil }),
			"shell declares"},
		{"generation mismatch",
			NewVirtualTable(src.Name, src.Parent, src.Columns, src.RowCount(), src.Generation()+5, src.Bytes(),
				func() (*Table, error) { return src, nil }),
			"shell declares"},
		{"bytes mismatch",
			NewVirtualTable(src.Name, src.Parent, src.Columns, src.RowCount(), src.Generation(), src.Bytes()-1,
				func() (*Table, error) { return src, nil }),
			"shell declares"},
		{"column mismatch",
			NewVirtualTable(src.Name, src.Parent, append([]Column{{Name: IDColumn, Typ: TString}}, src.Columns[1:]...),
				src.RowCount(), src.Generation(), src.Bytes(),
				func() (*Table, error) { return src, nil }),
			"column 0"},
	}
	for _, tc := range cases {
		err := tc.v.Hydrate()
		if err == nil {
			t.Fatalf("%s: Hydrate succeeded", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if tc.v.Resident() {
			t.Fatalf("%s: failed Hydrate left the shell resident", tc.name)
		}
	}
}

// TestViewFromSnapshot pins the fast adoption path against the
// validating constructor: identical values, nullness, dictionary
// behavior, and kernel-accessor results — only byte accounting differs
// (a view leaves it at 0 by contract).
func TestViewFromSnapshot(t *testing.T) {
	src := snapshotTable(t)
	src.Parent = "root"
	snap := src.Snapshot()
	oracle, err := TableFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	view := ViewFromSnapshot(snap)

	if view.Bytes() != 0 {
		t.Fatalf("view accounts %d bytes, want 0", view.Bytes())
	}
	if view.Name != oracle.Name || view.Parent != oracle.Parent ||
		view.RowCount() != oracle.RowCount() || view.Generation() != oracle.Generation() {
		t.Fatal("view identity differs from validated table")
	}
	for r := 0; r < oracle.RowCount(); r++ {
		for c := range oracle.Columns {
			if !view.ValueAt(r, c).BitEqual(oracle.ValueAt(r, c)) {
				t.Fatalf("value (%d,%d): %v vs %v", r, c, view.ValueAt(r, c), oracle.ValueAt(r, c))
			}
			if view.IsNullAt(r, c) != oracle.IsNullAt(r, c) {
				t.Fatalf("nullness (%d,%d) differs", r, c)
			}
		}
	}
	// Kernel accessors agree: ID is clean int, title/score carry
	// exceptions so both reject.
	if _, _, ok := view.IntCol(0); !ok {
		t.Fatal("view IntCol(ID) not clean")
	}
	if _, _, _, ok := view.StrCol(2); ok {
		t.Fatal("view StrCol(title) must reject: column has exceptions")
	}
	ci := view.ColIndex(PIDColumn)
	vals, nulls, ok := view.IntCol(ci)
	ovals, onulls, ook := oracle.IntCol(ci)
	if ok != ook || len(vals) != len(ovals) || nulls.SetCount() != onulls.SetCount() {
		t.Fatal("view IntCol(PID) disagrees with validated table")
	}
}
