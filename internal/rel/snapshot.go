package rel

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// This file is the snapshot/restore boundary of the columnar store: an
// exported, serialization-friendly view of a Table's internal vectors
// (TableSnapshot) and a validating constructor that rebuilds a Table
// from one (TableFromSnapshot). The persistence layer
// (internal/storage) encodes snapshots into binary segments; restoring
// goes through full structural validation and returns errors — never
// panics — because the bytes may come from a truncated or corrupted
// file.

// ExcEntry is one bit-faithfulness exception: the exact Value appended
// at Row, kept because it does not round-trip through the typed vector.
type ExcEntry struct {
	// Row is the row index the exception covers.
	Row int
	// Val is the exact appended value.
	Val Value
}

// ColumnSnapshot is the columnar state of one column. The slices alias
// the table's backing store when produced by Snapshot — callers must
// treat them as read-only — and are adopted without copying by
// TableFromSnapshot.
type ColumnSnapshot struct {
	// Col is the column descriptor.
	Col Column
	// NullWords is the null bitmap's word array, one bit per row
	// (set = NULL), little bit order within each 64-bit word.
	NullWords []uint64
	// Ints holds the payload vector of a TInt column (len == rows).
	Ints []int64
	// Floats holds the payload vector of a TFloat column.
	Floats []float64
	// Codes holds the dictionary codes of a TString column.
	Codes []uint32
	// Dict holds the string dictionary in code order (TString only).
	Dict []string
	// Exc lists the exception entries sorted by ascending Row.
	Exc []ExcEntry
}

// TableSnapshot is the complete columnar state of a Table.
type TableSnapshot struct {
	// Name and Parent mirror Table.Name and Table.Parent.
	Name   string
	Parent string
	// RowCount is the number of rows.
	RowCount int
	// Generation is the table's mutation counter at snapshot time; a
	// restored table resumes from it, so Build-time generation guards
	// survive a save/reopen cycle.
	Generation int64
	// Columns has one entry per column, in column order.
	Columns []ColumnSnapshot
}

// Snapshot returns the table's columnar state. The returned slices
// alias the table's storage (exceptions excepted, which are copied into
// a sorted slice): the snapshot is valid as long as the table is not
// mutated, and must not be written through.
func (t *Table) Snapshot() *TableSnapshot {
	t.requireResident()
	s := &TableSnapshot{
		Name:       t.Name,
		Parent:     t.Parent,
		RowCount:   t.nrows,
		Generation: t.gen,
		Columns:    make([]ColumnSnapshot, len(t.Columns)),
	}
	for i := range t.Columns {
		cv := &t.cols[i]
		cs := ColumnSnapshot{
			Col:       t.Columns[i],
			NullWords: cv.nulls.words,
			Ints:      cv.ints,
			Floats:    cv.floats,
			Codes:     cv.codes,
		}
		if cv.dict != nil {
			cs.Dict = cv.dict.strs
		}
		if len(cv.exc) > 0 {
			cs.Exc = make([]ExcEntry, 0, len(cv.exc))
			for row, v := range cv.exc {
				cs.Exc = append(cs.Exc, ExcEntry{Row: row, Val: v})
			}
			sort.Slice(cs.Exc, func(a, b int) bool { return cs.Exc[a].Row < cs.Exc[b].Row })
		}
		s.Columns[i] = cs
	}
	return s
}

// SliceSnapshot returns a self-contained snapshot of rows [lo, hi).
// The slice is chunk-granular: lo must be a multiple of 64 so the null
// bitmap words can be sliced without shifting (the chunked segment
// format fixes its chunk size to a multiple of 64 rows for exactly
// this reason). String columns are re-coded against a fresh local
// dictionary in first-appearance order within the slice, and exception
// rows are rebased to the slice, so the result satisfies every
// invariant TableFromSnapshot checks: a chunk is a valid table in its
// own right. Generation is 0 — a chunk has no mutation history of its
// own; the chunked segment directory carries the table's generation.
func (s *TableSnapshot) SliceSnapshot(lo, hi int) (*TableSnapshot, error) {
	if lo < 0 || hi < lo || hi > s.RowCount {
		return nil, fmt.Errorf("rel: slice [%d,%d) out of range for %d rows", lo, hi, s.RowCount)
	}
	if lo%64 != 0 {
		return nil, fmt.Errorf("rel: slice start %d is not a multiple of 64", lo)
	}
	rows := hi - lo
	out := &TableSnapshot{
		Name:     s.Name,
		Parent:   s.Parent,
		RowCount: rows,
		Columns:  make([]ColumnSnapshot, len(s.Columns)),
	}
	wantWords := (rows + 63) / 64
	for i := range s.Columns {
		cs := &s.Columns[i]
		oc := ColumnSnapshot{Col: cs.Col}
		// Bitmap: word-aligned slice, with the tail word masked so no
		// bits are set beyond the slice's last row.
		words := cs.NullWords[lo/64 : lo/64+wantWords]
		if tail := rows % 64; tail != 0 && wantWords > 0 {
			masked := make([]uint64, wantWords)
			copy(masked, words)
			masked[wantWords-1] &= (uint64(1) << uint(tail)) - 1
			words = masked
		}
		oc.NullWords = words
		nullAt := func(r int) bool { // r is slice-local
			return words[r/64]&(1<<uint(r%64)) != 0
		}
		// Exceptions in range, rebased to the slice.
		excAt := make(map[int]Value)
		for _, e := range cs.Exc {
			if e.Row >= lo && e.Row < hi {
				oc.Exc = append(oc.Exc, ExcEntry{Row: e.Row - lo, Val: e.Val})
				excAt[e.Row-lo] = e.Val
			}
		}
		switch cs.Col.Typ {
		case TInt:
			oc.Ints = cs.Ints[lo:hi]
		case TFloat:
			oc.Floats = cs.Floats[lo:hi]
		case TString:
			// Re-code against a local dictionary. Rows that store no
			// payload (NULL, or an exception of another type) keep code
			// 0 without interning, mirroring colVec.append.
			oc.Codes = make([]uint32, rows)
			local := make(map[string]uint32)
			for r := 0; r < rows; r++ {
				zero := nullAt(r)
				if e, ok := excAt[r]; ok {
					zero = e.Null || e.Typ != TString
				}
				if zero {
					continue
				}
				gc := cs.Codes[lo+r]
				if int(gc) >= len(cs.Dict) {
					return nil, fmt.Errorf("rel: slice of %s.%s: row %d code %d exceeds dictionary size %d",
						s.Name, cs.Col.Name, lo+r, gc, len(cs.Dict))
				}
				str := cs.Dict[gc]
				c, ok := local[str]
				if !ok {
					c = uint32(len(oc.Dict))
					oc.Dict = append(oc.Dict, str)
					local[str] = c
				}
				oc.Codes[r] = c
			}
		}
		out.Columns[i] = oc
	}
	return out, nil
}

// TableFromSnapshot rebuilds a Table from a snapshot, adopting the
// snapshot's slices as the table's backing store. Every structural
// invariant the append path maintains is re-checked — vector lengths,
// bitmap shape, dictionary canonicality, exception faithfulness — so a
// snapshot decoded from an untrusted byte stream either yields a table
// bit-identical to the one that produced it or a descriptive error,
// never a panic and never a silently wrong table. Byte accounting is
// recomputed from the values (not trusted from the source), so
// Bytes()/Pages() match what AppendRow would have accumulated.
func TableFromSnapshot(s *TableSnapshot) (*Table, error) {
	if s == nil {
		return nil, fmt.Errorf("rel: nil snapshot")
	}
	if s.Name == "" {
		return nil, fmt.Errorf("rel: snapshot has empty table name")
	}
	if s.RowCount < 0 {
		return nil, fmt.Errorf("rel: snapshot of %s has negative row count %d", s.Name, s.RowCount)
	}
	if s.Generation < 0 {
		return nil, fmt.Errorf("rel: snapshot of %s has negative generation %d", s.Name, s.Generation)
	}
	t := &Table{
		Name:   s.Name,
		Parent: s.Parent,
		nrows:  s.RowCount,
		gen:    s.Generation,
		colIdx: make(map[string]int, len(s.Columns)),
	}
	t.Columns = make([]Column, len(s.Columns))
	t.cols = make([]colVec, len(s.Columns))
	for i := range s.Columns {
		cs := &s.Columns[i]
		if cs.Col.Name == "" {
			return nil, fmt.Errorf("rel: snapshot of %s: column %d has empty name", s.Name, i)
		}
		if _, dup := t.colIdx[cs.Col.Name]; dup {
			return nil, fmt.Errorf("rel: snapshot of %s: duplicate column %s", s.Name, cs.Col.Name)
		}
		t.colIdx[cs.Col.Name] = i
		t.Columns[i] = cs.Col
		cv, err := colVecFromSnapshot(s.Name, cs, s.RowCount)
		if err != nil {
			return nil, err
		}
		t.cols[i] = cv
	}
	// Recompute byte accounting exactly as AppendRow would have.
	for r := 0; r < t.nrows; r++ {
		t.bytes += 8 // per-row overhead
		for ci := range t.cols {
			t.bytes += int64(t.cols[ci].value(r).Width())
		}
	}
	return t, nil
}

// ViewFromSnapshot adopts an already-validated snapshot as a read-only
// Table without re-running TableFromSnapshot's structural checks or its
// O(rows×cols) byte re-accounting. It exists for snapshots whose
// validity is established elsewhere — pager-cached chunks go through
// the full verification chain (CRC → bounds-checked decode →
// TableFromSnapshot) exactly once at fault time, and a budgeted scan
// re-adopting the same cached chunk on every visit must not pay the
// validation again. The returned table aliases the snapshot's vectors,
// must not be appended to, and reports Bytes() == 0 (chunk residency is
// accounted by the pager in on-disk bytes, not by the view).
func ViewFromSnapshot(s *TableSnapshot) *Table {
	t := &Table{
		Name:   s.Name,
		Parent: s.Parent,
		nrows:  s.RowCount,
		gen:    s.Generation,
		colIdx: make(map[string]int, len(s.Columns)),
	}
	t.Columns = make([]Column, len(s.Columns))
	t.cols = make([]colVec, len(s.Columns))
	for i := range s.Columns {
		cs := &s.Columns[i]
		t.colIdx[cs.Col.Name] = i
		t.Columns[i] = cs.Col
		set := 0
		for _, w := range cs.NullWords {
			set += bits.OnesCount64(w)
		}
		cv := colVec{
			typ:    cs.Col.Typ,
			nulls:  Bitmap{words: cs.NullWords, n: s.RowCount, set: set},
			ints:   cs.Ints,
			floats: cs.Floats,
			codes:  cs.Codes,
		}
		if cs.Col.Typ == TString {
			d := &Dict{strs: cs.Dict}
			if len(cs.Dict) > 0 {
				d.idx = make(map[string]uint32, len(cs.Dict))
				for c, ds := range cs.Dict {
					d.idx[ds] = uint32(c)
				}
			}
			cv.dict = d
		}
		if len(cs.Exc) > 0 {
			cv.exc = make(map[int]Value, len(cs.Exc))
			for _, e := range cs.Exc {
				cv.exc[e.Row] = e.Val
			}
		}
		t.cols[i] = cv
	}
	return t
}

// colVecFromSnapshot validates and adopts one column's vectors.
func colVecFromSnapshot(table string, cs *ColumnSnapshot, rows int) (colVec, error) {
	var zero colVec
	name := cs.Col.Name
	bad := func(format string, a ...any) (colVec, error) {
		return zero, fmt.Errorf("rel: snapshot of %s.%s: %s", table, name, fmt.Sprintf(format, a...))
	}
	switch cs.Col.Typ {
	case TInt, TFloat, TString:
	default:
		return bad("unknown column type %d", int(cs.Col.Typ))
	}

	// Null bitmap: exact word count, zero trailing bits, recomputed
	// set count.
	wantWords := (rows + 63) / 64
	if len(cs.NullWords) != wantWords {
		return bad("null bitmap has %d words, want %d for %d rows", len(cs.NullWords), wantWords, rows)
	}
	set := 0
	for _, w := range cs.NullWords {
		set += bits.OnesCount64(w)
	}
	if tail := rows % 64; tail != 0 {
		if cs.NullWords[wantWords-1]>>uint(tail) != 0 {
			return bad("null bitmap has bits set beyond row %d", rows)
		}
	}
	nulls := Bitmap{words: cs.NullWords, n: rows, set: set}

	// Typed payload vector: exactly one, matching the declared type.
	switch cs.Col.Typ {
	case TInt:
		if len(cs.Ints) != rows {
			return bad("int vector has %d entries, want %d", len(cs.Ints), rows)
		}
		if len(cs.Floats) != 0 || len(cs.Codes) != 0 || len(cs.Dict) != 0 {
			return bad("INT column carries payload vectors of another type")
		}
	case TFloat:
		if len(cs.Floats) != rows {
			return bad("float vector has %d entries, want %d", len(cs.Floats), rows)
		}
		if len(cs.Ints) != 0 || len(cs.Codes) != 0 || len(cs.Dict) != 0 {
			return bad("FLOAT column carries payload vectors of another type")
		}
	case TString:
		if len(cs.Codes) != rows {
			return bad("code vector has %d entries, want %d", len(cs.Codes), rows)
		}
		if len(cs.Ints) != 0 || len(cs.Floats) != 0 {
			return bad("VARCHAR column carries payload vectors of another type")
		}
	}

	// Exceptions: strictly ascending rows in range, null bit agreeing
	// with the exception value, zeroed payload slot underneath, and a
	// value that genuinely does not round-trip (otherwise append would
	// not have recorded it, and re-encoding would not be stable).
	excAt := make(map[int]Value, len(cs.Exc))
	prev := -1
	for _, e := range cs.Exc {
		if e.Row <= prev {
			return bad("exception rows not strictly ascending (%d after %d)", e.Row, prev)
		}
		if e.Row < 0 || e.Row >= rows {
			return bad("exception row %d out of range [0,%d)", e.Row, rows)
		}
		prev = e.Row
		if nulls.Get(e.Row) != e.Val.Null {
			return bad("exception at row %d: null bit %v disagrees with value nullness %v",
				e.Row, nulls.Get(e.Row), e.Val.Null)
		}
		excAt[e.Row] = e.Val
	}

	// Dictionary canonicality and per-row payload invariants, modeled
	// exactly on colVec.append: a row stores its payload in the vector
	// when the appended value is non-NULL and of the declared type
	// (even exception rows — an exception whose Typ matches carries
	// extra fields, not a different payload), and a zero slot
	// otherwise; dictionary entries appear in first-appearance order
	// with no unused or duplicate entries. Enforcing the same shape
	// here makes snapshot->table->snapshot the identity, which the
	// golden-format and fuzz round-trip tests rely on.
	//
	// stored returns the payload the vector must hold at row r: the
	// exception value's payload when its type matches, the zero value
	// for NULL/mismatched rows, and ok=false for plain rows (vector
	// payload is authoritative).
	stored := func(r int) (v Value, zero bool, constrained bool) {
		if e, exc := excAt[r]; exc {
			if !e.Null && e.Typ == cs.Col.Typ {
				return e, false, true
			}
			return Value{}, true, true
		}
		if nulls.Get(r) {
			return Value{}, true, true
		}
		return Value{}, false, false
	}
	switch cs.Col.Typ {
	case TInt:
		for r := 0; r < rows; r++ {
			if v, zero, ok := stored(r); ok {
				want := v.I
				if zero {
					want = 0
				}
				if cs.Ints[r] != want {
					return bad("row %d payload slot is %d, want %d", r, cs.Ints[r], want)
				}
			}
		}
	case TFloat:
		for r := 0; r < rows; r++ {
			if v, zero, ok := stored(r); ok {
				want := math.Float64bits(v.F)
				if zero {
					want = 0
				}
				if math.Float64bits(cs.Floats[r]) != want {
					return bad("row %d payload slot is %v, want bits %x", r, cs.Floats[r], want)
				}
			}
		}
	case TString:
		seen := make(map[string]bool, len(cs.Dict))
		for _, ds := range cs.Dict {
			if seen[ds] {
				return bad("dictionary entry %q duplicated", ds)
			}
			seen[ds] = true
		}
		next := uint32(0) // next first-appearance code expected
		for r := 0; r < rows; r++ {
			v, zero, constrained := stored(r)
			if constrained && zero {
				if cs.Codes[r] != 0 {
					return bad("row %d is NULL or type-mismatched but code slot is %d, want 0", r, cs.Codes[r])
				}
				continue
			}
			// Plain rows and string-typed exception rows both intern
			// their string, so both participate in dictionary order.
			c := cs.Codes[r]
			if c > next || int(c) >= len(cs.Dict) {
				return bad("row %d has code %d out of first-appearance order (next new code %d, dict size %d)",
					r, c, next, len(cs.Dict))
			}
			if c == next {
				next++
			}
			if constrained && cs.Dict[c] != v.S {
				return bad("row %d exception string %q disagrees with dictionary entry %q", r, v.S, cs.Dict[c])
			}
		}
		if int(next) != len(cs.Dict) {
			return bad("dictionary has %d entries but only %d are referenced", len(cs.Dict), next)
		}
	}

	cv := colVec{typ: cs.Col.Typ, nulls: nulls, ints: cs.Ints, floats: cs.Floats, codes: cs.Codes}
	if cs.Col.Typ == TString {
		d := &Dict{strs: cs.Dict}
		if len(cs.Dict) > 0 {
			d.idx = make(map[string]uint32, len(cs.Dict))
			for i, ds := range cs.Dict {
				d.idx[ds] = uint32(i)
			}
		}
		cv.dict = d
	}
	if len(excAt) > 0 {
		cv.exc = excAt
	}
	// Faithfulness: an exception value must differ from what the
	// vectors materialize (checked after cv exists so materialize can
	// run). A round-tripping "exception" would re-encode differently
	// than the append path produces.
	for row, v := range excAt {
		if v.BitEqual(cv.materialize(row)) {
			return bad("exception at row %d is bit-equal to the vector value %v; append would not have recorded it", row, v)
		}
	}
	return cv, nil
}
