// Package rel is the relational storage substrate: typed values,
// columns, tables, and databases that the shredded XML data is loaded
// into. It plays the role of the storage layer of the RDBMS the paper
// runs on, with page-based size accounting so that cost models and
// storage bounds behave like a disk-resident system.
package rel

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// PageSize is the accounting page size in bytes (SQL Server uses 8 KB
// pages; the cost model works in these units).
const PageSize = 8192

// Type is a column type.
type Type int

const (
	// TInt is a 64-bit integer column.
	TInt Type = iota
	// TFloat is a 64-bit float column.
	TFloat
	// TString is a variable-width string column.
	TString
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "VARCHAR"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Value is a nullable typed value.
type Value struct {
	Null bool
	Typ  Type
	I    int64
	F    float64
	S    string
}

// Int builds an integer value.
func Int(i int64) Value { return Value{Typ: TInt, I: i} }

// Float builds a float value.
func Float(f float64) Value { return Value{Typ: TFloat, F: f} }

// Str builds a string value.
func Str(s string) Value { return Value{Typ: TString, S: s} }

// NullOf builds a NULL of the given type.
func NullOf(t Type) Value { return Value{Typ: t, Null: true} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Null }

// Compare orders two values; NULL sorts before every non-NULL, and NaN
// sorts after NULL but before every other float (see cmpFloat), so the
// order is total. Values of different numeric types compare
// numerically; comparing a string with a number compares the string
// form.
func (v Value) Compare(o Value) int {
	switch {
	case v.Null && o.Null:
		return 0
	case v.Null:
		return -1
	case o.Null:
		return 1
	}
	if v.Typ == o.Typ {
		switch v.Typ {
		case TInt:
			return cmpInt(v.I, o.I)
		case TFloat:
			return cmpFloat(v.F, o.F)
		default:
			return strings.Compare(v.S, o.S)
		}
	}
	// Mixed numeric types compare as floats.
	if v.Typ != TString && o.Typ != TString {
		return cmpFloat(v.AsFloat(), o.AsFloat())
	}
	return strings.Compare(v.String(), o.String())
}

// Equal reports value equality (NULL equals NULL for key purposes, and
// NaN equals NaN — Compare is a total order, so Equal is a proper
// equivalence relation; before the cmpFloat fix NaN "equalled" every
// number).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// BitEqual reports strict representational equality: same nullness,
// type, and payload, with float payloads compared bit-for-bit so NaN
// equals NaN (Go's == on a struct with a NaN float field is always
// false). The differential tests use it to assert executor outputs are
// bit-identical.
func (v Value) BitEqual(o Value) bool {
	return v.Null == o.Null && v.Typ == o.Typ && v.I == o.I && v.S == o.S &&
		math.Float64bits(v.F) == math.Float64bits(o.F)
}

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() float64 {
	switch v.Typ {
	case TInt:
		return float64(v.I)
	case TFloat:
		return v.F
	default:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	}
}

// Width returns the accounting width of the value in bytes: 8 for
// numerics, string length (min 1) for strings, 1 for NULL.
func (v Value) Width() int {
	if v.Null {
		return 1
	}
	switch v.Typ {
	case TString:
		if len(v.S) == 0 {
			return 1
		}
		return len(v.S)
	default:
		return 8
	}
}

// String renders the value; NULL renders as "NULL".
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Typ {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}

// SQLLiteral renders the value as a SQL literal.
func (v Value) SQLLiteral() string {
	if v.Null {
		return "NULL"
	}
	if v.Typ == TString {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// Coerce converts the value to the given column type where a sensible
// conversion exists (e.g. the paper's quoted numbers: year = "1998").
func (v Value) Coerce(t Type) Value {
	if v.Null || v.Typ == t {
		return Value{Null: v.Null, Typ: t, I: v.I, F: v.F, S: v.S}
	}
	switch t {
	case TInt:
		switch v.Typ {
		case TFloat:
			return Int(int64(v.F))
		case TString:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64); err == nil {
				return Int(i)
			}
		}
	case TFloat:
		switch v.Typ {
		case TInt:
			return Float(float64(v.I))
		case TString:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64); err == nil {
				return Float(f)
			}
		}
	case TString:
		return Str(v.String())
	}
	return NullOf(t)
}

// CompareInts and CompareFloats expose the scalar orders Compare is
// built on, so the engine's columnar filter kernels stay bit-consistent
// with Value comparisons (including the NaN total order) without
// boxing a Value per cell.
func CompareInts(a, b int64) int { return cmpInt(a, b) }

// CompareFloats orders float64s with the same total order cmpFloat
// gives Compare: NaN before every other float, NaN == NaN, -0.0 == 0.0.
func CompareFloats(a, b float64) int { return cmpFloat(a, b) }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpFloat is a total order over float64: NaN sorts before every other
// float (after NULL, which Compare handles first) and equals itself.
// The naive <,> comparison returned 0 for any comparison involving NaN,
// which made NaN "equal" every number and handed sort.SliceStable an
// inconsistent less-func. -0.0 and +0.0 compare equal, like SQL.
func cmpFloat(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
