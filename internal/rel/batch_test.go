package rel

import (
	"fmt"
	"strings"
	"testing"
)

func TestBatchAppendConcatArenaStable(t *testing.T) {
	b := NewBatch(2)
	var lefts [][]Value
	for i := 0; i < BatchSize; i++ {
		lefts = append(lefts, []Value{Int(int64(i))})
	}
	right := []Value{Str("r")}
	for i := 0; i < BatchSize; i++ {
		b.AppendConcat(lefts[i], right)
	}
	if !b.Full() {
		t.Fatal("batch should be full")
	}
	// Every earlier row must still see its own values: AppendConcat may
	// never reallocate the arena mid-batch.
	for i, si := range b.Sel {
		row := b.Rows[si]
		if len(row) != 2 || row[0].I != int64(i) || row[1].S != "r" {
			t.Fatalf("row %d corrupted: %v", i, row)
		}
	}
}

func TestBatchFilterSelPreservesOrder(t *testing.T) {
	b := NewBatch(0)
	for i := 0; i < 10; i++ {
		b.AppendRef([]Value{Int(int64(i))})
	}
	b.FilterSel(func(r []Value) bool { return r[0].I%2 == 0 })
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	want := []int64{0, 2, 4, 6, 8}
	for i, si := range b.Sel {
		if b.Rows[si][0].I != want[i] {
			t.Fatalf("filtered order wrong at %d: %v", i, b.Rows[si])
		}
	}
	// A second filter composes over the compacted selection.
	b.FilterSel(func(r []Value) bool { return r[0].I > 2 })
	if got := fmt.Sprint(b.Sel); got != "[4 6 8]" {
		t.Fatalf("Sel after second filter = %s", got)
	}
}

// mustPanic runs f and fails the test unless it panics with a message
// containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Fatalf("panic %q, want one containing %q", msg, want)
		}
	}()
	f()
}

// TestBatchAppendConcatContract pins the arena-safety panics: a
// width-mismatched concat or an append past BatchSize would silently
// reallocate the arena and dangle every previously returned row slice,
// so both must refuse loudly instead.
func TestBatchAppendConcatContract(t *testing.T) {
	mustPanic(t, "concat width 1+1 != batch width 3", func() {
		b := NewBatch(3)
		b.AppendConcat([]Value{Int(1)}, []Value{Int(2)})
	})
	mustPanic(t, "arena append on a full batch", func() {
		b := NewBatch(1)
		for i := 0; i <= BatchSize; i++ {
			b.AppendConcat([]Value{Int(int64(i))}, nil)
		}
	})
	mustPanic(t, "arena append on a batch created without an arena width", func() {
		b := NewBatch(0)
		b.AppendConcat(nil, nil)
	})
	mustPanic(t, "arena append on a batch created without an arena width", func() {
		b := NewBatch(0)
		b.AppendArena()
	})
	// A width-matching concat right at the boundary still works: the
	// contract rejects the row after the last, not the last itself.
	b := NewBatch(2)
	for i := 0; i < BatchSize; i++ {
		b.AppendConcat([]Value{Int(int64(i))}, []Value{Str("x")})
	}
	if !b.Full() || b.Len() != BatchSize {
		t.Fatalf("Full=%v Len=%d after %d appends", b.Full(), b.Len(), BatchSize)
	}
}

// TestBatchAppendArena: the returned chunk is cleared, registered as a
// live row, and stable across subsequent appends.
func TestBatchAppendArena(t *testing.T) {
	b := NewBatch(2)
	first := b.AppendArena()
	first[0], first[1] = Int(1), Str("a")
	for i := 0; i < 100; i++ {
		chunk := b.AppendArena()
		for j, v := range chunk {
			if (v != Value{}) {
				t.Fatalf("append %d slot %d not cleared: %v", i, j, v)
			}
		}
		chunk[0] = Int(int64(i))
	}
	if first[0].I != 1 || first[1].S != "a" {
		t.Fatalf("first arena row moved: %v", first)
	}
	if got := b.Rows[b.Sel[0]]; &got[0] != &first[0] {
		t.Fatal("Sel[0] does not reference the first arena chunk")
	}
}

func TestBatchResetReuse(t *testing.T) {
	b := NewBatch(3)
	b.AppendConcat([]Value{Int(1), Int(2)}, []Value{Str("x")})
	b.Reset()
	if b.Len() != 0 || len(b.Rows) != 0 {
		t.Fatal("Reset did not empty the batch")
	}
	b.AppendConcat([]Value{Int(7), Int(8)}, []Value{Str("y")})
	row := b.Rows[b.Sel[0]]
	if row[0].I != 7 || row[2].S != "y" {
		t.Fatalf("row after reset = %v", row)
	}
	if b.Width() != 3 {
		t.Fatalf("Width = %d, want 3", b.Width())
	}
}
