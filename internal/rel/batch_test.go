package rel

import (
	"fmt"
	"testing"
)

func TestBatchAppendConcatArenaStable(t *testing.T) {
	b := NewBatch(2)
	var lefts [][]Value
	for i := 0; i < BatchSize; i++ {
		lefts = append(lefts, []Value{Int(int64(i))})
	}
	right := []Value{Str("r")}
	for i := 0; i < BatchSize; i++ {
		b.AppendConcat(lefts[i], right)
	}
	if !b.Full() {
		t.Fatal("batch should be full")
	}
	// Every earlier row must still see its own values: AppendConcat may
	// never reallocate the arena mid-batch.
	for i, si := range b.Sel {
		row := b.Rows[si]
		if len(row) != 2 || row[0].I != int64(i) || row[1].S != "r" {
			t.Fatalf("row %d corrupted: %v", i, row)
		}
	}
}

func TestBatchFilterSelPreservesOrder(t *testing.T) {
	b := NewBatch(0)
	for i := 0; i < 10; i++ {
		b.AppendRef([]Value{Int(int64(i))})
	}
	b.FilterSel(func(r []Value) bool { return r[0].I%2 == 0 })
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	want := []int64{0, 2, 4, 6, 8}
	for i, si := range b.Sel {
		if b.Rows[si][0].I != want[i] {
			t.Fatalf("filtered order wrong at %d: %v", i, b.Rows[si])
		}
	}
	// A second filter composes over the compacted selection.
	b.FilterSel(func(r []Value) bool { return r[0].I > 2 })
	if got := fmt.Sprint(b.Sel); got != "[4 6 8]" {
		t.Fatalf("Sel after second filter = %s", got)
	}
}

func TestBatchResetReuse(t *testing.T) {
	b := NewBatch(3)
	b.AppendConcat([]Value{Int(1), Int(2)}, []Value{Str("x")})
	b.Reset()
	if b.Len() != 0 || len(b.Rows) != 0 {
		t.Fatal("Reset did not empty the batch")
	}
	b.AppendConcat([]Value{Int(7), Int(8)}, []Value{Str("y")})
	row := b.Rows[b.Sel[0]]
	if row[0].I != 7 || row[2].S != "y" {
		t.Fatalf("row after reset = %v", row)
	}
	if b.Width() != 3 {
		t.Fatalf("Width = %d, want 3", b.Width())
	}
}
