package rel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBitmapRoundTrip: a bitmap reproduces exactly the bit sequence
// appended to it, across word boundaries, and its set count matches.
func TestBitmapRoundTrip(t *testing.T) {
	prop := func(bits []bool) bool {
		var b Bitmap
		want := 0
		for _, v := range bits {
			b.Append(v)
			if v {
				want++
			}
		}
		if b.Len() != len(bits) || b.SetCount() != want || b.Any() != (want > 0) {
			return false
		}
		for i, v := range bits {
			if b.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Deterministic word-boundary case: 130 bits straddling three words.
	var b Bitmap
	for i := 0; i < 130; i++ {
		b.Append(i%3 == 0)
	}
	for i := 0; i < 130; i++ {
		if b.Get(i) != (i%3 == 0) {
			t.Fatalf("bit %d = %v", i, b.Get(i))
		}
	}
}

// TestDictIdentity: decode(encode(s)) == s for any string stream, codes
// are stable as the dictionary grows, and Code never interns.
func TestDictIdentity(t *testing.T) {
	prop := func(strs []string) bool {
		var d Dict
		codes := make([]uint32, len(strs))
		for i, s := range strs {
			codes[i] = d.Intern(s)
		}
		for i, s := range strs {
			if d.Str(codes[i]) != s {
				return false
			}
			if c, ok := d.Code(s); !ok || c != codes[i] {
				return false
			}
		}
		if _, ok := d.Code("\x00never-interned\x00"); ok {
			return false
		}
		return d.Len() <= len(strs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomValue draws a value for column type ct, sometimes of the wrong
// type or with special float payloads, so the exception slot and the
// bit-faithfulness contract are exercised together.
func randomValue(r *rand.Rand, ct Type) Value {
	switch r.Intn(10) {
	case 0:
		return NullOf(ct)
	case 1:
		// Wrong-typed value: lands in the exception slot.
		switch ct {
		case TInt:
			return Str("7")
		case TFloat:
			return Int(3)
		default:
			return Float(1.5)
		}
	}
	switch ct {
	case TInt:
		return Int(r.Int63n(100) - 50)
	case TFloat:
		switch r.Intn(8) {
		case 0:
			return Float(math.NaN())
		case 1:
			return Float(math.Inf(1))
		case 2:
			return Float(math.Copysign(0, -1))
		default:
			return Float(float64(r.Intn(20)) / 4)
		}
	default:
		return Str(fmt.Sprintf("s-%d", r.Intn(12)))
	}
}

// TestTableBitFaithful: whatever mix of values a table ingests —
// wrong-typed cells, NaN, -0.0, NULLs — ValueAt, ReadRowInto and Rows
// return values bit-identical to what AppendRow stored, and the typed
// accessors refuse (ok=false) exactly the columns that hold exceptions.
func TestTableBitFaithful(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	cols := []Column{
		{Name: "ID", Typ: TInt},
		{Name: "f", Typ: TFloat, Nullable: true},
		{Name: "s", Typ: TString, Nullable: true},
	}
	tb := NewTable("bitfaithful", cols)
	var want [][]Value
	for i := 0; i < 500; i++ {
		row := []Value{Int(int64(i)), randomValue(r, TFloat), randomValue(r, TString)}
		want = append(want, append([]Value(nil), row...))
		tb.AppendRow(row)
		// The appended slice may be reused by the caller.
		row[0] = Str("clobbered")
	}
	rows := tb.Rows()
	scratch := make([]Value, len(cols))
	for i, wr := range want {
		tb.ReadRowInto(scratch, i)
		for j := range wr {
			if !tb.ValueAt(i, j).BitEqual(wr[j]) {
				t.Fatalf("ValueAt(%d,%d) = %v, want %v", i, j, tb.ValueAt(i, j), wr[j])
			}
			if !rows[i][j].BitEqual(wr[j]) {
				t.Fatalf("Rows()[%d][%d] = %v, want %v", i, j, rows[i][j], wr[j])
			}
			if !scratch[j].BitEqual(wr[j]) {
				t.Fatalf("ReadRowInto(%d)[%d] = %v, want %v", i, j, scratch[j], wr[j])
			}
			if tb.IsNullAt(i, j) != wr[j].Null {
				t.Fatalf("IsNullAt(%d,%d) = %v, want %v", i, j, tb.IsNullAt(i, j), wr[j].Null)
			}
		}
	}
	// Columns 1 and 2 received wrong-typed values, so the typed
	// accessors must refuse them; column 0 is clean.
	if _, _, ok := tb.IntCol(0); !ok {
		t.Error("IntCol(0) refused a clean column")
	}
	if _, _, ok := tb.FloatCol(1); ok {
		t.Error("FloatCol(1) served a column with exceptions")
	}
	if _, _, _, ok := tb.StrCol(2); ok {
		t.Error("StrCol(2) served a column with exceptions")
	}
	if _, _, ok := tb.IntCol(1); ok {
		t.Error("IntCol(1) served a TFloat column")
	}
	for ci := range cols {
		if err := tb.cols[ci].lenCheck(tb.RowCount()); err != nil {
			t.Error(err)
		}
	}
}

// TestTableBytesAccounting: the columnar table accounts exactly what
// the row store accounted — sum of Value.Width() over all cells plus 8
// bytes per row — so mapping-enumeration size estimates are unchanged.
func TestTableBytesAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cols := []Column{
		{Name: "ID", Typ: TInt},
		{Name: "f", Typ: TFloat, Nullable: true},
		{Name: "s", Typ: TString, Nullable: true},
	}
	tb := NewTable("acct", cols)
	var want int64
	for i := 0; i < 300; i++ {
		row := []Value{Int(int64(i)), randomValue(r, TFloat), randomValue(r, TString)}
		for _, v := range row {
			want += int64(v.Width())
		}
		want += 8
		tb.AppendRow(row)
		if tb.Bytes() != want {
			t.Fatalf("after %d rows: Bytes() = %d, want %d", i+1, tb.Bytes(), want)
		}
	}
	if tb.Pages() != (want+PageSize-1)/PageSize {
		t.Fatalf("Pages() = %d, want %d", tb.Pages(), (want+PageSize-1)/PageSize)
	}
}

// TestSortByIDPermutes: sorting by ID moves whole rows — exception
// cells, NULL bits and dictionary codes travel with their row — and
// bumps the generation.
func TestSortByIDPermutes(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	cols := []Column{
		{Name: "ID", Typ: TInt},
		{Name: "f", Typ: TFloat, Nullable: true},
		{Name: "s", Typ: TString, Nullable: true},
	}
	tb := NewTable("sorted", cols)
	byID := make(map[int64][]Value)
	perm := rand.New(rand.NewSource(7)).Perm(200)
	for _, id := range perm {
		row := []Value{Int(int64(id)), randomValue(r, TFloat), randomValue(r, TString)}
		byID[int64(id)] = append([]Value(nil), row...)
		tb.AppendRow(row)
	}
	genBefore := tb.Generation()
	tb.SortByID()
	if tb.Generation() == genBefore {
		t.Fatal("SortByID did not bump the generation")
	}
	rows := tb.Rows()
	for i, row := range rows {
		if row[0].I != int64(i) {
			t.Fatalf("row %d has ID %d after sort", i, row[0].I)
		}
		for j, v := range byID[row[0].I] {
			if !row[j].BitEqual(v) {
				t.Fatalf("row ID %d col %d = %v, want %v", row[0].I, j, row[j], v)
			}
		}
	}
}

// TestRowsCachePerGeneration: Rows() is cached until the table mutates,
// and a superseded cache still describes the old generation unchanged.
func TestRowsCachePerGeneration(t *testing.T) {
	tb := NewTable("gen", []Column{{Name: "ID", Typ: TInt}})
	tb.AppendRow([]Value{Int(1)})
	r1 := tb.Rows()
	if r2 := tb.Rows(); &r1[0] != &r2[0] {
		t.Fatal("Rows() rebuilt the cache without a mutation")
	}
	tb.AppendRow([]Value{Int(2)})
	r3 := tb.Rows()
	if len(r1) != 1 || r1[0][0].I != 1 {
		t.Fatalf("old generation's rows mutated: %v", r1)
	}
	if len(r3) != 2 {
		t.Fatalf("new generation has %d rows, want 2", len(r3))
	}
}
