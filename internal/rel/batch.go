package rel

import "fmt"

// BatchSize is the number of tuples an executor batch holds. Batches
// are the unit of work of the pipelined executor: operators pass
// fixed-size blocks of tuples with a selection vector instead of
// materializing whole intermediates (MonetDB/X100-style vectorized
// execution at row granularity).
const BatchSize = 1024

// Batch is a fixed-capacity block of combined tuples flowing through
// the execution pipeline. Rows either reference external storage
// (table heaps, cached structures) via AppendRef, or live in the
// batch's own arena via AppendConcat — one contiguous backing slice
// per batch, so joins cost one arena write instead of one allocation
// per output row. Sel is the selection vector: the indices of live
// rows in pipeline order. Filters compact Sel in place and never move
// row data.
type Batch struct {
	// Rows holds up to BatchSize tuples; only indices listed in Sel are
	// live.
	Rows [][]Value
	// Sel is the selection vector over Rows.
	Sel []int32

	arena []Value
	width int
}

// NewBatch creates an empty batch. A non-zero width pre-allocates an
// arena able to back BatchSize owned rows of that width, which
// AppendConcat then fills without ever reallocating (reallocation
// would invalidate previously appended row slices).
func NewBatch(width int) *Batch {
	b := &Batch{
		Rows:  make([][]Value, 0, BatchSize),
		Sel:   make([]int32, 0, BatchSize),
		width: width,
	}
	if width > 0 {
		b.arena = make([]Value, 0, BatchSize*width)
	}
	return b
}

// Width returns the arena row width the batch was created with (0 for
// reference-only batches).
func (b *Batch) Width() int { return b.width }

// Reset empties the batch for reuse, keeping its buffers.
func (b *Batch) Reset() {
	b.Rows = b.Rows[:0]
	b.Sel = b.Sel[:0]
	b.arena = b.arena[:0]
}

// Len returns the number of live (selected) rows.
func (b *Batch) Len() int { return len(b.Sel) }

// Full reports whether the batch holds BatchSize rows.
func (b *Batch) Full() bool { return len(b.Rows) >= BatchSize }

// AppendRef appends a live row that references external storage.
func (b *Batch) AppendRef(row []Value) {
	b.Sel = append(b.Sel, int32(len(b.Rows)))
	b.Rows = append(b.Rows, row)
}

// AppendConcat appends the live combined tuple left++right, copied
// into the batch arena. len(left)+len(right) must equal the batch
// width and the batch must not be Full; violations panic, because the
// append would otherwise silently reallocate the arena and invalidate
// every previously appended row slice.
func (b *Batch) AppendConcat(left, right []Value) {
	if len(left)+len(right) != b.width {
		panic(fmt.Sprintf("rel: concat width %d+%d != batch width %d", len(left), len(right), b.width))
	}
	chunk := b.appendArenaRow()
	copy(chunk, left)
	copy(chunk[len(left):], right)
}

// AppendArena registers the next live row backed by a cleared arena
// chunk of the batch width and returns the chunk for the caller to
// fill. The batch must not be Full. The executor's columnar sink uses
// it to project straight from column vectors without staging a row.
func (b *Batch) AppendArena() []Value {
	chunk := b.appendArenaRow()
	for i := range chunk {
		chunk[i] = Value{}
	}
	return chunk
}

func (b *Batch) appendArenaRow() []Value {
	if b.Full() {
		panic("rel: arena append on a full batch")
	}
	if b.width == 0 {
		panic("rel: arena append on a batch created without an arena width")
	}
	n := len(b.arena)
	b.arena = b.arena[:n+b.width]
	b.Sel = append(b.Sel, int32(len(b.Rows)))
	b.Rows = append(b.Rows, b.arena[n:n+b.width:n+b.width])
	return b.arena[n : n+b.width]
}

// FilterSel compacts the selection vector in place, keeping the rows
// for which keep returns true. Row data is not moved, so relative
// order is preserved.
func (b *Batch) FilterSel(keep func(row []Value) bool) {
	live := b.Sel[:0]
	for _, si := range b.Sel {
		if keep(b.Rows[si]) {
			live = append(live, si)
		}
	}
	b.Sel = live
}
