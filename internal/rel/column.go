package rel

import "fmt"

// This file is the columnar storage layer under Table: one typed vector
// per column (int64, float64, or dictionary-coded strings) plus a null
// bitmap, with a sparse exception slot for the rare value whose
// representation does not round-trip through the vector (e.g. a value
// appended with a type different from the declared column type). The
// executor's hot loops read the vectors directly; everything else goes
// through the row-materializing accessors on Table.

// Bitmap is an append-only bitmap with one bit per row (set = NULL).
type Bitmap struct {
	words []uint64
	n     int
	set   int
}

// Append adds one bit.
func (b *Bitmap) Append(v bool) {
	if b.n%64 == 0 {
		b.words = append(b.words, 0)
	}
	if v {
		b.words[b.n/64] |= 1 << uint(b.n%64)
		b.set++
	}
	b.n++
}

// Get reports bit i.
func (b *Bitmap) Get(i int) bool {
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

// Len returns the number of bits appended.
func (b *Bitmap) Len() int { return b.n }

// SetCount returns the number of set bits.
func (b *Bitmap) SetCount() int { return b.set }

// Any reports whether any bit is set; filter kernels skip the per-row
// null check entirely on all-valid columns.
func (b *Bitmap) Any() bool { return b.set > 0 }

// permute rebuilds the bitmap so that new bit i = old bit perm[i].
func (b *Bitmap) permute(perm []int) {
	nb := Bitmap{words: make([]uint64, 0, len(b.words))}
	for _, p := range perm {
		nb.Append(b.Get(p))
	}
	*b = nb
}

// Dict is a per-column string dictionary: distinct strings in first-
// appearance order, so codes are stable as the column grows and
// decode(encode(s)) == s exactly.
type Dict struct {
	strs []string
	idx  map[string]uint32
}

// Intern returns the code for s, adding it to the dictionary if new.
func (d *Dict) Intern(s string) uint32 {
	if c, ok := d.idx[s]; ok {
		return c
	}
	if d.idx == nil {
		d.idx = make(map[string]uint32)
	}
	c := uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.idx[s] = c
	return c
}

// Code looks up the code for s without interning.
func (d *Dict) Code(s string) (uint32, bool) {
	c, ok := d.idx[s]
	return c, ok
}

// Str decodes a code.
func (d *Dict) Str(c uint32) string { return d.strs[c] }

// Strs returns the dictionary entries in code order. The slice is the
// dictionary's backing store — callers must not modify it.
func (d *Dict) Strs() []string { return d.strs }

// Len returns the number of distinct entries.
func (d *Dict) Len() int { return len(d.strs) }

// colVec is the typed storage of one column.
type colVec struct {
	typ    Type
	nulls  Bitmap
	ints   []int64   // TInt
	floats []float64 // TFloat
	codes  []uint32  // TString: dictionary codes
	dict   *Dict
	// exc holds, by row, the exact appended Value for rows whose value
	// does not round-trip through the typed vector (wrong-typed values,
	// NULLs carrying a payload, ...). In practice the shredder coerces
	// everything to the declared type and this map stays nil; it exists
	// so columnar storage is bit-faithful to the row store for any
	// caller.
	exc map[int]Value
}

func newColVec(t Type) colVec {
	cv := colVec{typ: t}
	if t == TString {
		cv.dict = &Dict{}
	}
	return cv
}

// append stores v as the next row of the column.
func (cv *colVec) append(v Value) {
	row := cv.nulls.Len()
	cv.nulls.Append(v.Null)
	switch cv.typ {
	case TInt:
		if !v.Null && v.Typ == TInt {
			cv.ints = append(cv.ints, v.I)
		} else {
			cv.ints = append(cv.ints, 0)
		}
	case TFloat:
		if !v.Null && v.Typ == TFloat {
			cv.floats = append(cv.floats, v.F)
		} else {
			cv.floats = append(cv.floats, 0)
		}
	case TString:
		if !v.Null && v.Typ == TString {
			cv.codes = append(cv.codes, cv.dict.Intern(v.S))
		} else {
			cv.codes = append(cv.codes, 0)
		}
	}
	if !v.BitEqual(cv.materialize(row)) {
		if cv.exc == nil {
			cv.exc = make(map[int]Value)
		}
		cv.exc[row] = v
	}
}

// materialize rebuilds the canonical Value of one row from the vectors,
// ignoring the exception slot.
func (cv *colVec) materialize(row int) Value {
	if cv.nulls.Get(row) {
		return NullOf(cv.typ)
	}
	switch cv.typ {
	case TInt:
		return Int(cv.ints[row])
	case TFloat:
		return Float(cv.floats[row])
	default:
		// A non-null, non-string value appended to a string column
		// stores code 0 without interning anything; with an empty
		// dictionary there is nothing to decode, so return a
		// placeholder. The appended value's type differs, so BitEqual
		// still fails and the row lands in the exception slot — the
		// placeholder is never served through value().
		if int(cv.codes[row]) >= cv.dict.Len() {
			return Str("")
		}
		return Str(cv.dict.Str(cv.codes[row]))
	}
}

// value returns the exact Value appended at row.
func (cv *colVec) value(row int) Value {
	if cv.exc != nil {
		if v, ok := cv.exc[row]; ok {
			return v
		}
	}
	return cv.materialize(row)
}

// clean reports whether every row round-trips through the typed vector;
// kernels require it before reading the vectors directly.
func (cv *colVec) clean() bool { return len(cv.exc) == 0 }

// permute reorders the column so that new row i = old row perm[i].
func (cv *colVec) permute(perm []int) {
	switch cv.typ {
	case TInt:
		ni := make([]int64, len(perm))
		for i, p := range perm {
			ni[i] = cv.ints[p]
		}
		cv.ints = ni
	case TFloat:
		nf := make([]float64, len(perm))
		for i, p := range perm {
			nf[i] = cv.floats[p]
		}
		cv.floats = nf
	case TString:
		nc := make([]uint32, len(perm))
		for i, p := range perm {
			nc[i] = cv.codes[p]
		}
		cv.codes = nc
	}
	cv.nulls.permute(perm)
	if cv.exc != nil {
		inv := make(map[int]int, len(perm)) // old row -> new row
		for i, p := range perm {
			inv[p] = i
		}
		ne := make(map[int]Value, len(cv.exc))
		for old, v := range cv.exc {
			ne[inv[old]] = v
		}
		cv.exc = ne
	}
}

// sanity check used by tests.
func (cv *colVec) lenCheck(n int) error {
	var dn int
	switch cv.typ {
	case TInt:
		dn = len(cv.ints)
	case TFloat:
		dn = len(cv.floats)
	default:
		dn = len(cv.codes)
	}
	if dn != n || cv.nulls.Len() != n {
		return fmt.Errorf("rel: column vector length %d / bitmap %d, want %d", dn, cv.nulls.Len(), n)
	}
	return nil
}
