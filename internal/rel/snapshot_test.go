package rel

import (
	"math"
	"math/rand"
	"testing"
)

// snapshotTable builds a table exercising every storage shape: all
// three types, NULLs, duplicate strings, non-finite floats, and
// bit-faithfulness exceptions (values appended with a type other than
// the declared column type).
func snapshotTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("snap", []Column{
		{Name: IDColumn, Typ: TInt},
		{Name: PIDColumn, Typ: TInt, Nullable: true},
		{Name: "title", Typ: TString, Nullable: true, LeafID: 7},
		{Name: "score", Typ: TFloat, Nullable: true, LeafID: 9, Occurrence: 1},
	})
	rows := [][]Value{
		{Int(1), NullOf(TInt), Str("alpha"), Float(1.5)},
		{Int(2), Int(1), Str("beta"), Float(math.NaN())},
		{Int(3), Int(1), Str("alpha"), Float(math.Copysign(0, -1))},
		{Int(4), Int(2), NullOf(TString), Float(math.Inf(1))},
		{Int(5), Int(2), Str(""), NullOf(TFloat)},
		// Exceptions: wrong-typed appends that the vectors cannot
		// represent bit-faithfully.
		{Int(6), Int(1), Int(42), Str("4.25")},
		{Int(7), Int(3), Str("gamma"), NullOf(TString)},
	}
	for _, r := range rows {
		tbl.AppendRow(r)
	}
	return tbl
}

func tablesBitEqual(t *testing.T, a, b *Table) {
	t.Helper()
	if a.Name != b.Name || a.Parent != b.Parent {
		t.Fatalf("identity differs: %q/%q vs %q/%q", a.Name, a.Parent, b.Name, b.Parent)
	}
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("column count %d vs %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			t.Fatalf("column %d differs: %+v vs %+v", i, a.Columns[i], b.Columns[i])
		}
	}
	if a.RowCount() != b.RowCount() {
		t.Fatalf("row count %d vs %d", a.RowCount(), b.RowCount())
	}
	if a.Generation() != b.Generation() {
		t.Fatalf("generation %d vs %d", a.Generation(), b.Generation())
	}
	if a.Bytes() != b.Bytes() {
		t.Fatalf("bytes %d vs %d", a.Bytes(), b.Bytes())
	}
	for r := 0; r < a.RowCount(); r++ {
		for c := range a.Columns {
			av, bv := a.ValueAt(r, c), b.ValueAt(r, c)
			if !av.BitEqual(bv) {
				t.Fatalf("value (%d,%d): %v vs %v", r, c, av, bv)
			}
			if a.IsNullAt(r, c) != b.IsNullAt(r, c) {
				t.Fatalf("nullness (%d,%d) differs", r, c)
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tbl := snapshotTable(t)
	tbl.Parent = "root"
	got, err := TableFromSnapshot(tbl.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	tablesBitEqual(t, tbl, got)
	// The restored table must keep working as a live table: typed
	// accessors refuse dirty columns, appends continue the generation.
	if _, _, ok := got.IntCol(0); !ok {
		t.Error("restored clean INT column not servable by IntCol")
	}
	if _, _, _, ok := got.StrCol(2); ok {
		t.Error("restored column with exceptions must not be servable by StrCol")
	}
	gen := got.Generation()
	got.AppendRow([]Value{Int(8), Int(1), Str("delta"), Float(2)})
	if got.Generation() != gen+1 {
		t.Errorf("append after restore: generation %d, want %d", got.Generation(), gen+1)
	}
}

func TestSnapshotRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	words := []string{"", "a", "bb", "ccc", "It's", "NaN", "1998", "  42 "}
	for trial := 0; trial < 40; trial++ {
		cols := []Column{{Name: IDColumn, Typ: TInt}}
		ncols := 1 + rng.Intn(4)
		for i := 0; i < ncols; i++ {
			cols = append(cols, Column{
				Name: string(rune('a'+i)), Typ: Type(rng.Intn(3)), Nullable: true,
			})
		}
		tbl := NewTable("r", cols)
		nrows := rng.Intn(70)
		row := make([]Value, len(cols))
		for r := 0; r < nrows; r++ {
			for c, col := range cols {
				switch {
				case rng.Intn(8) == 0:
					row[c] = NullOf(col.Typ)
				case rng.Intn(16) == 0:
					// Wrong-typed append: lands in the exception slot.
					row[c] = Value{Typ: Type(rng.Intn(3)), I: int64(rng.Intn(9)), F: rng.Float64(), S: words[rng.Intn(len(words))]}
				default:
					switch col.Typ {
					case TInt:
						row[c] = Int(int64(rng.Intn(100) - 50))
					case TFloat:
						fs := []float64{0, math.Copysign(0, -1), 1.25, math.NaN(), math.Inf(-1), rng.NormFloat64()}
						row[c] = Float(fs[rng.Intn(len(fs))])
					default:
						row[c] = Str(words[rng.Intn(len(words))])
					}
				}
			}
			tbl.AppendRow(row)
		}
		got, err := TableFromSnapshot(tbl.Snapshot())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tablesBitEqual(t, tbl, got)
	}
}

// TestTableFromSnapshotRejects drives the validator through malformed
// snapshots: every corruption must come back as an error, not a panic
// and not a quietly wrong table.
func TestTableFromSnapshotRejects(t *testing.T) {
	fresh := func() *TableSnapshot { return snapshotTable(t).Snapshot() }
	cases := []struct {
		name   string
		mutate func(*TableSnapshot)
	}{
		{"nil snapshot", nil},
		{"empty name", func(s *TableSnapshot) { s.Name = "" }},
		{"negative rows", func(s *TableSnapshot) { s.RowCount = -1 }},
		{"negative generation", func(s *TableSnapshot) { s.Generation = -3 }},
		{"duplicate column", func(s *TableSnapshot) { s.Columns[1].Col.Name = s.Columns[0].Col.Name }},
		{"empty column name", func(s *TableSnapshot) { s.Columns[2].Col.Name = "" }},
		{"bad type", func(s *TableSnapshot) { s.Columns[0].Col.Typ = Type(9) }},
		{"short int vector", func(s *TableSnapshot) { s.Columns[0].Ints = s.Columns[0].Ints[:2] }},
		{"short bitmap", func(s *TableSnapshot) { s.Columns[0].NullWords = nil }},
		{"tail bits set", func(s *TableSnapshot) { s.Columns[0].NullWords[0] |= 1 << 63 }},
		{"cross-typed payload", func(s *TableSnapshot) { s.Columns[0].Floats = make([]float64, s.RowCount) }},
		{"code out of dict", func(s *TableSnapshot) { s.Columns[2].Codes[0] = 99 }},
		{"dict order broken", func(s *TableSnapshot) {
			c := &s.Columns[2]
			c.Codes[0], c.Codes[1] = c.Codes[1], c.Codes[0]
		}},
		{"unused dict entry", func(s *TableSnapshot) { s.Columns[2].Dict = append(s.Columns[2].Dict, "orphan") }},
		{"duplicate dict entry", func(s *TableSnapshot) {
			c := &s.Columns[2]
			c.Dict[1] = c.Dict[0]
		}},
		{"null row with payload", func(s *TableSnapshot) { s.Columns[1].Ints[0] = 5 }},
		{"exception row out of range", func(s *TableSnapshot) { s.Columns[2].Exc[0].Row = 99 }},
		{"exception rows unsorted", func(s *TableSnapshot) {
			c := &s.Columns[2]
			c.Exc = append(c.Exc, ExcEntry{Row: c.Exc[0].Row, Val: c.Exc[0].Val})
		}},
		{"exception null bit disagrees", func(s *TableSnapshot) {
			c := &s.Columns[2]
			v := c.Exc[0].Val
			v.Null = !v.Null
			c.Exc[0].Val = v
		}},
		{"round-tripping exception", func(s *TableSnapshot) {
			// Claim an exception whose value is exactly what the
			// vectors materialize: append would never record it.
			c := &s.Columns[0]
			c.Exc = []ExcEntry{{Row: 0, Val: Int(c.Ints[0])}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s *TableSnapshot
			if tc.mutate != nil {
				s = fresh()
				tc.mutate(s)
			}
			if tbl, err := TableFromSnapshot(s); err == nil {
				t.Fatalf("corrupted snapshot accepted (table %v)", tbl.Name)
			}
		})
	}
}
