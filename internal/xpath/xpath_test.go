package xpath

import (
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse(`//movie[title = "Titanic"]/(aka_title | avg_rating)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Context) != 1 || q.Context[0].Name != "movie" || q.Context[0].Axis != Descendant {
		t.Errorf("context = %+v", q.Context)
	}
	if q.Pred == nil || q.Pred.Path.String() != "title" || q.Pred.Op != OpEq || q.Pred.Value.S != "Titanic" {
		t.Errorf("pred = %+v", q.Pred)
	}
	if len(q.Proj) != 2 || q.Proj[0].String() != "aka_title" || q.Proj[1].String() != "avg_rating" {
		t.Errorf("proj = %+v", q.Proj)
	}
}

func TestParseChildAxis(t *testing.T) {
	q, err := Parse(`/dblp/inproceedings[year = "2000"]/(title | year | author)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Context) != 2 || q.Context[0].Name != "dblp" || q.Context[1].Name != "inproceedings" {
		t.Errorf("context = %+v", q.Context)
	}
	if q.Context[0].Axis != Child || q.Context[1].Axis != Child {
		t.Errorf("axes = %+v", q.Context)
	}
	if len(q.Proj) != 3 {
		t.Errorf("proj = %+v", q.Proj)
	}
	if q.ContextName() != "inproceedings" {
		t.Errorf("ContextName = %q", q.ContextName())
	}
}

func TestParseTrailingStepBecomesProjection(t *testing.T) {
	q, err := Parse(`//movie/year`)
	if err != nil {
		t.Fatal(err)
	}
	if q.ContextName() != "movie" {
		t.Errorf("context = %+v", q.Context)
	}
	if len(q.Proj) != 1 || q.Proj[0].String() != "year" {
		t.Errorf("proj = %+v", q.Proj)
	}
}

func TestParseUnionNoPredicate(t *testing.T) {
	q, err := Parse(`/dblp/inproceedings/(title | author)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.ContextName() != "inproceedings" || q.Pred != nil || len(q.Proj) != 2 {
		t.Errorf("q = %+v", q)
	}
}

func TestParseBareContext(t *testing.T) {
	q, err := Parse(`//inproceedings`)
	if err != nil {
		t.Fatal(err)
	}
	if q.ContextName() != "inproceedings" || len(q.Proj) != 0 {
		t.Errorf("q = %+v", q)
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]CmpOp{
		`//movie[year >= "1998"]/title`: OpGe,
		`//movie[year <= "1998"]/title`: OpLe,
		`//movie[year > "1998"]/title`:  OpGt,
		`//movie[year < "1998"]/title`:  OpLt,
		`//movie[year != "1998"]/title`: OpNe,
		`//movie[year = "1998"]/title`:  OpEq,
	}
	for in, want := range cases {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if q.Pred.Op != want {
			t.Errorf("%s: op = %v, want %v", in, q.Pred.Op, want)
		}
	}
}

func TestParseNumericLiterals(t *testing.T) {
	q := MustParse(`//movie[year >= 1998]/title`)
	if q.Pred.Value.Kind != LitInt || q.Pred.Value.I != 1998 {
		t.Errorf("literal = %+v", q.Pred.Value)
	}
	q = MustParse(`//movie[avg_rating > 7.5]/title`)
	if q.Pred.Value.Kind != LitFloat || q.Pred.Value.F != 7.5 {
		t.Errorf("literal = %+v", q.Pred.Value)
	}
	q = MustParse(`//movie[box_office > -3]/title`)
	if q.Pred.Value.I != -3 {
		t.Errorf("literal = %+v", q.Pred.Value)
	}
}

func TestParseMultiStepPaths(t *testing.T) {
	q := MustParse(`//book[author/name = "Knuth"]/(title | author/name)`)
	if q.Pred.Path.String() != "author/name" {
		t.Errorf("pred path = %v", q.Pred.Path)
	}
	if len(q.Proj) != 2 || q.Proj[1].String() != "author/name" {
		t.Errorf("proj = %+v", q.Proj)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`movie`,
		`//movie[`,
		`//movie[year]`,
		`//movie[year = ]`,
		`//movie[year = "1998"`,
		`//movie[year = "1998"]/()`,
		`//movie[year = "1998"]/(a |`,
		`//movie[a="1"][b="2"]/c`,
		`//movie xyz`,
		`//movie[year ~ "1998"]/title`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	queries := []string{
		`//movie[title = "Titanic"]/(aka_title | avg_rating)`,
		`/dblp/inproceedings[year = 2000]/(title | year | author)`,
		`//movie/year`,
		`//inproceedings`,
		`//movie[year >= 1998]/(title | box_office)`,
	}
	for _, in := range queries {
		q := MustParse(in)
		back := MustParse(q.String())
		if back.String() != q.String() {
			t.Errorf("round trip changed: %q -> %q -> %q", in, q.String(), back.String())
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: rendering then re-parsing any constructible query is a
	// fixpoint.
	names := []string{"a", "bb", "movie", "aka_title", "x9"}
	f := func(ctxIdx, predIdx, projIdx uint8, opIdx uint8, val int16, useDesc bool, nProj uint8) bool {
		q := &Query{}
		axis := Child
		if useDesc {
			axis = Descendant
		}
		q.Context = []Step{{Axis: axis, Name: names[int(ctxIdx)%len(names)]}}
		q.Pred = &Predicate{
			Path:  Path{names[int(predIdx)%len(names)]},
			Op:    CmpOp(int(opIdx) % 6),
			Value: IntLit(int64(val)),
		}
		n := int(nProj)%3 + 1
		for i := 0; i < n; i++ {
			q.Proj = append(q.Proj, Path{names[(int(projIdx)+i)%len(names)]})
		}
		s := q.String()
		back, err := Parse(s)
		if err != nil {
			return false
		}
		return back.String() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
