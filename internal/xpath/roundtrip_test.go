package xpath

import (
	"reflect"
	"strings"
	"testing"
)

// TestStringRoundTrip checks parse -> String -> parse yields an
// identical AST, and that String is a fixed point (printing the
// reparsed query gives the same text).
func TestStringRoundTrip(t *testing.T) {
	inputs := []string{
		// Bare context paths.
		"//movie",
		"/dblp",
		"/a/b/c",
		"//a//b",
		"//show/@id",
		// Predicates, every operator and literal kind.
		`//movie[title = "Titanic"]`,
		`//movie[year != 1994]`,
		"//m[rating < 7.5]",
		"//m[rating <= -0.125]",
		"//m[year > -3]",
		`//m[title >= "T"]`,
		`//a[b/c = "x"]`,
		// String literals with embedded quotes.
		`//a[b = "it's"]`,
		`//a[b = 'say "hi"']`,
		// Projections: single, parenthesized multi-segment, unions.
		"//movie/year",
		"//movie/(title | year)",
		"//a/(b/c)",
		"//a/(b/c | d)",
		`//movie[year = 1994]/(title | genre | @id)`,
		`/dblp/inproceedings[booktitle = "ICDE"]/(author | title)`,
		// Non-canonical spacing normalizes but must round-trip.
		"//a[ b =  1 ]/( x |y )",
	}
	for _, in := range inputs {
		q1, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Errorf("Parse(%q): printed form of %q does not parse: %v", printed, in, err)
			continue
		}
		if !reflect.DeepEqual(q1, q2) {
			t.Errorf("round trip of %q changed the AST:\n first: %#v\nsecond: %#v", in, q1, q2)
		}
		if again := q2.String(); again != printed {
			t.Errorf("String not a fixed point for %q: %q -> %q", in, printed, again)
		}
	}
}

// TestStringRoundTripConstructed covers printer forms built directly,
// including literals that never appear in surface syntax verbatim.
func TestStringRoundTripConstructed(t *testing.T) {
	qs := []*Query{
		{
			Context: []Step{{Axis: Descendant, Name: "a"}},
			Pred:    &Predicate{Path: Path{"b"}, Op: OpEq, Value: FloatLit(3)},
		},
		{
			Context: []Step{{Axis: Descendant, Name: "a"}},
			Pred:    &Predicate{Path: Path{"b"}, Op: OpLt, Value: FloatLit(-12.375)},
		},
		{
			Context: []Step{{Axis: Descendant, Name: "a"}},
			Proj:    []Path{{"b", "c"}},
		},
		{
			Context: []Step{{Axis: Child, Name: "a"}, {Axis: Descendant, Name: "b"}},
			Pred:    &Predicate{Path: Path{"c"}, Op: OpNe, Value: StringLit("")},
			Proj:    []Path{{"d"}, {"e", "f"}},
		},
	}
	for _, q := range qs {
		printed := q.String()
		back, err := Parse(printed)
		if err != nil {
			t.Errorf("Parse(%q): %v", printed, err)
			continue
		}
		if !reflect.DeepEqual(q, back) {
			t.Errorf("constructed query %#v printed as %q reparsed to %#v", q, printed, back)
		}
	}
	// An integral float must keep its decimal point: FloatLit(3) prints
	// "3.0", never "3" (which would reparse as an int literal).
	if got := FloatLit(3).String(); got != "3.0" {
		t.Errorf("FloatLit(3).String() = %q, want \"3.0\"", got)
	}
}

// TestParseErrorPositions pins the byte offsets reported for malformed
// queries.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "empty location path at 0"},
		{"//a[b=1][c=2]", `trailing input at 8: "[c=2]"`},
		{`//a[b="x]`, "unterminated string literal at 6"},
		{"//a[b=1.2.3]", `bad float literal "1.2.3" at 6`},
		{"//a[b=--3]", `bad int literal "--3" at 6`},
		{"//a[b=1]x", "trailing input at 8"},
		{"//a[b 1]", "expected comparison operator at 6"},
		{"//a[b=1", "expected ']' at 7"},
		{"//a[b=]", "expected literal at 6"},
		{"/(a|b", "expected '|' or ')' at 5"},
		{"/[a=1]", "expected name at 1"},
		{"//a[b=1]/(x", "expected '|' or ')' at 11"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q does not contain %q", c.in, err, c.want)
		}
	}
}
