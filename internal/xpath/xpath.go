// Package xpath parses the XPath subset used by the paper (Section 2.1):
// queries with child (/) and descendant (//) axes, an optional selection
// predicate on the last step, and a projection that returns one element
// or a union of elements, e.g.
//
//	//movie[title = "Titanic"]/(aka_title | avg_rating)
//	/dblp/inproceedings[year = "2000"]/(title | author | pages)
//	//movie/year
//
// The element named by the last location step is the context element;
// [path op literal] is the selection path; the union members are the
// projection elements.
package xpath

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Axis is a location-step axis.
type Axis int

const (
	// Child is the "/" axis.
	Child Axis = iota
	// Descendant is the "//" axis.
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Step is one location step.
type Step struct {
	Axis Axis
	Name string
}

// Path is a relative child-axis path (used for selection paths and
// projection elements).
type Path []string

func (p Path) String() string { return strings.Join(p, "/") }

// CmpOp is a comparison operator in a selection predicate.
type CmpOp int

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the operator's surface syntax.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// LiteralKind discriminates predicate literal types.
type LiteralKind int

const (
	LitString LiteralKind = iota
	LitInt
	LitFloat
)

// Literal is a predicate comparison literal.
type Literal struct {
	Kind LiteralKind
	S    string
	I    int64
	F    float64
}

// String renders the literal in XPath surface syntax. The rendering
// reparses to the same literal: floats always carry a decimal point and
// never use the exponent form (the grammar has neither exponents nor
// escapes), and strings pick a quote character they do not contain.
func (l Literal) String() string {
	switch l.Kind {
	case LitInt:
		return strconv.FormatInt(l.I, 10)
	case LitFloat:
		if math.IsNaN(l.F) || math.IsInf(l.F, 0) {
			// Not representable in the grammar; display only.
			return strconv.FormatFloat(l.F, 'g', -1, 64)
		}
		s := strconv.FormatFloat(l.F, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	default:
		if !strings.Contains(l.S, `"`) {
			return `"` + l.S + `"`
		}
		if !strings.Contains(l.S, "'") {
			return "'" + l.S + "'"
		}
		// Contains both quote kinds: not representable in the grammar;
		// fall back to a Go-quoted form for display.
		return strconv.Quote(l.S)
	}
}

// StringLit builds a string literal.
func StringLit(s string) Literal { return Literal{Kind: LitString, S: s} }

// IntLit builds an integer literal.
func IntLit(i int64) Literal { return Literal{Kind: LitInt, I: i} }

// FloatLit builds a float literal.
func FloatLit(f float64) Literal { return Literal{Kind: LitFloat, F: f} }

// Predicate is the selection [path op literal] on the context element.
type Predicate struct {
	Path  Path
	Op    CmpOp
	Value Literal
}

func (p *Predicate) String() string {
	return fmt.Sprintf("[%s %s %s]", p.Path, p.Op, p.Value)
}

// Query is a parsed XPath query.
type Query struct {
	// Context locates the context element.
	Context []Step
	// Pred is the optional selection predicate (nil if none).
	Pred *Predicate
	// Proj lists the projection element paths relative to the context
	// element. Empty means the query returns the context element with
	// all of its content (projection of every leaf).
	Proj []Path
}

// String renders the query back to XPath syntax.
func (q *Query) String() string {
	var b strings.Builder
	for _, s := range q.Context {
		b.WriteString(s.Axis.String())
		b.WriteString(s.Name)
	}
	if q.Pred != nil {
		b.WriteString(q.Pred.String())
	}
	switch len(q.Proj) {
	case 0:
	case 1:
		// A multi-segment single projection must keep its parentheses:
		// //a/(b/c) groups per a-instance, while //a/b/c would reparse
		// with b absorbed into the context and group per b-instance.
		if len(q.Proj[0]) > 1 {
			b.WriteString("/(")
			b.WriteString(q.Proj[0].String())
			b.WriteString(")")
			break
		}
		b.WriteString("/")
		b.WriteString(q.Proj[0].String())
	default:
		b.WriteString("/(")
		for i, p := range q.Proj {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(p.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// ContextName returns the tag name of the context element.
func (q *Query) ContextName() string {
	if len(q.Context) == 0 {
		return ""
	}
	return q.Context[len(q.Context)-1].Name
}

// Parse parses an XPath query in the supported subset.
func Parse(input string) (*Query, error) {
	p := &parser{src: input}
	q, err := p.query()
	if err != nil {
		return nil, fmt.Errorf("xpath: %w (in %q)", err, input)
	}
	return q, nil
}

// MustParse parses or panics; for tests and static query tables.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) query() (*Query, error) {
	q := &Query{}
	p.ws()
	for {
		axis, ok := p.axis()
		if !ok {
			break
		}
		// A '(' after an axis starts the projection union.
		p.ws()
		if p.peek() == '(' {
			proj, err := p.projection()
			if err != nil {
				return nil, err
			}
			q.Proj = proj
			break
		}
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		q.Context = append(q.Context, Step{Axis: axis, Name: name})
		p.ws()
		if p.peek() == '[' {
			if q.Pred != nil {
				return nil, fmt.Errorf("multiple predicates at %d", p.pos)
			}
			pred, err := p.predicate()
			if err != nil {
				return nil, err
			}
			q.Pred = pred
			p.ws()
			// After the predicate, an optional projection follows.
			if p.peek() == '/' {
				proj, err := p.projAfterSlash()
				if err != nil {
					return nil, err
				}
				q.Proj = proj
			}
			break
		}
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	if len(q.Context) == 0 {
		return nil, fmt.Errorf("empty location path at 0")
	}
	// Steps after the predicate-free context that name leaves become
	// the projection: //movie/year means context //movie, proj year.
	// Without schema knowledge we keep the last step as projection only
	// when the query had an explicit union or predicate; a plain path
	// keeps its last step as projection of a single element.
	if q.Pred == nil && len(q.Proj) == 0 && len(q.Context) > 1 {
		last := q.Context[len(q.Context)-1]
		if last.Axis == Child {
			q.Context = q.Context[:len(q.Context)-1]
			q.Proj = []Path{{last.Name}}
		}
	}
	return q, nil
}

// projAfterSlash parses "/(a|b)" or "/a/b" after a predicate.
func (p *parser) projAfterSlash() ([]Path, error) {
	if p.peek() != '/' {
		return nil, fmt.Errorf("expected '/' before projection at %d", p.pos)
	}
	p.pos++
	p.ws()
	if p.peek() == '(' {
		return p.projection()
	}
	path, err := p.relPath()
	if err != nil {
		return nil, err
	}
	return []Path{path}, nil
}

// projection parses "(a | b/c | d)". The leading '(' is current.
func (p *parser) projection() ([]Path, error) {
	if p.peek() != '(' {
		return nil, fmt.Errorf("expected '(' at %d", p.pos)
	}
	p.pos++
	var out []Path
	for {
		p.ws()
		path, err := p.relPath()
		if err != nil {
			return nil, err
		}
		out = append(out, path)
		p.ws()
		switch p.peek() {
		case '|':
			p.pos++
		case ')':
			p.pos++
			return out, nil
		default:
			return nil, fmt.Errorf("expected '|' or ')' at %d", p.pos)
		}
	}
}

// predicate parses "[path op literal]". The leading '[' is current.
func (p *parser) predicate() (*Predicate, error) {
	p.pos++ // consume '['
	p.ws()
	path, err := p.relPath()
	if err != nil {
		return nil, err
	}
	p.ws()
	op, err := p.cmpOp()
	if err != nil {
		return nil, err
	}
	p.ws()
	lit, err := p.literal()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.peek() != ']' {
		return nil, fmt.Errorf("expected ']' at %d", p.pos)
	}
	p.pos++
	return &Predicate{Path: path, Op: op, Value: lit}, nil
}

func (p *parser) relPath() (Path, error) {
	var path Path
	for {
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		path = append(path, name)
		if p.peek() == '/' && p.peekAt(1) != '/' {
			p.pos++
			continue
		}
		return path, nil
	}
}

func (p *parser) cmpOp() (CmpOp, error) {
	switch {
	case p.consume("!="):
		return OpNe, nil
	case p.consume("<="):
		return OpLe, nil
	case p.consume(">="):
		return OpGe, nil
	case p.consume("="):
		return OpEq, nil
	case p.consume("<"):
		return OpLt, nil
	case p.consume(">"):
		return OpGt, nil
	}
	return 0, fmt.Errorf("expected comparison operator at %d", p.pos)
}

func (p *parser) literal() (Literal, error) {
	c := p.peek()
	if c == '"' || c == '\'' {
		quote := c
		open := p.pos
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return Literal{}, fmt.Errorf("unterminated string literal at %d", open)
		}
		s := p.src[start:p.pos]
		p.pos++
		return StringLit(s), nil
	}
	start := p.pos
	for p.pos < len(p.src) && (isDigit(p.src[p.pos]) || p.src[p.pos] == '.' || p.src[p.pos] == '-') {
		p.pos++
	}
	if start == p.pos {
		return Literal{}, fmt.Errorf("expected literal at %d", p.pos)
	}
	text := p.src[start:p.pos]
	if strings.ContainsRune(text, '.') {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Literal{}, fmt.Errorf("bad float literal %q at %d", text, start)
		}
		return FloatLit(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Literal{}, fmt.Errorf("bad int literal %q at %d", text, start)
	}
	return IntLit(i), nil
}

// axis consumes "/" or "//" and reports whether one was present.
func (p *parser) axis() (Axis, bool) {
	if p.peek() != '/' {
		return 0, false
	}
	p.pos++
	if p.peek() == '/' {
		p.pos++
		return Descendant, true
	}
	return Child, true
}

func (p *parser) name() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	if start == p.pos {
		return "", fmt.Errorf("expected name at %d", p.pos)
	}
	return p.src[start:p.pos], nil
}

func (p *parser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) peekAt(off int) byte {
	if p.pos+off >= len(p.src) {
		return 0
	}
	return p.src[p.pos+off]
}

func (p *parser) consume(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func isNameChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == '@' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
