package sqlast

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

func sampleQuery() *Query {
	id := &ColRef{Table: "inproc", Column: "ID"}
	title := &ColRef{Table: "inproc", Column: "title"}
	author := &ColRef{Table: "author", Column: "author"}
	return &Query{
		OrderBy: "ID",
		Branches: []*Select{
			{
				Items: []SelectItem{{Col: id, As: "ID"}, {Col: title, As: "title"}, {As: "author"}},
				From:  []string{"inproc"},
				Where: []Pred{{
					Kind: PredCompare, Op: OpEq,
					Col:   ColRef{Table: "inproc", Column: "booktitle"},
					Value: rel.Str("SIGMOD CONFERENCE"),
				}},
			},
			{
				Items: []SelectItem{{Col: id, As: "ID"}, {As: "title"}, {Col: author, As: "author"}},
				From:  []string{"inproc", "author"},
				Where: []Pred{
					{Kind: PredJoin,
						Left:  ColRef{Table: "author", Column: "PID"},
						Right: ColRef{Table: "inproc", Column: "ID"}},
					{Kind: PredCompare, Op: OpEq,
						Col:   ColRef{Table: "inproc", Column: "booktitle"},
						Value: rel.Str("SIGMOD CONFERENCE")},
				},
			},
		},
	}
}

func TestSQLRendering(t *testing.T) {
	q := sampleQuery()
	sql := q.SQL()
	for _, want := range []string{
		"SELECT inproc.ID, inproc.title",
		"NULL AS author",
		"UNION ALL",
		"author.PID = inproc.ID",
		"booktitle = 'SIGMOD CONFERENCE'",
		"ORDER BY ID",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sampleQuery().Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("no branches", func(t *testing.T) {
		if err := (&Query{}).Validate(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("union incompatible widths", func(t *testing.T) {
		q := sampleQuery()
		q.Branches[1].Items = q.Branches[1].Items[:2]
		if err := q.Validate(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("union incompatible names", func(t *testing.T) {
		q := sampleQuery()
		q.Branches[1].Items[1].As = "nope"
		if err := q.Validate(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("column out of scope", func(t *testing.T) {
		q := sampleQuery()
		q.Branches[0].Items[1].Col.Table = "elsewhere"
		if err := q.Validate(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("order by unknown column", func(t *testing.T) {
		q := sampleQuery()
		q.OrderBy = "nope"
		if err := q.Validate(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("empty OR predicate", func(t *testing.T) {
		q := sampleQuery()
		q.Branches[0].Where = append(q.Branches[0].Where, Pred{Kind: PredOr, Op: OpEq, Value: rel.Int(1)})
		if err := q.Validate(); err == nil {
			t.Error("want error")
		}
	})
}

func TestCmpOpMatches(t *testing.T) {
	cases := []struct {
		op   CmpOp
		cmp  int
		want bool
	}{
		{OpEq, 0, true}, {OpEq, 1, false},
		{OpNe, 0, false}, {OpNe, -1, true},
		{OpLt, -1, true}, {OpLt, 0, false},
		{OpLe, 0, true}, {OpLe, 1, false},
		{OpGt, 1, true}, {OpGt, 0, false},
		{OpGe, 0, true}, {OpGe, -1, false},
	}
	for _, c := range cases {
		if got := c.op.Matches(c.cmp); got != c.want {
			t.Errorf("%v.Matches(%d) = %v", c.op, c.cmp, got)
		}
	}
}

func TestTablesAndColumnsOf(t *testing.T) {
	q := sampleQuery()
	tables := q.Tables()
	if len(tables) != 2 || tables[0] != "author" || tables[1] != "inproc" {
		t.Errorf("Tables = %v", tables)
	}
	cols := q.Branches[1].ColumnsOf("inproc")
	want := map[string]bool{"ID": true, "booktitle": true}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected column %s", c)
		}
		delete(want, c)
	}
	if len(want) > 0 {
		t.Errorf("missing columns %v", want)
	}
}

func TestExistsPredicates(t *testing.T) {
	p := Pred{
		Kind: PredExists, Op: OpEq, Value: rel.Str("x"),
		Table: "author", JoinCol: "PID", InnerCol: "author",
		OuterCol: ColRef{Table: "inproc", Column: "ID"},
	}
	s := p.String()
	for _, want := range []string{"EXISTS", "author.PID = inproc.ID", "author.author = 'x'"} {
		if !strings.Contains(s, want) {
			t.Errorf("exists SQL missing %q: %s", want, s)
		}
	}
	or := Pred{
		Kind: PredOrExists, Op: OpEq, Value: rel.Str("x"),
		Cols:  []ColRef{{Table: "inproc", Column: "author_1"}, {Table: "inproc", Column: "author_2"}},
		Table: "author", JoinCol: "PID", InnerCol: "author",
		OuterCol: ColRef{Table: "inproc", Column: "ID"},
	}
	s = or.String()
	for _, want := range []string{"author_1 = 'x'", "OR", "EXISTS"} {
		if !strings.Contains(s, want) {
			t.Errorf("or-exists SQL missing %q: %s", want, s)
		}
	}
	// Branch.Tables must include the EXISTS inner table.
	sel := &Select{From: []string{"inproc"}, Where: []Pred{p}}
	tabs := sel.Tables()
	if len(tabs) != 2 {
		t.Errorf("Tables = %v", tabs)
	}
}

func TestSelectItemRendering(t *testing.T) {
	it := SelectItem{Col: &ColRef{Table: "t", Column: "c"}, As: "c"}
	if it.String() != "t.c" {
		t.Errorf("same-name alias should be omitted: %s", it.String())
	}
	it.As = "other"
	if it.String() != "t.c AS other" {
		t.Errorf("alias rendering: %s", it.String())
	}
}
