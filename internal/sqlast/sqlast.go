// Package sqlast represents the SQL statements the translator produces:
// sorted outer-union queries in the style of Shanmugasundaram et al.
// [21] — a UNION ALL of select branches ordered by the context ID — with
// conjunctive predicates, OR-lists over repetition-split columns, EXISTS
// semi-joins, and equi-joins. A renderer produces SQL text for display
// and logging; execution interprets the AST directly.
package sqlast

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rel"
)

// CmpOp is a SQL comparison operator.
type CmpOp int

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Matches evaluates "a op b" under the operator.
func (op CmpOp) Matches(cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// ColRef names a column of a table.
type ColRef struct {
	Table  string
	Column string
}

func (c ColRef) String() string { return c.Table + "." + c.Column }

// SelectItem is one output expression: a column reference or a NULL
// placeholder (outer-union slots), with an output name.
type SelectItem struct {
	// Col is the source column; nil renders NULL.
	Col *ColRef
	// As is the output column name.
	As string
}

func (s SelectItem) String() string {
	if s.Col == nil {
		return "NULL AS " + s.As
	}
	if s.Col.Column == s.As {
		return s.Col.String()
	}
	return s.Col.String() + " AS " + s.As
}

// PredKind discriminates predicate forms.
type PredKind int

const (
	// PredCompare is "col op literal".
	PredCompare PredKind = iota
	// PredJoin is "left = right" across tables.
	PredJoin
	// PredOr is "(col1 op lit OR col2 op lit OR ...)" over columns of
	// one table — produced for selections on repetition-split columns.
	PredOr
	// PredExists is "EXISTS (SELECT 1 FROM t WHERE t.joinCol = outer
	// AND t.col op lit)" — semi-join for selections on set-valued
	// elements stored in a child relation.
	PredExists
	// PredOrExists is the disjunction of PredOr and PredExists:
	// "(col1 op lit OR ... OR EXISTS(...))" — selections on
	// repetition-split elements match either an inlined occurrence
	// column or an overflow row.
	PredOrExists
)

// Pred is a conjunct of a WHERE clause.
type Pred struct {
	Kind PredKind
	// PredCompare / PredOr / PredExists comparison:
	Op    CmpOp
	Value rel.Value
	// PredCompare column; PredOr columns:
	Col  ColRef
	Cols []ColRef
	// PredJoin columns:
	Left, Right ColRef
	// PredExists inner table and columns:
	Table    string
	JoinCol  string // inner column equated with OuterCol
	OuterCol ColRef
	InnerCol string // inner column compared with Value (empty: bare existence)
}

// String renders the predicate as SQL.
func (p Pred) String() string {
	switch p.Kind {
	case PredCompare:
		return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Value.SQLLiteral())
	case PredJoin:
		return fmt.Sprintf("%s = %s", p.Left, p.Right)
	case PredOr:
		parts := make([]string, len(p.Cols))
		for i, c := range p.Cols {
			parts[i] = fmt.Sprintf("%s %s %s", c, p.Op, p.Value.SQLLiteral())
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	case PredExists:
		return p.existsSQL()
	case PredOrExists:
		parts := make([]string, 0, len(p.Cols)+1)
		for _, c := range p.Cols {
			parts = append(parts, fmt.Sprintf("%s %s %s", c, p.Op, p.Value.SQLLiteral()))
		}
		parts = append(parts, p.existsSQL())
		return "(" + strings.Join(parts, " OR ") + ")"
	}
	return "?"
}

func (p Pred) existsSQL() string {
	inner := fmt.Sprintf("SELECT 1 FROM %s WHERE %s.%s = %s", p.Table, p.Table, p.JoinCol, p.OuterCol)
	if p.InnerCol != "" {
		inner += fmt.Sprintf(" AND %s.%s %s %s", p.Table, p.InnerCol, p.Op, p.Value.SQLLiteral())
	}
	return "EXISTS (" + inner + ")"
}

// Select is one branch of a sorted outer-union query.
type Select struct {
	// Items are the output expressions; every branch of a Query has the
	// same output names in the same order.
	Items []SelectItem
	// From lists the base tables referenced (joined via PredJoin
	// conjuncts in Where).
	From []string
	// Where is a conjunction of predicates.
	Where []Pred
}

// SQL renders the branch.
func (s *Select) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(s.From, ", "))
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	return b.String()
}

// Tables returns the set of tables the branch touches, including
// EXISTS inner tables.
func (s *Select) Tables() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t string) {
		if t != "" && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range s.From {
		add(t)
	}
	for _, p := range s.Where {
		if p.Kind == PredExists || p.Kind == PredOrExists {
			add(p.Table)
		}
	}
	return out
}

// ColumnsOf returns the columns of the given table referenced anywhere
// in the branch (output, predicates, joins), sorted.
func (s *Select) ColumnsOf(table string) []string {
	seen := make(map[string]bool)
	add := func(c ColRef) {
		if c.Table == table && c.Column != "" {
			seen[c.Column] = true
		}
	}
	for _, it := range s.Items {
		if it.Col != nil {
			add(*it.Col)
		}
	}
	for _, p := range s.Where {
		switch p.Kind {
		case PredCompare:
			add(p.Col)
		case PredOr:
			for _, c := range p.Cols {
				add(c)
			}
		case PredJoin:
			add(p.Left)
			add(p.Right)
		case PredExists, PredOrExists:
			add(p.OuterCol)
			for _, c := range p.Cols {
				add(c)
			}
			if p.Table == table {
				if p.JoinCol != "" {
					seen[p.JoinCol] = true
				}
				if p.InnerCol != "" {
					seen[p.InnerCol] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Query is a sorted outer-union query: UNION ALL over branches, ordered
// by the named output column.
type Query struct {
	Branches []*Select
	// OrderBy is the output column name the union is ordered by
	// (typically the context element's ID); empty means unordered.
	OrderBy string
}

// SQL renders the full statement.
func (q *Query) SQL() string {
	parts := make([]string, len(q.Branches))
	for i, s := range q.Branches {
		parts[i] = s.SQL()
	}
	out := strings.Join(parts, "\nUNION ALL\n")
	if q.OrderBy != "" {
		out += "\nORDER BY " + q.OrderBy
	}
	return out
}

// Tables returns the set of tables referenced by any branch, sorted.
func (q *Query) Tables() []string {
	seen := make(map[string]bool)
	for _, s := range q.Branches {
		for _, t := range s.Tables() {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// OutputColumns returns the output column names (from the first
// branch; all branches are union-compatible).
func (q *Query) OutputColumns() []string {
	if len(q.Branches) == 0 {
		return nil
	}
	out := make([]string, len(q.Branches[0].Items))
	for i, it := range q.Branches[0].Items {
		out[i] = it.As
	}
	return out
}

// Validate checks union compatibility across branches and that every
// column reference names a table in scope.
func (q *Query) Validate() error {
	if len(q.Branches) == 0 {
		return fmt.Errorf("sqlast: query has no branches")
	}
	names := q.OutputColumns()
	for bi, s := range q.Branches {
		if len(s.Items) != len(names) {
			return fmt.Errorf("sqlast: branch %d has %d items, want %d", bi, len(s.Items), len(names))
		}
		for i, it := range s.Items {
			if it.As != names[i] {
				return fmt.Errorf("sqlast: branch %d item %d named %q, want %q", bi, i, it.As, names[i])
			}
		}
		inScope := make(map[string]bool)
		for _, t := range s.From {
			inScope[t] = true
		}
		check := func(c ColRef) error {
			if !inScope[c.Table] {
				return fmt.Errorf("sqlast: branch %d references %s which is not in FROM", bi, c)
			}
			return nil
		}
		for _, it := range s.Items {
			if it.Col != nil {
				if err := check(*it.Col); err != nil {
					return err
				}
			}
		}
		for _, p := range s.Where {
			var err error
			switch p.Kind {
			case PredCompare:
				err = check(p.Col)
			case PredJoin:
				if err = check(p.Left); err == nil {
					err = check(p.Right)
				}
			case PredOr:
				if len(p.Cols) == 0 {
					err = fmt.Errorf("sqlast: branch %d has empty OR predicate", bi)
				}
				for _, c := range p.Cols {
					if err == nil {
						err = check(c)
					}
				}
			case PredExists, PredOrExists:
				err = check(p.OuterCol)
				for _, c := range p.Cols {
					if err == nil {
						err = check(c)
					}
				}
				if err == nil && p.Table == "" {
					err = fmt.Errorf("sqlast: branch %d EXISTS without table", bi)
				}
			}
			if err != nil {
				return err
			}
		}
		if q.OrderBy != "" {
			found := false
			for _, n := range names {
				if n == q.OrderBy {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("sqlast: ORDER BY %s is not an output column", q.OrderBy)
			}
		}
	}
	return nil
}
