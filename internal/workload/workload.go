// Package workload generates the random XPath workloads of Section
// 5.1.3: queries over a schema's context elements with a selection
// predicate of controlled selectivity and a controlled number of
// projection elements. Workloads are named after their parameters,
// e.g. "HP-LS-20" (high projection count, low selectivity, 20
// queries).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/stats"
	"repro/internal/xpath"
)

// Query is one weighted workload query.
type Query struct {
	// XPath is the query.
	XPath *xpath.Query
	// Weight is the frequency f_i.
	Weight float64
}

// Update describes an insert stream: Rate new instances of the named
// element per workload execution. Updates penalize physical structures
// on the affected relations (the paper's future-work extension to
// update queries).
type Update struct {
	// Element is the inserted element's tag name.
	Element string
	// Rate is the number of inserted instances per workload execution.
	Rate float64
}

// Workload is a named set of weighted queries plus optional update
// streams.
type Workload struct {
	Name    string
	Queries []Query
	// Updates lists insert streams the physical design must pay
	// maintenance for.
	Updates []Update
}

// Params controls generation.
type Params struct {
	// Name labels the workload ("LP-HS-20").
	Name string
	// NumQueries is the workload size.
	NumQueries int
	// MinProj and MaxProj bound the number of projection elements
	// (LP: 1-4, HP: 5-20).
	MinProj, MaxProj int
	// SelLow and SelHigh bound the selection selectivity
	// (HS: 0.01-0.1, LS: 0.5-1.0).
	SelLow, SelHigh float64
	// Seed drives the deterministic PRNG.
	Seed int64
}

// StandardParams returns the paper's four parameter combinations for
// the given workload size: {LP,HP} x {LS,HS}.
func StandardParams(count int, seed int64) []Params {
	return []Params{
		{Name: fmt.Sprintf("LP-HS-%d", count), NumQueries: count, MinProj: 1, MaxProj: 4, SelLow: 0.01, SelHigh: 0.1, Seed: seed},
		{Name: fmt.Sprintf("LP-LS-%d", count), NumQueries: count, MinProj: 1, MaxProj: 4, SelLow: 0.5, SelHigh: 1.0, Seed: seed + 1},
		{Name: fmt.Sprintf("HP-HS-%d", count), NumQueries: count, MinProj: 5, MaxProj: 20, SelLow: 0.01, SelHigh: 0.1, Seed: seed + 2},
		{Name: fmt.Sprintf("HP-LS-%d", count), NumQueries: count, MinProj: 5, MaxProj: 20, SelLow: 0.5, SelHigh: 1.0, Seed: seed + 3},
	}
}

// Generate builds a workload against the schema using collected
// statistics to hit the selectivity band.
func Generate(tree *schema.Tree, col *stats.Collection, p Params) (*Workload, error) {
	ctxs := contexts(tree, col)
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("workload: schema has no queryable context elements")
	}
	r := rand.New(rand.NewSource(p.Seed))
	w := &Workload{Name: p.Name}
	for qi := 0; qi < p.NumQueries; qi++ {
		ctx := ctxs[r.Intn(len(ctxs))]
		q, err := generateQuery(tree, col, ctx, p, r)
		if err != nil {
			return nil, err
		}
		w.Queries = append(w.Queries, Query{XPath: q, Weight: 1})
	}
	return w, nil
}

// contexts picks annotated, populous, non-leaf context elements.
func contexts(tree *schema.Tree, col *stats.Collection) []*schema.Node {
	var out []*schema.Node
	var best int64
	for _, n := range tree.Annotated() {
		if n.IsLeaf() || n.Parent == nil {
			continue
		}
		if c := col.InstanceCount(n.ID); c > best {
			best = c
		}
	}
	for _, n := range tree.Annotated() {
		if n.IsLeaf() || n.Parent == nil {
			continue
		}
		// Keep contexts with a meaningful population (at least 5% of
		// the largest), so queries are not trivially empty.
		if c := col.InstanceCount(n.ID); c*20 >= best && c > 0 {
			out = append(out, n)
		}
	}
	return out
}

func generateQuery(tree *schema.Tree, col *stats.Collection, ctx *schema.Node,
	p Params, r *rand.Rand) (*xpath.Query, error) {
	selLeaves := selectionLeaves(ctx)
	if len(selLeaves) == 0 {
		return nil, fmt.Errorf("workload: context %s has no selection leaves", ctx.Path())
	}
	projLeaves := projectionLeaves(ctx)
	if len(projLeaves) == 0 {
		return nil, fmt.Errorf("workload: context %s has no projection leaves", ctx.Path())
	}
	// Selection: try random leaves until one supports the band.
	var pred *xpath.Predicate
	for try := 0; try < 40 && pred == nil; try++ {
		leaf := selLeaves[r.Intn(len(selLeaves))]
		pred = predicateFor(leaf, col, p, r)
	}
	if pred == nil {
		// Fall back to the widest predicate available.
		leaf := selLeaves[0]
		cs := col.Cols[leaf.ID]
		if cs == nil || cs.Count == 0 {
			return nil, fmt.Errorf("workload: no statistics for %s", leaf.Path())
		}
		pred = &xpath.Predicate{Path: xpath.Path{leaf.Name}, Op: xpath.OpGe, Value: litFor(cs.Min)}
	}
	// Projections: sample without replacement.
	want := p.MinProj
	if p.MaxProj > p.MinProj {
		want += r.Intn(p.MaxProj - p.MinProj + 1)
	}
	if want > len(projLeaves) {
		want = len(projLeaves)
	}
	perm := r.Perm(len(projLeaves))
	var proj []xpath.Path
	for _, i := range perm[:want] {
		proj = append(proj, xpath.Path{projLeaves[i].Name})
	}
	sort.Slice(proj, func(i, j int) bool { return proj[i].String() < proj[j].String() })
	return &xpath.Query{
		Context: []xpath.Step{{Axis: xpath.Descendant, Name: ctx.Name}},
		Pred:    pred,
		Proj:    proj,
	}, nil
}

// selectionLeaves lists single-valued inlined leaf children (selection
// paths target scalar leaves, as in the paper's queries).
func selectionLeaves(ctx *schema.Node) []*schema.Node {
	var out []*schema.Node
	for _, c := range ctx.ElementChildren() {
		if c.IsLeaf() && !c.IsSetValued() {
			out = append(out, c)
		}
	}
	return out
}

// projectionLeaves lists all leaf children (scalar, optional, choice,
// and set-valued).
func projectionLeaves(ctx *schema.Node) []*schema.Node {
	var out []*schema.Node
	for _, c := range ctx.ElementChildren() {
		if c.IsLeaf() {
			out = append(out, c)
		}
	}
	return out
}

// predicateFor builds a predicate on the leaf within the selectivity
// band, or nil if the leaf's distribution cannot support it.
func predicateFor(leaf *schema.Node, col *stats.Collection, p Params, r *rand.Rand) *xpath.Predicate {
	cs := col.Cols[leaf.ID]
	if cs == nil || cs.Count == 0 {
		return nil
	}
	path := xpath.Path{leaf.Name}
	inBand := func(s float64) bool { return s >= p.SelLow*0.5 && s <= p.SelHigh*1.5 }
	// Equality on a sampled histogram value.
	eqSel := 1.0 / math.Max(float64(cs.Distinct), 1)
	if inBand(eqSel) && cs.Hist != nil && len(cs.Hist.Bounds) > 0 {
		v := cs.Hist.Bounds[r.Intn(len(cs.Hist.Bounds))]
		return &xpath.Predicate{Path: path, Op: xpath.OpEq, Value: litFor(v)}
	}
	// Range predicate at the right quantile.
	if cs.Hist != nil && len(cs.Hist.Bounds) > 1 {
		target := p.SelLow + r.Float64()*(p.SelHigh-p.SelLow)
		i := int((1 - target) * float64(len(cs.Hist.Bounds)))
		if i < 0 {
			i = 0
		}
		if i >= len(cs.Hist.Bounds) {
			i = len(cs.Hist.Bounds) - 1
		}
		v := cs.Hist.Bounds[i]
		sel := cs.Selectivity(sqlast.OpGe, v)
		if inBand(sel) {
			return &xpath.Predicate{Path: path, Op: xpath.OpGe, Value: litFor(v)}
		}
	}
	return nil
}

func litFor(v rel.Value) xpath.Literal {
	switch v.Typ {
	case rel.TInt:
		return xpath.IntLit(v.I)
	case rel.TFloat:
		return xpath.FloatLit(v.F)
	default:
		return xpath.StringLit(v.S)
	}
}
