package workload

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/xmlgen"
)

func fixtures(t *testing.T) (*schema.Tree, *xmlgen.Doc) {
	t.Helper()
	tree := schema.Movie()
	doc := xmlgen.GenerateMovie(tree, xmlgen.MovieOptions{Movies: 2000, Seed: 81})
	return tree, doc
}

func TestGenerateRespectsParams(t *testing.T) {
	tree, doc := fixtures(t)
	col := xmlgen.CollectStats(tree, doc)
	p := Params{Name: "LP-HS-10", NumQueries: 10, MinProj: 1, MaxProj: 4,
		SelLow: 0.01, SelHigh: 0.1, Seed: 5}
	w, err := Generate(tree, col, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 10 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	for _, q := range w.Queries {
		if q.XPath.Pred == nil {
			t.Errorf("query without selection: %s", q.XPath)
		}
		np := len(q.XPath.Proj)
		if np < 1 || np > 4 {
			t.Errorf("projection count %d outside [1,4]: %s", np, q.XPath)
		}
		if q.Weight != 1 {
			t.Errorf("weight = %f", q.Weight)
		}
	}
}

func TestGenerateHighProjection(t *testing.T) {
	tree, doc := fixtures(t)
	col := xmlgen.CollectStats(tree, doc)
	p := Params{Name: "HP", NumQueries: 10, MinProj: 5, MaxProj: 20,
		SelLow: 0.5, SelHigh: 1.0, Seed: 6}
	w, err := Generate(tree, col, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		// Movie has 11 leaf children; HP queries take at least 5.
		if len(q.XPath.Proj) < 5 {
			t.Errorf("HP projection count %d: %s", len(q.XPath.Proj), q.XPath)
		}
	}
}

func TestGenerateSelectivityBands(t *testing.T) {
	tree, doc := fixtures(t)
	col := xmlgen.CollectStats(tree, doc)
	count := func(selLow, selHigh float64, seed int64) (hits, total int) {
		p := Params{Name: "x", NumQueries: 20, MinProj: 1, MaxProj: 2,
			SelLow: selLow, SelHigh: selHigh, Seed: seed}
		w, err := Generate(tree, col, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range w.Queries {
			total++
			// Estimate the actual selectivity from the stats.
			ctxs := tree.ElementsNamed(q.XPath.ContextName())
			if len(ctxs) == 0 {
				continue
			}
			var leaf *schema.Node
			for _, c := range ctxs[0].ElementChildren() {
				if c.Name == q.XPath.Pred.Path[0] {
					leaf = c
				}
			}
			if leaf == nil {
				continue
			}
			cs := col.Cols[leaf.ID]
			if cs == nil {
				continue
			}
			op := sqlast.OpEq
			switch q.XPath.Pred.Op.String() {
			case ">=":
				op = sqlast.OpGe
			case "=":
				op = sqlast.OpEq
			}
			sel := cs.Selectivity(op, xmlgen.LiteralValue(q.XPath.Pred.Value))
			if sel >= selLow*0.3 && sel <= selHigh*2 {
				hits++
			}
		}
		return hits, total
	}
	hs, total := count(0.01, 0.1, 9)
	if hs*10 < total*7 {
		t.Errorf("high-selectivity band hit rate %d/%d", hs, total)
	}
	ls, total2 := count(0.5, 1.0, 10)
	if ls*10 < total2*7 {
		t.Errorf("low-selectivity band hit rate %d/%d", ls, total2)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tree, doc := fixtures(t)
	col := xmlgen.CollectStats(tree, doc)
	p := Params{Name: "x", NumQueries: 5, MinProj: 1, MaxProj: 3, SelLow: 0.1, SelHigh: 0.5, Seed: 42}
	w1, err := Generate(tree, col, p)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(tree, col, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1.Queries {
		if w1.Queries[i].XPath.String() != w2.Queries[i].XPath.String() {
			t.Fatalf("non-deterministic: %s vs %s", w1.Queries[i].XPath, w2.Queries[i].XPath)
		}
	}
}

func TestStandardParams(t *testing.T) {
	params := StandardParams(20, 1)
	if len(params) != 4 {
		t.Fatalf("params = %d", len(params))
	}
	names := map[string]bool{}
	for _, p := range params {
		names[p.Name] = true
		if p.NumQueries != 20 {
			t.Errorf("%s: NumQueries = %d", p.Name, p.NumQueries)
		}
	}
	for _, want := range []string{"LP-HS-20", "LP-LS-20", "HP-HS-20", "HP-LS-20"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
}

func TestGenerateOnDBLP(t *testing.T) {
	tree := schema.DBLP()
	doc := xmlgen.GenerateDBLP(tree, xmlgen.DBLPOptions{Inproceedings: 1000, Books: 100, Seed: 82})
	col := xmlgen.CollectStats(tree, doc)
	for _, p := range StandardParams(10, 3) {
		w, err := Generate(tree, col, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(w.Queries) != 10 {
			t.Errorf("%s: %d queries", p.Name, len(w.Queries))
		}
	}
}
