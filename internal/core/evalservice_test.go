package core

import (
	"sync"
	"testing"

	"repro/internal/schema"
)

// TestEvaluateMemoized pins the cache contract: re-evaluating a mapping
// with the same canonical signature (here, a fresh clone — exactly what
// a repeated candidate in the exact fallback sweep produces) returns
// the cached result without another physical design tool call.
func TestEvaluateMemoized(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	adv := New(fx.base, fx.col, fx.w, Options{})
	var met Metrics
	ev1, err := adv.evaluate(fx.base.Clone(), &met)
	if err != nil {
		t.Fatal(err)
	}
	if met.PhysDesignCalls != 1 || met.EvalCacheMisses != 1 {
		t.Fatalf("first evaluation: %+v", met)
	}
	before := met.PhysDesignCalls
	ev2, err := adv.evaluate(fx.base.Clone(), &met)
	if err != nil {
		t.Fatal(err)
	}
	if ev2 != ev1 {
		t.Error("repeated evaluation did not return the cached result")
	}
	if met.PhysDesignCalls != before {
		t.Errorf("repeated evaluation incremented PhysDesignCalls: %d -> %d",
			before, met.PhysDesignCalls)
	}
	if met.EvalCacheHits != 1 {
		t.Errorf("EvalCacheHits = %d, want 1", met.EvalCacheHits)
	}
}

// TestEvaluateSingleFlight: concurrent requests for the same signature
// compute the mapping exactly once; the others wait and record hits.
func TestEvaluateSingleFlight(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	adv := New(fx.base, fx.col, fx.w, Options{Parallelism: 8})
	const n = 8
	mets := make([]Metrics, n)
	evs := make([]*evalResult, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			ev, err := adv.evaluate(fx.base.Clone(), &mets[i])
			if err != nil {
				t.Error(err)
				return
			}
			evs[i] = ev
		}(i)
	}
	wg.Wait()
	var total Metrics
	for i := range mets {
		total.merge(mets[i])
		if evs[i] != evs[0] {
			t.Error("concurrent callers got different results")
		}
	}
	if total.PhysDesignCalls != 1 || total.EvalCacheMisses != 1 {
		t.Errorf("tool called %d times (misses %d), want exactly 1",
			total.PhysDesignCalls, total.EvalCacheMisses)
	}
	if total.EvalCacheHits != n-1 {
		t.Errorf("EvalCacheHits = %d, want %d", total.EvalCacheHits, n-1)
	}
}

// TestEvalCacheAccountingUnderRace pins the accounting invariant across
// all four memoization maps under concurrency: misses are recorded at
// reservation time, under the map lock, so no matter how requests
// interleave the merged totals are exact — one miss per distinct key,
// and every other request a hit. Run under -race this also exercises
// the single-flight synchronization itself.
func TestEvalCacheAccountingUnderRace(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	adv := New(fx.base, fx.col, fx.w, Options{})
	alt := schema.ApplyFullySplit(fx.base.Clone())

	// Seed one full evaluation so deriveCost below has a costed current
	// mapping to derive from. This is distinct key #1.
	var seed Metrics
	curEv, err := adv.evaluate(fx.base.Clone(), &seed)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 3
	mets := make([]Metrics, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			m := &mets[w]
			for i := 0; i < iters; i++ {
				if _, err := adv.evaluate(fx.base.Clone(), m); err != nil {
					t.Error(err)
				}
				if _, err := adv.evaluate(alt.Clone(), m); err != nil {
					t.Error(err)
				}
				if _, err := adv.service().costUnderDefault(fx.base.Clone(), m); err != nil {
					t.Error(err)
				}
				if _, err := adv.service().costUnderDefault(alt.Clone(), m); err != nil {
					t.Error(err)
				}
				adv.service().queryCost(fx.base.Clone(), fx.w.Queries[0], m)
				if _, err := adv.deriveCost(curEv, alt.Clone(), m); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()

	total := seed
	for i := range mets {
		total.merge(mets[i])
	}
	// Distinct keys: evaluate(base), evaluate(alt), fixed(base),
	// fixed(alt), queryCost(base, q0), derive(base->alt).
	const distinct = 6
	requests := 1 + workers*iters*6
	if total.EvalCacheMisses != distinct {
		t.Errorf("EvalCacheMisses = %d, want exactly %d (one per distinct key)",
			total.EvalCacheMisses, distinct)
	}
	if total.EvalCacheHits != requests-distinct {
		t.Errorf("EvalCacheHits = %d, want %d (requests %d - distinct %d)",
			total.EvalCacheHits, requests-distinct, requests, distinct)
	}
	// Full evaluations were computed exactly twice (base and alt); the
	// single derivation may add one more tool call for its re-tuned
	// queries, but single-flighting caps the total at three.
	if total.MappingsCosted != 2 {
		t.Errorf("MappingsCosted = %d, want 2", total.MappingsCosted)
	}
	if total.PhysDesignCalls < 2 || total.PhysDesignCalls > 3 {
		t.Errorf("PhysDesignCalls = %d, want 2 or 3", total.PhysDesignCalls)
	}
}

// TestGreedyReportsCacheHits: a real Greedy search reuses evaluations
// (the merging oracle, rejected-round re-derivations, and the fallback
// sweep all repeat work the cache now answers), and the hits surface in
// the result metrics.
func TestGreedyReportsCacheHits(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	res, err := New(fx.base, fx.col, fx.w, Options{}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.EvalCacheHits == 0 {
		t.Error("Greedy search recorded no eval cache hits")
	}
	if res.Metrics.EvalCacheMisses == 0 {
		t.Error("Greedy search recorded no eval cache misses")
	}
}

// TestStrategiesShareCache: running a second strategy on the same
// advisor reuses the first strategy's evaluations.
func TestStrategiesShareCache(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	adv := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1})
	if _, err := adv.NaiveGreedy(); err != nil {
		t.Fatal(err)
	}
	// Naive-Greedy evaluated the hybrid base mapping; the hybrid
	// baseline on the same advisor must hit it.
	hy, err := adv.HybridBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if hy.Metrics.EvalCacheHits != 1 || hy.Metrics.PhysDesignCalls != 0 {
		t.Errorf("hybrid after naive: hits=%d tool calls=%d, want 1 hit / 0 calls",
			hy.Metrics.EvalCacheHits, hy.Metrics.PhysDesignCalls)
	}
}
