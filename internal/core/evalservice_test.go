package core

import (
	"sync"
	"testing"
)

// TestEvaluateMemoized pins the cache contract: re-evaluating a mapping
// with the same canonical signature (here, a fresh clone — exactly what
// a repeated candidate in the exact fallback sweep produces) returns
// the cached result without another physical design tool call.
func TestEvaluateMemoized(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	adv := New(fx.base, fx.col, fx.w, Options{})
	var met Metrics
	ev1, err := adv.evaluate(fx.base.Clone(), &met)
	if err != nil {
		t.Fatal(err)
	}
	if met.PhysDesignCalls != 1 || met.EvalCacheMisses != 1 {
		t.Fatalf("first evaluation: %+v", met)
	}
	before := met.PhysDesignCalls
	ev2, err := adv.evaluate(fx.base.Clone(), &met)
	if err != nil {
		t.Fatal(err)
	}
	if ev2 != ev1 {
		t.Error("repeated evaluation did not return the cached result")
	}
	if met.PhysDesignCalls != before {
		t.Errorf("repeated evaluation incremented PhysDesignCalls: %d -> %d",
			before, met.PhysDesignCalls)
	}
	if met.EvalCacheHits != 1 {
		t.Errorf("EvalCacheHits = %d, want 1", met.EvalCacheHits)
	}
}

// TestEvaluateSingleFlight: concurrent requests for the same signature
// compute the mapping exactly once; the others wait and record hits.
func TestEvaluateSingleFlight(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	adv := New(fx.base, fx.col, fx.w, Options{Parallelism: 8})
	const n = 8
	mets := make([]Metrics, n)
	evs := make([]*evalResult, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			ev, err := adv.evaluate(fx.base.Clone(), &mets[i])
			if err != nil {
				t.Error(err)
				return
			}
			evs[i] = ev
		}(i)
	}
	wg.Wait()
	var total Metrics
	for i := range mets {
		total.merge(mets[i])
		if evs[i] != evs[0] {
			t.Error("concurrent callers got different results")
		}
	}
	if total.PhysDesignCalls != 1 || total.EvalCacheMisses != 1 {
		t.Errorf("tool called %d times (misses %d), want exactly 1",
			total.PhysDesignCalls, total.EvalCacheMisses)
	}
	if total.EvalCacheHits != n-1 {
		t.Errorf("EvalCacheHits = %d, want %d", total.EvalCacheHits, n-1)
	}
}

// TestGreedyReportsCacheHits: a real Greedy search reuses evaluations
// (the merging oracle, rejected-round re-derivations, and the fallback
// sweep all repeat work the cache now answers), and the hits surface in
// the result metrics.
func TestGreedyReportsCacheHits(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	res, err := New(fx.base, fx.col, fx.w, Options{}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.EvalCacheHits == 0 {
		t.Error("Greedy search recorded no eval cache hits")
	}
	if res.Metrics.EvalCacheMisses == 0 {
		t.Error("Greedy search recorded no eval cache misses")
	}
}

// TestStrategiesShareCache: running a second strategy on the same
// advisor reuses the first strategy's evaluations.
func TestStrategiesShareCache(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	adv := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1})
	if _, err := adv.NaiveGreedy(); err != nil {
		t.Fatal(err)
	}
	// Naive-Greedy evaluated the hybrid base mapping; the hybrid
	// baseline on the same advisor must hit it.
	hy, err := adv.HybridBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if hy.Metrics.EvalCacheHits != 1 || hy.Metrics.PhysDesignCalls != 0 {
		t.Errorf("hybrid after naive: hits=%d tool calls=%d, want 1 hit / 0 calls",
			hy.Metrics.EvalCacheHits, hy.Metrics.PhysDesignCalls)
	}
}
