package core

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// fixture builds a small dataset + workload for search tests.
type fixture struct {
	base *schema.Tree
	col  *stats.Collection
	docs []*xmlgen.Doc
	w    *workload.Workload
}

func movieFixture(t *testing.T, queries []string) *fixture {
	t.Helper()
	base := schema.Movie()
	doc := xmlgen.GenerateMovie(base, xmlgen.MovieOptions{Movies: 1500, Seed: 71})
	col := xmlgen.CollectStats(base, doc)
	w := &workload.Workload{Name: "test"}
	for _, qs := range queries {
		w.Queries = append(w.Queries, workload.Query{XPath: xpath.MustParse(qs), Weight: 1})
	}
	return &fixture{base: base, col: col, docs: []*xmlgen.Doc{doc}, w: w}
}

func dblpFixture(t *testing.T, queries []string) *fixture {
	t.Helper()
	base := schema.DBLP()
	doc := xmlgen.GenerateDBLP(base, xmlgen.DBLPOptions{Inproceedings: 1500, Books: 150, Seed: 72})
	col := xmlgen.CollectStats(base, doc)
	w := &workload.Workload{Name: "test"}
	for _, qs := range queries {
		w.Queries = append(w.Queries, workload.Query{XPath: xpath.MustParse(qs), Weight: 1})
	}
	return &fixture{base: base, col: col, docs: []*xmlgen.Doc{doc}, w: w}
}

var movieTestQueries = []string{
	`//movie[title = "Movie Title 000042"]/(aka_title | avg_rating)`,
	`//movie[year >= 2000]/(title | box_office)`,
	`//movie/year`,
	`//movie[genre = "genre-03"]/(title | actor)`,
}

var dblpTestQueries = []string{
	`//inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`,
	`//inproceedings[year = 2000]/(title | pages | ee)`,
	`//book[publisher = "publisher-03"]/(title | price | author)`,
}

func TestGreedyBeatsHybridBaseline(t *testing.T) {
	fx := dblpFixture(t, dblpTestQueries)
	adv := New(fx.base, fx.col, fx.w, Options{})
	hy, err := adv.HybridBaseline()
	if err != nil {
		t.Fatal(err)
	}
	gr, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if gr.EstCost > hy.EstCost*1.0001 {
		t.Errorf("Greedy (%.2f) worse than hybrid baseline (%.2f)", gr.EstCost, hy.EstCost)
	}
	if gr.Metrics.Transformations == 0 {
		t.Error("no transformations searched")
	}
	if gr.Metrics.PhysDesignCalls == 0 || gr.Metrics.OptimizerCalls == 0 {
		t.Error("metrics not recorded")
	}
}

func TestGreedySearchesFewerThanNaive(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	adv := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2})
	gr, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	na, err := adv.NaiveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if gr.Metrics.Transformations >= na.Metrics.Transformations {
		t.Errorf("Greedy searched %d transformations, Naive %d; expected far fewer",
			gr.Metrics.Transformations, na.Metrics.Transformations)
	}
	if gr.Metrics.PhysDesignCalls >= na.Metrics.PhysDesignCalls {
		t.Errorf("Greedy made %d tool calls, Naive %d; expected fewer",
			gr.Metrics.PhysDesignCalls, na.Metrics.PhysDesignCalls)
	}
	// Quality stays comparable (Fig. 4: Greedy ~ Naive-Greedy).
	if gr.EstCost > na.EstCost*1.5 {
		t.Errorf("Greedy cost %.2f much worse than Naive %.2f", gr.EstCost, na.EstCost)
	}
}

func TestTwoStepWorseOrEqual(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	adv := New(fx.base, fx.col, fx.w, Options{})
	gr, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := adv.TwoStep()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 4 gap is an average over workloads; on a tiny
	// workload Two-Step may tie, but it must not be substantially
	// better than the combined search.
	if ts.EstCost < gr.EstCost*0.9 {
		t.Errorf("Two-Step (%.2f) substantially beat Greedy (%.2f); interplay should matter", ts.EstCost, gr.EstCost)
	}
	// Phase 1 never calls the tool; phase 2 calls it once — unless the
	// advisor's shared cache already evaluated the chosen mapping
	// during the Greedy run above, in which case it is a hit.
	if ts.Metrics.PhysDesignCalls > 1 {
		t.Errorf("Two-Step made %d tool calls, want at most 1", ts.Metrics.PhysDesignCalls)
	}
	if ts.Metrics.PhysDesignCalls+ts.Metrics.EvalCacheHits == 0 {
		t.Error("Two-Step neither called the tool nor hit the cache")
	}
}

func TestCostDerivationSavesToolCalls(t *testing.T) {
	fx := dblpFixture(t, dblpTestQueries)
	with := New(fx.base, fx.col, fx.w, Options{})
	grWith, err := with.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	without := New(fx.base, fx.col, fx.w, Options{DisableCostDerivation: true})
	grWithout, err := without.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if grWith.Metrics.CostsDerived == 0 {
		t.Error("cost derivation never used")
	}
	// Derivation answers many per-candidate query costs without tool
	// calls; because the two searches may take different trajectories,
	// assert the per-mapping effort rather than the absolute total.
	withPerEval := float64(grWith.Metrics.OptimizerCalls) / float64(grWith.Metrics.Transformations+1)
	withoutPerEval := float64(grWithout.Metrics.OptimizerCalls) / float64(grWithout.Metrics.Transformations+1)
	if withPerEval >= withoutPerEval {
		t.Errorf("derivation did not reduce optimizer calls per evaluated mapping: %.1f vs %.1f",
			withPerEval, withoutPerEval)
	}
	// Fig. 9a: quality drop is small.
	if grWith.EstCost > grWithout.EstCost*1.25 {
		t.Errorf("derivation quality drop too large: %.2f vs %.2f", grWith.EstCost, grWithout.EstCost)
	}
}

func TestMergeStrategies(t *testing.T) {
	// Two queries each touching one optional: merged implicit unions
	// (Section 4.7's Q1/Q2 example).
	fx := movieFixture(t, []string{
		`//movie[year >= 1990]/runtime`,
		`//movie[year >= 1990]/avg_rating`,
		`//movie[year >= 1990]/language`,
	})
	var costs []float64
	var searched []int
	for _, ms := range []MergeStrategy{MergeGreedy, MergeNone, MergeExhaustive} {
		adv := New(fx.base, fx.col, fx.w, Options{Merge: ms})
		res, err := adv.Greedy()
		if err != nil {
			t.Fatalf("%v: %v", ms, err)
		}
		costs = append(costs, res.EstCost)
		searched = append(searched, res.Metrics.Transformations)
	}
	// Exhaustive must search at least as much as greedy, greedy at
	// least as much as none.
	if searched[2] < searched[0] || searched[0] < searched[1] {
		t.Errorf("searched counts out of order: greedy=%d none=%d exhaustive=%d",
			searched[0], searched[1], searched[2])
	}
	// Greedy merging must not be worse than no merging.
	if costs[0] > costs[1]*1.001 {
		t.Errorf("greedy merging worse than none: %.3f vs %.3f", costs[0], costs[1])
	}
	// Greedy merging close to exhaustive (Fig. 8a).
	if costs[0] > costs[2]*1.25 {
		t.Errorf("greedy merging much worse than exhaustive: %.3f vs %.3f", costs[0], costs[2])
	}
}

func TestSubsumedAblationSearchesMore(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	plain, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	abl, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1, SearchSubsumed: true}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if abl.Metrics.Transformations <= plain.Metrics.Transformations {
		t.Errorf("subsumed ablation searched %d <= %d", abl.Metrics.Transformations, plain.Metrics.Transformations)
	}
	// Subsumed transformations must not improve the estimated cost
	// (they are covered by physical design).
	if abl.EstCost < plain.EstCost*0.98 {
		t.Errorf("searching subsumed transformations 'improved' cost: %.3f vs %.3f",
			abl.EstCost, plain.EstCost)
	}
}

func TestCandidateSelectionAblation(t *testing.T) {
	fx := dblpFixture(t, dblpTestQueries)
	sel, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	all, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2, DisableCandidateSelection: true}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Metrics.Transformations > all.Metrics.Transformations {
		t.Errorf("candidate selection searched more (%d) than full enumeration (%d)",
			sel.Metrics.Transformations, all.Metrics.Transformations)
	}
	if sel.EstCost > all.EstCost*1.3 {
		t.Errorf("candidate selection quality drop: %.3f vs %.3f", sel.EstCost, all.EstCost)
	}
}

func TestMeasureExecution(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	adv := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2})
	res, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := adv.MeasureExecution(res, fx.docs...)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Elapsed <= 0 || ex.DataBytes <= 0 {
		t.Errorf("execution not measured: %+v", ex)
	}
	if ex.Rows == 0 {
		t.Error("workload produced no rows; queries degenerate")
	}
}

func TestGreedyPicksRepetitionSplitForAuthorQueries(t *testing.T) {
	// The intro example: queries projecting authors of selective
	// conference papers should drive a repetition split on
	// inproceedings' author.
	fx := dblpFixture(t, []string{
		`//inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`,
	})
	adv := New(fx.base, fx.col, fx.w, Options{})
	res, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	var split bool
	for _, n := range res.Tree.ElementsNamed("author") {
		if n.SplitCount > 0 {
			split = true
		}
	}
	if !split {
		t.Log("author repetition split not retained; checking it was at least considered")
		if res.Metrics.Transformations == 0 {
			t.Error("nothing searched")
		}
	}
}

func TestStorageBoundRespected(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	unbounded, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	bound := unbounded.Config.EstBytes(unbounded.Prov) / 2
	if bound <= 0 {
		t.Skip("no structures recommended")
	}
	limit := dataBytes(unbounded) + bound
	adv := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1, StorageBytes: limit})
	res, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	// The invariant is on the result's own accounting: data under the
	// recommended mapping plus structures fits the bound.
	total := dataBytes(res) + res.Config.EstBytes(res.Prov)
	if total > limit+limit/20 {
		t.Errorf("data+structures %d exceed bound %d", total, limit)
	}
}

// dataBytes sums the derived data size of the result's relations.
func dataBytes(r *Result) int64 {
	var n int64
	for _, rel := range r.Mapping.Relations {
		if ts := r.Prov.TableStats(rel.Name); ts != nil {
			n += ts.Bytes()
		}
	}
	return n
}
