package core

import (
	"strings"
	"testing"
)

func TestWriteReport(t *testing.T) {
	fx := dblpFixture(t, []string{
		`//inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)`,
	})
	adv := New(fx.base, fx.col, fx.w, Options{})
	res, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteReport(&b, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Greedy recommendation",
		"estimated workload cost",
		"logical design",
		"relational schema",
		"CREATE TABLE",
		"physical design",
		"translated workload",
		"SELECT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The shared author annotation must be reported as a type merge
	// when present.
	if strings.Contains(out, `share relation "author"`) != sharesAuthor(res) {
		t.Errorf("type-merge reporting inconsistent with tree")
	}
}

func sharesAuthor(res *Result) bool {
	n := 0
	for _, e := range res.Tree.Annotated() {
		if e.Annotation == "author" {
			n++
		}
	}
	return n > 1
}

func TestWriteReportFeatures(t *testing.T) {
	fx := movieFixture(t, []string{`//movie/avg_rating`})
	adv := New(fx.base, fx.col, fx.w, Options{})
	res, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.WriteReport(&b, false); err != nil {
		t.Fatal(err)
	}
	// The implicit union on avg_rating is the expected winning design
	// for this workload; if retained it must be reported.
	hasDist := false
	for _, n := range res.Tree.Elements() {
		if len(n.Distributions) > 0 {
			hasDist = true
		}
	}
	if hasDist && !strings.Contains(b.String(), "implicit union") {
		t.Errorf("distribution applied but not reported:\n%s", b.String())
	}
}
