package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/schema"
	"repro/internal/transform"
)

// naiveMaxRounds bounds the baselines' greedy loops; the paper had to
// abort Naive-Greedy after five days on the larger workloads, so a cap
// keeps experiments terminating while preserving the cost shape.
const naiveMaxRounds = 8

// NaiveGreedy is the straightforward extension of the logical-design
// greedy search of [5], [18] to the combined problem (§4.2): every
// round it enumerates every applicable transformation — subsumed and
// non-subsumed alike, with no workload pruning — and calls the
// physical design tool for each resulting mapping.
func (a *Advisor) NaiveGreedy() (*Result, error) {
	start := time.Now()
	var met Metrics
	curEval, err := a.evaluate(a.Base.Clone(), &met)
	if err != nil {
		return nil, fmt.Errorf("core: costing initial mapping: %w", err)
	}
	rounds := a.Opts.MaxRounds
	if rounds == 0 {
		rounds = naiveMaxRounds
	}
	par := a.Opts.Parallelism
	if par < 1 {
		par = 1
	}
	for round := 0; round < rounds; round++ {
		cands := transform.EnumerateAll(curEval.tree, a.Col)
		evals := make([]*evalResult, len(cands))
		mets := make([]Metrics, len(cands))
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for i, t := range cands {
			next, err := t.Apply(curEval.tree)
			if err != nil {
				continue
			}
			met.Transformations++
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, tree *schema.Tree) {
				defer wg.Done()
				defer func() { <-sem }()
				if ev, err := a.evaluate(tree, &mets[i]); err == nil {
					evals[i] = ev
				}
			}(i, next)
		}
		wg.Wait()
		var bestEval *evalResult
		for i, ev := range evals {
			met.merge(mets[i])
			if ev != nil && (bestEval == nil || ev.cost < bestEval.cost) {
				bestEval = ev
			}
		}
		if bestEval == nil || bestEval.cost >= curEval.cost {
			break
		}
		a.tracef("naive round %d: cost %.2f -> %.2f", round, curEval.cost, bestEval.cost)
		curEval = bestEval
	}
	met.Duration = time.Since(start)
	return a.result("Naive-Greedy", curEval, met), nil
}

// TwoStep first searches the logical design alone — assuming only a
// clustered ID index and a PID index, the best guess without workload
// tuning (§5.1.1) — and then runs the physical design tool once on the
// chosen mapping.
func (a *Advisor) TwoStep() (*Result, error) {
	start := time.Now()
	var met Metrics
	cur := a.Base.Clone()
	_, curCost, err := a.costUnder(cur, defaultConfig, &met)
	if err != nil {
		return nil, err
	}
	rounds := a.Opts.MaxRounds
	if rounds == 0 {
		rounds = naiveMaxRounds
	}
	for round := 0; round < rounds; round++ {
		var bestTree *schema.Tree
		bestCost := curCost
		for _, t := range transform.EnumerateAll(cur, a.Col) {
			next, err := t.Apply(cur)
			if err != nil {
				continue
			}
			met.Transformations++
			_, cost, err := a.costUnder(next, defaultConfig, &met)
			if err != nil {
				continue
			}
			if cost < bestCost {
				bestTree, bestCost = next, cost
			}
		}
		if bestTree == nil {
			break
		}
		cur, curCost = bestTree, bestCost
	}
	// Phase 2: physical design once, on the selected logical mapping.
	ev, err := a.evaluate(cur, &met)
	if err != nil {
		return nil, err
	}
	met.Duration = time.Since(start)
	return a.result("Two-Step", ev, met), nil
}

// FullySplitBaseline tunes the fully split mapping — used by tests to
// show hybrid inlining beats it once physical design is available
// (§5.1.4).
func (a *Advisor) FullySplitBaseline() (*Result, error) {
	start := time.Now()
	var met Metrics
	tree := schema.ApplyFullySplit(a.Base.Clone())
	ev, err := a.evaluate(tree, &met)
	if err != nil {
		return nil, err
	}
	met.Duration = time.Since(start)
	return a.result("FullySplit", ev, met), nil
}
