package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/transform"
)

// naiveMaxRounds bounds the baselines' greedy loops; the paper had to
// abort Naive-Greedy after five days on the larger workloads, so a cap
// keeps experiments terminating while preserving the cost shape.
const naiveMaxRounds = 8

// NaiveGreedy is the straightforward extension of the logical-design
// greedy search of [5], [18] to the combined problem (§4.2): every
// round it enumerates every applicable transformation — subsumed and
// non-subsumed alike, with no workload pruning — and calls the
// physical design tool for each resulting mapping.
func (a *Advisor) NaiveGreedy() (*Result, error) {
	start := time.Now()
	var met Metrics
	root := a.Opts.Obs.StartSpan("search", obs.String("algorithm", "naive-greedy"))
	defer root.End()
	curEval, err := a.evaluate(a.Base.Clone(), &met)
	if err != nil {
		return nil, fmt.Errorf("core: costing initial mapping: %w", err)
	}
	rounds := a.Opts.MaxRounds
	if rounds == 0 {
		rounds = naiveMaxRounds
	}
	for round := 0; round < rounds; round++ {
		rsp := root.Child("search-round", obs.Int("round", int64(round)))
		cands := transform.EnumerateAll(curEval.tree, a.Col)
		outcomes := make([]candOutcome, len(cands))
		a.service().forEach(len(cands), func(i int) {
			next, err := cands[i].Apply(curEval.tree)
			if err != nil {
				return
			}
			o := &outcomes[i]
			o.applied = true
			o.met.Transformations++
			if ev, err := a.evaluate(next, &o.met); err == nil {
				o.ev = ev
			}
		})
		var bestEval *evalResult
		for i := range outcomes {
			met.merge(outcomes[i].met)
			if ev := outcomes[i].ev; ev != nil && (bestEval == nil || ev.cost < bestEval.cost) {
				bestEval = ev
			}
		}
		rsp.SetAttr(obs.Int("candidates", int64(len(cands))))
		rsp.End()
		if bestEval == nil || bestEval.cost >= curEval.cost {
			break
		}
		a.tracef("naive round %d: cost %.2f -> %.2f", round, curEval.cost, bestEval.cost)
		curEval = bestEval
	}
	met.Duration = time.Since(start)
	return a.result("Naive-Greedy", curEval, met), nil
}

// TwoStep first searches the logical design alone — assuming only a
// clustered ID index and a PID index, the best guess without workload
// tuning (§5.1.1) — and then runs the physical design tool once on the
// chosen mapping. Phase-1 candidate costing runs on the shared worker
// pool with memoized results.
func (a *Advisor) TwoStep() (*Result, error) {
	start := time.Now()
	var met Metrics
	root := a.Opts.Obs.StartSpan("search", obs.String("algorithm", "two-step"))
	defer root.End()
	cur := a.Base.Clone()
	curCost, err := a.service().costUnderDefault(cur, &met)
	if err != nil {
		return nil, err
	}
	rounds := a.Opts.MaxRounds
	if rounds == 0 {
		rounds = naiveMaxRounds
	}
	for round := 0; round < rounds; round++ {
		rsp := root.Child("search-round", obs.Int("round", int64(round)))
		var bestTree *schema.Tree
		bestCost := curCost
		cands := transform.EnumerateAll(cur, a.Col)
		outcomes := make([]candOutcome, len(cands))
		a.service().forEach(len(cands), func(i int) {
			next, err := cands[i].Apply(cur)
			if err != nil {
				return
			}
			o := &outcomes[i]
			o.applied = true
			o.tree = next
			o.met.Transformations++
			cost, err := a.service().costUnderDefault(next, &o.met)
			if err != nil {
				o.failed = true
				return
			}
			o.cost = cost
		})
		for i := range outcomes {
			o := &outcomes[i]
			if !o.applied {
				continue
			}
			met.merge(o.met)
			if o.failed {
				continue
			}
			if o.cost < bestCost {
				bestTree, bestCost = o.tree, o.cost
			}
		}
		rsp.End()
		if bestTree == nil {
			break
		}
		cur, curCost = bestTree, bestCost
	}
	// Phase 2: physical design once, on the selected logical mapping.
	ev, err := a.evaluate(cur, &met)
	if err != nil {
		return nil, err
	}
	met.Duration = time.Since(start)
	return a.result("Two-Step", ev, met), nil
}

// FullySplitBaseline tunes the fully split mapping — used by tests to
// show hybrid inlining beats it once physical design is available
// (§5.1.4).
func (a *Advisor) FullySplitBaseline() (*Result, error) {
	start := time.Now()
	var met Metrics
	tree := schema.ApplyFullySplit(a.Base.Clone())
	ev, err := a.evaluate(tree, &met)
	if err != nil {
		return nil, err
	}
	met.Duration = time.Since(start)
	return a.result("FullySplit", ev, met), nil
}
