package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/schema"
)

// TestMetricsMergeKeepsDuration pins the merge bugfix: Duration used to
// be dropped on merge, so experiment harnesses that aggregate
// per-strategy Metrics reported zero search time.
func TestMetricsMergeKeepsDuration(t *testing.T) {
	a := Metrics{Duration: time.Second, Transformations: 1}
	a.merge(Metrics{Duration: 2 * time.Second, Transformations: 2})
	if a.Duration != 3*time.Second {
		t.Errorf("merged Duration = %s, want 3s", a.Duration)
	}
	if a.Transformations != 3 {
		t.Errorf("merged Transformations = %d, want 3", a.Transformations)
	}
}

// TestMetricsSummaryGolden pins the report summary byte-for-byte: wall
// time rounded to a millisecond (not truncated via 1e6 division),
// every counter printed, and the cache hit rate derived from traffic.
func TestMetricsSummaryGolden(t *testing.T) {
	m := Metrics{
		Duration:        1234567 * time.Microsecond, // 1.234567s -> rounds to 1.235s
		Transformations: 10,
		MappingsCosted:  4,
		CostsDerived:    3,
		PhysDesignCalls: 5,
		OptimizerCalls:  200,
		EvalCacheHits:   6,
		EvalCacheMisses: 2,
	}
	want := "search: 1.235s | 10 transformations searched | 4 mappings costed | 5 tool calls | 200 optimizer calls | 3 costs derived\n" +
		"eval cache: 6 hits | 2 misses | 75.0% hit rate\n"
	if got := m.Summary(); got != want {
		t.Errorf("Summary() =\n%q\nwant\n%q", got, want)
	}
	// No cache traffic: the hit-rate clause is omitted, not NaN.
	zero := Metrics{}
	wantZero := "search: 0s | 0 transformations searched | 0 mappings costed | 0 tool calls | 0 optimizer calls | 0 costs derived\n" +
		"eval cache: 0 hits | 0 misses\n"
	if got := zero.Summary(); got != wantZero {
		t.Errorf("zero Summary() =\n%q\nwant\n%q", got, wantZero)
	}
}

// TestSearchObsSpans runs a real Greedy search with tracing and a
// metrics registry attached and checks the span tree is well-formed,
// covers every search phase, and that the registry mirrors the result's
// Metrics exactly.
func TestSearchObsSpans(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	tr := obs.New()
	reg := obs.NewRegistry()
	adv := New(fx.base, fx.col, fx.w, Options{
		MaxRounds: 2, Parallelism: 4, Obs: tr, Registry: reg,
	})
	res, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("span tree not well-formed: %v", err)
	}
	for _, name := range []string{
		"search", "candidate-selection", "candidate-merging",
		"search-round", "advisor.evaluate", "physdesign.tune",
	} {
		if len(tr.FindAll(name)) == 0 {
			t.Errorf("no %q spans recorded", name)
		}
	}
	if res.Metrics.CostsDerived > 0 && len(tr.FindAll("advisor.derive-cost")) == 0 {
		t.Error("costs were derived but no advisor.derive-cost spans recorded")
	}
	roots := tr.FindAll("search")
	if alg, ok := roots[0].Attr("algorithm"); !ok || alg != "greedy" {
		t.Errorf("search span algorithm attr = %v, want greedy", alg)
	}
	// Search-phase spans nest under the search root.
	if rounds := tr.FindAll("search-round"); len(rounds) > 0 {
		if rounds[0].Parent() != roots[0] {
			t.Error("search-round span is not a child of the search root")
		}
	}
	// The registry mirrors the run's Metrics (fresh registry, one run).
	snap := reg.Snapshot()
	mirror := map[string]float64{
		"advisor.runs":              1,
		"advisor.transformations":   float64(res.Metrics.Transformations),
		"advisor.mappings_costed":   float64(res.Metrics.MappingsCosted),
		"advisor.costs_derived":     float64(res.Metrics.CostsDerived),
		"advisor.physdesign_calls":  float64(res.Metrics.PhysDesignCalls),
		"advisor.optimizer_calls":   float64(res.Metrics.OptimizerCalls),
		"advisor.eval_cache_hits":   float64(res.Metrics.EvalCacheHits),
		"advisor.eval_cache_misses": float64(res.Metrics.EvalCacheMisses),
		"advisor.last_est_cost":     res.EstCost,
		"advisor.est_cost.greedy":   res.EstCost,
	}
	for name, want := range mirror {
		if got := snap[name]; got != want {
			t.Errorf("registry %s = %g, want %g", name, got, want)
		}
	}
	if snap["advisor.last_duration_ms"] <= 0 {
		t.Error("advisor.last_duration_ms gauge not set")
	}
}

// TestWriteReportVerboseCostsAndPlans: the verbose report prints the
// metrics summary (mappings costed, cache hit rate) and, per query, the
// estimated cost and EXPLAIN-style plan next to its SQL.
func TestWriteReportVerboseCostsAndPlans(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	res, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerQueryCost) != len(fx.w.Queries) {
		t.Fatalf("PerQueryCost has %d entries, want %d", len(res.PerQueryCost), len(fx.w.Queries))
	}
	var b strings.Builder
	if err := res.WriteReport(&b, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mappings costed", "hit rate",
		"-- estimated cost:", "-- plan:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose report missing %q:\n%s", want, out)
		}
	}
}

// TestDesignFeatures exercises the applied-transformation summary
// directly on a hand-mutated tree: repetition splits, implicit-union
// distributions, and deterministically ordered type-merge lines.
func TestDesignFeatures(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:1])
	tree := fx.base.Clone()
	elems := tree.Elements()
	if len(elems) < 5 {
		t.Fatalf("fixture tree has only %d elements", len(elems))
	}
	// A repetition split on some element.
	var split *schema.Node
	for _, n := range elems {
		if n.Parent != nil {
			split = n
			break
		}
	}
	split.SplitCount = 3
	// An implicit-union distribution naming one optional child.
	var host, optional *schema.Node
	for _, n := range elems {
		if kids := n.ElementChildren(); len(kids) > 0 && n != split {
			host, optional = n, kids[0]
			break
		}
	}
	host.Distributions = append(host.Distributions,
		schema.Distribution{Optionals: []int{optional.ID}})
	// Two shared-annotation groups to pin the sorted type-merge order.
	var free []*schema.Node
	for _, n := range elems {
		if n != split && n != host {
			free = append(free, n)
		}
	}
	if len(free) < 4 {
		t.Fatalf("not enough spare elements: %d", len(free))
	}
	free[0].Annotation, free[1].Annotation = "aaa_shared", "aaa_shared"
	free[2].Annotation, free[3].Annotation = "zzz_shared", "zzz_shared"

	feats := (&Result{Tree: tree}).designFeatures()
	joined := strings.Join(feats, "\n")
	if !strings.Contains(joined, "repetition split: first 3 occurrences of "+split.Path()) {
		t.Errorf("missing repetition-split feature in:\n%s", joined)
	}
	if !strings.Contains(joined, "implicit union: "+host.Path()) ||
		!strings.Contains(joined, optional.Name) {
		t.Errorf("missing implicit-union feature in:\n%s", joined)
	}
	ai := strings.Index(joined, `"aaa_shared"`)
	zi := strings.Index(joined, `"zzz_shared"`)
	if ai < 0 || zi < 0 {
		t.Fatalf("missing type-merge features in:\n%s", joined)
	}
	if ai > zi {
		t.Errorf("type-merge lines not sorted by annotation:\n%s", joined)
	}
	// Determinism: repeated renders are byte-identical.
	for i := 0; i < 5; i++ {
		if again := strings.Join((&Result{Tree: tree}).designFeatures(), "\n"); again != joined {
			t.Fatalf("designFeatures not deterministic:\n%s\nvs\n%s", joined, again)
		}
	}
}

// TestCostAudit runs the estimated-vs-measured audit end to end on real
// shredded data and checks every workload query is paired with both an
// estimated cost and a stable wall-clock measurement.
func TestCostAudit(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	adv := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2})
	res, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	audit, err := adv.CostAudit(res, fx.docs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(audit.Queries) != len(fx.w.Queries) {
		t.Fatalf("audit has %d queries, want %d", len(audit.Queries), len(fx.w.Queries))
	}
	for i, q := range audit.Queries {
		if q.Tag == "" {
			t.Errorf("query %d: empty tag", i)
		}
		if q.EstCost <= 0 {
			t.Errorf("query %d (%s): EstCost = %g, want > 0", i, q.Tag, q.EstCost)
		}
		if q.Measured <= 0 {
			t.Errorf("query %d (%s): Measured = %s, want > 0", i, q.Tag, q.Measured)
		}
		if q.Plan == "" {
			t.Errorf("query %d (%s): empty plan", i, q.Tag)
		}
	}
	if audit.EstTotal <= 0 || audit.MeasuredTotal <= 0 {
		t.Errorf("totals: est %g, measured %s, want both > 0", audit.EstTotal, audit.MeasuredTotal)
	}
	var b strings.Builder
	if err := audit.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"cost-model audit", "x vs avg", "weighted totals"} {
		if !strings.Contains(out, want) {
			t.Errorf("audit table missing %q:\n%s", want, out)
		}
	}
}
