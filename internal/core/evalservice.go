package core

import (
	"sync"

	"repro/internal/physdesign"
	"repro/internal/schema"
	"repro/internal/workload"
)

// evalService is the shared candidate-evaluation service: a bounded
// worker pool plus memoization caches keyed by the canonical mapping
// signature (schema-tree serialization + physical-design options).
// Every search path — Greedy's per-round ranking and exact fallback
// sweep, Naive-Greedy's enumeration, and Two-Step's phase-1 loop —
// evaluates through it, so a mapping costed in one round, by one
// candidate, or by one strategy is never re-costed by another.
//
// Evaluations are pure (they only read the advisor's base tree,
// statistics, and workload), so concurrent calls are safe; identical
// keys are single-flighted so a mapping is computed exactly once no
// matter how many workers request it simultaneously. Because a cache
// with no eviction makes the set of computed keys a function of the set
// of requested keys (not of request order), hit/miss counts — and with
// them every Metrics counter — are bit-identical between sequential and
// parallel runs.
type evalService struct {
	a *Advisor
	// optsKey folds the advisor-level physical-design options into
	// every cache key (per-mapping options such as insert rates are a
	// function of the tree and need not be keyed separately).
	optsKey string

	mu      sync.Mutex
	evals   map[string]*evalEntry   // full tool evaluations, by tree signature
	derives map[string]*deriveEntry // cost derivations, by (cur, next) signatures
	fixed   map[string]*fixedEntry  // fixed-config costings (Two-Step phase 1)
	qcosts  map[string]*qcostEntry  // bare single-query costs (merging oracle)
}

// evalEntry is a memoized full evaluation. done is closed when ev/err
// and the effort metrics are final.
type evalEntry struct {
	done chan struct{}
	ev   *evalResult
	err  error
	met  Metrics
}

// deriveEntry is a memoized cost derivation.
type deriveEntry struct {
	done chan struct{}
	cost float64
	err  error
	met  Metrics
}

// fixedEntry is a memoized fixed-configuration workload costing.
type fixedEntry struct {
	done chan struct{}
	cost float64
	err  error
	met  Metrics
}

// qcostEntry is a memoized bare single-query cost.
type qcostEntry struct {
	done chan struct{}
	cost float64
	met  Metrics
}

// service returns the advisor's evaluation service, creating it on
// first use (searches may run concurrently on one advisor).
func (a *Advisor) service() *evalService {
	a.svcOnce.Do(func() {
		a.svc = &evalService{
			a: a,
			optsKey: physdesign.Options{
				StorageBytes:      a.Opts.StorageBytes,
				DisableViews:      a.Opts.DisableViews,
				EnableVPartitions: a.Opts.EnableVPartitions,
			}.Key(),
			evals:   make(map[string]*evalEntry),
			derives: make(map[string]*deriveEntry),
			fixed:   make(map[string]*fixedEntry),
			qcosts:  make(map[string]*qcostEntry),
		}
	})
	return a.svc
}

// key builds a full cache key from a tree signature.
func (s *evalService) key(treeSig string) string {
	return treeSig + "|" + s.optsKey
}

// forEach runs fn(i) for every i in [0, n) on the bounded worker pool:
// min(Options.Parallelism, n) workers pull indices from a channel.
// With Parallelism <= 1 it runs inline. Callers collect results into
// index-addressed slices and reduce them sequentially in index order,
// which keeps selection (lowest candidate index wins ties) and Metrics
// aggregation deterministic at any parallelism.
func (s *evalService) forEach(n int, fn func(i int)) {
	par := s.a.Opts.Parallelism
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// evaluate returns the memoized full evaluation of a tree, computing it
// once per canonical signature. On a miss the computing caller's
// metrics absorb the full effort (tool call, optimizer calls) plus an
// EvalCacheMisses tick; every other caller — including callers that
// arrive while the computation is still in flight — records only an
// EvalCacheHits tick. The miss is recorded at reservation time, while
// the caller still holds the map lock, so exactly one miss per key is
// structural: the decision and the tick cannot be separated by a
// concurrent requester (TestEvalCacheAccountingUnderRace pins this).
func (s *evalService) evaluate(tree *schema.Tree, met *Metrics) (*evalResult, error) {
	key := s.key(tree.Signature())
	s.mu.Lock()
	if ent, ok := s.evals[key]; ok {
		s.mu.Unlock()
		<-ent.done
		met.EvalCacheHits++
		return ent.ev, ent.err
	}
	ent := &evalEntry{done: make(chan struct{})}
	s.evals[key] = ent
	met.EvalCacheMisses++
	s.mu.Unlock()
	ent.ev, ent.err = s.a.evaluateFull(tree, &ent.met)
	close(ent.done)
	met.merge(ent.met)
	return ent.ev, ent.err
}

// deriveCost returns the memoized Section 4.8 derived cost of moving
// from cur to next. Rounds that reject their winner re-rank the same
// candidates against an unchanged current mapping, so derivations
// repeat across rounds; the cache answers the repeats.
func (s *evalService) deriveCost(cur *evalResult, next *schema.Tree, met *Metrics) (float64, error) {
	key := s.key(cur.tree.Signature() + "->" + next.Signature())
	s.mu.Lock()
	if ent, ok := s.derives[key]; ok {
		s.mu.Unlock()
		<-ent.done
		met.EvalCacheHits++
		return ent.cost, ent.err
	}
	ent := &deriveEntry{done: make(chan struct{})}
	s.derives[key] = ent
	met.EvalCacheMisses++
	s.mu.Unlock()
	ent.cost, ent.err = s.a.deriveCostFull(cur, next, &ent.met)
	close(ent.done)
	met.merge(ent.met)
	return ent.cost, ent.err
}

// costUnderDefault returns the memoized workload cost of a tree under
// Two-Step's phase-1 default configuration (no tuning).
func (s *evalService) costUnderDefault(tree *schema.Tree, met *Metrics) (float64, error) {
	key := s.key("2step:" + tree.Signature())
	s.mu.Lock()
	if ent, ok := s.fixed[key]; ok {
		s.mu.Unlock()
		<-ent.done
		met.EvalCacheHits++
		return ent.cost, ent.err
	}
	ent := &fixedEntry{done: make(chan struct{})}
	s.fixed[key] = ent
	met.EvalCacheMisses++
	s.mu.Unlock()
	_, ent.cost, ent.err = s.a.costUnder(tree, defaultConfig, &ent.met)
	close(ent.done)
	met.merge(ent.met)
	return ent.cost, ent.err
}

// queryCost returns the memoized bare-configuration cost of one query
// under a tree (the candidate-merging ranking oracle of Section 4.7,
// which re-costs the same queries for every pairwise merge).
func (s *evalService) queryCost(tree *schema.Tree, wq workload.Query, met *Metrics) float64 {
	key := s.key(tree.Signature() + "|q:" + wq.XPath.String())
	s.mu.Lock()
	if ent, ok := s.qcosts[key]; ok {
		s.mu.Unlock()
		<-ent.done
		met.EvalCacheHits++
		return ent.cost
	}
	ent := &qcostEntry{done: make(chan struct{})}
	s.qcosts[key] = ent
	met.EvalCacheMisses++
	s.mu.Unlock()
	ent.cost = s.a.queryCostFull(tree, wq, &ent.met)
	close(ent.done)
	met.merge(ent.met)
	return ent.cost
}
