package core

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/shred"
)

func TestDesignRoundTrip(t *testing.T) {
	fx := dblpFixture(t, dblpTestQueries)
	adv := New(fx.base, fx.col, fx.w, Options{})
	res, err := adv.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	d := res.Design()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDesign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Algorithm != "Greedy" || loaded.EstCost != res.EstCost {
		t.Errorf("metadata lost: %+v", loaded)
	}
	// Applying to a freshly built (structurally identical) schema
	// reproduces the logical design exactly.
	fresh, err := loaded.Apply(fx.base)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.String() != res.Tree.String() {
		t.Errorf("applied design differs:\n%s\n%s", fresh, res.Tree)
	}
	// The deployed design must compile, load, and build.
	m, err := shred.Compile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	db, err := shred.Shred(m, fx.docs...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Build(db, loaded.Config); err != nil {
		t.Fatalf("deployed configuration failed to build: %v", err)
	}
}

func TestDesignApplyRejectsWrongSchema(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:1])
	adv := New(fx.base, fx.col, fx.w, Options{})
	res, err := adv.HybridBaseline()
	if err != nil {
		t.Fatal(err)
	}
	d := res.Design()
	// Applying a movie design to DBLP must fail validation (mandatory
	// annotations land on the wrong nodes).
	other := dblpFixture(t, dblpTestQueries[:1])
	if _, err := d.Apply(other.base); err == nil {
		t.Error("want error applying a design to a different schema")
	}
}

func TestLoadDesignErrors(t *testing.T) {
	if _, err := LoadDesign(bytes.NewBufferString("not json")); err == nil {
		t.Error("want error for malformed design")
	}
	d, err := LoadDesign(bytes.NewBufferString(`{"annotations":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Config == nil {
		t.Error("nil config not defaulted")
	}
}
