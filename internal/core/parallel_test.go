package core

import (
	"strings"
	"testing"
)

// TestParallelNaiveMatchesSequential checks that parallel candidate
// evaluation changes neither the chosen design nor the metrics (the
// evaluations are pure; only scheduling differs).
func TestParallelNaiveMatchesSequential(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	seq, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2}).NaiveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2, Parallelism: 4}).NaiveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if seq.EstCost != par.EstCost {
		t.Errorf("costs differ: %.4f vs %.4f", seq.EstCost, par.EstCost)
	}
	if seq.Tree.String() != par.Tree.String() {
		t.Errorf("trees differ:\n%s\n%s", seq.Tree, par.Tree)
	}
	if seq.Metrics.Transformations != par.Metrics.Transformations {
		t.Errorf("transformations differ: %d vs %d",
			seq.Metrics.Transformations, par.Metrics.Transformations)
	}
	if seq.Metrics.OptimizerCalls != par.Metrics.OptimizerCalls {
		t.Errorf("optimizer calls differ: %d vs %d",
			seq.Metrics.OptimizerCalls, par.Metrics.OptimizerCalls)
	}
}

// TestParallelNaiveRace runs under -race via the package test flags.
func TestParallelNaiveRace(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	if _, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1, Parallelism: 8}).NaiveGreedy(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceOutput(t *testing.T) {
	fx := movieFixture(t, []string{`//movie/avg_rating`})
	var sb strings.Builder
	adv := New(fx.base, fx.col, fx.w, Options{Trace: &sb})
	if _, err := adv.Greedy(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "greedy:") {
		t.Errorf("trace missing search narration: %q", out)
	}
}
