package core

import (
	"strings"
	"testing"
)

// assertRunsMatch checks that two runs of the same strategy chose the
// same design at the same cost with identical effort counters —
// everything except wall-clock duration.
func assertRunsMatch(t *testing.T, seq, par *Result) {
	t.Helper()
	if seq.EstCost != par.EstCost {
		t.Errorf("costs differ: %.4f vs %.4f", seq.EstCost, par.EstCost)
	}
	if seq.Tree.Signature() != par.Tree.Signature() {
		t.Errorf("trees differ:\n%s\n%s", seq.Tree, par.Tree)
	}
	sm, pm := seq.Metrics, par.Metrics
	sm.Duration, pm.Duration = 0, 0
	if sm != pm {
		t.Errorf("metrics differ:\nseq: %+v\npar: %+v", sm, pm)
	}
}

// TestParallelNaiveMatchesSequential checks that parallel candidate
// evaluation changes neither the chosen design nor the metrics (the
// evaluations are pure and memoized; only scheduling differs).
func TestParallelNaiveMatchesSequential(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	seq, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2}).NaiveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2, Parallelism: 8}).NaiveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	assertRunsMatch(t, seq, par)
}

// TestParallelGreedyMatchesSequential: Greedy's per-round ranking and
// exact fallback sweep run on the worker pool; results, tie-breaking,
// and every metric counter must be bit-identical to a sequential run.
func TestParallelGreedyMatchesSequential(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	seq, err := New(fx.base, fx.col, fx.w, Options{}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(fx.base, fx.col, fx.w, Options{Parallelism: 8}).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	assertRunsMatch(t, seq, par)
}

// TestParallelGreedyNoDerivationMatchesSequential covers the
// full-evaluation ranking path (Fig. 9's ablation) under parallelism.
func TestParallelGreedyNoDerivationMatchesSequential(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:3])
	opts := Options{MaxRounds: 2, DisableCostDerivation: true}
	seq, err := New(fx.base, fx.col, fx.w, opts).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := New(fx.base, fx.col, fx.w, opts).Greedy()
	if err != nil {
		t.Fatal(err)
	}
	assertRunsMatch(t, seq, par)
}

// TestParallelTwoStepMatchesSequential: Two-Step's phase-1 enumeration
// runs on the worker pool with memoized fixed-config costings.
func TestParallelTwoStepMatchesSequential(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	seq, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2}).TwoStep()
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2, Parallelism: 8}).TwoStep()
	if err != nil {
		t.Fatal(err)
	}
	assertRunsMatch(t, seq, par)
}

// The race tests exercise each parallel path under -race via the
// package test flags.
func TestParallelNaiveRace(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	if _, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1, Parallelism: 8}).NaiveGreedy(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelGreedyRace(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	if _, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 2, Parallelism: 8}).Greedy(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelTwoStepRace(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	if _, err := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1, Parallelism: 8}).TwoStep(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceOutput(t *testing.T) {
	fx := movieFixture(t, []string{`//movie/avg_rating`})
	var sb strings.Builder
	adv := New(fx.base, fx.col, fx.w, Options{Trace: &sb})
	if _, err := adv.Greedy(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "greedy:") {
		t.Errorf("trace missing search narration: %q", out)
	}
}
