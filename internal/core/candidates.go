package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/transform"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// candidate is one search step: a sequence of transformations applied
// together (singletons for plain candidates; factorize-then-distribute
// compounds for merged implicit unions, Section 4.7).
type candidate struct {
	seq  []transform.Transformation
	desc string
}

func (c *candidate) key() string {
	parts := make([]string, len(c.seq))
	for i, t := range c.seq {
		parts[i] = t.Key()
	}
	return strings.Join(parts, "+")
}

func (c *candidate) apply(tr *schema.Tree) (*schema.Tree, error) {
	out := tr
	for _, t := range c.seq {
		var err error
		out, err = t.Apply(out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// selected carries the split-type candidates chosen by candidate
// selection together with their merge-type inverses.
type selected struct {
	// splits are applied once to form the initial fully split mapping.
	splits []*candidate
	// merges are the greedy search candidates (inverses of splits plus
	// merged implicit unions and workload-driven type merges).
	merges []*candidate
}

// selectCandidates implements Section 4.5: analyze each workload query
// and keep only transformations that can benefit it. Subsumed
// transformations are never selected (rule 1).
func (a *Advisor) selectCandidates(tree *schema.Tree) *selected {
	out := &selected{}
	seenSplit := make(map[string]bool)
	seenMerge := make(map[string]bool)
	addSplit := func(t transform.Transformation, inverse *candidate) {
		c := &candidate{seq: []transform.Transformation{t}, desc: t.Describe(tree)}
		if seenSplit[c.key()] {
			return
		}
		seenSplit[c.key()] = true
		out.splits = append(out.splits, c)
		if inverse != nil && !seenMerge[inverse.key()] {
			seenMerge[inverse.key()] = true
			out.merges = append(out.merges, inverse)
		}
	}
	addMerge := func(c *candidate) {
		if seenMerge[c.key()] {
			return
		}
		seenMerge[c.key()] = true
		out.merges = append(out.merges, c)
	}

	for _, wq := range a.W.Queries {
		for _, ctx := range translate.ResolveContext(tree, wq.XPath.Context) {
			a.candidatesForQuery(tree, ctx, wq.XPath, addSplit, addMerge)
		}
	}
	return out
}

// candidatesForQuery applies rules 2 and 3 of Section 4.5 for one
// query and context element.
func (a *Advisor) candidatesForQuery(tree *schema.Tree, ctx *schema.Node, q *xpath.Query,
	addSplit func(transform.Transformation, *candidate), addMerge func(*candidate)) {
	refs := referencedLeaves(ctx, q)
	if len(refs) == 0 {
		return
	}
	host := hostAnchor(ctx)
	if host == nil {
		return
	}
	// Rule 2a: explicit union distribution when the query touches at
	// most half of the branches.
	for _, choice := range inlineChoicesOf(host) {
		branches := choice.Children
		touched := 0
		for _, b := range branches {
			if branchTouches(b, refs) {
				touched++
			}
		}
		if touched > 0 && touched*2 <= len(branches) {
			t := transform.Transformation{Kind: transform.UnionDist, Node: host.ID,
				Dist: schema.Distribution{Choice: choice.ID}}
			inv := &candidate{seq: []transform.Transformation{{
				Kind: transform.UnionFact, Node: host.ID, Dist: schema.Distribution{Choice: choice.ID},
			}}, desc: "undo " + t.Describe(tree)}
			addSplit(t, inv)
		}
	}
	// Rule 2b: implicit union on referenced optional leaves.
	for _, leaf := range refs {
		if leaf.IsOptional() && leaf.IsLeaf() && leaf.Annotation == "" && leaf.ElementParent() == host {
			d := schema.Distribution{Optionals: []int{leaf.ID}}
			t := transform.Transformation{Kind: transform.UnionDist, Node: host.ID, Dist: d}
			inv := &candidate{seq: []transform.Transformation{{
				Kind: transform.UnionFact, Node: host.ID, Dist: d,
			}}, desc: "undo " + t.Describe(tree)}
			addSplit(t, inv)
		}
	}
	// Rule 2c: type split when the query accesses one occurrence of a
	// shared annotation.
	for _, leaf := range refs {
		if leaf.Annotation == "" {
			continue
		}
		shared := false
		tree.Walk(func(n *schema.Node) {
			if n != leaf && n.Annotation == leaf.Annotation {
				shared = true
			}
		})
		if shared {
			t := transform.Transformation{Kind: transform.TypeSplit, Node: leaf.ID}
			// The inverse merges the group back together.
			var ids []int
			tree.Walk(func(n *schema.Node) {
				if n.Kind == schema.KindElement && n.Annotation == leaf.Annotation {
					ids = append(ids, n.ID)
				}
			})
			inv := &candidate{seq: []transform.Transformation{{
				Kind: transform.TypeMerge, Nodes: ids, Name: leaf.Annotation,
			}}, desc: "undo " + t.Describe(tree)}
			addSplit(t, inv)
		}
	}
	// Rule 3: repetition split on referenced set-valued leaves with a
	// skewed cardinality distribution (Section 4.6).
	for _, leaf := range refs {
		if !leaf.IsSetValued() || !leaf.IsLeaf() || leaf.Annotation == "" || leaf.SplitCount > 0 {
			continue
		}
		if leaf.AnnotatedAncestor() != host {
			continue
		}
		k := transform.SplitCountFor(leaf, a.Col)
		if k > 0 {
			t := transform.Transformation{Kind: transform.RepSplit, Node: leaf.ID, SplitCount: k}
			inv := &candidate{seq: []transform.Transformation{{
				Kind: transform.RepMerge, Node: leaf.ID,
			}}, desc: "undo " + t.Describe(tree)}
			addSplit(t, inv)
		}
	}
	// Workload-driven type merges: the query touches several
	// occurrences of one shared type with different annotations.
	byType := make(map[string][]*schema.Node)
	for _, leaf := range refs {
		if leaf.TypeName != "" {
			byType[leaf.TypeName] = append(byType[leaf.TypeName], leaf)
		}
	}
	for _, group := range byType {
		if len(group) < 2 {
			continue
		}
		full := tree.SharedTypeGroups()[group[0].TypeName]
		if len(full) < 2 {
			continue
		}
		parents := make(map[*schema.Node]bool)
		ok := true
		var ids []int
		for _, n := range full {
			anc := n.AnnotatedAncestor()
			if parents[anc] || n.SplitCount > 0 || len(n.Distributions) > 0 {
				ok = false
			}
			parents[anc] = true
			ids = append(ids, n.ID)
		}
		anns := make(map[string]bool)
		for _, n := range full {
			anns[n.Annotation] = true
		}
		if ok && len(anns) > 1 {
			addMerge(&candidate{seq: []transform.Transformation{{
				Kind: transform.TypeMerge, Nodes: ids,
			}}, desc: fmt.Sprintf("type-merge(%s)", group[0].TypeName)})
		}
	}
}

// allNonSubsumed builds split candidates from the full non-subsumed
// enumeration (used when candidate selection is disabled).
func (a *Advisor) allNonSubsumed(tree *schema.Tree) *selected {
	out := &selected{}
	for _, t := range transform.EnumerateNonSubsumed(tree, a.Col) {
		c := &candidate{seq: []transform.Transformation{t}, desc: t.Describe(tree)}
		if t.MergeType() {
			out.merges = append(out.merges, c)
			continue
		}
		out.splits = append(out.splits, c)
		if inv := invertSplit(tree, t); inv != nil {
			out.merges = append(out.merges, inv)
		}
	}
	return out
}

// invertSplit builds the merge-type inverse of a split transformation.
func invertSplit(tree *schema.Tree, t transform.Transformation) *candidate {
	switch t.Kind {
	case transform.UnionDist:
		return &candidate{seq: []transform.Transformation{{
			Kind: transform.UnionFact, Node: t.Node, Dist: t.Dist,
		}}, desc: "undo " + t.Describe(tree)}
	case transform.RepSplit:
		return &candidate{seq: []transform.Transformation{{
			Kind: transform.RepMerge, Node: t.Node,
		}}, desc: "undo " + t.Describe(tree)}
	case transform.TypeSplit:
		n := tree.Node(t.Node)
		if n == nil || n.Annotation == "" {
			return nil
		}
		var ids []int
		tree.Walk(func(m *schema.Node) {
			if m.Kind == schema.KindElement && m.Annotation == n.Annotation {
				ids = append(ids, m.ID)
			}
		})
		return &candidate{seq: []transform.Transformation{{
			Kind: transform.TypeMerge, Nodes: ids, Name: n.Annotation,
		}}, desc: "undo " + t.Describe(tree)}
	}
	return nil
}

// mergeCandidates implements Section 4.7: combine implicit-union
// candidates on the same relation into merged candidates using the
// I/O-saving heuristic benefit model (greedy strategy), all subsets
// (exhaustive), or nothing.
func (a *Advisor) mergeCandidates(tree *schema.Tree, sel *selected, met *Metrics) []*candidate {
	// Collect singleton implicit-union split candidates per host node.
	type implicit struct {
		host int
		opts []int
	}
	var singles []implicit
	for _, c := range sel.splits {
		if len(c.seq) != 1 {
			continue
		}
		t := c.seq[0]
		if t.Kind == transform.UnionDist && t.Dist.Choice == 0 {
			singles = append(singles, implicit{host: t.Node, opts: t.Dist.Optionals})
		}
	}
	if len(singles) < 2 || a.Opts.Merge == MergeNone {
		return nil
	}
	byHost := make(map[int][][]int)
	for _, s := range singles {
		byHost[s.host] = append(byHost[s.host], s.opts)
	}
	var merged []*candidate
	emit := func(host int, opts []int) {
		sort.Ints(opts)
		// The merged candidate factorizes the involved singletons (and
		// any previous merged sets they belong to) and distributes the
		// union of the optional sets; during search, inapplicable
		// members simply fail and the candidate is skipped that round.
		var seq []transform.Transformation
		for _, o := range opts {
			seq = append(seq, transform.Transformation{
				Kind: transform.UnionFact, Node: host,
				Dist: schema.Distribution{Optionals: []int{o}},
			})
		}
		seq = append(seq, transform.Transformation{
			Kind: transform.UnionDist, Node: host,
			Dist: schema.Distribution{Optionals: opts},
		})
		merged = append(merged, &candidate{seq: seq,
			desc: fmt.Sprintf("merged-implicit-union(%d:%v)", host, opts)})
	}
	switch a.Opts.Merge {
	case MergeExhaustive:
		for host, sets := range byHost {
			var all []int
			seen := make(map[int]bool)
			for _, s := range sets {
				for _, o := range s {
					if !seen[o] {
						seen[o] = true
						all = append(all, o)
					}
				}
			}
			sort.Ints(all)
			n := len(all)
			if n < 2 {
				continue
			}
			for mask := 1; mask < (1 << n); mask++ {
				if popcount(mask) < 2 {
					continue
				}
				var opts []int
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						opts = append(opts, all[i])
					}
				}
				emit(host, opts)
			}
		}
	default: // MergeGreedy
		for host, sets := range byHost {
			cur := make([][]int, len(sets))
			copy(cur, sets)
			for {
				bi, bj, bBenefit := -1, -1, 0.0
				for i := 0; i < len(cur); i++ {
					for j := i + 1; j < len(cur); j++ {
						if subsetOf(cur[i], cur[j]) || subsetOf(cur[j], cur[i]) {
							continue
						}
						u := union(cur[i], cur[j])
						b := a.mergedBenefit(tree, host, u, met)
						if b > bBenefit {
							bi, bj, bBenefit = i, j, b
						}
					}
				}
				if bi < 0 {
					break
				}
				u := union(cur[bi], cur[bj])
				emit(host, u)
				// Replace the pair with the merged set.
				next := [][]int{u}
				for k, s := range cur {
					if k != bi && k != bj {
						next = append(next, s)
					}
				}
				cur = next
			}
		}
	}
	return merged
}

// mergedBenefit is the heuristic I/O-saving model of Section 4.7.
func (a *Advisor) mergedBenefit(tree *schema.Tree, hostID int, opts []int, met *Metrics) float64 {
	host := tree.Node(hostID)
	if host == nil {
		return 0
	}
	// Fraction of host instances having none of the optionals
	// (independence assumption): rows the query skips when its
	// references are within the optional set.
	pNone := 1.0
	for _, o := range opts {
		pNone *= 1 - a.Col.Presence(o, hostID)
	}
	if pNone <= 0 {
		return 0
	}
	optSet := make(map[int]bool, len(opts))
	for _, o := range opts {
		optSet[o] = true
	}
	total := 0.0
	for _, wq := range a.W.Queries {
		ctxs := translate.ResolveContext(tree, wq.XPath.Context)
		applies := false
		for _, ctx := range ctxs {
			if hostAnchor(ctx) != host {
				continue
			}
			// The translator prunes a partition when all of its inline
			// projection slots are NULL, so the benefit condition is on
			// the projection leaves only (the selection is evaluated
			// inside whatever partitions remain).
			projLeaves := projectionLeavesOf(ctx, wq.XPath)
			inlineProj, within := 0, 0
			for _, l := range projLeaves {
				if l.Annotation == "" && l.IsLeaf() && l.ElementParent() == host {
					inlineProj++
					if optSet[l.ID] {
						within++
					}
				}
			}
			if inlineProj > 0 && inlineProj == within {
				applies = true
			}
		}
		if applies {
			total += wq.Weight * a.queryCostEstimate(tree, wq, met) * pNone
		}
	}
	return total
}

// projectionLeavesOf resolves only the projection paths of a query.
func projectionLeavesOf(ctx *schema.Node, q *xpath.Query) []*schema.Node {
	var out []*schema.Node
	seen := make(map[int]bool)
	for _, p := range q.Proj {
		for _, n := range resolveLeafPath(ctx, p) {
			if !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// queryCostEstimate costs one query under the current mapping with a
// bare configuration (cheap ranking oracle for merging), memoized per
// (mapping, query): the pairwise merge loop re-asks for the same costs
// once per candidate union.
func (a *Advisor) queryCostEstimate(tree *schema.Tree, wq workload.Query, met *Metrics) float64 {
	return a.service().queryCost(tree, wq, met)
}

// queryCostFull is the cache-miss path of queryCostEstimate.
func (a *Advisor) queryCostFull(tree *schema.Tree, wq workload.Query, met *Metrics) float64 {
	m, err := shred.Compile(tree)
	if err != nil {
		return 0
	}
	sql, err := translate.Translate(m, wq.XPath)
	if err != nil {
		return 0
	}
	opt := optimizer.New(shred.DeriveStats(m, a.Col))
	cost, err := opt.Cost(sql, nil)
	met.OptimizerCalls += opt.Calls
	if err != nil {
		return 0
	}
	return cost
}

// referencedLeaves resolves every selection and projection path of a
// query to leaf nodes under the context.
func referencedLeaves(ctx *schema.Node, q *xpath.Query) []*schema.Node {
	var out []*schema.Node
	seen := make(map[int]bool)
	addPath := func(p xpath.Path) {
		for _, n := range resolveLeafPath(ctx, p) {
			if !seen[n.ID] {
				seen[n.ID] = true
				out = append(out, n)
			}
		}
	}
	if q.Pred != nil {
		addPath(q.Pred.Path)
	}
	for _, p := range q.Proj {
		addPath(p)
	}
	return out
}

func resolveLeafPath(ctx *schema.Node, p xpath.Path) []*schema.Node {
	cur := []*schema.Node{ctx}
	for _, name := range p {
		var next []*schema.Node
		for _, n := range cur {
			for _, c := range n.ElementChildren() {
				if c.Name == name {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	var out []*schema.Node
	for _, n := range cur {
		if n.IsLeaf() {
			out = append(out, n)
		}
	}
	return out
}

// hostAnchor returns the annotated element hosting the context's
// inlined content.
func hostAnchor(ctx *schema.Node) *schema.Node {
	if ctx.Annotation != "" {
		return ctx
	}
	return ctx.AnnotatedAncestor()
}

// inlineChoicesOf lists the choice constructors inlined under an
// anchor.
func inlineChoicesOf(anchor *schema.Node) []*schema.Node {
	var out []*schema.Node
	var walk func(n *schema.Node)
	walk = func(n *schema.Node) {
		if n.Kind == schema.KindElement {
			return
		}
		if n.Kind == schema.KindChoice {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, c := range anchor.Children {
		walk(c)
	}
	return out
}

// branchTouches reports whether any referenced leaf lies under the
// branch subtree.
func branchTouches(branch *schema.Node, refs []*schema.Node) bool {
	for _, r := range refs {
		for p := r; p != nil; p = p.Parent {
			if p == branch {
				return true
			}
		}
	}
	return false
}

func subsetOf(a, b []int) bool {
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func union(a, b []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, x := range append(append([]int(nil), a...), b...) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
