package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/xmlgen"
)

// QueryAudit is one query's estimated-versus-measured entry.
type QueryAudit struct {
	// Tag is the source XPath.
	Tag string
	// Weight is the workload weight.
	Weight float64
	// EstCost is the advisor's estimated cost under the recommended
	// configuration (the number the search optimized).
	EstCost float64
	// Measured is the wall-clock time of one execution (averaged over
	// enough repetitions to be stable).
	Measured time.Duration
	// Rows is the result size; RowsScanned/RowsSought are the
	// executor's access counters for one execution.
	Rows, RowsScanned, RowsSought int64
	// Plan is the EXPLAIN-style rendering of the executed plan.
	Plan string
}

// Audit is a cost-model accuracy audit: per-query estimated cost next
// to measured execution on real data under the recommended design —
// the Fig. 5 estimated-vs-actual comparison, plus the ratio the cost
// model is supposed to keep roughly constant across queries.
type Audit struct {
	// Queries are the per-query entries, in workload order.
	Queries []QueryAudit
	// EstTotal is the weighted estimated workload cost.
	EstTotal float64
	// MeasuredTotal is the weighted measured workload time.
	MeasuredTotal time.Duration
}

// auditMinMeasure is the per-query measurement floor: queries faster
// than this are repeated until the total is meaningful.
const (
	auditMinMeasure = 5 * time.Millisecond
	auditMaxReps    = 256
)

// CostAudit loads the documents under the result's mapping, builds the
// recommended configuration, and measures every workload query,
// pairing each measurement with the advisor's estimated cost. The
// estimated side comes from Result.PerQueryCost (what the search
// optimized); the measured side re-plans against the loaded data's
// actual statistics, exactly like MeasureExecution.
func (a *Advisor) CostAudit(res *Result, docs ...*xmlgen.Doc) (*Audit, error) {
	db, built, err := a.BuildFor(res, docs...)
	if err != nil {
		return nil, err
	}
	sp := a.Opts.Obs.StartSpan("advisor.cost-audit",
		obs.Int("queries", int64(len(a.W.Queries))))
	defer sp.End()
	prov := stats.FromDatabase(db)
	opt := optimizer.New(prov)
	audit := &Audit{}
	for qi, wq := range a.W.Queries {
		sql, err := translate.Translate(res.Mapping, wq.XPath)
		if err != nil {
			return nil, fmt.Errorf("core: translating %s: %w", wq.XPath, err)
		}
		plan, err := opt.PlanQuery(sql, res.Config)
		if err != nil {
			return nil, fmt.Errorf("core: planning %s: %w", wq.XPath, err)
		}
		pp, err := built.Prepared(plan)
		if err != nil {
			return nil, fmt.Errorf("core: preparing %s: %w", wq.XPath, err)
		}
		pp.Workers = a.Opts.Workers
		qa := QueryAudit{Tag: wq.XPath.String(), Weight: wq.Weight, Plan: plan.Explain()}
		if qi < len(res.PerQueryCost) {
			qa.EstCost = res.PerQueryCost[qi]
		}
		// First execution: result size and access counters.
		out, err := pp.Execute()
		if err != nil {
			return nil, fmt.Errorf("core: executing %s: %w", wq.XPath, err)
		}
		qa.Rows = int64(len(out.Rows))
		qa.RowsScanned = out.Stats.RowsScanned
		qa.RowsSought = out.Stats.RowsSought
		// Timed repetitions until the total is stable, reporting the
		// per-execution average.
		reps := 1
		start := time.Now()
		if _, err := pp.Execute(); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if elapsed < auditMinMeasure && elapsed > 0 {
			reps = int(auditMinMeasure/elapsed) + 1
			if reps > auditMaxReps {
				reps = auditMaxReps
			}
			start = time.Now()
			for i := 0; i < reps; i++ {
				if _, err := pp.Execute(); err != nil {
					return nil, err
				}
			}
			elapsed = time.Since(start)
		}
		qa.Measured = elapsed / time.Duration(reps)
		audit.Queries = append(audit.Queries, qa)
		audit.EstTotal += qa.Weight * qa.EstCost
		audit.MeasuredTotal += time.Duration(qa.Weight * float64(qa.Measured))
	}
	sp.SetAttr(obs.Float("est_total", audit.EstTotal),
		obs.Int("measured_total_us", audit.MeasuredTotal.Microseconds()))
	return audit, nil
}

// WriteTable renders the audit as an aligned estimated-vs-measured
// table. The "x vs avg" column is each query's measured-per-estimated
// ratio normalized by the workload-wide ratio: a perfectly calibrated
// cost model (up to one global scale factor, which estimated cost
// units cannot fix) prints 1.00 everywhere; a query the model
// underestimates prints above one.
func (au *Audit) WriteTable(w io.Writer) error {
	var b strings.Builder
	b.WriteString("--- cost-model audit: estimated vs measured ---\n")
	fmt.Fprintf(&b, "%-44s %8s %10s %12s %10s %8s\n",
		"query", "weight", "est cost", "measured", "rows", "x vs avg")
	globalRatio := 0.0
	if au.EstTotal > 0 {
		globalRatio = float64(au.MeasuredTotal) / au.EstTotal
	}
	for _, q := range au.Queries {
		ratio := "-"
		if q.EstCost > 0 && globalRatio > 0 {
			ratio = fmt.Sprintf("%.2f", float64(q.Measured)/q.EstCost/globalRatio)
		}
		tag := q.Tag
		if len(tag) > 44 {
			tag = tag[:41] + "..."
		}
		fmt.Fprintf(&b, "%-44s %8.2f %10.2f %12s %10d %8s\n",
			tag, q.Weight, q.EstCost, q.Measured.Round(time.Microsecond), q.Rows, ratio)
	}
	fmt.Fprintf(&b, "weighted totals: estimated %.2f | measured %s\n",
		au.EstTotal, au.MeasuredTotal.Round(time.Microsecond))
	_, err := io.WriteString(w, b.String())
	return err
}
