package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/physical"
	"repro/internal/schema"
)

// Design is the portable form of a recommendation: the logical design
// as annotations/splits/distributions keyed by schema node ID, plus
// the physical configuration. A Design saved from one session applies
// to any structurally identical schema tree (node IDs are assigned
// deterministically), so a recommendation can be computed once and
// deployed later.
type Design struct {
	// Annotations maps element node IDs to relation names ("" entries
	// are omitted).
	Annotations map[int]string `json:"annotations"`
	// SplitCounts maps repetition-split leaf node IDs to k.
	SplitCounts map[int]int `json:"splitCounts,omitempty"`
	// Distributions maps annotated node IDs to their union
	// distributions.
	Distributions map[int][]schema.Distribution `json:"distributions,omitempty"`
	// Config is the physical configuration.
	Config *physical.Config `json:"config"`
	// EstCost records the estimated workload cost at recommendation
	// time.
	EstCost float64 `json:"estCost"`
	// Algorithm records which search produced the design.
	Algorithm string `json:"algorithm"`
}

// Design extracts the portable design from a search result.
func (r *Result) Design() *Design {
	d := &Design{
		Annotations:   make(map[int]string),
		SplitCounts:   make(map[int]int),
		Distributions: make(map[int][]schema.Distribution),
		Config:        r.Config,
		EstCost:       r.EstCost,
		Algorithm:     r.Algorithm,
	}
	r.Tree.Walk(func(n *schema.Node) {
		if n.Kind != schema.KindElement {
			return
		}
		if n.Annotation != "" {
			d.Annotations[n.ID] = n.Annotation
		}
		if n.SplitCount > 0 {
			d.SplitCounts[n.ID] = n.SplitCount
		}
		if len(n.Distributions) > 0 {
			d.Distributions[n.ID] = append([]schema.Distribution(nil), n.Distributions...)
		}
	})
	return d
}

// Apply stamps the design onto a clone of the given base schema tree
// (which must be structurally identical to the tree the design was
// extracted from) and returns the annotated clone.
func (d *Design) Apply(base *schema.Tree) (*schema.Tree, error) {
	tree := base.Clone()
	tree.Walk(func(n *schema.Node) {
		if n.Kind != schema.KindElement {
			return
		}
		n.Annotation = d.Annotations[n.ID]
		n.SplitCount = d.SplitCounts[n.ID]
		n.Distributions = nil
		if ds, ok := d.Distributions[n.ID]; ok {
			n.Distributions = append([]schema.Distribution(nil), ds...)
		}
	})
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("core: design does not apply to this schema: %w", err)
	}
	return tree, nil
}

// Save writes the design as JSON.
func (d *Design) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// LoadDesign reads a design from JSON.
func LoadDesign(r io.Reader) (*Design, error) {
	var d Design
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: loading design: %w", err)
	}
	if d.Config == nil {
		d.Config = &physical.Config{}
	}
	return &d, nil
}
