// Package core implements the paper's contribution: the combined
// logical + physical design search of Section 4. Given an annotated
// XSD schema tree, an XPath workload, statistics collected once at the
// finest granularity, and a storage bound, it finds a mapping and a
// physical configuration minimizing the estimated workload cost.
//
// Algorithms: Greedy (Fig. 3, with candidate selection §4.5,
// repetition-split count selection §4.6, candidate merging §4.7, and
// cost derivation §4.8), Naive-Greedy (§4.2), Two-Step (§5.1.1), and
// the hybrid-inlining baseline [20].
package core

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/physdesign"
	"repro/internal/physical"
	"repro/internal/rel"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/workload"
)

// MergeStrategy selects the candidate merging mode of Section 4.7.
type MergeStrategy int

const (
	// MergeGreedy is the paper's cost-based greedy pairwise merging.
	MergeGreedy MergeStrategy = iota
	// MergeNone disables candidate merging.
	MergeNone
	// MergeExhaustive enumerates every merged candidate.
	MergeExhaustive
)

func (m MergeStrategy) String() string {
	switch m {
	case MergeNone:
		return "none"
	case MergeExhaustive:
		return "exhaustive"
	}
	return "greedy"
}

// Options configures a search run.
type Options struct {
	// StorageBytes is the bound S on data plus structures; the
	// physical design tool receives what remains after the data.
	StorageBytes int64
	// Merge selects the candidate merging strategy (Fig. 8).
	Merge MergeStrategy
	// DisableCostDerivation turns off Section 4.8 (Fig. 9).
	DisableCostDerivation bool
	// DisableCandidateSelection replaces per-query candidate selection
	// with the full non-subsumed enumeration (Fig. 7's "other rules").
	DisableCandidateSelection bool
	// SearchSubsumed additionally searches subsumed transformations as
	// greedy candidates (Fig. 7's main ablation).
	SearchSubsumed bool
	// MaxRounds caps greedy rounds (0 = unlimited).
	MaxRounds int
	// DisableViews forwards to the physical design tool.
	DisableViews bool
	// EnableVPartitions forwards to the physical design tool.
	EnableVPartitions bool
	// Trace, when non-nil, receives per-round search narration.
	Trace io.Writer
	// Obs, when non-nil, records structured spans for every search
	// phase (candidate selection, candidate merging, per-candidate
	// evaluation, cost derivation, tuner calls); attach the same tracer
	// to the engine (Built.AttachObs) to cover executor stages too. A
	// nil tracer keeps every instrumented path a near-no-op.
	Obs *obs.Tracer
	// Registry, when non-nil, receives live counter/gauge mirrors of
	// the Metrics this run accumulates (advisor.* names), suitable for
	// expvar / -debug-addr exposure. The Metrics struct on Result stays
	// the per-run compatibility view.
	Registry *obs.Registry
	// Parallelism bounds concurrent candidate evaluations in every
	// search strategy — Greedy's per-round ranking and exact fallback
	// sweep, Naive-Greedy's enumeration, and Two-Step's phase-1 loop
	// (0 or 1 = sequential). Candidate costing only reads shared state,
	// so rounds parallelize cleanly; results and metric counts are
	// bit-identical to sequential runs at any setting.
	Parallelism int
	// Workers sizes the engine's intra-query morsel worker pool for the
	// executions MeasureExecution and CostAudit perform (0 or 1 =
	// serial per-branch pipeline, < 0 = GOMAXPROCS; see
	// engine.PreparedPlan.Workers). Results are bit-identical at any
	// setting; only wall-clock time changes, so the default of 0 keeps
	// measured timings comparable with earlier baselines.
	Workers int
}

// tracef writes search narration when tracing is enabled.
func (a *Advisor) tracef(format string, args ...any) {
	if a.Opts.Trace != nil {
		fmt.Fprintf(a.Opts.Trace, format+"\n", args...)
	}
}

// Metrics records search effort.
type Metrics struct {
	// Duration is the wall-clock search time.
	Duration time.Duration
	// Transformations is the number of transformation applications
	// enumerated (mappings generated).
	Transformations int
	// MappingsCosted is the number of mappings whose cost was fully
	// estimated by the physical design tool.
	MappingsCosted int
	// CostsDerived is the number of mapping costs obtained via cost
	// derivation instead of full tuning.
	CostsDerived int
	// PhysDesignCalls counts physical design tool invocations.
	PhysDesignCalls int
	// OptimizerCalls counts what-if optimizer invocations.
	OptimizerCalls int64
	// EvalCacheHits counts evaluations answered from the shared
	// memoization cache instead of being recomputed; EvalCacheMisses
	// counts evaluations computed and cached. Hits carry none of the
	// tool/optimizer effort the other counters measure.
	EvalCacheHits, EvalCacheMisses int
}

// merge accumulates another run's effort counters (used when candidate
// evaluations run in parallel). Duration accumulates too: per-candidate
// metrics never carry one, and callers that sum sub-run metrics (the
// experiment harness) used to silently lose the sub-runs' wall time.
func (m *Metrics) merge(o Metrics) {
	m.Duration += o.Duration
	m.Transformations += o.Transformations
	m.MappingsCosted += o.MappingsCosted
	m.CostsDerived += o.CostsDerived
	m.PhysDesignCalls += o.PhysDesignCalls
	m.OptimizerCalls += o.OptimizerCalls
	m.EvalCacheHits += o.EvalCacheHits
	m.EvalCacheMisses += o.EvalCacheMisses
}

// Result is a search outcome.
type Result struct {
	// Algorithm names the search algorithm.
	Algorithm string
	// Tree is the recommended annotated schema (the logical design).
	Tree *schema.Tree
	// Mapping is the compiled relational mapping.
	Mapping *shred.Mapping
	// Config is the recommended physical configuration.
	Config *physical.Config
	// SQL are the workload queries translated under Mapping.
	SQL []*sqlast.Query
	// Prov holds the derived statistics the recommendation was costed
	// with.
	Prov stats.MapProvider
	// EstCost is the estimated weighted workload cost.
	EstCost float64
	// PerQueryCost are the estimated costs of each workload query under
	// Config, aligned with SQL (the cost-audit baseline).
	PerQueryCost []float64
	// Plans are the optimizer plans behind PerQueryCost (EXPLAIN
	// reporting and the cost audit).
	Plans []*optimizer.Plan
	// Metrics records the search effort.
	Metrics Metrics
}

// Advisor runs the search algorithms.
type Advisor struct {
	// Base is the starting annotated schema (hybrid inlining).
	Base *schema.Tree
	// Col holds the finest-granularity statistics (Section 4.1).
	Col *stats.Collection
	// W is the XPath workload.
	W *workload.Workload
	// Opts configures the run.
	Opts Options

	// svc is the shared evaluation service (worker pool + memoization
	// cache), created lazily; it persists across strategy runs so
	// Greedy, Naive-Greedy, and Two-Step on one advisor reuse each
	// other's evaluations.
	svcOnce sync.Once
	svc     *evalService
}

// New creates an advisor.
func New(base *schema.Tree, col *stats.Collection, w *workload.Workload, opts Options) *Advisor {
	return &Advisor{Base: base, Col: col, W: w, Opts: opts}
}

// physOpts derives the tool options, subtracting the data size of the
// given mapping from the storage bound.
func (a *Advisor) physOpts(prov stats.Provider, m *shred.Mapping) physdesign.Options {
	opts := physdesign.Options{
		DisableViews:      a.Opts.DisableViews,
		EnableVPartitions: a.Opts.EnableVPartitions,
	}
	if a.Opts.StorageBytes > 0 {
		var data int64
		for _, r := range m.Relations {
			if ts := prov.TableStats(r.Name); ts != nil {
				data += ts.Bytes()
			}
		}
		left := a.Opts.StorageBytes - data
		if left < 1 {
			left = 1
		}
		opts.StorageBytes = left
	}
	if len(a.W.Updates) > 0 {
		opts.InsertRates = a.insertRates(m, prov)
	}
	return opts
}

// insertRates converts the workload's element-level insert streams to
// per-table row rates under a mapping: inserting one instance of an
// element inserts rows into the relation of every descendant-or-self
// anchor, at the average per-instance fanout taken from the
// statistics, split across partition relations by their row shares.
func (a *Advisor) insertRates(m *shred.Mapping, prov stats.Provider) map[string]float64 {
	rates := make(map[string]float64)
	for _, u := range a.W.Updates {
		for _, elem := range m.Tree.ElementsNamed(u.Element) {
			elemCount := float64(a.Col.InstanceCount(elem.ID))
			if elemCount == 0 {
				continue
			}
			for _, r := range m.Relations {
				var perInstance float64
				for _, anchor := range r.Anchors {
					if !descendantOrSelf(anchor, elem) {
						continue
					}
					perInstance += float64(a.Col.InstanceCount(anchor.ID)) / elemCount
				}
				if perInstance == 0 {
					continue
				}
				// Split across sibling partitions by row share.
				share := 1.0
				group := m.RelationsOf(r.Ann)
				if len(group) > 1 {
					var total, mine float64
					for _, pr := range group {
						if ts := prov.TableStats(pr.Name); ts != nil {
							total += float64(ts.Rows)
							if pr == r {
								mine = float64(ts.Rows)
							}
						}
					}
					if total > 0 {
						share = mine / total
					}
				}
				rates[r.Name] += u.Rate * perInstance * share
			}
		}
	}
	return rates
}

// descendantOrSelf reports whether n is elem or a descendant of it.
func descendantOrSelf(n, elem *schema.Node) bool {
	for p := n; p != nil; p = p.Parent {
		if p == elem {
			return true
		}
	}
	return false
}

// evalResult is a fully costed mapping.
type evalResult struct {
	tree    *schema.Tree
	mapping *shred.Mapping
	prov    stats.MapProvider
	sqls    []*sqlast.Query
	rec     *physdesign.Recommendation
	cost    float64
}

// evaluate returns the full evaluation of a mapping, memoized by its
// canonical signature: the first request per distinct mapping pays one
// physical design tool call, and every repeat — across rounds,
// candidates, and search strategies — is a cache hit.
func (a *Advisor) evaluate(tree *schema.Tree, met *Metrics) (*evalResult, error) {
	return a.service().evaluate(tree, met)
}

// evaluateFull compiles, translates, derives statistics, and tunes a
// mapping — one full physical design tool call (the cache-miss path of
// evaluate). Each call is one per-candidate-evaluation span with a
// nested tuner-call span.
func (a *Advisor) evaluateFull(tree *schema.Tree, met *Metrics) (*evalResult, error) {
	sp := a.Opts.Obs.StartSpan("advisor.evaluate")
	defer sp.End()
	ev, w, err := a.prepare(tree)
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		return nil, err
	}
	sp.SetAttr(obs.Int("relations", int64(len(ev.mapping.Relations))))
	tsp := sp.Child("physdesign.tune")
	popts := a.physOpts(ev.prov, ev.mapping)
	popts.Obs = tsp
	rec, err := physdesign.Tune(w, ev.prov, popts)
	tsp.End()
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
		return nil, err
	}
	met.PhysDesignCalls++
	met.MappingsCosted++
	met.OptimizerCalls += rec.OptimizerCalls
	ev.rec = rec
	ev.cost = rec.TotalCost
	sp.SetAttr(obs.Float("cost", ev.cost))
	return ev, nil
}

// prepare compiles and translates a mapping without tuning.
func (a *Advisor) prepare(tree *schema.Tree) (*evalResult, physdesign.Workload, error) {
	m, err := shred.Compile(tree)
	if err != nil {
		return nil, nil, err
	}
	prov := shred.DeriveStats(m, a.Col)
	ev := &evalResult{tree: tree, mapping: m, prov: prov}
	var w physdesign.Workload
	for _, q := range a.W.Queries {
		sql, err := translate.Translate(m, q.XPath)
		if err != nil {
			return nil, nil, fmt.Errorf("core: translating %s: %w", q.XPath, err)
		}
		ev.sqls = append(ev.sqls, sql)
		w = append(w, physdesign.WeightedQuery{Q: sql, Weight: q.Weight, Tag: q.XPath.String()})
	}
	return ev, w, nil
}

// HybridBaseline tunes the physical design of the hybrid-inlining
// mapping without any logical search — the normalization baseline of
// Section 5.1.4.
func (a *Advisor) HybridBaseline() (*Result, error) {
	start := time.Now()
	var met Metrics
	ev, err := a.evaluate(a.Base.Clone(), &met)
	if err != nil {
		return nil, err
	}
	met.Duration = time.Since(start)
	return a.result("Hybrid", ev, met), nil
}

func (a *Advisor) result(alg string, ev *evalResult, met Metrics) *Result {
	a.publishMetrics(alg, met, ev.cost)
	return &Result{
		Algorithm:    alg,
		Tree:         ev.tree,
		Mapping:      ev.mapping,
		Config:       ev.rec.Config,
		SQL:          ev.sqls,
		Prov:         ev.prov,
		EstCost:      ev.cost,
		PerQueryCost: ev.rec.PerQuery,
		Plans:        ev.rec.Plans,
		Metrics:      met,
	}
}

// publishMetrics mirrors a finished run's Metrics into the registry
// (advisor.* counters accumulate across runs; gauges hold the latest
// run). No-op without a registry.
func (a *Advisor) publishMetrics(alg string, met Metrics, cost float64) {
	reg := a.Opts.Registry
	if reg == nil {
		return
	}
	reg.Counter("advisor.runs").Inc()
	reg.Counter("advisor.transformations").Add(int64(met.Transformations))
	reg.Counter("advisor.mappings_costed").Add(int64(met.MappingsCosted))
	reg.Counter("advisor.costs_derived").Add(int64(met.CostsDerived))
	reg.Counter("advisor.physdesign_calls").Add(int64(met.PhysDesignCalls))
	reg.Counter("advisor.optimizer_calls").Add(met.OptimizerCalls)
	reg.Counter("advisor.eval_cache_hits").Add(int64(met.EvalCacheHits))
	reg.Counter("advisor.eval_cache_misses").Add(int64(met.EvalCacheMisses))
	reg.Gauge("advisor.last_duration_ms").Set(float64(met.Duration) / float64(time.Millisecond))
	reg.Gauge("advisor.last_est_cost").Set(cost)
	reg.Gauge("advisor.est_cost." + strings.ToLower(alg)).Set(cost)
}

// defaultConfig is Two-Step's phase-1 physical design guess: a
// clustered index on ID and a secondary index on PID for every
// relation (Section 5.1.1).
func defaultConfig(m *shred.Mapping) *physical.Config {
	cfg := &physical.Config{}
	for _, r := range m.Relations {
		cfg.AddIndex(&physical.Index{
			Name: "pk_" + r.Name, Table: r.Name, Key: []string{rel.IDColumn},
		})
		cfg.AddIndex(&physical.Index{
			Name: "fk_" + r.Name, Table: r.Name, Key: []string{rel.PIDColumn},
		})
	}
	return cfg
}

// costUnder estimates the workload cost under a fixed configuration
// (no tuning) — Two-Step's phase-1 cost oracle.
func (a *Advisor) costUnder(tree *schema.Tree, cfg func(*shred.Mapping) *physical.Config, met *Metrics) (*evalResult, float64, error) {
	sp := a.Opts.Obs.StartSpan("advisor.cost-fixed")
	defer sp.End()
	ev, w, err := a.prepare(tree)
	if err != nil {
		return nil, 0, err
	}
	opt := optimizer.New(ev.prov)
	total := 0.0
	c := cfg(ev.mapping)
	for _, wq := range w {
		cost, err := opt.Cost(wq.Q, c)
		if err != nil {
			return nil, 0, err
		}
		total += wq.Weight * cost
	}
	met.OptimizerCalls += opt.Calls
	sp.SetAttr(obs.Float("cost", total))
	return ev, total, nil
}
