package core

import (
	"testing"

	"repro/internal/physdesign"
	"repro/internal/physical"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/transform"
)

// evalFor fully evaluates a tree for derivation tests.
func evalFor(t *testing.T, adv *Advisor, tree *schema.Tree) *evalResult {
	t.Helper()
	var met Metrics
	ev, err := adv.evaluate(tree, &met)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestChangedTablesDetectsColumnChanges(t *testing.T) {
	fx := dblpFixture(t, dblpTestQueries)
	adv := New(fx.base, fx.col, fx.w, Options{})
	cur := evalFor(t, adv, fx.base.Clone())

	// Repetition split on inproceedings' author changes the
	// inproceedings relation (new columns) and the author relation
	// (overflow rows, same columns -> author itself is unchanged
	// structurally).
	next := fx.base.Clone()
	for _, n := range next.ElementsNamed("author") {
		if n.ElementParent().Name == "inproceedings" {
			n.SplitCount = 3
		}
	}
	nextEv, _, err := adv.prepare(next)
	if err != nil {
		t.Fatal(err)
	}
	changed := changedTables(cur, nextEv)
	if !changed["inproceedings"] {
		t.Error("inproceedings should be marked changed (split columns)")
	}
	if changed["book"] || changed["cite"] {
		t.Errorf("unrelated tables marked changed: %v", changed)
	}
}

func TestChangedTablesDetectsPartitions(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	adv := New(fx.base, fx.col, fx.w, Options{})
	cur := evalFor(t, adv, fx.base.Clone())
	next := fx.base.Clone()
	movie := next.ElementsNamed("movie")[0]
	rating := next.ElementsNamed("avg_rating")[0]
	movie.Distributions = []schema.Distribution{{Optionals: []int{rating.ID}}}
	nextEv, _, err := adv.prepare(next)
	if err != nil {
		t.Fatal(err)
	}
	changed := changedTables(cur, nextEv)
	// The movie table disappears; two partition tables appear.
	for _, want := range []string{"movie", "movie_has_avg_rating", "movie_no_avg_rating"} {
		if !changed[want] {
			t.Errorf("%s should be marked changed; got %v", want, changed)
		}
	}
	if changed["actor"] {
		t.Error("actor should be unchanged")
	}
}

func TestDeriveCostMatchesExactForIrrelevantChange(t *testing.T) {
	// A repetition split on movie's aka_title must not change the cost
	// of a query that only touches book-unrelated tables... use a
	// query on director only; the changed tables are movie (columns)
	// and aka_title.
	fx := movieFixture(t, []string{
		`//movie[year = 1984]/(title | seasons | director)`,
	})
	adv := New(fx.base, fx.col, fx.w, Options{})
	cur := evalFor(t, adv, fx.base.Clone())

	next := fx.base.Clone()
	for _, n := range next.ElementsNamed("aka_title") {
		n.SplitCount = 2
	}
	var met Metrics
	derived, err := adv.deriveCost(cur, next, &met)
	if err != nil {
		t.Fatal(err)
	}
	exact := evalFor(t, adv, next)
	// The derivation may retune some queries; it must stay close to the
	// exact estimate (Fig 9a: small quality deltas).
	if derived < exact.cost*0.5 || derived > exact.cost*2 {
		t.Errorf("derived %.2f vs exact %.2f", derived, exact.cost)
	}
}

// TestRetainedStructBytes pins the storage-budget accounting during
// derivation retuning: retained indexes, views, AND vertical partitions
// must all reduce the retune budget. Partitions were previously
// ignored, so a retune could recommend structures that no longer fit
// alongside a retained partitioning.
func TestRetainedStructBytes(t *testing.T) {
	ts := &stats.TableStats{Name: "t", Rows: 100, RowBytes: 40}
	cur := &evalResult{
		prov: stats.MapProvider{"t": ts},
		rec: &physdesign.Recommendation{Config: &physical.Config{
			Indexes:    []*physical.Index{{Name: "i1", Table: "t", Key: []string{"a"}}},
			Partitions: []*physical.VPartition{{Table: "t", Groups: [][]string{{"a"}, {"b"}}}},
		}},
	}
	idx := cur.rec.Config.Indexes[0]
	vp := cur.rec.Config.Partitions[0]

	if got := retainedStructBytes(cur, map[string]bool{}); got != 0 {
		t.Errorf("nothing retained: got %d bytes, want 0", got)
	}
	wantVP := vp.EstBytes(ts) - ts.Bytes()
	if wantVP <= 0 {
		t.Fatalf("fixture partition has no overhead (%d); test is vacuous", wantVP)
	}
	// Plans reference partition groups as table#gN (optimizer object
	// naming); any referenced group retains the whole partitioning.
	if got := retainedStructBytes(cur, map[string]bool{"t#g1": true}); got != wantVP {
		t.Errorf("retained partition: got %d bytes, want %d", got, wantVP)
	}
	wantBoth := idx.EstBytes(ts) + wantVP
	retained := map[string]bool{idx.ID(): true, "t#g0": true}
	if got := retainedStructBytes(cur, retained); got != wantBoth {
		t.Errorf("index+partition: got %d bytes, want %d", got, wantBoth)
	}
}

func TestInvertCandidateRoundTrip(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	tree := schema.ApplyFullInlining(fx.base.Clone())
	rating := tree.ElementsNamed("avg_rating")[0]
	movie := tree.ElementsNamed("movie")[0]
	c := &candidate{seq: []transform.Transformation{
		{Kind: transform.UnionDist, Node: movie.ID,
			Dist: schema.Distribution{Optionals: []int{rating.ID}}},
	}, desc: "dist"}
	applied, err := c.apply(tree)
	if err != nil {
		t.Fatal(err)
	}
	inv := invertCandidate(c)
	if inv == nil {
		t.Fatal("no inverse")
	}
	back, err := inv.apply(applied)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Node(movie.ID).Distributions) != 0 {
		t.Error("inverse did not remove the distribution")
	}
	// Type merges have no clean inverse.
	tm := &candidate{seq: []transform.Transformation{{Kind: transform.TypeMerge, Nodes: []int{1, 2}}}}
	if invertCandidate(tm) != nil {
		t.Error("type merge should not be invertible")
	}
}
