package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/rel"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/xmlgen"
)

// Execution is the measured outcome of running the workload under a
// recommended design on real data.
type Execution struct {
	// Elapsed is the total wall-clock execution time of the workload.
	Elapsed time.Duration
	// Rows is the total number of result rows produced.
	Rows int64
	// DataBytes is the loaded data size; StructBytes the materialized
	// structure size.
	DataBytes, StructBytes int64
}

// MeasureExecution loads the documents under the result's mapping,
// materializes the recommended configuration, and executes every
// workload query, repeated in proportion to its weight (fractional
// weights are scaled and rounded half-up; see executionReps), returning
// real execution measurements — the quality metric of Section 5.1.4.
func (a *Advisor) MeasureExecution(res *Result, docs ...*xmlgen.Doc) (*Execution, error) {
	return a.MeasureExecutionContext(context.Background(), res, docs...)
}

// MeasureExecutionContext is MeasureExecution with cancellation: ctx
// aborts the measurement between (and, via the engine's per-batch
// polling, inside) query executions. Options.Workers sets the engine's
// morsel worker pool for every measured execution; the default of 0
// keeps the serial per-branch path, whose timings are the paper's
// baseline.
func (a *Advisor) MeasureExecutionContext(ctx context.Context, res *Result, docs ...*xmlgen.Doc) (*Execution, error) {
	db, built, err := a.BuildFor(res, docs...)
	if err != nil {
		return nil, err
	}
	prov := stats.FromDatabase(db)
	opt := optimizer.New(prov)
	type prepared struct {
		pp     *engine.PreparedPlan
		weight float64
	}
	var plans []prepared
	for _, wq := range a.W.Queries {
		sql, err := translate.Translate(res.Mapping, wq.XPath)
		if err != nil {
			return nil, fmt.Errorf("core: translating %s: %w", wq.XPath, err)
		}
		plan, err := opt.PlanQuery(sql, res.Config)
		if err != nil {
			return nil, fmt.Errorf("core: planning %s: %w", wq.XPath, err)
		}
		// Prepare once per query: repeated executions below (and the
		// stability passes) reuse the compiled pipeline and the Built's
		// cached probe structures instead of recompiling per run.
		pp, err := built.PreparedContext(ctx, plan)
		if err != nil {
			return nil, fmt.Errorf("core: preparing %s: %w", wq.XPath, err)
		}
		pp.Workers = a.Opts.Workers
		plans = append(plans, prepared{pp: pp, weight: wq.Weight})
	}
	weights := make([]float64, len(plans))
	for i, p := range plans {
		weights[i] = p.weight
	}
	reps := executionReps(weights)
	ex := &Execution{DataBytes: db.Bytes(), StructBytes: built.StructBytes}
	runOnce := func(count bool) error {
		for pi, p := range plans {
			for r := 0; r < reps[pi]; r++ {
				out, err := p.pp.ExecuteContext(ctx)
				if err != nil {
					return fmt.Errorf("core: executing workload: %w", err)
				}
				if count {
					ex.Rows += int64(len(out.Rows))
				}
			}
		}
		return nil
	}
	// Wall-clock stability: repeat short workloads until the total
	// measured time is long enough to be meaningful, and report the
	// per-pass average.
	start := time.Now()
	if err := runOnce(true); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	const minMeasure = 30 * time.Millisecond
	if elapsed < minMeasure && elapsed > 0 {
		passes := int(minMeasure/elapsed) + 1
		if passes > 50 {
			passes = 50
		}
		start = time.Now()
		for i := 0; i < passes; i++ {
			if err := runOnce(false); err != nil {
				return nil, err
			}
		}
		elapsed = time.Since(start) / time.Duration(passes)
	}
	ex.Elapsed = elapsed
	return ex, nil
}

// maxExecReps caps per-query repetitions so scaled-up fractional
// weights cannot blow up measurement time.
const maxExecReps = 64

// executionReps converts workload weights to repetition counts that
// preserve weight ratios: weights are scaled so the smallest positive
// weight executes at least once (and the largest at most maxExecReps
// times), then rounded half-up, with a floor of one execution per
// query. Truncating instead (the old behavior) made a weight of 2.9
// execute twice and 0.5 once — the measured workload no longer matched
// the weighted cost the advisor optimized.
func executionReps(weights []float64) []int {
	minW, maxW := math.Inf(1), 0.0
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		minW = math.Min(minW, w)
		maxW = math.Max(maxW, w)
	}
	scale := 1.0
	if maxW > 0 {
		if minW < 1 {
			scale = 1 / minW
		}
		if maxW*scale > maxExecReps {
			scale = maxExecReps / maxW
		}
	}
	reps := make([]int, len(weights))
	for i, w := range weights {
		r := int(math.Floor(w*scale + 0.5))
		if r < 1 {
			r = 1
		}
		reps[i] = r
	}
	return reps
}

// BuildFor loads the documents under the result's recommended mapping
// and materializes the recommended physical configuration, with the
// advisor's observability attached. It is the shared entry into real
// execution (MeasureExecution, CostAudit) and durable persistence
// (storage.Save takes the returned Built).
func (a *Advisor) BuildFor(res *Result, docs ...*xmlgen.Doc) (*rel.Database, *engine.Built, error) {
	db, err := shredLoad(res, docs)
	if err != nil {
		return nil, nil, err
	}
	built, err := engine.Build(db, res.Config)
	if err != nil {
		return nil, nil, fmt.Errorf("core: building configuration: %w", err)
	}
	built.AttachObs(a.Opts.Obs, a.Opts.Registry)
	return db, built, nil
}

func shredLoad(res *Result, docs []*xmlgen.Doc) (*rel.Database, error) {
	db, err := shred.Shred(res.Mapping, docs...)
	if err != nil {
		return nil, fmt.Errorf("core: loading data under recommended mapping: %w", err)
	}
	return db, nil
}
