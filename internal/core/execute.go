package core

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/optimizer"
	"repro/internal/rel"
	"repro/internal/shred"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/xmlgen"
)

// Execution is the measured outcome of running the workload under a
// recommended design on real data.
type Execution struct {
	// Elapsed is the total wall-clock execution time of the workload.
	Elapsed time.Duration
	// Rows is the total number of result rows produced.
	Rows int64
	// DataBytes is the loaded data size; StructBytes the materialized
	// structure size.
	DataBytes, StructBytes int64
}

// MeasureExecution loads the documents under the result's mapping,
// materializes the recommended configuration, and executes every
// workload query (repeated by its integer weight), returning real
// execution measurements — the quality metric of Section 5.1.4.
func (a *Advisor) MeasureExecution(res *Result, docs ...*xmlgen.Doc) (*Execution, error) {
	db, err := shredLoad(res, docs)
	if err != nil {
		return nil, err
	}
	built, err := engine.Build(db, res.Config)
	if err != nil {
		return nil, fmt.Errorf("core: building configuration: %w", err)
	}
	prov := stats.FromDatabase(db)
	opt := optimizer.New(prov)
	type prepared struct {
		plan   *optimizer.Plan
		weight float64
	}
	var plans []prepared
	for i, wq := range a.W.Queries {
		sql, err := translate.Translate(res.Mapping, wq.XPath)
		if err != nil {
			return nil, fmt.Errorf("core: translating %s: %w", wq.XPath, err)
		}
		_ = i
		plan, err := opt.PlanQuery(sql, res.Config)
		if err != nil {
			return nil, fmt.Errorf("core: planning %s: %w", wq.XPath, err)
		}
		plans = append(plans, prepared{plan: plan, weight: wq.Weight})
	}
	ex := &Execution{DataBytes: db.Bytes(), StructBytes: built.StructBytes}
	runOnce := func(count bool) error {
		for _, p := range plans {
			reps := int(p.weight)
			if reps < 1 {
				reps = 1
			}
			for r := 0; r < reps; r++ {
				out, err := engine.Execute(built, p.plan)
				if err != nil {
					return fmt.Errorf("core: executing workload: %w", err)
				}
				if count {
					ex.Rows += int64(len(out.Rows))
				}
			}
		}
		return nil
	}
	// Wall-clock stability: repeat short workloads until the total
	// measured time is long enough to be meaningful, and report the
	// per-pass average.
	start := time.Now()
	if err := runOnce(true); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	const minMeasure = 30 * time.Millisecond
	if elapsed < minMeasure && elapsed > 0 {
		passes := int(minMeasure/elapsed) + 1
		if passes > 50 {
			passes = 50
		}
		start = time.Now()
		for i := 0; i < passes; i++ {
			if err := runOnce(false); err != nil {
				return nil, err
			}
		}
		elapsed = time.Since(start) / time.Duration(passes)
	}
	ex.Elapsed = elapsed
	return ex, nil
}

func shredLoad(res *Result, docs []*xmlgen.Doc) (*rel.Database, error) {
	db, err := shred.Shred(res.Mapping, docs...)
	if err != nil {
		return nil, fmt.Errorf("core: loading data under recommended mapping: %w", err)
	}
	return db, nil
}
