package core

import (
	"reflect"
	"testing"
)

// TestExecutionReps pins the weight-to-repetition scaling: ratios are
// preserved by scaling the smallest positive weight to at least one
// execution and rounding half-up, instead of the old int() truncation
// that turned {2.9, 0.5} into {2, 0} reps (then floored to {2, 1},
// a 2:1 workload instead of the intended ~6:1).
func TestExecutionReps(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
		want    []int
	}{
		{"uniform", []float64{1, 1, 1}, []int{1, 1, 1}},
		{"integral", []float64{1, 3}, []int{1, 3}},
		// 0.5 scales to 1; 2.9 scales to 5.8, rounds half-up to 6.
		{"fractional", []float64{2.9, 0.5}, []int{6, 1}},
		// 2.9 alone: min weight >= 1 so no scale-up; rounds to 3.
		{"round half up", []float64{2.9}, []int{3}},
		{"round down", []float64{1, 2.4}, []int{1, 2}},
		// 0.5 would scale 128 to 256; the cap rescales so the largest
		// runs maxExecReps times and the smallest keeps its floor of 1.
		{"capped", []float64{0.5, 128}, []int{1, maxExecReps}},
		// Non-positive weights still execute once (floor).
		{"zero weight", []float64{0, 2}, []int{1, 2}},
		{"empty", []float64{}, []int{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := executionReps(tc.weights)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("executionReps(%v) = %v, want %v", tc.weights, got, tc.want)
			}
		})
	}
}
