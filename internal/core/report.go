package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/schema"
)

// WriteReport renders a human-readable advisor report: the chosen
// logical design as a schema-tree grammar and applied-transformation
// summary, the relational schema, the physical configuration, and (in
// verbose mode) the per-query translations with estimated costs and
// EXPLAIN-style plans.
func (r *Result) WriteReport(w io.Writer, verbose bool) error {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s recommendation ===\n", r.Algorithm)
	fmt.Fprintf(&b, "estimated workload cost: %.2f\n", r.EstCost)
	b.WriteString(r.Metrics.Summary())

	b.WriteString("\n--- logical design ---\n")
	b.WriteString(r.Tree.String())
	b.WriteString("\n")
	if feats := r.designFeatures(); len(feats) > 0 {
		b.WriteString("\napplied transformations:\n")
		for _, f := range feats {
			fmt.Fprintf(&b, "  - %s\n", f)
		}
	}

	b.WriteString("\n--- relational schema ---\n")
	b.WriteString(r.Mapping.SQLSchema())

	b.WriteString("\n--- physical design ---\n")
	cfg := r.Config.String()
	if cfg == "" {
		cfg = "(none)\n"
	}
	b.WriteString(cfg)

	if verbose {
		b.WriteString("\n--- translated workload ---\n")
		for i, sql := range r.SQL {
			fmt.Fprintf(&b, "-- query %d\n%s\n", i+1, sql.SQL())
			if i < len(r.PerQueryCost) {
				fmt.Fprintf(&b, "-- estimated cost: %.2f\n", r.PerQueryCost[i])
			}
			if i < len(r.Plans) && r.Plans[i] != nil {
				b.WriteString("-- plan:\n")
				for _, line := range strings.Split(strings.TrimRight(r.Plans[i].Explain(), "\n"), "\n") {
					fmt.Fprintf(&b, "--   %s\n", line)
				}
			}
			b.WriteString("\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary renders the effort counters as report lines: every Metrics
// field is printed (wall time rounded to a millisecond, cache traffic
// with its hit rate), so nothing the search counted is invisible in
// reports.
func (m Metrics) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "search: %s | %d transformations searched | %d mappings costed | %d tool calls | %d optimizer calls | %d costs derived\n",
		m.Duration.Round(time.Millisecond), m.Transformations, m.MappingsCosted,
		m.PhysDesignCalls, m.OptimizerCalls, m.CostsDerived)
	fmt.Fprintf(&b, "eval cache: %d hits | %d misses", m.EvalCacheHits, m.EvalCacheMisses)
	if total := m.EvalCacheHits + m.EvalCacheMisses; total > 0 {
		fmt.Fprintf(&b, " | %.1f%% hit rate", 100*float64(m.EvalCacheHits)/float64(total))
	}
	b.WriteString("\n")
	return b.String()
}

// designFeatures summarizes the non-default logical design decisions.
func (r *Result) designFeatures() []string {
	var out []string
	for _, n := range r.Tree.Elements() {
		if n.SplitCount > 0 {
			out = append(out, fmt.Sprintf("repetition split: first %d occurrences of %s inlined into %s",
				n.SplitCount, n.Path(), parentAnnotation(n)))
		}
		for _, d := range n.Distributions {
			if d.Choice != 0 {
				c := r.Tree.Node(d.Choice)
				names := make([]string, 0, len(c.Children))
				for _, br := range c.Children {
					names = append(names, branchLabel(br))
				}
				out = append(out, fmt.Sprintf("union distribution: %s partitioned by (%s)",
					n.Path(), strings.Join(names, " | ")))
			} else {
				names := make([]string, 0, len(d.Optionals))
				for _, id := range d.Optionals {
					if o := r.Tree.Node(id); o != nil {
						names = append(names, o.Name)
					}
				}
				out = append(out, fmt.Sprintf("implicit union: %s partitioned by presence of {%s}",
					n.Path(), strings.Join(names, ", ")))
			}
		}
	}
	// Type splits/merges: annotations shared or renamed relative to the
	// relation count are visible in the schema itself; report shared
	// annotations explicitly.
	byAnn := map[string][]string{}
	for _, n := range r.Tree.Annotated() {
		byAnn[n.Annotation] = append(byAnn[n.Annotation], n.Path())
	}
	anns := make([]string, 0, len(byAnn))
	for ann := range byAnn {
		anns = append(anns, ann)
	}
	sort.Strings(anns) // deterministic report order
	for _, ann := range anns {
		if paths := byAnn[ann]; len(paths) > 1 {
			out = append(out, fmt.Sprintf("type merge: {%s} share relation %q", strings.Join(paths, ", "), ann))
		}
	}
	return out
}

func parentAnnotation(n *schema.Node) string {
	if a := n.AnnotatedAncestor(); a != nil {
		return a.Annotation
	}
	return "parent"
}

func branchLabel(n *schema.Node) string {
	if n.Name != "" {
		return n.Name
	}
	elems := n.ElementChildren()
	if len(elems) > 0 {
		return elems[0].Name
	}
	return "branch"
}
