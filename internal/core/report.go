package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/schema"
)

// WriteReport renders a human-readable advisor report: the chosen
// logical design as a schema-tree grammar and applied-transformation
// summary, the relational schema, the physical configuration, and the
// per-query translations with estimated costs.
func (r *Result) WriteReport(w io.Writer, verbose bool) error {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s recommendation ===\n", r.Algorithm)
	fmt.Fprintf(&b, "estimated workload cost: %.2f\n", r.EstCost)
	fmt.Fprintf(&b, "search: %s | %d transformations searched | %d tool calls | %d optimizer calls | %d costs derived\n",
		r.Metrics.Duration.Round(1e6), r.Metrics.Transformations, r.Metrics.PhysDesignCalls,
		r.Metrics.OptimizerCalls, r.Metrics.CostsDerived)
	fmt.Fprintf(&b, "eval cache: %d hits | %d misses\n",
		r.Metrics.EvalCacheHits, r.Metrics.EvalCacheMisses)

	b.WriteString("\n--- logical design ---\n")
	b.WriteString(r.Tree.String())
	b.WriteString("\n")
	if feats := r.designFeatures(); len(feats) > 0 {
		b.WriteString("\napplied transformations:\n")
		for _, f := range feats {
			fmt.Fprintf(&b, "  - %s\n", f)
		}
	}

	b.WriteString("\n--- relational schema ---\n")
	b.WriteString(r.Mapping.SQLSchema())

	b.WriteString("\n--- physical design ---\n")
	cfg := r.Config.String()
	if cfg == "" {
		cfg = "(none)\n"
	}
	b.WriteString(cfg)

	if verbose {
		b.WriteString("\n--- translated workload ---\n")
		for i, sql := range r.SQL {
			fmt.Fprintf(&b, "-- query %d\n%s\n\n", i+1, sql.SQL())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// designFeatures summarizes the non-default logical design decisions.
func (r *Result) designFeatures() []string {
	var out []string
	for _, n := range r.Tree.Elements() {
		if n.SplitCount > 0 {
			out = append(out, fmt.Sprintf("repetition split: first %d occurrences of %s inlined into %s",
				n.SplitCount, n.Path(), parentAnnotation(n)))
		}
		for _, d := range n.Distributions {
			if d.Choice != 0 {
				c := r.Tree.Node(d.Choice)
				names := make([]string, 0, len(c.Children))
				for _, br := range c.Children {
					names = append(names, branchLabel(br))
				}
				out = append(out, fmt.Sprintf("union distribution: %s partitioned by (%s)",
					n.Path(), strings.Join(names, " | ")))
			} else {
				names := make([]string, 0, len(d.Optionals))
				for _, id := range d.Optionals {
					if o := r.Tree.Node(id); o != nil {
						names = append(names, o.Name)
					}
				}
				out = append(out, fmt.Sprintf("implicit union: %s partitioned by presence of {%s}",
					n.Path(), strings.Join(names, ", ")))
			}
		}
	}
	// Type splits/merges: annotations shared or renamed relative to the
	// relation count are visible in the schema itself; report shared
	// annotations explicitly.
	byAnn := map[string][]string{}
	for _, n := range r.Tree.Annotated() {
		byAnn[n.Annotation] = append(byAnn[n.Annotation], n.Path())
	}
	for ann, paths := range byAnn {
		if len(paths) > 1 {
			out = append(out, fmt.Sprintf("type merge: {%s} share relation %q", strings.Join(paths, ", "), ann))
		}
	}
	return out
}

func parentAnnotation(n *schema.Node) string {
	if a := n.AnnotatedAncestor(); a != nil {
		return a.Annotation
	}
	return "parent"
}

func branchLabel(n *schema.Node) string {
	if n.Name != "" {
		return n.Name
	}
	elems := n.ElementChildren()
	if len(elems) > 0 {
		return elems[0].Name
	}
	return "branch"
}
