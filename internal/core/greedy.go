package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/physdesign"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/transform"
)

// Greedy runs the paper's search algorithm (Fig. 3): candidate
// selection picks workload-relevant non-subsumed transformations
// (§4.5), all split-type candidates form the initial fully split
// mapping M0, implicit-union candidates are merged (§4.7), and the
// greedy loop repeatedly applies the merge-type candidate with the
// lowest tool-estimated cost, using cost derivation (§4.8) during
// enumeration and exact re-estimation for each round's winner.
func (a *Advisor) Greedy() (*Result, error) {
	start := time.Now()
	var met Metrics
	root := a.Opts.Obs.StartSpan("search", obs.String("algorithm", "greedy"))
	defer root.End()

	// Line 1: candidate selection on the fully inlined schema
	// (subsumed transformations are never applied alone; the schema
	// the search works on is kept fully inlined, §4.3).
	base := schema.ApplyFullInlining(a.Base.Clone())
	ssp := root.Child("candidate-selection")
	var sel *selected
	if a.Opts.DisableCandidateSelection {
		sel = a.allNonSubsumed(base)
	} else {
		sel = a.selectCandidates(base)
	}
	ssp.SetAttr(obs.Int("splits", int64(len(sel.splits))),
		obs.Int("merges", int64(len(sel.merges))))
	ssp.End()

	// Line 2: initial mapping M0 = all split candidates applied.
	cur := base
	for _, c := range sel.splits {
		next, err := c.apply(cur)
		if err != nil {
			continue // inapplicable in combination; skip
		}
		cur = next
		met.Transformations++
	}

	// Line 3: candidate merging.
	msp := root.Child("candidate-merging")
	cands := append([]*candidate(nil), sel.merges...)
	cands = append(cands, a.mergeCandidates(cur, sel, &met)...)
	if a.Opts.SearchSubsumed {
		// Ablation: also search subsumed transformations (what a naive
		// extension would do); each costs physical design calls but
		// cannot beat vertical partitioning / covering indexes.
		for _, t := range transform.EnumerateAll(cur, a.Col) {
			if t.Subsumed() {
				cands = append(cands, &candidate{seq: []transform.Transformation{t}, desc: t.Describe(cur)})
			}
		}
	}
	msp.SetAttr(obs.Int("candidates", int64(len(cands))))
	msp.End()

	// Line 5: tool call on M0.
	curEval, err := a.evaluate(cur, &met)
	if err != nil {
		return nil, fmt.Errorf("core: costing initial mapping: %w", err)
	}
	a.tracef("greedy: %d split candidates applied, %d merge candidates, M0 cost %.2f",
		len(sel.splits), len(cands), curEval.cost)

	// Lines 6-19: greedy rounds. Candidates that fail to improve the
	// cost in several consecutive rounds are retired: they could in
	// principle become useful after another merge, but in practice
	// they only multiply tool calls (this is the "judicious
	// exploration" the paper's running-time numbers depend on).
	const maxStrikes = 2
	seen := make(map[string]bool, len(cands))
	strikes := make([]int, len(cands))
	for _, c := range cands {
		seen[c.key()] = true
	}
	for round := 0; a.Opts.MaxRounds == 0 || round < a.Opts.MaxRounds; round++ {
		rsp := root.Child("search-round", obs.Int("round", int64(round)))
		bestIdx := -1
		var bestTree *schema.Tree
		var bestEv *evalResult // exact evaluation, when already available
		bestCost := curEval.cost
		// Derivation ranks candidates cheaply; the few best-ranked are
		// re-estimated exactly below, so a pessimistic derivation
		// cannot steer the round to the wrong winner.
		type rankedCand struct {
			idx  int
			tree *schema.Tree
			cost float64
		}
		var ranked []rankedCand
		// Rank every surviving candidate on the shared worker pool:
		// each evaluation is pure and memoized, and the reduction below
		// runs sequentially in candidate order, so strike bookkeeping,
		// tie-breaking (lowest index wins), and Metrics totals match a
		// sequential run exactly.
		outcomes := make([]candOutcome, len(cands))
		a.service().forEach(len(cands), func(ci int) {
			c := cands[ci]
			if c == nil {
				return
			}
			o := &outcomes[ci]
			next, err := c.apply(curEval.tree)
			if err != nil {
				return // not applicable this round; may apply later
			}
			o.applied = true
			o.tree = next
			o.met.Transformations++
			if a.Opts.DisableCostDerivation {
				ev, err := a.evaluate(next, &o.met)
				if err != nil {
					o.failed = true
					return
				}
				o.cost = ev.cost
			} else {
				cost, err := a.deriveCost(curEval, next, &o.met)
				if err != nil {
					o.failed = true
					return
				}
				o.cost = cost
			}
		})
		for ci := range cands {
			if cands[ci] == nil {
				continue
			}
			o := &outcomes[ci]
			if !o.applied {
				continue
			}
			met.merge(o.met)
			if o.failed {
				cands[ci] = nil
				continue
			}
			if !a.Opts.DisableCostDerivation {
				ranked = append(ranked, rankedCand{ci, o.tree, o.cost})
			}
			if o.cost < curEval.cost {
				strikes[ci] = 0
			} else {
				strikes[ci]++
				if strikes[ci] >= maxStrikes {
					cands[ci] = nil
				}
			}
			if o.cost < bestCost {
				bestIdx, bestTree, bestCost = ci, o.tree, o.cost
			}
		}
		if !a.Opts.DisableCostDerivation && len(ranked) > 0 {
			// Walk the derived ranking and accept the first candidate
			// whose exact re-estimation improves the cost. Usually the
			// derived winner confirms on the first try (one exact
			// estimation per round, the paper's line 18); only when a
			// pessimistic derivation misranks do further candidates
			// get an exact look.
			sort.Slice(ranked, func(i, j int) bool { return ranked[i].cost < ranked[j].cost })
			const escalateLimit = 3
			bestIdx = -1
			bestCost = curEval.cost
			for i := 0; i < len(ranked) && i < escalateLimit; i++ {
				if cands[ranked[i].idx] == nil {
					continue // retired by strikes this round
				}
				ev, err := a.evaluate(ranked[i].tree, &met)
				if err != nil {
					cands[ranked[i].idx] = nil
					continue
				}
				if ev.cost < bestCost {
					bestIdx, bestTree, bestCost, bestEv = ranked[i].idx, ranked[i].tree, ev.cost, ev
					break
				}
			}
		}
		if bestIdx < 0 {
			// Derived costs are heuristic; before stopping, sweep the
			// surviving candidates once with exact estimation so a
			// candidate hidden by a pessimistic derivation cannot end
			// the search prematurely (this bounds the quality loss of
			// §4.8 the way the paper's line 18 re-estimation intends).
			if a.Opts.DisableCostDerivation {
				rsp.End()
				break
			}
			fsp := rsp.Child("fallback-sweep")
			sweep := make([]candOutcome, len(cands))
			a.service().forEach(len(cands), func(ci int) {
				c := cands[ci]
				if c == nil {
					return
				}
				o := &sweep[ci]
				next, err := c.apply(curEval.tree)
				if err != nil {
					return
				}
				o.applied = true
				o.tree = next
				o.met.Transformations++
				ev, err := a.evaluate(next, &o.met)
				if err != nil {
					o.failed = true
					return
				}
				o.ev, o.cost = ev, ev.cost
			})
			for ci := range cands {
				if cands[ci] == nil || !sweep[ci].applied {
					continue
				}
				o := &sweep[ci]
				met.merge(o.met)
				if o.failed {
					cands[ci] = nil
					continue
				}
				if o.cost < bestCost {
					bestIdx, bestTree, bestCost, bestEv = ci, o.tree, o.cost, o.ev
				}
			}
			fsp.End()
			if bestIdx < 0 {
				rsp.End()
				break
			}
			a.tracef("greedy round %d: exact fallback sweep found %s", round, cands[bestIdx].desc)
		}
		// Line 18: re-estimate the winner exactly and advance (reusing
		// the exact evaluation when one was already produced above).
		ev := bestEv
		if ev == nil {
			var err error
			ev, err = a.evaluate(bestTree, &met)
			if err != nil {
				rsp.End()
				return nil, err
			}
		}
		if ev.cost >= curEval.cost {
			a.tracef("greedy round %d: %s rejected on exact re-estimation (%.2f >= %.2f)",
				round, cands[bestIdx].desc, ev.cost, curEval.cost)
			cands[bestIdx] = nil
			rsp.SetAttr(obs.String("outcome", "rejected"))
			rsp.End()
			continue
		}
		a.tracef("greedy round %d: applied %s, cost %.2f -> %.2f",
			round, cands[bestIdx].desc, curEval.cost, ev.cost)
		// Accepting a candidate makes its inverse available, so a move
		// that later turns out to block better states can be rolled
		// back (merged distributions in particular acquire their
		// factorization counterparts here).
		if inv := invertCandidate(cands[bestIdx]); inv != nil && !seen[inv.key()] {
			seen[inv.key()] = true
			cands = append(cands, inv)
			strikes = append(strikes, 0)
		}
		curEval = ev
		cands[bestIdx] = nil
		rsp.SetAttr(obs.String("outcome", "applied"), obs.Float("cost", ev.cost))
		rsp.End()
	}
	// Safety net: the fully inlined schema (the hybrid-inlining
	// default) is always in the search space; never return a design
	// that costs more than it.
	if baseEval, err := a.evaluate(schema.ApplyFullInlining(a.Base.Clone()), &met); err == nil && baseEval.cost < curEval.cost {
		curEval = baseEval
	}
	met.Duration = time.Since(start)
	return a.result("Greedy", curEval, met), nil
}

// candOutcome carries one candidate's evaluation out of a parallel
// ranking or sweep phase; results are reduced sequentially in candidate
// order afterwards.
type candOutcome struct {
	tree    *schema.Tree
	ev      *evalResult // exact evaluation, when one was produced
	cost    float64
	met     Metrics
	applied bool // the candidate applied to the current tree
	failed  bool // evaluation/derivation error: retire the candidate
}

// invertCandidate builds the reverse of an applied candidate where a
// clean inverse exists (distribution/factorization and repetition
// split/merge sequences); nil otherwise.
func invertCandidate(c *candidate) *candidate {
	inv := &candidate{desc: "undo " + c.desc}
	for i := len(c.seq) - 1; i >= 0; i-- {
		t := c.seq[i]
		switch t.Kind {
		case transform.UnionDist:
			inv.seq = append(inv.seq, transform.Transformation{
				Kind: transform.UnionFact, Node: t.Node, Dist: t.Dist})
		case transform.UnionFact:
			inv.seq = append(inv.seq, transform.Transformation{
				Kind: transform.UnionDist, Node: t.Node, Dist: t.Dist})
		case transform.RepSplit:
			inv.seq = append(inv.seq, transform.Transformation{
				Kind: transform.RepMerge, Node: t.Node})
		case transform.RepMerge:
			inv.seq = append(inv.seq, transform.Transformation{
				Kind: transform.RepSplit, Node: t.Node, SplitCount: t.SplitCount})
		default:
			return nil // type merges and splits are not round-tripped
		}
	}
	return inv
}

// deriveCost returns the Section 4.8 derived cost of moving from cur
// to next, memoized by the pair of mapping signatures (rejected-winner
// rounds re-derive identical pairs).
func (a *Advisor) deriveCost(cur *evalResult, next *schema.Tree, met *Metrics) (float64, error) {
	return a.service().deriveCost(cur, next, met)
}

// deriveCostFull estimates the workload cost of a transformed mapping
// from the current evaluation (§4.8): queries whose plans avoid every
// changed relation keep their cost (irrelevant-relation rule; the
// repetition-split rule falls out because covering-index-only plans do
// not list the base table among their objects), and only the remaining
// queries are re-tuned with the space left after the retained
// structures.
func (a *Advisor) deriveCostFull(cur *evalResult, next *schema.Tree, met *Metrics) (float64, error) {
	sp := a.Opts.Obs.StartSpan("advisor.derive-cost")
	defer sp.End()
	ev, w, err := a.prepare(next)
	if err != nil {
		return 0, err
	}
	changed := changedTables(cur, ev)
	total := 0.0
	var retune physdesign.Workload
	retained := make(map[string]bool)
	for i := range a.W.Queries {
		if derivable(cur, i, changed, ev) {
			total += a.W.Queries[i].Weight * cur.rec.PerQuery[i]
			met.CostsDerived++
			for _, obj := range cur.rec.Plans[i].Objects() {
				retained[obj] = true
			}
			continue
		}
		retune = append(retune, w[i])
	}
	sp.SetAttr(obs.Int("derived_queries", int64(len(a.W.Queries)-len(retune))),
		obs.Int("retuned_queries", int64(len(retune))))
	if len(retune) == 0 {
		return total, nil
	}
	// Reduce the tool's budget by the structures the derived queries
	// keep using.
	opts := a.physOpts(ev.prov, ev.mapping)
	if opts.StorageBytes > 0 {
		opts.StorageBytes -= retainedStructBytes(cur, retained)
		if opts.StorageBytes < 1 {
			opts.StorageBytes = 1
		}
	}
	tsp := sp.Child("physdesign.tune")
	opts.Obs = tsp
	rec, err := physdesign.Tune(retune, ev.prov, opts)
	tsp.End()
	if err != nil {
		return 0, err
	}
	met.PhysDesignCalls++
	met.OptimizerCalls += rec.OptimizerCalls
	ri := 0
	for i := range a.W.Queries {
		if derivable(cur, i, changed, ev) {
			continue
		}
		total += a.W.Queries[i].Weight * rec.PerQuery[ri]
		ri++
	}
	return total, nil
}

// retainedStructBytes sums the sizes of the current configuration's
// structures that derived-query plans keep using, charged against the
// re-tuning budget the same way the tool accounts for them: full size
// for indexes and views, and the key-replication overhead over the base
// data for vertical partitions (derivable plans may scan partition
// groups — "table#gN" objects — so with EnableVPartitions on, omitting
// them would hand the re-tuning call an inflated budget).
func retainedStructBytes(cur *evalResult, retained map[string]bool) int64 {
	var bytes int64
	for _, idx := range cur.rec.Config.Indexes {
		if retained[idx.ID()] {
			bytes += idx.EstBytes(cur.prov.TableStats(idx.Table))
		}
	}
	for _, v := range cur.rec.Config.Views {
		if retained["view:"+v.Name] {
			bytes += v.EstBytes(cur.prov)
		}
	}
	for _, vp := range cur.rec.Config.Partitions {
		used := false
		for gi := range vp.Groups {
			if retained[fmt.Sprintf("%s#g%d", vp.Table, gi)] {
				used = true
				break
			}
		}
		if !used {
			continue
		}
		if ts := cur.prov.TableStats(vp.Table); ts != nil {
			bytes += vp.EstBytes(ts) - ts.Bytes()
		}
	}
	return bytes
}

// changedTables diffs two mappings: tables that exist in only one, or
// whose column sets differ.
func changedTables(cur, next *evalResult) map[string]bool {
	sig := func(e *evalResult) map[string]string {
		out := make(map[string]string, len(e.mapping.Relations))
		for _, r := range e.mapping.Relations {
			var b strings.Builder
			for _, c := range r.Columns {
				fmt.Fprintf(&b, "%s:%d;", c.Name, c.Typ)
			}
			out[r.Name] = b.String()
		}
		return out
	}
	a, b := sig(cur), sig(next)
	changed := make(map[string]bool)
	for t, s := range a {
		if b[t] != s {
			changed[t] = true
		}
	}
	for t, s := range b {
		if a[t] != s {
			changed[t] = true
		}
	}
	return changed
}

// derivable implements the I(Q,M') = I(Q,M) heuristics: the plan under
// the current mapping must not read any changed table directly, and
// any index it uses on a changed table must remain definable (all its
// columns survive in the new mapping).
func derivable(cur *evalResult, qi int, changed map[string]bool, next *evalResult) bool {
	plan := cur.rec.Plans[qi]
	if plan == nil {
		return false
	}
	for _, obj := range plan.Objects() {
		switch {
		case strings.HasPrefix(obj, "idx:"):
			table := indexObjectTable(obj)
			if !changed[table] {
				continue
			}
			if !indexSurvives(cur, obj, next) {
				return false
			}
		case strings.HasPrefix(obj, "view:"):
			v := cur.rec.Config.View(strings.TrimPrefix(obj, "view:"))
			if v == nil || changed[v.Outer] || changed[v.Inner] {
				return false
			}
		default:
			t := obj
			if i := strings.Index(t, "#g"); i >= 0 {
				t = t[:i]
			}
			if changed[t] {
				return false
			}
		}
	}
	return true
}

// indexObjectTable extracts the table from "idx:table(cols)inc(...)".
func indexObjectTable(obj string) string {
	s := strings.TrimPrefix(obj, "idx:")
	if i := strings.Index(s, "("); i >= 0 {
		return s[:i]
	}
	return s
}

// indexSurvives checks that every column of the index still exists in
// the new mapping's relation (the repetition-split rule of §4.8: a
// covering index untouched by the split keeps its size and plan).
func indexSurvives(cur *evalResult, obj string, next *evalResult) bool {
	for _, idx := range cur.rec.Config.Indexes {
		if idx.ID() != obj {
			continue
		}
		r := next.mapping.Relation(idx.Table)
		if r == nil {
			return false
		}
		have := make(map[string]bool, len(r.Columns))
		for _, c := range r.Columns {
			have[c.Name] = true
		}
		for _, c := range append(append([]string(nil), idx.Key...), idx.Include...) {
			if !have[c] {
				return false
			}
		}
		return true
	}
	return false
}

var _ stats.Provider = stats.MapProvider(nil)
