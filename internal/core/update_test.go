package core

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/workload"
)

// TestUpdateWorkloadThinsConfiguration covers the future-work
// extension: an insert-heavy workload must receive a leaner physical
// design than the same read workload, because every structure pays
// maintenance per inserted row.
func TestUpdateWorkloadThinsConfiguration(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)

	readOnly := New(fx.base, fx.col, fx.w, Options{})
	ro, err := readOnly.HybridBaseline()
	if err != nil {
		t.Fatal(err)
	}

	heavy := &workload.Workload{Name: "updates", Queries: fx.w.Queries,
		Updates: []workload.Update{{Element: "movie", Rate: 100000}}}
	upAdv := New(fx.base, fx.col, heavy, Options{})
	up, err := upAdv.HybridBaseline()
	if err != nil {
		t.Fatal(err)
	}

	roStructs := len(ro.Config.Indexes) + len(ro.Config.Views)
	upStructs := len(up.Config.Indexes) + len(up.Config.Views)
	if upStructs >= roStructs {
		t.Errorf("update-heavy config has %d structures, read-only has %d; expected fewer",
			upStructs, roStructs)
	}
}

// TestUpdateRatesFanOut checks the element-to-relation rate mapping:
// inserting a movie instance inserts its set-valued children at their
// average fanout.
func TestUpdateRatesFanOut(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	w := &workload.Workload{Name: "u", Queries: fx.w.Queries,
		Updates: []workload.Update{{Element: "movie", Rate: 10}}}
	adv := New(fx.base, fx.col, w, Options{})
	ev, _, err := adv.prepare(fx.base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	rates := adv.insertRates(ev.mapping, ev.prov)
	if rates["movie"] != 10 {
		t.Errorf("movie rate = %f, want 10", rates["movie"])
	}
	// actor fanout is ~5 per movie (uniform 0..10).
	if rates["actor"] < 30 || rates["actor"] > 70 {
		t.Errorf("actor rate = %f, want ~50", rates["actor"])
	}
	// Parent relations above movie receive nothing.
	if rates["movies"] != 0 {
		t.Errorf("movies rate = %f, want 0", rates["movies"])
	}
}

// TestUpdateRatesSplitAcrossPartitions checks that an element's insert
// rate is divided among its partition relations by row share.
func TestUpdateRatesSplitAcrossPartitions(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	tree := fx.base.Clone()
	movie := tree.ElementsNamed("movie")[0]
	choice := tree.ElementsNamed("box_office")[0].UnderChoice()
	movie.Distributions = []schema.Distribution{{Choice: choice.ID}}
	w := &workload.Workload{Name: "u", Queries: fx.w.Queries,
		Updates: []workload.Update{{Element: "movie", Rate: 10}}}
	adv := New(fx.base, fx.col, w, Options{})
	ev, _, err := adv.prepare(tree)
	if err != nil {
		t.Fatal(err)
	}
	rates := adv.insertRates(ev.mapping, ev.prov)
	box := rates["movie_box_office"]
	seasons := rates["movie_seasons"]
	if box <= 0 || seasons <= 0 {
		t.Fatalf("partition rates: box=%f seasons=%f", box, seasons)
	}
	if got := box + seasons; got < 9.9 || got > 10.1 {
		t.Errorf("partition rates sum to %f, want 10", got)
	}
	// The 70/30 choice weighting shows in the shares.
	if box <= seasons {
		t.Errorf("box_office share (%f) should exceed seasons (%f)", box, seasons)
	}
}
