package core

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/transform"
	"repro/internal/xpath"
)

func advisorFor(t *testing.T, fx *fixture) *Advisor {
	t.Helper()
	return New(fx.base, fx.col, fx.w, Options{})
}

func candidateKinds(cands []*candidate) map[transform.Kind]int {
	out := map[transform.Kind]int{}
	for _, c := range cands {
		for _, tf := range c.seq {
			out[tf.Kind]++
		}
	}
	return out
}

func TestSelectCandidatesRule2Implicit(t *testing.T) {
	// A query touching only the optional avg_rating must produce an
	// implicit-union split candidate (§4.5 rule 2).
	fx := movieFixture(t, []string{`//movie/avg_rating`})
	adv := advisorFor(t, fx)
	base := schema.ApplyFullInlining(fx.base.Clone())
	sel := adv.selectCandidates(base)
	kinds := candidateKinds(sel.splits)
	if kinds[transform.UnionDist] == 0 {
		t.Errorf("no union distribution selected: %v", describeAll(sel.splits))
	}
	// Its inverse must be among the merge candidates.
	if candidateKinds(sel.merges)[transform.UnionFact] == 0 {
		t.Errorf("no factorization inverse: %v", describeAll(sel.merges))
	}
}

func TestSelectCandidatesRule2Choice(t *testing.T) {
	// A query touching only box_office (one of two choice branches)
	// produces a choice distribution candidate.
	fx := movieFixture(t, []string{`//movie[year >= 2000]/box_office`})
	adv := advisorFor(t, fx)
	base := schema.ApplyFullInlining(fx.base.Clone())
	sel := adv.selectCandidates(base)
	found := false
	for _, c := range sel.splits {
		for _, tf := range c.seq {
			if tf.Kind == transform.UnionDist && tf.Dist.Choice != 0 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no choice distribution selected: %v", describeAll(sel.splits))
	}
}

func TestSelectCandidatesRule3RepSplit(t *testing.T) {
	fx := dblpFixture(t, []string{`//inproceedings[year = 2000]/(title | author)`})
	adv := advisorFor(t, fx)
	base := schema.ApplyFullInlining(fx.base.Clone())
	sel := adv.selectCandidates(base)
	kinds := candidateKinds(sel.splits)
	if kinds[transform.RepSplit] == 0 {
		t.Errorf("no repetition split selected: %v", describeAll(sel.splits))
	}
}

func TestSelectCandidatesSkipsIrrelevant(t *testing.T) {
	// A query touching only required scalar columns should produce no
	// distribution candidates for untouched optionals.
	fx := movieFixture(t, []string{`//movie[year = 1990]/title`})
	adv := advisorFor(t, fx)
	base := schema.ApplyFullInlining(fx.base.Clone())
	sel := adv.selectCandidates(base)
	for _, c := range sel.splits {
		if strings.Contains(c.desc, "avg_rating") || strings.Contains(c.desc, "language") {
			t.Errorf("irrelevant candidate selected: %s", c.desc)
		}
	}
}

func TestSelectCandidatesNeverSubsumed(t *testing.T) {
	fx := movieFixture(t, movieTestQueries)
	adv := advisorFor(t, fx)
	base := schema.ApplyFullInlining(fx.base.Clone())
	sel := adv.selectCandidates(base)
	for _, c := range append(append([]*candidate{}, sel.splits...), sel.merges...) {
		for _, tf := range c.seq {
			if tf.Subsumed() {
				t.Errorf("subsumed transformation selected: %s", c.desc)
			}
		}
	}
}

func TestMergeCandidatesGreedy(t *testing.T) {
	// Three queries each touching one optional of movie: greedy merging
	// must produce at least one merged implicit union (the §4.7
	// Q1/Q2 example).
	fx := movieFixture(t, []string{
		`//movie[year >= 1960]/avg_rating`,
		`//movie[year >= 1960]/language`,
		`//movie[year >= 1960]/runtime`,
	})
	adv := advisorFor(t, fx)
	base := schema.ApplyFullInlining(fx.base.Clone())
	sel := adv.selectCandidates(base)
	cur := base
	for _, c := range sel.splits {
		if next, err := c.apply(cur); err == nil {
			cur = next
		}
	}
	var met Metrics
	merged := adv.mergeCandidates(cur, sel, &met)
	if len(merged) == 0 {
		t.Fatal("greedy merging produced nothing")
	}
	// A merged candidate factorizes singletons then distributes the
	// union.
	c := merged[0]
	var facts, dists int
	for _, tf := range c.seq {
		switch tf.Kind {
		case transform.UnionFact:
			facts++
		case transform.UnionDist:
			dists++
			if len(tf.Dist.Optionals) < 2 {
				t.Errorf("merged distribution has %d optionals", len(tf.Dist.Optionals))
			}
		}
	}
	if facts < 2 || dists != 1 {
		t.Errorf("merged candidate shape: %d facts, %d dists", facts, dists)
	}
	// And it must apply cleanly to the fully split mapping.
	if _, err := c.apply(cur); err != nil {
		t.Errorf("merged candidate does not apply: %v", err)
	}
}

func TestMergeCandidatesExhaustiveSuperset(t *testing.T) {
	fx := movieFixture(t, []string{
		`//movie[year >= 1960]/avg_rating`,
		`//movie[year >= 1960]/language`,
		`//movie[year >= 1960]/runtime`,
	})
	base := schema.ApplyFullInlining(fx.base.Clone())
	greedyAdv := New(fx.base, fx.col, fx.w, Options{Merge: MergeGreedy})
	exAdv := New(fx.base, fx.col, fx.w, Options{Merge: MergeExhaustive})
	noneAdv := New(fx.base, fx.col, fx.w, Options{Merge: MergeNone})
	sel := greedyAdv.selectCandidates(base)
	cur := base
	for _, c := range sel.splits {
		if next, err := c.apply(cur); err == nil {
			cur = next
		}
	}
	var met Metrics
	g := greedyAdv.mergeCandidates(cur, sel, &met)
	e := exAdv.mergeCandidates(cur, sel, &met)
	n := noneAdv.mergeCandidates(cur, sel, &met)
	if len(n) != 0 {
		t.Errorf("MergeNone produced %d candidates", len(n))
	}
	if len(e) < len(g) {
		t.Errorf("exhaustive (%d) produced fewer than greedy (%d)", len(e), len(g))
	}
}

func TestInvertSplitShapes(t *testing.T) {
	tree := schema.ApplyFullInlining(schema.DBLP().Clone())
	for _, tf := range transform.EnumerateNonSubsumed(tree, nil) {
		if tf.MergeType() {
			continue
		}
		inv := invertSplit(tree, tf)
		if tf.Kind == transform.RepSplit || tf.Kind == transform.UnionDist || tf.Kind == transform.TypeSplit {
			if inv == nil {
				t.Errorf("no inverse for %s", tf.Describe(tree))
				continue
			}
			// Inverse of a split applied after the split restores a
			// compilable mapping.
			mid, err := tf.Apply(tree)
			if err != nil {
				continue
			}
			if _, err := inv.apply(mid); err != nil {
				t.Errorf("inverse of %s does not apply: %v", tf.Describe(tree), err)
			}
		}
	}
}

func TestReferencedLeaves(t *testing.T) {
	tree := schema.Movie()
	ctx := tree.ElementsNamed("movie")[0]
	q := xpath.MustParse(`//movie[year = 2000]/(title | actor)`)
	refs := referencedLeaves(ctx, q)
	names := map[string]bool{}
	for _, n := range refs {
		names[n.Name] = true
	}
	for _, want := range []string{"year", "title", "actor"} {
		if !names[want] {
			t.Errorf("missing referenced leaf %s: %v", want, names)
		}
	}
	if len(refs) != 3 {
		t.Errorf("refs = %d", len(refs))
	}
}

func describeAll(cs []*candidate) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.desc
	}
	return out
}
