package core

import (
	"testing"
)

// TestHybridBeatsFullySplit reproduces the Section 5.1.4 observation
// that hybrid inlining outperforms the fully split mapping once
// physical design is available: fewer joins, and covering indexes
// substitute for the fine-grained partitioning.
func TestHybridBeatsFullySplit(t *testing.T) {
	fx := dblpFixture(t, []string{
		`//inproceedings[year = 2000]/(title | booktitle | pages | ee | author)`,
		`//book[publisher = "publisher-03"]/(title | year | publisher | isbn | price)`,
	})
	adv := New(fx.base, fx.col, fx.w, Options{})
	hy, err := adv.HybridBaseline()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := adv.FullySplitBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if hy.EstCost > fs.EstCost {
		t.Errorf("hybrid (%.2f) should beat fully split (%.2f) under physical design",
			hy.EstCost, fs.EstCost)
	}
	// And on real execution.
	hyEx, err := adv.MeasureExecution(hy, fx.docs...)
	if err != nil {
		t.Fatal(err)
	}
	fsEx, err := adv.MeasureExecution(fs, fx.docs...)
	if err != nil {
		t.Fatal(err)
	}
	if hyEx.Elapsed > fsEx.Elapsed*3/2 {
		t.Errorf("hybrid measured %v much worse than fully split %v", hyEx.Elapsed, fsEx.Elapsed)
	}
}

// TestTwoStepUsesDefaultConfigInPhaseOne pins the phase-1 cost oracle:
// a clustered ID index and a PID index per relation, no tool calls.
func TestTwoStepUsesDefaultConfigInPhaseOne(t *testing.T) {
	fx := movieFixture(t, movieTestQueries[:2])
	adv := New(fx.base, fx.col, fx.w, Options{MaxRounds: 1})
	res, err := adv.TwoStep()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.PhysDesignCalls != 1 {
		t.Errorf("phase 1 must not call the tool; total calls = %d", res.Metrics.PhysDesignCalls)
	}
	if res.Metrics.Transformations == 0 {
		t.Error("phase 1 searched nothing")
	}
	cfg := defaultConfig(res.Mapping)
	perRelation := 2
	if got := len(cfg.Indexes); got != perRelation*len(res.Mapping.Relations) {
		t.Errorf("default config has %d indexes for %d relations", got, len(res.Mapping.Relations))
	}
}
