package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rel"
	"repro/internal/sqlast"
)

func collectInts(vals ...int64) *ColumnStats {
	cc := NewColumnCollector(rel.TInt)
	for _, v := range vals {
		cc.Add(rel.Int(v))
	}
	return cc.Stats()
}

func TestColumnCollectorBasics(t *testing.T) {
	cs := collectInts(1, 2, 3, 4, 5, 5, 5)
	if cs.Count != 7 {
		t.Errorf("Count = %d", cs.Count)
	}
	if cs.Distinct != 5 {
		t.Errorf("Distinct = %d", cs.Distinct)
	}
	if cs.Min.I != 1 || cs.Max.I != 5 {
		t.Errorf("bounds [%v,%v]", cs.Min, cs.Max)
	}
	if cs.AvgWidth != 8 {
		t.Errorf("AvgWidth = %f", cs.AvgWidth)
	}
}

func TestColumnCollectorIgnoresNulls(t *testing.T) {
	cc := NewColumnCollector(rel.TInt)
	cc.Add(rel.NullOf(rel.TInt))
	cc.Add(rel.Int(1))
	cs := cc.Stats()
	if cs.Count != 1 {
		t.Errorf("Count = %d", cs.Count)
	}
}

func TestSelectivityUniform(t *testing.T) {
	var vals []int64
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, i%100)
	}
	cs := collectInts(vals...)
	if s := cs.Selectivity(sqlast.OpEq, rel.Int(50)); math.Abs(s-0.01) > 0.005 {
		t.Errorf("equality selectivity = %f, want ~0.01", s)
	}
	if s := cs.Selectivity(sqlast.OpGe, rel.Int(50)); math.Abs(s-0.5) > 0.1 {
		t.Errorf("range selectivity = %f, want ~0.5", s)
	}
	if s := cs.Selectivity(sqlast.OpLe, rel.Int(99)); s < 0.9 {
		t.Errorf("full range selectivity = %f, want ~1", s)
	}
	if s := cs.Selectivity(sqlast.OpLt, rel.Int(0)); s > 0.05 {
		t.Errorf("empty range selectivity = %f, want ~0", s)
	}
}

func TestSelectivityBoundsProperty(t *testing.T) {
	f := func(raw []int16, probe int16, opIdx uint8) bool {
		if len(raw) == 0 {
			return true
		}
		cc := NewColumnCollector(rel.TInt)
		for _, v := range raw {
			cc.Add(rel.Int(int64(v)))
		}
		cs := cc.Stats()
		op := sqlast.CmpOp(int(opIdx) % 6)
		s := cs.Selectivity(op, rel.Int(int64(probe)))
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramFracLEMonotone(t *testing.T) {
	var sample []rel.Value
	for i := 0; i < 500; i++ {
		sample = append(sample, rel.Int(int64(i*i%997)))
	}
	h := NewHistogram(sample)
	prev := -1.0
	for v := int64(-10); v < 1100; v += 37 {
		f := h.FracLE(rel.Int(v))
		if f < prev-1e-9 {
			t.Fatalf("FracLE not monotone at %d: %f < %f", v, f, prev)
		}
		prev = f
	}
}

func TestCardHist(t *testing.T) {
	h := NewCardHist()
	// 80 parents with 1..5, 20 with 10.
	for i := 0; i < 80; i++ {
		h.Add(1 + i%5)
	}
	for i := 0; i < 20; i++ {
		h.Add(10)
	}
	if h.Parents != 100 {
		t.Errorf("Parents = %d", h.Parents)
	}
	if h.Max() != 10 {
		t.Errorf("Max = %d", h.Max())
	}
	if f := h.FracAtMost(5); math.Abs(f-0.8) > 1e-9 {
		t.Errorf("FracAtMost(5) = %f", f)
	}
	if f := h.FracWithAtLeast(10); math.Abs(f-0.2) > 1e-9 {
		t.Errorf("FracWithAtLeast(10) = %f", f)
	}
	if k := h.SplitCount(5, 0.8); k != 5 {
		t.Errorf("SplitCount = %d, want 5", k)
	}
	if k := h.SplitCount(3, 0.8); k != 0 {
		t.Errorf("SplitCount cap 3 = %d, want 0 (not skewed enough)", k)
	}
	// Overflow: 20 parents contribute 10-5 = 5 each beyond k=5.
	if o := h.OverflowCount(5); o != 100 {
		t.Errorf("OverflowCount(5) = %d, want 100", o)
	}
}

func TestCardHistOverflowProperty(t *testing.T) {
	f := func(cards []uint8, k uint8) bool {
		h := NewCardHist()
		var total int64
		for _, c := range cards {
			h.Add(int(c % 30))
			total += int64(c % 30)
		}
		kk := int(k%10) + 1
		over := h.OverflowCount(kk)
		// Inline + overflow must equal the total occurrences.
		var inline int64
		for c, cnt := range h.CountByCard {
			in := c
			if in > kk {
				in = kk
			}
			inline += int64(in) * cnt
		}
		return inline+over == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMCVSelectivity(t *testing.T) {
	// Zipf-ish: value 0 takes half the mass, the rest spread over 99
	// values.
	cc := NewColumnCollector(rel.TInt)
	for i := 0; i < 500; i++ {
		cc.Add(rel.Int(0))
	}
	for i := 0; i < 500; i++ {
		cc.Add(rel.Int(int64(1 + i%99)))
	}
	cs := cc.Stats()
	if len(cs.MCVs) == 0 {
		t.Fatal("no MCVs tracked for skewed column")
	}
	if cs.MCVs[0].Value.I != 0 || math.Abs(cs.MCVs[0].Frac-0.5) > 0.01 {
		t.Errorf("top MCV = %+v, want value 0 at ~0.5", cs.MCVs[0])
	}
	// Equality on the head uses the tracked frequency.
	if s := cs.Selectivity(sqlast.OpEq, rel.Int(0)); math.Abs(s-0.5) > 0.02 {
		t.Errorf("head selectivity = %f, want ~0.5", s)
	}
	// Equality on the tail uses the residual mass.
	if s := cs.Selectivity(sqlast.OpEq, rel.Int(42)); s > 0.02 || s <= 0 {
		t.Errorf("tail selectivity = %f, want ~0.005", s)
	}
}

func TestMCVUniformColumnHasNone(t *testing.T) {
	cc := NewColumnCollector(rel.TInt)
	for i := 0; i < 1000; i++ {
		cc.Add(rel.Int(int64(i % 100)))
	}
	cs := cc.Stats()
	if len(cs.MCVs) != 0 {
		t.Errorf("uniform column tracked %d MCVs", len(cs.MCVs))
	}
}

func TestCollectionPresence(t *testing.T) {
	c := NewCollection()
	c.Count[1] = 100 // parent
	c.Count[2] = 60  // optional child present in 60
	if p := c.Presence(2, 1); math.Abs(p-0.6) > 1e-9 {
		t.Errorf("Presence = %f", p)
	}
	// Set-valued via cardinality histogram.
	h := NewCardHist()
	for i := 0; i < 70; i++ {
		h.Add(2)
	}
	for i := 0; i < 30; i++ {
		h.Add(0)
	}
	c.Card[3] = h
	c.Count[3] = 140
	if p := c.Presence(3, 1); math.Abs(p-0.7) > 1e-9 {
		t.Errorf("set-valued Presence = %f", p)
	}
}

func TestTableStatsPages(t *testing.T) {
	ts := &TableStats{Name: "t", Rows: 1000, RowBytes: 100}
	if ts.Pages() < 13 || ts.Pages() > 14 {
		t.Errorf("Pages = %d", ts.Pages())
	}
	empty := &TableStats{Name: "e"}
	if empty.Pages() != 1 {
		t.Errorf("empty table Pages = %d, want 1", empty.Pages())
	}
}

func TestScale(t *testing.T) {
	cs := collectInts(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	sc := cs.Scale(0.5)
	if sc.Count != 5 {
		t.Errorf("scaled Count = %d", sc.Count)
	}
	if sc.Distinct > sc.Count {
		t.Errorf("Distinct %d > Count %d", sc.Distinct, sc.Count)
	}
	if cs.Count != 10 {
		t.Error("Scale mutated the original")
	}
}
